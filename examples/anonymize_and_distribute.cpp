// The trace-distribution workflow the paper's introduction motivates: LANL
// publishes traces of sensitive applications, so traces must be anonymized
// before release. This example captures a trace whose paths/hosts are
// sensitive, scrubs it two ways (Tracefs-style reversible encryption and
// true randomization), and shows that the released bundle still supports
// analysis and replay.
#include <cstdio>

#include "anon/anonymizer.h"
#include "frameworks/tracefs.h"
#include "fs/memfs.h"
#include "replay/replayer.h"
#include "sim/cluster.h"
#include "util/strings.h"
#include "trace/text_format.h"
#include "workload/io_intensive.h"

using namespace iotaxo;

int main() {
  sim::ClusterParams cluster_params;
  cluster_params.node_count = 4;
  const sim::Cluster cluster(cluster_params);

  workload::IoIntensiveParams app;
  app.nranks = 2;
  app.files_per_rank = 8;
  app.root = "/weapons_sim_7/scratch";  // sensitive!
  const mpi::Job job = workload::make_io_intensive(app);

  frameworks::Tracefs tracefs;
  frameworks::TraceJobOptions options;
  options.store_raw_streams = true;
  const frameworks::TraceRunResult traced =
      tracefs.trace(cluster, job, std::make_shared<fs::MemFs>(), options);

  const std::vector<std::string> secrets = {"weapons_sim_7", "lanl.gov"};
  std::printf("Raw trace leaks sensitive strings: %s\n",
              anon::leaks_any(traced.bundle, secrets) ? "yes" : "no");
  std::printf("Example raw event:   %s\n",
              trace::TextTraceWriter::line(traced.bundle.ranks[0].events[1])
                  .c_str());

  // Option A — Tracefs's own anonymization: field-selective CBC encryption
  // (reversible with the key; taxonomy grade 4).
  const auto encrypted = tracefs.anonymize_bundle(traced.bundle);
  std::printf("\n[encrypting anonymizer] leaks: %s\n",
              anon::leaks_any(*encrypted, secrets) ? "yes" : "no");
  std::printf("Example event:       %.100s...\n",
              trace::TextTraceWriter::line(encrypted->ranks[0].events[1])
                  .c_str());

  // Option B — true randomization (irreversible; taxonomy grade 5 — what
  // Tracefs lacks, per §4.2).
  anon::RandomizingAnonymizer randomizer(anon::FieldPolicy{}, 0xFEED);
  const trace::TraceBundle randomized = randomizer.apply(traced.bundle);
  std::printf("\n[randomizing anonymizer] leaks: %s\n",
              anon::leaks_any(randomized, secrets) ? "yes" : "no");
  std::printf("Example event:       %s\n",
              trace::TextTraceWriter::line(randomized.ranks[0].events[1])
                  .c_str());

  // The released (randomized) bundle is still useful: I/O structure intact.
  replay::Replayer replayer(cluster, std::make_shared<fs::MemFs>());
  replay::ReplayOptions ropts;
  ropts.pseudo.sync = replay::SyncStrategy::kBarriers;
  const replay::ReplayResult replayed = replayer.replay(randomized, ropts);
  std::printf("\nReplay of the anonymized trace wrote %s (original wrote %s)\n",
              format_bytes(replayed.run.bytes_written).c_str(),
              format_bytes(traced.run.bytes_written).c_str());
  return !anon::leaks_any(randomized, secrets) ? 0 : 1;
}
