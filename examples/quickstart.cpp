// Quickstart: trace a parallel application with LANL-Trace on a simulated
// 8-node cluster + parallel file system, then print the three output types
// of Figure 1 (raw trace, aggregate timing, call summary).
//
//   ./quickstart [output_dir]
//
// If output_dir is given, the full trace bundle is saved there.
#include <cstdio>

#include "analysis/aggregate_timing.h"
#include "analysis/call_summary.h"
#include "frameworks/lanl_trace.h"
#include "pfs/pfs.h"
#include "sim/cluster.h"
#include "util/strings.h"
#include "trace/text_format.h"
#include "workload/mpi_io_test.h"

using namespace iotaxo;

int main(int argc, char** argv) {
  // 1. A cluster: 8 nodes, gigabit interconnect, imperfect clocks.
  sim::ClusterParams cluster_params;
  cluster_params.node_count = 8;
  const sim::Cluster cluster(cluster_params);

  // 2. A workload: the LANL bandwidth benchmark, N-to-1 strided.
  workload::MpiIoTestParams app;
  app.pattern = workload::Pattern::kNto1Strided;
  app.nranks = 8;
  app.block = 32 * kKiB;
  app.total_bytes = 64 * kMiB;
  const mpi::Job job = workload::make_mpi_io_test(app);

  // 3. Trace it with LANL-Trace (ltrace mode) over the parallel FS.
  frameworks::LanlTrace lanl;
  frameworks::TraceJobOptions options;
  options.store_raw_streams = true;
  const frameworks::TraceRunResult result =
      lanl.trace(cluster, job, std::make_shared<pfs::Pfs>(), options);

  std::printf("Traced %s\n", job.cmdline.c_str());
  std::printf("  app elapsed (virtual): %s\n",
              format_duration(result.run.elapsed).c_str());
  std::printf("  end-to-end with tracing overheads: %s\n",
              format_duration(result.apparent_elapsed).c_str());
  std::printf("  events captured: %lld\n\n", result.bundle.total_events());

  // 4. The three LANL-Trace outputs.
  std::printf("--- raw trace data (rank 0, first 6 lines) ---\n");
  int shown = 0;
  for (const trace::TraceEvent& ev : result.bundle.ranks[0].events) {
    std::printf("%s\n", trace::TextTraceWriter::line(ev).c_str());
    if (++shown == 6) {
      break;
    }
  }

  std::printf("\n--- aggregate timing information (excerpt) ---\n");
  const std::string timing = analysis::render_aggregate_timing(
      result.bundle.barrier_events, job.cmdline);
  std::fputs(timing.substr(0, 600).c_str(), stdout);
  std::printf("...\n");

  std::printf("\n--- call summary ---\n");
  std::fputs(analysis::render_call_summary(result.bundle).c_str(), stdout);

  // 5. Optionally persist the bundle for later analysis/replay.
  if (argc > 1) {
    result.bundle.save(argv[1]);
    std::printf("\nBundle saved to %s\n", argv[1]);
  }
  return 0;
}
