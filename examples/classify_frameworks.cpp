// Apply the taxonomy to the three surveyed frameworks and print the Table 1
// template plus the Table 2 comparison — the paper's §4 case study as a
// program.
#include <cstdio>

#include "frameworks/lanl_trace.h"
#include "frameworks/partrace.h"
#include "frameworks/tracefs.h"
#include "sim/cluster.h"
#include "taxonomy/classifier.h"

using namespace iotaxo;

int main() {
  std::printf("%s\n", taxonomy::render_table1_template().c_str());

  sim::ClusterParams params;
  params.node_count = 8;
  const sim::Cluster cluster(params);
  taxonomy::Classifier classifier(cluster, {});

  frameworks::LanlTrace lanl;
  frameworks::Tracefs tracefs;
  frameworks::Partrace partrace;

  std::printf("Classifying LANL-Trace, Tracefs and //TRACE by experiment "
              "(this runs ~a dozen simulated jobs)...\n\n");
  const std::vector<taxonomy::FrameworkClassification> table2 = {
      classifier.classify(lanl),
      classifier.classify(tracefs),
      classifier.classify(partrace),
  };
  std::fputs(taxonomy::render_comparison_table(table2).c_str(), stdout);

  std::printf(
      "\nReading the table (the paper's conclusions, §5):\n"
      " * need anonymization or advanced granularity -> LANL-Trace is "
      "inadequate; consider Tracefs\n"
      " * need accurate replayable traces -> //TRACE\n"
      " * need quick, parallel-fs-compatible tracing -> LANL-Trace\n");
  return 0;
}
