// A user-driven overhead parameter study: sweep access pattern x block size
// for a chosen framework, the way LANL runs mpi_io_test parameter studies
// on its supercomputers.
//
//   ./overhead_study [ranks] [total_mib]
#include <cstdio>
#include <cstdlib>

#include "frameworks/lanl_trace.h"
#include "pfs/pfs.h"
#include "sim/cluster.h"
#include "util/strings.h"
#include "taxonomy/overhead.h"
#include "util/table.h"

using namespace iotaxo;

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 16;
  const Bytes total =
      (argc > 2 ? std::atoll(argv[2]) : 1024) * kMiB;

  sim::ClusterParams cluster_params;
  cluster_params.node_count = ranks;
  const sim::Cluster cluster(cluster_params);
  taxonomy::OverheadHarness harness(
      cluster, [] { return std::make_shared<pfs::Pfs>(); });
  frameworks::LanlTrace lanl;

  std::printf("Overhead study: %d ranks, %s total per run, LANL-Trace/ltrace\n\n",
              ranks, format_bytes(total).c_str());

  for (const workload::Pattern pattern :
       {workload::Pattern::kNto1Strided, workload::Pattern::kNto1NonStrided,
        workload::Pattern::kNtoN}) {
    workload::MpiIoTestParams base;
    base.pattern = pattern;
    base.nranks = ranks;
    base.total_bytes = total;

    const auto points = harness.sweep_block_sizes(
        lanl, base, taxonomy::figure_block_sizes());

    TextTable table({"Block", "BW untraced", "BW traced", "BW overhead",
                     "Elapsed overhead"});
    table.set_title(std::string("Pattern: ") + to_string(pattern));
    for (std::size_t c = 1; c < 5; ++c) {
      table.set_align(c, Align::kRight);
    }
    for (const taxonomy::OverheadPoint& p : points) {
      table.add_row({format_bytes(p.block),
                     strprintf("%.1f MiB/s", p.bw_untraced_mibps),
                     strprintf("%.1f MiB/s", p.bw_traced_mibps),
                     format_pct(p.bandwidth_overhead),
                     format_pct(p.elapsed_overhead)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
  }
  std::printf(
      "Reading: overheads shrink with block size because each block incurs\n"
      "a constant number of traced events (the paper's §4.1.2 hypothesis).\n");
  return 0;
}
