// The taxonomy is "a language for I/O Tracing Framework developers to
// categorize the functionality and performance of their tool" (§3). This
// example builds a brand-new toy framework — "DTrace-lite", a dynamic
// library interposer with a randomizing anonymizer bolted on — implements
// the TracingFramework interface, and runs the classifier on it to produce
// its own Table-1 summary.
#include <cstdio>
#include <map>

#include "anon/anonymizer.h"
#include "frameworks/framework.h"
#include "interpose/tracers.h"
#include "sim/cluster.h"
#include "taxonomy/classifier.h"
#include "trace/sink.h"

using namespace iotaxo;

namespace {

/// A minimal user-defined framework: LD_PRELOAD capture of I/O library
/// calls, human-readable output, built-in randomizing anonymization,
/// no replay, no dependency discovery.
class DtraceLite : public frameworks::TracingFramework {
 public:
  [[nodiscard]] std::string name() const override { return "DTrace-lite"; }

  [[nodiscard]] frameworks::InstallProfile install_profile() const override {
    frameworks::InstallProfile p;
    p.binary_deps = {"libdtrace_lite.so"};
    return p;
  }

  [[nodiscard]] frameworks::Capabilities capabilities() const override {
    frameworks::Capabilities c;
    c.anonymization_level = 5;  // true randomization
    c.granularity_level = 0;
    c.human_readable_output = true;
    c.event_types = "I/O library calls";
    return c;
  }

  [[nodiscard]] bool supports_fs(fs::FsKind) const override { return true; }

  [[nodiscard]] frameworks::TraceRunResult trace(
      const sim::Cluster& cluster, const mpi::Job& job, fs::VfsPtr vfs,
      const frameworks::TraceJobOptions& options) override {
    auto summary = std::make_shared<trace::SummarySink>();
    auto raw = std::make_shared<trace::VectorSink>();
    std::vector<trace::SinkPtr> sinks{summary};
    if (options.store_raw_streams) {
      sinks.push_back(raw);
    }
    auto interposer = std::make_shared<interpose::DynLibInterposer>(
        std::make_shared<trace::MultiSink>(sinks));

    mpi::RunOptions run_options;
    run_options.vfs = std::move(vfs);
    run_options.startup = options.app_startup + from_millis(80.0);
    run_options.cmdline = job.cmdline;
    run_options.observers = {interposer};

    mpi::Runtime runtime(cluster, run_options);
    frameworks::TraceRunResult result;
    result.run = runtime.run(job.programs);
    result.apparent_elapsed = result.run.elapsed;
    result.bundle.metadata["framework"] = name();
    result.bundle.metadata["application"] = job.cmdline;
    result.bundle.merge_summary(*summary);
    if (options.store_raw_streams) {
      std::map<int, trace::RankStream> by_rank;
      for (const trace::TraceEvent& ev : raw->events()) {
        trace::RankStream& rs = by_rank[ev.rank];
        rs.rank = ev.rank;
        rs.host = ev.host;
        rs.pid = ev.pid;
        rs.events.push_back(ev);
      }
      for (auto& [rank, rs] : by_rank) {
        result.bundle.ranks.push_back(std::move(rs));
      }
    }
    return result;
  }

  [[nodiscard]] std::optional<trace::TraceBundle> anonymize_bundle(
      const trace::TraceBundle& bundle) const override {
    anon::RandomizingAnonymizer anonymizer(anon::FieldPolicy{}, 0xD7);
    return anonymizer.apply(bundle);
  }
};

}  // namespace

int main() {
  sim::ClusterParams params;
  params.node_count = 8;
  const sim::Cluster cluster(params);

  DtraceLite mine;
  taxonomy::Classifier classifier(cluster, {});
  const taxonomy::FrameworkClassification c = classifier.classify(mine);

  std::printf("Classification of a user-defined framework via the taxonomy:\n\n");
  std::fputs(taxonomy::render_summary_table(c).c_str(), stdout);
  std::printf(
      "\nNote how the classifier *measured* everything it could: it mounted\n"
      "DTrace-lite on the parallel file system, traced the probe app,\n"
      "verified the anonymizer leaks nothing, and ran the overhead sweep.\n");
  return 0;
}
