// The //TRACE workflow: capture a replayable trace of an MPI application
// (with throttling-based dependency discovery), generate the
// pseudo-application, replay it on a fresh cluster/file system, and verify
// fidelity both ways the paper describes (trace-vs-trace comparison and
// end-to-end runtime comparison).
#include <cstdio>

#include "frameworks/partrace.h"
#include "pfs/pfs.h"
#include "replay/replayer.h"
#include "sim/cluster.h"
#include "util/strings.h"
#include "workload/probe_app.h"

using namespace iotaxo;

int main() {
  sim::ClusterParams cluster_params;
  cluster_params.node_count = 8;
  const sim::Cluster cluster(cluster_params);

  workload::ProbeAppParams app;
  app.nranks = 8;
  app.phases = 24;
  app.blocks_per_phase = 6;
  const mpi::Job job = workload::make_probe_app(app);

  // Capture with full throttling rotation (best dependency map, highest
  // capture overhead — the paper's trade-off).
  frameworks::PartraceParams params;
  params.sampling = 1.0;
  frameworks::Partrace partrace(params);
  frameworks::TraceJobOptions options;
  options.store_raw_streams = true;
  const frameworks::TraceRunResult traced =
      partrace.trace(cluster, job, std::make_shared<pfs::Pfs>(), options);

  std::printf("Captured %lld events across %zu ranks\n",
              traced.bundle.total_events(), traced.bundle.ranks.size());
  std::printf("Discovered %zu inter-rank dependency edges, e.g.:\n",
              traced.bundle.dependencies.size());
  for (std::size_t i = 0; i < traced.bundle.dependencies.size() && i < 5; ++i) {
    const trace::DependencyEdge& e = traced.bundle.dependencies[i];
    std::printf("  rank %d -> rank %d via %s\n", e.from_rank, e.to_rank,
                e.via.c_str());
  }
  std::printf("Original elapsed (incl. throttling): %s\n\n",
              format_duration(traced.run.elapsed).c_str());

  // Generate the pseudo-application and inspect it.
  const auto programs =
      replay::generate_pseudo_app(traced.bundle, partrace.replay_options().pseudo);
  std::size_t total_ops = 0;
  for (const mpi::Program& p : programs) {
    total_ops += p.size();
  }
  std::printf("Pseudo-application: %zu ranks, %zu ops total\n",
              programs.size(), total_ops);

  // Replay on a fresh file system, re-trace, compare.
  replay::Replayer replayer(cluster, std::make_shared<pfs::Pfs>());
  const analysis::FidelityReport report = replayer.verify(
      traced.bundle, traced.run.elapsed, partrace.replay_options());
  std::printf("\nFidelity report: %s\n", report.summary().c_str());
  std::printf("(paper reports replay fidelity 'as low as 6%%' for //TRACE)\n");
  return report.runtime_error < 0.25 ? 0 : 1;
}
