file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lock_coupling.dir/bench/bench_ablation_lock_coupling.cpp.o"
  "CMakeFiles/bench_ablation_lock_coupling.dir/bench/bench_ablation_lock_coupling.cpp.o.d"
  "bench_ablation_lock_coupling"
  "bench_ablation_lock_coupling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lock_coupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
