# Empty dependencies file for bench_ablation_lock_coupling.
# This may be replaced when dependencies are built.
