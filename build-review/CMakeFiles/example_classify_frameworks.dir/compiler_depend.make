# Empty compiler generated dependencies file for example_classify_frameworks.
# This may be replaced when dependencies are built.
