file(REMOVE_RECURSE
  "CMakeFiles/example_classify_frameworks.dir/examples/classify_frameworks.cpp.o"
  "CMakeFiles/example_classify_frameworks.dir/examples/classify_frameworks.cpp.o.d"
  "example_classify_frameworks"
  "example_classify_frameworks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_classify_frameworks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
