file(REMOVE_RECURSE
  "CMakeFiles/mpi_test.dir/tests/mpi_test.cpp.o"
  "CMakeFiles/mpi_test.dir/tests/mpi_test.cpp.o.d"
  "mpi_test"
  "mpi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
