file(REMOVE_RECURSE
  "CMakeFiles/bench_async_flush.dir/bench/bench_async_flush.cpp.o"
  "CMakeFiles/bench_async_flush.dir/bench/bench_async_flush.cpp.o.d"
  "bench_async_flush"
  "bench_async_flush.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_async_flush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
