# Empty dependencies file for bench_async_flush.
# This may be replaced when dependencies are built.
