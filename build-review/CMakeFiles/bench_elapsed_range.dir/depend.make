# Empty dependencies file for bench_elapsed_range.
# This may be replaced when dependencies are built.
