file(REMOVE_RECURSE
  "CMakeFiles/bench_elapsed_range.dir/bench/bench_elapsed_range.cpp.o"
  "CMakeFiles/bench_elapsed_range.dir/bench/bench_elapsed_range.cpp.o.d"
  "bench_elapsed_range"
  "bench_elapsed_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_elapsed_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
