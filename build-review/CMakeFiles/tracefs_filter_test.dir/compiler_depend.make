# Empty compiler generated dependencies file for tracefs_filter_test.
# This may be replaced when dependencies are built.
