file(REMOVE_RECURSE
  "CMakeFiles/tracefs_filter_test.dir/tests/tracefs_filter_test.cpp.o"
  "CMakeFiles/tracefs_filter_test.dir/tests/tracefs_filter_test.cpp.o.d"
  "tracefs_filter_test"
  "tracefs_filter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracefs_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
