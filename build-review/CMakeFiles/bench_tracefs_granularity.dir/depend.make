# Empty dependencies file for bench_tracefs_granularity.
# This may be replaced when dependencies are built.
