file(REMOVE_RECURSE
  "CMakeFiles/bench_tracefs_granularity.dir/bench/bench_tracefs_granularity.cpp.o"
  "CMakeFiles/bench_tracefs_granularity.dir/bench/bench_tracefs_granularity.cpp.o.d"
  "bench_tracefs_granularity"
  "bench_tracefs_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tracefs_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
