# Empty dependencies file for bench_fig1_sample_output.
# This may be replaced when dependencies are built.
