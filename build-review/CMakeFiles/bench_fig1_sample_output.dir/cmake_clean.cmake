file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_sample_output.dir/bench/bench_fig1_sample_output.cpp.o"
  "CMakeFiles/bench_fig1_sample_output.dir/bench/bench_fig1_sample_output.cpp.o.d"
  "bench_fig1_sample_output"
  "bench_fig1_sample_output.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_sample_output.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
