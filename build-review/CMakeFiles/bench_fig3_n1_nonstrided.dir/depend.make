# Empty dependencies file for bench_fig3_n1_nonstrided.
# This may be replaced when dependencies are built.
