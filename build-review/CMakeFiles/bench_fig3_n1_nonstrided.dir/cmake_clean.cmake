file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_n1_nonstrided.dir/bench/bench_fig3_n1_nonstrided.cpp.o"
  "CMakeFiles/bench_fig3_n1_nonstrided.dir/bench/bench_fig3_n1_nonstrided.cpp.o.d"
  "bench_fig3_n1_nonstrided"
  "bench_fig3_n1_nonstrided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_n1_nonstrided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
