# Empty dependencies file for iotaxo_cli.
# This may be replaced when dependencies are built.
