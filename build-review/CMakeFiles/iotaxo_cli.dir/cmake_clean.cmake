file(REMOVE_RECURSE
  "CMakeFiles/iotaxo_cli.dir/tools/iotaxo_cli.cpp.o"
  "CMakeFiles/iotaxo_cli.dir/tools/iotaxo_cli.cpp.o.d"
  "iotaxo_cli"
  "iotaxo_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iotaxo_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
