# Empty compiler generated dependencies file for example_replay_workflow.
# This may be replaced when dependencies are built.
