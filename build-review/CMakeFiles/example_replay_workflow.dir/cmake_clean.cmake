file(REMOVE_RECURSE
  "CMakeFiles/example_replay_workflow.dir/examples/replay_workflow.cpp.o"
  "CMakeFiles/example_replay_workflow.dir/examples/replay_workflow.cpp.o.d"
  "example_replay_workflow"
  "example_replay_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_replay_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
