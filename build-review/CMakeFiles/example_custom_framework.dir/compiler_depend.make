# Empty compiler generated dependencies file for example_custom_framework.
# This may be replaced when dependencies are built.
