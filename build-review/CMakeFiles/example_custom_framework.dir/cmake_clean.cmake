file(REMOVE_RECURSE
  "CMakeFiles/example_custom_framework.dir/examples/custom_framework.cpp.o"
  "CMakeFiles/example_custom_framework.dir/examples/custom_framework.cpp.o.d"
  "example_custom_framework"
  "example_custom_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
