# Empty dependencies file for bench_fig4_n_to_n.
# This may be replaced when dependencies are built.
