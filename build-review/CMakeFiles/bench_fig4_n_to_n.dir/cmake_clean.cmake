file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_n_to_n.dir/bench/bench_fig4_n_to_n.cpp.o"
  "CMakeFiles/bench_fig4_n_to_n.dir/bench/bench_fig4_n_to_n.cpp.o.d"
  "bench_fig4_n_to_n"
  "bench_fig4_n_to_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_n_to_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
