file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_n1_strided.dir/bench/bench_fig2_n1_strided.cpp.o"
  "CMakeFiles/bench_fig2_n1_strided.dir/bench/bench_fig2_n1_strided.cpp.o.d"
  "bench_fig2_n1_strided"
  "bench_fig2_n1_strided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_n1_strided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
