# Empty dependencies file for bench_fig2_n1_strided.
# This may be replaced when dependencies are built.
