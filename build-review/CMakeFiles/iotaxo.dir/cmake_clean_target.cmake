file(REMOVE_RECURSE
  "libiotaxo.a"
)
