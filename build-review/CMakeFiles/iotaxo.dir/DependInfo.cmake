
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/aggregate_timing.cpp" "CMakeFiles/iotaxo.dir/src/analysis/aggregate_timing.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/analysis/aggregate_timing.cpp.o.d"
  "/root/repo/src/analysis/bandwidth.cpp" "CMakeFiles/iotaxo.dir/src/analysis/bandwidth.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/analysis/bandwidth.cpp.o.d"
  "/root/repo/src/analysis/call_summary.cpp" "CMakeFiles/iotaxo.dir/src/analysis/call_summary.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/analysis/call_summary.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "CMakeFiles/iotaxo.dir/src/analysis/report.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/analysis/report.cpp.o.d"
  "/root/repo/src/analysis/skew_drift.cpp" "CMakeFiles/iotaxo.dir/src/analysis/skew_drift.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/analysis/skew_drift.cpp.o.d"
  "/root/repo/src/analysis/trace_diff.cpp" "CMakeFiles/iotaxo.dir/src/analysis/trace_diff.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/analysis/trace_diff.cpp.o.d"
  "/root/repo/src/analysis/unified_store.cpp" "CMakeFiles/iotaxo.dir/src/analysis/unified_store.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/analysis/unified_store.cpp.o.d"
  "/root/repo/src/anon/anonymizer.cpp" "CMakeFiles/iotaxo.dir/src/anon/anonymizer.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/anon/anonymizer.cpp.o.d"
  "/root/repo/src/frameworks/framework.cpp" "CMakeFiles/iotaxo.dir/src/frameworks/framework.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/frameworks/framework.cpp.o.d"
  "/root/repo/src/frameworks/lanl_trace.cpp" "CMakeFiles/iotaxo.dir/src/frameworks/lanl_trace.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/frameworks/lanl_trace.cpp.o.d"
  "/root/repo/src/frameworks/partrace.cpp" "CMakeFiles/iotaxo.dir/src/frameworks/partrace.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/frameworks/partrace.cpp.o.d"
  "/root/repo/src/frameworks/tracefs.cpp" "CMakeFiles/iotaxo.dir/src/frameworks/tracefs.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/frameworks/tracefs.cpp.o.d"
  "/root/repo/src/frameworks/tracefs_filter.cpp" "CMakeFiles/iotaxo.dir/src/frameworks/tracefs_filter.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/frameworks/tracefs_filter.cpp.o.d"
  "/root/repo/src/fs/memfs.cpp" "CMakeFiles/iotaxo.dir/src/fs/memfs.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/fs/memfs.cpp.o.d"
  "/root/repo/src/fs/nfs.cpp" "CMakeFiles/iotaxo.dir/src/fs/nfs.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/fs/nfs.cpp.o.d"
  "/root/repo/src/fs/path.cpp" "CMakeFiles/iotaxo.dir/src/fs/path.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/fs/path.cpp.o.d"
  "/root/repo/src/interpose/tracers.cpp" "CMakeFiles/iotaxo.dir/src/interpose/tracers.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/interpose/tracers.cpp.o.d"
  "/root/repo/src/interpose/vfs_shim.cpp" "CMakeFiles/iotaxo.dir/src/interpose/vfs_shim.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/interpose/vfs_shim.cpp.o.d"
  "/root/repo/src/mpi/program.cpp" "CMakeFiles/iotaxo.dir/src/mpi/program.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/mpi/program.cpp.o.d"
  "/root/repo/src/mpi/runtime.cpp" "CMakeFiles/iotaxo.dir/src/mpi/runtime.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/mpi/runtime.cpp.o.d"
  "/root/repo/src/pfs/pfs.cpp" "CMakeFiles/iotaxo.dir/src/pfs/pfs.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/pfs/pfs.cpp.o.d"
  "/root/repo/src/pfs/raid.cpp" "CMakeFiles/iotaxo.dir/src/pfs/raid.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/pfs/raid.cpp.o.d"
  "/root/repo/src/replay/pseudo_app.cpp" "CMakeFiles/iotaxo.dir/src/replay/pseudo_app.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/replay/pseudo_app.cpp.o.d"
  "/root/repo/src/replay/replayer.cpp" "CMakeFiles/iotaxo.dir/src/replay/replayer.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/replay/replayer.cpp.o.d"
  "/root/repo/src/sim/cluster.cpp" "CMakeFiles/iotaxo.dir/src/sim/cluster.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/sim/cluster.cpp.o.d"
  "/root/repo/src/taxonomy/classification.cpp" "CMakeFiles/iotaxo.dir/src/taxonomy/classification.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/taxonomy/classification.cpp.o.d"
  "/root/repo/src/taxonomy/classifier.cpp" "CMakeFiles/iotaxo.dir/src/taxonomy/classifier.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/taxonomy/classifier.cpp.o.d"
  "/root/repo/src/taxonomy/features.cpp" "CMakeFiles/iotaxo.dir/src/taxonomy/features.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/taxonomy/features.cpp.o.d"
  "/root/repo/src/taxonomy/overhead.cpp" "CMakeFiles/iotaxo.dir/src/taxonomy/overhead.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/taxonomy/overhead.cpp.o.d"
  "/root/repo/src/trace/async_sink.cpp" "CMakeFiles/iotaxo.dir/src/trace/async_sink.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/trace/async_sink.cpp.o.d"
  "/root/repo/src/trace/binary_format.cpp" "CMakeFiles/iotaxo.dir/src/trace/binary_format.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/trace/binary_format.cpp.o.d"
  "/root/repo/src/trace/bundle.cpp" "CMakeFiles/iotaxo.dir/src/trace/bundle.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/trace/bundle.cpp.o.d"
  "/root/repo/src/trace/event.cpp" "CMakeFiles/iotaxo.dir/src/trace/event.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/trace/event.cpp.o.d"
  "/root/repo/src/trace/event_batch.cpp" "CMakeFiles/iotaxo.dir/src/trace/event_batch.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/trace/event_batch.cpp.o.d"
  "/root/repo/src/trace/string_pool.cpp" "CMakeFiles/iotaxo.dir/src/trace/string_pool.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/trace/string_pool.cpp.o.d"
  "/root/repo/src/trace/text_format.cpp" "CMakeFiles/iotaxo.dir/src/trace/text_format.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/trace/text_format.cpp.o.d"
  "/root/repo/src/util/ascii_chart.cpp" "CMakeFiles/iotaxo.dir/src/util/ascii_chart.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/util/ascii_chart.cpp.o.d"
  "/root/repo/src/util/cipher.cpp" "CMakeFiles/iotaxo.dir/src/util/cipher.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/util/cipher.cpp.o.d"
  "/root/repo/src/util/compress.cpp" "CMakeFiles/iotaxo.dir/src/util/compress.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/util/compress.cpp.o.d"
  "/root/repo/src/util/crc32.cpp" "CMakeFiles/iotaxo.dir/src/util/crc32.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/util/crc32.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "CMakeFiles/iotaxo.dir/src/util/logging.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/util/logging.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/iotaxo.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/util/rng.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "CMakeFiles/iotaxo.dir/src/util/strings.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/util/strings.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/iotaxo.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "CMakeFiles/iotaxo.dir/src/util/thread_pool.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/util/thread_pool.cpp.o.d"
  "/root/repo/src/workload/io_intensive.cpp" "CMakeFiles/iotaxo.dir/src/workload/io_intensive.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/workload/io_intensive.cpp.o.d"
  "/root/repo/src/workload/mpi_io_test.cpp" "CMakeFiles/iotaxo.dir/src/workload/mpi_io_test.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/workload/mpi_io_test.cpp.o.d"
  "/root/repo/src/workload/probe_app.cpp" "CMakeFiles/iotaxo.dir/src/workload/probe_app.cpp.o" "gcc" "CMakeFiles/iotaxo.dir/src/workload/probe_app.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
