# Empty dependencies file for iotaxo.
# This may be replaced when dependencies are built.
