# Empty compiler generated dependencies file for bench_batch_pipeline.
# This may be replaced when dependencies are built.
