file(REMOVE_RECURSE
  "CMakeFiles/bench_batch_pipeline.dir/bench/bench_batch_pipeline.cpp.o"
  "CMakeFiles/bench_batch_pipeline.dir/bench/bench_batch_pipeline.cpp.o.d"
  "bench_batch_pipeline"
  "bench_batch_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_batch_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
