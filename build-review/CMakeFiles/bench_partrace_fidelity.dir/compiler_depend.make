# Empty compiler generated dependencies file for bench_partrace_fidelity.
# This may be replaced when dependencies are built.
