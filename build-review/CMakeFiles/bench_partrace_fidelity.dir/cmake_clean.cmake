file(REMOVE_RECURSE
  "CMakeFiles/bench_partrace_fidelity.dir/bench/bench_partrace_fidelity.cpp.o"
  "CMakeFiles/bench_partrace_fidelity.dir/bench/bench_partrace_fidelity.cpp.o.d"
  "bench_partrace_fidelity"
  "bench_partrace_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partrace_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
