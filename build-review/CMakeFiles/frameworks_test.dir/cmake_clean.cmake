file(REMOVE_RECURSE
  "CMakeFiles/frameworks_test.dir/tests/frameworks_test.cpp.o"
  "CMakeFiles/frameworks_test.dir/tests/frameworks_test.cpp.o.d"
  "frameworks_test"
  "frameworks_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frameworks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
