file(REMOVE_RECURSE
  "CMakeFiles/example_anonymize_and_distribute.dir/examples/anonymize_and_distribute.cpp.o"
  "CMakeFiles/example_anonymize_and_distribute.dir/examples/anonymize_and_distribute.cpp.o.d"
  "example_anonymize_and_distribute"
  "example_anonymize_and_distribute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_anonymize_and_distribute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
