# Empty dependencies file for example_anonymize_and_distribute.
# This may be replaced when dependencies are built.
