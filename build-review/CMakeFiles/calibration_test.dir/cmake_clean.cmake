file(REMOVE_RECURSE
  "CMakeFiles/calibration_test.dir/tests/calibration_test.cpp.o"
  "CMakeFiles/calibration_test.dir/tests/calibration_test.cpp.o.d"
  "calibration_test"
  "calibration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
