file(REMOVE_RECURSE
  "CMakeFiles/bench_skew_drift.dir/bench/bench_skew_drift.cpp.o"
  "CMakeFiles/bench_skew_drift.dir/bench/bench_skew_drift.cpp.o.d"
  "bench_skew_drift"
  "bench_skew_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_skew_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
