# Empty dependencies file for bench_skew_drift.
# This may be replaced when dependencies are built.
