# Empty dependencies file for bench_anchor_overheads.
# This may be replaced when dependencies are built.
