file(REMOVE_RECURSE
  "CMakeFiles/bench_anchor_overheads.dir/bench/bench_anchor_overheads.cpp.o"
  "CMakeFiles/bench_anchor_overheads.dir/bench/bench_anchor_overheads.cpp.o.d"
  "bench_anchor_overheads"
  "bench_anchor_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_anchor_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
