file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_template.dir/bench/bench_table1_template.cpp.o"
  "CMakeFiles/bench_table1_template.dir/bench/bench_table1_template.cpp.o.d"
  "bench_table1_template"
  "bench_table1_template.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_template.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
