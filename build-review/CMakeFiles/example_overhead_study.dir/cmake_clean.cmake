file(REMOVE_RECURSE
  "CMakeFiles/example_overhead_study.dir/examples/overhead_study.cpp.o"
  "CMakeFiles/example_overhead_study.dir/examples/overhead_study.cpp.o.d"
  "example_overhead_study"
  "example_overhead_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_overhead_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
