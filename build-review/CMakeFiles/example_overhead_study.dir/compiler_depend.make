# Empty compiler generated dependencies file for example_overhead_study.
# This may be replaced when dependencies are built.
