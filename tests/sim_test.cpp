// Tests for the cluster substrate: clock models (skew + drift), network
// timing, node generation determinism.
#include <gtest/gtest.h>

#include "sim/clock_model.h"
#include "sim/cluster.h"
#include "sim/network.h"
#include "util/error.h"

namespace iotaxo::sim {
namespace {

TEST(ClockModel, IdentityWhenPerfect) {
  ClockModel clock;
  EXPECT_EQ(clock.local(0), 0);
  EXPECT_EQ(clock.local(kSecond), kSecond);
}

TEST(ClockModel, AppliesEpochAndOffset) {
  ClockModel clock(/*epoch=*/1000 * kSecond, /*offset=*/5 * kMillisecond,
                   /*drift_ppm=*/0.0);
  EXPECT_EQ(clock.local(0), 1000 * kSecond + 5 * kMillisecond);
}

TEST(ClockModel, DriftAccumulates) {
  ClockModel clock(0, 0, /*drift_ppm=*/100.0);  // 100 us per second
  const SimTime local = clock.local(kSecond);
  EXPECT_NEAR(static_cast<double>(local - kSecond),
              static_cast<double>(100 * kMicrosecond), 10.0);
}

class ClockInverse : public ::testing::TestWithParam<double> {};

TEST_P(ClockInverse, GlobalInvertsLocal) {
  ClockModel clock(1159808385LL * kSecond, 17 * kMillisecond, GetParam());
  for (const SimTime t : {SimTime{0}, kSecond, 3600 * kSecond}) {
    const SimTime recovered = clock.global(clock.local(t));
    EXPECT_NEAR(static_cast<double>(recovered), static_cast<double>(t), 4.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Drifts, ClockInverse,
                         ::testing::Values(-80.0, -12.5, 0.0, 3.0, 55.0));

TEST(Network, SmallMessageDominatedByLatency) {
  Network net;
  const SimTime t = net.transfer_time(64, /*same_node=*/false);
  EXPECT_GT(t, net.latency());
  EXPECT_LT(t, 2 * net.latency());
}

TEST(Network, LargeMessageDominatedByBandwidth) {
  NetworkParams p;
  Network net(p);
  const Bytes big = 100 * kMiB;
  const SimTime t = net.transfer_time(big, false);
  const double expected_s = static_cast<double>(big) / p.bandwidth_bps;
  EXPECT_NEAR(to_seconds(t), expected_s, expected_s * 0.05);
}

TEST(Network, SameNodeSkipsWire) {
  Network net;
  EXPECT_LT(net.transfer_time(kMiB, true), net.latency());
}

TEST(Cluster, GeneratesRequestedNodes) {
  ClusterParams params;
  params.node_count = 32;
  Cluster cluster(params);
  EXPECT_EQ(cluster.node_count(), 32);
  EXPECT_EQ(cluster.node(13).hostname, "host13.lanl.gov");
  EXPECT_THROW((void)cluster.node(32), ConfigError);
  EXPECT_THROW((void)cluster.node(-1), ConfigError);
}

TEST(Cluster, RejectsEmpty) {
  ClusterParams params;
  params.node_count = 0;
  EXPECT_THROW(Cluster c(params), ConfigError);
}

TEST(Cluster, SkewWithinConfiguredBounds) {
  ClusterParams params;
  params.node_count = 64;
  params.max_skew = from_millis(100.0);
  Cluster cluster(params);
  for (const Node& n : cluster.nodes()) {
    EXPECT_LE(std::abs(n.clock.offset()), from_millis(100.0));
  }
}

TEST(Cluster, ClocksActuallyDisagree) {
  Cluster cluster{};
  // At the same global instant, at least two nodes read different times.
  const SimTime t = 10 * kSecond;
  bool disagreement = false;
  const SimTime first = cluster.local_time(0, t);
  for (int i = 1; i < cluster.node_count(); ++i) {
    if (cluster.local_time(i, t) != first) {
      disagreement = true;
      break;
    }
  }
  EXPECT_TRUE(disagreement);
}

TEST(Cluster, DeterministicForSeed) {
  ClusterParams params;
  params.seed = 777;
  Cluster a(params);
  Cluster b(params);
  for (int i = 0; i < a.node_count(); ++i) {
    EXPECT_EQ(a.node(i).clock.offset(), b.node(i).clock.offset());
    EXPECT_EQ(a.node(i).io_speed_factor, b.node(i).io_speed_factor);
  }
  params.seed = 778;
  Cluster c(params);
  bool any_different = false;
  for (int i = 0; i < a.node_count(); ++i) {
    any_different =
        any_different || a.node(i).clock.offset() != c.node(i).clock.offset();
  }
  EXPECT_TRUE(any_different);
}

TEST(Cluster, SpeedFactorsNearUnity) {
  Cluster cluster{};
  for (const Node& n : cluster.nodes()) {
    EXPECT_GT(n.io_speed_factor, 0.84);
    EXPECT_LT(n.io_speed_factor, 1.16);
  }
}

TEST(Cluster, EpochMatchesPaperTimestamps) {
  Cluster cluster{};
  // Figure 1's aggregate timing stamps are around 1159808385.x seconds.
  const SimTime local = cluster.local_time(0, 0);
  EXPECT_NEAR(to_seconds(local), 1159808385.0, 1.0);
}

}  // namespace
}  // namespace iotaxo::sim
