// Streaming-ingest tests: the v2 persisted index footer (round-trip,
// corrupt/truncated fallback-to-scan, adopted-vs-rebuilt query identity),
// era-aware open batches (bit-identical to one-pool-per-flush across every
// query and the mined DFG, bounded pool counts, seal semantics), and the
// live DFG maintainer (snapshot == cold rebuild at any thread count, for
// any flush interleaving, rank filters and sequences included).
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "analysis/dfg/dfg.h"
#include "analysis/dfg/live_dfg.h"
#include "analysis/unified_store.h"
#include "trace/binary_format.h"
#include "trace/event_batch.h"
#include "trace/record_view.h"
#include "util/error.h"
#include "util/metrics.h"
#include "util/strings.h"

namespace iotaxo::trace {
namespace {

using analysis::StreamIngestOptions;
using analysis::UnifiedTraceStore;

/// Metrics record only while armed; scope the arming so other tests keep
/// seeing the (cheaper) disarmed counters.
struct ObsGuard {
  ObsGuard() { obs::set_enabled(true); }
  ~ObsGuard() { obs::set_enabled(false); }
};

[[nodiscard]] std::uint64_t metric_delta(const obs::MetricsSnapshot& before,
                                         const char* name) {
  const obs::MetricsSnapshot d = obs::delta(before, obs::snapshot());
  const auto it = d.values.find(name);
  return it == d.values.end() ? 0 : it->second.value;
}

/// One flush of the synthetic capture stream: a few ranks doing interleaved
/// reads/writes plus the occasional probe and rank-less annotation, so the
/// index flags, the DFG class filter, and the name bitmap all have work to
/// do.
[[nodiscard]] std::vector<TraceEvent> flush_events(int flush, int count) {
  std::vector<TraceEvent> events;
  for (int i = 0; i < count; ++i) {
    const int seq = flush * count + i;
    TraceEvent ev;
    if (seq % 13 == 5) {
      ev.cls = EventClass::kClockProbe;
      ev.name = "clock_probe";
    } else if (seq % 17 == 3) {
      ev.cls = EventClass::kAnnotation;
      ev.name = "phase marker";
    } else {
      ev = make_syscall(seq % 3 == 0 ? "SYS_read" : "SYS_write",
                        {"5", "4096", strprintf("%d", seq)}, 4096);
      ev.path = seq % 2 == 0 ? strprintf("/pfs/out%d.dat", flush % 4) : "";
      ev.fd = 5;
      ev.bytes = 4096;
    }
    ev.rank = seq % 5 == 0 ? -1 : seq % 4;
    ev.host = strprintf("host%02d", seq % 4);
    ev.local_start = static_cast<SimTime>(seq) * kMillisecond;
    ev.duration = 10 * kMicrosecond;
    events.push_back(std::move(ev));
  }
  return events;
}

[[nodiscard]] auto all_queries(const UnifiedTraceStore& store) {
  return std::tuple{store.call_stats(), store.rank_timeline(1),
                    store.bytes_in_window(0, 100 * kSecond),
                    store.io_rate_series(from_millis(50.0)),
                    store.hottest_files(8)};
}

[[nodiscard]] std::string scratch_dir(const char* tag) {
  const std::string dir =
      strprintf("/tmp/iotaxo_stream_%s_%d", tag,
                ::testing::UnitTest::GetInstance()->random_seed());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// ------------------------------------------------------ persisted footer

TEST(IndexFooter, RoundTripMatchesScan) {
  const EventBatch batch = EventBatch::from_events(flush_events(0, 64));
  BinaryOptions options;
  options.checksum = true;
  options.index_footer = true;
  const std::vector<std::uint8_t> bytes = encode_binary_v2(batch, options);

  const BatchView view(bytes);
  EXPECT_TRUE(view.header().indexed);
  ASSERT_TRUE(view.persisted_index().has_value());
  EXPECT_TRUE(view.footer_error().empty());
  const PoolIndexFooter& footer = *view.persisted_index();

  // Recompute what index_pool's scan would find and compare field by field.
  bool any = false;
  SimTime min_time = 0;
  SimTime max_time = 0;
  bool has_fd_path = false;
  bool has_io_bytes = false;
  std::vector<bool> names(batch.pool().size(), false);
  for (const EventRecord& rec : batch.records()) {
    if (!any || rec.local_start < min_time) {
      min_time = rec.local_start;
    }
    if (!any || rec.local_start > max_time) {
      max_time = rec.local_start;
    }
    any = true;
    names[rec.name] = true;
    has_fd_path = has_fd_path || (rec.path != 0 && rec.fd >= 0);
    has_io_bytes = has_io_bytes || (rec.is_io_call() && rec.bytes > 0);
  }
  EXPECT_EQ(footer.any, any);
  EXPECT_EQ(footer.min_time, min_time);
  EXPECT_EQ(footer.max_time, max_time);
  EXPECT_EQ(footer.has_fd_path, has_fd_path);
  EXPECT_EQ(footer.has_io_bytes, has_io_bytes);
  EXPECT_EQ(footer.records, batch.size());
  for (StrId id = 0; id < names.size(); ++id) {
    EXPECT_EQ(footer.has_name(id), names[id]) << "name id " << id;
  }
  // Out-of-range ids are simply absent, not UB.
  EXPECT_FALSE(footer.has_name(static_cast<StrId>(names.size() + 100)));

  // The records themselves are untouched by the footer.
  ASSERT_EQ(view.size(), batch.size());
  const EventBatch decoded = decode_binary_batch(bytes);
  ASSERT_EQ(decoded.size(), batch.size());
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_EQ(decoded.record(i), batch.record(i)) << "record " << i;
  }
}

TEST(IndexFooter, FooterlessContainersStillParse) {
  const EventBatch batch = EventBatch::from_events(flush_events(0, 16));
  const std::vector<std::uint8_t> bytes =
      encode_binary_v2(batch, BinaryOptions{});
  const BatchView view(bytes);
  EXPECT_FALSE(view.header().indexed);
  EXPECT_FALSE(view.persisted_index().has_value());
  EXPECT_EQ(view.size(), batch.size());
}

TEST(IndexFooter, CorruptFooterFallsBackToScan) {
  const EventBatch batch = EventBatch::from_events(flush_events(0, 48));
  BinaryOptions options;
  options.checksum = false;  // isolate the footer's own CRC
  options.index_footer = true;
  std::vector<std::uint8_t> bytes = encode_binary_v2(batch, options);

  // Flip the last footer byte (just before the 16-byte trailer): the
  // footer CRC no longer matches, but the container must still open with
  // every record served — adoption degrades to a scan, never to a failure.
  bytes[bytes.size() - v2footer::kTrailerSize - 1] ^= 0x01u;
  const BatchView view(bytes);
  EXPECT_FALSE(view.persisted_index().has_value());
  EXPECT_FALSE(view.footer_error().empty());
  ASSERT_EQ(view.size(), batch.size());
  const EventBatch redecoded = decode_binary_batch(bytes);
  ASSERT_EQ(redecoded.size(), batch.size());
  for (std::size_t i = 0; i < redecoded.size(); ++i) {
    EXPECT_EQ(redecoded.record(i), batch.record(i)) << "record " << i;
  }

  // A store ingesting the damaged container rebuilds the index by scan and
  // answers queries identically to one fed the pristine bytes.
  ObsGuard obs_guard;
  const obs::MetricsSnapshot before = obs::snapshot();
  UnifiedTraceStore damaged;
  damaged.ingest(decode_binary_batch(bytes), {{"framework", "test"}});
  UnifiedTraceStore pristine;
  pristine.ingest(batch, {{"framework", "test"}});
  EXPECT_EQ(all_queries(damaged), all_queries(pristine));
  EXPECT_EQ(metric_delta(before, "ingest.index_adopted"), 0u);
}

TEST(IndexFooter, TruncatedFooterFallsBackToScan) {
  const EventBatch batch = EventBatch::from_events(flush_events(1, 48));
  BinaryOptions options;
  options.checksum = false;  // the paylen patch below assumes no file CRC
  options.index_footer = true;
  std::vector<std::uint8_t> bytes = encode_binary_v2(batch, options);

  // Truncate the trailer's second half and patch the envelope's payload
  // length to match — a crash that tore the tail off the footer region but
  // left the records intact. The footer parse must fail cleanly.
  const std::uint64_t paylen = static_cast<std::uint64_t>(bytes.size()) -
                               kContainerHeaderSize - 8;
  for (std::size_t b = 0; b < 8; ++b) {
    bytes[15 + b] = static_cast<std::uint8_t>(paylen >> (8 * b));
  }
  bytes.resize(bytes.size() - 8);
  const BatchView view(bytes);
  EXPECT_FALSE(view.persisted_index().has_value());
  EXPECT_FALSE(view.footer_error().empty());
  EXPECT_EQ(view.size(), batch.size());
}

TEST(IndexFooter, DeferredRecordValidationCatchesCorruptRecords) {
  // A valid footer defers the structural record pass past open (that is
  // what makes index-adopting restarts O(strings)); the pass still runs —
  // behind the verification gate — before any record content is served.
  const EventBatch batch = EventBatch::from_events(flush_events(2, 48));
  BinaryOptions options;
  options.checksum = false;  // isolate the structural check from the CRC
  options.index_footer = true;
  std::vector<std::uint8_t> bytes = encode_binary_v2(batch, options);

  // Clobber the last record's class byte. The record section ends where
  // the footer begins (trailer = footer_len u64 + footer CRC u32 + magic).
  std::uint64_t footer_len = 0;
  for (std::size_t b = 0; b < 8; ++b) {
    footer_len |= static_cast<std::uint64_t>(
                      bytes[bytes.size() - v2footer::kTrailerSize + b])
                  << (8 * b);
  }
  const std::size_t records_end =
      bytes.size() - v2footer::kTrailerSize - footer_len;
  bytes[records_end - v2layout::kStride + v2layout::kCls] = 0xFF;

  const BatchView view(bytes);  // open succeeds: the pass is deferred
  ASSERT_TRUE(view.persisted_index().has_value());
  EXPECT_EQ(view.size(), batch.size());
  // Index facts are served from the footer without touching records...
  EXPECT_EQ(view.persisted_index()->records, batch.size());
  // ...but the first record touch runs the deferred pass and fails sticky.
  EXPECT_THROW((void)view.record(0), FormatError);
  EXPECT_THROW((void)view.record_bytes(), FormatError);

  // A checksummed container reports even non-structural record damage (a
  // flipped ret value, which no validation pass inspects) as a CRC
  // mismatch on first touch — also after a clean, deferring open.
  options.checksum = true;
  std::vector<std::uint8_t> summed = encode_binary_v2(batch, options);
  std::uint64_t summed_footer_len = 0;
  for (std::size_t b = 0; b < 8; ++b) {
    summed_footer_len |=
        static_cast<std::uint64_t>(
            summed[summed.size() - 4 - v2footer::kTrailerSize + b])
        << (8 * b);
  }
  const std::size_t summed_records_end =
      summed.size() - 4 - v2footer::kTrailerSize - summed_footer_len;
  summed[summed_records_end - v2layout::kStride + v2layout::kRet] ^= 0x01u;
  const BatchView summed_view(summed);
  ASSERT_TRUE(summed_view.persisted_index().has_value());
  EXPECT_THROW((void)summed_view.record(0), FormatError);
}

TEST(IndexFooter, AdoptedVsRebuiltQueriesIdentical) {
  const std::string dir = scratch_dir("adopt");
  BinaryOptions options;
  options.checksum = true;
  options.index_footer = true;
  for (int era = 0; era < 4; ++era) {
    write_binary_file(
        strprintf("%s/era-%d.iotb", dir.c_str(), era),
        encode_binary_v2(EventBatch::from_events(flush_events(era, 64)),
                         options));
  }

  ObsGuard obs_guard;
  const obs::MetricsSnapshot before_adopt = obs::snapshot();
  UnifiedTraceStore adopted;
  for (int era = 0; era < 4; ++era) {
    adopted.ingest_view(strprintf("%s/era-%d.iotb", dir.c_str(), era),
                        {{"framework", "test"}});
  }
  EXPECT_EQ(metric_delta(before_adopt, "ingest.index_adopted"), 4u);
  EXPECT_EQ(metric_delta(before_adopt, "ingest.index_rebuilt"), 0u);

  const obs::MetricsSnapshot before_rebuild = obs::snapshot();
  UnifiedTraceStore rebuilt;
  rebuilt.set_adopt_indexes(false);
  for (int era = 0; era < 4; ++era) {
    rebuilt.ingest_view(strprintf("%s/era-%d.iotb", dir.c_str(), era),
                        {{"framework", "test"}});
  }
  EXPECT_EQ(metric_delta(before_rebuild, "ingest.index_adopted"), 0u);
  EXPECT_EQ(metric_delta(before_rebuild, "ingest.index_rebuilt"), 4u);

  EXPECT_EQ(all_queries(adopted), all_queries(rebuilt));
  namespace dfg = analysis::dfg;
  EXPECT_EQ(dfg::DfgBuilder(adopted).build(), dfg::DfgBuilder(rebuilt).build());

  std::size_t persisted = 0;
  for (const analysis::StorePoolInfo& info : adopted.pool_infos()) {
    persisted += info.persisted_index ? 1 : 0;
  }
  EXPECT_EQ(persisted, 4u);
  for (const analysis::StorePoolInfo& info : rebuilt.pool_infos()) {
    EXPECT_FALSE(info.persisted_index);
  }
  std::filesystem::remove_all(dir);
}

TEST(IndexFooter, AttachDirAdoptsPersistedIndexes) {
  const std::string dir = scratch_dir("attach_adopt");
  BinaryOptions options;
  options.checksum = true;
  options.index_footer = true;
  for (int era = 0; era < 3; ++era) {
    write_binary_file(
        strprintf("%s/era-%d.iotb", dir.c_str(), era),
        encode_binary_v2(EventBatch::from_events(flush_events(era, 32)),
                         options));
  }
  ObsGuard obs_guard;
  const obs::MetricsSnapshot before = obs::snapshot();
  UnifiedTraceStore store;
  const analysis::StoreHealth health = store.attach_dir(dir);
  EXPECT_TRUE(health.healthy());
  EXPECT_EQ(store.pool_count(), 3u);
  EXPECT_EQ(metric_delta(before, "attach.index_adopted"), 3u);
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------ era-aware ingest

TEST(StreamIngest, EraIngestMatchesOnePoolPerFlush) {
  constexpr int kFlushes = 60;
  constexpr int kPerFlush = 24;

  UnifiedTraceStore streamed;
  StreamIngestOptions sopts;
  sopts.era_bytes = 64 * kKiB;  // force several seals mid-run
  streamed.set_stream_ingest(sopts);
  UnifiedTraceStore per_flush;
  for (int f = 0; f < kFlushes; ++f) {
    const EventBatch batch = EventBatch::from_events(flush_events(f, kPerFlush));
    streamed.ingest(batch, {{"framework", "test"}});
    per_flush.ingest(batch, {{"framework", "test"}});
  }

  // The tentpole's point: a flush storm lands in a handful of pools...
  EXPECT_EQ(per_flush.pool_count(), static_cast<std::size_t>(kFlushes));
  EXPECT_LT(streamed.pool_count(), per_flush.pool_count() / 4);
  EXPECT_EQ(streamed.sources().size(), per_flush.sources().size());

  // ...with bit-identical answers from every query and the mined DFG.
  EXPECT_EQ(all_queries(streamed), all_queries(per_flush));
  namespace dfg = analysis::dfg;
  EXPECT_EQ(dfg::DfgBuilder(streamed).build({.keep_sequences = true}),
            dfg::DfgBuilder(per_flush).build({.keep_sequences = true}));

  // The last pool is the open era; sealed pools report their flush counts.
  const std::vector<analysis::StorePoolInfo> infos = streamed.pool_infos();
  std::size_t open = 0;
  std::size_t flushes_absorbed = 0;
  for (std::size_t p = 0; p < infos.size(); ++p) {
    open += infos[p].open_era ? 1 : 0;
    flushes_absorbed += infos[p].flushes_absorbed;
    if (infos[p].open_era) {
      EXPECT_EQ(p, infos.size() - 1) << "open era must be the last pool";
    }
  }
  EXPECT_LE(open, 1u);
  EXPECT_EQ(flushes_absorbed, static_cast<std::size_t>(kFlushes));
}

TEST(StreamIngest, SealSemanticsAndLargeFlushBypass) {
  UnifiedTraceStore store;
  StreamIngestOptions sopts;
  sopts.flush_events = 32;
  store.set_stream_ingest(sopts);

  EXPECT_FALSE(store.seal_open_era());  // nothing open yet
  store.ingest(EventBatch::from_events(flush_events(0, 8)),
               {{"framework", "test"}});
  store.ingest(EventBatch::from_events(flush_events(1, 8)),
               {{"framework", "test"}});
  EXPECT_EQ(store.pool_count(), 1u);
  ASSERT_FALSE(store.pool_infos().empty());
  EXPECT_TRUE(store.pool_infos().back().open_era);
  EXPECT_EQ(store.pool_infos().back().flushes_absorbed, 2u);

  // A flush above the threshold seals the open era and files its own pool.
  store.ingest(EventBatch::from_events(flush_events(2, 40)),
               {{"framework", "test"}});
  EXPECT_EQ(store.pool_count(), 2u);
  EXPECT_FALSE(store.pool_infos().front().open_era);
  EXPECT_FALSE(store.pool_infos().back().open_era);

  // New small flushes open a fresh era; sealing it is idempotent.
  store.ingest(EventBatch::from_events(flush_events(3, 8)),
               {{"framework", "test"}});
  EXPECT_EQ(store.pool_count(), 3u);
  EXPECT_TRUE(store.seal_open_era());
  EXPECT_FALSE(store.seal_open_era());

  // era_flushes caps absorption by flush count.
  UnifiedTraceStore capped;
  StreamIngestOptions copts;
  copts.era_flushes = 3;
  capped.set_stream_ingest(copts);
  for (int f = 0; f < 9; ++f) {
    capped.ingest(EventBatch::from_events(flush_events(f, 4)),
                  {{"framework", "test"}});
  }
  EXPECT_EQ(capped.pool_count(), 3u);
  for (const analysis::StorePoolInfo& info : capped.pool_infos()) {
    EXPECT_EQ(info.flushes_absorbed, 3u);
  }
}

TEST(StreamIngest, CompactSealsAndPreservesQueries) {
  UnifiedTraceStore store;
  store.set_stream_ingest(StreamIngestOptions{});
  for (int f = 0; f < 10; ++f) {
    store.ingest(EventBatch::from_events(flush_events(f, 16)),
                 {{"framework", "test"}});
  }
  const auto before = all_queries(store);
  // compact() must seal the open era before merging (an open pool merged
  // under a growing batch would corrupt the incremental index).
  (void)store.compact(static_cast<std::size_t>(-1));
  EXPECT_FALSE(store.pool_infos().empty());
  EXPECT_FALSE(store.pool_infos().back().open_era);
  EXPECT_EQ(all_queries(store), before);
}

// ------------------------------------------------------ live DFG

TEST(LiveDfg, MatchesColdRebuildAcrossThreadCounts) {
  namespace dfg = analysis::dfg;
  UnifiedTraceStore store;
  StreamIngestOptions sopts;
  sopts.era_bytes = 48 * kKiB;
  store.set_stream_ingest(sopts);
  const std::unique_ptr<dfg::LiveDfg> live = dfg::set_live_dfg(store);

  for (int f = 0; f < 40; ++f) {
    store.ingest(EventBatch::from_events(flush_events(f, 24)),
                 {{"framework", "test"}});
    if (f % 13 == 7) {
      // Mid-stream snapshots must match a cold rebuild at that instant.
      EXPECT_EQ(live->snapshot(), dfg::DfgBuilder(store).build())
          << "after flush " << f;
    }
  }
  const dfg::Dfg snap = live->snapshot();
  EXPECT_GT(live->events_folded(), 0);
  for (const std::size_t threads : {1u, 2u, 4u}) {
    EXPECT_EQ(snap, dfg::DfgBuilder(store).build({.threads = threads}))
        << "threads=" << threads;
  }

  // compact() rewrites pool boundaries, not the record stream — the live
  // state needs no re-fold and still matches a cold rebuild.
  (void)store.compact(static_cast<std::size_t>(-1));
  EXPECT_EQ(live->snapshot(), dfg::DfgBuilder(store).build());
}

TEST(LiveDfg, RankFilterAndSequencesMatchCold) {
  namespace dfg = analysis::dfg;
  UnifiedTraceStore store;
  store.set_stream_ingest(StreamIngestOptions{});
  dfg::LiveDfgOptions lopts;
  lopts.rank = 2;
  lopts.keep_sequences = true;
  const std::unique_ptr<dfg::LiveDfg> live = dfg::set_live_dfg(store, lopts);
  for (int f = 0; f < 12; ++f) {
    store.ingest(EventBatch::from_events(flush_events(f, 20)),
                 {{"framework", "test"}});
  }
  EXPECT_EQ(live->snapshot(),
            dfg::DfgBuilder(store).build({.rank = 2, .keep_sequences = true}));
}

TEST(LiveDfg, AttachMidSessionCatchesUp) {
  namespace dfg = analysis::dfg;
  UnifiedTraceStore store;
  store.set_stream_ingest(StreamIngestOptions{});
  for (int f = 0; f < 8; ++f) {
    store.ingest(EventBatch::from_events(flush_events(f, 16)),
                 {{"framework", "test"}});
  }
  // The maintainer folds what the store already holds at construction.
  const std::unique_ptr<dfg::LiveDfg> live = dfg::set_live_dfg(store);
  EXPECT_EQ(live->snapshot(), dfg::DfgBuilder(store).build());
  for (int f = 8; f < 16; ++f) {
    store.ingest(EventBatch::from_events(flush_events(f, 16)),
                 {{"framework", "test"}});
  }
  EXPECT_EQ(live->snapshot(), dfg::DfgBuilder(store).build());
}

}  // namespace
}  // namespace iotaxo::trace
