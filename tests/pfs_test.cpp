// Tests for the parallel file system: RAID-5 geometry, writer tracking,
// the contention cost model behind Figures 2-4, and stall amplification.
#include <gtest/gtest.h>

#include <set>

#include "pfs/pfs.h"
#include "pfs/raid.h"
#include "util/error.h"

namespace iotaxo::pfs {
namespace {

TEST(Raid5, RejectsDegenerateGeometry) {
  EXPECT_THROW(Raid5Layout(2, 64 * kKiB), ConfigError);
  EXPECT_THROW(Raid5Layout(4, 0), ConfigError);
}

TEST(Raid5, FullStripeBytes) {
  Raid5Layout layout(5, 64 * kKiB);
  EXPECT_EQ(layout.full_stripe_bytes(), 4 * 64 * kKiB);
}

TEST(Raid5, DataNeverLandsOnParityTarget) {
  Raid5Layout layout(7, 64 * kKiB);
  for (Bytes off = 0; off < 200 * 64 * kKiB; off += 64 * kKiB) {
    const StripeLocation loc = layout.locate(off);
    EXPECT_NE(loc.target, loc.parity_target) << "offset " << off;
    EXPECT_GE(loc.target, 0);
    EXPECT_LT(loc.target, 7);
  }
}

TEST(Raid5, ParityRotatesAcrossRows) {
  Raid5Layout layout(5, 64 * kKiB);
  std::set<int> parity_targets;
  for (long long row = 0; row < 5; ++row) {
    const StripeLocation loc =
        layout.locate(row * layout.full_stripe_bytes());
    parity_targets.insert(loc.parity_target);
  }
  EXPECT_EQ(parity_targets.size(), 5u);  // every target takes a parity turn
}

TEST(Raid5, SequentialUnitsSpreadOverTargets) {
  Raid5Layout layout(6, 64 * kKiB);
  std::set<int> targets;
  for (int unit = 0; unit < 5; ++unit) {
    targets.insert(layout.locate(unit * 64 * kKiB).target);
  }
  EXPECT_EQ(targets.size(), 5u);  // five data units land on five disks
}

TEST(Raid5, PartialStripeDetection) {
  Raid5Layout layout(5, 64 * kKiB);
  const Bytes full = layout.full_stripe_bytes();
  EXPECT_FALSE(layout.is_partial_stripe_write(0, full));
  EXPECT_TRUE(layout.is_partial_stripe_write(0, 64 * kKiB));
  EXPECT_TRUE(layout.is_partial_stripe_write(64 * kKiB, full));
  EXPECT_FALSE(layout.is_partial_stripe_write(full, 2 * full));
}

TEST(Raid5, RowsTouched) {
  Raid5Layout layout(5, 64 * kKiB);
  const Bytes full = layout.full_stripe_bytes();
  EXPECT_EQ(layout.rows_touched(0, full), 1);
  EXPECT_EQ(layout.rows_touched(0, full + 1), 2);
  EXPECT_EQ(layout.rows_touched(full - 1, 2), 2);
  EXPECT_EQ(layout.rows_touched(0, 0), 0);
}

class PfsFixture : public ::testing::Test {
 protected:
  [[nodiscard]] fs::OpCtx ctx(int rank,
                              fs::AccessHint hint = fs::AccessHint::kSequential)
      const {
    fs::OpCtx c;
    c.rank = rank;
    c.hint = hint;
    return c;
  }
  Pfs pfs_{};
};

TEST_F(PfsFixture, PaperGeometryDefaults) {
  EXPECT_EQ(pfs_.params().targets, 252);
  EXPECT_EQ(pfs_.params().stripe_unit, 64 * kKiB);
  EXPECT_EQ(pfs_.kind(), fs::FsKind::kParallel);
  EXPECT_EQ(pfs_.fstype(), "lanlfs");
}

TEST_F(PfsFixture, WriterTrackingAcrossOpenClose) {
  const std::string path = "/pfs/shared.out";
  std::vector<int> fds;
  for (int r = 0; r < 4; ++r) {
    fds.push_back(static_cast<int>(
        pfs_.open(path, fs::OpenMode::write_create(), ctx(r)).value));
  }
  EXPECT_EQ(pfs_.writer_count(path), 4);
  (void)pfs_.close(fds[0], ctx(0));
  EXPECT_EQ(pfs_.writer_count(path), 3);
  for (int r = 1; r < 4; ++r) {
    (void)pfs_.close(fds[static_cast<std::size_t>(r)], ctx(r));
  }
  EXPECT_EQ(pfs_.writer_count(path), 0);
}

TEST_F(PfsFixture, ReadersAreNotWriters) {
  const std::string path = "/pfs/ro.out";
  (void)pfs_.open(path, fs::OpenMode::write_create(), ctx(0));
  (void)pfs_.open(path, fs::OpenMode::read_only(), ctx(1));
  EXPECT_EQ(pfs_.writer_count(path), 1);
}

TEST_F(PfsFixture, SharedWritesCostMoreThanExclusive) {
  // Exclusive file.
  const int solo = static_cast<int>(
      pfs_.open("/pfs/solo.out", fs::OpenMode::write_create(), ctx(0)).value);
  const SimTime solo_cost = pfs_.write(solo, 0, 64 * kKiB, ctx(0)).cost;

  // Shared file with 32 writers.
  std::vector<int> fds;
  for (int r = 0; r < 32; ++r) {
    fds.push_back(static_cast<int>(
        pfs_.open("/pfs/shared.out", fs::OpenMode::write_create(), ctx(r))
            .value));
  }
  const SimTime shared_cost = pfs_.write(fds[0], 0, 64 * kKiB, ctx(0)).cost;
  EXPECT_GT(shared_cost, 10 * solo_cost);
}

TEST_F(PfsFixture, StridedCostsMoreThanSequentialWhenShared) {
  std::vector<int> seq_fds;
  std::vector<int> str_fds;
  for (int r = 0; r < 32; ++r) {
    seq_fds.push_back(static_cast<int>(
        pfs_.open("/pfs/seq.out", fs::OpenMode::write_create(),
                  ctx(r, fs::AccessHint::kSequential))
            .value));
    str_fds.push_back(static_cast<int>(
        pfs_.open("/pfs/str.out", fs::OpenMode::write_create(),
                  ctx(r, fs::AccessHint::kStrided))
            .value));
  }
  const SimTime seq = pfs_
                          .write(seq_fds[0], 0, 64 * kKiB,
                                 ctx(0, fs::AccessHint::kSequential))
                          .cost;
  const SimTime str = pfs_
                          .write(str_fds[0], 0, 64 * kKiB,
                                 ctx(0, fs::AccessHint::kStrided))
                          .cost;
  EXPECT_GT(str, seq);
}

TEST_F(PfsFixture, StallAmplificationMatchesWriterCount) {
  const int solo = static_cast<int>(
      pfs_.open("/pfs/one.out", fs::OpenMode::write_create(), ctx(0)).value);
  EXPECT_DOUBLE_EQ(pfs_.stall_amplification(solo), 1.0);

  std::vector<int> fds;
  for (int r = 0; r < 32; ++r) {
    fds.push_back(static_cast<int>(
        pfs_.open("/pfs/many.out", fs::OpenMode::write_create(), ctx(r))
            .value));
  }
  // 1 + 0.5 * (32 - 1) = 16.5 with default coupling.
  EXPECT_DOUBLE_EQ(pfs_.stall_amplification(fds[0]), 16.5);

  // Readers of a shared-write file don't amplify.
  const int reader = static_cast<int>(
      pfs_.open("/pfs/many.out", fs::OpenMode::read_only(), ctx(40)).value);
  EXPECT_DOUBLE_EQ(pfs_.stall_amplification(reader), 1.0);

  // Unknown fd degrades gracefully.
  EXPECT_DOUBLE_EQ(pfs_.stall_amplification(12345), 1.0);
}

TEST_F(PfsFixture, ReadAfterWriteSeesSize) {
  const int fd = static_cast<int>(
      pfs_.open("/pfs/rw.out", fs::OpenMode::write_create(), ctx(0)).value);
  (void)pfs_.write(fd, 1 * kMiB, 64 * kKiB, ctx(0));
  EXPECT_EQ(pfs_.stat_info("/pfs/rw.out").size, 1 * kMiB + 64 * kKiB);
  EXPECT_EQ(pfs_.read(fd, 0, 10 * kMiB, ctx(0)).value, 1 * kMiB + 64 * kKiB);
}

TEST_F(PfsFixture, CostModelAnchors) {
  // With default parameters the per-op latencies reproduce the calibration
  // in DESIGN.md §4: a(N-N) ~ 0.16 ms, a(N-1 seq) ~ 23.6 ms,
  // a(N-1 strided) ~ 29.8 ms at 32 writers.
  const int solo = static_cast<int>(
      pfs_.open("/pfs/a.out", fs::OpenMode::write_create(), ctx(0)).value);
  const double a_nn =
      to_seconds(pfs_.write(solo, 0, 1, ctx(0)).cost) * 1e3;  // ms
  EXPECT_NEAR(a_nn, 0.159, 0.02);

  std::vector<int> seq;
  std::vector<int> str;
  for (int r = 0; r < 32; ++r) {
    seq.push_back(static_cast<int>(
        pfs_.open("/pfs/b.out", fs::OpenMode::write_create(),
                  ctx(r, fs::AccessHint::kSequential))
            .value));
    str.push_back(static_cast<int>(
        pfs_.open("/pfs/c.out", fs::OpenMode::write_create(),
                  ctx(r, fs::AccessHint::kStrided))
            .value));
  }
  const double a_seq = to_seconds(
      pfs_.write(seq[0], 0, 1, ctx(0, fs::AccessHint::kSequential)).cost) * 1e3;
  const double a_str = to_seconds(
      pfs_.write(str[0], 0, 1, ctx(0, fs::AccessHint::kStrided)).cost) * 1e3;
  EXPECT_NEAR(a_seq, 23.6, 0.5);
  EXPECT_NEAR(a_str, 29.8, 0.5);
}

TEST_F(PfsFixture, MetadataOpsWork) {
  (void)pfs_.mkdir("/pfs/dir", ctx(0));
  (void)pfs_.open("/pfs/dir/x", fs::OpenMode::write_create(), ctx(0));
  EXPECT_EQ(pfs_.readdir("/pfs/dir", ctx(0)).value, 1);
  (void)pfs_.unlink("/pfs/dir/x", ctx(0));
  EXPECT_FALSE(pfs_.exists("/pfs/dir/x"));
  EXPECT_GT(pfs_.statfs(ctx(0)).cost, 0);
}

TEST_F(PfsFixture, StorageTargetAccounting) {
  const int fd = static_cast<int>(
      pfs_.open("/pfs/acct.out", fs::OpenMode::write_create(), ctx(0)).value);
  for (int i = 0; i < 8; ++i) {
    (void)pfs_.write(fd, static_cast<Bytes>(i) * 64 * kKiB, 64 * kKiB, ctx(0));
  }
  // The layout spread those writes over multiple physical targets; total
  // accounted bytes must match what was written.
  // (Accounting is internal; verified indirectly through file size.)
  EXPECT_EQ(pfs_.stat_info("/pfs/acct.out").size, 8 * 64 * kKiB);
}

}  // namespace
}  // namespace iotaxo::pfs
