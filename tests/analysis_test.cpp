// Tests for the analysis tools: call summaries, aggregate timing rendering,
// skew/drift estimation (property-tested against injected clock errors),
// bandwidth arithmetic, trace diffing.
#include <gtest/gtest.h>

#include "analysis/aggregate_timing.h"
#include "analysis/bandwidth.h"
#include "analysis/call_summary.h"
#include "analysis/skew_drift.h"
#include "analysis/trace_diff.h"
#include "sim/cluster.h"
#include "util/error.h"
#include "util/strings.h"

namespace iotaxo::analysis {
namespace {

using trace::EventClass;
using trace::TraceEvent;

TEST(CallSummary, RendersPaperShapedTable) {
  std::map<std::string, trace::SummarySink::Entry> summary;
  summary["MPI_Barrier"] = {29, from_seconds(2.156431)};
  summary["SYS_read"] = {565, from_seconds(0.022137)};
  const std::string out = render_call_summary(summary);
  EXPECT_NE(out.find("SUMMARY COUNT OF TRACED CALL(S)"), std::string::npos);
  EXPECT_NE(out.find("MPI_Barrier"), std::string::npos);
  EXPECT_NE(out.find("29"), std::string::npos);
  EXPECT_NE(out.find("2.156431"), std::string::npos);
  EXPECT_NE(out.find("565"), std::string::npos);
}

TEST(AggregateTiming, RendersBarrierLines) {
  std::vector<TraceEvent> barriers;
  TraceEvent ev;
  ev.cls = EventClass::kLibraryCall;
  ev.name = "MPI_Barrier";
  ev.path = "before";
  ev.rank = 7;
  ev.host = "host13.lanl.gov";
  ev.pid = 10378;
  ev.local_start = 1159808385LL * kSecond + 170918 * kMicrosecond;
  ev.duration = 2249 * kMicrosecond;
  barriers.push_back(ev);

  const std::string out = render_aggregate_timing(
      barriers, "/mpi_io_test.exe -type 1 -strided 1");
  EXPECT_NE(out.find("# Barrier before /mpi_io_test.exe \"-type\" \"1\""),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("7: host13.lanl.gov (10378) Entered barrier at "
                     "1159808385.170918"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("Exited barrier at 1159808385.173167"),
            std::string::npos)
      << out;
}

[[nodiscard]] std::vector<TraceEvent> probes_for_cluster(
    const sim::Cluster& cluster, SimTime t_pre, SimTime t_post) {
  std::vector<TraceEvent> probes;
  for (int r = 0; r < cluster.node_count(); ++r) {
    for (const auto& [label, t] :
         {std::pair<const char*, SimTime>{"pre_sync", t_pre},
          std::pair<const char*, SimTime>{"post_sync", t_post}}) {
      TraceEvent ev;
      ev.cls = EventClass::kClockProbe;
      ev.name = "clock_probe";
      ev.rank = r;
      ev.args = {label, "0"};
      ev.local_start = cluster.local_time(r, t);
      probes.push_back(ev);
    }
  }
  return probes;
}

class SkewDriftRecovery : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SkewDriftRecovery, RecoversInjectedClockErrors) {
  sim::ClusterParams params;
  params.node_count = 16;
  params.seed = GetParam();
  params.max_skew = from_millis(300.0);
  params.max_drift_ppm = 50.0;
  const sim::Cluster cluster(params);

  const SimTime t_pre = 5 * kSecond;
  const SimTime t_post = 605 * kSecond;  // 10 minutes of drift accumulation
  const auto probes = probes_for_cluster(cluster, t_pre, t_post);
  const SkewDriftModel model = SkewDriftModel::fit(probes);

  // Relative offsets must match the *skew at the pre instant* (drift has
  // been accumulating since t=0, which is exactly what skew-over-time is).
  const SimTime estimated_0 = model.estimate(0).offset;
  for (int r = 1; r < params.node_count; ++r) {
    const SimTime injected_delta =
        cluster.local_time(r, t_pre) - cluster.local_time(0, t_pre);
    const SimTime estimated_delta =
        model.estimate(r).offset - estimated_0;
    EXPECT_NEAR(static_cast<double>(estimated_delta),
                static_cast<double>(injected_delta),
                static_cast<double>(from_micros(50.0)))
        << "rank " << r;
  }

  // Relative drift must match within a couple of ppm.
  const double drift_0 = cluster.node(0).clock.drift_ppm();
  const double est_drift_0 = model.estimate(0).drift_ppm;
  for (int r = 1; r < params.node_count; ++r) {
    const double injected_delta =
        cluster.node(r).clock.drift_ppm() - drift_0;
    const double estimated_delta =
        model.estimate(r).drift_ppm - est_drift_0;
    EXPECT_NEAR(estimated_delta, injected_delta, 2.0) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkewDriftRecovery,
                         ::testing::Values(1, 7, 42, 1234, 0xC0FFEE));

TEST(SkewDrift, CorrectionAlignsConcurrentReadings) {
  sim::ClusterParams params;
  params.node_count = 8;
  const sim::Cluster cluster(params);
  const auto probes =
      probes_for_cluster(cluster, 2 * kSecond, 400 * kSecond);
  const SkewDriftModel model = SkewDriftModel::fit(probes);

  // Two events at the same *global* instant, stamped by different nodes,
  // must map to (nearly) the same corrected time.
  const SimTime instant = 200 * kSecond;
  const SimTime corrected_0 =
      model.correct(0, cluster.local_time(0, instant));
  for (int r = 1; r < params.node_count; ++r) {
    const SimTime corrected_r =
        model.correct(r, cluster.local_time(r, instant));
    EXPECT_NEAR(static_cast<double>(corrected_r),
                static_cast<double>(corrected_0),
                static_cast<double>(from_micros(300.0)));
  }
  // Without correction they disagree by milliseconds.
  SimTime raw_spread_min = cluster.local_time(0, instant);
  SimTime raw_spread_max = raw_spread_min;
  for (int r = 1; r < params.node_count; ++r) {
    const SimTime t = cluster.local_time(r, instant);
    raw_spread_min = std::min(raw_spread_min, t);
    raw_spread_max = std::max(raw_spread_max, t);
  }
  EXPECT_GT(raw_spread_max - raw_spread_min, from_millis(1.0));
}

TEST(SkewDrift, RejectsIncompleteProbes) {
  EXPECT_THROW((void)SkewDriftModel::fit({}), FormatError);
  TraceEvent pre_only;
  pre_only.cls = EventClass::kClockProbe;
  pre_only.rank = 0;
  pre_only.args = {"pre_sync", "0"};
  EXPECT_THROW((void)SkewDriftModel::fit({pre_only}), FormatError);
}

TEST(Bandwidth, PaperFormula) {
  EXPECT_DOUBLE_EQ(
      elapsed_time_overhead(from_seconds(3.0), from_seconds(2.0)), 0.5);
  EXPECT_DOUBLE_EQ(
      elapsed_time_overhead(from_seconds(2.0), from_seconds(2.0)), 0.0);
}

TEST(Bandwidth, MibPerSecond) {
  EXPECT_DOUBLE_EQ(bandwidth_mibps(100 * kMiB, from_seconds(2.0)), 50.0);
  EXPECT_DOUBLE_EQ(bandwidth_mibps(kMiB, 0), 0.0);
}

TEST(Bandwidth, OverheadEquivalence) {
  // bw overhead == elapsed overhead for equal byte counts.
  const double bw_u = bandwidth_mibps(kGiB, from_seconds(10.0));
  const double bw_t = bandwidth_mibps(kGiB, from_seconds(15.0));
  EXPECT_NEAR(bandwidth_overhead(bw_u, bw_t), 0.5, 1e-9);
}

TEST(Bandwidth, IoWindowNeedsLabels) {
  mpi::RunResult run;
  EXPECT_THROW((void)io_window(run), FormatError);
  run.barrier_release["io_begin"] = from_seconds(1.0);
  run.barrier_release["io_end"] = from_seconds(5.0);
  EXPECT_EQ(io_window(run), from_seconds(4.0));
  run.bytes_written = 400 * kMiB;
  EXPECT_DOUBLE_EQ(io_phase_bandwidth_mibps(run), 100.0);
}

TEST(SequenceSimilarity, Basics) {
  EXPECT_DOUBLE_EQ(sequence_similarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(sequence_similarity({"a"}, {}), 0.0);
  EXPECT_DOUBLE_EQ(sequence_similarity({"a", "b", "c"}, {"a", "b", "c"}), 1.0);
  EXPECT_NEAR(sequence_similarity({"a", "b", "c", "d"}, {"a", "c"}), 0.5,
              1e-9);
}

TEST(TraceDiff, IdenticalBundlesScoreZero) {
  trace::TraceBundle b;
  trace::RankStream rs;
  rs.rank = 0;
  TraceEvent w = trace::make_syscall("SYS_write", {"3", "64", "0"}, 64);
  w.bytes = 64;
  rs.events = {w, w, w};
  b.ranks.push_back(rs);
  b.call_summary["SYS_write"] = {3, from_millis(1.0)};

  const FidelityReport r =
      compare_traces(b, b, from_seconds(10.0), from_seconds(10.0));
  EXPECT_DOUBLE_EQ(r.runtime_error, 0.0);
  EXPECT_DOUBLE_EQ(r.op_mix_error, 0.0);
  EXPECT_DOUBLE_EQ(r.byte_ratio, 1.0);
  EXPECT_DOUBLE_EQ(r.sequence_error, 0.0);
}

TEST(TraceDiff, DetectsRuntimeAndMixErrors) {
  trace::TraceBundle original;
  original.call_summary["SYS_write"] = {100, 0};
  trace::TraceBundle replay;
  replay.call_summary["SYS_write"] = {80, 0};
  replay.call_summary["SYS_read"] = {10, 0};

  const FidelityReport r =
      compare_traces(original, replay, from_seconds(10.0), from_seconds(9.4));
  EXPECT_NEAR(r.runtime_error, 0.06, 1e-9);
  EXPECT_NEAR(r.op_mix_error, 0.30, 1e-9);  // (20 missing + 10 alien) / 100
}

TEST(TraceDiff, IgnoresSyncCallsInMix) {
  trace::TraceBundle original;
  original.call_summary["SYS_write"] = {10, 0};
  original.call_summary["MPI_Barrier"] = {50, 0};
  trace::TraceBundle replay;
  replay.call_summary["SYS_write"] = {10, 0};
  replay.call_summary["MPI_Send"] = {200, 0};  // dependency-sync replay
  const FidelityReport r = compare_traces(original, replay, kSecond, kSecond);
  EXPECT_DOUBLE_EQ(r.op_mix_error, 0.0);
}

}  // namespace
}  // namespace iotaxo::analysis
