// Tests for the trace data model: sinks, text format (write + parse),
// binary format (with compression/encryption/checksums), bundles.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "trace/binary_format.h"
#include "trace/bundle.h"
#include "trace/event.h"
#include "trace/sink.h"
#include "trace/text_format.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/strings.h"

namespace iotaxo::trace {
namespace {

[[nodiscard]] TraceEvent sample_syscall() {
  TraceEvent ev = make_syscall("SYS_open", {"/etc/hosts", "0", "0666"}, 3);
  ev.local_start = 1159808387LL * kSecond + 105818 * kMicrosecond;
  ev.duration = 34 * kMicrosecond;
  ev.rank = 7;
  ev.node = 3;
  ev.pid = 10378;
  ev.host = "host13.lanl.gov";
  ev.path = "/etc/hosts";
  ev.fd = 3;
  return ev;
}

[[nodiscard]] std::vector<TraceEvent> sample_stream() {
  std::vector<TraceEvent> events;
  events.push_back(sample_syscall());

  TraceEvent w = make_syscall("SYS_write", {"5", "65536", "131072"}, 65536);
  w.local_start = 1159808388LL * kSecond;
  w.duration = from_millis(31.0);
  w.rank = 7;
  w.pid = 10378;
  w.host = "host13.lanl.gov";
  w.fd = 5;
  w.bytes = 65536;
  w.offset = 131072;
  events.push_back(w);

  TraceEvent lib = make_libcall("MPI_File_open",
                                {"MPI_COMM_WORLD", "/pfs/out.dat",
                                 "MPI_MODE_CREATE|MPI_MODE_WRONLY"},
                                5);
  lib.local_start = 1159808389LL * kSecond;
  lib.duration = from_millis(1.2);
  lib.rank = 7;
  lib.pid = 10378;
  lib.host = "host13.lanl.gov";
  lib.path = "/pfs/out.dat";
  lib.fd = 5;
  events.push_back(lib);

  TraceEvent probe;
  probe.cls = EventClass::kClockProbe;
  probe.name = "clock_probe";
  probe.args = {"pre_sync", "1159808385.170918"};
  probe.local_start = 1159808385LL * kSecond + 170918 * kMicrosecond;
  probe.duration = 2 * kMicrosecond;
  probe.rank = 7;
  probe.pid = 10378;
  probe.host = "host13.lanl.gov";
  events.push_back(probe);

  TraceEvent note;
  note.cls = EventClass::kAnnotation;
  note.name = "Barrier before /mpi_io_test.exe -type 1";
  note.rank = 7;
  note.pid = 10378;
  note.host = "host13.lanl.gov";
  events.push_back(note);
  return events;
}

TEST(Sinks, SummaryAggregates) {
  SummarySink sink;
  for (const TraceEvent& ev : sample_stream()) {
    sink.on_event(ev);
  }
  EXPECT_EQ(sink.total_events(), 5);
  EXPECT_EQ(sink.entries().at("SYS_open").count, 1);
  EXPECT_EQ(sink.entries().at("SYS_write").total_duration, from_millis(31.0));
}

TEST(Sinks, CountingCountsBytes) {
  CountingSink sink;
  for (const TraceEvent& ev : sample_stream()) {
    sink.on_event(ev);
  }
  EXPECT_EQ(sink.count(), 5);
  EXPECT_EQ(sink.total_bytes(), 65536);
}

TEST(Sinks, MultiFansOut) {
  auto a = std::make_shared<CountingSink>();
  auto b = std::make_shared<VectorSink>();
  MultiSink multi({a, b});
  multi.on_event(sample_syscall());
  EXPECT_EQ(a->count(), 1);
  EXPECT_EQ(b->events().size(), 1u);
}

TEST(TextFormat, LineMatchesLtraceShape) {
  const std::string line = TextTraceWriter::line(sample_syscall());
  // e.g. "10:59:47.105818 SYS_open("/etc/hosts", 0, 0666) = 3 <0.000034>"
  EXPECT_NE(line.find("SYS_open(\"/etc/hosts\", 0, 0666) = 3 <0.000034>"),
            std::string::npos)
      << line;
  EXPECT_EQ(line.find("10:59:47.105818"), 0u) << line;
}

TEST(TextFormat, AnnotationRendersAsComment) {
  TraceEvent note;
  note.cls = EventClass::kAnnotation;
  note.name = "Barrier before /app";
  EXPECT_EQ(TextTraceWriter::line(note), "# Barrier before /app");
}

TEST(TextFormat, StreamRoundTripPreservesSemantics) {
  const auto original = sample_stream();
  TextTraceWriter::StreamMeta meta{"host13.lanl.gov", 7, 10378};
  const std::string text = TextTraceWriter::render(meta, original);
  const auto parsed = TextTraceParser::parse(text);

  EXPECT_EQ(parsed.meta.host, "host13.lanl.gov");
  EXPECT_EQ(parsed.meta.rank, 7);
  EXPECT_EQ(parsed.meta.pid, 10378u);
  ASSERT_EQ(parsed.events.size(), original.size());

  for (std::size_t i = 0; i < original.size(); ++i) {
    const TraceEvent& o = original[i];
    const TraceEvent& p = parsed.events[i];
    EXPECT_EQ(p.cls, o.cls) << i;
    if (o.cls == EventClass::kAnnotation) {
      EXPECT_EQ(p.name, o.name);
      continue;
    }
    EXPECT_EQ(p.name, o.name) << i;
    EXPECT_EQ(p.ret, o.ret) << i;
    // Text timestamps are truncated to microseconds.
    EXPECT_NEAR(static_cast<double>(p.local_start),
                static_cast<double>(o.local_start), 1000.0)
        << i;
    EXPECT_NEAR(static_cast<double>(p.duration),
                static_cast<double>(o.duration), 1000.0)
        << i;
    // Replayer-critical semantic fields are reconstructed from args.
    EXPECT_EQ(p.path, o.path) << i;
    EXPECT_EQ(p.fd, o.fd) << i;
    EXPECT_EQ(p.bytes, o.bytes) << i;
  }
}

TEST(TextFormat, ParserRejectsGarbage) {
  EXPECT_THROW((void)TextTraceParser::parse("this is not a trace"),
               FormatError);
  TextTraceWriter::StreamMeta meta;
  EXPECT_THROW(
      (void)TextTraceParser::parse_line("10:00:00.000000 no_call_syntax",
                                        meta, 0),
      FormatError);
}

class BinaryRoundTrip : public ::testing::TestWithParam<int> {
 protected:
  [[nodiscard]] static BinaryOptions options_for(int mask) {
    BinaryOptions o;
    o.compress = (mask & 1) != 0;
    o.encrypt = (mask & 2) != 0;
    o.checksum = (mask & 4) != 0;
    if (o.encrypt) {
      o.key = derive_key("test-key");
    }
    return o;
  }
};

TEST_P(BinaryRoundTrip, EncodeDecode) {
  const BinaryOptions options = options_for(GetParam());
  const auto original = sample_stream();
  const auto blob = encode_binary(original, options);
  const auto decoded = decode_binary(
      blob, options.encrypt ? options.key : std::nullopt);
  ASSERT_EQ(decoded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(decoded[i], original[i]) << "event " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(FlagCombos, BinaryRoundTrip,
                         ::testing::Range(0, 8));

TEST(BinaryFormat, HeaderPeek) {
  BinaryOptions o;
  o.compress = true;
  const auto blob = encode_binary(sample_stream(), o);
  const BinaryHeader h = peek_binary_header(blob);
  EXPECT_TRUE(h.compressed);
  EXPECT_FALSE(h.encrypted);
  EXPECT_TRUE(h.checksummed);
  EXPECT_EQ(h.count, 5u);
  EXPECT_TRUE(looks_binary(blob));
}

TEST(BinaryFormat, ChecksumDetectsCorruption) {
  const auto blob = encode_binary(sample_stream(), BinaryOptions{});
  auto corrupted = blob;
  corrupted[corrupted.size() / 2] ^= 0xFF;
  EXPECT_THROW((void)decode_binary(corrupted), FormatError);
}

TEST(BinaryFormat, EncryptedNeedsKey) {
  BinaryOptions o;
  o.encrypt = true;
  o.key = derive_key("k1");
  const auto blob = encode_binary(sample_stream(), o);
  EXPECT_THROW((void)decode_binary(blob), FormatError);
  EXPECT_THROW((void)decode_binary(blob, derive_key("wrong")), FormatError);
  EXPECT_EQ(decode_binary(blob, derive_key("k1")).size(), 5u);
}

TEST(BinaryFormat, EncryptWithoutKeyRejected) {
  BinaryOptions o;
  o.encrypt = true;
  EXPECT_THROW((void)encode_binary(sample_stream(), o), ConfigError);
}

TEST(BinaryFormat, TextIsNotBinary) {
  const std::string text = "# iotaxo raw trace v1\n";
  EXPECT_FALSE(looks_binary(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size())));
}

TEST(BinaryFormat, CompressionShrinksRepetitiveTraces) {
  std::vector<TraceEvent> events;
  for (int i = 0; i < 2000; ++i) {
    TraceEvent ev = make_syscall(
        "SYS_write", {"5", "65536", strprintf("%d", i * 65536)}, 65536);
    ev.host = "host13.lanl.gov";
    ev.rank = 7;
    events.push_back(ev);
  }
  BinaryOptions plain;
  BinaryOptions compressed;
  compressed.compress = true;
  EXPECT_LT(encode_binary(events, compressed).size(),
            encode_binary(events, plain).size() / 2);
}

TEST(Bundle, SummaryMergeAndTotals) {
  TraceBundle b;
  SummarySink s1;
  SummarySink s2;
  s1.on_event(sample_syscall());
  s2.on_event(sample_syscall());
  b.merge_summary(s1);
  b.merge_summary(s2);
  EXPECT_EQ(b.call_summary.at("SYS_open").count, 2);
  EXPECT_EQ(b.total_events(), 2);
}

TEST(Bundle, SaveLoadRoundTrip) {
  TraceBundle b;
  b.metadata["framework"] = "LANL-Trace";
  b.metadata["application"] = "/mpi_io_test.exe -type 1";
  RankStream rs;
  rs.rank = 7;
  rs.host = "host13.lanl.gov";
  rs.pid = 10378;
  rs.events = sample_stream();
  b.ranks.push_back(rs);
  b.clock_probes.push_back(rs.events[3]);
  b.dependencies.push_back(DependencyEdge{0, 3, "obj_1"});
  SummarySink sink;
  for (const TraceEvent& ev : rs.events) {
    sink.on_event(ev);
  }
  b.merge_summary(sink);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "iotaxo_bundle_test").string();
  std::filesystem::remove_all(dir);
  b.save(dir);
  const TraceBundle loaded = TraceBundle::load(dir);

  EXPECT_EQ(loaded.metadata.at("framework"), "LANL-Trace");
  ASSERT_EQ(loaded.ranks.size(), 1u);
  EXPECT_EQ(loaded.ranks[0].rank, 7);
  EXPECT_EQ(loaded.ranks[0].events.size(), rs.events.size());
  EXPECT_EQ(loaded.clock_probes.size(), 1u);
  ASSERT_EQ(loaded.dependencies.size(), 1u);
  EXPECT_EQ(loaded.dependencies[0], (DependencyEdge{0, 3, "obj_1"}));
  EXPECT_EQ(loaded.call_summary.at("SYS_open").count, 1);
  std::filesystem::remove_all(dir);
}

TEST(Bundle, LoadMissingDirectoryThrows) {
  EXPECT_THROW((void)TraceBundle::load("/nonexistent/iotaxo"), IoError);
}

}  // namespace
}  // namespace iotaxo::trace
