// Tests for the workload generators: mpi_io_test access-pattern geometry,
// the I/O-intensive metadata workload, and the classifier probe app.
#include <gtest/gtest.h>

#include <set>

#include "fs/memfs.h"
#include "mpi/runtime.h"
#include "pfs/pfs.h"
#include "sim/cluster.h"
#include "util/error.h"
#include "workload/io_intensive.h"
#include "workload/mpi_io_test.h"
#include "workload/probe_app.h"

namespace iotaxo::workload {
namespace {

TEST(MpiIoTest, CmdlineMatchesRealTool) {
  MpiIoTestParams params;
  params.pattern = Pattern::kNto1Strided;
  params.block = 32768;
  params.nobj = 1;
  EXPECT_EQ(mpi_io_test_cmdline(params),
            "/mpi_io_test.exe -type 1 -strided 1 -size 32768 -nobj 1");
  params.pattern = Pattern::kNtoN;
  EXPECT_EQ(mpi_io_test_cmdline(params),
            "/mpi_io_test.exe -type 2 -strided 0 -size 32768 -nobj 1");
}

TEST(MpiIoTest, RejectsBadParams) {
  MpiIoTestParams params;
  params.nranks = 0;
  EXPECT_THROW((void)make_mpi_io_test(params), ConfigError);
  params.nranks = 4;
  params.block = 0;
  EXPECT_THROW((void)make_mpi_io_test(params), ConfigError);
}

/// Collect per-rank (offset, bytes) write extents from a job's programs.
[[nodiscard]] std::vector<std::vector<std::pair<Bytes, Bytes>>> write_extents(
    const mpi::Job& job) {
  std::vector<std::vector<std::pair<Bytes, Bytes>>> per_rank;
  for (const mpi::Program& prog : job.programs) {
    std::vector<std::pair<Bytes, Bytes>> extents;
    for (const mpi::Op& op : prog) {
      if (op.type != mpi::OpType::kWriteBlocks) {
        continue;
      }
      const Bytes stride = op.stride == 0 ? op.block : op.stride;
      for (long long i = 0; i < op.count; ++i) {
        extents.emplace_back(op.start_offset + i * stride, op.block);
      }
    }
    per_rank.push_back(std::move(extents));
  }
  return per_rank;
}

TEST(MpiIoTest, Nto1StridedInterleavesDisjointly) {
  MpiIoTestParams params;
  params.pattern = Pattern::kNto1Strided;
  params.nranks = 4;
  params.block = 64 * kKiB;
  params.total_bytes = 4 * 64 * kKiB * 8;  // 8 blocks per rank
  const mpi::Job job = make_mpi_io_test(params);
  const auto extents = write_extents(job);

  // All extents across all ranks must be pairwise disjoint and together
  // cover [0, total) contiguously.
  std::set<Bytes> starts;
  Bytes total = 0;
  for (const auto& rank_extents : extents) {
    for (const auto& [offset, len] : rank_extents) {
      EXPECT_TRUE(starts.insert(offset).second) << "overlap at " << offset;
      EXPECT_EQ(offset % params.block, 0);
      total += len;
    }
  }
  EXPECT_EQ(total, params.total_bytes);
  // Strided: rank r's first block sits at r * block.
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(extents[static_cast<std::size_t>(r)].front().first,
              static_cast<Bytes>(r) * params.block);
  }
  // Consecutive blocks of one rank are nranks*block apart.
  EXPECT_EQ(extents[0][1].first - extents[0][0].first,
            static_cast<Bytes>(4) * params.block);
}

TEST(MpiIoTest, Nto1NonStridedGivesContiguousRegions) {
  MpiIoTestParams params;
  params.pattern = Pattern::kNto1NonStrided;
  params.nranks = 4;
  params.block = 64 * kKiB;
  params.total_bytes = 4 * 64 * kKiB * 8;
  const mpi::Job job = make_mpi_io_test(params);
  const auto extents = write_extents(job);
  for (const auto& rank_extents : extents) {
    for (std::size_t i = 1; i < rank_extents.size(); ++i) {
      EXPECT_EQ(rank_extents[i].first,
                rank_extents[i - 1].first + rank_extents[i - 1].second)
          << "non-strided writes must be contiguous";
    }
  }
}

TEST(MpiIoTest, NtoNUsesDistinctFiles) {
  MpiIoTestParams params;
  params.pattern = Pattern::kNtoN;
  params.nranks = 4;
  params.total_bytes = 16 * kMiB;
  const mpi::Job job = make_mpi_io_test(params);
  std::set<std::string> paths;
  for (const mpi::Program& prog : job.programs) {
    for (const mpi::Op& op : prog) {
      if (op.type == mpi::OpType::kOpen) {
        paths.insert(op.path);
      }
    }
  }
  EXPECT_EQ(paths.size(), 4u);
}

TEST(MpiIoTest, ObjectsAddBarriers) {
  MpiIoTestParams params;
  params.nranks = 2;
  params.nobj = 4;
  params.total_bytes = 32 * kMiB;
  const mpi::Job job = make_mpi_io_test(params);
  int barriers = 0;
  for (const mpi::Op& op : job.programs[0]) {
    if (op.type == mpi::OpType::kBarrier) {
      ++barriers;
    }
  }
  // pre_open, io_begin, 3 inter-object, io_end, post_close.
  EXPECT_EQ(barriers, 7);
}

TEST(MpiIoTest, RunsOnPfs) {
  sim::ClusterParams cparams;
  cparams.node_count = 4;
  const sim::Cluster cluster(cparams);
  MpiIoTestParams params;
  params.nranks = 4;
  params.block = 256 * kKiB;
  params.total_bytes = 16 * kMiB;
  mpi::RunOptions options;
  options.vfs = std::make_shared<pfs::Pfs>();
  mpi::Runtime runtime(cluster, options);
  const mpi::RunResult result = runtime.run(make_mpi_io_test(params).programs);
  EXPECT_EQ(result.bytes_written, 16 * kMiB);
  EXPECT_TRUE(result.barrier_release.contains("io_begin"));
  EXPECT_TRUE(result.barrier_release.contains("io_end"));
}

TEST(IoIntensive, GeneratesChurn) {
  IoIntensiveParams params;
  params.nranks = 1;
  params.files_per_rank = 30;
  const mpi::Job job = make_io_intensive(params);
  int creates = 0;
  int unlinks = 0;
  int mmaps = 0;
  for (const mpi::Op& op : job.programs[0]) {
    if (op.type == mpi::OpType::kOpen && op.mode.create) {
      ++creates;
    }
    if (op.type == mpi::OpType::kUnlink) {
      ++unlinks;
    }
    if (op.type == mpi::OpType::kMmapWrite) {
      ++mmaps;
    }
  }
  EXPECT_GE(creates, 30);
  EXPECT_EQ(unlinks, 10);  // every third file deleted
  EXPECT_EQ(mmaps, params.mmap_files_per_rank);
}

TEST(IoIntensive, RunsOnLocalFs) {
  sim::ClusterParams cparams;
  cparams.node_count = 2;
  const sim::Cluster cluster(cparams);
  IoIntensiveParams params;
  params.nranks = 2;
  params.files_per_rank = 10;
  mpi::RunOptions options;
  options.vfs = std::make_shared<fs::MemFs>();
  mpi::Runtime runtime(cluster, options);
  const mpi::RunResult result =
      runtime.run(make_io_intensive(params).programs);
  EXPECT_GT(result.bytes_written, 0);
  EXPECT_GT(result.bytes_read, 0);
}

TEST(ProbeApp, HasKnownCausalStructure) {
  ProbeAppParams params;
  params.nranks = 4;
  params.phases = 8;
  const mpi::Job job = make_probe_app(params);
  ASSERT_EQ(job.programs.size(), 4u);
  int phase_barriers = 0;
  bool has_mmap = false;
  bool has_posix = false;
  bool has_mpiio = false;
  for (const mpi::Op& op : job.programs[0]) {
    if (op.type == mpi::OpType::kBarrier &&
        op.label.starts_with("phase_")) {
      ++phase_barriers;
    }
    if (op.type == mpi::OpType::kMmapWrite) {
      has_mmap = true;
    }
    if (op.type == mpi::OpType::kWriteBlocks) {
      if (op.api == mpi::Api::kPosix) {
        has_posix = true;
      } else {
        has_mpiio = true;
      }
    }
  }
  EXPECT_EQ(phase_barriers, 8);
  EXPECT_TRUE(has_mmap);
  EXPECT_TRUE(has_posix);
  EXPECT_TRUE(has_mpiio);
}

TEST(ProbeApp, ValidatesAsAJob) {
  ProbeAppParams params;
  params.nranks = 8;
  EXPECT_NO_THROW(mpi::validate_job(make_probe_app(params).programs));
}

}  // namespace
}  // namespace iotaxo::workload
