// Tests for the batched event pipeline: StringPool interning, EventBatch
// round-trips, batched sink delivery equivalence, per-rank batch buffering
// in the capture layers, the IOTB2 binary container (and v1 compatibility),
// batch ingestion into the unified store, and batch-driven replay.
#include <gtest/gtest.h>

#include <memory>

#include "analysis/unified_store.h"
#include "frameworks/partrace.h"
#include "fs/memfs.h"
#include "interpose/tracers.h"
#include "interpose/vfs_shim.h"
#include "pfs/pfs.h"
#include "replay/replayer.h"
#include "sim/cluster.h"
#include "trace/binary_format.h"
#include "trace/event_batch.h"
#include "trace/sink.h"
#include "trace/string_pool.h"
#include "util/error.h"
#include "util/strings.h"
#include "workload/mpi_io_test.h"

namespace iotaxo::trace {
namespace {

[[nodiscard]] std::vector<TraceEvent> sample_stream() {
  std::vector<TraceEvent> events;

  TraceEvent open_ev = make_syscall("SYS_open", {"/etc/hosts", "0", "0666"}, 3);
  open_ev.local_start = 1159808387LL * kSecond;
  open_ev.duration = 34 * kMicrosecond;
  open_ev.rank = 7;
  open_ev.node = 3;
  open_ev.pid = 10378;
  open_ev.host = "host13.lanl.gov";
  open_ev.path = "/etc/hosts";
  open_ev.fd = 3;
  events.push_back(open_ev);

  for (int i = 0; i < 8; ++i) {
    TraceEvent w = make_syscall(
        "SYS_write", {"5", "65536", strprintf("%d", i * 65536)}, 65536);
    w.local_start = 1159808388LL * kSecond + i * kMillisecond;
    w.duration = from_millis(3.0);
    w.rank = i % 2;
    w.pid = 10378;
    w.host = i % 2 == 0 ? "host13.lanl.gov" : "host14.lanl.gov";
    w.fd = 5;
    w.bytes = 65536;
    w.offset = static_cast<Bytes>(i) * 65536;
    events.push_back(w);
  }

  TraceEvent note;
  note.cls = EventClass::kAnnotation;
  note.name = "Barrier before /app.exe";
  note.rank = 0;
  events.push_back(note);

  TraceEvent unknown = make_syscall("SYS_read", {"9", "4096"}, 4096);
  unknown.bytes = 4096;
  unknown.offset = -1;  // the "unknown offset" sentinel must round-trip
  events.push_back(unknown);
  return events;
}

TEST(StringPool, EmptyStringIsIdZero) {
  StringPool pool;
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.intern(""), 0u);
  EXPECT_EQ(pool.view(0), "");
}

TEST(StringPool, InternIsIdempotentAndDense) {
  StringPool pool;
  const StrId a = pool.intern("SYS_write");
  const StrId b = pool.intern("/pfs/out.dat");
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(pool.intern("SYS_write"), a);
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.view(a), "SYS_write");
  EXPECT_EQ(pool.str(b), "/pfs/out.dat");
}

TEST(StringPool, FindDoesNotIntern) {
  StringPool pool;
  EXPECT_FALSE(pool.find("missing").has_value());
  const StrId id = pool.intern("present");
  ASSERT_TRUE(pool.find("present").has_value());
  EXPECT_EQ(*pool.find("present"), id);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(StringPool, OutOfRangeIdThrows) {
  StringPool pool;
  EXPECT_THROW((void)pool.view(99), FormatError);
}

TEST(StringPool, CopiesOwnTheirStorage) {
  auto original = std::make_unique<StringPool>();
  const StrId id = original->intern("SYS_write");
  StringPool copy = *original;
  original.reset();  // a shallow copy would leave dangling node pointers
  EXPECT_EQ(copy.view(id), "SYS_write");
  EXPECT_EQ(copy.intern("SYS_write"), id);
  EXPECT_EQ(copy.intern("new-string"), id + 1);
}

TEST(EventBatch, RoundTripsEvents) {
  const auto original = sample_stream();
  const EventBatch batch = EventBatch::from_events(original);
  ASSERT_EQ(batch.size(), original.size());
  const auto rebuilt = batch.to_events();
  ASSERT_EQ(rebuilt.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(rebuilt[i], original[i]) << "event " << i;
  }
}

TEST(EventBatch, InternsRepeatedStringsOnce) {
  const EventBatch batch = EventBatch::from_events(sample_stream());
  // 8 writes share one name/host pair each; the pool holds each distinct
  // string exactly once.
  std::size_t sys_write_count = 0;
  batch.pool().for_each([&](StrId, std::string_view s) {
    if (s == "SYS_write") {
      ++sys_write_count;
    }
  });
  EXPECT_EQ(sys_write_count, 1u);
}

TEST(EventBatch, AppendBatchRemapsAcrossPools) {
  EventBatch a = EventBatch::from_events(sample_stream());
  EventBatch b;
  TraceEvent ev = make_syscall("SYS_write", {"1"}, 7);
  ev.host = "other.host";
  b.append(ev);
  b.append(a);
  ASSERT_EQ(b.size(), a.size() + 1);
  const auto rebuilt = b.to_events();
  const auto original = sample_stream();
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(rebuilt[i + 1], original[i]) << "event " << i;
  }
}

TEST(EventBatch, SelfAppendDuplicates) {
  EventBatch batch = EventBatch::from_events(sample_stream());
  const std::size_t n = batch.size();
  batch.append(batch);
  ASSERT_EQ(batch.size(), 2 * n);
  const auto events = batch.to_events();
  const auto original = sample_stream();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(events[i], original[i]) << i;
    EXPECT_EQ(events[n + i], original[i]) << i;
  }
}

TEST(EventBatch, AppendRawValidatesIds) {
  EventBatch batch;
  EventRecord rec;
  rec.name = 42;  // not in the pool
  EXPECT_THROW(batch.append_raw(rec, {}), FormatError);
}

TEST(EventBatch, ClearKeepsPoolResetDropsIt) {
  EventBatch batch = EventBatch::from_events(sample_stream());
  const std::size_t pool_size = batch.pool().size();
  batch.clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.pool().size(), pool_size);
  batch.reset();
  EXPECT_EQ(batch.pool().size(), 1u);
}

TEST(BatchedSinks, SummaryIdenticalToPerEvent) {
  const auto events = sample_stream();
  SummarySink per_event;
  for (const TraceEvent& ev : events) {
    per_event.on_event(ev);
  }
  SummarySink batched;
  batched.on_batch(EventBatch::from_events(events));

  EXPECT_EQ(batched.total_events(), per_event.total_events());
  ASSERT_EQ(batched.entries().size(), per_event.entries().size());
  for (const auto& [name, entry] : per_event.entries()) {
    const auto it = batched.entries().find(name);
    ASSERT_NE(it, batched.entries().end()) << name;
    EXPECT_EQ(it->second.count, entry.count) << name;
    EXPECT_EQ(it->second.total_duration, entry.total_duration) << name;
  }
}

TEST(BatchedSinks, CountingIdenticalToPerEvent) {
  const auto events = sample_stream();
  CountingSink per_event;
  for (const TraceEvent& ev : events) {
    per_event.on_event(ev);
  }
  CountingSink batched;
  batched.on_batch(EventBatch::from_events(events));
  EXPECT_EQ(batched.count(), per_event.count());
  EXPECT_EQ(batched.total_bytes(), per_event.total_bytes());
}

TEST(BatchedSinks, VectorSinkMaterializesBatches) {
  const auto events = sample_stream();
  VectorSink sink;
  sink.on_batch(EventBatch::from_events(events));
  ASSERT_EQ(sink.events().size(), events.size());
  EXPECT_EQ(sink.events(), events);
}

TEST(BatchedSinks, MultiSinkFansBatchesOut) {
  auto counting = std::make_shared<CountingSink>();
  auto summary = std::make_shared<SummarySink>();
  MultiSink multi({counting, summary});
  multi.on_batch(EventBatch::from_events(sample_stream()));
  EXPECT_EQ(counting->count(),
            static_cast<long long>(sample_stream().size()));
  EXPECT_EQ(summary->total_events(),
            static_cast<long long>(sample_stream().size()));
}

TEST(BatchedSinks, BatchSinkAccumulatesInterned) {
  BatchSink sink;
  sink.on_batch(EventBatch::from_events(sample_stream()));
  sink.on_event(make_syscall("SYS_close", {"3"}, 0));
  EXPECT_EQ(sink.batch().size(), sample_stream().size() + 1);
}

TEST(BatchedSinks, BatchSinkIsReusableAfterTake) {
  BatchSink sink;
  sink.on_event(make_syscall("SYS_close", {"3"}, 0));
  const EventBatch first = sink.take();
  EXPECT_EQ(first.size(), 1u);
  // The fresh batch must keep the id-0-is-empty pool invariant, so events
  // with empty host/path still round-trip (and v2-encode) correctly.
  TraceEvent ev = make_syscall("SYS_open", {"/f"}, 4);
  sink.on_event(ev);
  EXPECT_EQ(sink.batch().to_events(), std::vector<TraceEvent>{ev});
  const auto blob = encode_binary_v2(sink.batch(), {});
  EXPECT_EQ(decode_binary(blob), std::vector<TraceEvent>{ev});
}

TEST(RankBatcher, BuffersUntilCapacityAndFlush) {
  auto sink = std::make_shared<VectorSink>();
  RankBatcher batcher(sink, 4);
  const auto events = sample_stream();  // ranks 7, 0, 1, -1 interleaved
  for (const TraceEvent& ev : events) {
    batcher.add(ev);
  }
  // 8 write events alternate rank 0/1: each rank hits capacity 4 once.
  EXPECT_EQ(sink->events().size(), 8u);
  batcher.flush();
  EXPECT_EQ(sink->events().size(), events.size());
}

TEST(RankBatcher, CapacityOneDeliversImmediately) {
  auto sink = std::make_shared<VectorSink>();
  RankBatcher batcher(sink, 1);
  const auto events = sample_stream();
  for (const TraceEvent& ev : events) {
    batcher.add(ev);
  }
  // Immediate delivery preserves the interleaved observation order.
  EXPECT_EQ(sink->events(), events);
}

TEST(BatchedCapture, PtraceTracerEqualsPerEventDelivery) {
  const auto events = sample_stream();
  auto unbatched_sink = std::make_shared<SummarySink>();
  auto batched_sink = std::make_shared<SummarySink>();
  interpose::PtraceTracer unbatched(interpose::PtraceTracer::Mode::kStrace,
                                    unbatched_sink);
  interpose::PtraceTracer batched(interpose::PtraceTracer::Mode::kStrace,
                                  batched_sink, {}, 64);
  for (const TraceEvent& ev : events) {
    EXPECT_EQ(unbatched.on_event(ev), batched.on_event(ev));
  }
  batched.flush();
  EXPECT_EQ(batched.events_captured(), unbatched.events_captured());
  EXPECT_EQ(batched_sink->total_events(), unbatched_sink->total_events());
  ASSERT_EQ(batched_sink->entries().size(), unbatched_sink->entries().size());
  for (const auto& [name, entry] : unbatched_sink->entries()) {
    EXPECT_EQ(batched_sink->entries().at(name).count, entry.count);
  }
}

TEST(BatchedCapture, VfsShimFlushDrainsBatches) {
  auto inner = std::make_shared<fs::MemFs>();
  auto sink = std::make_shared<VectorSink>();
  interpose::VfsShimOptions options;
  options.batch_capacity = 128;
  interpose::VfsShim shim(inner, sink, options, nullptr);
  fs::OpCtx ctx;
  const int fd = static_cast<int>(
      shim.open("/f", fs::OpenMode::write_create(), ctx).value);
  for (int i = 0; i < 10; ++i) {
    (void)shim.write(fd, i * 64, 64, ctx, nullptr);
  }
  (void)shim.close(fd, ctx);
  EXPECT_TRUE(sink->events().empty());  // still buffered
  shim.flush();
  EXPECT_EQ(sink->events().size(), 12u);
  EXPECT_EQ(shim.events_captured(), 12);
}

class BinaryV2RoundTrip : public ::testing::TestWithParam<int> {
 protected:
  [[nodiscard]] static BinaryOptions options_for(int mask) {
    BinaryOptions o;
    o.compress = (mask & 1) != 0;
    o.encrypt = (mask & 2) != 0;
    o.checksum = (mask & 4) != 0;
    if (o.encrypt) {
      o.key = derive_key("test-key");
    }
    return o;
  }
};

TEST_P(BinaryV2RoundTrip, EncodeDecodeAllFields) {
  const BinaryOptions options = options_for(GetParam());
  const auto original = sample_stream();
  const auto blob = encode_binary_v2(original, options);
  const auto decoded = decode_binary(
      blob, options.encrypt ? options.key : std::nullopt);
  ASSERT_EQ(decoded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(decoded[i], original[i]) << "event " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(FlagCombos, BinaryV2RoundTrip,
                         ::testing::Range(0, 8));

TEST(BinaryV2, HeaderReportsVersion) {
  const auto v1 = encode_binary(sample_stream(), {});
  const auto v2 = encode_binary_v2(sample_stream(), {});
  EXPECT_EQ(peek_binary_header(v1).version, 1);
  EXPECT_EQ(peek_binary_header(v2).version, 2);
  EXPECT_EQ(peek_binary_header(v2).count, sample_stream().size());
  EXPECT_TRUE(looks_binary(v1));
  EXPECT_TRUE(looks_binary(v2));
}

TEST(BinaryV2, V1ContainersStillDecode) {
  const auto original = sample_stream();
  const auto v1_blob = encode_binary(original, {});
  EXPECT_EQ(decode_binary(v1_blob), original);
  // ... including straight into batch form.
  const EventBatch batch = decode_binary_batch(v1_blob);
  EXPECT_EQ(batch.to_events(), original);
}

TEST(BinaryV2, DecodesToBatchWithInternedTable) {
  const auto original = sample_stream();
  const auto blob = encode_binary_v2(original, {});
  const EventBatch batch = decode_binary_batch(blob);
  ASSERT_EQ(batch.size(), original.size());
  EXPECT_EQ(batch.to_events(), original);
  // The decoded pool is the encoded pool: dense and duplicate-free.
  EXPECT_EQ(batch.pool().size(),
            EventBatch::from_events(original).pool().size());
}

TEST(BinaryV2, StringTableShrinksRepetitiveTraces) {
  std::vector<TraceEvent> events;
  for (int i = 0; i < 2000; ++i) {
    TraceEvent ev = make_syscall(
        "SYS_write", {"5", "65536", strprintf("%d", i * 65536)}, 65536);
    ev.host = "host13.lanl.gov";
    ev.path = "/pfs/shared/out.dat";
    ev.rank = 7;
    events.push_back(ev);
  }
  BinaryOptions plain;
  plain.checksum = false;
  // Interning alone (no compression, no varints) must clearly beat v1's
  // inline strings: every name/host/path repeats per record there.
  EXPECT_LT(encode_binary_v2(events, plain).size(),
            encode_binary(events, plain).size() * 3 / 4);
}

TEST(BinaryV2, ChecksumDetectsCorruption) {
  const auto blob = encode_binary_v2(sample_stream(), BinaryOptions{});
  auto corrupted = blob;
  corrupted[corrupted.size() / 2] ^= 0xFF;
  EXPECT_THROW((void)decode_binary(corrupted), FormatError);
}

TEST(BinaryV1, HugeRecordCountIsFormatErrorNotBadAlloc) {
  BinaryOptions plain;
  plain.checksum = false;
  auto blob = encode_binary(sample_stream(), plain);
  // count is the u64 at offset 7 (after magic + flags).
  for (int i = 0; i < 8; ++i) {
    blob[7 + static_cast<std::size_t>(i)] = 0xFF;
  }
  EXPECT_THROW((void)decode_binary(blob), FormatError);
}

TEST(BinaryV2, HugeArgTableCountIsFormatErrorNotBadAlloc) {
  BinaryOptions plain;
  plain.checksum = false;  // unchecksummed, so the tampered body is decoded
  auto blob = encode_binary_v2(sample_stream(), plain);
  // The arg-id count lives right after the string table; rather than
  // locating it, just assert that *any* 8 bytes overwritten with a huge
  // count still surfaces as FormatError (never bad_alloc/length_error).
  const std::size_t header = 6 + 1 + 8 + 8;
  for (std::size_t pos = header; pos + 8 <= blob.size(); pos += 7) {
    auto corrupted = blob;
    for (int i = 0; i < 8; ++i) {
      corrupted[pos + static_cast<std::size_t>(i)] = 0xFF;
    }
    try {
      (void)decode_binary(corrupted);  // some positions may still decode
    } catch (const FormatError&) {
      // expected failure mode
    }
  }
}

TEST(BinaryV2, EncryptedNeedsKey) {
  BinaryOptions o;
  o.encrypt = true;
  o.key = derive_key("k1");
  const auto blob = encode_binary_v2(sample_stream(), o);
  EXPECT_THROW((void)decode_binary(blob), FormatError);
  EXPECT_EQ(decode_binary(blob, derive_key("k1")).size(),
            sample_stream().size());
}

}  // namespace
}  // namespace iotaxo::trace

namespace iotaxo {
namespace {

using trace::EventBatch;
using trace::TraceEvent;

[[nodiscard]] sim::Cluster small_cluster() {
  sim::ClusterParams p;
  p.node_count = 4;
  return sim::Cluster(p);
}

[[nodiscard]] frameworks::TraceRunResult partrace_capture(
    const sim::Cluster& cluster) {
  frameworks::Partrace partrace;
  workload::MpiIoTestParams params;
  params.nranks = 4;
  params.total_bytes = 16 * kMiB;
  frameworks::TraceJobOptions options;
  options.store_raw_streams = true;
  return partrace.trace(cluster, workload::make_mpi_io_test(params),
                        std::make_shared<pfs::Pfs>(), options);
}

TEST(StoreBatchIngest, MatchesBundleIngest) {
  const sim::Cluster cluster = small_cluster();
  const auto capture = partrace_capture(cluster);

  analysis::UnifiedTraceStore from_bundle;
  from_bundle.ingest(capture.bundle);

  EventBatch batch;
  for (const trace::RankStream& rs : capture.bundle.ranks) {
    for (const TraceEvent& ev : rs.events) {
      batch.append(ev);
    }
  }
  analysis::UnifiedTraceStore from_batch;
  from_batch.ingest(batch, capture.bundle.metadata, {},
                    capture.bundle.dependencies);

  EXPECT_EQ(from_batch.total_events(), from_bundle.total_events());
  EXPECT_EQ(from_batch.sources()[0].framework, "//TRACE");
  EXPECT_EQ(from_batch.dependencies().size(),
            from_bundle.dependencies().size());
  EXPECT_EQ(from_batch.call_stats(), from_bundle.call_stats());
  EXPECT_EQ(from_batch.rank_timeline(1).size(),
            from_bundle.rank_timeline(1).size());
  EXPECT_EQ(from_batch.source_batch(0).size(),
            from_bundle.source_batch(0).size());
}

TEST(ReplayFromBatch, DropsRanklessRecordsInsteadOfPhantomRank) {
  const sim::Cluster cluster = small_cluster();
  const auto capture = partrace_capture(cluster);

  EventBatch batch;
  TraceEvent rankless;  // rank = -1: an annotation that reached the sink
  rankless.cls = trace::EventClass::kAnnotation;
  rankless.name = "note";
  batch.append(rankless);
  for (const trace::RankStream& rs : capture.bundle.ranks) {
    for (const TraceEvent& ev : rs.events) {
      batch.append(ev);
    }
  }
  // 4 ranked sources -> exactly 4 programs; the rankless record must not
  // shift program-to-rank assignment.
  const auto programs = replay::generate_pseudo_app(batch, {}, {});
  EXPECT_EQ(programs.size(), capture.bundle.ranks.size());

  EventBatch only_rankless;
  only_rankless.append(rankless);
  EXPECT_THROW((void)replay::generate_pseudo_app(only_rankless, {}, {}),
               FormatError);
}

TEST(ReplayFromBatch, MatchesReplayFromBundle) {
  const sim::Cluster cluster = small_cluster();
  const auto capture = partrace_capture(cluster);

  replay::ReplayOptions options;
  options.pseudo.sync = replay::SyncStrategy::kDependencies;

  replay::Replayer from_bundle(cluster, std::make_shared<pfs::Pfs>());
  const auto bundle_result = from_bundle.replay(capture.bundle, options);

  EventBatch batch;
  for (const trace::RankStream& rs : capture.bundle.ranks) {
    for (const TraceEvent& ev : rs.events) {
      batch.append(ev);
    }
  }
  replay::Replayer from_batch(cluster, std::make_shared<pfs::Pfs>());
  const auto batch_result =
      from_batch.replay(batch, capture.bundle.dependencies, options);

  // Identical pseudo-apps on identical fresh file systems: identical runs.
  EXPECT_EQ(batch_result.run.elapsed, bundle_result.run.elapsed);
  EXPECT_EQ(batch_result.run.bytes_written, bundle_result.run.bytes_written);
  EXPECT_EQ(batch_result.bundle.total_events(),
            bundle_result.bundle.total_events());
}

}  // namespace
}  // namespace iotaxo
