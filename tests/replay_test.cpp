// Tests for pseudo-application generation and replay: op-mix preservation,
// fidelity under different synchronization strategies, dependency-driven
// sync.
#include <gtest/gtest.h>

#include "frameworks/lanl_trace.h"
#include "frameworks/partrace.h"
#include "pfs/pfs.h"
#include "replay/pseudo_app.h"
#include "replay/replayer.h"
#include "sim/cluster.h"
#include "trace/binary_format.h"
#include "trace/record_view.h"
#include "util/error.h"
#include "workload/probe_app.h"

namespace iotaxo::replay {
namespace {

class ReplayFixture : public ::testing::Test {
 protected:
  ReplayFixture() : cluster_(make_params()) {}

  static sim::ClusterParams make_params() {
    sim::ClusterParams p;
    p.node_count = 8;
    return p;
  }

  [[nodiscard]] frameworks::TraceRunResult capture_with_partrace(
      double sampling = 1.0) {
    frameworks::PartraceParams params;
    params.sampling = sampling;
    frameworks::Partrace partrace(params);
    workload::ProbeAppParams app;
    app.nranks = 8;
    app.phases = 16;
    frameworks::TraceJobOptions options;
    options.store_raw_streams = true;
    return partrace.trace(cluster_, workload::make_probe_app(app),
                          std::make_shared<pfs::Pfs>(), options);
  }

  sim::Cluster cluster_;
};

TEST_F(ReplayFixture, RequiresRawStreams) {
  trace::TraceBundle empty;
  EXPECT_THROW((void)generate_pseudo_app(empty), FormatError);
}

TEST_F(ReplayFixture, PseudoAppReproducesOpStructure) {
  const auto traced = capture_with_partrace();
  PseudoAppOptions options;
  options.sync = SyncStrategy::kBarriers;
  const auto programs = generate_pseudo_app(traced.bundle, options);
  ASSERT_EQ(programs.size(), 8u);

  // Count write ops per rank: probe app writes 16 phases * 4 shared blocks
  // + 16 * 2 posix blocks (+ 2 mmap writes invisible to the capture).
  for (const mpi::Program& prog : programs) {
    long long writes = 0;
    long long opens = 0;
    long long barriers = 0;
    for (const mpi::Op& op : prog) {
      if (op.type == mpi::OpType::kWriteBlocks) {
        writes += op.count;
      }
      if (op.type == mpi::OpType::kOpen) {
        ++opens;
      }
      if (op.type == mpi::OpType::kBarrier) {
        ++barriers;
      }
    }
    EXPECT_EQ(writes, 16 * 4 + 16 * 2);
    EXPECT_EQ(opens, 2);
    EXPECT_GE(barriers, 16);
  }
}

TEST_F(ReplayFixture, StridedHintInferredFromOffsets) {
  const auto traced = capture_with_partrace();
  const auto programs = generate_pseudo_app(traced.bundle);
  bool found_strided_open = false;
  for (const mpi::Op& op : programs[0]) {
    if (op.type == mpi::OpType::kOpen &&
        op.hint == fs::AccessHint::kStrided) {
      found_strided_open = true;
    }
  }
  EXPECT_TRUE(found_strided_open)
      << "shared-file strided access must be re-detected from the trace";
}

TEST_F(ReplayFixture, BarrierSyncReplayIsFaithful) {
  const auto traced = capture_with_partrace();
  Replayer replayer(cluster_, std::make_shared<pfs::Pfs>());
  ReplayOptions options;
  options.pseudo.sync = SyncStrategy::kBarriers;
  const analysis::FidelityReport report =
      replayer.verify(traced.bundle, traced.run.elapsed, options);
  EXPECT_LT(report.runtime_error, 0.15);
  EXPECT_LT(report.op_mix_error, 0.05);
  EXPECT_NEAR(report.byte_ratio, 1.0, 0.05);
}

TEST_F(ReplayFixture, DependencySyncWorksWithFullMap) {
  const auto traced = capture_with_partrace(1.0);
  ASSERT_FALSE(traced.bundle.dependencies.empty());
  Replayer replayer(cluster_, std::make_shared<pfs::Pfs>());
  ReplayOptions options;
  options.pseudo.sync = SyncStrategy::kDependencies;
  const ReplayResult result = replayer.replay(traced.bundle, options);
  EXPECT_GT(result.run.elapsed, 0);
  // The replay reproduces the captured I/O; only the memory-mapped writes
  // (invisible to //TRACE's interposition) are missing.
  const double ratio = static_cast<double>(result.run.bytes_written) /
                       static_cast<double>(traced.run.bytes_written);
  EXPECT_GT(ratio, 0.98);
  EXPECT_LE(ratio, 1.0);
}

TEST_F(ReplayFixture, FidelityDegradesWithoutDependencies) {
  const auto traced = capture_with_partrace(1.0);

  auto runtime_error_with = [&](SyncStrategy sync,
                                const trace::TraceBundle& bundle) {
    Replayer replayer(cluster_, std::make_shared<pfs::Pfs>());
    ReplayOptions options;
    options.pseudo.sync = sync;
    return replayer.verify(bundle, traced.run.elapsed, options).runtime_error;
  };

  const double with_deps =
      runtime_error_with(SyncStrategy::kDependencies, traced.bundle);

  trace::TraceBundle stripped = traced.bundle;
  stripped.dependencies.clear();  // nothing was discovered
  const double without_deps =
      runtime_error_with(SyncStrategy::kDependencies, stripped);

  EXPECT_LT(with_deps, without_deps)
      << "a complete dependency map must replay more faithfully than none";
}

TEST_F(ReplayFixture, CapturedReplayTraceHasRankStreams) {
  const auto traced = capture_with_partrace();
  Replayer replayer(cluster_, std::make_shared<pfs::Pfs>());
  ReplayOptions options;
  options.capture_trace = true;
  const ReplayResult result = replayer.replay(traced.bundle, options);
  EXPECT_EQ(result.bundle.ranks.size(), 8u);
  EXPECT_GT(result.bundle.total_events(), 0);
}

TEST_F(ReplayFixture, GapQuantizationInsertsThinkTime) {
  // Build a tiny synthetic trace with a large gap between two writes.
  trace::TraceBundle bundle;
  trace::RankStream rs;
  rs.rank = 0;
  trace::TraceEvent open = trace::make_libcall(
      "open", {"/f", "577", "0666"}, 5);
  open.cls = trace::EventClass::kLibraryCall;
  open.path = "/f";
  open.local_start = kSecond;
  open.duration = kMillisecond;
  rs.events.push_back(open);

  trace::TraceEvent w1 = trace::make_libcall("write", {"5", "1024", "0"}, 1024);
  w1.fd = 5;
  w1.bytes = 1024;
  w1.offset = 0;
  w1.local_start = kSecond + 2 * kMillisecond;
  w1.duration = kMillisecond;
  rs.events.push_back(w1);

  trace::TraceEvent w2 = w1;
  w2.offset = 1024;
  w2.args = {"5", "1024", "1024"};
  w2.local_start = kSecond + 500 * kMillisecond;  // 497 ms think time
  rs.events.push_back(w2);
  bundle.ranks.push_back(rs);

  const auto programs = generate_pseudo_app(bundle);
  SimTime total_compute = 0;
  for (const mpi::Op& op : programs[0]) {
    if (op.type == mpi::OpType::kCompute) {
      total_compute += op.duration;
    }
  }
  EXPECT_GT(total_compute, from_millis(400.0));
}

TEST_F(ReplayFixture, LanlTraceRawStreamsAreReplayableToo) {
  // The paper: "it is trivial to imagine a replayer being built that reads
  // and replays the raw trace files" — we built it.
  frameworks::LanlTrace lanl;
  workload::ProbeAppParams app;
  app.nranks = 4;
  app.phases = 4;
  frameworks::TraceJobOptions options;
  options.store_raw_streams = true;
  const auto traced = lanl.trace(cluster_, workload::make_probe_app(app),
                                 std::make_shared<pfs::Pfs>(), options);

  Replayer replayer(cluster_, std::make_shared<pfs::Pfs>());
  ReplayOptions ropts;
  ropts.pseudo.sync = SyncStrategy::kBarriers;
  const ReplayResult result = replayer.replay(traced.bundle, ropts);
  EXPECT_GT(result.run.bytes_written, 0);
}

// The zero-copy adapter must generate exactly the programs the owned-batch
// path generates: same ops in the same order, field for field.
void expect_programs_equal(const std::vector<mpi::Program>& a,
                           const std::vector<mpi::Program>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    ASSERT_EQ(a[r].size(), b[r].size()) << "rank " << r;
    for (std::size_t i = 0; i < a[r].size(); ++i) {
      const mpi::Op& x = a[r][i];
      const mpi::Op& y = b[r][i];
      EXPECT_EQ(x.type, y.type) << "rank " << r << " op " << i;
      EXPECT_EQ(x.api, y.api);
      EXPECT_EQ(x.path, y.path);
      EXPECT_EQ(x.slot, y.slot);
      EXPECT_EQ(x.block, y.block);
      EXPECT_EQ(x.count, y.count);
      EXPECT_EQ(x.start_offset, y.start_offset);
      EXPECT_EQ(x.stride, y.stride);
      EXPECT_EQ(x.duration, y.duration);
      EXPECT_EQ(x.peer, y.peer);
      EXPECT_EQ(x.tag, y.tag);
      EXPECT_EQ(x.label, y.label);
    }
  }
}

TEST_F(ReplayFixture, ViewBackedGenerationMatchesBatchGeneration) {
  const frameworks::TraceRunResult result = capture_with_partrace();
  trace::EventBatch batch;
  for (const trace::RankStream& rs : result.bundle.ranks) {
    for (const trace::TraceEvent& ev : rs.events) {
      batch.append(ev);
    }
  }
  const std::vector<std::uint8_t> bytes =
      trace::encode_binary_v2(batch, trace::BinaryOptions{});
  const trace::BatchView view(bytes);

  const std::vector<mpi::Program> from_batch =
      generate_pseudo_app(batch, result.bundle.dependencies);
  const std::vector<mpi::Program> from_view =
      generate_pseudo_app(view, result.bundle.dependencies);
  expect_programs_equal(from_batch, from_view);
}

TEST_F(ReplayFixture, ViewBackedReplayMatchesBatchReplay) {
  const frameworks::TraceRunResult result = capture_with_partrace();
  trace::EventBatch batch;
  for (const trace::RankStream& rs : result.bundle.ranks) {
    for (const trace::TraceEvent& ev : rs.events) {
      batch.append(ev);
    }
  }
  const std::vector<std::uint8_t> bytes =
      trace::encode_binary_v2(batch, trace::BinaryOptions{});
  const trace::BatchView view(bytes);

  Replayer batch_replayer(cluster_, std::make_shared<pfs::Pfs>());
  const ReplayResult from_batch =
      batch_replayer.replay(batch, result.bundle.dependencies);
  Replayer view_replayer(cluster_, std::make_shared<pfs::Pfs>());
  const ReplayResult from_view =
      view_replayer.replay(view, result.bundle.dependencies);
  EXPECT_EQ(from_batch.run.elapsed, from_view.run.elapsed);
  EXPECT_EQ(from_batch.run.bytes_written, from_view.run.bytes_written);
  EXPECT_EQ(from_batch.bundle.total_events(), from_view.bundle.total_events());
}

TEST_F(ReplayFixture, ViewBackedGenerationRejectsEmptyContainer) {
  const std::vector<std::uint8_t> bytes =
      trace::encode_binary_v2(trace::EventBatch{}, trace::BinaryOptions{});
  const trace::BatchView view(bytes);
  EXPECT_THROW((void)generate_pseudo_app(view, {}), FormatError);
}

}  // namespace
}  // namespace iotaxo::replay
