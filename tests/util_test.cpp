// Unit and property tests for the util module: RNG, strings, CRC-32,
// cipher, compression, tables, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "util/ascii_chart.h"
#include "util/cipher.h"
#include "util/compress.h"
#include "util/crc32.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/types.h"

namespace iotaxo {
namespace {

TEST(Types, SecondConversionsRoundTrip) {
  EXPECT_EQ(from_seconds(1.0), kSecond);
  EXPECT_EQ(from_millis(1.0), kMillisecond);
  EXPECT_EQ(from_micros(1.0), kMicrosecond);
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_EQ(from_seconds(to_seconds(123456789)), 123456789);
}

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  const Rng base(7);
  Rng f1 = base.fork("pfs");
  Rng f2 = base.fork("pfs");
  Rng f3 = base.fork("net");
  EXPECT_EQ(f1.next_u64(), f2.next_u64());
  Rng f4 = base.fork("pfs");
  EXPECT_NE(f3.next_u64(), f4.next_u64());
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform(9, 9), 9);
  }
}

TEST(Rng, NormalHasRoughlyRightMoments) {
  Rng rng(11);
  double sum = 0;
  double sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, TokenHasRequestedLengthAndAlphabet) {
  Rng rng(5);
  const std::string t = rng.token(16);
  EXPECT_EQ(t.size(), 16u);
  for (const char c : t) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'));
  }
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWsDropsEmpty) {
  const auto parts = split_ws("  one \t two\nthree  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "one");
  EXPECT_EQ(parts[2], "three");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, JoinRoundTrip) {
  const std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(join(parts, "/"), "a/b/c");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("SYS_open", "SYS_"));
  EXPECT_FALSE(starts_with("SY", "SYS_"));
  EXPECT_TRUE(ends_with("trace.out", ".out"));
  EXPECT_FALSE(ends_with("x", ".out"));
}

struct GlobCase {
  const char* pattern;
  const char* text;
  bool expect;
};

class GlobTest : public ::testing::TestWithParam<GlobCase> {};

TEST_P(GlobTest, Matches) {
  const GlobCase& c = GetParam();
  EXPECT_EQ(glob_match(c.pattern, c.text), c.expect)
      << c.pattern << " vs " << c.text;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, GlobTest,
    ::testing::Values(
        GlobCase{"*", "anything", true}, GlobCase{"*", "", true},
        GlobCase{"/data/*", "/data/f.out", true},
        GlobCase{"/data/*", "/other/f.out", false},
        GlobCase{"*.trace", "rank_0001.trace", true},
        GlobCase{"*.trace", "rank_0001.trc", false},
        GlobCase{"a?c", "abc", true}, GlobCase{"a?c", "ac", false},
        GlobCase{"/pfs/*/out*", "/pfs/job1/out.7", true},
        GlobCase{"exact", "exact", true}, GlobCase{"exact", "exac", false}));

TEST(Strings, HexRoundTrip) {
  const std::vector<std::uint8_t> data = {0x00, 0x01, 0xFF, 0xAB, 0x7E};
  const std::string hex = hex_encode(data);
  EXPECT_EQ(hex, "0001ffab7e");
  EXPECT_EQ(hex_decode(hex), data);
}

TEST(Strings, HexDecodeRejectsBadInput) {
  EXPECT_THROW((void)hex_decode("abc"), FormatError);
  EXPECT_THROW((void)hex_decode("zz"), FormatError);
}

TEST(Strings, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(64 * kKiB), "64.0 KiB");
  EXPECT_EQ(format_bytes(8 * kMiB), "8.0 MiB");
  EXPECT_EQ(format_bytes(100 * kGiB), "100.0 GiB");
}

TEST(Strings, FormatDuration) {
  EXPECT_EQ(format_duration(500), "500 ns");
  EXPECT_EQ(format_duration(from_micros(12.4)), "12.4 us");
  EXPECT_EQ(format_duration(from_millis(3.5)), "3.5 ms");
  EXPECT_EQ(format_duration(from_seconds(2.25)), "2.25 s");
}

TEST(Strings, FormatPct) {
  EXPECT_EQ(format_pct(0.124), "12.4%");
  EXPECT_EQ(format_pct(2.22), "222.0%");
  EXPECT_EQ(format_pct(0.0551, 0), "6%");
}

TEST(Crc32, KnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  EXPECT_EQ(crc32(std::string_view("123456789")), 0xCBF43926u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  Crc32 inc;
  inc.update(std::string_view("hello "));
  inc.update(std::string_view("world"));
  EXPECT_EQ(inc.value(), crc32(std::string_view("hello world")));
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> data(100, 0x5A);
  const std::uint32_t before = crc32(data);
  data[50] ^= 0x01;
  EXPECT_NE(before, crc32(data));
}

TEST(Crc32, FoldedPathMatchesBytewise) {
  // One-shot large buffers take the carry-less-multiply fast path (where
  // the CPU has it); byte-at-a-time updates stay on the lookup tables.
  // Both must agree for every length around the 64-byte kernel threshold
  // and the 16-byte fold granularity.
  Rng rng(1234);
  for (const std::size_t len :
       {std::size_t{63}, std::size_t{64}, std::size_t{65}, std::size_t{79},
        std::size_t{80}, std::size_t{127}, std::size_t{128},
        std::size_t{1000}, std::size_t{4096}, std::size_t{65521}}) {
    std::vector<std::uint8_t> data(len);
    for (std::uint8_t& b : data) {
      b = static_cast<std::uint8_t>(rng.next_u64());
    }
    Crc32 bytewise;
    for (std::size_t i = 0; i < len; ++i) {
      bytewise.update(std::span<const std::uint8_t>(&data[i], 1));
    }
    EXPECT_EQ(crc32(data), bytewise.value()) << "len " << len;
  }
}

class CompressRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CompressRoundTrip, RandomData) {
  Rng rng(GetParam() * 7919 + 1);
  std::vector<std::uint8_t> data(GetParam());
  for (auto& b : data) {
    b = static_cast<std::uint8_t>(rng.uniform(0, 255));
  }
  EXPECT_EQ(lz_decompress(lz_compress(data)), data);
}

TEST_P(CompressRoundTrip, RepetitiveDataCompresses) {
  std::vector<std::uint8_t> data(GetParam());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i % 17);
  }
  const auto compressed = lz_compress(data);
  EXPECT_EQ(lz_decompress(compressed), data);
  if (data.size() > 256) {
    EXPECT_LT(compressed.size(), data.size() / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CompressRoundTrip,
                         ::testing::Values(0, 1, 3, 4, 64, 255, 256, 1000,
                                           4096, 65536));

TEST(Compress, TraceLikeTextCompressesWell) {
  std::string text;
  for (int i = 0; i < 500; ++i) {
    text += strprintf("10:59:47.%06d SYS_write(5, 65536, %d) = 65536 <0.031>\n",
                      i, i * 65536);
  }
  const std::vector<std::uint8_t> data(text.begin(), text.end());
  const auto compressed = lz_compress(data);
  EXPECT_LT(compressed.size(), data.size() / 3);
  EXPECT_EQ(lz_decompress(compressed), data);
}

TEST(Compress, RejectsCorruptStream) {
  const std::vector<std::uint8_t> bogus = {0x85, 0x01};  // truncated match
  EXPECT_THROW((void)lz_decompress(bogus), FormatError);
  const std::vector<std::uint8_t> bad_dist = {0x80, 0xFF, 0x00};
  EXPECT_THROW((void)lz_decompress(bad_dist), FormatError);
}

TEST(Cipher, BlockRoundTrip) {
  const CipherKey key = derive_key("passphrase");
  const std::uint64_t block = 0x0123456789ABCDEFULL;
  EXPECT_EQ(xtea_decrypt_block(xtea_encrypt_block(block, key), key), block);
  EXPECT_NE(xtea_encrypt_block(block, key), block);
}

TEST(Cipher, DifferentKeysDifferentCiphertext) {
  const std::uint64_t block = 42;
  EXPECT_NE(xtea_encrypt_block(block, derive_key("a")),
            xtea_encrypt_block(block, derive_key("b")));
}

class CbcRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CbcRoundTrip, EncryptDecrypt) {
  Rng rng(GetParam() + 99);
  std::vector<std::uint8_t> plain(GetParam());
  for (auto& b : plain) {
    b = static_cast<std::uint8_t>(rng.uniform(0, 255));
  }
  const CipherKey key = derive_key("trace-secret");
  const auto ct = cbc_encrypt(plain, key, GetParam());
  EXPECT_EQ(cbc_decrypt(ct, key), plain);
  // ciphertext must differ from plaintext beyond the IV
  if (!plain.empty()) {
    EXPECT_NE(std::vector<std::uint8_t>(ct.begin() + 8, ct.end()), plain);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CbcRoundTrip,
                         ::testing::Values(0, 1, 7, 8, 9, 100, 4096));

TEST(Cipher, WrongKeyFailsOrGarbles) {
  const CipherKey key = derive_key("right");
  const CipherKey wrong = derive_key("wrong");
  const std::string secret = "/secret_project/input.dat";
  const auto ct = cbc_encrypt(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(secret.data()), secret.size()),
      key, 1);
  try {
    const auto pt = cbc_decrypt(ct, wrong);
    const std::string recovered(pt.begin(), pt.end());
    EXPECT_NE(recovered, secret);
  } catch (const FormatError&) {
    SUCCEED();  // bad padding detected — also acceptable
  }
}

TEST(Cipher, FieldHelpersRoundTrip) {
  const CipherKey key = derive_key("k");
  const std::string ct = cbc_encrypt_field("host13.lanl.gov", key, 5);
  EXPECT_EQ(cbc_decrypt_field(ct, key), "host13.lanl.gov");
  EXPECT_EQ(ct.find("lanl"), std::string::npos);
}

TEST(Cipher, SameFieldDifferentIvDiffers) {
  const CipherKey key = derive_key("k");
  EXPECT_NE(cbc_encrypt_field("x", key, 1), cbc_encrypt_field("x", key, 2));
}

TEST(Table, RendersHeadersAndRows) {
  TextTable t({"Feature", "Value"});
  t.add_row({"Anonymization", "No"});
  t.add_row({"Ease", "2 (Easy)"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Feature"), std::string::npos);
  EXPECT_NE(out.find("Anonymization"), std::string::npos);
  EXPECT_NE(out.find("2 (Easy)"), std::string::npos);
  EXPECT_NE(out.find("+--"), std::string::npos);
}

TEST(Table, RejectsWrongCellCount) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ConfigError);
}

TEST(Table, MarkdownRendering) {
  TextTable t({"k", "v"});
  t.set_align(1, Align::kRight);
  t.add_row({"x", "1"});
  const std::string md = t.render_markdown();
  EXPECT_NE(md.find("| k | v |"), std::string::npos);
  EXPECT_NE(md.find("---:"), std::string::npos);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter, i] {
      counter.fetch_add(1);
      return i * 2;
    }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * 2);
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversRange) {
  std::vector<int> hits(50, 0);
  parallel_for(50, [&](std::size_t i) { hits[i] = 1; }, 8);
  for (const int h : hits) {
    EXPECT_EQ(h, 1);
  }
}


TEST(AsciiChart, RendersSeriesAndAxes) {
  ChartSeries up{"up", 'o', {0.0, 1.0, 2.0, 3.0}};
  ChartSeries down{"down", '*', {3.0, 2.0, 1.0, 0.0}};
  ChartOptions options;
  options.width = 32;
  options.height = 8;
  options.y_label = "value";
  options.x_labels = {"a", "b"};
  const std::string chart = render_chart({up, down}, options);
  EXPECT_NE(chart.find('o'), std::string::npos);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find("value"), std::string::npos);
  EXPECT_NE(chart.find("[o] up"), std::string::npos);
  EXPECT_NE(chart.find("+--"), std::string::npos);
  // Rising series: 'o' appears in the top row region and bottom-left.
  const auto lines_out = split(chart, '\n');
  EXPECT_GE(lines_out.size(), 9u);
}

TEST(AsciiChart, RejectsBadInput) {
  EXPECT_THROW((void)render_chart({}), ConfigError);
  ChartSeries a{"a", 'o', {1.0, 2.0}};
  ChartSeries b{"b", '*', {1.0}};
  EXPECT_THROW((void)render_chart({a, b}), ConfigError);
}

TEST(AsciiChart, SinglePointSeries) {
  ChartSeries one{"one", 'x', {5.0}};
  const std::string chart = render_chart({one});
  EXPECT_NE(chart.find('x'), std::string::npos);
}

}  // namespace
}  // namespace iotaxo

