// Tests for the file-system substrate: path utilities, the ext3-like
// in-memory FS and the NFS-like wrapper.
#include <gtest/gtest.h>

#include "fs/memfs.h"
#include "fs/nfs.h"
#include "fs/path.h"
#include "util/error.h"

namespace iotaxo::fs {
namespace {

TEST(Path, NormalizeCollapses) {
  EXPECT_EQ(normalize_path("/a//b/./c"), "/a/b/c");
  EXPECT_EQ(normalize_path("a/b/../c"), "/a/c");
  EXPECT_EQ(normalize_path("/"), "/");
  EXPECT_EQ(normalize_path("///"), "/");
  EXPECT_EQ(normalize_path("/../x"), "/x");
}

TEST(Path, ParentAndBase) {
  EXPECT_EQ(parent_path("/a/b/c"), "/a/b");
  EXPECT_EQ(parent_path("/a"), "/");
  EXPECT_EQ(base_name("/a/b/c.txt"), "c.txt");
  EXPECT_EQ(base_name("/"), "");
}

TEST(MemFs, CreateWriteStatReadBack) {
  MemFs fs;
  OpCtx ctx;
  const auto open = fs.open("/out.dat", OpenMode::write_create(), ctx);
  const int fd = static_cast<int>(open.value);
  EXPECT_GE(fd, 3);
  const auto w = fs.write(fd, 0, 4096, ctx, nullptr);
  EXPECT_EQ(w.value, 4096);
  EXPECT_GT(w.cost, 0);
  EXPECT_EQ(fs.stat("/out.dat", ctx).value, 4096);
  const auto r = fs.read(fd, 0, 8192, ctx, nullptr);
  EXPECT_EQ(r.value, 4096);  // truncated at EOF
  EXPECT_EQ(fs.close(fd, ctx).value, 0);
}

TEST(MemFs, ContentRetentionRoundTrip) {
  LocalFsParams params;
  params.content = ContentPolicy::kRetain;
  MemFs fs(params);
  OpCtx ctx;
  const int fd =
      static_cast<int>(fs.open("/c.dat", OpenMode::write_create(), ctx).value);
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  (void)fs.write(fd, 2, static_cast<Bytes>(payload.size()), ctx,
                 payload.data());
  std::vector<std::uint8_t> out(5, 0);
  (void)fs.read(fd, 2, 5, ctx, out.data());
  EXPECT_EQ(out, payload);
  EXPECT_EQ(fs.content("/c.dat").size(), 7u);  // 2 zero bytes + payload
}

TEST(MemFs, MetadataOnlyStoresNoBytes) {
  MemFs fs;  // default: kMetadataOnly
  OpCtx ctx;
  const int fd =
      static_cast<int>(fs.open("/big.dat", OpenMode::write_create(), ctx).value);
  (void)fs.write(fd, 0, 10 * kGiB, ctx, nullptr);
  EXPECT_EQ(fs.stat_info("/big.dat").size, 10 * kGiB);
  EXPECT_TRUE(fs.content("/big.dat").empty());
}

TEST(MemFs, OpenMissingWithoutCreateThrows) {
  MemFs fs;
  OpCtx ctx;
  EXPECT_THROW((void)fs.open("/nope", OpenMode::read_only(), ctx), IoError);
}

TEST(MemFs, WriteOnReadOnlyFdThrows) {
  MemFs fs;
  OpCtx ctx;
  (void)fs.open("/f", OpenMode::write_create(), ctx);
  const int rd =
      static_cast<int>(fs.open("/f", OpenMode::read_only(), ctx).value);
  EXPECT_THROW((void)fs.write(rd, 0, 10, ctx, nullptr), IoError);
}

TEST(MemFs, BadFdThrows) {
  MemFs fs;
  OpCtx ctx;
  EXPECT_THROW((void)fs.read(99, 0, 1, ctx, nullptr), IoError);
  EXPECT_THROW((void)fs.close(99, ctx), IoError);
}

TEST(MemFs, TruncateResetsSize) {
  MemFs fs;
  OpCtx ctx;
  const int fd =
      static_cast<int>(fs.open("/t", OpenMode::write_create(), ctx).value);
  (void)fs.write(fd, 0, 1000, ctx, nullptr);
  (void)fs.close(fd, ctx);
  (void)fs.open("/t", OpenMode::write_create(), ctx);  // truncate
  EXPECT_EQ(fs.stat_info("/t").size, 0);
}

TEST(MemFs, MkdirUnlinkList) {
  MemFs fs;
  OpCtx ctx;
  (void)fs.mkdir("/dir", ctx);
  (void)fs.open("/dir/a", OpenMode::write_create(), ctx);
  (void)fs.open("/dir/b", OpenMode::write_create(), ctx);
  (void)fs.mkdir("/dir/sub", ctx);
  (void)fs.open("/dir/sub/deep", OpenMode::write_create(), ctx);
  const auto entries = fs.list("/dir");
  EXPECT_EQ(entries.size(), 3u);  // a, b, sub — not deep
  EXPECT_EQ(fs.readdir("/dir", ctx).value, 3);
  (void)fs.unlink("/dir/a", ctx);
  EXPECT_FALSE(fs.exists("/dir/a"));
  EXPECT_THROW((void)fs.unlink("/dir/sub", ctx), IoError);  // is a dir
  EXPECT_THROW((void)fs.mkdir("/dir", ctx), IoError);       // exists
}

TEST(MemFs, MmapRequiredBeforeMappedIo) {
  MemFs fs;
  OpCtx ctx;
  const int fd =
      static_cast<int>(fs.open("/m", OpenMode::read_write(), ctx).value);
  EXPECT_THROW((void)fs.mmap_write(fd, 0, 100, ctx), IoError);
  (void)fs.mmap(fd, ctx);
  EXPECT_EQ(fs.mmap_write(fd, 0, 100, ctx).value, 100);
  EXPECT_EQ(fs.stat_info("/m").size, 100);
}

TEST(MemFs, LargerWritesCostMore) {
  MemFs fs;
  OpCtx ctx;
  const int fd =
      static_cast<int>(fs.open("/c", OpenMode::write_create(), ctx).value);
  const SimTime small = fs.write(fd, 0, 4 * kKiB, ctx, nullptr).cost;
  const SimTime large = fs.write(fd, 0, 4 * kMiB, ctx, nullptr).cost;
  EXPECT_GT(large, small * 10);
}

TEST(MemFs, UidGidRecordedFromContext) {
  MemFs fs;
  OpCtx ctx;
  ctx.uid = 1234;
  ctx.gid = 99;
  (void)fs.open("/owned", OpenMode::write_create(), ctx);
  const StatInfo info = fs.stat_info("/owned");
  EXPECT_EQ(info.uid, 1234u);
  EXPECT_EQ(info.gid, 99u);
}

TEST(Nfs, AddsNetworkCostToEveryOp) {
  auto inner = std::make_shared<MemFs>();
  NfsFs nfs(inner);
  MemFs plain;
  OpCtx ctx;

  const auto nfs_open = nfs.open("/f", OpenMode::write_create(), ctx);
  const auto local_open = plain.open("/f", OpenMode::write_create(), ctx);
  EXPECT_GT(nfs_open.cost, local_open.cost);

  const int fd = static_cast<int>(nfs_open.value);
  const int lfd = static_cast<int>(local_open.value);
  EXPECT_GT(nfs.write(fd, 0, 64 * kKiB, ctx, nullptr).cost,
            plain.write(lfd, 0, 64 * kKiB, ctx, nullptr).cost);
}

TEST(Nfs, ReportsNfsKind) {
  NfsFs nfs(std::make_shared<MemFs>());
  EXPECT_EQ(nfs.kind(), FsKind::kNfs);
  EXPECT_EQ(nfs.fstype(), "nfs");
}

TEST(Nfs, ForwardsSemanticState) {
  auto inner = std::make_shared<MemFs>();
  NfsFs nfs(inner);
  OpCtx ctx;
  const int fd =
      static_cast<int>(nfs.open("/x", OpenMode::write_create(), ctx).value);
  (void)nfs.write(fd, 0, 777, ctx, nullptr);
  EXPECT_TRUE(inner->exists("/x"));
  EXPECT_EQ(nfs.stat_info("/x").size, 777);
}

TEST(Nfs, RequiresInner) {
  EXPECT_THROW(NfsFs bad(nullptr), ConfigError);
}

}  // namespace
}  // namespace iotaxo::fs
