// Tests for the taxonomy: feature schema, summary-table rendering (Tables 1
// and 2), the overhead harness, and the experiment-driven classifier.
#include <gtest/gtest.h>

#include "frameworks/lanl_trace.h"
#include "frameworks/partrace.h"
#include "frameworks/tracefs.h"
#include "pfs/pfs.h"
#include "taxonomy/classification.h"
#include "taxonomy/classifier.h"
#include "taxonomy/features.h"
#include "taxonomy/overhead.h"
#include "util/error.h"

namespace iotaxo::taxonomy {
namespace {

TEST(Features, ThirteenRowsInTableOrder) {
  EXPECT_EQ(all_features().size(), 13u);
  EXPECT_EQ(all_features().front(), FeatureId::kParallelFsCompatibility);
  EXPECT_EQ(all_features().back(), FeatureId::kElapsedTimeOverhead);
}

TEST(Features, NamesAndPlaceholders) {
  EXPECT_STREQ(feature_name(FeatureId::kSkewDriftAccounting),
               "Accounts for time skew and drift");
  EXPECT_STREQ(feature_placeholder(FeatureId::kEaseOfInstall),
               "[1 (V. Easy) thru 5 (V. Difficult)]");
}

TEST(Features, ScaleValues) {
  EXPECT_EQ(FeatureValue::scale(0, "a", "b").display, "No");
  EXPECT_EQ(FeatureValue::scale(2, "V. Easy", "V. Difficult").display,
            "2 (Easy)");
  EXPECT_EQ(FeatureValue::scale(5, "Simple", "V. Advanced").display,
            "5 (V. Advanced)");
  EXPECT_EQ(FeatureValue::yes_no(true).display, "Yes");
  EXPECT_EQ(FeatureValue::not_applicable().display, "N/A");
}

TEST(Classification, MissingFeatureThrows) {
  FrameworkClassification c;
  c.framework_name = "X";
  EXPECT_THROW((void)c.value(FeatureId::kAnonymization), ConfigError);
  c.set(FeatureId::kAnonymization, FeatureValue::yes_no(false));
  EXPECT_EQ(c.value(FeatureId::kAnonymization).display, "No");
}

TEST(Classification, Table1TemplateHasAllRows) {
  const std::string table = render_table1_template();
  for (const FeatureId id : all_features()) {
    EXPECT_NE(table.find(feature_name(id)), std::string::npos)
        << feature_name(id);
  }
  EXPECT_NE(table.find("[Yes or No]"), std::string::npos);
  EXPECT_NE(table.find("<I/O Tracing Framework Name>"), std::string::npos);
}

TEST(Classification, ComparisonTableWithFootnotes) {
  FrameworkClassification a;
  a.framework_name = "A";
  FrameworkClassification b;
  b.framework_name = "B";
  for (const FeatureId id : all_features()) {
    a.set(id, FeatureValue::yes_no(true));
    b.set(id, FeatureValue::yes_no(false));
  }
  a.note(FeatureId::kElapsedTimeOverhead, "high variance");
  const std::string table = render_comparison_table({a, b});
  EXPECT_NE(table.find("Table 2"), std::string::npos);
  EXPECT_NE(table.find("[1]"), std::string::npos);
  EXPECT_NE(table.find("high variance"), std::string::npos);
}

class TaxonomyFixture : public ::testing::Test {
 protected:
  TaxonomyFixture() : cluster_(make_params()) {}

  static sim::ClusterParams make_params() {
    sim::ClusterParams p;
    p.node_count = 8;
    return p;
  }

  [[nodiscard]] ClassifierConfig small_config() const {
    ClassifierConfig config;
    config.nranks = 8;
    config.probe_phases = 16;
    config.sweep_total_bytes = 64 * kMiB;
    return config;
  }

  sim::Cluster cluster_;
};

TEST_F(TaxonomyFixture, OverheadHarnessBasics) {
  OverheadHarness harness(cluster_,
                          [] { return std::make_shared<pfs::Pfs>(); });
  frameworks::LanlTrace lanl;
  workload::MpiIoTestParams params;
  params.nranks = 8;
  params.block = 256 * kKiB;
  params.total_bytes = 64 * kMiB;
  const OverheadPoint p =
      harness.measure(lanl, workload::make_mpi_io_test(params));
  EXPECT_GT(p.bw_untraced_mibps, 0.0);
  EXPECT_GT(p.bw_traced_mibps, 0.0);
  EXPECT_GT(p.bandwidth_overhead, 0.0);
  EXPECT_GT(p.elapsed_overhead, 0.0);
  EXPECT_GT(p.events, 0);
}

TEST_F(TaxonomyFixture, OverheadDecreasesWithBlockSize) {
  OverheadHarness harness(cluster_,
                          [] { return std::make_shared<pfs::Pfs>(); });
  frameworks::LanlTrace lanl;
  workload::MpiIoTestParams base;
  base.nranks = 8;
  base.total_bytes = 128 * kMiB;
  base.pattern = workload::Pattern::kNto1Strided;
  const auto points = harness.sweep_block_sizes(
      lanl, base, {64 * kKiB, 512 * kKiB, 4 * kMiB});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_GT(points[0].bandwidth_overhead, points[1].bandwidth_overhead);
  EXPECT_GT(points[1].bandwidth_overhead, points[2].bandwidth_overhead);
}

TEST_F(TaxonomyFixture, ClassifierReproducesTable2ForLanlTrace) {
  Classifier classifier(cluster_, small_config());
  frameworks::LanlTrace lanl;
  const FrameworkClassification c = classifier.classify(lanl);

  EXPECT_EQ(c.value(FeatureId::kParallelFsCompatibility).display, "Yes");
  EXPECT_EQ(c.value(FeatureId::kEaseOfInstall).display, "2 (Easy)");
  EXPECT_EQ(c.value(FeatureId::kAnonymization).display, "No");
  EXPECT_EQ(c.value(FeatureId::kEventTypes).display,
            "System calls, library calls");
  EXPECT_EQ(c.value(FeatureId::kGranularityControl).display, "1 (Simple)");
  EXPECT_EQ(c.value(FeatureId::kReplayableTraces).display, "No");
  EXPECT_EQ(c.value(FeatureId::kReplayFidelity).display, "N/A");
  EXPECT_EQ(c.value(FeatureId::kRevealsDependencies).display, "No");
  EXPECT_EQ(c.value(FeatureId::kIntrusiveness).display, "1 (Passive)");
  EXPECT_EQ(c.value(FeatureId::kAnalysisTools).display, "No");
  EXPECT_EQ(c.value(FeatureId::kTraceDataFormat).display, "Human readable");
  EXPECT_EQ(c.value(FeatureId::kSkewDriftAccounting).display, "Yes");
  EXPECT_GT(c.value(FeatureId::kElapsedTimeOverhead).numeric.value_or(0), 0.1);
}

TEST_F(TaxonomyFixture, ClassifierReproducesTable2ForTracefs) {
  Classifier classifier(cluster_, small_config());
  frameworks::Tracefs tracefs;
  const FrameworkClassification c = classifier.classify(tracefs);

  EXPECT_EQ(c.value(FeatureId::kParallelFsCompatibility).display, "No");
  EXPECT_EQ(c.value(FeatureId::kEaseOfInstall).display, "4 (Advanced)");
  EXPECT_EQ(c.value(FeatureId::kAnonymization).display, "4 (Advanced)");
  EXPECT_EQ(c.value(FeatureId::kEventTypes).display,
            "File system operations");
  EXPECT_EQ(c.value(FeatureId::kGranularityControl).display,
            "5 (V. Advanced)");
  EXPECT_EQ(c.value(FeatureId::kReplayableTraces).display, "No");
  EXPECT_EQ(c.value(FeatureId::kTraceDataFormat).display, "Binary");
  // Tracefs has no skew/drift story because it is not parallel-aware.
  EXPECT_EQ(c.value(FeatureId::kSkewDriftAccounting).display, "N/A");
  // Paper: <= 12.4% elapsed-time overhead on the I/O-intensive workload.
  EXPECT_LT(c.value(FeatureId::kElapsedTimeOverhead).numeric.value_or(1.0),
            0.2);
}

TEST_F(TaxonomyFixture, ClassifierReproducesTable2ForPartrace) {
  Classifier classifier(cluster_, small_config());
  frameworks::Partrace partrace;
  const FrameworkClassification c = classifier.classify(partrace);

  EXPECT_EQ(c.value(FeatureId::kParallelFsCompatibility).display, "Yes");
  EXPECT_EQ(c.value(FeatureId::kEaseOfInstall).display, "2 (Easy)");
  EXPECT_EQ(c.value(FeatureId::kAnonymization).display, "No");
  EXPECT_EQ(c.value(FeatureId::kGranularityControl).display, "No");
  EXPECT_EQ(c.value(FeatureId::kReplayableTraces).display, "Yes");
  EXPECT_EQ(c.value(FeatureId::kRevealsDependencies).display, "Yes");
  EXPECT_EQ(c.value(FeatureId::kTraceDataFormat).display, "Human readable");
  // //TRACE is parallel-aware but does not account for skew/drift: "No".
  EXPECT_EQ(c.value(FeatureId::kSkewDriftAccounting).display, "No");
  // Replay fidelity is measured, and should be a small error.
  const double fidelity =
      c.value(FeatureId::kReplayFidelity).numeric.value_or(1.0);
  EXPECT_LT(fidelity, 0.25);
}

TEST_F(TaxonomyFixture, FullComparisonTableRenders) {
  Classifier classifier(cluster_, small_config());
  frameworks::LanlTrace lanl;
  frameworks::Tracefs tracefs;
  frameworks::Partrace partrace;
  const std::string table = render_comparison_table({
      classifier.classify(lanl),
      classifier.classify(tracefs),
      classifier.classify(partrace),
  });
  EXPECT_NE(table.find("LANL-Trace"), std::string::npos);
  EXPECT_NE(table.find("Tracefs"), std::string::npos);
  EXPECT_NE(table.find("//TRACE"), std::string::npos);
  for (const FeatureId id : all_features()) {
    EXPECT_NE(table.find(feature_name(id)), std::string::npos);
  }
}

}  // namespace
}  // namespace iotaxo::taxonomy
