// End-to-end integration tests: trace -> analyze -> anonymize -> save/load
// -> replay pipelines crossing every module boundary.
#include <gtest/gtest.h>

#include <filesystem>

#include "analysis/bandwidth.h"
#include "analysis/call_summary.h"
#include "analysis/skew_drift.h"
#include "anon/anonymizer.h"
#include "frameworks/lanl_trace.h"
#include "frameworks/partrace.h"
#include "frameworks/tracefs.h"
#include "fs/memfs.h"
#include "pfs/pfs.h"
#include "replay/replayer.h"
#include "sim/cluster.h"
#include "taxonomy/overhead.h"
#include "trace/binary_format.h"
#include "trace/text_format.h"
#include "util/error.h"
#include "workload/io_intensive.h"
#include "workload/mpi_io_test.h"
#include "workload/probe_app.h"

namespace iotaxo {
namespace {

class IntegrationFixture : public ::testing::Test {
 protected:
  IntegrationFixture() : cluster_(make_params()) {}

  static sim::ClusterParams make_params() {
    sim::ClusterParams p;
    p.node_count = 8;
    return p;
  }

  sim::Cluster cluster_;
};

TEST_F(IntegrationFixture, TraceAnonymizeSaveLoadReplay) {
  // 1. Capture with //TRACE on the parallel file system.
  frameworks::PartraceParams params;
  params.sampling = 1.0;
  frameworks::Partrace partrace(params);
  workload::ProbeAppParams app;
  app.nranks = 8;
  app.phases = 16;
  app.shared_path = "/secret_project/shared.out";
  app.scratch_root = "/secret_project/scratch";
  frameworks::TraceJobOptions topts;
  topts.store_raw_streams = true;
  const auto traced = partrace.trace(cluster_, workload::make_probe_app(app),
                                     std::make_shared<pfs::Pfs>(), topts);

  // 2. Anonymize for distribution (LANL's release workflow).
  anon::RandomizingAnonymizer anonymizer(anon::FieldPolicy{}, 0xA5A5);
  const trace::TraceBundle scrubbed = anonymizer.apply(traced.bundle);
  EXPECT_FALSE(anon::leaks_any(scrubbed, {"secret_project"}));
  // Dependency edges survive anonymization (they carry only ranks+labels).
  EXPECT_EQ(scrubbed.dependencies.size(), traced.bundle.dependencies.size());

  // 3. Round-trip through disk.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "iotaxo_integration").string();
  std::filesystem::remove_all(dir);
  scrubbed.save(dir);
  const trace::TraceBundle loaded = trace::TraceBundle::load(dir);
  EXPECT_EQ(loaded.ranks.size(), scrubbed.ranks.size());
  EXPECT_EQ(loaded.dependencies.size(), scrubbed.dependencies.size());

  // 4. Replay the anonymized, disk-round-tripped trace. I/O structure is
  //    preserved even though paths are scrubbed tokens.
  replay::Replayer replayer(cluster_, std::make_shared<pfs::Pfs>());
  replay::ReplayOptions ropts;
  ropts.pseudo.sync = replay::SyncStrategy::kDependencies;
  const replay::ReplayResult result = replayer.replay(loaded, ropts);
  const double ratio = static_cast<double>(result.run.bytes_written) /
                       static_cast<double>(traced.run.bytes_written);
  EXPECT_GT(ratio, 0.98);  // only the capture-invisible mmap bytes missing
  EXPECT_LE(ratio, 1.0);

  std::filesystem::remove_all(dir);
}

TEST_F(IntegrationFixture, LanlTraceSkewCorrectionEndToEnd) {
  frameworks::LanlTrace lanl;
  workload::MpiIoTestParams params;
  params.nranks = 8;
  params.total_bytes = 32 * kMiB;
  params.block = 256 * kKiB;
  frameworks::TraceJobOptions topts;
  topts.store_raw_streams = true;
  const auto traced = lanl.trace(cluster_, workload::make_mpi_io_test(params),
                                 std::make_shared<pfs::Pfs>(), topts);

  // Fit the skew/drift model from the wrapper job's probes and verify the
  // correction brings simultaneous barrier exits into alignment.
  const analysis::SkewDriftModel model =
      analysis::SkewDriftModel::fit(traced.bundle.clock_probes);
  EXPECT_GT(model.max_skew(), from_millis(1.0));  // clocks really disagreed

  // Find the io_end barrier exits: corrected exit times must cluster far
  // tighter than raw local times.
  std::vector<std::pair<int, SimTime>> exits;
  for (const trace::TraceEvent& ev : traced.bundle.barrier_events) {
    if (ev.path == "io_end") {
      exits.emplace_back(ev.rank, ev.local_start + ev.duration);
    }
  }
  ASSERT_EQ(exits.size(), 8u);
  SimTime raw_min = exits[0].second, raw_max = exits[0].second;
  SimTime cor_min = 0, cor_max = 0;
  bool first = true;
  for (const auto& [rank, local] : exits) {
    raw_min = std::min(raw_min, local);
    raw_max = std::max(raw_max, local);
    const SimTime corrected = model.correct(rank, local);
    if (first) {
      cor_min = cor_max = corrected;
      first = false;
    } else {
      cor_min = std::min(cor_min, corrected);
      cor_max = std::max(cor_max, corrected);
    }
  }
  EXPECT_LT(cor_max - cor_min, (raw_max - raw_min) / 10)
      << "correction must shrink apparent barrier-exit spread by >10x";
}

TEST_F(IntegrationFixture, RawTraceTextIsExternallyParseable) {
  frameworks::LanlTrace lanl;
  workload::MpiIoTestParams params;
  params.nranks = 4;
  params.total_bytes = 8 * kMiB;
  params.block = 256 * kKiB;
  frameworks::TraceJobOptions topts;
  topts.store_raw_streams = true;
  const auto traced = lanl.trace(cluster_, workload::make_mpi_io_test(params),
                                 std::make_shared<pfs::Pfs>(), topts);

  // Render rank 0's stream to text and parse it back (what an external
  // analysis tool consuming published traces does).
  const trace::RankStream& rs = traced.bundle.ranks.front();
  trace::TextTraceWriter::StreamMeta meta{rs.host, rs.rank, rs.pid};
  const std::string text = trace::TextTraceWriter::render(meta, rs.events);
  const auto parsed = trace::TextTraceParser::parse(text);
  EXPECT_EQ(parsed.events.size(), rs.events.size());

  // I/O semantics survive the text round trip.
  Bytes original_bytes = 0;
  Bytes parsed_bytes = 0;
  for (std::size_t i = 0; i < rs.events.size(); ++i) {
    if (rs.events[i].name == "SYS_write") {
      original_bytes += rs.events[i].bytes;
      parsed_bytes += parsed.events[i].bytes;
    }
  }
  EXPECT_GT(original_bytes, 0);
  EXPECT_EQ(parsed_bytes, original_bytes);
}

TEST_F(IntegrationFixture, TracefsEncryptedArchiveRoundTrip) {
  frameworks::TracefsParams params;
  params.shim.compress = true;
  params.shim.encrypt = true;
  params.passphrase = "archive-key";
  frameworks::Tracefs tracefs(params);
  workload::IoIntensiveParams app;
  app.nranks = 1;
  app.files_per_rank = 20;
  frameworks::TraceJobOptions topts;
  topts.store_raw_streams = true;
  const auto traced = tracefs.trace(cluster_, workload::make_io_intensive(app),
                                    std::make_shared<fs::MemFs>(), topts);

  const auto blob = tracefs.export_native(traced.bundle);
  // Encrypted: undecodable without the key...
  EXPECT_THROW((void)trace::decode_binary(blob), FormatError);
  // ...but intact with it.
  const auto events = trace::decode_binary(blob, derive_key("archive-key"));
  EXPECT_EQ(static_cast<long long>(events.size()),
            [&] {
              long long n = 0;
              for (const auto& rs : traced.bundle.ranks) {
                n += static_cast<long long>(rs.events.size());
              }
              return n;
            }());
}

TEST_F(IntegrationFixture, PatternsOrderAsInFigures) {
  // At 64 KiB the paper's Figures 2-4 order bandwidth: strided < non-strided
  // (both shared-file) while N-to-N is far faster.
  taxonomy::OverheadHarness harness(
      cluster_, [] { return std::make_shared<pfs::Pfs>(); });
  frameworks::LanlTrace lanl;

  auto bw_for = [&](workload::Pattern pattern) {
    workload::MpiIoTestParams params;
    params.pattern = pattern;
    params.nranks = 8;
    params.block = 64 * kKiB;
    params.total_bytes = 64 * kMiB;
    return harness.measure(lanl, workload::make_mpi_io_test(params));
  };
  const auto strided = bw_for(workload::Pattern::kNto1Strided);
  const auto seq = bw_for(workload::Pattern::kNto1NonStrided);
  const auto nn = bw_for(workload::Pattern::kNtoN);

  EXPECT_LT(strided.bw_untraced_mibps, seq.bw_untraced_mibps);
  EXPECT_LT(seq.bw_untraced_mibps, nn.bw_untraced_mibps);
}

}  // namespace
}  // namespace iotaxo
