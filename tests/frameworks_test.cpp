// Tests for the three I/O tracing frameworks: LANL-Trace, Tracefs, //TRACE.
#include <gtest/gtest.h>

#include "analysis/aggregate_timing.h"
#include "analysis/call_summary.h"
#include "anon/anonymizer.h"
#include "frameworks/lanl_trace.h"
#include "frameworks/partrace.h"
#include "frameworks/tracefs.h"
#include "fs/memfs.h"
#include "fs/nfs.h"
#include "pfs/pfs.h"
#include "trace/binary_format.h"
#include "util/error.h"
#include "workload/io_intensive.h"
#include "workload/mpi_io_test.h"
#include "workload/probe_app.h"

namespace iotaxo::frameworks {
namespace {

class FrameworksFixture : public ::testing::Test {
 protected:
  FrameworksFixture() : cluster_(make_params()) {}

  static sim::ClusterParams make_params() {
    sim::ClusterParams p;
    p.node_count = 8;
    return p;
  }

  [[nodiscard]] static mpi::Job small_parallel_job() {
    workload::MpiIoTestParams params;
    params.nranks = 8;
    params.block = 64 * kKiB;
    params.total_bytes = 16 * kMiB;
    return workload::make_mpi_io_test(params);
  }

  [[nodiscard]] static mpi::Job small_local_job() {
    workload::IoIntensiveParams params;
    params.nranks = 2;
    params.files_per_rank = 10;
    params.mmap_files_per_rank = 2;
    return workload::make_io_intensive(params);
  }

  sim::Cluster cluster_;
};

TEST_F(FrameworksFixture, InstallScores) {
  LanlTrace lanl;
  Tracefs tracefs;
  Partrace partrace;
  // Table 2: ease of installation 2 (Easy), 4 (Difficult), 2 (Easy).
  EXPECT_EQ(ease_of_install_score(lanl.install_profile()), 2);
  EXPECT_EQ(ease_of_install_score(tracefs.install_profile()), 4);
  EXPECT_EQ(ease_of_install_score(partrace.install_profile()), 2);
  // All three are passive.
  EXPECT_EQ(intrusiveness_score(lanl.install_profile()), 1);
  EXPECT_EQ(intrusiveness_score(tracefs.install_profile()), 1);
  EXPECT_EQ(intrusiveness_score(partrace.install_profile()), 1);
}

TEST_F(FrameworksFixture, FsSupportMatrix) {
  LanlTrace lanl;
  Tracefs tracefs;
  Partrace partrace;
  EXPECT_TRUE(lanl.supports_fs(fs::FsKind::kParallel));
  EXPECT_TRUE(partrace.supports_fs(fs::FsKind::kParallel));
  EXPECT_FALSE(tracefs.supports_fs(fs::FsKind::kParallel));
  EXPECT_TRUE(tracefs.supports_fs(fs::FsKind::kLocal));
  EXPECT_TRUE(tracefs.supports_fs(fs::FsKind::kNfs));

  TracefsParams adapted;
  adapted.enable_pfs_adaptation = true;
  EXPECT_TRUE(Tracefs(adapted).supports_fs(fs::FsKind::kParallel));
}

TEST_F(FrameworksFixture, LanlTraceProducesThreeOutputTypes) {
  LanlTrace lanl;
  TraceJobOptions options;
  options.store_raw_streams = true;
  const TraceRunResult result = lanl.trace(
      cluster_, small_parallel_job(), std::make_shared<pfs::Pfs>(), options);

  // 1. raw trace data, per node
  ASSERT_EQ(result.bundle.ranks.size(), 8u);
  EXPECT_GT(result.bundle.ranks[0].events.size(), 10u);

  // 2. aggregate timing information (renderable; includes barriers)
  ASSERT_FALSE(result.bundle.barrier_events.empty());
  const std::string timing = analysis::render_aggregate_timing(
      result.bundle.barrier_events, result.bundle.metadata.at("application"));
  EXPECT_NE(timing.find("Entered barrier at"), std::string::npos);
  EXPECT_NE(timing.find("host0.lanl.gov"), std::string::npos);

  // 3. call summary
  const std::string summary =
      analysis::render_call_summary(result.bundle);
  EXPECT_NE(summary.find("SYS_write"), std::string::npos);
  EXPECT_NE(summary.find("MPI_Barrier"), std::string::npos);
}

TEST_F(FrameworksFixture, LanlTraceClockProbesSupportSkewAccounting) {
  LanlTrace lanl;
  const TraceRunResult result = lanl.trace(
      cluster_, small_parallel_job(), std::make_shared<pfs::Pfs>(), {});
  // probe / barrier / probe before and after: 4 probes per rank.
  EXPECT_EQ(result.bundle.clock_probes.size(), 4u * 8u);
}

TEST_F(FrameworksFixture, LanlTraceStraceSeesOnlySyscalls) {
  LanlTraceParams params;
  params.mode = interpose::PtraceTracer::Mode::kStrace;
  LanlTrace strace_mode(params);
  TraceJobOptions options;
  options.store_raw_streams = true;
  const TraceRunResult result = strace_mode.trace(
      cluster_, small_parallel_job(), std::make_shared<pfs::Pfs>(), options);
  for (const trace::RankStream& rs : result.bundle.ranks) {
    for (const trace::TraceEvent& ev : rs.events) {
      EXPECT_EQ(ev.cls, trace::EventClass::kSyscall) << ev.name;
    }
  }
  EXPECT_EQ(strace_mode.capabilities().event_types, "System calls");
}

TEST_F(FrameworksFixture, LanlTraceApparentElapsedIncludesPostprocessing) {
  LanlTrace lanl;
  const TraceRunResult result = lanl.trace(
      cluster_, small_parallel_job(), std::make_shared<pfs::Pfs>(), {});
  EXPECT_GT(result.apparent_elapsed, result.run.elapsed);
}

TEST_F(FrameworksFixture, TracefsRefusesParallelFsOutOfTheBox) {
  Tracefs tracefs;
  EXPECT_THROW((void)tracefs.trace(cluster_, small_parallel_job(),
                                   std::make_shared<pfs::Pfs>(), {}),
               UnsupportedError);
  // With the adaptation shim it works (the paper's anticipated port).
  TracefsParams adapted;
  adapted.enable_pfs_adaptation = true;
  Tracefs ported(adapted);
  const TraceRunResult result = ported.trace(
      cluster_, small_parallel_job(), std::make_shared<pfs::Pfs>(), {});
  EXPECT_GT(result.bundle.total_events(), 0);
}

TEST_F(FrameworksFixture, TracefsWorksOnLocalAndNfs) {
  Tracefs tracefs;
  const TraceRunResult local = tracefs.trace(
      cluster_, small_local_job(), std::make_shared<fs::MemFs>(), {});
  EXPECT_GT(local.bundle.total_events(), 0);

  auto nfs = std::make_shared<fs::NfsFs>(std::make_shared<fs::MemFs>());
  const TraceRunResult remote =
      tracefs.trace(cluster_, small_local_job(), nfs, {});
  EXPECT_GT(remote.bundle.total_events(), 0);
}

TEST_F(FrameworksFixture, TracefsSeesMmapIoThatPtraceMisses) {
  Tracefs tracefs;
  TraceJobOptions options;
  options.store_raw_streams = true;
  const TraceRunResult vfs_view = tracefs.trace(
      cluster_, small_local_job(), std::make_shared<fs::MemFs>(), options);
  EXPECT_TRUE(vfs_view.bundle.call_summary.contains("vfs_mmap_write"));

  LanlTrace lanl;
  const TraceRunResult ptrace_view = lanl.trace(
      cluster_, small_local_job(), std::make_shared<fs::MemFs>(), options);
  for (const auto& [name, entry] : ptrace_view.bundle.call_summary) {
    EXPECT_EQ(name.find("mmap_write"), std::string::npos);
  }
}

TEST_F(FrameworksFixture, TracefsFilterReducesEventsAndOverhead) {
  TracefsParams all;
  TracefsParams meta_only;
  meta_only.filter = "metadata";
  Tracefs full(all);
  Tracefs filtered(meta_only);

  const TraceRunResult everything = full.trace(
      cluster_, small_local_job(), std::make_shared<fs::MemFs>(), {});
  const TraceRunResult metadata = filtered.trace(
      cluster_, small_local_job(), std::make_shared<fs::MemFs>(), {});
  EXPECT_LT(metadata.bundle.total_events(), everything.bundle.total_events());
  EXPECT_LE(metadata.run.elapsed, everything.run.elapsed);
}

TEST_F(FrameworksFixture, TracefsAnonymizationScrubs) {
  Tracefs tracefs;
  TraceJobOptions options;
  options.store_raw_streams = true;
  workload::IoIntensiveParams params;
  params.nranks = 1;
  params.files_per_rank = 5;
  params.root = "/secret_project/data";
  const TraceRunResult result =
      tracefs.trace(cluster_, workload::make_io_intensive(params),
                    std::make_shared<fs::MemFs>(), options);
  EXPECT_TRUE(anon::leaks_any(result.bundle, {"secret_project"}));
  const auto scrubbed = tracefs.anonymize_bundle(result.bundle);
  ASSERT_TRUE(scrubbed.has_value());
  EXPECT_FALSE(anon::leaks_any(*scrubbed, {"secret_project"}));
}

TEST_F(FrameworksFixture, TracefsNativeOutputIsBinary) {
  Tracefs tracefs;
  TraceJobOptions options;
  options.store_raw_streams = true;
  const TraceRunResult result = tracefs.trace(
      cluster_, small_local_job(), std::make_shared<fs::MemFs>(), options);
  const auto blob = tracefs.export_native(result.bundle);
  EXPECT_TRUE(trace::looks_binary(blob));
  // And it decodes back to the same number of events.
  long long raw_events = 0;
  for (const trace::RankStream& rs : result.bundle.ranks) {
    raw_events += static_cast<long long>(rs.events.size());
  }
  EXPECT_EQ(static_cast<long long>(trace::decode_binary(blob).size()),
            raw_events);
}

TEST_F(FrameworksFixture, LanlTraceNativeOutputIsText) {
  LanlTrace lanl;
  TraceJobOptions options;
  options.store_raw_streams = true;
  const TraceRunResult result = lanl.trace(
      cluster_, small_parallel_job(), std::make_shared<pfs::Pfs>(), options);
  EXPECT_FALSE(trace::looks_binary(lanl.export_native(result.bundle)));
}

TEST_F(FrameworksFixture, PartraceDiscoversDependencies) {
  PartraceParams params;
  params.sampling = 1.0;
  Partrace partrace(params);
  workload::ProbeAppParams app;
  app.nranks = 8;
  app.phases = 16;
  const TraceRunResult result =
      partrace.trace(cluster_, workload::make_probe_app(app),
                     std::make_shared<pfs::Pfs>(), {});
  ASSERT_FALSE(result.bundle.dependencies.empty());
  std::set<int> sources;
  for (const trace::DependencyEdge& e : result.bundle.dependencies) {
    EXPECT_GE(e.from_rank, 0);
    EXPECT_LT(e.from_rank, 8);
    EXPECT_NE(e.from_rank, e.to_rank);
    sources.insert(e.from_rank);
  }
  // Full sampling with phases >= nranks rotates through every node.
  EXPECT_GE(sources.size(), 6u);
}

TEST_F(FrameworksFixture, PartraceSamplingZeroFindsNothingAndCostsLittle) {
  PartraceParams off;
  off.sampling = 0.0;
  Partrace unthrottled(off);
  workload::ProbeAppParams app;
  app.nranks = 8;
  app.phases = 16;
  const mpi::Job job = workload::make_probe_app(app);
  const TraceRunResult quiet =
      unthrottled.trace(cluster_, job, std::make_shared<pfs::Pfs>(), {});
  EXPECT_TRUE(quiet.bundle.dependencies.empty());

  PartraceParams on;
  on.sampling = 1.0;
  Partrace throttled(on);
  const TraceRunResult loud =
      throttled.trace(cluster_, job, std::make_shared<pfs::Pfs>(), {});
  EXPECT_GT(loud.run.elapsed, quiet.run.elapsed);
}

TEST_F(FrameworksFixture, PartraceOverheadGrowsWithSampling) {
  workload::ProbeAppParams app;
  app.nranks = 8;
  app.phases = 16;
  const mpi::Job job = workload::make_probe_app(app);
  SimTime prev = 0;
  for (const double s : {0.0, 0.5, 1.0}) {
    PartraceParams params;
    params.sampling = s;
    Partrace partrace(params);
    const TraceRunResult r =
        partrace.trace(cluster_, job, std::make_shared<pfs::Pfs>(), {});
    EXPECT_GE(r.run.elapsed, prev);
    prev = r.run.elapsed;
  }
}

TEST_F(FrameworksFixture, PartraceRejectsBadSampling) {
  PartraceParams params;
  params.sampling = 1.5;
  EXPECT_THROW(Partrace bad(params), ConfigError);
}

TEST_F(FrameworksFixture, ThrottleEnginePhaseRotation) {
  ThrottleEngine engine(4, 0.5, from_millis(1.0));
  // ceil(0.5 * 4) = 2 sampled nodes: phases 0,1 throttle ranks 0,1;
  // phases 2,3 throttle nobody.
  EXPECT_EQ(engine.throttled_rank_for_phase(0), 0);
  EXPECT_EQ(engine.throttled_rank_for_phase(1), 1);
  EXPECT_EQ(engine.throttled_rank_for_phase(2), -1);
  EXPECT_EQ(engine.throttled_rank_for_phase(3), -1);
  EXPECT_EQ(engine.throttled_rank_for_phase(4), 0);
}

TEST_F(FrameworksFixture, CapabilitiesMatchTable2) {
  LanlTrace lanl;
  Tracefs tracefs;
  Partrace partrace;
  EXPECT_EQ(lanl.capabilities().anonymization_level, 0);
  EXPECT_EQ(tracefs.capabilities().anonymization_level, 4);
  EXPECT_EQ(partrace.capabilities().anonymization_level, 0);

  EXPECT_FALSE(lanl.capabilities().replayable_traces);
  EXPECT_FALSE(tracefs.capabilities().replayable_traces);
  EXPECT_TRUE(partrace.capabilities().replayable_traces);

  EXPECT_TRUE(lanl.capabilities().accounts_skew_drift);
  EXPECT_FALSE(tracefs.capabilities().accounts_skew_drift);
  EXPECT_FALSE(partrace.capabilities().accounts_skew_drift);

  EXPECT_TRUE(lanl.capabilities().human_readable_output);
  EXPECT_FALSE(tracefs.capabilities().human_readable_output);
  EXPECT_TRUE(partrace.capabilities().human_readable_output);
}

TEST_F(FrameworksFixture, UntracedBaselineIsFastest) {
  const mpi::Job job = small_parallel_job();
  const mpi::RunResult baseline =
      run_untraced(cluster_, job, std::make_shared<pfs::Pfs>());
  LanlTrace lanl;
  const TraceRunResult traced =
      lanl.trace(cluster_, job, std::make_shared<pfs::Pfs>(), {});
  EXPECT_GT(traced.run.elapsed, baseline.elapsed);
  EXPECT_GT(traced.apparent_elapsed, traced.run.elapsed);
}

}  // namespace
}  // namespace iotaxo::frameworks
