// Crash-safety tests: the failpoint registry, the durable write protocol
// (tmp + fsync + rename + dir fsync), MANIFEST.iotm round trips, and
// UnifiedTraceStore::attach_dir recovery — including the crash matrix,
// which discovers every failpoint the cold-commit path evaluates (via
// fail::set_tracing) and simulates a process death at each one in turn,
// asserting that recovery serves exactly the last committed state. Plus
// ScanPolicy::skip_damaged: queries over a store with a corrupt block
// complete over everything healthy with exact damage counters.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/store_manifest.h"
#include "analysis/unified_store.h"
#include "trace/binary_format.h"
#include "trace/event_batch.h"
#include "util/crc32.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/strings.h"

namespace iotaxo::analysis {
namespace {

using trace::EventBatch;
using trace::TraceEvent;

/// Disarm every failpoint on scope exit, so a failing assertion mid-test
/// cannot leak an armed point into later tests.
struct FailpointGuard {
  FailpointGuard() { fail::clear(); }
  ~FailpointGuard() { fail::clear(); }
};

[[nodiscard]] std::vector<TraceEvent> era_events(int era, int count) {
  std::vector<TraceEvent> events;
  for (int i = 0; i < count; ++i) {
    TraceEvent ev = trace::make_syscall(
        i % 3 == 0 ? "SYS_read" : "SYS_write",
        {"5", "4096", strprintf("%d", i)}, 4096);
    ev.rank = i % 4;
    ev.host = "host00";
    ev.path = i % 2 == 0 ? strprintf("/pfs/era%d.dat", era) : "";
    ev.fd = 5;
    ev.bytes = 4096;
    ev.local_start = static_cast<SimTime>(era) * kSecond +
                     static_cast<SimTime>(i) * kMillisecond;
    ev.duration = 10 * kMicrosecond;
    events.push_back(std::move(ev));
  }
  return events;
}

[[nodiscard]] auto all_queries(const UnifiedTraceStore& store) {
  return std::tuple{store.call_stats(),
                    store.bytes_in_window(0, 10 * kSecond),
                    store.io_rate_series(from_millis(25.0)),
                    store.hottest_files(8)};
}

std::string make_scratch_dir(const char* tag) {
  const std::string dir =
      strprintf("/tmp/iotaxo_recovery_%s_%d", tag,
                ::testing::UnitTest::GetInstance()->random_seed());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

[[nodiscard]] UnifiedTraceStore::ColdTierOptions cold_options(
    const std::string& dir) {
  UnifiedTraceStore::ColdTierOptions cold;
  cold.directory = dir;
  cold.binary.compress = true;
  cold.binary.checksum = true;
  cold.block_records = 16;
  return cold;
}

/// One committed era of `count` events in `dir` (commit through the full
/// spill + manifest protocol).
void commit_era(const std::string& dir, int era, int count) {
  UnifiedTraceStore store;
  const StoreHealth health = store.attach_dir(dir);
  ASSERT_TRUE(health.healthy());
  store.ingest(EventBatch::from_events(era_events(era, count)),
               {{"framework", "test"}, {"application", strprintf("e%d", era)}});
  ASSERT_GE(store.compact(static_cast<std::size_t>(-1), cold_options(dir)),
            1u);
}

[[nodiscard]] std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return bytes;
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

// ---------------------------------------------------------------- registry

TEST(Failpoint, InactiveByDefaultAndAfterClear) {
  FailpointGuard guard;
  EXPECT_FALSE(fail::active());
  fail::point("nonexistent");  // must be a no-op
  EXPECT_EQ(fail::torn_limit("nonexistent"), std::nullopt);

  fail::configure("x", "error");
  EXPECT_TRUE(fail::active());
  fail::clear();
  EXPECT_FALSE(fail::active());
  fail::point("x");  // disarmed again
}

TEST(Failpoint, ErrorCrashAndTornActions) {
  FailpointGuard guard;
  fail::configure("a", "error");
  EXPECT_THROW(fail::point("a"), IoError);
  fail::configure("b", "crash");
  EXPECT_THROW(fail::point("b"), fail::CrashError);
  // CrashError is deliberately not an iotaxo::Error: a recovery-oblivious
  // catch (const Error&) must not swallow a simulated death.
  try {
    fail::point("b");
    FAIL() << "crash failpoint did not throw";
  } catch (const Error&) {
    FAIL() << "CrashError must not be catchable as iotaxo::Error";
  } catch (const fail::CrashError&) {
  }
  fail::configure("c", "torn:8");
  fail::point("c");  // torn specs act at the write site, not at point()
  EXPECT_EQ(fail::torn_limit("c"), std::uint64_t{8});
  EXPECT_EQ(fail::torn_limit("a"), std::nullopt);
  EXPECT_THROW(fail::configure("d", "bogus"), ConfigError);
  EXPECT_THROW(fail::configure("d", "torn:"), ConfigError);
  EXPECT_THROW(fail::configure("d", "torn:9x"), ConfigError);
}

TEST(Failpoint, ConfigureFromSpecParsesLists) {
  FailpointGuard guard;
  fail::configure_from_spec("p=error,,q=torn:3,");
  EXPECT_THROW(fail::point("p"), IoError);
  EXPECT_EQ(fail::torn_limit("q"), std::uint64_t{3});
  EXPECT_THROW(fail::configure_from_spec("nospec"), ConfigError);
}

TEST(Failpoint, TracingRecordsFirstHitOrder) {
  FailpointGuard guard;
  fail::set_tracing(true);
  fail::point("one");
  fail::point("two");
  fail::point("one");  // duplicates collapse to the first hit
  const std::vector<std::string> traced = fail::traced_points();
  fail::set_tracing(false);
  ASSERT_EQ(traced.size(), 2u);
  EXPECT_EQ(traced[0], "one");
  EXPECT_EQ(traced[1], "two");
}

// ----------------------------------------------------------- durable write

TEST(DurableWrite, RoundTripLeavesNoTmp) {
  const std::string dir = make_scratch_dir("durable");
  const std::vector<std::uint8_t> bytes = {1, 2, 3, 4, 5};
  trace::write_binary_file(dir + "/out.bin", bytes);
  EXPECT_EQ(read_file(dir + "/out.bin"), bytes);
  EXPECT_FALSE(std::filesystem::exists(dir + "/out.bin.tmp"));
  std::filesystem::remove_all(dir);
}

TEST(DurableWrite, TornWriteLeavesOnlyTruncatedTmp) {
  FailpointGuard guard;
  const std::string dir = make_scratch_dir("torn");
  const std::vector<std::uint8_t> bytes(64, 0xAB);
  fail::configure("binary.file.write", "torn:7");
  EXPECT_THROW(trace::write_binary_file(dir + "/out.bin", bytes),
               fail::CrashError);
  EXPECT_FALSE(std::filesystem::exists(dir + "/out.bin"));
  ASSERT_TRUE(std::filesystem::exists(dir + "/out.bin.tmp"));
  EXPECT_EQ(std::filesystem::file_size(dir + "/out.bin.tmp"), 7u);
  std::filesystem::remove_all(dir);
}

TEST(DurableWrite, CrashBeforeRenameLeavesFullTmp) {
  FailpointGuard guard;
  const std::string dir = make_scratch_dir("prerename");
  const std::vector<std::uint8_t> bytes(64, 0xCD);
  fail::configure("binary.file.rename", "crash");
  EXPECT_THROW(trace::write_binary_file(dir + "/out.bin", bytes),
               fail::CrashError);
  EXPECT_FALSE(std::filesystem::exists(dir + "/out.bin"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/out.bin.tmp"));
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------- manifest

TEST(StoreManifest, EncodeDecodeRoundTrip) {
  StoreManifest m;
  m.next_seq = 7;
  m.entries.push_back({"era-5.iotb3", 1234, 0xDEADBEEF, 5});
  m.entries.push_back({"era-6.iotb3", 99, 0x1, 6});
  const std::vector<std::uint8_t> bytes = m.encode();
  EXPECT_EQ(StoreManifest::decode(bytes), m);
  EXPECT_EQ(*m.find("era-6.iotb3"), m.entries[1]);
  EXPECT_EQ(m.find("era-0.iotb3"), nullptr);
}

TEST(StoreManifest, DecodeRejectsCorruption) {
  StoreManifest m;
  m.next_seq = 1;
  m.entries.push_back({"era-0.iotb3", 10, 2, 0});
  std::vector<std::uint8_t> bytes = m.encode();
  // Any flipped bit — magic, counts, names, or the seal itself — fails the
  // sealing CRC before any count is trusted.
  for (const std::size_t at : {std::size_t{0}, std::size_t{8},
                               bytes.size() / 2, bytes.size() - 1}) {
    std::vector<std::uint8_t> bad = bytes;
    bad[at] ^= 0x10;
    EXPECT_THROW(StoreManifest::decode(bad), FormatError) << "offset " << at;
  }
  EXPECT_THROW(StoreManifest::decode(std::vector<std::uint8_t>(4, 0)),
               FormatError);
}

TEST(StoreManifest, LoadAbsentReturnsNullopt) {
  const std::string dir = make_scratch_dir("manifest_absent");
  EXPECT_EQ(StoreManifest::load(dir), std::nullopt);
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------------- attach_dir

TEST(AttachDir, EmptyDirectoryIsHealthy) {
  const std::string dir = make_scratch_dir("attach_empty");
  UnifiedTraceStore store;
  const StoreHealth health = store.attach_dir(dir);
  EXPECT_TRUE(health.healthy());
  EXPECT_EQ(health.recovered_eras, 0u);
  EXPECT_EQ(health.torn_tmps_removed, 0u);
  EXPECT_EQ(store.total_events(), 0);
  EXPECT_THROW((void)UnifiedTraceStore().attach_dir(dir + "/nope"), IoError);
  std::filesystem::remove_all(dir);
}

TEST(AttachDir, RecoversCommittedErasAndMatchesOwned) {
  const std::string dir = make_scratch_dir("attach_ok");
  commit_era(dir, 0, 40);
  commit_era(dir, 1, 40);

  UnifiedTraceStore owned;
  for (int era = 0; era < 2; ++era) {
    owned.ingest(EventBatch::from_events(era_events(era, 40)),
                 {{"framework", "test"}});
  }
  UnifiedTraceStore store;
  const StoreHealth health = store.attach_dir(dir);
  EXPECT_TRUE(health.healthy());
  EXPECT_EQ(health.recovered_eras, 2u);
  EXPECT_EQ(store.pool_count(), 2u);
  EXPECT_EQ(all_queries(store), all_queries(owned));
  EXPECT_EQ(store.rank_timeline(1), owned.rank_timeline(1));

  // Compacting *into* the attached directory continues the era numbering
  // (no collision with the recovered files), and a fresh attach serves all
  // three eras.
  store.ingest(EventBatch::from_events(era_events(2, 40)),
               {{"framework", "test"}});
  ASSERT_EQ(store.compact(static_cast<std::size_t>(-1), cold_options(dir)),
            3u);
  owned.ingest(EventBatch::from_events(era_events(2, 40)),
               {{"framework", "test"}});
  UnifiedTraceStore reattached;
  const StoreHealth health2 = reattached.attach_dir(dir);
  EXPECT_TRUE(health2.healthy());
  EXPECT_EQ(health2.recovered_eras, 3u);
  EXPECT_EQ(all_queries(reattached), all_queries(owned));
  std::filesystem::remove_all(dir);
}

TEST(AttachDir, QuarantinesCorruptEraAndServesTheRest) {
  const std::string dir = make_scratch_dir("attach_corrupt");
  commit_era(dir, 0, 40);
  commit_era(dir, 1, 40);

  // Flip one payload byte of era 1: its whole-file CRC no longer matches
  // the manifest, so attach must quarantine it — not throw — and serve
  // era 0.
  const std::string victim = dir + "/era-1.iotb3";
  std::vector<std::uint8_t> bytes = read_file(victim);
  bytes[bytes.size() / 2] ^= 0x01;
  write_file(victim, bytes);

  UnifiedTraceStore store;
  const StoreHealth health = store.attach_dir(dir);
  EXPECT_FALSE(health.healthy());
  EXPECT_EQ(health.recovered_eras, 1u);
  ASSERT_EQ(health.quarantined.size(), 1u);
  EXPECT_EQ(health.quarantined[0].file, "era-1.iotb3");
  EXPECT_NE(health.quarantined[0].reason.find("CRC"), std::string::npos)
      << health.quarantined[0].reason;
  EXPECT_TRUE(std::filesystem::exists(victim));  // reported, never deleted

  UnifiedTraceStore owned;
  owned.ingest(EventBatch::from_events(era_events(0, 40)),
               {{"framework", "test"}});
  EXPECT_EQ(all_queries(store), all_queries(owned));
  std::filesystem::remove_all(dir);
}

TEST(AttachDir, UnlistedContainerIsQuarantinedAsUncommitted) {
  const std::string dir = make_scratch_dir("attach_unlisted");
  commit_era(dir, 0, 40);
  // A crash between the era rename and the manifest update leaves a valid
  // but uncommitted container: present, not listed. It must be reported
  // and not served (the committed state never included it).
  const std::vector<std::uint8_t> era = trace::encode_binary_v3(
      EventBatch::from_events(era_events(9, 16)), {}, 16);
  write_file(dir + "/era-9.iotb3", era);

  UnifiedTraceStore store;
  const StoreHealth health = store.attach_dir(dir);
  EXPECT_EQ(health.recovered_eras, 1u);
  ASSERT_EQ(health.quarantined.size(), 1u);
  EXPECT_EQ(health.quarantined[0].file, "era-9.iotb3");
  EXPECT_NE(health.quarantined[0].reason.find("manifest"), std::string::npos);

  UnifiedTraceStore owned;
  owned.ingest(EventBatch::from_events(era_events(0, 40)),
               {{"framework", "test"}});
  EXPECT_EQ(all_queries(store), all_queries(owned));

  // Later compactions must not collide with the orphan's number either.
  store.ingest(EventBatch::from_events(era_events(2, 16)),
               {{"framework", "test"}});
  (void)store.compact(static_cast<std::size_t>(-1), cold_options(dir));
  EXPECT_TRUE(std::filesystem::exists(dir + "/era-10.iotb3"));
  std::filesystem::remove_all(dir);
}

TEST(AttachDir, CorruptManifestFallsBackToOpenValidation) {
  const std::string dir = make_scratch_dir("attach_badmanifest");
  commit_era(dir, 0, 40);
  commit_era(dir, 1, 40);
  const std::string manifest_path =
      dir + "/" + std::string(kManifestFileName);
  std::vector<std::uint8_t> bytes = read_file(manifest_path);
  bytes[bytes.size() - 2] ^= 0xFF;
  write_file(manifest_path, bytes);

  UnifiedTraceStore store;
  const StoreHealth health = store.attach_dir(dir);
  // The manifest itself is quarantined; both eras still open cleanly and
  // are served.
  EXPECT_FALSE(health.healthy());
  ASSERT_EQ(health.quarantined.size(), 1u);
  EXPECT_EQ(health.quarantined[0].file, kManifestFileName);
  EXPECT_EQ(health.recovered_eras, 2u);

  UnifiedTraceStore owned;
  for (int era = 0; era < 2; ++era) {
    owned.ingest(EventBatch::from_events(era_events(era, 40)),
                 {{"framework", "test"}});
  }
  EXPECT_EQ(all_queries(store), all_queries(owned));
  std::filesystem::remove_all(dir);
}

TEST(AttachDir, RemovesTornTmps) {
  FailpointGuard guard;
  const std::string dir = make_scratch_dir("attach_torn");
  commit_era(dir, 0, 40);

  // Crash mid-write of the next era: a truncated era-1.iotb3.tmp is left
  // behind.
  {
    UnifiedTraceStore store;
    (void)store.attach_dir(dir);
    store.ingest(EventBatch::from_events(era_events(1, 40)),
                 {{"framework", "test"}});
    fail::configure("store.cold.write", "torn:40");
    EXPECT_THROW(
        (void)store.compact(static_cast<std::size_t>(-1), cold_options(dir)),
        fail::CrashError);
  }
  fail::clear();
  ASSERT_TRUE(std::filesystem::exists(dir + "/era-1.iotb3.tmp"));

  UnifiedTraceStore store;
  const StoreHealth health = store.attach_dir(dir);
  EXPECT_TRUE(health.healthy());  // a torn tmp is routine crash litter
  EXPECT_EQ(health.torn_tmps_removed, 1u);
  EXPECT_EQ(health.recovered_eras, 1u);
  EXPECT_FALSE(std::filesystem::exists(dir + "/era-1.iotb3.tmp"));

  UnifiedTraceStore owned;
  owned.ingest(EventBatch::from_events(era_events(0, 40)),
               {{"framework", "test"}});
  EXPECT_EQ(all_queries(store), all_queries(owned));
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------------ crash matrix

// Simulate one cold-commit attempt that dies at failpoint `point`, then
// recover. Returns the recovered store's query results.
[[nodiscard]] auto crash_and_recover(const std::string& dir,
                                     const std::string& point) {
  {
    UnifiedTraceStore store;
    (void)store.attach_dir(dir);
    store.ingest(EventBatch::from_events(era_events(1, 40)),
                 {{"framework", "test"}});
    fail::configure(point, "crash");
    EXPECT_THROW(
        (void)store.compact(static_cast<std::size_t>(-1), cold_options(dir)),
        fail::CrashError)
        << "at " << point;
    fail::clear();
  }  // the crashed process's store dies with it
  UnifiedTraceStore recovered;
  const StoreHealth health = recovered.attach_dir(dir);
  // Whatever the crash left behind, recovery must serve *something*
  // consistent without throwing; quarantined files and removed tmps are
  // legitimate, lost committed eras are not (asserted by the caller via
  // query results).
  return std::tuple{all_queries(recovered), recovered.rank_timeline(1),
                    health};
}

TEST(CrashMatrix, EveryFailpointRecoversToLastCommittedState) {
  FailpointGuard guard;

  // Discover the full commit protocol by tracing one healthy commit.
  const std::string trace_dir = make_scratch_dir("matrix_trace");
  commit_era(trace_dir, 0, 40);
  fail::set_tracing(true);
  commit_era(trace_dir, 1, 40);
  const std::vector<std::string> points = fail::traced_points();
  fail::set_tracing(false);
  std::filesystem::remove_all(trace_dir);

  // The protocol must contain every documented step, in order; the matrix
  // then widens automatically when new failpoints join the path.
  const std::vector<std::string> expected = {
      "store.cold.spill",      "store.cold.write",
      "store.cold.fsync",      "store.cold.rename",
      "store.cold.dirsync",    "store.manifest.update",
      "store.manifest.write",  "store.manifest.fsync",
      "store.manifest.rename", "store.manifest.dirsync",
      "store.cold.swap"};
  ASSERT_EQ(points, expected);

  // The commit point: once the manifest rename has happened, the new era
  // is committed. fail::point fires *before* its step executes, so crashes
  // at or before "store.manifest.rename" roll back, later ones commit.
  std::size_t commit_at = 0;
  while (points[commit_at] != "store.manifest.rename") {
    ++commit_at;
  }

  UnifiedTraceStore owned_before;
  owned_before.ingest(EventBatch::from_events(era_events(0, 40)),
                      {{"framework", "test"}});
  UnifiedTraceStore owned_after;
  for (int era = 0; era < 2; ++era) {
    owned_after.ingest(EventBatch::from_events(era_events(era, 40)),
                       {{"framework", "test"}});
  }
  const auto before = all_queries(owned_before);
  const auto before_timeline = owned_before.rank_timeline(1);
  const auto after = all_queries(owned_after);
  const auto after_timeline = owned_after.rank_timeline(1);

  for (std::size_t i = 0; i < points.size(); ++i) {
    SCOPED_TRACE("crash at " + points[i]);
    const std::string dir = make_scratch_dir("matrix");
    commit_era(dir, 0, 40);  // the last committed state
    const auto [queries, timeline, health] =
        crash_and_recover(dir, points[i]);
    if (i <= commit_at) {
      EXPECT_EQ(queries, before);
      EXPECT_EQ(timeline, before_timeline);
    } else {
      EXPECT_EQ(queries, after);
      EXPECT_EQ(timeline, after_timeline);
      EXPECT_EQ(health.recovered_eras, 2u);
    }
    std::filesystem::remove_all(dir);
  }
}

TEST(CrashMatrix, TornWritesAtEveryWidthRecover) {
  FailpointGuard guard;
  UnifiedTraceStore owned_before;
  owned_before.ingest(EventBatch::from_events(era_events(0, 40)),
                      {{"framework", "test"}});
  const auto before = all_queries(owned_before);

  // Tear the era write at several widths (including 0: the tmp exists but
  // is empty). Every one of them rolls back to the committed state.
  for (const char* spec : {"torn:0", "torn:1", "torn:100"}) {
    SCOPED_TRACE(spec);
    const std::string dir = make_scratch_dir("torn_matrix");
    commit_era(dir, 0, 40);
    {
      UnifiedTraceStore store;
      (void)store.attach_dir(dir);
      store.ingest(EventBatch::from_events(era_events(1, 40)),
                   {{"framework", "test"}});
      fail::configure("store.cold.write", spec);
      EXPECT_THROW((void)store.compact(static_cast<std::size_t>(-1),
                                       cold_options(dir)),
                   fail::CrashError);
      fail::clear();
    }
    UnifiedTraceStore recovered;
    const StoreHealth health = recovered.attach_dir(dir);
    EXPECT_EQ(health.torn_tmps_removed, 1u);
    EXPECT_EQ(all_queries(recovered), before);
    std::filesystem::remove_all(dir);
  }
}

// Streaming ingest adds a window the original matrix never exercised: the
// open era is sealed (an in-memory state change) before the cold commit
// persists it. A crash anywhere between the seal and the manifest rename
// must roll back to the last committed state — the seal itself commits
// nothing — and a clean re-run afterwards must commit everything the
// streamed flushes carried.
TEST(CrashMatrix, CrashBetweenEraSealAndManifestCommitRollsBack) {
  FailpointGuard guard;
  UnifiedTraceStore owned_before;
  owned_before.ingest(EventBatch::from_events(era_events(0, 40)),
                      {{"framework", "test"}});
  const auto before = all_queries(owned_before);
  UnifiedTraceStore owned_after;
  for (int era = 0; era < 2; ++era) {
    owned_after.ingest(EventBatch::from_events(era_events(era, 40)),
                       {{"framework", "test"}});
  }
  const auto after = all_queries(owned_after);

  const auto stream_era1 = [](UnifiedTraceStore& store) {
    store.set_stream_ingest(StreamIngestOptions{});
    const std::vector<TraceEvent> events = era_events(1, 40);
    for (std::size_t i = 0; i < events.size(); i += 8) {
      store.ingest(
          EventBatch::from_events({events.begin() + static_cast<long>(i),
                                   events.begin() + static_cast<long>(i + 8)}),
          {{"framework", "test"}});
    }
    EXPECT_EQ(store.pool_infos().back().flushes_absorbed, 5u);
    EXPECT_TRUE(store.seal_open_era());
  };

  for (const char* point :
       {"store.cold.spill", "store.cold.rename", "store.manifest.rename"}) {
    SCOPED_TRACE(point);
    const std::string dir = make_scratch_dir("stream_seal");
    commit_era(dir, 0, 40);
    {
      UnifiedTraceStore store;
      (void)store.attach_dir(dir);
      stream_era1(store);
      fail::configure(point, "crash");
      EXPECT_THROW(
          (void)store.compact(static_cast<std::size_t>(-1), cold_options(dir)),
          fail::CrashError);
      fail::clear();
    }  // the crashed process's store (and its sealed era) dies with it
    UnifiedTraceStore recovered;
    const StoreHealth health = recovered.attach_dir(dir);
    EXPECT_EQ(all_queries(recovered), before);
    EXPECT_EQ(health.recovered_eras, 1u);

    // The retry: stream the same flushes again and commit cleanly. A crash
    // after the era rename leaves a stale uncommitted container behind
    // (quarantined here, adopted or removed by `fsck --repair`); the
    // re-commit spills under a fresh seq, so queries still see exactly the
    // committed data.
    stream_era1(recovered);
    ASSERT_GE(
        recovered.compact(static_cast<std::size_t>(-1), cold_options(dir)),
        1u);
    UnifiedTraceStore committed;
    const StoreHealth committed_health = committed.attach_dir(dir);
    EXPECT_LE(committed_health.quarantined.size(), 1u);
    EXPECT_EQ(all_queries(committed), after);
    std::filesystem::remove_all(dir);
  }
}

// An `error`-spec failure (transient syscall error, not a crash) surfaces
// as IoError through compact, and the store directory stays attachable.
TEST(CrashMatrix, ErrorSpecSurfacesIoErrorAndKeepsDirConsistent) {
  FailpointGuard guard;
  const std::string dir = make_scratch_dir("error_spec");
  commit_era(dir, 0, 40);
  {
    UnifiedTraceStore store;
    (void)store.attach_dir(dir);
    store.ingest(EventBatch::from_events(era_events(1, 40)),
                 {{"framework", "test"}});
    fail::configure("store.cold.fsync", "error");
    EXPECT_THROW(
        (void)store.compact(static_cast<std::size_t>(-1), cold_options(dir)),
        IoError);
    fail::clear();
  }
  UnifiedTraceStore recovered;
  const StoreHealth health = recovered.attach_dir(dir);
  EXPECT_EQ(health.recovered_eras, 1u);
  UnifiedTraceStore owned;
  owned.ingest(EventBatch::from_events(era_events(0, 40)),
               {{"framework", "test"}});
  EXPECT_EQ(all_queries(recovered), all_queries(owned));
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------------ skip_damaged

// A v3 container with exactly one corrupt block (block 1 of 5), plus the
// events that survive when that block is skipped.
struct DamagedFixture {
  std::string path;
  std::vector<TraceEvent> all_events;
  std::vector<TraceEvent> healthy_events;  // all minus block 1's records
};

[[nodiscard]] DamagedFixture make_damaged_container(const std::string& dir) {
  DamagedFixture fx;
  fx.all_events = era_events(0, 80);  // 5 blocks of 16
  for (std::size_t i = 0; i < fx.all_events.size(); ++i) {
    if (i < 16 || i >= 32) {
      fx.healthy_events.push_back(fx.all_events[i]);
    }
  }
  trace::BinaryOptions options;
  options.checksum = true;  // uncompressed: records sit at fixed strides
  std::vector<std::uint8_t> bytes = trace::encode_binary_v3(
      EventBatch::from_events(fx.all_events), options, 16);
  // Flip a byte inside block 1's records. The head ends where the first
  // block begins; with no compression each block is block_records * the
  // v2 record stride, so block 1 starts at head_end + 16 strides. The
  // flip lands mid-record 18 and breaks only block 1's CRC.
  const std::size_t record_region = 80 * trace::v2layout::kStride;
  const std::size_t head_end = [&] {
    // Find the block region by length arithmetic: everything between the
    // head and the footer is exactly the 80 records (uncompressed).
    const std::size_t footer_len = [&] {
      std::uint64_t v = 0;
      for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(
                 bytes[bytes.size() - trace::v3layout::kTrailerSize + i])
             << (8 * i);
      }
      return static_cast<std::size_t>(v);
    }();
    return bytes.size() - trace::v3layout::kTrailerSize - footer_len -
           record_region;
  }();
  bytes[head_end + 18 * trace::v2layout::kStride + 5] ^= 0x20;
  fx.path = dir + "/damaged.iotb3";
  write_file(fx.path, bytes);
  return fx;
}

TEST(SkipDamaged, DefaultPolicyFailsFast) {
  const std::string dir = make_scratch_dir("skip_default");
  const DamagedFixture fx = make_damaged_container(dir);
  UnifiedTraceStore store;
  store.ingest_view(fx.path, {{"framework", "test"}});
  EXPECT_THROW((void)store.call_stats(), FormatError);
  EXPECT_EQ(store.damage_counters(), (DamageCounters{0, 0}));
  std::filesystem::remove_all(dir);
}

TEST(SkipDamaged, QueriesMatchStoreWithoutTheDamagedBlock) {
  const std::string dir = make_scratch_dir("skip_match");
  const DamagedFixture fx = make_damaged_container(dir);

  UnifiedTraceStore store;
  store.ingest_view(fx.path, {{"framework", "test"}});
  store.set_scan_policy({.skip_damaged = true});

  // What the queries should see: exactly the healthy blocks' records.
  UnifiedTraceStore healthy;
  healthy.ingest(EventBatch::from_events(fx.healthy_events),
                 {{"framework", "test"}});

  EXPECT_EQ(store.call_stats(), healthy.call_stats());
  EXPECT_EQ(store.bytes_in_window(0, 10 * kSecond),
            healthy.bytes_in_window(0, 10 * kSecond));
  EXPECT_EQ(store.hottest_files(8), healthy.hottest_files(8));
  // Bucket boundaries derive from the healthy blocks' span, which equals
  // the full span here (damage is interior).
  EXPECT_EQ(store.io_rate_series(from_millis(25.0)),
            healthy.io_rate_series(from_millis(25.0)));
  EXPECT_EQ(store.rank_timeline(1), healthy.rank_timeline(1));

  // The sticky failed block is visible through pool introspection too.
  ASSERT_EQ(store.pool_infos().size(), 1u);
  EXPECT_EQ(store.pool_infos()[0].damaged_blocks, 1u);
  std::filesystem::remove_all(dir);
}

TEST(SkipDamaged, CountersAreExactPerQuery) {
  const std::string dir = make_scratch_dir("skip_counters");
  const DamagedFixture fx = make_damaged_container(dir);

  UnifiedTraceStore store;
  store.ingest_view(fx.path, {{"framework", "test"}});
  store.set_scan_policy({.skip_damaged = true});
  EXPECT_EQ(store.damage_counters(), (DamageCounters{0, 0}));

  // Each query that touches the damaged block counts it exactly once (16
  // records per skip — the block's size).
  (void)store.call_stats();
  EXPECT_EQ(store.damage_counters(), (DamageCounters{1, 16}));
  (void)store.call_stats();  // sticky failure, counted again per query
  EXPECT_EQ(store.damage_counters(), (DamageCounters{2, 32}));
  (void)store.bytes_in_window(0, 10 * kSecond);
  EXPECT_EQ(store.damage_counters(), (DamageCounters{3, 48}));
  (void)store.io_rate_series(from_millis(25.0));  // span + bucket: one skip
  EXPECT_EQ(store.damage_counters(), (DamageCounters{4, 64}));
  (void)store.hottest_files(8);
  EXPECT_EQ(store.damage_counters(), (DamageCounters{5, 80}));
  // A window that only touches healthy blocks skips nothing: block 1 holds
  // records 16..31 (stamps 16..31 ms), so probe past it.
  (void)store.bytes_in_window(40 * kMillisecond, 79 * kMillisecond);
  EXPECT_EQ(store.damage_counters(), (DamageCounters{5, 80}));

  store.reset_damage_counters();
  EXPECT_EQ(store.damage_counters(), (DamageCounters{0, 0}));

  // An uncorrupted twin with the same policy never counts anything.
  UnifiedTraceStore twin;
  trace::BinaryOptions options;
  options.checksum = true;
  const std::vector<std::uint8_t> clean_bytes = trace::encode_binary_v3(
      EventBatch::from_events(fx.all_events), options, 16);
  const std::string clean_path = dir + "/clean.iotb3";
  write_file(clean_path, clean_bytes);
  twin.ingest_view(clean_path, {{"framework", "test"}});
  twin.set_scan_policy({.skip_damaged = true});
  (void)all_queries(twin);
  (void)twin.rank_timeline(1);
  EXPECT_EQ(twin.damage_counters(), (DamageCounters{0, 0}));
  EXPECT_EQ(twin.pool_infos()[0].damaged_blocks, 0u);
  std::filesystem::remove_all(dir);
}

// skip_damaged also applies to eras recovered by attach_dir: damage that
// whole-file CRC checking cannot catch (no manifest) is skipped at query
// time instead of failing the query.
TEST(SkipDamaged, WorksOnAttachedDirWithoutManifest) {
  const std::string dir = make_scratch_dir("skip_attach");
  const DamagedFixture fx = make_damaged_container(dir);

  UnifiedTraceStore store;
  const StoreHealth health = store.attach_dir(dir);
  // No manifest: the container opens cleanly (envelope + footer are
  // intact; block damage is only discovered on decode) and is served.
  EXPECT_TRUE(health.healthy());
  EXPECT_EQ(health.recovered_eras, 1u);
  store.set_scan_policy({.skip_damaged = true});

  UnifiedTraceStore healthy;
  healthy.ingest(EventBatch::from_events(fx.healthy_events),
                 {{"framework", "test"}});
  EXPECT_EQ(store.call_stats(), healthy.call_stats());
  EXPECT_EQ(store.damage_counters(), (DamageCounters{1, 16}));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace iotaxo::analysis
