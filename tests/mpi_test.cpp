// Tests for the SimMPI runtime: program building/validation, barrier
// semantics, messaging, event emission, bandwidth windows, mmap opacity.
#include <gtest/gtest.h>

#include <memory>

#include "fs/memfs.h"
#include "mpi/program.h"
#include "mpi/runtime.h"
#include "pfs/pfs.h"
#include "sim/cluster.h"
#include "trace/sink.h"
#include "util/error.h"
#include "util/strings.h"

namespace iotaxo::mpi {
namespace {

using trace::EventClass;
using trace::TraceEvent;

/// Observer that records everything at zero cost.
class RecordingObserver : public IoObserver {
 public:
  SimTime on_event(const TraceEvent& ev) override {
    events.push_back(ev);
    return 0;
  }
  std::vector<TraceEvent> events;
};

/// Observer that charges a fixed cost per syscall event.
class CostlyObserver : public IoObserver {
 public:
  explicit CostlyObserver(SimTime cost) : cost_(cost) {}
  SimTime on_event(const TraceEvent& ev) override {
    return ev.cls == EventClass::kSyscall ? cost_ : 0;
  }

 private:
  SimTime cost_;
};

class RuntimeFixture : public ::testing::Test {
 protected:
  RuntimeFixture() : cluster_(make_params()) {}

  static sim::ClusterParams make_params() {
    sim::ClusterParams p;
    p.node_count = 8;
    return p;
  }

  [[nodiscard]] RunOptions options(fs::VfsPtr vfs = nullptr) const {
    RunOptions o;
    o.vfs = vfs ? std::move(vfs) : std::make_shared<fs::MemFs>();
    o.startup = 0;
    return o;
  }

  sim::Cluster cluster_;
};

TEST_F(RuntimeFixture, BuilderProducesExpectedOps) {
  ScriptBuilder b;
  b.open(0, "/f", fs::OpenMode::write_create())
      .write_blocks(0, 4 * kKiB, 3)
      .barrier("sync")
      .close(0);
  const Program prog = std::move(b).build();
  ASSERT_EQ(prog.size(), 4u);
  EXPECT_EQ(prog[0].type, OpType::kOpen);
  EXPECT_EQ(prog[1].count, 3);
  EXPECT_EQ(prog[2].label, "sync");
  EXPECT_EQ(prog[3].type, OpType::kClose);
}

TEST_F(RuntimeFixture, BuilderInfersStridedHint) {
  ScriptBuilder b;
  b.open(0, "/f", fs::OpenMode::write_create());
  b.write_blocks(0, 64 * kKiB, 4, 0, 32 * 64 * kKiB);
  EXPECT_EQ(b.ops()[1].hint, fs::AccessHint::kStrided);
  ScriptBuilder c;
  c.open(0, "/f", fs::OpenMode::write_create());
  c.write_blocks(0, 64 * kKiB, 4, 0, 0);
  EXPECT_EQ(c.ops()[1].hint, fs::AccessHint::kSequential);
}

TEST_F(RuntimeFixture, ValidateRejectsMismatchedBarriers) {
  ScriptBuilder a;
  a.barrier("x");
  ScriptBuilder b;  // no barrier
  std::vector<Program> job{std::move(a).build(), std::move(b).build()};
  EXPECT_THROW(validate_job(job), ConfigError);
}

TEST_F(RuntimeFixture, ValidateRejectsUnopenedSlot) {
  ScriptBuilder a;
  a.write_blocks(3, kKiB, 1);
  std::vector<Program> job{std::move(a).build()};
  EXPECT_THROW(validate_job(job), ConfigError);
}

TEST_F(RuntimeFixture, ValidateRejectsUnbalancedSendRecv) {
  ScriptBuilder a;
  a.send(1, 64);
  ScriptBuilder b;  // never receives
  std::vector<Program> job{std::move(a).build(), std::move(b).build()};
  EXPECT_THROW(validate_job(job), ConfigError);
}

TEST_F(RuntimeFixture, BarrierSynchronizesClocks) {
  // Rank 1 computes much longer; after the barrier both proceed together.
  auto rec = std::make_shared<RecordingObserver>();
  RunOptions o = options();
  o.observers = {rec};
  std::vector<Program> job;
  {
    ScriptBuilder b;
    b.compute(from_millis(1.0)).barrier("meet");
    job.push_back(std::move(b).build());
  }
  {
    ScriptBuilder b;
    b.compute(from_millis(500.0)).barrier("meet");
    job.push_back(std::move(b).build());
  }
  Runtime rt(cluster_, o);
  const RunResult result = rt.run(job);
  ASSERT_TRUE(result.barrier_release.contains("meet"));
  EXPECT_GT(result.barrier_release.at("meet"), from_millis(500.0));
  // Rank 0 waited ~499ms in the barrier.
  SimTime wait0 = 0;
  for (const TraceEvent& ev : rec->events) {
    if (ev.name == "MPI_Barrier" && ev.rank == 0) {
      wait0 = ev.duration;
    }
  }
  EXPECT_GT(wait0, from_millis(400.0));
}

TEST_F(RuntimeFixture, EventsPerWriteBlockIsThree) {
  auto rec = std::make_shared<RecordingObserver>();
  RunOptions o = options();
  o.observers = {rec};
  ScriptBuilder b;
  b.open(0, "/f", fs::OpenMode::write_create());
  b.write_blocks(0, 4 * kKiB, 5);
  b.close(0);
  Runtime rt(cluster_, o);
  (void)rt.run({std::move(b).build()});

  int lib_writes = 0;
  int sys_writes = 0;
  int sys_seeks = 0;
  for (const TraceEvent& ev : rec->events) {
    if (ev.name == "MPI_File_write_at") ++lib_writes;
    if (ev.name == "SYS_write") ++sys_writes;
    if (ev.name == "SYS_lseek") ++sys_seeks;
  }
  EXPECT_EQ(lib_writes, 5);
  EXPECT_EQ(sys_writes, 5);
  EXPECT_EQ(sys_seeks, 5);
}

TEST_F(RuntimeFixture, MpiOpenEmitsStatfsOpenFcntl) {
  auto rec = std::make_shared<RecordingObserver>();
  RunOptions o = options();
  o.observers = {rec};
  ScriptBuilder b;
  b.open(0, "/f", fs::OpenMode::write_create(), fs::AccessHint::kSequential,
         Api::kMpiIo);
  b.close(0);
  Runtime rt(cluster_, o);
  (void)rt.run({std::move(b).build()});
  std::vector<std::string> names;
  for (const TraceEvent& ev : rec->events) {
    names.push_back(ev.name);
  }
  EXPECT_EQ(names[0], "MPI_File_open");
  EXPECT_EQ(names[1], "SYS_statfs64");
  EXPECT_EQ(names[2], "SYS_open");
  EXPECT_EQ(names[3], "SYS_fcntl64");
}

TEST_F(RuntimeFixture, MmapIoEmitsNoSyscallEvents) {
  auto rec = std::make_shared<RecordingObserver>();
  RunOptions o = options();
  o.observers = {rec};
  ScriptBuilder b;
  b.open(0, "/m", fs::OpenMode::read_write(), fs::AccessHint::kSequential,
         Api::kPosix);
  b.mmap(0);
  b.mmap_write(0, 4 * kKiB, 8, 0);
  b.close(0);
  Runtime rt(cluster_, o);
  const RunResult r = rt.run({std::move(b).build()});
  EXPECT_EQ(r.bytes_written, 8 * 4 * kKiB);
  for (const TraceEvent& ev : rec->events) {
    EXPECT_EQ(ev.name.find("mmap_write"), std::string::npos)
        << "mmap stores must not surface as syscall/library events";
  }
}

TEST_F(RuntimeFixture, ObserverCostSlowsTheRun) {
  ScriptBuilder b;
  b.open(0, "/f", fs::OpenMode::write_create());
  b.write_blocks(0, 4 * kKiB, 100);
  b.close(0);
  const Program prog = std::move(b).build();

  Runtime plain(cluster_, options());
  const SimTime untraced = plain.run({prog}).elapsed;

  RunOptions o = options();
  o.observers = {std::make_shared<CostlyObserver>(from_micros(300.0))};
  Runtime traced(cluster_, o);
  const SimTime traced_elapsed = traced.run({prog}).elapsed;

  EXPECT_GT(traced_elapsed, untraced + 100 * 2 * from_micros(250.0));
}

TEST_F(RuntimeFixture, SharedFileAmplifiesTracerCost) {
  // The same per-event observer cost inflates *absolute* job time far more
  // on a shared parallel file: a stopped writer holds stripe locks and
  // stalls its peers (this is why the paper's N-to-1 numbers dwarf N-to-N).
  auto extra_time_with = [&](bool shared) {
    std::vector<Program> job;
    for (int r = 0; r < 8; ++r) {
      ScriptBuilder b;
      const std::string path = shared ? "/pfs/all.out"
                                      : strprintf("/pfs/own%d.out", r);
      b.open(0, path, fs::OpenMode::write_create());
      b.write_blocks(0, 64 * kKiB, 50, shared ? r * 64 * kKiB : 0,
                     shared ? 8 * 64 * kKiB : 0);
      b.close(0);
      job.push_back(std::move(b).build());
    }
    RunOptions o = options(std::make_shared<pfs::Pfs>());
    Runtime plain(cluster_, o);
    const SimTime untraced = plain.run(job).elapsed;
    o.vfs = std::make_shared<pfs::Pfs>();
    o.observers = {std::make_shared<CostlyObserver>(from_micros(300.0))};
    Runtime traced(cluster_, o);
    return traced.run(job).elapsed - untraced;
  };
  const SimTime shared_extra = extra_time_with(true);
  const SimTime own_extra = extra_time_with(false);
  // Amplification with 8 writers is 1 + 0.5*7 = 4.5x.
  EXPECT_GT(shared_extra, 3 * own_extra);
}

TEST_F(RuntimeFixture, SendRecvTransfersAndBlocks) {
  auto rec = std::make_shared<RecordingObserver>();
  RunOptions o = options();
  o.observers = {rec};
  std::vector<Program> job;
  {
    ScriptBuilder b;
    b.compute(from_millis(50.0)).send(1, 1 * kMiB);
    job.push_back(std::move(b).build());
  }
  {
    ScriptBuilder b;
    b.recv(0).compute(from_millis(1.0));
    job.push_back(std::move(b).build());
  }
  Runtime rt(cluster_, o);
  const RunResult r = rt.run(job);
  // Receiver could not finish before the sender's 50ms compute + transfer.
  EXPECT_GT(r.rank_end[1], from_millis(50.0));
}

TEST_F(RuntimeFixture, RecvDeadlockDetected) {
  std::vector<Program> job;
  {
    ScriptBuilder b;
    b.recv(1, 7).send(1, 8, 7);
    job.push_back(std::move(b).build());
  }
  {
    ScriptBuilder b;
    b.recv(0, 7).send(0, 8, 7);
    job.push_back(std::move(b).build());
  }
  Runtime rt(cluster_, options());
  EXPECT_THROW((void)rt.run(job), ConfigError);
}

TEST_F(RuntimeFixture, BarrierDeadlockDetected) {
  // One rank finishes without the barrier the other waits on — the job
  // validates only barrier *counts*, so craft it via recv mismatch-free ops.
  std::vector<Program> job;
  {
    ScriptBuilder b;
    b.barrier("only_rank0_reaches_this");
    job.push_back(std::move(b).build());
  }
  {
    ScriptBuilder b;
    b.barrier("x");
    Program p = std::move(b).build();
    p.clear();  // rank 1 does nothing but validate counted before clearing
    job.push_back(std::move(p));
  }
  Runtime rt(cluster_, options());
  EXPECT_THROW((void)rt.run(job), ConfigError);
}

TEST_F(RuntimeFixture, ClockProbesCarryNodeLocalTime) {
  auto rec = std::make_shared<RecordingObserver>();
  RunOptions o = options();
  o.observers = {rec};
  std::vector<Program> job;
  for (int r = 0; r < 4; ++r) {
    ScriptBuilder b;
    b.clock_probe("pre_free").barrier("sync").clock_probe("pre_sync");
    job.push_back(std::move(b).build());
  }
  Runtime rt(cluster_, o);
  (void)rt.run(job);

  std::vector<SimTime> sync_readings;
  for (const TraceEvent& ev : rec->events) {
    if (ev.cls == EventClass::kClockProbe && !ev.args.empty() &&
        ev.args[0] == "pre_sync") {
      sync_readings.push_back(ev.local_start);
    }
  }
  ASSERT_EQ(sync_readings.size(), 4u);
  // Probes fire at nearly the same global instant but local clocks differ
  // by the injected skew (hundreds of ms >> barrier staggering).
  SimTime min = sync_readings[0];
  SimTime max = sync_readings[0];
  for (const SimTime t : sync_readings) {
    min = std::min(min, t);
    max = std::max(max, t);
  }
  EXPECT_GT(max - min, from_millis(1.0));
}

TEST_F(RuntimeFixture, BytesAccounting) {
  ScriptBuilder b;
  b.open(0, "/f", fs::OpenMode::write_create());
  b.write_blocks(0, 64 * kKiB, 10);
  b.close(0);
  ScriptBuilder r;
  r.open(0, "/f", fs::OpenMode::read_only(), fs::AccessHint::kSequential,
         Api::kPosix);
  r.read_blocks(0, 64 * kKiB, 10, 0);
  r.close(0, Api::kPosix);
  Program prog = std::move(b).build();
  const Program reader = std::move(r).build();
  prog.insert(prog.end(), reader.begin(), reader.end());

  Runtime rt(cluster_, options());
  const RunResult result = rt.run({prog});
  EXPECT_EQ(result.bytes_written, 10 * 64 * kKiB);
  EXPECT_EQ(result.bytes_read, 10 * 64 * kKiB);
}

TEST_F(RuntimeFixture, StartupDelaysEverything) {
  ScriptBuilder b;
  b.compute(from_millis(1.0));
  const Program prog = std::move(b).build();

  RunOptions o = options();
  o.startup = from_seconds(2.0);
  Runtime rt(cluster_, o);
  EXPECT_GT(rt.run({prog}).elapsed, from_seconds(2.0));
}

TEST_F(RuntimeFixture, DeterministicAcrossRuns) {
  std::vector<Program> job;
  for (int r = 0; r < 4; ++r) {
    ScriptBuilder b;
    b.open(0, strprintf("/f%d", r), fs::OpenMode::write_create());
    b.write_blocks(0, 16 * kKiB, 20);
    b.barrier("m");
    b.close(0);
    job.push_back(std::move(b).build());
  }
  Runtime a(cluster_, options());
  Runtime b2(cluster_, options());
  EXPECT_EQ(a.run(job).elapsed, b2.run(job).elapsed);
}

TEST_F(RuntimeFixture, TooManyRanksRejected) {
  std::vector<Program> job(20);  // cluster has 8 nodes, ppn 1
  Runtime rt(cluster_, options());
  EXPECT_THROW((void)rt.run(job), ConfigError);
}

TEST_F(RuntimeFixture, ProcsPerNodePacksRanks) {
  RunOptions o = options();
  o.procs_per_node = 4;
  auto rec = std::make_shared<RecordingObserver>();
  o.observers = {rec};
  std::vector<Program> job;
  for (int r = 0; r < 16; ++r) {
    ScriptBuilder b;
    b.open(0, strprintf("/f%d", r), fs::OpenMode::write_create());
    b.close(0);
    job.push_back(std::move(b).build());
  }
  Runtime rt(cluster_, o);
  (void)rt.run(job);
  // Rank 5 lives on node 1.
  for (const TraceEvent& ev : rec->events) {
    if (ev.rank == 5) {
      EXPECT_EQ(ev.node, 1);
      EXPECT_EQ(ev.host, "host1.lanl.gov");
    }
  }
}

}  // namespace
}  // namespace iotaxo::mpi
