// Tests for the zero-copy read paths: the IOTB2 BatchView/RecordView pair
// (PR 3) — decoder equivalence, hostile-input rejection, the deferred
// payload CRC — and the IOTB3 BlockView (per-block CRC/compression/
// encryption, columnar projection, footer mini-index cross-checks,
// lying-index rejection, block-parallel decode), plus MappedTraceFile,
// view/block-backed and compacted unified-store sources, the pool-index
// query skips, and the cold-tier era spill.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>

#include "analysis/dfg/dfg.h"
#include "analysis/unified_store.h"
#include "trace/binary_format.h"
#include "trace/block_view.h"
#include "trace/event_batch.h"
#include "trace/record_view.h"
#include "util/crc32.h"
#include "util/error.h"
#include "util/strings.h"

namespace iotaxo::trace {
namespace {

[[nodiscard]] std::vector<TraceEvent> sample_stream() {
  std::vector<TraceEvent> events;

  TraceEvent open_ev = make_syscall("SYS_open", {"/etc/hosts", "0", "0666"}, 3);
  open_ev.local_start = 1159808387LL * kSecond;
  open_ev.duration = 34 * kMicrosecond;
  open_ev.rank = 7;
  open_ev.node = 3;
  open_ev.pid = 10378;
  open_ev.host = "host13.lanl.gov";
  open_ev.path = "/etc/hosts";
  open_ev.fd = 3;
  events.push_back(open_ev);

  for (int i = 0; i < 24; ++i) {
    TraceEvent w = make_syscall(
        "SYS_write", {"5", "65536", strprintf("%d", i * 65536)}, 65536);
    w.local_start = 1159808388LL * kSecond + i * kMillisecond;
    w.duration = from_millis(3.0);
    w.rank = i % 4;
    w.pid = 10378;
    w.host = i % 2 == 0 ? "host13.lanl.gov" : "host14.lanl.gov";
    w.path = i % 3 == 0 ? "/pfs/out.dat" : "";
    w.fd = 5;
    w.bytes = 65536;
    w.offset = static_cast<Bytes>(i) * 65536;
    events.push_back(w);
  }

  TraceEvent note;
  note.cls = EventClass::kAnnotation;
  note.name = "Barrier before /app.exe";
  note.rank = 0;
  events.push_back(note);

  TraceEvent unknown = make_syscall("SYS_read", {"9", "4096"}, 4096);
  unknown.bytes = 4096;
  unknown.offset = -1;
  events.push_back(unknown);
  return events;
}

[[nodiscard]] std::vector<std::uint8_t> encode_sample(
    const BinaryOptions& options = {}) {
  return encode_binary_v2(EventBatch::from_events(sample_stream()), options);
}

// Header field offsets of the shared container envelope (binary_format.h):
// magic 0..6, flags 6, count 7..15, paylen 15..23.
constexpr std::size_t kFlagsOff = 6;
constexpr std::size_t kCountOff = 7;
constexpr std::size_t kPaylenOff = 15;

void put_u64(std::vector<std::uint8_t>& buf, std::size_t off,
             std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf[off + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

[[nodiscard]] std::uint64_t get_u64(const std::vector<std::uint8_t>& buf,
                                    std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(buf[off + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

TEST(BatchView, MatchesDecodedBatch) {
  const std::vector<std::uint8_t> bytes = encode_sample();
  const EventBatch decoded = decode_binary_batch(bytes);
  const BatchView view(bytes);

  ASSERT_EQ(view.size(), decoded.size());
  ASSERT_EQ(view.string_count(), decoded.pool().size());
  for (StrId id = 0; id < view.string_count(); ++id) {
    EXPECT_EQ(view.string(id), decoded.pool().view(id));
  }
  ASSERT_EQ(view.arg_id_count(), decoded.arg_ids().size());

  view.for_each([&](std::size_t i, const RecordView& rec,
                    std::uint32_t args_begin) {
    const EventRecord& want = decoded.record(i);
    EXPECT_EQ(rec.to_record(args_begin), want) << "record " << i;
    EXPECT_EQ(args_begin, want.args_begin) << "record " << i;
    EXPECT_EQ(view.materialize(i, args_begin), decoded.materialize(i))
        << "record " << i;
  });
}

TEST(BatchView, HeaderAndStringTableAccessors) {
  const std::vector<std::uint8_t> bytes = encode_sample();
  const BatchView view(bytes);
  EXPECT_EQ(view.header().version, 2);
  EXPECT_TRUE(view.header().checksummed);
  EXPECT_FALSE(view.header().compressed);
  EXPECT_EQ(view.string(0), "");
  EXPECT_GT(view.string_table_bytes(), 0u);
  ASSERT_TRUE(view.find_string("SYS_write").has_value());
  EXPECT_EQ(view.string(*view.find_string("SYS_write")), "SYS_write");
  EXPECT_FALSE(view.find_string("not-in-table").has_value());
  EXPECT_THROW((void)view.string(static_cast<StrId>(view.string_count())),
               FormatError);
  EXPECT_THROW((void)view.arg_id(view.arg_id_count()), FormatError);
}

TEST(BatchView, RejectsV1Containers) {
  const std::vector<std::uint8_t> v1 = encode_binary(sample_stream(), {});
  EXPECT_THROW((void)BatchView(v1), FormatError);
  // ... while the decoding path still accepts them.
  EXPECT_EQ(decode_binary_batch(v1).size(), sample_stream().size());
}

TEST(BatchView, RejectsCompressedAndEncryptedContainers) {
  BinaryOptions compressed;
  compressed.compress = true;
  EXPECT_THROW((void)BatchView(encode_sample(compressed)), FormatError);

  BinaryOptions encrypted;
  encrypted.encrypt = true;
  encrypted.key = CipherKey{0x1111, 0x2222, 0x3333, 0x4444};
  const std::vector<std::uint8_t> bytes = encode_sample(encrypted);
  EXPECT_THROW((void)BatchView(bytes), FormatError);
  // The same payload decodes fine through the decrypting path.
  EXPECT_EQ(decode_binary_batch(bytes, encrypted.key).size(),
            sample_stream().size());
}

TEST(BatchView, RejectsFlippedCrcOnFirstTouch) {
  std::vector<std::uint8_t> bytes = encode_sample();
  bytes.back() ^= 0x01;  // CRC trails the payload
  // The CRC is deferred: the container is structurally intact, so the view
  // opens — but the first record (or string) touch verifies and rejects,
  // and the failure is sticky.
  const BatchView view(bytes);
  EXPECT_THROW((void)view.record(0), FormatError);
  EXPECT_THROW((void)view.string(0), FormatError);
  EXPECT_THROW((void)view.record_bytes(), FormatError);
}

TEST(BatchView, RejectsFlippedPayloadByte) {
  std::vector<std::uint8_t> bytes = encode_sample();
  bytes[bytes.size() / 2] ^= 0x40;
  // Depending on where the flip lands the open-time structural pass may
  // already reject; if it does not, the deferred CRC must on first touch.
  EXPECT_THROW(
      {
        const BatchView view(bytes);
        (void)view.record(0);
      },
      FormatError);
}

TEST(BatchView, ChecksummedViewVerifiesOncePerCopySet) {
  const std::vector<std::uint8_t> bytes = encode_sample();
  const BatchView view(bytes);
  ASSERT_TRUE(view.header().checksummed);
  // Copies share the CRC gate; a clean container's records read fine
  // through either copy.
  const BatchView copy = view;
  EXPECT_EQ(copy.record(0).to_record(), view.record(0).to_record());
  view.ensure_checksum();  // idempotent
}

TEST(BatchView, RejectsTruncatedBuffer) {
  const std::vector<std::uint8_t> bytes = encode_sample();
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{5}, std::size_t{22}, bytes.size() / 2,
        bytes.size() - 1}) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + static_cast<long>(keep));
    EXPECT_THROW((void)BatchView(cut), FormatError) << "keep=" << keep;
  }
}

TEST(BatchView, RejectsTruncatedRecordSection) {
  BinaryOptions plain;
  plain.checksum = false;  // reach the structural checks, not the CRC
  std::vector<std::uint8_t> bytes = encode_sample(plain);
  // Drop half a record's bytes off the end and fix up paylen so the
  // envelope stays self-consistent: the record section is no longer
  // count * stride.
  const std::size_t cut = v2layout::kStride / 2;
  bytes.resize(bytes.size() - cut);
  put_u64(bytes, kPaylenOff, get_u64(bytes, kPaylenOff) - cut);
  EXPECT_THROW((void)BatchView(bytes), FormatError);
  EXPECT_THROW((void)decode_binary_batch(bytes), FormatError);
}

TEST(BatchView, RejectsOversizedRecordSection) {
  BinaryOptions plain;
  plain.checksum = false;
  std::vector<std::uint8_t> bytes = encode_sample(plain);
  // Trailing garbage after the records, paylen patched to cover it.
  bytes.insert(bytes.end(), {0xde, 0xad, 0xbe, 0xef});
  put_u64(bytes, kPaylenOff, get_u64(bytes, kPaylenOff) + 4);
  EXPECT_THROW((void)BatchView(bytes), FormatError);
  EXPECT_THROW((void)decode_binary_batch(bytes), FormatError);
}

TEST(BatchView, RejectsOverstatedRecordCount) {
  BinaryOptions plain;
  plain.checksum = false;
  std::vector<std::uint8_t> bytes = encode_sample(plain);
  put_u64(bytes, kCountOff, get_u64(bytes, kCountOff) + 3);
  EXPECT_THROW((void)BatchView(bytes), FormatError);
  EXPECT_THROW((void)decode_binary_batch(bytes), FormatError);
  // A wildly corrupt count must be rejected up front, not fed to reserve().
  put_u64(bytes, kCountOff, ~0ULL);
  EXPECT_THROW((void)BatchView(bytes), FormatError);
  EXPECT_THROW((void)decode_binary_batch(bytes), FormatError);
}

TEST(BatchView, RejectsOverflowingPayloadLength) {
  BinaryOptions plain;
  plain.checksum = false;
  std::vector<std::uint8_t> bytes = encode_sample(plain);
  // A paylen chosen so header + paylen (+ crc) wraps around 2^64 to the
  // true buffer size must not pass the envelope length check.
  put_u64(bytes, kPaylenOff,
          ~std::uint64_t{0} - kContainerHeaderSize + 1 +
              (bytes.size() - kContainerHeaderSize));
  EXPECT_THROW((void)BatchView(bytes), FormatError);
  EXPECT_THROW((void)decode_binary_batch(bytes), FormatError);
}

TEST(BatchView, RejectsDuplicateStringTableEntries) {
  // Hand-build a v2 body whose string table interns "dup" twice; the
  // decoder rejects it ("not interned") and the view must too — records
  // could otherwise reference the second copy and dodge id-equality scans.
  std::vector<std::uint8_t> body;
  const auto u32 = [&body](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      body.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  const auto u64 = [&body](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      body.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  u32(3);  // nstrings: "", "dup", "dup"
  u32(0);
  u32(3);
  body.insert(body.end(), {'d', 'u', 'p'});
  u32(3);
  body.insert(body.end(), {'d', 'u', 'p'});
  u64(0);  // nargids
  // zero records

  std::vector<std::uint8_t> bytes;
  bytes.insert(bytes.end(), {'I', 'O', 'T', 'B', '2', '\n'});
  bytes.push_back(0);  // flags: plain
  bytes.resize(kContainerHeaderSize, 0);
  put_u64(bytes, kCountOff, 0);
  put_u64(bytes, kPaylenOff, body.size());
  bytes.insert(bytes.end(), body.begin(), body.end());
  EXPECT_THROW((void)BatchView(bytes), FormatError);
  EXPECT_THROW((void)decode_binary_batch(bytes), FormatError);
}

TEST(BatchView, HugeStringTableCountIsFormatErrorNotBadAlloc) {
  BinaryOptions plain;
  plain.checksum = false;
  std::vector<std::uint8_t> bytes = encode_sample(plain);
  // nstrings is the first u32 of the body; a wildly corrupt count must be
  // rejected up front, never fed to reserve() as a giant allocation.
  constexpr std::size_t kNstringsOff = kContainerHeaderSize;
  for (std::size_t i = 0; i < 4; ++i) {
    bytes[kNstringsOff + i] = 0xff;
  }
  EXPECT_THROW((void)BatchView(bytes), FormatError);
  EXPECT_THROW((void)decode_binary_batch(bytes), FormatError);
}

TEST(BatchView, RejectsOutOfRangeStringId) {
  BinaryOptions plain;
  plain.checksum = false;
  std::vector<std::uint8_t> bytes = encode_sample(plain);
  // Clobber the last record's name id (offset 1 within the record) with an
  // id far beyond the string table.
  const std::size_t name_off =
      bytes.size() - v2layout::kStride + v2layout::kName;
  bytes[name_off] = 0xff;
  bytes[name_off + 1] = 0xff;
  EXPECT_THROW((void)BatchView(bytes), FormatError);
  EXPECT_THROW((void)decode_binary_batch(bytes), FormatError);
}

TEST(BatchView, RejectsOutOfRangeArgIdValue) {
  BinaryOptions plain;
  plain.checksum = false;
  std::vector<std::uint8_t> bytes = encode_sample(plain);
  // Walk to the argument-id table: nstrings, the length-prefixed strings,
  // the u64 id count — then clobber the first id. The view must reject at
  // open (its contract: reject anything the decoder rejects), not throw
  // later from materialize()/the replay adapter mid-scan.
  const auto u32_at = [&bytes](std::size_t off) {
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes[off + i]) << (8 * i);
    }
    return v;
  };
  std::size_t pos = kContainerHeaderSize;
  const std::uint32_t nstrings = u32_at(pos);
  pos += 4;
  for (std::uint32_t i = 0; i < nstrings; ++i) {
    pos += 4 + u32_at(pos);
  }
  ASSERT_GT(get_u64(bytes, pos), 0u);  // sample stream has args
  pos += 8;
  for (std::size_t i = 0; i < 4; ++i) {
    bytes[pos + i] = 0xff;
  }
  EXPECT_THROW((void)BatchView(bytes), FormatError);
  EXPECT_THROW((void)decode_binary_batch(bytes), FormatError);
}

TEST(BatchView, RejectsArgSliceOverrun) {
  BinaryOptions plain;
  plain.checksum = false;
  std::vector<std::uint8_t> bytes = encode_sample(plain);
  const std::size_t argc_off =
      bytes.size() - v2layout::kStride + v2layout::kArgsCount;
  bytes[argc_off] = 0xff;  // args_count far beyond the arg-id table
  bytes[argc_off + 1] = 0xff;
  EXPECT_THROW((void)BatchView(bytes), FormatError);
  EXPECT_THROW((void)decode_binary_batch(bytes), FormatError);
}

TEST(BatchView, EmptyBatchViews) {
  const std::vector<std::uint8_t> bytes = encode_binary_v2(EventBatch{}, {});
  const BatchView view(bytes);
  EXPECT_EQ(view.size(), 0u);
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.string_count(), 1u);  // the implicit empty string
}

class MappedFileTest : public ::testing::Test {
 protected:
  [[nodiscard]] std::string temp_path() const {
    return strprintf("/tmp/iotaxo_zero_copy_%d_%s.iotb", ::testing::UnitTest::
                         GetInstance()->random_seed(),
                     ::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name());
  }

  void write_bytes(const std::string& path,
                   const std::vector<std::uint8_t>& bytes) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }

  void TearDown() override { std::remove(temp_path().c_str()); }
};

TEST_F(MappedFileTest, MapsAndViewsRoundTrip) {
  const std::vector<std::uint8_t> bytes = encode_sample();
  write_bytes(temp_path(), bytes);

  MappedTraceFile file(temp_path());
  ASSERT_EQ(file.size(), bytes.size());
  EXPECT_EQ(std::memcmp(file.bytes().data(), bytes.data(), bytes.size()), 0);

  const BatchView view(file.bytes());
  EXPECT_EQ(view.size(), sample_stream().size());

  // Views must survive moves of the backing file object.
  MappedTraceFile moved = std::move(file);
  EXPECT_EQ(view.materialize(0, 0), sample_stream()[0]);
  EXPECT_EQ(moved.size(), bytes.size());
}

TEST_F(MappedFileTest, MissingFileThrows) {
  EXPECT_THROW((void)MappedTraceFile("/nonexistent/iotaxo.iotb"), IoError);
}

// ---------------------------------------------------------------- IOTB3

/// Stamp-ordered syscalls (1 ms apart from t=1 s) so block min/max windows
/// partition the timeline: every record carries 3 args and 4096 bytes.
[[nodiscard]] std::vector<TraceEvent> ordered_stream(int count) {
  std::vector<TraceEvent> events;
  events.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    TraceEvent ev = make_syscall(i % 3 == 0 ? "SYS_read" : "SYS_write",
                                 {"5", "4096", strprintf("%d", i)}, 4096);
    ev.local_start = kSecond + static_cast<SimTime>(i) * kMillisecond;
    ev.duration = 10 * kMicrosecond;
    ev.rank = i % 4;
    ev.host = i % 2 == 0 ? "host00" : "host01";
    ev.path = i % 5 == 0 ? "/pfs/block.dat" : "";
    ev.fd = 5;
    ev.bytes = 4096;
    ev.offset = static_cast<Bytes>(i) * 4096;
    events.push_back(std::move(ev));
  }
  return events;
}

/// Byte positions of the v3 regions, parsed the same way the view does:
/// head_end is the first stored-block byte, footer the entry region.
struct V3Regions {
  std::size_t head_end = 0;
  std::size_t footer_begin = 0;
  std::size_t footer_len = 0;
  std::size_t entry_size = 0;
};

[[nodiscard]] V3Regions locate_v3(const std::vector<std::uint8_t>& bytes) {
  const auto u32_at = [&bytes](std::size_t off) {
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes[off + i]) << (8 * i);
    }
    return v;
  };
  // Container flag bits (binary_format.cpp): 0x02 encrypted (head grows a
  // key-check u64), 0x08 projected (each footer entry grows cold_len u64 +
  // cold_crc u32).
  const std::uint8_t flags = bytes[kFlagsOff];
  std::size_t pos = kContainerHeaderSize;
  const std::uint32_t nstrings = u32_at(pos);
  pos += 4;
  for (std::uint32_t i = 0; i < nstrings; ++i) {
    pos += 4 + u32_at(pos);
  }
  const std::uint64_t nargids = get_u64(bytes, pos);
  pos += 8 + 4 * static_cast<std::size_t>(nargids);
  pos += 4;  // block_records
  if ((flags & 0x02) != 0) {
    pos += 8;  // key_check
  }
  V3Regions r;
  r.head_end = pos;
  r.footer_len =
      static_cast<std::size_t>(get_u64(bytes, bytes.size() - v3layout::kTrailerSize));
  r.footer_begin = bytes.size() - v3layout::kTrailerSize - r.footer_len;
  r.entry_size = v3layout::kEntryFixedSize +
                 ((flags & 0x08) != 0 ? v3layout::kEntryProjectedExtra : 0) +
                 (nstrings + 7) / 8;
  return r;
}

/// Re-seal the always-verified footer CRC after a test edits footer bytes
/// (to plant index lies the open-time check must not catch).
void reseal_footer_crc(std::vector<std::uint8_t>& bytes) {
  const V3Regions r = locate_v3(bytes);
  const std::uint32_t crc = crc32(
      std::span<const std::uint8_t>(bytes).subspan(r.footer_begin,
                                                   r.footer_len));
  for (std::size_t i = 0; i < 4; ++i) {
    bytes[bytes.size() - 8 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  }
}

TEST(BlockView, RoundTripMatchesOwnedBatch) {
  const EventBatch batch = EventBatch::from_events(ordered_stream(44));
  for (const bool compress : {false, true}) {
    for (const bool checksum : {false, true}) {
      BinaryOptions options;
      options.compress = compress;
      options.checksum = checksum;
      const std::vector<std::uint8_t> bytes =
          encode_binary_v3(batch, options, 8);
      const BlockView view(bytes);
      ASSERT_EQ(view.size(), batch.size());
      ASSERT_EQ(view.block_count(), 6u);  // ceil(44 / 8)
      ASSERT_EQ(view.string_count(), batch.pool().size());
      for (StrId id = 0; id < view.string_count(); ++id) {
        EXPECT_EQ(view.string(id), batch.pool().view(id));
      }
      ASSERT_EQ(view.arg_id_count(), batch.arg_ids().size());
      view.for_each([&](std::size_t i, const RecordView& rec,
                        std::uint32_t args_begin) {
        EXPECT_EQ(rec.to_record(args_begin), batch.record(i))
            << "record " << i;
        EXPECT_EQ(view.materialize(i, args_begin), batch.materialize(i))
            << "record " << i;
      });
      // The generic decoder routes v3 through the same view.
      const EventBatch decoded = decode_binary_batch(bytes);
      ASSERT_EQ(decoded.size(), batch.size());
      EXPECT_EQ(decoded.record(10), batch.record(10));
      EXPECT_EQ(decoded.materialize(43), batch.materialize(43));
    }
  }
}

TEST(BlockView, FooterIndexDescribesBlocks) {
  std::vector<TraceEvent> events = ordered_stream(40);
  for (int i = 0; i < 8; ++i) {
    TraceEvent note;
    note.cls = EventClass::kAnnotation;
    note.name = "phase-marker";
    note.rank = 0;
    note.local_start = 10 * kSecond + static_cast<SimTime>(i) * kMillisecond;
    events.push_back(std::move(note));
  }
  BinaryOptions options;
  options.compress = true;
  options.checksum = true;
  const std::vector<std::uint8_t> bytes =
      encode_binary_v3(EventBatch::from_events(events), options, 8);
  const BlockView view(bytes);

  ASSERT_EQ(view.block_count(), 6u);
  EXPECT_EQ(view.block_records_nominal(), 8u);
  for (std::size_t b = 0; b < 6; ++b) {
    EXPECT_EQ(view.block_size(b), 8u);
    // Stamps are increasing, so each block's window is exactly its record
    // range's first/last stamp.
    EXPECT_EQ(view.block_min_time(b), events[b * 8].local_start) << b;
    EXPECT_EQ(view.block_max_time(b), events[b * 8 + 7].local_start) << b;
    EXPECT_EQ(view.block_args_begin(b),
              static_cast<std::uint64_t>(std::min<std::size_t>(b * 8, 40) * 3))
        << b;
  }
  // The last block holds only annotations: no I/O, no fd/path, and only
  // the marker name in its bitmap.
  EXPECT_TRUE(view.block_has_io_call(0));
  EXPECT_TRUE(view.block_has_io_bytes(0));
  EXPECT_TRUE(view.block_has_fd_path(0));
  EXPECT_FALSE(view.block_has_io_call(5));
  EXPECT_FALSE(view.block_has_io_bytes(5));
  EXPECT_FALSE(view.block_has_fd_path(5));
  const StrId write_id = *view.find_string("SYS_write");
  const StrId marker_id = *view.find_string("phase-marker");
  EXPECT_TRUE(view.block_has_name(0, write_id));
  EXPECT_FALSE(view.block_has_name(5, write_id));
  EXPECT_TRUE(view.block_has_name(5, marker_id));
  EXPECT_FALSE(view.block_has_name(0, marker_id));
  EXPECT_FALSE(view.block_has_name(0, 0));  // id 0 is never "present"
}

TEST(BlockView, CorruptBlockRejectsOnlyItself) {
  const EventBatch batch = EventBatch::from_events(ordered_stream(24));
  BinaryOptions options;
  options.checksum = true;  // uncompressed: stored offsets are record math
  std::vector<std::uint8_t> bytes = encode_binary_v3(batch, options, 8);
  const V3Regions r = locate_v3(bytes);
  // Flip one byte inside block 1's stored bytes (records 8..15).
  bytes[r.head_end + 8 * v2layout::kStride + 40] ^= 0x20;

  const BlockView view(bytes);  // footer intact, blocks untouched: opens
  EXPECT_EQ(view.record(0).to_record(batch.record(0).args_begin),
            batch.record(0));
  EXPECT_THROW((void)view.record(8), FormatError);   // block 1 rejects
  EXPECT_THROW((void)view.record(12), FormatError);  // ... and stays dead
  // Blocks 0 and 2 still serve records.
  EXPECT_EQ(view.record(16).to_record(batch.record(16).args_begin),
            batch.record(16));
}

TEST(BlockView, RejectsTruncatedFooter) {
  BinaryOptions options;
  options.checksum = true;
  const std::vector<std::uint8_t> bytes =
      encode_binary_v3(EventBatch::from_events(ordered_stream(24)), options, 8);
  const V3Regions r = locate_v3(bytes);
  // Truncations with paylen patched to stay self-consistent: the trailer
  // magic / footer bounds / footer CRC checks must reject at open.
  for (const std::size_t drop :
       {std::size_t{1}, std::size_t{4}, v3layout::kTrailerSize,
        r.footer_len}) {
    std::vector<std::uint8_t> cut(bytes.begin(),
                                  bytes.end() - static_cast<long>(drop));
    put_u64(cut, kPaylenOff, get_u64(bytes, kPaylenOff) - drop);
    EXPECT_THROW((void)BlockView(cut), FormatError) << "drop=" << drop;
  }
  // Unpatched truncation is a plain envelope length mismatch.
  const std::vector<std::uint8_t> cut(bytes.begin(), bytes.end() - 5);
  EXPECT_THROW((void)BlockView(cut), FormatError);
}

TEST(BlockView, RejectsOverstatedBlockCount) {
  BinaryOptions options;
  options.checksum = true;
  std::vector<std::uint8_t> bytes =
      encode_binary_v3(EventBatch::from_events(ordered_stream(24)), options, 8);
  const std::size_t nblocks_off = bytes.size() - 16;  // trailer: u64 @ -16
  put_u64(bytes, nblocks_off, get_u64(bytes, nblocks_off) + 1);
  EXPECT_THROW((void)BlockView(bytes), FormatError);
  // A wildly corrupt count must be rejected up front too.
  put_u64(bytes, nblocks_off, ~0ULL);
  EXPECT_THROW((void)BlockView(bytes), FormatError);
}

TEST(BlockView, RejectsIndexThatLiesAboutABlock) {
  const EventBatch batch = EventBatch::from_events(ordered_stream(24));
  BinaryOptions options;
  options.compress = true;
  options.checksum = true;
  const std::vector<std::uint8_t> base = encode_binary_v3(batch, options, 8);
  const V3Regions r = locate_v3(base);
  const std::size_t entry1 = r.footer_begin + r.entry_size;  // block 1

  // (a) min-stamp lie: the window says "starts a second early".
  std::vector<std::uint8_t> lie = base;
  put_u64(lie, entry1 + 32,
          static_cast<std::uint64_t>(batch.record(8).local_start - kSecond));
  reseal_footer_crc(lie);
  {
    const BlockView view(lie);  // footer CRC is consistent: opens
    EXPECT_EQ(view.record(0).to_record(batch.record(0).args_begin),
              batch.record(0));  // block 0 is honest
    EXPECT_THROW((void)view.record(8), FormatError);
  }

  // (b) bitmap lie: a spurious name-presence bit (id 0 is never set).
  std::vector<std::uint8_t> lie2 = base;
  lie2[entry1 + v3layout::kEntryFixedSize] ^= 0x01;
  reseal_footer_crc(lie2);
  EXPECT_THROW((void)BlockView(lie2).record(8), FormatError);

  // (c) flags lie: claim an all-syscall block has no I/O.
  std::vector<std::uint8_t> lie3 = base;
  lie3[entry1 + 48] = 0;
  reseal_footer_crc(lie3);
  EXPECT_THROW((void)BlockView(lie3).record(8), FormatError);
}

// ------------------------------------------------- encryption (per block)

constexpr CipherKey kTestKey{0x1111, 0x2222, 0x3333, 0x4444};

TEST(BlockView, EncryptWithoutKeyRejectedAtEncode) {
  BinaryOptions options;
  options.encrypt = true;  // no key
  EXPECT_THROW((void)encode_binary_v3(
                   EventBatch::from_events(ordered_stream(4)), options, 8),
               ConfigError);
}

TEST(BlockView, EncryptedRoundTripMatchesOwnedBatch) {
  const EventBatch batch = EventBatch::from_events(ordered_stream(44));
  for (const bool compress : {false, true}) {
    for (const bool project : {false, true}) {
      BinaryOptions options;
      options.compress = compress;
      options.project = project;
      options.encrypt = true;
      options.key = kTestKey;
      const std::vector<std::uint8_t> bytes =
          encode_binary_v3(batch, options, 8);
      const BlockView view(bytes, kTestKey);
      EXPECT_TRUE(view.encrypted());
      EXPECT_EQ(view.projected(), project);
      ASSERT_EQ(view.size(), batch.size());
      view.for_each([&](std::size_t i, const RecordView& rec,
                        std::uint32_t args_begin) {
        EXPECT_EQ(rec.to_record(args_begin), batch.record(i))
            << "record " << i << " compress=" << compress
            << " project=" << project;
      });
      // The generic decoder accepts the key too.
      EXPECT_EQ(decode_binary_batch(bytes, kTestKey).record(10),
                batch.record(10));
    }
  }
}

TEST(BlockView, MissingKeyRejectedAtOpen) {
  BinaryOptions options;
  options.encrypt = true;
  options.key = kTestKey;
  const std::vector<std::uint8_t> bytes =
      encode_binary_v3(EventBatch::from_events(ordered_stream(16)), options, 8);
  try {
    const BlockView view(bytes);
    FAIL() << "opened an encrypted container without a key";
  } catch (const FormatError& err) {
    EXPECT_NE(std::string(err.what()).find("requires a key"),
              std::string::npos);
  }
}

TEST(BlockView, WrongKeyRejectedAtOpen) {
  BinaryOptions options;
  options.encrypt = true;
  options.key = kTestKey;
  const std::vector<std::uint8_t> bytes =
      encode_binary_v3(EventBatch::from_events(ordered_stream(16)), options, 8);
  try {
    const BlockView view(bytes, CipherKey{0x9999, 0x2222, 0x3333, 0x4444});
    FAIL() << "opened an encrypted container with the wrong key";
  } catch (const FormatError& err) {
    EXPECT_NE(std::string(err.what()).find("wrong key"), std::string::npos);
  }
}

TEST(BlockView, CorruptCiphertextRejectsOnlyThatBlock) {
  const EventBatch batch = EventBatch::from_events(ordered_stream(24));
  BinaryOptions options;
  options.encrypt = true;
  options.key = kTestKey;
  options.checksum = false;  // reach the cipher, not the CRC
  std::vector<std::uint8_t> bytes = encode_binary_v3(batch, options, 8);
  const V3Regions r = locate_v3(bytes);
  // Uncompressed encrypted blocks store pad8(8 * 81) = 656 bytes each.
  // Smash block 1's trailing cipher block so PKCS#7 unpadding fails.
  constexpr std::size_t kStored = 656;
  bytes[r.head_end + 2 * kStored - 3] ^= 0x20;

  const BlockView view(bytes, kTestKey);
  EXPECT_EQ(view.record(0).to_record(batch.record(0).args_begin),
            batch.record(0));
  try {
    (void)view.record(8);
    FAIL() << "decoded a block with corrupt ciphertext";
  } catch (const FormatError& err) {
    // The failure names the block ordinal.
    EXPECT_NE(std::string(err.what()).find("block 1"), std::string::npos)
        << err.what();
  }
  EXPECT_THROW((void)view.record(12), FormatError);  // sticky
  EXPECT_EQ(view.record(16).to_record(batch.record(16).args_begin),
            batch.record(16));  // block 2 unharmed
}

// ------------------------------------------------- columnar projection

TEST(BlockView, ProjectedRoundTripMatchesOwnedBatch) {
  const EventBatch batch = EventBatch::from_events(ordered_stream(44));
  for (const bool compress : {false, true}) {
    for (const bool checksum : {false, true}) {
      BinaryOptions options;
      options.compress = compress;
      options.checksum = checksum;
      options.project = true;
      const std::vector<std::uint8_t> bytes =
          encode_binary_v3(batch, options, 8);
      const BlockView view(bytes);
      EXPECT_TRUE(view.projected());
      ASSERT_EQ(view.size(), batch.size());
      view.for_each([&](std::size_t i, const RecordView& rec,
                        std::uint32_t args_begin) {
        EXPECT_EQ(rec.to_record(args_begin), batch.record(i))
            << "record " << i;
        EXPECT_EQ(view.materialize(i, args_begin), batch.materialize(i))
            << "record " << i;
      });
      EXPECT_EQ(decode_binary_batch(bytes).record(20), batch.record(20));
    }
  }
}

TEST(BlockView, ProjectedHotGroupServesHotColumns) {
  const EventBatch batch = EventBatch::from_events(ordered_stream(24));
  BinaryOptions options;
  options.project = true;
  const std::vector<std::uint8_t> bytes = encode_binary_v3(batch, options, 8);
  const BlockView view(bytes);
  for (std::size_t b = 0; b < view.block_count(); ++b) {
    // The hot group is strictly smaller than the block's full extent.
    EXPECT_LT(view.block_hot_stored_len(b), view.block_stored_len(b)) << b;
    const std::span<const std::uint8_t> hot = view.hot_bytes(b);
    ASSERT_EQ(hot.size(), view.block_size(b) * hotlayout::kStride);
    for (std::size_t i = 0; i < view.block_size(b); ++i) {
      const HotRecordView rec(hot.data() + i * hotlayout::kStride);
      const EventRecord& want = batch.record(b * 8 + i);
      EXPECT_EQ(rec.cls(), want.cls);
      EXPECT_EQ(rec.name(), want.name);
      EXPECT_EQ(rec.rank(), want.rank);
      EXPECT_EQ(rec.local_start(), want.local_start);
      EXPECT_EQ(rec.duration(), want.duration);
      EXPECT_EQ(rec.bytes(), want.bytes);
    }
  }
  // Non-projected containers have no hot group to hand out.
  const BlockView flat(encode_binary_v3(batch, {}, 8));
  EXPECT_THROW((void)flat.hot_bytes(0), ConfigError);
}

TEST(BlockView, ProjectedIndexLieRejected) {
  const EventBatch batch = EventBatch::from_events(ordered_stream(24));
  BinaryOptions options;
  options.project = true;
  options.compress = true;
  options.checksum = true;
  const std::vector<std::uint8_t> base = encode_binary_v3(batch, options, 8);
  const V3Regions r = locate_v3(base);
  const std::size_t entry1 = r.footer_begin + r.entry_size;  // block 1

  // Min-stamp lie: both the hot-only and the stitched full decode
  // cross-check the window and must reject.
  std::vector<std::uint8_t> lie = base;
  put_u64(lie, entry1 + 32,
          static_cast<std::uint64_t>(batch.record(8).local_start - kSecond));
  reseal_footer_crc(lie);
  {
    const BlockView view(lie);
    EXPECT_THROW((void)view.hot_bytes(1), FormatError);
    EXPECT_THROW((void)view.record(8), FormatError);
    EXPECT_EQ(view.record(0).to_record(batch.record(0).args_begin),
              batch.record(0));  // block 0 is honest
  }

  // Bitmap lie (the bitmap sits after the projected extra fields).
  std::vector<std::uint8_t> lie2 = base;
  lie2[entry1 + v3layout::kEntryFixedSize + v3layout::kEntryProjectedExtra] ^=
      0x01;
  reseal_footer_crc(lie2);
  EXPECT_THROW((void)BlockView(lie2).hot_bytes(1), FormatError);
}

TEST(BlockView, ColdGroupCorruptionLeavesHotQueriesWorking) {
  const EventBatch batch = EventBatch::from_events(ordered_stream(24));
  BinaryOptions options;
  options.project = true;
  options.checksum = true;  // uncompressed: stored offsets are record math
  std::vector<std::uint8_t> bytes = encode_binary_v3(batch, options, 8);
  const V3Regions r = locate_v3(bytes);
  // Uncompressed projected blocks store hot 8*33 = 264 then cold 8*48 =
  // 384 bytes, 648 per block. Corrupt block 1's COLD group only.
  bytes[r.head_end + 648 + 264 + 100] ^= 0x40;

  const BlockView view(bytes);
  // Hot decode of the same block still verifies (its own CRC) and serves.
  const std::span<const std::uint8_t> hot = view.hot_bytes(1);
  EXPECT_EQ(HotRecordView(hot.data()).local_start(),
            batch.record(8).local_start);
  // The stitched full decode needs the cold group — and rejects.
  try {
    (void)view.record(8);
    FAIL() << "stitched a corrupt cold group";
  } catch (const FormatError& err) {
    EXPECT_NE(std::string(err.what()).find("block 1"), std::string::npos)
        << err.what();
  }
  // Other blocks decode fully.
  EXPECT_EQ(view.record(16).to_record(batch.record(16).args_begin),
            batch.record(16));
}

TEST(BlockView, HotGroupCorruptionRejectsBothPaths) {
  const EventBatch batch = EventBatch::from_events(ordered_stream(24));
  BinaryOptions options;
  options.project = true;
  options.checksum = true;
  std::vector<std::uint8_t> bytes = encode_binary_v3(batch, options, 8);
  const V3Regions r = locate_v3(bytes);
  bytes[r.head_end + 648 + 10] ^= 0x04;  // block 1's hot group

  const BlockView view(bytes);
  EXPECT_THROW((void)view.hot_bytes(1), FormatError);
  EXPECT_THROW((void)view.record(8), FormatError);
  EXPECT_EQ(view.record(0).to_record(batch.record(0).args_begin),
            batch.record(0));
}

// ------------------------------------------------- block-parallel decode

TEST(BlockView, DecodeBlocksPrefetchMatchesSerialDecode) {
  const EventBatch batch = EventBatch::from_events(ordered_stream(64));
  BinaryOptions options;
  options.compress = true;
  options.checksum = true;
  options.project = true;
  const std::vector<std::uint8_t> bytes = encode_binary_v3(batch, options, 8);
  for (const std::size_t threads : {1u, 2u, 4u}) {
    const BlockView view(bytes, std::nullopt);
    std::vector<std::size_t> all(view.block_count());
    for (std::size_t b = 0; b < all.size(); ++b) {
      all[b] = b;
    }
    view.decode_blocks(all, threads, /*hot_only=*/false);
    view.for_each([&](std::size_t i, const RecordView& rec,
                      std::uint32_t args_begin) {
      ASSERT_EQ(rec.to_record(args_begin), batch.record(i))
          << "threads=" << threads << " record " << i;
    });
  }
}

TEST(BlockView, SharedStickyFailureAcrossCopiesUnderConcurrentDecode) {
  const EventBatch batch = EventBatch::from_events(ordered_stream(24));
  BinaryOptions options;
  options.checksum = true;
  std::vector<std::uint8_t> bytes = encode_binary_v3(batch, options, 8);
  const V3Regions r = locate_v3(bytes);
  bytes[r.head_end + 8 * v2layout::kStride + 40] ^= 0x20;  // block 1

  const BlockView view(bytes);
  const BlockView copy = view;  // copies share the decode slots
  std::string err_a;
  std::string err_b;
  std::thread ta([&] {
    try {
      (void)view.record(8);
    } catch (const FormatError& err) {
      err_a = err.what();
    }
  });
  std::thread tb([&] {
    try {
      (void)copy.record(9);
    } catch (const FormatError& err) {
      err_b = err.what();
    }
  });
  ta.join();
  tb.join();
  // Whoever lost the decode race sees the winner's sticky error, verbatim.
  EXPECT_FALSE(err_a.empty());
  EXPECT_EQ(err_a, err_b);
  EXPECT_NE(err_a.find("block 1"), std::string::npos) << err_a;
}

TEST(BlockView, EmptyContainer) {
  const std::vector<std::uint8_t> bytes = encode_binary_v3(EventBatch{}, {});
  const BlockView view(bytes);
  EXPECT_EQ(view.size(), 0u);
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.block_count(), 0u);
  EXPECT_EQ(view.to_batch().size(), 0u);
}

TEST(BlockViewStore, CorruptBlockFailsOnlyQueriesThatTouchIt) {
  const EventBatch batch = EventBatch::from_events(ordered_stream(24));
  BinaryOptions options;
  options.checksum = true;
  std::vector<std::uint8_t> bytes = encode_binary_v3(batch, options, 8);
  const V3Regions r = locate_v3(bytes);
  bytes[r.head_end + 8 * v2layout::kStride + 40] ^= 0x20;  // block 1

  const std::string path = "/tmp/iotaxo_iotb3_corrupt_test.iotb3";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }
  analysis::UnifiedTraceStore store;
  store.ingest_view(path, {{"framework", "test"}});
  std::remove(path.c_str());

  // A window the footer maps onto block 0 alone never touches the corrupt
  // block: all 8 records are 4 KiB transfers.
  EXPECT_EQ(store.bytes_in_window(kSecond, kSecond + 8 * kMillisecond),
            8 * 4096);
  // A whole-span query must decode block 1 — and surface its corruption.
  EXPECT_THROW((void)store.bytes_in_window(0, 100 * kSecond), FormatError);
}

}  // namespace
}  // namespace iotaxo::trace

namespace iotaxo::analysis {
namespace {

using trace::EventBatch;
using trace::TraceEvent;

[[nodiscard]] std::vector<TraceEvent> era_events(int era, int count) {
  std::vector<TraceEvent> events;
  for (int i = 0; i < count; ++i) {
    TraceEvent ev = trace::make_syscall(
        i % 3 == 0 ? "SYS_read" : "SYS_write",
        {"5", "4096", strprintf("%d", i)}, 4096);
    ev.rank = i % 4;
    ev.host = "host00";
    ev.path = i % 2 == 0 ? strprintf("/pfs/era%d.dat", era) : "";
    ev.fd = 5;
    ev.bytes = 4096;
    ev.local_start = static_cast<SimTime>(era) * kSecond +
                     static_cast<SimTime>(i) * kMillisecond;
    ev.duration = 10 * kMicrosecond;
    events.push_back(std::move(ev));
  }
  return events;
}

[[nodiscard]] auto all_queries(const UnifiedTraceStore& store) {
  return std::tuple{store.call_stats(), store.bytes_in_window(kSecond / 2,
                                                              5 * kSecond / 2),
                    store.io_rate_series(from_millis(25.0)),
                    store.hottest_files(8)};
}

TEST(StoreZeroCopy, ViewBackedSourceMatchesOwnedIngest) {
  const std::vector<TraceEvent> events = era_events(0, 60);
  const EventBatch batch = EventBatch::from_events(events);
  const std::vector<std::uint8_t> bytes = trace::encode_binary_v2(batch, {});
  const std::string path = "/tmp/iotaxo_store_view_test.iotb";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }

  UnifiedTraceStore owned;
  owned.ingest(batch, {{"framework", "test"}, {"application", "a"}});
  UnifiedTraceStore viewed;
  viewed.ingest_view(path, {{"framework", "test"}, {"application", "a"}});
  std::remove(path.c_str());

  ASSERT_EQ(viewed.sources().size(), 1u);
  EXPECT_TRUE(viewed.sources()[0].view_backed);
  EXPECT_FALSE(owned.sources()[0].view_backed);
  EXPECT_EQ(viewed.total_events(), owned.total_events());
  EXPECT_EQ(all_queries(viewed), all_queries(owned));
  EXPECT_EQ(viewed.rank_timeline(1), owned.rank_timeline(1));
  // The view-backed source has no owned batch to hand out.
  EXPECT_THROW((void)viewed.source_batch(0), ConfigError);
  EXPECT_EQ(owned.source_batch(0).size(), events.size());
}

TEST(StoreZeroCopy, IndexSkipsKeepResultsIdentical) {
  UnifiedTraceStore store;
  for (int era = 0; era < 6; ++era) {
    store.ingest(EventBatch::from_events(era_events(era, 40)),
                 {{"framework", "test"},
                  {"application", strprintf("era%d", era)}});
  }
  // One source with no I/O at all (annotations only) — the index must let
  // every query skip it without changing any result.
  TraceEvent note;
  note.cls = trace::EventClass::kAnnotation;
  note.name = "checkpoint";
  note.rank = 0;
  note.local_start = 10 * kSecond;
  store.ingest(EventBatch::from_events({note}), {{"framework", "test"}});

  ASSERT_TRUE(store.use_indexes());
  const auto indexed = all_queries(store);
  store.set_use_indexes(false);
  const auto unindexed = all_queries(store);
  EXPECT_EQ(indexed, unindexed);
}

TEST(StoreZeroCopy, CompactMergesOwnedPoolsAndPreservesResults) {
  UnifiedTraceStore store;
  for (int era = 0; era < 8; ++era) {
    store.ingest(EventBatch::from_events(era_events(era, 50)),
                 {{"framework", "test"},
                  {"application", strprintf("era%d", era)}});
  }
  ASSERT_EQ(store.pool_count(), 8u);
  const auto before = all_queries(store);
  const auto timeline_before = store.rank_timeline(2);
  const auto sources_before = store.sources();

  const std::size_t pools = store.compact(1u << 20);
  EXPECT_LT(pools, 8u);
  EXPECT_EQ(store.pool_count(), pools);

  // Source infos survive compaction verbatim; query results are identical
  // serial and parallel.
  ASSERT_EQ(store.sources().size(), sources_before.size());
  for (std::size_t s = 0; s < sources_before.size(); ++s) {
    EXPECT_EQ(store.sources()[s].application, sources_before[s].application);
    EXPECT_EQ(store.sources()[s].events, sources_before[s].events);
  }
  store.set_query_threads(1);
  EXPECT_EQ(all_queries(store), before);
  store.set_query_threads(4);
  EXPECT_EQ(all_queries(store), before);
  EXPECT_EQ(store.rank_timeline(2), timeline_before);
  // Per-source batches are gone once merged into an era.
  EXPECT_THROW((void)store.source_batch(0), ConfigError);
}

TEST(StoreZeroCopy, CompactLeavesViewPoolsAlone) {
  const EventBatch batch = EventBatch::from_events(era_events(1, 30));
  const std::vector<std::uint8_t> bytes = trace::encode_binary_v2(batch, {});
  const std::string path = "/tmp/iotaxo_store_compact_view_test.iotb";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }

  UnifiedTraceStore store;
  store.ingest(EventBatch::from_events(era_events(0, 30)),
               {{"framework", "test"}});
  store.ingest_view(path, {{"framework", "test"}});
  store.ingest(EventBatch::from_events(era_events(2, 30)),
               {{"framework", "test"}});
  std::remove(path.c_str());

  const auto before = all_queries(store);
  // The view pool splits the owned run, so nothing can merge across it.
  EXPECT_EQ(store.compact(1u << 30), 3u);
  EXPECT_EQ(all_queries(store), before);
  // The view source still refuses to hand out an owned batch.
  EXPECT_THROW((void)store.source_batch(1), ConfigError);
}

TEST(StoreZeroCopy, CompactRespectsEraBudget) {
  UnifiedTraceStore store;
  for (int era = 0; era < 4; ++era) {
    store.ingest(EventBatch::from_events(era_events(era, 50)),
                 {{"framework", "test"}});
  }
  // A budget smaller than any single pool merges nothing.
  EXPECT_EQ(store.compact(1), 4u);
  // An unbounded budget merges everything into one era.
  EXPECT_EQ(store.compact(static_cast<std::size_t>(-1)), 1u);
  EXPECT_EQ(store.total_events(), 200);
}

TEST(StoreZeroCopy, BlockBackedSourceMatchesOwnedIngest) {
  const std::vector<TraceEvent> events = era_events(0, 120);
  const EventBatch batch = EventBatch::from_events(events);
  trace::BinaryOptions options;
  options.compress = true;
  options.checksum = true;
  const std::vector<std::uint8_t> bytes =
      trace::encode_binary_v3(batch, options, 16);
  const std::string path = "/tmp/iotaxo_store_block_test.iotb3";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }

  UnifiedTraceStore owned;
  owned.ingest(batch, {{"framework", "test"}, {"application", "a"}});
  UnifiedTraceStore blocked;
  blocked.ingest_view(path, {{"framework", "test"}, {"application", "a"}});
  std::remove(path.c_str());

  ASSERT_EQ(blocked.sources().size(), 1u);
  EXPECT_TRUE(blocked.sources()[0].view_backed);
  ASSERT_EQ(blocked.pool_infos().size(), 1u);
  EXPECT_TRUE(blocked.pool_infos()[0].block_backed);
  EXPECT_EQ(blocked.pool_infos()[0].blocks, 8u);  // 120 records / 16
  EXPECT_FALSE(owned.pool_infos()[0].block_backed);

  EXPECT_EQ(blocked.total_events(), owned.total_events());
  EXPECT_EQ(all_queries(blocked), all_queries(owned));
  EXPECT_EQ(blocked.rank_timeline(1), owned.rank_timeline(1));
  // Identical with the per-block index skips disabled too.
  blocked.set_use_indexes(false);
  EXPECT_EQ(all_queries(blocked), all_queries(owned));
  blocked.set_use_indexes(true);
  // Block-backed sources have no owned batch to hand out.
  EXPECT_THROW((void)blocked.source_batch(0), ConfigError);
}

/// Fresh scratch directory for cold-tier spills. Cold compaction now
/// commits each era through the directory's MANIFEST.iotm, which makes
/// directory state sticky across compactions — tests sharing /tmp would
/// inherit each other's era numbering, so every test gets its own dir.
std::string make_scratch_dir(const char* tag) {
  const std::string dir =
      strprintf("/tmp/iotaxo_scratch_%s_%d", tag,
                ::testing::UnitTest::GetInstance()->random_seed());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(StoreZeroCopy, ColdCompactSpillsErasAndPreservesResults) {
  UnifiedTraceStore store;
  for (int era = 0; era < 6; ++era) {
    store.ingest(EventBatch::from_events(era_events(era, 40)),
                 {{"framework", "test"},
                  {"application", strprintf("era%d", era)}});
  }
  UnifiedTraceStore owned;
  for (int era = 0; era < 6; ++era) {
    owned.ingest(EventBatch::from_events(era_events(era, 40)),
                 {{"framework", "test"},
                  {"application", strprintf("era%d", era)}});
  }
  const auto before = all_queries(store);
  const auto timeline_before = store.rank_timeline(2);

  const std::string dir = make_scratch_dir("cold_spill");
  UnifiedTraceStore::ColdTierOptions cold;
  cold.directory = dir;
  cold.file_prefix = "era";
  cold.binary.compress = true;
  cold.binary.checksum = true;
  cold.block_records = 16;
  const std::size_t pools = store.compact(static_cast<std::size_t>(-1), cold);
  EXPECT_EQ(pools, 1u);

  // Every pool is now served from the spilled IOTB3 container.
  ASSERT_EQ(store.pool_infos().size(), 1u);
  EXPECT_TRUE(store.pool_infos()[0].block_backed);
  EXPECT_EQ(store.pool_infos()[0].blocks, 15u);  // 240 records / 16
  for (const auto& source : store.sources()) {
    EXPECT_TRUE(source.view_backed);
  }
  EXPECT_THROW((void)store.source_batch(0), ConfigError);

  EXPECT_EQ(all_queries(store), before);
  EXPECT_EQ(store.rank_timeline(2), timeline_before);
  store.set_use_indexes(false);
  EXPECT_EQ(all_queries(store), before);
  store.set_use_indexes(true);
  // The miner sees identical graphs through the block-backed seam.
  EXPECT_EQ(dfg::DfgBuilder(store).build({}),
            dfg::DfgBuilder(owned).build({}));

  std::filesystem::remove_all(dir);
}

TEST(StoreZeroCopy, RepeatedColdCompactNeverRewritesLiveEras) {
  UnifiedTraceStore store;
  UnifiedTraceStore owned;
  const auto ingest_both = [&](int era) {
    const std::map<std::string, std::string> meta = {
        {"framework", "test"}, {"application", strprintf("era%d", era)}};
    store.ingest(EventBatch::from_events(era_events(era, 40)), meta);
    owned.ingest(EventBatch::from_events(era_events(era, 40)), meta);
  };
  ingest_both(0);
  ingest_both(1);

  const std::string dir = make_scratch_dir("cold_seq");
  UnifiedTraceStore::ColdTierOptions cold;
  cold.directory = dir;
  cold.file_prefix = "era";
  cold.binary.compress = true;
  cold.binary.checksum = true;
  cold.block_records = 16;
  const auto era_path = [&](int n) {
    return strprintf("%s/%s-%d.iotb3", dir.c_str(), cold.file_prefix.c_str(),
                     n);
  };
  ASSERT_EQ(store.compact(static_cast<std::size_t>(-1), cold), 1u);
  ASSERT_TRUE(std::filesystem::exists(era_path(0)));

  // More sources arrive and a second compaction runs with the SAME
  // options. It must spill to a fresh era number — era 0 still backs the
  // first pool's mapping, and rewriting it would tear that pool's records
  // out from under every later query.
  ingest_both(2);
  ingest_both(3);
  EXPECT_EQ(store.compact(static_cast<std::size_t>(-1), cold), 2u);
  EXPECT_TRUE(std::filesystem::exists(era_path(0)));
  EXPECT_TRUE(std::filesystem::exists(era_path(1)));
  const auto infos = store.pool_infos();
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_TRUE(infos[0].block_backed);
  EXPECT_TRUE(infos[1].block_backed);
  // Queries decode blocks from BOTH eras; identical to the owned store.
  EXPECT_EQ(all_queries(store), all_queries(owned));
  EXPECT_EQ(store.rank_timeline(1), owned.rank_timeline(1));

  // A foreign file already sitting at the next era number is refused, not
  // truncated.
  {
    FILE* f = std::fopen(era_path(2).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not an era", f);
    std::fclose(f);
  }
  ingest_both(4);
  EXPECT_THROW(store.compact(static_cast<std::size_t>(-1), cold), IoError);

  std::filesystem::remove_all(dir);
}

TEST(StoreZeroCopy, EncryptedProjectedIngestViewMatchesOwned) {
  const CipherKey key = derive_key("store-test-pass");
  const std::vector<TraceEvent> events = era_events(0, 120);
  const EventBatch batch = EventBatch::from_events(events);
  trace::BinaryOptions options;
  options.checksum = true;
  options.encrypt = true;
  options.key = key;
  options.project = true;
  const std::vector<std::uint8_t> bytes =
      trace::encode_binary_v3(batch, options, 16);
  const std::string path = "/tmp/iotaxo_store_enc_proj_test.iotb3";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }

  // No key: rejected at ingest, before any query can dereference blocks.
  {
    UnifiedTraceStore keyless;
    EXPECT_THROW(keyless.ingest_view(path, {{"framework", "test"}}),
                 FormatError);
  }

  UnifiedTraceStore owned;
  owned.ingest(batch, {{"framework", "test"}, {"application", "a"}});
  UnifiedTraceStore store;
  store.ingest_view(path, {{"framework", "test"}, {"application", "a"}}, key);
  std::remove(path.c_str());

  ASSERT_EQ(store.pool_infos().size(), 1u);
  EXPECT_TRUE(store.pool_infos()[0].encrypted);
  EXPECT_TRUE(store.pool_infos()[0].projected);
  EXPECT_GT(store.pool_infos()[0].stored_bytes, 0u);
  EXPECT_EQ(store.pool_infos()[0].decoded_stored_bytes, 0u);  // still lazy

  // A hot-column query decodes strictly less than half the stored bytes
  // (uncompressed projected blocks: 33 of every 81 record bytes are hot).
  EXPECT_EQ(store.bytes_in_window(0, 10 * kSecond),
            owned.bytes_in_window(0, 10 * kSecond));
  const auto info = store.pool_infos()[0];
  EXPECT_GT(info.decoded_stored_bytes, 0u);
  EXPECT_LE(info.decoded_stored_bytes, info.stored_bytes / 2);

  EXPECT_EQ(all_queries(store), all_queries(owned));
  EXPECT_EQ(store.rank_timeline(1), owned.rank_timeline(1));
  EXPECT_EQ(dfg::DfgBuilder(store).build({}), dfg::DfgBuilder(owned).build({}));
}

TEST(StoreZeroCopy, ColdCompactEncryptedProjectedErasPreserveResults) {
  const CipherKey key = derive_key("cold-era-pass");
  UnifiedTraceStore store;
  UnifiedTraceStore owned;
  for (int era = 0; era < 4; ++era) {
    const std::map<std::string, std::string> meta = {
        {"framework", "test"}, {"application", strprintf("era%d", era)}};
    store.ingest(EventBatch::from_events(era_events(era, 40)), meta);
    owned.ingest(EventBatch::from_events(era_events(era, 40)), meta);
  }
  const auto before = all_queries(store);

  const std::string dir = make_scratch_dir("cold_enc");
  UnifiedTraceStore::ColdTierOptions cold;
  cold.directory = dir;
  cold.file_prefix = "era";
  cold.binary.compress = true;
  cold.binary.checksum = true;
  cold.binary.encrypt = true;
  cold.binary.key = key;
  cold.binary.project = true;
  cold.block_records = 16;
  ASSERT_EQ(store.compact(static_cast<std::size_t>(-1), cold), 1u);

  const auto infos = store.pool_infos();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_TRUE(infos[0].block_backed);
  EXPECT_TRUE(infos[0].encrypted);
  EXPECT_TRUE(infos[0].projected);

  EXPECT_EQ(all_queries(store), before);
  EXPECT_EQ(all_queries(store), all_queries(owned));
  EXPECT_EQ(store.rank_timeline(2), owned.rank_timeline(2));

  // The spilled era cannot be opened without the key.
  const std::string era0 =
      strprintf("%s/%s-0.iotb3", dir.c_str(), cold.file_prefix.c_str());
  UnifiedTraceStore keyless;
  EXPECT_THROW(keyless.ingest_view(era0, {{"framework", "test"}}),
               FormatError);

  std::filesystem::remove_all(dir);
}

TEST(StoreZeroCopy, ParallelColdScanIsDeterministicAcrossThreadCounts) {
  // One big block-backed pool: the cold full-scan case block-parallel
  // decode targets (also the --tsan smoke for the decode slots).
  const EventBatch batch = EventBatch::from_events(era_events(0, 240));
  trace::BinaryOptions options;
  options.compress = true;
  options.checksum = true;
  options.project = true;
  const std::vector<std::uint8_t> bytes =
      trace::encode_binary_v3(batch, options, 16);
  const std::string path = "/tmp/iotaxo_store_parallel_scan_test.iotb3";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }
  UnifiedTraceStore owned;
  owned.ingest(batch, {{"framework", "test"}});
  const auto want = all_queries(owned);
  const auto timeline = owned.rank_timeline(1);

  for (const std::size_t threads : {1u, 2u, 4u}) {
    UnifiedTraceStore store;  // fresh store: decode caches start cold
    store.ingest_view(path, {{"framework", "test"}});
    store.set_query_threads(threads);
    EXPECT_EQ(all_queries(store), want) << "threads=" << threads;
    EXPECT_EQ(store.rank_timeline(1), timeline) << "threads=" << threads;
    EXPECT_EQ(dfg::DfgBuilder(store).build({}),
              dfg::DfgBuilder(owned).build({}))
        << "threads=" << threads;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace iotaxo::analysis
