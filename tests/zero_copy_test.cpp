// Tests for the zero-copy IOTB2 read path (PR 3): BatchView/RecordView
// equivalence with the decoding path, hostile-input rejection (truncated
// and oversized record sections, out-of-range string ids, flipped CRCs,
// compressed/encrypted containers), MappedTraceFile, view-backed and
// compacted unified-store sources, and the pool-index query skips.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "analysis/unified_store.h"
#include "trace/binary_format.h"
#include "trace/event_batch.h"
#include "trace/record_view.h"
#include "util/error.h"
#include "util/strings.h"

namespace iotaxo::trace {
namespace {

[[nodiscard]] std::vector<TraceEvent> sample_stream() {
  std::vector<TraceEvent> events;

  TraceEvent open_ev = make_syscall("SYS_open", {"/etc/hosts", "0", "0666"}, 3);
  open_ev.local_start = 1159808387LL * kSecond;
  open_ev.duration = 34 * kMicrosecond;
  open_ev.rank = 7;
  open_ev.node = 3;
  open_ev.pid = 10378;
  open_ev.host = "host13.lanl.gov";
  open_ev.path = "/etc/hosts";
  open_ev.fd = 3;
  events.push_back(open_ev);

  for (int i = 0; i < 24; ++i) {
    TraceEvent w = make_syscall(
        "SYS_write", {"5", "65536", strprintf("%d", i * 65536)}, 65536);
    w.local_start = 1159808388LL * kSecond + i * kMillisecond;
    w.duration = from_millis(3.0);
    w.rank = i % 4;
    w.pid = 10378;
    w.host = i % 2 == 0 ? "host13.lanl.gov" : "host14.lanl.gov";
    w.path = i % 3 == 0 ? "/pfs/out.dat" : "";
    w.fd = 5;
    w.bytes = 65536;
    w.offset = static_cast<Bytes>(i) * 65536;
    events.push_back(w);
  }

  TraceEvent note;
  note.cls = EventClass::kAnnotation;
  note.name = "Barrier before /app.exe";
  note.rank = 0;
  events.push_back(note);

  TraceEvent unknown = make_syscall("SYS_read", {"9", "4096"}, 4096);
  unknown.bytes = 4096;
  unknown.offset = -1;
  events.push_back(unknown);
  return events;
}

[[nodiscard]] std::vector<std::uint8_t> encode_sample(
    const BinaryOptions& options = {}) {
  return encode_binary_v2(EventBatch::from_events(sample_stream()), options);
}

// Header field offsets of the shared container envelope (binary_format.h):
// magic 0..6, flags 6, count 7..15, paylen 15..23.
constexpr std::size_t kFlagsOff = 6;
constexpr std::size_t kCountOff = 7;
constexpr std::size_t kPaylenOff = 15;

void put_u64(std::vector<std::uint8_t>& buf, std::size_t off,
             std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf[off + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

[[nodiscard]] std::uint64_t get_u64(const std::vector<std::uint8_t>& buf,
                                    std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(buf[off + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

TEST(BatchView, MatchesDecodedBatch) {
  const std::vector<std::uint8_t> bytes = encode_sample();
  const EventBatch decoded = decode_binary_batch(bytes);
  const BatchView view(bytes);

  ASSERT_EQ(view.size(), decoded.size());
  ASSERT_EQ(view.string_count(), decoded.pool().size());
  for (StrId id = 0; id < view.string_count(); ++id) {
    EXPECT_EQ(view.string(id), decoded.pool().view(id));
  }
  ASSERT_EQ(view.arg_id_count(), decoded.arg_ids().size());

  view.for_each([&](std::size_t i, const RecordView& rec,
                    std::uint32_t args_begin) {
    const EventRecord& want = decoded.record(i);
    EXPECT_EQ(rec.to_record(args_begin), want) << "record " << i;
    EXPECT_EQ(args_begin, want.args_begin) << "record " << i;
    EXPECT_EQ(view.materialize(i, args_begin), decoded.materialize(i))
        << "record " << i;
  });
}

TEST(BatchView, HeaderAndStringTableAccessors) {
  const std::vector<std::uint8_t> bytes = encode_sample();
  const BatchView view(bytes);
  EXPECT_EQ(view.header().version, 2);
  EXPECT_TRUE(view.header().checksummed);
  EXPECT_FALSE(view.header().compressed);
  EXPECT_EQ(view.string(0), "");
  EXPECT_GT(view.string_table_bytes(), 0u);
  ASSERT_TRUE(view.find_string("SYS_write").has_value());
  EXPECT_EQ(view.string(*view.find_string("SYS_write")), "SYS_write");
  EXPECT_FALSE(view.find_string("not-in-table").has_value());
  EXPECT_THROW((void)view.string(static_cast<StrId>(view.string_count())),
               FormatError);
  EXPECT_THROW((void)view.arg_id(view.arg_id_count()), FormatError);
}

TEST(BatchView, RejectsV1Containers) {
  const std::vector<std::uint8_t> v1 = encode_binary(sample_stream(), {});
  EXPECT_THROW((void)BatchView(v1), FormatError);
  // ... while the decoding path still accepts them.
  EXPECT_EQ(decode_binary_batch(v1).size(), sample_stream().size());
}

TEST(BatchView, RejectsCompressedAndEncryptedContainers) {
  BinaryOptions compressed;
  compressed.compress = true;
  EXPECT_THROW((void)BatchView(encode_sample(compressed)), FormatError);

  BinaryOptions encrypted;
  encrypted.encrypt = true;
  encrypted.key = CipherKey{0x1111, 0x2222, 0x3333, 0x4444};
  const std::vector<std::uint8_t> bytes = encode_sample(encrypted);
  EXPECT_THROW((void)BatchView(bytes), FormatError);
  // The same payload decodes fine through the decrypting path.
  EXPECT_EQ(decode_binary_batch(bytes, encrypted.key).size(),
            sample_stream().size());
}

TEST(BatchView, RejectsFlippedCrc) {
  std::vector<std::uint8_t> bytes = encode_sample();
  bytes.back() ^= 0x01;  // CRC trails the payload
  EXPECT_THROW((void)BatchView(bytes), FormatError);
}

TEST(BatchView, RejectsFlippedPayloadByte) {
  std::vector<std::uint8_t> bytes = encode_sample();
  bytes[bytes.size() / 2] ^= 0x40;
  EXPECT_THROW((void)BatchView(bytes), FormatError);
}

TEST(BatchView, RejectsTruncatedBuffer) {
  const std::vector<std::uint8_t> bytes = encode_sample();
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{5}, std::size_t{22}, bytes.size() / 2,
        bytes.size() - 1}) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + static_cast<long>(keep));
    EXPECT_THROW((void)BatchView(cut), FormatError) << "keep=" << keep;
  }
}

TEST(BatchView, RejectsTruncatedRecordSection) {
  BinaryOptions plain;
  plain.checksum = false;  // reach the structural checks, not the CRC
  std::vector<std::uint8_t> bytes = encode_sample(plain);
  // Drop half a record's bytes off the end and fix up paylen so the
  // envelope stays self-consistent: the record section is no longer
  // count * stride.
  const std::size_t cut = v2layout::kStride / 2;
  bytes.resize(bytes.size() - cut);
  put_u64(bytes, kPaylenOff, get_u64(bytes, kPaylenOff) - cut);
  EXPECT_THROW((void)BatchView(bytes), FormatError);
  EXPECT_THROW((void)decode_binary_batch(bytes), FormatError);
}

TEST(BatchView, RejectsOversizedRecordSection) {
  BinaryOptions plain;
  plain.checksum = false;
  std::vector<std::uint8_t> bytes = encode_sample(plain);
  // Trailing garbage after the records, paylen patched to cover it.
  bytes.insert(bytes.end(), {0xde, 0xad, 0xbe, 0xef});
  put_u64(bytes, kPaylenOff, get_u64(bytes, kPaylenOff) + 4);
  EXPECT_THROW((void)BatchView(bytes), FormatError);
  EXPECT_THROW((void)decode_binary_batch(bytes), FormatError);
}

TEST(BatchView, RejectsOverstatedRecordCount) {
  BinaryOptions plain;
  plain.checksum = false;
  std::vector<std::uint8_t> bytes = encode_sample(plain);
  put_u64(bytes, kCountOff, get_u64(bytes, kCountOff) + 3);
  EXPECT_THROW((void)BatchView(bytes), FormatError);
  EXPECT_THROW((void)decode_binary_batch(bytes), FormatError);
  // A wildly corrupt count must be rejected up front, not fed to reserve().
  put_u64(bytes, kCountOff, ~0ULL);
  EXPECT_THROW((void)BatchView(bytes), FormatError);
  EXPECT_THROW((void)decode_binary_batch(bytes), FormatError);
}

TEST(BatchView, RejectsOverflowingPayloadLength) {
  BinaryOptions plain;
  plain.checksum = false;
  std::vector<std::uint8_t> bytes = encode_sample(plain);
  // A paylen chosen so header + paylen (+ crc) wraps around 2^64 to the
  // true buffer size must not pass the envelope length check.
  put_u64(bytes, kPaylenOff,
          ~std::uint64_t{0} - kContainerHeaderSize + 1 +
              (bytes.size() - kContainerHeaderSize));
  EXPECT_THROW((void)BatchView(bytes), FormatError);
  EXPECT_THROW((void)decode_binary_batch(bytes), FormatError);
}

TEST(BatchView, RejectsDuplicateStringTableEntries) {
  // Hand-build a v2 body whose string table interns "dup" twice; the
  // decoder rejects it ("not interned") and the view must too — records
  // could otherwise reference the second copy and dodge id-equality scans.
  std::vector<std::uint8_t> body;
  const auto u32 = [&body](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      body.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  const auto u64 = [&body](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      body.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  u32(3);  // nstrings: "", "dup", "dup"
  u32(0);
  u32(3);
  body.insert(body.end(), {'d', 'u', 'p'});
  u32(3);
  body.insert(body.end(), {'d', 'u', 'p'});
  u64(0);  // nargids
  // zero records

  std::vector<std::uint8_t> bytes;
  bytes.insert(bytes.end(), {'I', 'O', 'T', 'B', '2', '\n'});
  bytes.push_back(0);  // flags: plain
  bytes.resize(kContainerHeaderSize, 0);
  put_u64(bytes, kCountOff, 0);
  put_u64(bytes, kPaylenOff, body.size());
  bytes.insert(bytes.end(), body.begin(), body.end());
  EXPECT_THROW((void)BatchView(bytes), FormatError);
  EXPECT_THROW((void)decode_binary_batch(bytes), FormatError);
}

TEST(BatchView, HugeStringTableCountIsFormatErrorNotBadAlloc) {
  BinaryOptions plain;
  plain.checksum = false;
  std::vector<std::uint8_t> bytes = encode_sample(plain);
  // nstrings is the first u32 of the body; a wildly corrupt count must be
  // rejected up front, never fed to reserve() as a giant allocation.
  constexpr std::size_t kNstringsOff = kContainerHeaderSize;
  for (std::size_t i = 0; i < 4; ++i) {
    bytes[kNstringsOff + i] = 0xff;
  }
  EXPECT_THROW((void)BatchView(bytes), FormatError);
  EXPECT_THROW((void)decode_binary_batch(bytes), FormatError);
}

TEST(BatchView, RejectsOutOfRangeStringId) {
  BinaryOptions plain;
  plain.checksum = false;
  std::vector<std::uint8_t> bytes = encode_sample(plain);
  // Clobber the last record's name id (offset 1 within the record) with an
  // id far beyond the string table.
  const std::size_t name_off =
      bytes.size() - v2layout::kStride + v2layout::kName;
  bytes[name_off] = 0xff;
  bytes[name_off + 1] = 0xff;
  EXPECT_THROW((void)BatchView(bytes), FormatError);
  EXPECT_THROW((void)decode_binary_batch(bytes), FormatError);
}

TEST(BatchView, RejectsOutOfRangeArgIdValue) {
  BinaryOptions plain;
  plain.checksum = false;
  std::vector<std::uint8_t> bytes = encode_sample(plain);
  // Walk to the argument-id table: nstrings, the length-prefixed strings,
  // the u64 id count — then clobber the first id. The view must reject at
  // open (its contract: reject anything the decoder rejects), not throw
  // later from materialize()/the replay adapter mid-scan.
  const auto u32_at = [&bytes](std::size_t off) {
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes[off + i]) << (8 * i);
    }
    return v;
  };
  std::size_t pos = kContainerHeaderSize;
  const std::uint32_t nstrings = u32_at(pos);
  pos += 4;
  for (std::uint32_t i = 0; i < nstrings; ++i) {
    pos += 4 + u32_at(pos);
  }
  ASSERT_GT(get_u64(bytes, pos), 0u);  // sample stream has args
  pos += 8;
  for (std::size_t i = 0; i < 4; ++i) {
    bytes[pos + i] = 0xff;
  }
  EXPECT_THROW((void)BatchView(bytes), FormatError);
  EXPECT_THROW((void)decode_binary_batch(bytes), FormatError);
}

TEST(BatchView, RejectsArgSliceOverrun) {
  BinaryOptions plain;
  plain.checksum = false;
  std::vector<std::uint8_t> bytes = encode_sample(plain);
  const std::size_t argc_off =
      bytes.size() - v2layout::kStride + v2layout::kArgsCount;
  bytes[argc_off] = 0xff;  // args_count far beyond the arg-id table
  bytes[argc_off + 1] = 0xff;
  EXPECT_THROW((void)BatchView(bytes), FormatError);
  EXPECT_THROW((void)decode_binary_batch(bytes), FormatError);
}

TEST(BatchView, EmptyBatchViews) {
  const std::vector<std::uint8_t> bytes = encode_binary_v2(EventBatch{}, {});
  const BatchView view(bytes);
  EXPECT_EQ(view.size(), 0u);
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.string_count(), 1u);  // the implicit empty string
}

class MappedFileTest : public ::testing::Test {
 protected:
  [[nodiscard]] std::string temp_path() const {
    return strprintf("/tmp/iotaxo_zero_copy_%d_%s.iotb", ::testing::UnitTest::
                         GetInstance()->random_seed(),
                     ::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name());
  }

  void write_bytes(const std::string& path,
                   const std::vector<std::uint8_t>& bytes) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }

  void TearDown() override { std::remove(temp_path().c_str()); }
};

TEST_F(MappedFileTest, MapsAndViewsRoundTrip) {
  const std::vector<std::uint8_t> bytes = encode_sample();
  write_bytes(temp_path(), bytes);

  MappedTraceFile file(temp_path());
  ASSERT_EQ(file.size(), bytes.size());
  EXPECT_EQ(std::memcmp(file.bytes().data(), bytes.data(), bytes.size()), 0);

  const BatchView view(file.bytes());
  EXPECT_EQ(view.size(), sample_stream().size());

  // Views must survive moves of the backing file object.
  MappedTraceFile moved = std::move(file);
  EXPECT_EQ(view.materialize(0, 0), sample_stream()[0]);
  EXPECT_EQ(moved.size(), bytes.size());
}

TEST_F(MappedFileTest, MissingFileThrows) {
  EXPECT_THROW((void)MappedTraceFile("/nonexistent/iotaxo.iotb"), IoError);
}

}  // namespace
}  // namespace iotaxo::trace

namespace iotaxo::analysis {
namespace {

using trace::EventBatch;
using trace::TraceEvent;

[[nodiscard]] std::vector<TraceEvent> era_events(int era, int count) {
  std::vector<TraceEvent> events;
  for (int i = 0; i < count; ++i) {
    TraceEvent ev = trace::make_syscall(
        i % 3 == 0 ? "SYS_read" : "SYS_write",
        {"5", "4096", strprintf("%d", i)}, 4096);
    ev.rank = i % 4;
    ev.host = "host00";
    ev.path = i % 2 == 0 ? strprintf("/pfs/era%d.dat", era) : "";
    ev.fd = 5;
    ev.bytes = 4096;
    ev.local_start = static_cast<SimTime>(era) * kSecond +
                     static_cast<SimTime>(i) * kMillisecond;
    ev.duration = 10 * kMicrosecond;
    events.push_back(std::move(ev));
  }
  return events;
}

[[nodiscard]] auto all_queries(const UnifiedTraceStore& store) {
  return std::tuple{store.call_stats(), store.bytes_in_window(kSecond / 2,
                                                              5 * kSecond / 2),
                    store.io_rate_series(from_millis(25.0)),
                    store.hottest_files(8)};
}

TEST(StoreZeroCopy, ViewBackedSourceMatchesOwnedIngest) {
  const std::vector<TraceEvent> events = era_events(0, 60);
  const EventBatch batch = EventBatch::from_events(events);
  const std::vector<std::uint8_t> bytes = trace::encode_binary_v2(batch, {});
  const std::string path = "/tmp/iotaxo_store_view_test.iotb";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }

  UnifiedTraceStore owned;
  owned.ingest(batch, {{"framework", "test"}, {"application", "a"}});
  UnifiedTraceStore viewed;
  viewed.ingest_view(path, {{"framework", "test"}, {"application", "a"}});
  std::remove(path.c_str());

  ASSERT_EQ(viewed.sources().size(), 1u);
  EXPECT_TRUE(viewed.sources()[0].view_backed);
  EXPECT_FALSE(owned.sources()[0].view_backed);
  EXPECT_EQ(viewed.total_events(), owned.total_events());
  EXPECT_EQ(all_queries(viewed), all_queries(owned));
  EXPECT_EQ(viewed.rank_timeline(1), owned.rank_timeline(1));
  // The view-backed source has no owned batch to hand out.
  EXPECT_THROW((void)viewed.source_batch(0), ConfigError);
  EXPECT_EQ(owned.source_batch(0).size(), events.size());
}

TEST(StoreZeroCopy, IndexSkipsKeepResultsIdentical) {
  UnifiedTraceStore store;
  for (int era = 0; era < 6; ++era) {
    store.ingest(EventBatch::from_events(era_events(era, 40)),
                 {{"framework", "test"},
                  {"application", strprintf("era%d", era)}});
  }
  // One source with no I/O at all (annotations only) — the index must let
  // every query skip it without changing any result.
  TraceEvent note;
  note.cls = trace::EventClass::kAnnotation;
  note.name = "checkpoint";
  note.rank = 0;
  note.local_start = 10 * kSecond;
  store.ingest(EventBatch::from_events({note}), {{"framework", "test"}});

  ASSERT_TRUE(store.use_indexes());
  const auto indexed = all_queries(store);
  store.set_use_indexes(false);
  const auto unindexed = all_queries(store);
  EXPECT_EQ(indexed, unindexed);
}

TEST(StoreZeroCopy, CompactMergesOwnedPoolsAndPreservesResults) {
  UnifiedTraceStore store;
  for (int era = 0; era < 8; ++era) {
    store.ingest(EventBatch::from_events(era_events(era, 50)),
                 {{"framework", "test"},
                  {"application", strprintf("era%d", era)}});
  }
  ASSERT_EQ(store.pool_count(), 8u);
  const auto before = all_queries(store);
  const auto timeline_before = store.rank_timeline(2);
  const auto sources_before = store.sources();

  const std::size_t pools = store.compact(1u << 20);
  EXPECT_LT(pools, 8u);
  EXPECT_EQ(store.pool_count(), pools);

  // Source infos survive compaction verbatim; query results are identical
  // serial and parallel.
  ASSERT_EQ(store.sources().size(), sources_before.size());
  for (std::size_t s = 0; s < sources_before.size(); ++s) {
    EXPECT_EQ(store.sources()[s].application, sources_before[s].application);
    EXPECT_EQ(store.sources()[s].events, sources_before[s].events);
  }
  store.set_query_threads(1);
  EXPECT_EQ(all_queries(store), before);
  store.set_query_threads(4);
  EXPECT_EQ(all_queries(store), before);
  EXPECT_EQ(store.rank_timeline(2), timeline_before);
  // Per-source batches are gone once merged into an era.
  EXPECT_THROW((void)store.source_batch(0), ConfigError);
}

TEST(StoreZeroCopy, CompactLeavesViewPoolsAlone) {
  const EventBatch batch = EventBatch::from_events(era_events(1, 30));
  const std::vector<std::uint8_t> bytes = trace::encode_binary_v2(batch, {});
  const std::string path = "/tmp/iotaxo_store_compact_view_test.iotb";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }

  UnifiedTraceStore store;
  store.ingest(EventBatch::from_events(era_events(0, 30)),
               {{"framework", "test"}});
  store.ingest_view(path, {{"framework", "test"}});
  store.ingest(EventBatch::from_events(era_events(2, 30)),
               {{"framework", "test"}});
  std::remove(path.c_str());

  const auto before = all_queries(store);
  // The view pool splits the owned run, so nothing can merge across it.
  EXPECT_EQ(store.compact(1u << 30), 3u);
  EXPECT_EQ(all_queries(store), before);
  // The view source still refuses to hand out an owned batch.
  EXPECT_THROW((void)store.source_batch(1), ConfigError);
}

TEST(StoreZeroCopy, CompactRespectsEraBudget) {
  UnifiedTraceStore store;
  for (int era = 0; era < 4; ++era) {
    store.ingest(EventBatch::from_events(era_events(era, 50)),
                 {{"framework", "test"}});
  }
  // A budget smaller than any single pool merges nothing.
  EXPECT_EQ(store.compact(1), 4u);
  // An unbounded budget merges everything into one era.
  EXPECT_EQ(store.compact(static_cast<std::size_t>(-1)), 1u);
  EXPECT_EQ(store.total_events(), 200);
}

}  // namespace
}  // namespace iotaxo::analysis
