// Tests for the concurrent trace pipeline: async batch flush (ownership
// transfer, backpressure, drain-barrier determinism), sharded summary
// merging, flat RankBatcher rank tables (dense + sparse + pool rebuild),
// MultiSink flush propagation, capture layers in async-flush mode, and
// parallel unified-store scans matching the serial results exactly.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/unified_store.h"
#include "fs/memfs.h"
#include "interpose/tracers.h"
#include "interpose/vfs_shim.h"
#include "trace/async_sink.h"
#include "trace/event_batch.h"
#include "trace/sink.h"
#include "util/strings.h"

namespace iotaxo::trace {
namespace {

[[nodiscard]] std::vector<TraceEvent> mixed_rank_stream(int events,
                                                        int ranks) {
  static const char* kNames[] = {"SYS_write", "SYS_read", "SYS_open", "write"};
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(events));
  for (int i = 0; i < events; ++i) {
    TraceEvent ev = make_syscall(kNames[i % 4],
                                 {"5", strprintf("%d", i * 64)}, 64);
    ev.rank = ranks > 0 ? i % ranks : -1;
    ev.host = strprintf("host%02d", ev.rank);
    ev.path = "/pfs/out.dat";
    ev.fd = 5;
    ev.bytes = 64;
    ev.local_start = static_cast<SimTime>(i) * kMicrosecond;
    ev.duration = 2 * kMicrosecond;
    out.push_back(std::move(ev));
  }
  return out;
}

[[nodiscard]] std::vector<EventBatch> flush_units(
    const std::vector<TraceEvent>& events, std::size_t unit) {
  std::vector<EventBatch> batches;
  for (std::size_t begin = 0; begin < events.size(); begin += unit) {
    EventBatch batch;
    const std::size_t end = std::min(events.size(), begin + unit);
    for (std::size_t i = begin; i < end; ++i) {
      batch.append(events[i]);
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

[[nodiscard]] SummarySink reference_summary(
    const std::vector<TraceEvent>& events) {
  SummarySink sink;
  for (const TraceEvent& ev : events) {
    sink.on_event(ev);
  }
  return sink;
}

void expect_same_entries(const std::map<std::string, SummarySink::Entry>& got,
                         const SummarySink& want) {
  ASSERT_EQ(got.size(), want.entries().size());
  for (const auto& [name, entry] : want.entries()) {
    const auto it = got.find(name);
    ASSERT_NE(it, got.end()) << name;
    EXPECT_EQ(it->second.count, entry.count) << name;
    EXPECT_EQ(it->second.total_duration, entry.total_duration) << name;
  }
}

TEST(AsyncBatchSink, OwnedBatchesAreConsumedAndDelivered) {
  auto downstream = std::make_shared<SummarySink>();
  AsyncBatchSink async(downstream);
  const auto events = mixed_rank_stream(512, 4);
  for (EventBatch& batch : flush_units(events, 64)) {
    async.on_batch_owned(std::move(batch));
  }
  async.flush();
  EXPECT_EQ(async.pending(), 0u);
  expect_same_entries(downstream->entries(), reference_summary(events));
}

TEST(AsyncBatchSink, ConstBatchesAreCopiedNotConsumed) {
  auto downstream = std::make_shared<CountingSink>();
  AsyncBatchSink async(downstream);
  const EventBatch batch =
      EventBatch::from_events(mixed_rank_stream(32, 2));
  async.on_batch(batch);
  async.flush();
  EXPECT_EQ(batch.size(), 32u);  // source intact
  EXPECT_EQ(downstream->count(), 32);
}

TEST(AsyncBatchSink, BackpressureTinyQueueStillDeliversEverything) {
  auto downstream = std::make_shared<SummarySink>();
  AsyncOptions options;
  options.queue_capacity = 1;  // every enqueue may block on the worker
  options.workers = 1;
  AsyncBatchSink async(downstream, options);
  const auto events = mixed_rank_stream(1000, 8);
  for (EventBatch& batch : flush_units(events, 16)) {
    async.on_batch_owned(std::move(batch));
  }
  async.flush();
  expect_same_entries(downstream->entries(), reference_summary(events));
}

TEST(AsyncBatchSink, SingleWorkerPreservesDeliveryOrder) {
  auto downstream = std::make_shared<VectorSink>();
  AsyncOptions options;
  options.workers = 1;  // FIFO queue + one consumer => arrival order
  AsyncBatchSink async(downstream, options);
  const auto events = mixed_rank_stream(300, 3);
  for (EventBatch& batch : flush_units(events, 32)) {
    async.on_batch_owned(std::move(batch));
  }
  async.flush();
  EXPECT_EQ(downstream->events(), events);
}

TEST(AsyncBatchSink, FlushIsADrainBarrierAcrossRounds) {
  auto downstream = std::make_shared<CountingSink>();
  AsyncBatchSink async(downstream, {.queue_capacity = 4, .workers = 2});
  const auto events = mixed_rank_stream(256, 4);
  auto batches = flush_units(events, 16);
  const std::size_t half = batches.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    async.on_batch_owned(std::move(batches[i]));
  }
  async.flush();
  // Determinism at the barrier: everything handed off so far is visible.
  EXPECT_EQ(downstream->count(), static_cast<long long>(half * 16));
  for (std::size_t i = half; i < batches.size(); ++i) {
    async.on_batch_owned(std::move(batches[i]));
  }
  async.flush();
  EXPECT_EQ(downstream->count(), static_cast<long long>(events.size()));
}

TEST(AsyncBatchSink, PerEventDeliveryWorksToo) {
  auto downstream = std::make_shared<SummarySink>();
  AsyncBatchSink async(downstream);
  const auto events = mixed_rank_stream(64, 4);
  for (const TraceEvent& ev : events) {
    async.on_event(ev);
  }
  async.flush();
  EXPECT_EQ(downstream->total_events(),
            static_cast<long long>(events.size()));
}

TEST(ShardedSummarySink, MergedEntriesMatchUnsharded) {
  const auto events = mixed_rank_stream(2048, 13);  // ranks straddle shards
  ShardedSummarySink sharded(4);
  for (const EventBatch& batch : flush_units(events, 64)) {
    sharded.on_batch(batch);
  }
  sharded.flush();
  EXPECT_EQ(sharded.total_events(), static_cast<long long>(events.size()));
  expect_same_entries(sharded.entries(), reference_summary(events));
}

TEST(ShardedSummarySink, PerEventAndNegativeRanksRouteSomewhere) {
  ShardedSummarySink sharded(8);
  auto events = mixed_rank_stream(16, 0);  // all rank -1
  for (const TraceEvent& ev : events) {
    sharded.on_event(ev);
  }
  sharded.flush();
  EXPECT_EQ(sharded.total_events(), 16);
  expect_same_entries(sharded.entries(), reference_summary(events));
}

TEST(ShardedSummarySink, ConcurrentDeliveryUnderAsyncWorkers) {
  const auto events = mixed_rank_stream(4096, 32);
  auto sharded = std::make_shared<ShardedSummarySink>(8);
  AsyncOptions options;
  options.queue_capacity = 8;
  options.workers = 4;
  options.concurrent_downstream = true;  // shards synchronize internally
  {
    AsyncBatchSink async(sharded, options);
    for (EventBatch& batch : flush_units(events, 32)) {
      async.on_batch_owned(std::move(batch));
    }
    async.flush();
  }
  sharded->flush();
  expect_same_entries(sharded->entries(), reference_summary(events));
}

/// Records flush() calls; MultiSink must propagate them to every child.
class FlushRecordingSink : public EventSink {
 public:
  void on_event(const TraceEvent&) override {}
  void flush() override { ++flushes_; }
  [[nodiscard]] int flushes() const noexcept { return flushes_; }

 private:
  int flushes_ = 0;
};

TEST(MultiSink, FlushPropagatesToEveryChild) {
  auto a = std::make_shared<FlushRecordingSink>();
  auto b = std::make_shared<FlushRecordingSink>();
  MultiSink multi({a, b});
  multi.flush();
  multi.flush();
  EXPECT_EQ(a->flushes(), 2);
  EXPECT_EQ(b->flushes(), 2);
}

TEST(RankBatcher, SparseAndNegativeRanksCoexistWithDense) {
  auto sink = std::make_shared<VectorSink>();
  RankBatcher batcher(sink, 100);  // nothing reaches capacity
  const int ranks[] = {-3, 0, 5, RankBatcher::kDenseRankLimit + 7, -3, 5};
  for (const int r : ranks) {
    TraceEvent ev = make_syscall("SYS_write", {"1"}, 1);
    ev.rank = r;
    batcher.add(ev);
  }
  EXPECT_TRUE(sink->events().empty());
  batcher.flush();
  ASSERT_EQ(sink->events().size(), 6u);
  // Ascending flush order: sparse negatives, dense, sparse overflow.
  std::vector<int> flushed;
  for (const TraceEvent& ev : sink->events()) {
    flushed.push_back(ev.rank);
  }
  EXPECT_EQ(flushed, (std::vector<int>{-3, -3, 0, 5, 5,
                                       RankBatcher::kDenseRankLimit + 7}));
}

TEST(RankBatcher, PoolRebuildPastThresholdKeepsDeliveryIntact) {
  auto sink = std::make_shared<CountingSink>();
  RankBatcher batcher(sink, 4);
  // Every event brings two fresh strings (name + arg), so one rank's buffer
  // pool crosses kPoolResetThreshold and is rebuilt mid-stream.
  const int events =
      static_cast<int>(RankBatcher::kPoolResetThreshold / 2) + 4096;
  for (int i = 0; i < events; ++i) {
    TraceEvent ev = make_syscall(strprintf("call_%d", i),
                                 {strprintf("arg_%d", i)}, 8);
    ev.rank = 0;
    ev.bytes = 8;
    batcher.add(ev);
  }
  batcher.flush();
  EXPECT_EQ(sink->count(), events);
  EXPECT_EQ(sink->total_bytes(), static_cast<Bytes>(events) * 8);
  // The rebuilt buffer keeps working: one more full round delivers fine.
  for (int i = 0; i < 4; ++i) {
    TraceEvent ev = make_syscall("steady", {"x"}, 8);
    ev.rank = 0;
    batcher.add(ev);
  }
  EXPECT_EQ(sink->count(), events + 4);
}

TEST(RankBatcher, AsyncSinkConsumesBatchesWithoutCorruption) {
  auto downstream = std::make_shared<SummarySink>();
  auto async = std::make_shared<AsyncBatchSink>(downstream);
  RankBatcher batcher(async, 32);  // deliver() hands ownership to the queue
  const auto events = mixed_rank_stream(1024, 4);
  for (const TraceEvent& ev : events) {
    batcher.add(ev);
  }
  batcher.flush();  // drains the async queue via the sink's flush
  expect_same_entries(downstream->entries(), reference_summary(events));
}

}  // namespace
}  // namespace iotaxo::trace

namespace iotaxo {
namespace {

using trace::EventBatch;
using trace::TraceEvent;

TEST(AsyncCapture, PtraceTracerAsyncModeMatchesInline) {
  const auto events = trace::mixed_rank_stream(600, 6);
  auto inline_sink = std::make_shared<trace::SummarySink>();
  auto async_sink = std::make_shared<trace::SummarySink>();
  interpose::PtraceTracer inline_tracer(interpose::PtraceTracer::Mode::kStrace,
                                        inline_sink, {}, 64);
  trace::AsyncFlushMode async;
  async.enabled = true;
  async.options.workers = 2;
  interpose::PtraceTracer async_tracer(interpose::PtraceTracer::Mode::kStrace,
                                       async_sink, {}, 64, async);
  for (const TraceEvent& ev : events) {
    EXPECT_EQ(inline_tracer.on_event(ev), async_tracer.on_event(ev));
  }
  inline_tracer.flush();
  async_tracer.flush();  // the runtime's pre-on_run_end drain barrier
  EXPECT_EQ(async_tracer.events_captured(), inline_tracer.events_captured());
  EXPECT_EQ(async_sink->total_events(), inline_sink->total_events());
  EXPECT_EQ(async_sink->entries(), inline_sink->entries());
}

TEST(AsyncCapture, VfsShimAsyncModeMatchesInline) {
  const auto run = [](bool enable_async) {
    auto inner = std::make_shared<fs::MemFs>();
    auto sink = std::make_shared<trace::SummarySink>();
    interpose::VfsShimOptions options;
    options.batch_capacity = 16;
    options.async_flush.enabled = enable_async;
    options.async_flush.options.workers = 2;
    interpose::VfsShim shim(inner, sink, options, nullptr);
    fs::OpCtx ctx;
    const int fd = static_cast<int>(
        shim.open("/f", fs::OpenMode::write_create(), ctx).value);
    for (int i = 0; i < 100; ++i) {
      (void)shim.write(fd, i * 64, 64, ctx, nullptr);
    }
    (void)shim.close(fd, ctx);
    shim.flush();
    return std::pair{shim.events_captured(), sink->entries()};
  };
  const auto [inline_count, inline_entries] = run(false);
  const auto [async_count, async_entries] = run(true);
  EXPECT_EQ(async_count, inline_count);
  EXPECT_EQ(async_entries, inline_entries);
}

[[nodiscard]] analysis::UnifiedTraceStore multi_source_store() {
  analysis::UnifiedTraceStore store;
  for (int s = 0; s < 6; ++s) {
    EventBatch batch;
    for (int i = 0; i < 400; ++i) {
      TraceEvent ev = trace::make_syscall(
          i % 3 == 0 ? "SYS_read" : "SYS_write",
          {"5", strprintf("%d", i * 512)}, 512);
      ev.rank = i % 8;
      ev.bytes = 512;
      ev.fd = 5;
      // Source 0 names the path; later sources only carry the fd, so
      // hottest_files' fd carryover threads across source boundaries.
      ev.path = s == 0 && i == 0 ? "/pfs/carried.dat" : "";
      ev.local_start = static_cast<SimTime>(s * 400 + i) * kMicrosecond;
      ev.duration = kMicrosecond;
      batch.append(ev);
    }
    store.ingest(batch, {{"framework", "test"},
                         {"application", strprintf("app%d", s)}});
  }
  return store;
}

TEST(ParallelStoreQueries, IdenticalToSerialScan) {
  analysis::UnifiedTraceStore store = multi_source_store();

  store.set_query_threads(1);
  const auto serial_stats = store.call_stats();
  const auto serial_window = store.bytes_in_window(0, from_millis(900.0));
  const auto serial_series = store.io_rate_series(from_millis(100.0));
  const auto serial_heat = store.hottest_files(10);

  store.set_query_threads(4);
  EXPECT_EQ(store.call_stats(), serial_stats);
  EXPECT_EQ(store.bytes_in_window(0, from_millis(900.0)), serial_window);
  EXPECT_EQ(store.io_rate_series(from_millis(100.0)), serial_series);
  EXPECT_EQ(store.hottest_files(10), serial_heat);

  // The fd opened in source 0 must resolve transfers from every source.
  ASSERT_FALSE(serial_heat.empty());
  EXPECT_EQ(serial_heat[0].path, "/pfs/carried.dat");
  EXPECT_EQ(serial_heat[0].ops, 6 * 400);
}

TEST(ParallelStoreQueries, FdCarryoverRespectsSourceOrder) {
  // Source 0 maps fd 5 -> /a; source 1 remaps fd 5 -> /b and then
  // transfers path-lessly; source 2 transfers path-lessly again. Serial
  // semantics: source 1's transfer resolves to its own (local) /b write,
  // source 2's resolves to the carried /b.
  analysis::UnifiedTraceStore store;
  const auto io = [](const char* path, int fd, Bytes bytes) {
    TraceEvent ev = trace::make_syscall("SYS_write", {"x"}, bytes);
    ev.path = path;
    ev.fd = fd;
    ev.bytes = bytes;
    return ev;
  };
  EventBatch s0;
  s0.append(io("/a", 5, 100));
  store.ingest(s0);
  EventBatch s1;
  s1.append(io("", 5, 7));   // resolves against carried /a
  s1.append(io("/b", 5, 100));
  s1.append(io("", 5, 11));  // resolves against local /b
  store.ingest(s1);
  EventBatch s2;
  s2.append(io("", 5, 13));  // resolves against carried /b
  store.ingest(s2);

  store.set_query_threads(1);
  const auto serial = store.hottest_files(10);
  store.set_query_threads(3);
  const auto parallel = store.hottest_files(10);
  EXPECT_EQ(parallel, serial);

  Bytes a_bytes = 0;
  Bytes b_bytes = 0;
  for (const auto& heat : parallel) {
    if (heat.path == "/a") {
      a_bytes = heat.bytes;
    } else if (heat.path == "/b") {
      b_bytes = heat.bytes;
    }
  }
  EXPECT_EQ(a_bytes, 107);  // 100 + the carried-resolution 7
  EXPECT_EQ(b_bytes, 124);  // 100 + local 11 + carried 13
}

}  // namespace
}  // namespace iotaxo
