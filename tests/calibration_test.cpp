// Calibration tests: the default model constants must keep the headline
// numbers of the paper's §4.1.2 within tolerance. These are the guardrails
// that keep future refactoring from silently un-reproducing the paper.
//
// Paper anchors (32 processes, LANL-Trace/ltrace):
//   64 KiB  blocks: bandwidth overheads 51.3% / 64.7% / 68.6%
//                    (N-1 strided / N-1 non-strided / N-N)
//   8192 KiB blocks: 5.5% / 6.1% / 0.6%
//   Elapsed-time overhead range: 24% .. 222%
#include <gtest/gtest.h>

#include "frameworks/lanl_trace.h"
#include "frameworks/tracefs.h"
#include "fs/memfs.h"
#include "pfs/pfs.h"
#include "taxonomy/overhead.h"
#include "util/strings.h"
#include "workload/io_intensive.h"

namespace iotaxo {
namespace {

struct Anchor {
  workload::Pattern pattern;
  Bytes block;
  double expected_bw_overhead;  // fraction
  double rel_tolerance;         // relative
};

class BandwidthAnchors : public ::testing::TestWithParam<Anchor> {
 protected:
  BandwidthAnchors() : cluster_(make_params()) {}
  static sim::ClusterParams make_params() {
    sim::ClusterParams p;
    p.node_count = 32;
    return p;
  }
  sim::Cluster cluster_;
};

TEST_P(BandwidthAnchors, WithinTolerance) {
  const Anchor& anchor = GetParam();
  taxonomy::OverheadHarness harness(
      cluster_, [] { return std::make_shared<pfs::Pfs>(); });
  frameworks::LanlTrace lanl;

  workload::MpiIoTestParams params;
  params.pattern = anchor.pattern;
  params.nranks = 32;
  params.block = anchor.block;
  params.total_bytes = 4 * kGiB;  // scaled from the paper's 100 GiB
  const taxonomy::OverheadPoint p =
      harness.measure(lanl, workload::make_mpi_io_test(params));

  EXPECT_NEAR(p.bandwidth_overhead, anchor.expected_bw_overhead,
              anchor.expected_bw_overhead * anchor.rel_tolerance)
      << to_string(anchor.pattern) << " @ " << format_bytes(anchor.block)
      << ": measured " << format_pct(p.bandwidth_overhead) << ", paper "
      << format_pct(anchor.expected_bw_overhead);
}

INSTANTIATE_TEST_SUITE_P(
    Paper412, BandwidthAnchors,
    ::testing::Values(
        Anchor{workload::Pattern::kNto1Strided, 64 * kKiB, 0.513, 0.15},
        Anchor{workload::Pattern::kNto1NonStrided, 64 * kKiB, 0.647, 0.15},
        Anchor{workload::Pattern::kNtoN, 64 * kKiB, 0.686, 0.15},
        Anchor{workload::Pattern::kNto1Strided, 8192 * kKiB, 0.055, 0.25},
        Anchor{workload::Pattern::kNto1NonStrided, 8192 * kKiB, 0.061, 0.30},
        Anchor{workload::Pattern::kNtoN, 8192 * kKiB, 0.006, 0.40}));

class CalibrationFixture : public ::testing::Test {
 protected:
  CalibrationFixture() : cluster_(make_params()) {}
  static sim::ClusterParams make_params() {
    sim::ClusterParams p;
    p.node_count = 32;
    return p;
  }
  sim::Cluster cluster_;
};

TEST_F(CalibrationFixture, ElapsedOverheadRangeMatchesPaper) {
  taxonomy::OverheadHarness harness(
      cluster_, [] { return std::make_shared<pfs::Pfs>(); });
  frameworks::LanlTrace lanl;

  double lo = 1e9;
  double hi = 0.0;
  for (const workload::Pattern pattern :
       {workload::Pattern::kNto1Strided, workload::Pattern::kNto1NonStrided,
        workload::Pattern::kNtoN}) {
    workload::MpiIoTestParams base;
    base.pattern = pattern;
    base.nranks = 32;
    base.total_bytes = 4 * kGiB;
    const auto points =
        harness.sweep_block_sizes(lanl, base, {64 * kKiB, 8 * kMiB});
    for (const taxonomy::OverheadPoint& p : points) {
      lo = std::min(lo, p.elapsed_overhead);
      hi = std::max(hi, p.elapsed_overhead);
    }
  }
  // Paper: 24% .. 222% — accept a generous band around it.
  EXPECT_GT(lo, 0.10);
  EXPECT_LT(lo, 0.40);
  EXPECT_GT(hi, 1.60);
  EXPECT_LT(hi, 3.00);
}

TEST_F(CalibrationFixture, BandwidthOverheadMonotoneInBlockSize) {
  // The paper's core observation: "we saw higher bandwidth overhead for
  // tracing smaller block sizes than for larger block sizes" — the whole
  // sweep must be monotone non-increasing.
  taxonomy::OverheadHarness harness(
      cluster_, [] { return std::make_shared<pfs::Pfs>(); });
  frameworks::LanlTrace lanl;
  workload::MpiIoTestParams base;
  base.pattern = workload::Pattern::kNto1Strided;
  base.nranks = 32;
  base.total_bytes = 2 * kGiB;
  const auto points = harness.sweep_block_sizes(
      lanl, base, taxonomy::figure_block_sizes());
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i].bandwidth_overhead,
              points[i - 1].bandwidth_overhead * 1.02)
        << "at block " << format_bytes(points[i].block);
  }
}

TEST_F(CalibrationFixture, StraceCheaperThanLtrace) {
  taxonomy::OverheadHarness harness(
      cluster_, [] { return std::make_shared<pfs::Pfs>(); });
  frameworks::LanlTraceParams strace_params;
  strace_params.mode = interpose::PtraceTracer::Mode::kStrace;
  frameworks::LanlTrace strace_mode(strace_params);
  frameworks::LanlTrace ltrace_mode;

  workload::MpiIoTestParams params;
  params.nranks = 32;
  params.block = 64 * kKiB;
  params.total_bytes = kGiB;
  const mpi::Job job = workload::make_mpi_io_test(params);
  const auto with_strace = harness.measure(strace_mode, job);
  const auto with_ltrace = harness.measure(ltrace_mode, job);
  EXPECT_LT(with_strace.bandwidth_overhead, with_ltrace.bandwidth_overhead);
}

TEST_F(CalibrationFixture, TracefsStaysUnderPaperBound) {
  // Paper §4.2: "less than 12.4%" elapsed-time overhead for full tracing of
  // an I/O-intensive workload.
  sim::ClusterParams small;
  small.node_count = 4;
  const sim::Cluster cluster(small);
  taxonomy::OverheadHarness harness(
      cluster, [] { return std::make_shared<fs::MemFs>(); });
  frameworks::Tracefs tracefs;
  workload::IoIntensiveParams params;
  params.nranks = 1;
  params.files_per_rank = 2000;
  const auto p = harness.measure(tracefs, workload::make_io_intensive(params));
  EXPECT_GT(p.elapsed_overhead, 0.01);
  EXPECT_LT(p.elapsed_overhead, 0.124 * 1.3);
}

TEST_F(CalibrationFixture, TracefsAdvancedFeaturesCostMore) {
  sim::ClusterParams small;
  small.node_count = 4;
  const sim::Cluster cluster(small);
  taxonomy::OverheadHarness harness(
      cluster, [] { return std::make_shared<fs::MemFs>(); });
  workload::IoIntensiveParams params;
  params.nranks = 1;
  params.files_per_rank = 200;
  const mpi::Job job = workload::make_io_intensive(params);

  frameworks::Tracefs plain;
  frameworks::TracefsParams fancy_params;
  fancy_params.shim.checksum = true;
  fancy_params.shim.encrypt = true;
  frameworks::Tracefs fancy(fancy_params);
  const auto base = harness.measure(plain, job);
  const auto extra = harness.measure(fancy, job);
  EXPECT_GT(extra.elapsed_overhead, base.elapsed_overhead);
}

}  // namespace
}  // namespace iotaxo
