// Property-based tests over randomized inputs: format round-trips on
// arbitrary event streams, runtime determinism invariants, coalescing
// signature preservation, filter-language algebraic identities, and
// anonymizer idempotence.
#include <gtest/gtest.h>

#include "anon/anonymizer.h"
#include "frameworks/tracefs_filter.h"
#include "fs/memfs.h"
#include "mpi/runtime.h"
#include "pfs/pfs.h"
#include "replay/pseudo_app.h"
#include "sim/cluster.h"
#include "trace/binary_format.h"
#include "trace/text_format.h"
#include "util/rng.h"
#include "util/strings.h"
#include "workload/mpi_io_test.h"

namespace iotaxo {
namespace {

using trace::EventClass;
using trace::TraceEvent;

/// Generate a random but *well-formed* event stream (the kind any of our
/// tracers could emit).
[[nodiscard]] std::vector<TraceEvent> random_stream(Rng& rng, int n) {
  std::vector<TraceEvent> events;
  events.reserve(static_cast<std::size_t>(n));
  SimTime t = 1159808385LL * kSecond;
  int next_fd = 3;
  std::vector<int> open_fds;

  for (int i = 0; i < n; ++i) {
    t += rng.uniform(10, 500000) * kMicrosecond / 100;
    const int kind = static_cast<int>(rng.uniform(0, 5));
    TraceEvent ev;
    ev.local_start = t;
    ev.duration = rng.uniform(1, 40000) * kMicrosecond / 10;
    ev.rank = 7;
    ev.pid = 10378;
    ev.host = "host13.lanl.gov";
    switch (kind) {
      case 0: {  // open
        const int fd = next_fd++;
        open_fds.push_back(fd);
        ev.cls = EventClass::kSyscall;
        ev.name = "SYS_open";
        ev.path = "/data/f" + rng.token(6);
        ev.args = {ev.path, "577", "0666"};
        ev.ret = fd;
        ev.fd = fd;
        break;
      }
      case 1:
      case 2: {  // write / read
        if (open_fds.empty()) {
          --i;
          continue;
        }
        const int fd =
            open_fds[static_cast<std::size_t>(rng.uniform(
                0, static_cast<std::int64_t>(open_fds.size()) - 1))];
        const Bytes bytes = rng.uniform(1, 1 << 20);
        const Bytes offset = rng.uniform(0, 1 << 30);
        ev.cls = EventClass::kSyscall;
        ev.name = kind == 1 ? "SYS_write" : "SYS_read";
        ev.args = {strprintf("%d", fd),
                   strprintf("%lld", static_cast<long long>(bytes)),
                   strprintf("%lld", static_cast<long long>(offset))};
        ev.ret = bytes;
        ev.fd = fd;
        ev.bytes = bytes;
        ev.offset = offset;
        break;
      }
      case 3: {  // barrier
        ev.cls = EventClass::kLibraryCall;
        ev.name = "MPI_Barrier";
        ev.args = {"MPI_COMM_WORLD"};
        ev.path = "phase_" + rng.token(3);
        break;
      }
      default: {  // stat
        ev.cls = EventClass::kSyscall;
        ev.name = "SYS_stat";
        ev.path = "/data/s" + rng.token(5);
        ev.args = {ev.path};
        ev.ret = rng.uniform(0, 1 << 16);
        break;
      }
    }
    events.push_back(std::move(ev));
  }
  return events;
}

class StreamSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamSeeds, BinaryRoundTripIsLossless) {
  Rng rng(GetParam());
  const auto events = random_stream(rng, 200);
  for (const int mask : {0, 1, 3, 7}) {
    trace::BinaryOptions options;
    options.compress = (mask & 1) != 0;
    options.encrypt = (mask & 2) != 0;
    options.checksum = (mask & 4) != 0;
    if (options.encrypt) {
      options.key = derive_key("prop");
    }
    const auto blob = trace::encode_binary(events, options);
    const auto decoded = trace::decode_binary(
        blob, options.encrypt ? options.key : std::nullopt);
    ASSERT_EQ(decoded.size(), events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_EQ(decoded[i], events[i]) << "event " << i << " mask " << mask;
    }
  }
}

TEST_P(StreamSeeds, TextRoundTripPreservesReplaySemantics) {
  Rng rng(GetParam() ^ 0xABCD);
  const auto events = random_stream(rng, 150);
  trace::TextTraceWriter::StreamMeta meta{"host13.lanl.gov", 7, 10378};
  const auto parsed =
      trace::TextTraceParser::parse(trace::TextTraceWriter::render(meta, events));
  ASSERT_EQ(parsed.events.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& o = events[i];
    const TraceEvent& p = parsed.events[i];
    EXPECT_EQ(p.cls, o.cls);
    EXPECT_EQ(p.name, o.name);
    EXPECT_EQ(p.ret, o.ret);
    EXPECT_EQ(p.fd, o.fd);
    EXPECT_EQ(p.bytes, o.bytes);
    EXPECT_EQ(p.path, o.path);
    // Timestamps survive to microsecond precision (ltrace's own precision).
    EXPECT_LE(std::llabs(p.local_start - o.local_start), 1000);
  }
}

TEST_P(StreamSeeds, AnonymizationIsIdempotentAndLeakFree) {
  Rng rng(GetParam() ^ 0x5151);
  trace::TraceBundle bundle;
  trace::RankStream rs;
  rs.rank = 7;
  rs.host = "host13.lanl.gov";
  rs.events = random_stream(rng, 100);
  bundle.ranks.push_back(rs);

  std::vector<std::string> secrets;
  for (const TraceEvent& ev : bundle.ranks[0].events) {
    if (!ev.path.empty()) {
      secrets.push_back(ev.path);
    }
  }
  ASSERT_FALSE(secrets.empty());

  anon::RandomizingAnonymizer anonymizer(anon::FieldPolicy{}, GetParam());
  const trace::TraceBundle once = anonymizer.apply(bundle);
  EXPECT_FALSE(anon::leaks_any(once, secrets));

  // Scrubbing an already-scrubbed bundle preserves event structure (counts,
  // classes, sizes): anonymization is structure-preserving.
  const trace::TraceBundle twice = anonymizer.apply(once);
  ASSERT_EQ(twice.ranks[0].events.size(), bundle.ranks[0].events.size());
  for (std::size_t i = 0; i < twice.ranks[0].events.size(); ++i) {
    EXPECT_EQ(twice.ranks[0].events[i].cls, bundle.ranks[0].events[i].cls);
    EXPECT_EQ(twice.ranks[0].events[i].bytes, bundle.ranks[0].events[i].bytes);
    EXPECT_EQ(twice.ranks[0].events[i].ret, bundle.ranks[0].events[i].ret);
  }
}

TEST_P(StreamSeeds, CoalescePreservesIoSignature) {
  Rng rng(GetParam() ^ 0xC0A1);
  // Random program of writes with varying offsets/blocks.
  mpi::Program prog;
  Bytes offset = 0;
  for (int i = 0; i < 120; ++i) {
    mpi::Op op;
    op.type = mpi::OpType::kWriteBlocks;
    op.slot = 0;
    op.block = (1 + rng.uniform(0, 3)) * 32 * kKiB;
    op.count = 1;
    if (rng.chance(0.7)) {
      offset += op.block;  // often contiguous
    } else {
      offset += rng.uniform(1, 64) * 32 * kKiB;
    }
    op.start_offset = offset;
    prog.push_back(op);
    if (rng.chance(0.1)) {
      mpi::Op barrier;
      barrier.type = mpi::OpType::kBarrier;
      prog.push_back(barrier);
    }
  }
  const mpi::Program merged = replay::coalesce_program(prog);
  EXPECT_LE(merged.size(), prog.size());

  // Expand both programs to (offset, bytes) lists — must be identical.
  auto expand = [](const mpi::Program& p) {
    std::vector<std::pair<Bytes, Bytes>> extents;
    for (const mpi::Op& op : p) {
      if (op.type != mpi::OpType::kWriteBlocks) {
        continue;
      }
      const Bytes stride = op.stride == 0 ? op.block : op.stride;
      for (long long i = 0; i < op.count; ++i) {
        extents.emplace_back(op.start_offset + i * stride, op.block);
      }
    }
    return extents;
  };
  EXPECT_EQ(expand(merged), expand(prog));
}

TEST_P(StreamSeeds, FilterAlgebraHolds) {
  Rng rng(GetParam() ^ 0xF11E);
  const auto events = random_stream(rng, 100);
  const auto set_filter =
      frameworks::compile_tracefs_filter("op in {open, write, stat}");
  const auto or_filter = frameworks::compile_tracefs_filter(
      "op == open or op == write or op == stat");
  const auto all = frameworks::compile_tracefs_filter("all");
  const auto not_none = frameworks::compile_tracefs_filter("not none");
  const auto de_morgan_a = frameworks::compile_tracefs_filter(
      "not (op == write or uid == 0)");
  const auto de_morgan_b = frameworks::compile_tracefs_filter(
      "not op == write and not uid == 0");
  for (TraceEvent ev : events) {
    ev.cls = EventClass::kFsOperation;
    ev.name = "vfs_" + std::string(ev.name == "MPI_Barrier" ? "fsync"
                                    : ev.name == "SYS_open"  ? "open"
                                    : ev.name == "SYS_write" ? "write"
                                    : ev.name == "SYS_read"  ? "read"
                                                              : "stat");
    EXPECT_EQ(set_filter(ev), or_filter(ev));
    EXPECT_EQ(all(ev), not_none(ev));
    EXPECT_EQ(de_morgan_a(ev), de_morgan_b(ev));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamSeeds,
                         ::testing::Values(1, 2, 17, 99, 4242, 0xBEEF,
                                           987654321));

class DeterminismSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismSeeds, RuntimeElapsedInvariantToObserverOrder) {
  sim::ClusterParams cparams;
  cparams.node_count = 4;
  cparams.seed = GetParam();
  const sim::Cluster cluster(cparams);

  std::vector<mpi::Program> job;
  for (int r = 0; r < 4; ++r) {
    mpi::ScriptBuilder b;
    b.open(0, strprintf("/pfs/f%d", r), fs::OpenMode::write_create());
    b.write_blocks(0, 128 * kKiB, 16);
    b.barrier("m");
    b.close(0);
    job.push_back(std::move(b).build());
  }

  class FixedCost : public mpi::IoObserver {
   public:
    explicit FixedCost(SimTime cost) : cost_(cost) {}
    SimTime on_event(const TraceEvent& ev) override {
      return ev.cls == EventClass::kSyscall ? cost_ : 0;
    }

   private:
    SimTime cost_;
  };

  auto run_with = [&](bool swap) {
    auto a = std::make_shared<FixedCost>(from_micros(100.0));
    auto b = std::make_shared<FixedCost>(from_micros(50.0));
    mpi::RunOptions options;
    options.vfs = std::make_shared<pfs::Pfs>();
    options.observers = swap ? std::vector<std::shared_ptr<mpi::IoObserver>>{b, a}
                             : std::vector<std::shared_ptr<mpi::IoObserver>>{a, b};
    mpi::Runtime runtime(cluster, options);
    return runtime.run(job).elapsed;
  };
  EXPECT_EQ(run_with(false), run_with(true));
}

TEST_P(DeterminismSeeds, RepeatRunsAreBitIdentical) {
  sim::ClusterParams cparams;
  cparams.node_count = 8;
  cparams.seed = GetParam();
  const sim::Cluster cluster(cparams);

  workload::MpiIoTestParams params;
  params.nranks = 8;
  params.block = 128 * kKiB;
  params.total_bytes = 32 * kMiB;
  const mpi::Job job = workload::make_mpi_io_test(params);

  auto once = [&] {
    mpi::RunOptions options;
    options.vfs = std::make_shared<pfs::Pfs>();
    mpi::Runtime runtime(cluster, options);
    return runtime.run(job.programs);
  };
  const mpi::RunResult a = once();
  const mpi::RunResult b = once();
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.rank_end, b.rank_end);
  EXPECT_EQ(a.barrier_release, b.barrier_release);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismSeeds,
                         ::testing::Values(3, 1337, 0xABCDEF));

}  // namespace
}  // namespace iotaxo
