// Tests for the unified trace store (the paper's §6 "single trace-data API"
// future work) and the replay coalescing post-pass.
#include <gtest/gtest.h>

#include "analysis/report.h"
#include "analysis/unified_store.h"
#include "frameworks/lanl_trace.h"
#include "frameworks/partrace.h"
#include "frameworks/tracefs.h"
#include "fs/memfs.h"
#include "pfs/pfs.h"
#include "replay/pseudo_app.h"
#include "sim/cluster.h"
#include "workload/io_intensive.h"
#include "workload/mpi_io_test.h"

namespace iotaxo {
namespace {

class AggregateFixture : public ::testing::Test {
 protected:
  AggregateFixture() : cluster_(make_params()) {}

  static sim::ClusterParams make_params() {
    sim::ClusterParams p;
    p.node_count = 8;
    return p;
  }

  [[nodiscard]] frameworks::TraceRunResult lanl_capture() {
    frameworks::LanlTrace lanl;
    workload::MpiIoTestParams params;
    params.nranks = 8;
    params.block = 256 * kKiB;
    params.total_bytes = 64 * kMiB;
    frameworks::TraceJobOptions options;
    options.store_raw_streams = true;
    return lanl.trace(cluster_, workload::make_mpi_io_test(params),
                      std::make_shared<pfs::Pfs>(), options);
  }

  sim::Cluster cluster_;
};

TEST_F(AggregateFixture, IngestsBundlesFromEveryFramework) {
  analysis::UnifiedTraceStore store;

  const auto lanl = lanl_capture();
  store.ingest(lanl.bundle);

  frameworks::Tracefs tracefs;
  workload::IoIntensiveParams local;
  local.nranks = 1;
  local.files_per_rank = 10;
  frameworks::TraceJobOptions options;
  options.store_raw_streams = true;
  const auto tfs = tracefs.trace(cluster_, workload::make_io_intensive(local),
                                 std::make_shared<fs::MemFs>(), options);
  store.ingest(tfs.bundle);

  frameworks::Partrace partrace;
  workload::MpiIoTestParams mparams;
  mparams.nranks = 4;
  mparams.total_bytes = 16 * kMiB;
  const auto ptr =
      partrace.trace(cluster_, workload::make_mpi_io_test(mparams),
                     std::make_shared<pfs::Pfs>(), options);
  store.ingest(ptr.bundle);

  ASSERT_EQ(store.sources().size(), 3u);
  EXPECT_EQ(store.sources()[0].framework, "LANL-Trace");
  EXPECT_EQ(store.sources()[1].framework, "Tracefs");
  EXPECT_EQ(store.sources()[2].framework, "//TRACE");
  // Only LANL-Trace carries clock probes.
  EXPECT_TRUE(store.sources()[0].time_corrected);
  EXPECT_FALSE(store.sources()[1].time_corrected);
  EXPECT_FALSE(store.sources()[2].time_corrected);
  EXPECT_GT(store.total_events(), 0);

  // Dependencies flow through from the //TRACE source.
  EXPECT_EQ(store.dependencies().size(), ptr.bundle.dependencies.size());

  // Call stats span vocabularies from all three capture layers.
  const auto stats = store.call_stats();
  EXPECT_TRUE(stats.contains("SYS_write"));    // ptrace view
  EXPECT_TRUE(stats.contains("vfs_write"));    // VFS view
  EXPECT_TRUE(stats.contains("MPI_Barrier"));  // library view
}

TEST_F(AggregateFixture, RankTimelineIsSorted) {
  analysis::UnifiedTraceStore store;
  store.ingest(lanl_capture().bundle);
  const auto timeline = store.rank_timeline(3);
  ASSERT_GT(timeline.size(), 10u);
  for (std::size_t i = 1; i < timeline.size(); ++i) {
    EXPECT_LE(timeline[i - 1].local_start, timeline[i].local_start);
  }
}

TEST_F(AggregateFixture, TimeCorrectionAlignsRanks) {
  analysis::UnifiedTraceStore store;
  const auto capture = lanl_capture();
  store.ingest(capture.bundle);

  // After correction, every rank's first write lands within a tight window
  // of every other's (they all start right after the same barrier), even
  // though raw node clocks disagree by hundreds of milliseconds.
  std::vector<SimTime> first_write(8, -1);
  for (int r = 0; r < 8; ++r) {
    for (const trace::TraceEvent& ev : store.rank_timeline(r)) {
      if (ev.name == "SYS_write") {
        first_write[static_cast<std::size_t>(r)] = ev.local_start;
        break;
      }
    }
  }
  SimTime lo = first_write[0];
  SimTime hi = first_write[0];
  for (const SimTime t : first_write) {
    ASSERT_GE(t, 0);
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  EXPECT_LT(hi - lo, from_millis(30.0));
}

TEST_F(AggregateFixture, IoRateSeriesSumsToTotalBytes) {
  analysis::UnifiedTraceStore store;
  const auto capture = lanl_capture();
  store.ingest(capture.bundle);
  const auto series = store.io_rate_series(from_seconds(1.0));
  ASSERT_FALSE(series.empty());
  Bytes sum = 0;
  for (const auto& [start, bytes] : series) {
    sum += bytes;
  }
  EXPECT_EQ(sum, capture.run.bytes_written + capture.run.bytes_read);
  // Window query over the full span agrees.
  const SimTime begin = series.front().first;
  const SimTime end = series.back().first + from_seconds(1.0);
  EXPECT_EQ(store.bytes_in_window(begin, end), sum);
}

TEST_F(AggregateFixture, HottestFilesFindTheSharedFile) {
  analysis::UnifiedTraceStore store;
  store.ingest(lanl_capture().bundle);
  const auto hot = store.hottest_files(3);
  ASSERT_FALSE(hot.empty());
  EXPECT_EQ(hot[0].path, "/pfs/mpi_io_test.out");
  EXPECT_EQ(hot[0].bytes, 64 * kMiB);
}

TEST_F(AggregateFixture, ReportContainsAllSections) {
  analysis::UnifiedTraceStore store;
  const auto capture = lanl_capture();
  store.ingest(capture.bundle);
  const std::string report = analysis::render_report(store);
  EXPECT_NE(report.find("Sources"), std::string::npos);
  EXPECT_NE(report.find("LANL-Trace"), std::string::npos);
  EXPECT_NE(report.find("Call statistics"), std::string::npos);
  EXPECT_NE(report.find("SYS_write"), std::string::npos);
  EXPECT_NE(report.find("Hottest files"), std::string::npos);
  EXPECT_NE(report.find("/pfs/mpi_io_test.out"), std::string::npos);
  EXPECT_NE(report.find("I/O rate over the capture"), std::string::npos);
  EXPECT_NE(report.find("[time-corrected]"), std::string::npos);
}

TEST(Report, EmptyStoreStillRenders) {
  analysis::UnifiedTraceStore store;
  const std::string report = analysis::render_report(store);
  EXPECT_NE(report.find("total: 0 events"), std::string::npos);
}

TEST(Coalesce, MergesContiguousRuns) {
  mpi::Program prog;
  for (int i = 0; i < 10; ++i) {
    mpi::Op op;
    op.type = mpi::OpType::kWriteBlocks;
    op.slot = 0;
    op.block = 64 * kKiB;
    op.count = 1;
    op.start_offset = static_cast<Bytes>(i) * 64 * kKiB;
    prog.push_back(op);
  }
  const mpi::Program merged = replay::coalesce_program(prog);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].count, 10);
  EXPECT_EQ(merged[0].stride, 0);  // contiguous
}

TEST(Coalesce, MergesStridedRuns) {
  mpi::Program prog;
  const Bytes stride = 8 * 64 * kKiB;
  for (int i = 0; i < 6; ++i) {
    mpi::Op op;
    op.type = mpi::OpType::kWriteBlocks;
    op.slot = 0;
    op.block = 64 * kKiB;
    op.count = 1;
    op.start_offset = 3 * 64 * kKiB + static_cast<Bytes>(i) * stride;
    op.hint = fs::AccessHint::kStrided;
    prog.push_back(op);
  }
  const mpi::Program merged = replay::coalesce_program(prog);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].count, 6);
  EXPECT_EQ(merged[0].stride, stride);
}

TEST(Coalesce, StopsAtBoundaries) {
  mpi::Program prog;
  auto write_at = [](Bytes offset, Bytes block = 64 * kKiB) {
    mpi::Op op;
    op.type = mpi::OpType::kWriteBlocks;
    op.slot = 0;
    op.block = block;
    op.count = 1;
    op.start_offset = offset;
    return op;
  };
  prog.push_back(write_at(0));
  prog.push_back(write_at(64 * kKiB));
  mpi::Op barrier;
  barrier.type = mpi::OpType::kBarrier;
  prog.push_back(barrier);
  prog.push_back(write_at(128 * kKiB));
  prog.push_back(write_at(999 * kKiB));      // irregular offset
  prog.push_back(write_at(0, 32 * kKiB));    // different block size

  const mpi::Program merged = replay::coalesce_program(prog);
  // [0,64K) merged; barrier; 128K alone (999K breaks the run); 999K; 32K op.
  ASSERT_EQ(merged.size(), 5u);
  EXPECT_EQ(merged[0].count, 2);
  EXPECT_EQ(merged[1].type, mpi::OpType::kBarrier);
}

TEST(Coalesce, PreservesTotalBytes) {
  mpi::Program prog;
  Bytes expected = 0;
  for (int i = 0; i < 20; ++i) {
    mpi::Op op;
    op.type = mpi::OpType::kWriteBlocks;
    op.slot = 0;
    op.block = (i % 3 == 0) ? 32 * kKiB : 64 * kKiB;
    op.count = 1;
    op.start_offset = static_cast<Bytes>(i) * kMiB;
    expected += op.block;
    prog.push_back(op);
  }
  const mpi::Program merged = replay::coalesce_program(prog);
  Bytes total = 0;
  for (const mpi::Op& op : merged) {
    total += op.block * op.count;
  }
  EXPECT_EQ(total, expected);
}

TEST_F(AggregateFixture, CoalescedReplayMatchesUncoalesced) {
  frameworks::Partrace partrace;
  workload::MpiIoTestParams params;
  params.nranks = 4;
  params.block = 128 * kKiB;
  params.total_bytes = 32 * kMiB;
  frameworks::TraceJobOptions options;
  options.store_raw_streams = true;
  const auto traced =
      partrace.trace(cluster_, workload::make_mpi_io_test(params),
                     std::make_shared<pfs::Pfs>(), options);

  replay::PseudoAppOptions with;
  with.coalesce = true;
  replay::PseudoAppOptions without;
  without.coalesce = false;
  const auto a = replay::generate_pseudo_app(traced.bundle, with);
  const auto b = replay::generate_pseudo_app(traced.bundle, without);

  // Coalescing shrinks the program substantially...
  std::size_t ops_a = 0;
  std::size_t ops_b = 0;
  Bytes bytes_a = 0;
  Bytes bytes_b = 0;
  for (std::size_t r = 0; r < a.size(); ++r) {
    ops_a += a[r].size();
    ops_b += b[r].size();
    for (const mpi::Op& op : a[r]) {
      if (op.type == mpi::OpType::kWriteBlocks) {
        bytes_a += op.block * op.count;
      }
    }
    for (const mpi::Op& op : b[r]) {
      if (op.type == mpi::OpType::kWriteBlocks) {
        bytes_b += op.block * op.count;
      }
    }
  }
  EXPECT_LT(ops_a * 2, ops_b);
  // ...while preserving the I/O signature byte-for-byte.
  EXPECT_EQ(bytes_a, bytes_b);
}

}  // namespace
}  // namespace iotaxo
