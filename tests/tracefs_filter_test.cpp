// Tests for Tracefs's declarative granularity filter language.
#include <gtest/gtest.h>

#include "frameworks/tracefs_filter.h"
#include "util/error.h"

namespace iotaxo::frameworks {
namespace {

using trace::EventClass;
using trace::TraceEvent;

[[nodiscard]] TraceEvent vfs_event(const char* op, const char* path = "/f",
                                   Bytes bytes = 0, std::uint32_t uid = 4001,
                                   int rank = 0) {
  TraceEvent ev;
  ev.cls = EventClass::kFsOperation;
  ev.name = std::string("vfs_") + op;
  ev.path = path;
  ev.bytes = bytes;
  ev.uid = uid;
  ev.gid = 400;
  ev.rank = rank;
  return ev;
}

TEST(FilterLang, EmptyMeansTraceAll) {
  const auto f = compile_tracefs_filter("");
  EXPECT_TRUE(f(vfs_event("write")));
  EXPECT_TRUE(f(vfs_event("stat")));
}

TEST(FilterLang, AllAndNone) {
  EXPECT_TRUE(compile_tracefs_filter("all")(vfs_event("open")));
  EXPECT_FALSE(compile_tracefs_filter("none")(vfs_event("open")));
}

TEST(FilterLang, OpEquality) {
  const auto f = compile_tracefs_filter("op == write");
  EXPECT_TRUE(f(vfs_event("write")));
  EXPECT_FALSE(f(vfs_event("read")));
}

TEST(FilterLang, OpInSet) {
  const auto f = compile_tracefs_filter("op in {open, unlink, mkdir}");
  EXPECT_TRUE(f(vfs_event("open")));
  EXPECT_TRUE(f(vfs_event("unlink")));
  EXPECT_FALSE(f(vfs_event("write")));
}

TEST(FilterLang, MetadataAndDataClasses) {
  const auto meta = compile_tracefs_filter("metadata");
  EXPECT_TRUE(meta(vfs_event("stat")));
  EXPECT_TRUE(meta(vfs_event("open")));
  EXPECT_FALSE(meta(vfs_event("write")));
  const auto data = compile_tracefs_filter("data");
  EXPECT_TRUE(data(vfs_event("write")));
  EXPECT_TRUE(data(vfs_event("mmap_write")));
  EXPECT_FALSE(data(vfs_event("close")));
}

TEST(FilterLang, PathGlob) {
  const auto f = compile_tracefs_filter("path glob \"/data/*\"");
  EXPECT_TRUE(f(vfs_event("write", "/data/x.out")));
  EXPECT_FALSE(f(vfs_event("write", "/scratch/x.out")));
}

TEST(FilterLang, UidGidRankComparisons) {
  EXPECT_TRUE(compile_tracefs_filter("uid == 4001")(vfs_event("write")));
  EXPECT_FALSE(compile_tracefs_filter("uid != 4001")(vfs_event("write")));
  EXPECT_TRUE(compile_tracefs_filter("uid != 0")(vfs_event("write")));
  EXPECT_TRUE(compile_tracefs_filter("rank == 3")(
      vfs_event("write", "/f", 0, 4001, 3)));
  EXPECT_TRUE(compile_tracefs_filter("gid == 400")(vfs_event("write")));
}

TEST(FilterLang, BytesComparisons) {
  const auto big = compile_tracefs_filter("bytes >= 65536");
  EXPECT_TRUE(big(vfs_event("write", "/f", 65536)));
  EXPECT_FALSE(big(vfs_event("write", "/f", 4096)));
  EXPECT_TRUE(compile_tracefs_filter("bytes < 100")(vfs_event("write", "/f", 99)));
  EXPECT_TRUE(compile_tracefs_filter("bytes == 64")(vfs_event("write", "/f", 64)));
}

TEST(FilterLang, BooleanCombinators) {
  const auto f = compile_tracefs_filter(
      "op in {write, mmap_write} and path glob \"/data/*\" and uid != 0");
  EXPECT_TRUE(f(vfs_event("write", "/data/a", 1, 4001)));
  EXPECT_FALSE(f(vfs_event("write", "/other/a", 1, 4001)));
  EXPECT_FALSE(f(vfs_event("stat", "/data/a", 1, 4001)));
  EXPECT_FALSE(f(vfs_event("write", "/data/a", 1, 0)));

  const auto g = compile_tracefs_filter("metadata or bytes > 1048576");
  EXPECT_TRUE(g(vfs_event("stat")));
  EXPECT_TRUE(g(vfs_event("write", "/f", 2 * kMiB)));
  EXPECT_FALSE(g(vfs_event("write", "/f", 4096)));

  const auto h = compile_tracefs_filter("not (op == read or op == write)");
  EXPECT_TRUE(h(vfs_event("open")));
  EXPECT_FALSE(h(vfs_event("read")));
}

TEST(FilterLang, PrecedenceAndOverOr) {
  // a or b and c  ==  a or (b and c)
  const auto f = compile_tracefs_filter(
      "op == stat or op == write and bytes > 100");
  EXPECT_TRUE(f(vfs_event("stat", "/f", 0)));
  EXPECT_TRUE(f(vfs_event("write", "/f", 200)));
  EXPECT_FALSE(f(vfs_event("write", "/f", 50)));
}

TEST(FilterLang, Parentheses) {
  const auto f = compile_tracefs_filter(
      "(op == stat or op == write) and bytes == 0");
  EXPECT_TRUE(f(vfs_event("stat", "/f", 0)));
  EXPECT_FALSE(f(vfs_event("write", "/f", 10)));
}

TEST(FilterLang, CaseInsensitiveKeywords) {
  const auto f = compile_tracefs_filter("OP == WRITE AND uid != 0");
  EXPECT_TRUE(f(vfs_event("write")));
}

struct BadSource {
  const char* source;
};

class FilterLangErrors : public ::testing::TestWithParam<BadSource> {};

TEST_P(FilterLangErrors, Rejected) {
  EXPECT_THROW((void)compile_tracefs_filter(GetParam().source), FormatError);
}

INSTANTIATE_TEST_SUITE_P(
    Sources, FilterLangErrors,
    ::testing::Values(BadSource{"op =="}, BadSource{"op in {}"},
                      BadSource{"path glob"}, BadSource{"path glob \"x"},
                      BadSource{"uid > 5"}, BadSource{"bogus == 1"},
                      BadSource{"(op == read"}, BadSource{"op == read extra"},
                      BadSource{"and"}, BadSource{"uid == abc"}));

}  // namespace
}  // namespace iotaxo::frameworks
