// Tests for the interposition mechanisms: ptrace tracers (strace/ltrace
// modes), dynamic library interposition, probe collection, and the
// stackable VFS shim with filters and aggregation counters.
#include <gtest/gtest.h>

#include <memory>

#include "fs/memfs.h"
#include "interpose/mechanism.h"
#include "interpose/tracers.h"
#include "interpose/vfs_shim.h"
#include "trace/sink.h"
#include "util/error.h"

namespace iotaxo::interpose {
namespace {

using trace::EventClass;
using trace::TraceEvent;

[[nodiscard]] TraceEvent event_of(EventClass cls, const char* name) {
  TraceEvent ev;
  ev.cls = cls;
  ev.name = name;
  return ev;
}

TEST(PtraceTracer, StraceSeesOnlySyscalls) {
  auto sink = std::make_shared<trace::VectorSink>();
  PtraceTracer tracer(PtraceTracer::Mode::kStrace, sink);
  EXPECT_GT(tracer.on_event(event_of(EventClass::kSyscall, "SYS_write")), 0);
  EXPECT_EQ(tracer.on_event(event_of(EventClass::kLibraryCall, "MPI_Barrier")),
            0);
  EXPECT_EQ(tracer.on_event(event_of(EventClass::kFsOperation, "vfs_write")),
            0);
  ASSERT_EQ(sink->events().size(), 1u);
  EXPECT_EQ(sink->events()[0].name, "SYS_write");
  EXPECT_EQ(tracer.events_captured(), 1);
}

TEST(PtraceTracer, LtraceSeesSyscallsAndLibraryCalls) {
  auto sink = std::make_shared<trace::VectorSink>();
  PtraceTracer tracer(PtraceTracer::Mode::kLtrace, sink);
  EXPECT_GT(tracer.on_event(event_of(EventClass::kSyscall, "SYS_write")), 0);
  EXPECT_GT(tracer.on_event(event_of(EventClass::kLibraryCall, "MPI_Barrier")),
            0);
  EXPECT_EQ(tracer.on_event(event_of(EventClass::kClockProbe, "clock_probe")),
            0);
  EXPECT_EQ(sink->events().size(), 2u);
}

TEST(PtraceTracer, CostsComeFromTheCostModel) {
  InterposeCosts costs;
  costs.ptrace_syscall_event = from_micros(111.0);
  costs.ptrace_library_event = from_micros(222.0);
  auto sink = std::make_shared<trace::VectorSink>();
  PtraceTracer strace(PtraceTracer::Mode::kStrace, sink, costs);
  PtraceTracer ltrace(PtraceTracer::Mode::kLtrace, sink, costs);
  EXPECT_EQ(strace.on_event(event_of(EventClass::kSyscall, "SYS_read")),
            from_micros(111.0));
  EXPECT_EQ(ltrace.on_event(event_of(EventClass::kLibraryCall, "write")),
            from_micros(222.0));
}

TEST(PtraceTracer, RequiresSink) {
  EXPECT_THROW(PtraceTracer(PtraceTracer::Mode::kStrace, nullptr),
               ConfigError);
}

TEST(DynLib, InterposesOnlyWrappedLibraryCalls) {
  auto sink = std::make_shared<trace::VectorSink>();
  DynLibInterposer dyn(sink);
  EXPECT_GT(dyn.on_event(event_of(EventClass::kLibraryCall, "write")), 0);
  EXPECT_GT(
      dyn.on_event(event_of(EventClass::kLibraryCall, "MPI_File_write_at")),
      0);
  // Syscalls happen below the library boundary.
  EXPECT_EQ(dyn.on_event(event_of(EventClass::kSyscall, "SYS_write")), 0);
  // Unwrapped library calls pass through.
  EXPECT_EQ(dyn.on_event(event_of(EventClass::kLibraryCall, "gettimeofday")),
            0);
  EXPECT_EQ(sink->events().size(), 2u);
}

TEST(DynLib, CheaperThanPtrace) {
  const InterposeCosts costs;
  EXPECT_LT(costs.dynlib_event, costs.ptrace_syscall_event / 5);
}

TEST(ProbeCollector, SortsEventKinds) {
  ProbeCollector collector;
  TraceEvent probe = event_of(EventClass::kClockProbe, "clock_probe");
  TraceEvent note = event_of(EventClass::kAnnotation, "Barrier before /app");
  TraceEvent barrier = event_of(EventClass::kLibraryCall, "MPI_Barrier");
  TraceEvent io = event_of(EventClass::kSyscall, "SYS_write");
  EXPECT_EQ(collector.on_event(probe), 0);
  EXPECT_EQ(collector.on_event(note), 0);
  EXPECT_EQ(collector.on_event(barrier), 0);
  EXPECT_EQ(collector.on_event(io), 0);
  EXPECT_EQ(collector.probes().size(), 1u);
  EXPECT_EQ(collector.annotations().size(), 1u);
  EXPECT_EQ(collector.barriers().size(), 1u);
}

class VfsShimFixture : public ::testing::Test {
 protected:
  [[nodiscard]] std::shared_ptr<VfsShim> make_shim(
      VfsShimOptions options = {}, VfsEventFilter filter = nullptr) {
    inner_ = std::make_shared<fs::MemFs>();
    sink_ = std::make_shared<trace::VectorSink>();
    return std::make_shared<VfsShim>(inner_, sink_, options, nullptr,
                                     std::move(filter));
  }

  std::shared_ptr<fs::MemFs> inner_;
  std::shared_ptr<trace::VectorSink> sink_;
  fs::OpCtx ctx_;
};

TEST_F(VfsShimFixture, CapturesEveryOpClass) {
  auto shim = make_shim();
  const int fd = static_cast<int>(
      shim->open("/d.dat", fs::OpenMode::write_create(), ctx_).value);
  (void)shim->write(fd, 0, 4096, ctx_, nullptr);
  (void)shim->read(fd, 0, 4096, ctx_, nullptr);
  (void)shim->stat("/d.dat", ctx_);
  (void)shim->mmap(fd, ctx_);
  (void)shim->mmap_write(fd, 0, 512, ctx_);
  (void)shim->close(fd, ctx_);

  std::vector<std::string> names;
  for (const TraceEvent& ev : sink_->events()) {
    EXPECT_EQ(ev.cls, EventClass::kFsOperation);
    names.push_back(ev.name);
  }
  const std::vector<std::string> expected = {
      "vfs_open", "vfs_write", "vfs_read", "vfs_stat",
      "vfs_mmap", "vfs_mmap_write", "vfs_close"};
  EXPECT_EQ(names, expected);
  EXPECT_EQ(shim->events_captured(), 7);
}

TEST_F(VfsShimFixture, SeesMmapWritesUnlikeSyscallTracers) {
  auto shim = make_shim();
  const int fd = static_cast<int>(
      shim->open("/m", fs::OpenMode::read_write(), ctx_).value);
  (void)shim->mmap(fd, ctx_);
  (void)shim->mmap_write(fd, 0, 4096, ctx_);
  bool saw_mmap_write = false;
  for (const TraceEvent& ev : sink_->events()) {
    saw_mmap_write = saw_mmap_write || ev.name == "vfs_mmap_write";
  }
  EXPECT_TRUE(saw_mmap_write);
}

TEST_F(VfsShimFixture, ChargesCaptureCostInline) {
  VfsShimOptions options;
  options.record_cost = from_micros(100.0);
  auto shim = make_shim(options);
  fs::MemFs plain;
  const int sfd = static_cast<int>(
      shim->open("/x", fs::OpenMode::write_create(), ctx_).value);
  const int pfd = static_cast<int>(
      plain.open("/x", fs::OpenMode::write_create(), ctx_).value);
  const SimTime with = shim->write(sfd, 0, 4096, ctx_, nullptr).cost;
  const SimTime without = plain.write(pfd, 0, 4096, ctx_, nullptr).cost;
  EXPECT_GE(with - without, from_micros(100.0));
}

TEST_F(VfsShimFixture, FilterLimitsCapture) {
  auto only_writes = [](const TraceEvent& ev) { return ev.name == "vfs_write"; };
  auto shim = make_shim({}, only_writes);
  const int fd = static_cast<int>(
      shim->open("/f", fs::OpenMode::write_create(), ctx_).value);
  (void)shim->write(fd, 0, 128, ctx_, nullptr);
  (void)shim->read(fd, 0, 128, ctx_, nullptr);
  (void)shim->close(fd, ctx_);
  ASSERT_EQ(sink_->events().size(), 1u);
  EXPECT_EQ(sink_->events()[0].name, "vfs_write");
}

TEST_F(VfsShimFixture, FilteredOpsCostNothingExtra) {
  VfsShimOptions options;
  options.record_cost = from_millis(5.0);
  auto none = [](const TraceEvent&) { return false; };
  auto shim = make_shim(options, none);
  fs::MemFs plain;
  const int sfd = static_cast<int>(
      shim->open("/f", fs::OpenMode::write_create(), ctx_).value);
  const int pfd = static_cast<int>(
      plain.open("/f", fs::OpenMode::write_create(), ctx_).value);
  EXPECT_EQ(shim->write(sfd, 0, 64, ctx_, nullptr).cost,
            plain.write(pfd, 0, 64, ctx_, nullptr).cost);
}

TEST_F(VfsShimFixture, AggregationModeCountsWithoutRecording) {
  VfsShimOptions options;
  options.aggregate_only = true;
  auto shim = make_shim(options);
  const int fd = static_cast<int>(
      shim->open("/f", fs::OpenMode::write_create(), ctx_).value);
  for (int i = 0; i < 10; ++i) {
    (void)shim->write(fd, i * 64, 64, ctx_, nullptr);
  }
  EXPECT_TRUE(sink_->events().empty());  // nothing recorded...
  EXPECT_EQ(shim->counters().at("vfs_write"), 10);  // ...but counted
}

TEST_F(VfsShimFixture, AdvancedFeaturesCostMore) {
  VfsShimOptions base;
  VfsShimOptions fancy;
  fancy.checksum = true;
  fancy.compress = true;
  fancy.encrypt = true;
  auto cost_of = [this](VfsShimOptions o) {
    auto shim = make_shim(o);
    const int fd = static_cast<int>(
        shim->open("/f", fs::OpenMode::write_create(), ctx_).value);
    return shim->write(fd, 0, 4096, ctx_, nullptr).cost;
  };
  EXPECT_GT(cost_of(fancy), cost_of(base));
}

TEST_F(VfsShimFixture, BufferingAmortizesFlushes) {
  VfsShimOptions small_buffer;
  small_buffer.buffer_bytes = 128;  // flushes every other record
  VfsShimOptions big_buffer;
  big_buffer.buffer_bytes = 4 * kMiB;
  auto cost_of = [this](VfsShimOptions o) {
    auto shim = make_shim(o);
    const int fd = static_cast<int>(
        shim->open("/f", fs::OpenMode::write_create(), ctx_).value);
    return shim->write(fd, 0, 4096, ctx_, nullptr).cost;
  };
  EXPECT_GT(cost_of(small_buffer), cost_of(big_buffer));
}

TEST_F(VfsShimFixture, ForwardsInnerState) {
  auto shim = make_shim();
  const int fd = static_cast<int>(
      shim->open("/f", fs::OpenMode::write_create(), ctx_).value);
  (void)shim->write(fd, 0, 999, ctx_, nullptr);
  EXPECT_TRUE(inner_->exists("/f"));
  EXPECT_EQ(shim->stat_info("/f").size, 999);
  EXPECT_EQ(shim->kind(), fs::FsKind::kLocal);
  EXPECT_EQ(shim->fstype(), "tracefs");
}

TEST(VfsShim, RequiresInner) {
  EXPECT_THROW(
      VfsShim(nullptr, std::make_shared<trace::VectorSink>(), {}, nullptr),
      ConfigError);
}

TEST(Mechanism, Names) {
  EXPECT_STREQ(to_string(Mechanism::kPtraceSyscall), "ptrace-syscall");
  EXPECT_STREQ(to_string(Mechanism::kVfsStack), "vfs-stack");
}

}  // namespace
}  // namespace iotaxo::interpose
