// Tests for the DFG mining subsystem (PR 4): builder determinism (serial
// == parallel, owned == view-backed, pre- == post-compaction, invariance
// to source splits), edge/gap/byte statistics, rank filtering and edge
// cases, phase segmentation (gap cuts, loop detection, labels), graph
// comparison and outlier flagging, DOT/JSON export, and the store's
// pool_infos() introspection accessor.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/dfg/dfg.h"
#include "analysis/dfg/dfg_compare.h"
#include "analysis/dfg/dfg_export.h"
#include "analysis/dfg/phase_segmenter.h"
#include "analysis/unified_store.h"
#include "trace/binary_format.h"
#include "trace/event_batch.h"
#include "util/error.h"
#include "util/strings.h"

namespace iotaxo::analysis::dfg {
namespace {

using trace::EventBatch;
using trace::TraceEvent;

[[nodiscard]] TraceEvent io_event(const char* name, int rank, SimTime start,
                                  SimTime duration, Bytes bytes = 0) {
  TraceEvent ev = trace::make_syscall(name, {}, bytes);
  ev.rank = rank;
  ev.local_start = start;
  ev.duration = duration;
  ev.bytes = bytes;
  return ev;
}

/// A two-rank stream with known transitions: rank 0 runs open, 3x write,
/// close; rank 1 runs open, 2x read, close. Events are 100us apart with
/// 10us durations, so every gap is 90us.
[[nodiscard]] std::vector<TraceEvent> small_stream() {
  std::vector<TraceEvent> events;
  SimTime t0 = 0;
  events.push_back(io_event("SYS_open", 0, t0, 10 * kMicrosecond));
  for (int i = 0; i < 3; ++i) {
    events.push_back(io_event("SYS_write", 0,
                              t0 + (i + 1) * 100 * kMicrosecond,
                              10 * kMicrosecond, 4096));
  }
  events.push_back(
      io_event("SYS_close", 0, t0 + 400 * kMicrosecond, 10 * kMicrosecond));
  SimTime t1 = 50 * kMicrosecond;
  events.push_back(io_event("SYS_open", 1, t1, 10 * kMicrosecond));
  for (int i = 0; i < 2; ++i) {
    events.push_back(io_event("SYS_read", 1,
                              t1 + (i + 1) * 100 * kMicrosecond,
                              10 * kMicrosecond, 8192));
  }
  events.push_back(
      io_event("SYS_close", 1, t1 + 300 * kMicrosecond, 10 * kMicrosecond));
  return events;
}

[[nodiscard]] UnifiedTraceStore store_of(const std::vector<TraceEvent>& events,
                                         std::size_t sources = 1) {
  UnifiedTraceStore store;
  const std::size_t chunk = (events.size() + sources - 1) / sources;
  for (std::size_t s = 0; s < sources; ++s) {
    EventBatch batch;
    const std::size_t begin = s * chunk;
    const std::size_t end = std::min(events.size(), begin + chunk);
    for (std::size_t i = begin; i < end; ++i) {
      batch.append(events[i]);
    }
    store.ingest(batch, {{"framework", "test"},
                         {"application", strprintf("part%zu", s)}});
  }
  return store;
}

[[nodiscard]] trace::StrId id_of(const Dfg& dfg, std::string_view name) {
  for (trace::StrId id = 0; id < dfg.names.size(); ++id) {
    if (dfg.names[id] == name) {
      return id;
    }
  }
  ADD_FAILURE() << "name not in table: " << name;
  return 0;
}

TEST(DfgBuilder, CountsNodesEdgesAndGaps) {
  const UnifiedTraceStore store = store_of(small_stream());
  const Dfg dfg = DfgBuilder(store).build();

  ASSERT_EQ(dfg.ranks.size(), 2u);
  const RankDfg& r0 = dfg.ranks[0];
  EXPECT_EQ(r0.rank, 0);
  EXPECT_EQ(r0.nodes.size(), 3u);  // open, write, close
  EXPECT_EQ(r0.transitions(), 4);

  const trace::StrId open_id = id_of(dfg, "SYS_open");
  const trace::StrId write_id = id_of(dfg, "SYS_write");
  const trace::StrId close_id = id_of(dfg, "SYS_close");

  const NodeStats& write_node = r0.nodes.at(write_id);
  EXPECT_EQ(write_node.count, 3);
  EXPECT_EQ(write_node.bytes, 3 * 4096);
  EXPECT_EQ(write_node.total_duration, 30 * kMicrosecond);

  // open -> write once, write -> write twice, write -> close once; every
  // gap is 90us and edges into writes carry the write's payload.
  const EdgeStats& ow = r0.edges.at({open_id, write_id});
  EXPECT_EQ(ow.count, 1);
  EXPECT_EQ(ow.bytes, 4096);
  EXPECT_EQ(ow.gap_min, 90 * kMicrosecond);
  EXPECT_EQ(ow.gap_max, 90 * kMicrosecond);
  const EdgeStats& ww = r0.edges.at({write_id, write_id});
  EXPECT_EQ(ww.count, 2);
  EXPECT_EQ(ww.bytes, 2 * 4096);
  EXPECT_EQ(ww.gap_mean(), 90 * kMicrosecond);
  const EdgeStats& wc = r0.edges.at({write_id, close_id});
  EXPECT_EQ(wc.count, 1);
  EXPECT_EQ(wc.bytes, 0);  // close moves nothing

  const RankDfg& r1 = dfg.ranks[1];
  EXPECT_EQ(r1.rank, 1);
  EXPECT_EQ(r1.nodes.at(id_of(dfg, "SYS_read")).bytes, 2 * 8192);
  EXPECT_EQ(r1.transitions(), 3);
}

TEST(DfgBuilder, SerialEqualsParallel) {
  std::vector<TraceEvent> events;
  for (int i = 0; i < 4096; ++i) {
    events.push_back(io_event(i % 3 == 0 ? "SYS_write" : "SYS_read", i % 8,
                              i * kMicrosecond, kMicrosecond, 512));
  }
  const UnifiedTraceStore store = store_of(events, 16);
  DfgOptions serial;
  serial.threads = 1;
  serial.keep_sequences = true;
  DfgOptions parallel = serial;
  parallel.threads = 4;
  const DfgBuilder builder(store);
  EXPECT_EQ(builder.build(serial), builder.build(parallel));
  parallel.threads = 3;  // uneven chunking
  EXPECT_EQ(builder.build(serial), builder.build(parallel));
}

TEST(DfgBuilder, InvariantToSourceSplits) {
  const std::vector<TraceEvent> events = small_stream();
  const Dfg one = DfgBuilder(store_of(events, 1)).build();
  const Dfg four = DfgBuilder(store_of(events, 4)).build();
  // Splitting the same record stream into pools changes nothing: the rank
  // boundary stitch reproduces the concatenated transitions and the name
  // table is canonical.
  EXPECT_EQ(one, four);
}

TEST(DfgBuilder, OwnedEqualsViewBacked) {
  const std::vector<TraceEvent> events = small_stream();
  const Dfg owned = DfgBuilder(store_of(events, 2)).build();

  const std::vector<std::uint8_t> bytes =
      trace::encode_binary_v2(EventBatch::from_events(events),
                              trace::BinaryOptions{});
  const std::string path = "dfg_test_view.iotb";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  UnifiedTraceStore view_store;
  view_store.ingest_view(path, {{"framework", "test"}});
  const Dfg viewed = DfgBuilder(view_store).build();
  std::remove(path.c_str());

  EXPECT_EQ(owned, viewed);
}

TEST(DfgBuilder, CompactionPreservesGraphs) {
  std::vector<TraceEvent> events;
  for (int i = 0; i < 512; ++i) {
    events.push_back(io_event(i % 2 == 0 ? "SYS_write" : "SYS_lseek", i % 4,
                              i * kMicrosecond, kMicrosecond, 256));
  }
  UnifiedTraceStore store = store_of(events, 8);
  const Dfg before = DfgBuilder(store).build();
  const std::size_t pools = store.compact(64 * kMiB);
  EXPECT_LT(pools, 8u);
  EXPECT_EQ(before, DfgBuilder(store).build());
}

TEST(DfgBuilder, EmptyStoreAndEmptySource) {
  const UnifiedTraceStore empty;
  EXPECT_TRUE(DfgBuilder(empty).build().ranks.empty());

  UnifiedTraceStore store;
  store.ingest(EventBatch{}, {{"framework", "test"}});
  EXPECT_TRUE(DfgBuilder(store).build().ranks.empty());
}

TEST(DfgBuilder, SingleEventRankHasNoEdges) {
  const UnifiedTraceStore store =
      store_of({io_event("SYS_open", 3, 0, kMicrosecond)});
  const Dfg dfg = DfgBuilder(store).build();
  ASSERT_EQ(dfg.ranks.size(), 1u);
  EXPECT_EQ(dfg.ranks[0].rank, 3);
  EXPECT_EQ(dfg.ranks[0].nodes.size(), 1u);
  EXPECT_TRUE(dfg.ranks[0].edges.empty());
  EXPECT_EQ(dfg.ranks[0].transitions(), 0);
}

TEST(DfgBuilder, SkipsRanklessAndNonIoRecords) {
  std::vector<TraceEvent> events = small_stream();
  TraceEvent probe;
  probe.cls = trace::EventClass::kClockProbe;
  probe.name = "clock_probe";
  probe.rank = 0;
  events.push_back(probe);
  TraceEvent note;
  note.cls = trace::EventClass::kAnnotation;
  note.name = "note";
  note.rank = 1;
  events.push_back(note);
  TraceEvent rankless = io_event("SYS_write", -1, 0, kMicrosecond, 64);
  events.push_back(rankless);

  const Dfg dfg = DfgBuilder(store_of(events)).build();
  EXPECT_EQ(dfg, DfgBuilder(store_of(small_stream())).build());
  for (trace::StrId id = 0; id < dfg.names.size(); ++id) {
    EXPECT_NE(dfg.names[id], "clock_probe");
    EXPECT_NE(dfg.names[id], "note");
  }
}

TEST(DfgBuilder, RankFilterMinesOnlyThatRank) {
  DfgOptions options;
  options.rank = 1;
  const Dfg dfg = DfgBuilder(store_of(small_stream())).build(options);
  ASSERT_EQ(dfg.ranks.size(), 1u);
  EXPECT_EQ(dfg.ranks[0].rank, 1);
  EXPECT_EQ(dfg.ranks[0].transitions(), 3);
}

TEST(DfgBuilder, SequencesOnlyWhenRequested) {
  const UnifiedTraceStore store = store_of(small_stream());
  EXPECT_TRUE(DfgBuilder(store).build().ranks[0].sequence.empty());
  DfgOptions options;
  options.keep_sequences = true;
  const Dfg dfg = DfgBuilder(store).build(options);
  EXPECT_EQ(dfg.ranks[0].sequence.size(), 5u);
  EXPECT_EQ(dfg.ranks[0].sequence[1].name, id_of(dfg, "SYS_write"));
  EXPECT_EQ(dfg.ranks[0].sequence[1].bytes, 4096);
}

// --------------------------------------------------------------- phases

/// One rank: a 3-call open/write/close loop repeated 4 times back-to-back,
/// a long idle gap, then a run of stat calls, another gap, then mixed
/// read+write transfers of equal weight.
[[nodiscard]] std::vector<TraceEvent> phased_stream() {
  std::vector<TraceEvent> events;
  SimTime t = 0;
  for (int i = 0; i < 4; ++i) {
    events.push_back(io_event("SYS_open", 0, t, kMicrosecond));
    t += 2 * kMicrosecond;
    events.push_back(io_event("SYS_write", 0, t, kMicrosecond, 65536));
    t += 2 * kMicrosecond;
    events.push_back(io_event("SYS_close", 0, t, kMicrosecond));
    t += 2 * kMicrosecond;
  }
  t += from_millis(50.0);  // phase boundary
  for (int i = 0; i < 6; ++i) {
    events.push_back(io_event("SYS_stat", 0, t, kMicrosecond));
    t += 2 * kMicrosecond;
  }
  t += from_millis(50.0);  // phase boundary
  for (int i = 0; i < 4; ++i) {
    events.push_back(io_event("SYS_read", 0, t, kMicrosecond, 4096));
    t += 2 * kMicrosecond;
    events.push_back(io_event("SYS_write", 0, t, kMicrosecond, 4096));
    t += 2 * kMicrosecond;
  }
  return events;
}

TEST(PhaseSegmenter, CutsLabelsAndDetectsLoops) {
  DfgOptions options;
  options.keep_sequences = true;
  const Dfg dfg = DfgBuilder(store_of(phased_stream())).build(options);
  const std::vector<Phase> phases = PhaseSegmenter(dfg).segment(0);

  ASSERT_EQ(phases.size(), 3u);

  EXPECT_EQ(phases[0].count, 12u);
  EXPECT_EQ(phases[0].label, PhaseLabel::kWriteDominant);
  EXPECT_EQ(phases[0].loop_period, 3u);
  EXPECT_EQ(phases[0].loop_iterations, 4);
  EXPECT_EQ(phases[0].write_bytes, 4 * 65536);
  EXPECT_EQ(phases[0].read_bytes, 0);

  EXPECT_EQ(phases[1].count, 6u);
  EXPECT_EQ(phases[1].label, PhaseLabel::kMetadataHeavy);
  EXPECT_EQ(phases[1].loop_period, 1u);  // stat repeats exactly
  EXPECT_EQ(phases[1].metadata_ops, 6);

  EXPECT_EQ(phases[2].count, 8u);
  EXPECT_EQ(phases[2].label, PhaseLabel::kMixed);
  EXPECT_EQ(phases[2].loop_period, 2u);  // read/write alternation
  EXPECT_EQ(phases[2].read_bytes, phases[2].write_bytes);

  // Phases tile the sequence in order.
  EXPECT_EQ(phases[0].begin, 0u);
  EXPECT_EQ(phases[1].begin, 12u);
  EXPECT_EQ(phases[2].begin, 18u);
}

TEST(PhaseSegmenter, ReadDominantLabel) {
  std::vector<TraceEvent> events;
  SimTime t = 0;
  for (int i = 0; i < 8; ++i) {
    events.push_back(io_event("SYS_read", 0, t, kMicrosecond, 65536));
    t += 2 * kMicrosecond;
  }
  events.push_back(io_event("SYS_write", 0, t, kMicrosecond, 4096));
  DfgOptions options;
  options.keep_sequences = true;
  const Dfg dfg = DfgBuilder(store_of(events)).build(options);
  const std::vector<Phase> phases = PhaseSegmenter(dfg).segment(0);
  // The read loop is its own phase; the trailing lone write becomes a
  // (write-dominant) phase of its own.
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].label, PhaseLabel::kReadDominant);
  EXPECT_EQ(phases[0].count, 8u);
  EXPECT_EQ(phases[0].read_bytes, 8 * 65536);
  EXPECT_EQ(phases[1].label, PhaseLabel::kWriteDominant);
  EXPECT_EQ(phases[1].write_bytes, 4096);
}

TEST(PhaseSegmenter, RequiresSequences) {
  const Dfg dfg = DfgBuilder(store_of(small_stream())).build();
  const PhaseSegmenter segmenter(dfg);
  EXPECT_THROW((void)segmenter.segment(0), ConfigError);
  EXPECT_THROW((void)segmenter.segment(99), ConfigError);  // no such rank
}

// --------------------------------------------------------------- compare

TEST(DfgCompare, IdenticalRanksDivergeZero) {
  const Dfg dfg = DfgBuilder(store_of(small_stream())).build();
  const RankDelta self = compare_ranks(dfg, 0, dfg, 0);
  EXPECT_DOUBLE_EQ(self.divergence, 0.0);
}

TEST(DfgCompare, DisjointRanksDivergeFully) {
  const Dfg dfg = DfgBuilder(store_of(small_stream())).build();
  // Rank 0 writes, rank 1 reads: transition sets share open->x / x->close
  // shapes but differ on the transfer edges.
  const RankDelta delta = compare_ranks(dfg, 0, dfg, 1);
  EXPECT_GT(delta.divergence, 0.3);
  EXPECT_LE(delta.divergence, 1.0);
  ASSERT_FALSE(delta.edges.empty());
  // Deltas are sorted by contribution, descending.
  for (std::size_t i = 1; i < delta.edges.size(); ++i) {
    EXPECT_GE(delta.edges[i - 1].divergence, delta.edges[i].divergence);
  }
}

TEST(DfgCompare, MissingRankIsFullyDivergent) {
  const Dfg dfg = DfgBuilder(store_of(small_stream())).build();
  // Rank 99 was never mined: missing behavior scores 1, empty-vs-empty 0.
  EXPECT_DOUBLE_EQ(compare_ranks(dfg, 0, dfg, 99).divergence, 1.0);
  EXPECT_DOUBLE_EQ(compare_ranks(dfg, 99, dfg, 0).divergence, 1.0);
  EXPECT_DOUBLE_EQ(compare_ranks(dfg, 99, dfg, 98).divergence, 0.0);
}

TEST(DfgCompare, RunVsRunPairsRanks) {
  const Dfg a = DfgBuilder(store_of(small_stream())).build();
  DfgOptions only_rank0;
  only_rank0.rank = 0;
  const Dfg b = DfgBuilder(store_of(small_stream())).build(only_rank0);
  const DfgComparison cmp = compare_dfgs(a, b);
  EXPECT_EQ(cmp.ranks.size(), 1u);
  EXPECT_DOUBLE_EQ(cmp.divergence, 0.0);
  ASSERT_EQ(cmp.only_in_a.size(), 1u);
  EXPECT_EQ(cmp.only_in_a[0], 1);
  EXPECT_TRUE(cmp.only_in_b.empty());
}

TEST(DfgCompare, FlagsTheOddRankOut) {
  std::vector<TraceEvent> events;
  for (int rank = 0; rank < 8; ++rank) {
    SimTime t = rank * kMicrosecond;
    for (int i = 0; i < 16; ++i) {
      events.push_back(io_event("SYS_write", rank, t, kMicrosecond, 1024));
      t += 2 * kMicrosecond;
    }
  }
  // Rank 8 reads instead: a behavioral outlier.
  SimTime t = 0;
  for (int i = 0; i < 16; ++i) {
    events.push_back(io_event("SYS_read", 8, t, kMicrosecond, 1024));
    t += 2 * kMicrosecond;
  }
  const Dfg dfg = DfgBuilder(store_of(events)).build();
  const std::vector<int> outliers = outlier_ranks(dfg);
  ASSERT_EQ(outliers.size(), 1u);
  EXPECT_EQ(outliers[0], 8);
}

TEST(DfgCompare, UniformRanksHaveNoOutliers) {
  std::vector<TraceEvent> events;
  for (int rank = 0; rank < 6; ++rank) {
    SimTime t = 0;
    for (int i = 0; i < 8; ++i) {
      events.push_back(io_event("SYS_write", rank, t, kMicrosecond, 1024));
      t += 2 * kMicrosecond;
    }
  }
  const Dfg dfg = DfgBuilder(store_of(events)).build();
  EXPECT_TRUE(outlier_ranks(dfg).empty());
}

// --------------------------------------------------------------- export

TEST(DfgExport, DotNamesEveryNodeAndEdge) {
  const Dfg dfg = DfgBuilder(store_of(small_stream())).build();
  const std::string dot = to_dot(dfg);
  EXPECT_NE(dot.find("digraph dfg {"), std::string::npos);
  EXPECT_NE(dot.find("cluster_rank_0"), std::string::npos);
  EXPECT_NE(dot.find("cluster_rank_1"), std::string::npos);
  EXPECT_NE(dot.find("SYS_write"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);

  ExportOptions rank1;
  rank1.rank = 1;
  const std::string filtered = to_dot(dfg, rank1);
  EXPECT_EQ(filtered.find("cluster_rank_0"), std::string::npos);
  EXPECT_NE(filtered.find("SYS_read"), std::string::npos);
}

TEST(DfgExport, JsonCarriesStatsAndEscapes) {
  const Dfg dfg = DfgBuilder(store_of(small_stream())).build();
  const std::string json = to_json(dfg);
  EXPECT_NE(json.find("\"ranks\": ["), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"SYS_write\""), std::string::npos);
  EXPECT_NE(json.find("\"gap_mean_ns\": 90000"), std::string::npos);
  EXPECT_NE(json.find("\"transitions\": 4"), std::string::npos);

  // A hostile call name must come out escaped, not raw.
  Dfg hostile;
  hostile.names = {"", "evil\"\ncall"};
  RankDfg r;
  r.rank = 0;
  r.nodes[1] = NodeStats{1, 0, 0};
  hostile.ranks.push_back(std::move(r));
  const std::string escaped = to_json(hostile);
  EXPECT_EQ(escaped.find("evil\"\ncall"), std::string::npos);
  EXPECT_NE(escaped.find("evil\\\"\\ncall"), std::string::npos);
}

TEST(DfgExport, EqualGraphsExportByteEqual) {
  const std::vector<TraceEvent> events = small_stream();
  const Dfg a = DfgBuilder(store_of(events, 1)).build();
  const Dfg b = DfgBuilder(store_of(events, 3)).build();
  EXPECT_EQ(to_dot(a), to_dot(b));
  EXPECT_EQ(to_json(a), to_json(b));
}

// ------------------------------------------------------------ pool_infos

TEST(PoolInfos, ReportsShapeOwnedViewAndCompacted) {
  const std::vector<TraceEvent> events = small_stream();
  UnifiedTraceStore store = store_of(events, 2);

  const std::vector<std::uint8_t> bytes =
      trace::encode_binary_v2(EventBatch::from_events(events),
                              trace::BinaryOptions{});
  const std::string path = "dfg_test_pool_infos.iotb";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  store.ingest_view(path, {{"framework", "test"}});
  std::remove(path.c_str());

  std::vector<StorePoolInfo> infos = store.pool_infos();
  ASSERT_EQ(infos.size(), 3u);
  EXPECT_FALSE(infos[0].view_backed);
  EXPECT_FALSE(infos[1].view_backed);
  EXPECT_TRUE(infos[2].view_backed);
  EXPECT_EQ(infos[2].records, static_cast<long long>(events.size()));
  EXPECT_EQ(infos[2].approx_bytes, bytes.size());
  long long total = 0;
  for (const StorePoolInfo& info : infos) {
    total += info.records;
    EXPECT_TRUE(info.any);
    EXPECT_LE(info.min_time, info.max_time);
    EXPECT_GT(info.approx_bytes, 0u);
  }
  EXPECT_EQ(total, store.total_events());
  EXPECT_EQ(infos[0].first_source, 0u);
  EXPECT_EQ(infos[1].first_source, 1u);
  EXPECT_EQ(infos[2].first_source, 2u);

  // Compaction merges the two owned pools; the view pool stays.
  EXPECT_EQ(store.compact(64 * kMiB), 2u);
  infos = store.pool_infos();
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_EQ(infos[0].source_count, 2u);
  EXPECT_FALSE(infos[0].view_backed);
  EXPECT_TRUE(infos[1].view_backed);
}

TEST(PoolInfos, ValidatedPairIngestMatchesPathIngest) {
  const std::vector<TraceEvent> events = small_stream();
  const std::vector<std::uint8_t> bytes =
      trace::encode_binary_v2(EventBatch::from_events(events),
                              trace::BinaryOptions{});
  const std::string path = "dfg_test_pair.iotb";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);

  UnifiedTraceStore by_path;
  by_path.ingest_view(path, {{"framework", "test"}});

  // Probe-then-file: the already-validated view is ingested without a
  // second open-time validation, and must behave identically.
  UnifiedTraceStore by_pair;
  trace::MappedTraceFile file(path);
  trace::BatchView view(file.bytes());
  by_pair.ingest_view(std::move(file), std::move(view),
                      {{"framework", "test"}});
  EXPECT_EQ(by_path.total_events(), by_pair.total_events());
  EXPECT_EQ(by_path.call_stats(), by_pair.call_stats());
  EXPECT_EQ(DfgBuilder(by_path).build(), DfgBuilder(by_pair).build());

  // A view that does not borrow the given file is rejected.
  trace::MappedTraceFile file2(path);
  const trace::BatchView foreign(bytes);  // borrows the local buffer
  UnifiedTraceStore store;
  EXPECT_THROW(store.ingest_view(std::move(file2), foreign, {}), ConfigError);
  std::remove(path.c_str());
}

TEST(PoolInfos, WithPoolAccessBoundsChecked) {
  const UnifiedTraceStore store = store_of(small_stream());
  EXPECT_THROW(store.with_pool_access(1, [](const auto&) {}), ConfigError);
  const std::size_t n =
      store.with_pool_access(0, [](const auto& acc) { return acc.size(); });
  EXPECT_EQ(n, small_stream().size());
}

}  // namespace
}  // namespace iotaxo::analysis::dfg
