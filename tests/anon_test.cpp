// Tests for trace anonymization: randomizing (irreversible, consistent) and
// encrypting (reversible, field-selective) anonymizers, and leak detection.
#include <gtest/gtest.h>

#include "anon/anonymizer.h"
#include "trace/bundle.h"
#include "util/error.h"

namespace iotaxo::anon {
namespace {

using trace::EventClass;
using trace::TraceBundle;
using trace::TraceEvent;

[[nodiscard]] TraceEvent sensitive_event() {
  TraceEvent ev;
  ev.cls = EventClass::kSyscall;
  ev.name = "SYS_open";
  ev.args = {"/secret_project/input.dat", "0", "0666"};
  ev.ret = 3;
  ev.path = "/secret_project/input.dat";
  ev.host = "host13.lanl.gov";
  ev.uid = 4001;
  ev.gid = 400;
  ev.rank = 7;
  return ev;
}

[[nodiscard]] TraceBundle sensitive_bundle() {
  TraceBundle b;
  b.metadata["application"] = "/secret_project/bin/app -in /secret_project/x";
  trace::RankStream rs;
  rs.rank = 7;
  rs.host = "host13.lanl.gov";
  rs.events = {sensitive_event(), sensitive_event()};
  b.ranks.push_back(rs);
  return b;
}

TEST(Randomizing, ScrubsPathEverywhere) {
  RandomizingAnonymizer anonymizer(FieldPolicy{}, 42);
  const TraceEvent out = anonymizer.apply(sensitive_event());
  EXPECT_EQ(out.path.find("secret_project"), std::string::npos);
  for (const std::string& a : out.args) {
    EXPECT_EQ(a.find("secret_project"), std::string::npos) << a;
  }
  EXPECT_EQ(out.host.find("lanl"), std::string::npos);
  EXPECT_NE(out.uid, 4001u);
  EXPECT_NE(out.gid, 400u);
  // Non-sensitive structure is preserved.
  EXPECT_EQ(out.name, "SYS_open");
  EXPECT_EQ(out.ret, 3);
  EXPECT_EQ(out.rank, 7);
}

TEST(Randomizing, ConsistentMapping) {
  RandomizingAnonymizer anonymizer(FieldPolicy{}, 42);
  const TraceEvent a = anonymizer.apply(sensitive_event());
  const TraceEvent b = anonymizer.apply(sensitive_event());
  EXPECT_EQ(a.path, b.path);
  EXPECT_EQ(a.host, b.host);
  EXPECT_EQ(a.uid, b.uid);
  // The mapping is keyed: a different seed gives different tokens.
  RandomizingAnonymizer other(FieldPolicy{}, 43);
  EXPECT_NE(other.apply(sensitive_event()).path, a.path);
}

TEST(Randomizing, PolicyRestrictsFields) {
  FieldPolicy only_uid;
  only_uid.fields = {Field::kUid};
  RandomizingAnonymizer anonymizer(only_uid, 1);
  const TraceEvent out = anonymizer.apply(sensitive_event());
  EXPECT_EQ(out.path, "/secret_project/input.dat");  // untouched
  EXPECT_NE(out.uid, 4001u);
  EXPECT_EQ(out.gid, 400u);
}

TEST(Randomizing, BundleHasNoLeaks) {
  RandomizingAnonymizer anonymizer(FieldPolicy{}, 7);
  const TraceBundle scrubbed = anonymizer.apply(sensitive_bundle());
  EXPECT_FALSE(leaks_any(scrubbed, {"secret_project", "lanl.gov"}));
  EXPECT_TRUE(leaks_any(sensitive_bundle(), {"secret_project"}));
}

class RandomizingSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomizingSeeds, NeverLeaksAcrossSeeds) {
  RandomizingAnonymizer anonymizer(FieldPolicy{}, GetParam());
  const TraceBundle scrubbed = anonymizer.apply(sensitive_bundle());
  EXPECT_FALSE(leaks_any(scrubbed, {"secret_project", "lanl.gov", "4001"}));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizingSeeds,
                         ::testing::Values(1, 2, 3, 99, 12345, 0xDEADBEEF));

TEST(Encrypting, ReversibleWithKey) {
  EncryptingAnonymizer anonymizer(FieldPolicy{}, "secret-key");
  const TraceEvent scrambled = anonymizer.apply(sensitive_event());
  EXPECT_EQ(scrambled.path.find("secret_project"), std::string::npos);
  EXPECT_TRUE(scrambled.path.starts_with("enc:"));

  const TraceEvent recovered = anonymizer.reverse(scrambled);
  EXPECT_EQ(recovered.path, "/secret_project/input.dat");
  EXPECT_EQ(recovered.host, "host13.lanl.gov");
}

TEST(Encrypting, WrongKeyCannotReverse) {
  EncryptingAnonymizer good(FieldPolicy{}, "right");
  EncryptingAnonymizer bad(FieldPolicy{}, "wrong");
  const TraceEvent scrambled = good.apply(sensitive_event());
  try {
    const TraceEvent recovered = bad.reverse(scrambled);
    EXPECT_NE(recovered.path, "/secret_project/input.dat");
  } catch (const Error&) {
    SUCCEED();  // padding failure is equally acceptable
  }
}

TEST(Encrypting, ScrubsArgsConsistentlyWithPath) {
  EncryptingAnonymizer anonymizer(FieldPolicy{}, "k");
  const TraceEvent out = anonymizer.apply(sensitive_event());
  // The path arg carries the same ciphertext as the path field.
  EXPECT_EQ(out.args[0], out.path);
}

TEST(Encrypting, TaxonomyGrades) {
  EncryptingAnonymizer enc(FieldPolicy{}, "k");
  RandomizingAnonymizer rnd(FieldPolicy{}, 1);
  // Reversible encryption is "advanced" (4); true randomization is the only
  // grade-5 anonymization (the paper's §4.2 distinction).
  EXPECT_EQ(enc.taxonomy_level(), 4);
  EXPECT_TRUE(enc.reversible());
  EXPECT_EQ(rnd.taxonomy_level(), 5);
  EXPECT_FALSE(rnd.reversible());
}

TEST(Encrypting, BundleMetadataScrubbed) {
  EncryptingAnonymizer anonymizer(FieldPolicy{}, "k");
  const TraceBundle scrubbed = anonymizer.apply(sensitive_bundle());
  EXPECT_FALSE(leaks_any(scrubbed, {"secret_project"}));
}

TEST(LeaksAny, FindsSecretsInAllSurfaces) {
  TraceBundle b;
  EXPECT_FALSE(leaks_any(b, {"x"}));
  b.metadata["cmd"] = "run /secret/x";
  EXPECT_TRUE(leaks_any(b, {"secret"}));

  TraceBundle c;
  trace::RankStream rs;
  rs.host = "secret-host";
  c.ranks.push_back(rs);
  EXPECT_TRUE(leaks_any(c, {"secret-host"}));

  TraceBundle d;
  TraceEvent ev;
  ev.args = {"payload-with-secret-inside"};
  d.clock_probes.push_back(ev);
  EXPECT_TRUE(leaks_any(d, {"secret"}));
  EXPECT_FALSE(leaks_any(d, {"absent"}));
}

}  // namespace
}  // namespace iotaxo::anon
