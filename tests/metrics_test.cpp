// Self-metrics layer tests: the obs registry (counters, gauges,
// histograms, snapshots, deltas, JSON), concurrent-hammer exactness, the
// disarmed path's inertness (bit-identical query results and error text
// with metrics on or off), the async sink's pipeline metrics, and the
// cold-store decode cross-check — the block.decode.stored_bytes counter
// must equal the store's own pool_infos() decoded-byte accounting exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "analysis/unified_store.h"
#include "trace/async_sink.h"
#include "trace/binary_format.h"
#include "trace/block_view.h"
#include "trace/event_batch.h"
#include "trace/sink.h"
#include "util/error.h"
#include "util/metrics.h"
#include "util/strings.h"

namespace iotaxo {
namespace {

using analysis::UnifiedTraceStore;
using trace::EventBatch;
using trace::TraceEvent;

/// Arm metrics for one test and guarantee the disarmed default is
/// restored (and values zeroed) however the test exits, so test order
/// never leaks armed state into the inertness checks.
struct ArmGuard {
  ArmGuard() {
    obs::set_enabled(true);
    obs::reset();
  }
  ~ArmGuard() {
    obs::set_enabled(false);
    obs::reset();
  }
};

[[nodiscard]] std::vector<TraceEvent> sample_events(int count) {
  std::vector<TraceEvent> events;
  for (int i = 0; i < count; ++i) {
    TraceEvent ev = trace::make_syscall(
        i % 3 == 0 ? "SYS_read" : "SYS_write",
        {"5", "4096", strprintf("%d", i)}, 4096);
    ev.rank = i % 4;
    ev.host = "host00";
    ev.path = i % 2 == 0 ? strprintf("/pfs/f%d.dat", i % 8) : "";
    ev.fd = 5;
    ev.bytes = 4096;
    ev.local_start = static_cast<SimTime>(i) * kMillisecond;
    ev.duration = 10 * kMicrosecond;
    events.push_back(std::move(ev));
  }
  return events;
}

std::string make_scratch_dir(const char* tag) {
  const std::string dir =
      strprintf("/tmp/iotaxo_metrics_%s_%d", tag,
                ::testing::UnitTest::GetInstance()->random_seed());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

[[nodiscard]] std::uint64_t counter_value(const obs::MetricsSnapshot& snap,
                                          const std::string& name) {
  const auto it = snap.values.find(name);
  return it == snap.values.end() ? 0 : it->second.value;
}

[[nodiscard]] std::uint64_t hist_count(const obs::MetricsSnapshot& snap,
                                       const std::string& name) {
  const auto it = snap.values.find(name);
  return it == snap.values.end() ? 0 : it->second.count;
}

// -------------------------------------------------------------- inertness

// Must run before anything arms the registry in this process: the
// check_build --metrics smoke additionally runs this test alone under
// `env -u IOTAXO_METRICS` to pin the static-init default.
TEST(Metrics, InactiveByDefault) {
  ASSERT_FALSE(obs::enabled());
  obs::Counter& c = obs::counter("test.inactive.counter");
  obs::Histogram& h = obs::histogram("test.inactive.hist_ns");
  obs::Gauge& g = obs::gauge("test.inactive.gauge");
  c.add(7);
  g.set(9);
  h.record(1234);
  { const obs::ScopedTimer t(h); }
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0u);
  EXPECT_EQ(g.high_water(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

TEST(Metrics, ArmDisarmRoundTrip) {
  obs::Counter& c = obs::counter("test.roundtrip.counter");
  {
    const ArmGuard guard;
    c.add(3);
    EXPECT_EQ(c.value(), 3u);
  }
  EXPECT_FALSE(obs::enabled());
  c.add(5);  // disarmed again: must not record
  EXPECT_EQ(c.value(), 0u);  // guard reset zeroed the armed-time value too
}

// -------------------------------------------------------- concurrency

TEST(Metrics, CounterConcurrentHammer) {
  const ArmGuard guard;
  obs::Counter& c = obs::counter("test.hammer.counter");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAdds = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kAdds; ++i) {
        c.add(3);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.value(), kThreads * kAdds * 3);
}

TEST(Metrics, HistogramConcurrentHammer) {
  const ArmGuard guard;
  obs::Histogram& h = obs::histogram("test.hammer.hist_ns");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kRecords = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (std::uint64_t i = 0; i < kRecords; ++i) {
        h.record(i % 1024);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  constexpr std::uint64_t kTotal = kThreads * kRecords;
  EXPECT_EQ(h.count(), kTotal);
  // Exact serial sum: each thread records 0..1023 cyclically.
  constexpr std::uint64_t kCycleSum = 1023 * 1024 / 2;
  EXPECT_EQ(h.sum(), kThreads * (kRecords / 1024) * kCycleSum +
                         kThreads * ((kRecords % 1024) *
                                     ((kRecords % 1024) - 1) / 2));
  std::uint64_t bucket_total = 0;
  for (std::size_t b = 0; b < obs::Histogram::kBuckets; ++b) {
    bucket_total += h.bucket(b);
  }
  EXPECT_EQ(bucket_total, kTotal);
}

// ----------------------------------------------------------- primitives

TEST(Metrics, Log2BucketBoundaries) {
  using H = obs::Histogram;
  EXPECT_EQ(H::bucket_of(0), 0u);
  EXPECT_EQ(H::bucket_of(1), 1u);
  EXPECT_EQ(H::bucket_of(2), 2u);
  EXPECT_EQ(H::bucket_of(3), 2u);
  EXPECT_EQ(H::bucket_of(4), 3u);
  EXPECT_EQ(H::bucket_of(7), 3u);
  EXPECT_EQ(H::bucket_of(8), 4u);
  EXPECT_EQ(H::bucket_of((1ull << 62) - 1), 62u);
  EXPECT_EQ(H::bucket_of(1ull << 62), 63u);
  EXPECT_EQ(H::bucket_of(std::numeric_limits<std::uint64_t>::max()), 63u);

  const ArmGuard guard;
  obs::Histogram& h = obs::histogram("test.bucket.hist_ns");
  h.record(0);
  h.record(1);
  h.record(3);
  h.record(1ull << 40);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(41), 1u);
  EXPECT_EQ(h.count(), 4u);
}

TEST(Metrics, GaugeHighWaterMark) {
  const ArmGuard guard;
  obs::Gauge& g = obs::gauge("test.gauge.depth");
  g.set(5);
  g.set(12);
  g.set(3);
  EXPECT_EQ(g.value(), 3u);
  EXPECT_EQ(g.high_water(), 12u);
  g.reset();
  EXPECT_EQ(g.value(), 0u);
  EXPECT_EQ(g.high_water(), 0u);
}

TEST(Metrics, KindMismatchThrows) {
  (void)obs::counter("test.kind.once");
  EXPECT_THROW((void)obs::gauge("test.kind.once"), ConfigError);
  EXPECT_THROW((void)obs::histogram("test.kind.once"), ConfigError);
}

// ------------------------------------------------------ snapshot / JSON

TEST(Metrics, SnapshotCarriesFullCatalogAndJsonIsDeterministic) {
  const obs::MetricsSnapshot snap = obs::snapshot();
  // A selection spanning every instrumented layer: pre-registration means
  // they are present (zero) even though nothing ran in this test.
  for (const char* name :
       {"sink.async.batches_delivered", "sink.async.queue_depth",
        "sink.async.backpressure_wait_ns", "block.decode.stored_bytes",
        "block.decode.crc_ns", "store.query.count",
        "store.query.segments_skipped", "store.compact.eras_spilled",
        "store.attach.duration_ns", "durable.write.fsync_ns",
        "durable.write.files"}) {
    EXPECT_TRUE(snap.values.contains(name)) << name;
  }
  const std::string a = obs::to_json(snap);
  const std::string b = obs::to_json(obs::snapshot());
  EXPECT_EQ(a, b);  // same state -> byte-identical JSON
  EXPECT_EQ(a.rfind("{\n  \"metrics_schema\": 1", 0), 0u);
  EXPECT_NE(a.find("\"counters\""), std::string::npos);
  EXPECT_NE(a.find("\"gauges\""), std::string::npos);
  EXPECT_NE(a.find("\"histograms\""), std::string::npos);
  // The text report renders without throwing and mentions every kind.
  const std::string text = obs::render_text(snap);
  EXPECT_NE(text.find("store.query.count"), std::string::npos);
}

TEST(Metrics, SnapshotDeltaExactAcrossCompactAndQueryCycle) {
  const ArmGuard guard;
  const std::string dir = make_scratch_dir("delta");
  UnifiedTraceStore store;
  store.ingest(EventBatch::from_events(sample_events(120)),
               {{"framework", "test"}, {"application", "delta"}});

  UnifiedTraceStore::ColdTierOptions cold;
  cold.directory = dir;
  cold.binary.compress = true;
  cold.binary.checksum = true;
  cold.block_records = 16;

  const obs::MetricsSnapshot before = obs::snapshot();
  store.compact(static_cast<std::size_t>(-1), cold);
  (void)store.call_stats();
  (void)store.bytes_in_window(0, 200 * kMillisecond);
  (void)store.hottest_files(4);
  const obs::MetricsSnapshot after = obs::snapshot();
  const obs::MetricsSnapshot d = obs::delta(before, after);

  // compact(era_bytes, cold) routes through compact(era_bytes), so one
  // cold call counts one compaction.
  EXPECT_EQ(counter_value(d, "store.compact.calls"), 1u);
  EXPECT_EQ(counter_value(d, "store.compact.eras_spilled"), 1u);
  EXPECT_EQ(counter_value(d, "store.compact.manifest_commits"), 1u);
  // The era file on disk is exactly the spilled container bytes.
  std::uint64_t era_bytes = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".iotb3") {
      era_bytes += entry.file_size();
    }
  }
  EXPECT_EQ(counter_value(d, "store.compact.bytes_written"), era_bytes);
  // Era + manifest both go through the durable write protocol.
  EXPECT_EQ(counter_value(d, "durable.write.files"), 2u);
  EXPECT_GT(counter_value(d, "durable.write.bytes"), era_bytes);
  EXPECT_EQ(hist_count(d, "store.compact.spill_ns"), 1u);
  EXPECT_EQ(counter_value(d, "store.query.count"), 3u);
  EXPECT_EQ(hist_count(d, "store.query.call_stats_ns"), 1u);
  EXPECT_EQ(hist_count(d, "store.query.bytes_in_window_ns"), 1u);
  EXPECT_EQ(hist_count(d, "store.query.hottest_files_ns"), 1u);

  // Delta exactness: a second identical query round must produce the
  // identical query-count delta (nothing lost, nothing double-counted).
  const obs::MetricsSnapshot before2 = obs::snapshot();
  (void)store.call_stats();
  (void)store.bytes_in_window(0, 200 * kMillisecond);
  (void)store.hottest_files(4);
  const obs::MetricsSnapshot d2 = obs::delta(before2, obs::snapshot());
  EXPECT_EQ(counter_value(d2, "store.query.count"), 3u);

  // attach_dir recovery over the directory just committed.
  const obs::MetricsSnapshot before3 = obs::snapshot();
  UnifiedTraceStore recovered;
  const analysis::StoreHealth health = recovered.attach_dir(dir);
  const obs::MetricsSnapshot d3 = obs::delta(before3, obs::snapshot());
  EXPECT_TRUE(health.healthy());
  EXPECT_EQ(counter_value(d3, "store.attach.recovered_eras"), 1u);
  EXPECT_EQ(counter_value(d3, "store.attach.quarantined"), 0u);
  EXPECT_EQ(hist_count(d3, "store.attach.duration_ns"), 1u);

  std::filesystem::remove_all(dir);
}

// --------------------------------------------------- disarmed inertness

TEST(Metrics, DisarmedQueriesAreBitIdentical) {
  ASSERT_FALSE(obs::enabled());
  const EventBatch batch = EventBatch::from_events(sample_events(96));
  trace::BinaryOptions options;
  options.compress = true;
  options.checksum = true;
  options.project = true;
  const std::vector<std::uint8_t> container =
      trace::encode_binary_v3(batch, options, 16);
  const std::string dir = make_scratch_dir("inert");
  const std::string path = dir + "/c.iotb3";
  write_file(path, container);

  const auto run_queries = [&path] {
    UnifiedTraceStore store;
    store.ingest_view(path);
    return std::tuple{store.call_stats(),
                      store.bytes_in_window(0, 50 * kMillisecond),
                      store.hottest_files(8)};
  };
  const auto disarmed = run_queries();
  std::string armed_json;
  {
    const ArmGuard guard;
    const auto armed = run_queries();
    EXPECT_EQ(std::get<0>(disarmed), std::get<0>(armed));
    EXPECT_EQ(std::get<1>(disarmed), std::get<1>(armed));
    EXPECT_EQ(std::get<2>(disarmed).size(), std::get<2>(armed).size());
    for (std::size_t i = 0; i < std::get<2>(disarmed).size(); ++i) {
      EXPECT_EQ(std::get<2>(disarmed)[i].path, std::get<2>(armed)[i].path);
      EXPECT_EQ(std::get<2>(disarmed)[i].bytes, std::get<2>(armed)[i].bytes);
    }
  }

  // Error text identical too: corrupt one stored block byte and decode it
  // armed and disarmed — instrumentation must not change the error path.
  std::vector<std::uint8_t> corrupt = container;
  corrupt[corrupt.size() / 2] ^= 0x40;
  const auto decode_error = [&corrupt] {
    try {
      const trace::BlockView view(corrupt);
      for (std::size_t b = 0; b < view.block_count(); ++b) {
        (void)view.block_bytes(b);
      }
      return std::string("(no error)");
    } catch (const Error& err) {
      return std::string(err.what());
    }
  };
  const std::string disarmed_error = decode_error();
  std::string armed_error;
  {
    const ArmGuard guard;
    armed_error = decode_error();
  }
  EXPECT_NE(disarmed_error, "(no error)");
  EXPECT_EQ(disarmed_error, armed_error);
  std::filesystem::remove_all(dir);
}

// --------------------------------------------------- decode cross-check

TEST(Metrics, ColdStoreDecodeCrossChecksPoolAccounting) {
  const ArmGuard guard;
  const EventBatch batch = EventBatch::from_events(sample_events(192));
  trace::BinaryOptions options;
  options.compress = true;
  options.checksum = true;
  options.project = true;
  options.encrypt = true;
  options.key = derive_key("metrics-test-key");
  const std::vector<std::uint8_t> container =
      trace::encode_binary_v3(batch, options, 16);
  const std::string dir = make_scratch_dir("crosscheck");
  const std::string path = dir + "/c.iotb3";
  write_file(path, container);

  UnifiedTraceStore store;
  store.ingest_view(path, {}, options.key);

  const auto decoded_now = [&store] {
    std::uint64_t total = 0;
    for (const analysis::StorePoolInfo& info : store.pool_infos()) {
      total += info.decoded_stored_bytes;
    }
    return total;
  };

  // A narrow window, then a full scan: hot-only decodes first, cold
  // stitches after. After every step the metric must equal the store's
  // own accounting bit for bit.
  const obs::MetricsSnapshot before = obs::snapshot();
  const std::uint64_t decoded_before = decoded_now();
  (void)store.bytes_in_window(60 * kMillisecond, 120 * kMillisecond);
  const obs::MetricsSnapshot mid = obs::delta(before, obs::snapshot());
  EXPECT_EQ(counter_value(mid, "block.decode.stored_bytes"),
            decoded_now() - decoded_before);
  EXPECT_GT(counter_value(mid, "block.decode.hot_blocks"), 0u);
  EXPECT_GT(counter_value(mid, "store.query.segments_skipped"), 0u);
  EXPECT_GT(hist_count(mid, "block.decode.crc_ns"), 0u);
  EXPECT_GT(hist_count(mid, "block.decode.decrypt_ns"), 0u);
  EXPECT_GT(hist_count(mid, "block.decode.decompress_ns"), 0u);

  (void)store.hottest_files(8);  // needs cold columns: full decodes
  const obs::MetricsSnapshot d = obs::delta(before, obs::snapshot());
  EXPECT_EQ(counter_value(d, "block.decode.stored_bytes"),
            decoded_now() - decoded_before);
  EXPECT_GT(counter_value(d, "block.decode.full_blocks"), 0u);
  EXPECT_EQ(counter_value(d, "block.decode.failures"), 0u);
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------------ async sink

class ThrowingSink : public trace::EventSink {
 public:
  void on_event(const TraceEvent&) override {
    throw IoError("downstream is broken");
  }
};

/// Delivery slow enough for a capacity-1 queue to backpressure producers.
class SlowCountingSink : public trace::EventSink {
 public:
  void on_event(const TraceEvent&) override { ++events_; }
  void on_batch(const EventBatch& batch) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    events_ += static_cast<long long>(batch.size());
  }
  [[nodiscard]] long long events() const noexcept { return events_; }

 private:
  long long events_ = 0;
};

TEST(Metrics, AsyncSinkDeliveryAndBackpressure) {
  const ArmGuard guard;
  const obs::MetricsSnapshot before = obs::snapshot();
  auto downstream = std::make_shared<SlowCountingSink>();
  {
    trace::AsyncOptions options;
    options.queue_capacity = 1;
    options.workers = 1;
    trace::AsyncBatchSink sink(downstream, options);
    for (int b = 0; b < 8; ++b) {
      EventBatch batch = EventBatch::from_events(sample_events(4));
      sink.on_batch_owned(std::move(batch));
    }
    sink.flush();
  }
  const obs::MetricsSnapshot d = obs::delta(before, obs::snapshot());
  EXPECT_EQ(counter_value(d, "sink.async.batches_delivered"), 8u);
  EXPECT_EQ(counter_value(d, "sink.async.events_delivered"), 32u);
  EXPECT_EQ(downstream->events(), 32);
  EXPECT_GT(counter_value(d, "sink.async.backpressure_stalls"), 0u);
  EXPECT_GT(hist_count(d, "sink.async.backpressure_wait_ns"), 0u);
  const auto depth = d.values.find("sink.async.queue_depth");
  ASSERT_NE(depth, d.values.end());
  EXPECT_GE(depth->second.high_water, 1u);
  EXPECT_EQ(counter_value(d, "sink.async.delivery_errors"), 0u);
}

TEST(Metrics, AsyncSinkRecordsDeliveryErrors) {
  const ArmGuard guard;
  const obs::MetricsSnapshot before = obs::snapshot();
  {
    trace::AsyncBatchSink sink(std::make_shared<ThrowingSink>());
    sink.on_batch_owned(EventBatch::from_events(sample_events(2)));
    EXPECT_THROW(sink.flush(), IoError);  // flush() rethrows first_error_
    // Destroyed with no further error pending: nothing to drop.
  }
  const obs::MetricsSnapshot d = obs::delta(before, obs::snapshot());
  EXPECT_EQ(counter_value(d, "sink.async.delivery_errors"), 1u);
  EXPECT_EQ(counter_value(d, "sink.async.errors_dropped"), 0u);

  // A destructor-swallowed drain failure is still visible in metrics.
  const obs::MetricsSnapshot before2 = obs::snapshot();
  {
    trace::AsyncBatchSink sink(std::make_shared<ThrowingSink>());
    sink.on_batch_owned(EventBatch::from_events(sample_events(2)));
    // No flush(): the destructor drains, swallows, and counts the drop.
  }
  const obs::MetricsSnapshot d2 = obs::delta(before2, obs::snapshot());
  EXPECT_EQ(counter_value(d2, "sink.async.delivery_errors"), 1u);
  EXPECT_EQ(counter_value(d2, "sink.async.errors_dropped"), 1u);
}

}  // namespace
}  // namespace iotaxo
