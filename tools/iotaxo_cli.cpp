// iotaxo — command-line front end to the toolkit.
//
//   iotaxo trace    --framework lanl|tracefs|partrace --workload mpiio|meta
//                   [--pattern strided|nonstrided|nn] [--ranks N]
//                   [--block BYTES] [--total BYTES] [--out DIR]
//                   [--binary-out FILE.iotb|FILE.iotb3]
//                   [--project] [--key PASSPHRASE]
//   iotaxo classify [--ranks N]
//   iotaxo replay   --in DIR [--sync barriers|deps|none]
//   iotaxo analyze  --in DIR [DIR...]
//   iotaxo anonymize --in DIR --out DIR [--mode random|encrypt]
//   iotaxo stat     DIR|FILE.iotb [--blocks] [--key PASSPHRASE]
//   iotaxo dfg      FILE.iotb [--rank N] [--dot OUT] [--json OUT]
//                   [--phases] [--blocks] [--compare OTHER.iotb]
//                   [--threads N] [--key PASSPHRASE]
//   iotaxo fsck     DIR|FILE.iotb [--key PASSPHRASE] [--repair]
//   iotaxo stream   --dir DIR [--flushes N] [--events N]
//                   [--era-bytes BYTES] [--attach]
//
// Bundles are the on-disk trace format (one text trace per rank plus TSV
// sidecars) produced by `trace --out` and consumed by replay/analyze/
// anonymize — the full LANL trace-distribution workflow from one binary.
// `trace --binary-out` additionally writes the run as one IOTB container
// (IOTB2, or block-structured compressed+checksummed IOTB3 when the file
// name ends in .iotb3), which `stat` inspects through the zero-copy
// readers (mmap + BatchView for IOTB2, mmap + BlockView for IOTB3 — no
// decode even for compressed v3, whose blocks decompress lazily;
// v1/v2-compressed/encrypted containers fall back to decode-then-tally
// with the refusal reason printed) and `dfg` mines into per-rank
// directly-follows graphs (phases, rank divergence, DOT/JSON export).
// `--blocks` prints the IOTB3 footer's per-block mini-index.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/aggregate_timing.h"
#include "analysis/call_summary.h"
#include "analysis/dfg/dfg.h"
#include "analysis/dfg/dfg_compare.h"
#include "analysis/dfg/dfg_export.h"
#include "analysis/dfg/phase_segmenter.h"
#include "analysis/report.h"
#include "analysis/store_manifest.h"
#include "analysis/unified_store.h"
#include "anon/anonymizer.h"
#include "frameworks/lanl_trace.h"
#include "frameworks/partrace.h"
#include "frameworks/tracefs.h"
#include "fs/memfs.h"
#include "pfs/pfs.h"
#include "replay/replayer.h"
#include "sim/cluster.h"
#include "taxonomy/classifier.h"
#include "trace/binary_format.h"
#include "trace/event_batch.h"
#include "trace/record_view.h"
#include "util/crc32.h"
#include "util/error.h"
#include "util/metrics.h"
#include "util/strings.h"
#include "util/table.h"
#include "workload/io_intensive.h"
#include "workload/mpi_io_test.h"

using namespace iotaxo;

namespace {

struct Args {
  std::string command;
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  [[nodiscard]] long long get_int(const std::string& key,
                                  long long fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback
                               : std::strtoll(it->second.c_str(), nullptr, 10);
  }
};

/// Options that are bare flags (no value token follows them).
[[nodiscard]] bool is_flag_option(const char* name) {
  return std::strcmp(name, "phases") == 0 ||
         std::strcmp(name, "blocks") == 0 ||
         std::strcmp(name, "project") == 0 ||
         std::strcmp(name, "repair") == 0 ||
         std::strcmp(name, "attach") == 0 ||
         std::strcmp(name, "metrics") == 0;
}

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) {
    args.command = argv[1];
  }
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      if (is_flag_option(argv[i] + 2)) {
        args.options[argv[i] + 2] = "1";
        continue;
      }
      if (i + 1 >= argc) {
        throw ConfigError(strprintf("missing value for '%s'", argv[i]));
      }
      args.options[argv[i] + 2] = argv[i + 1];
      ++i;
    } else {
      args.positional.emplace_back(argv[i]);
    }
  }
  return args;
}

int usage() {
  std::fputs(
      "usage:\n"
      "  iotaxo trace     --framework lanl|tracefs|partrace --workload "
      "mpiio|meta\n"
      "                   [--pattern strided|nonstrided|nn] [--ranks N]\n"
      "                   [--block BYTES] [--total BYTES] [--out DIR]\n"
      "                   [--binary-out FILE.iotb|FILE.iotb3]\n"
      "                   [--project] [--key PASSPHRASE] [--block-records N]\n"
      "  iotaxo classify  [--ranks N]\n"
      "  iotaxo replay    --in DIR [--sync barriers|deps|none]\n"
      "  iotaxo analyze   --in DIR [--in2 DIR] [--in3 DIR]\n"
      "  iotaxo anonymize --in DIR --out DIR [--mode random|encrypt]\n"
      "  iotaxo stat      DIR|FILE.iotb [--blocks] [--key PASSPHRASE]\n"
      "  iotaxo dfg       FILE.iotb [--rank N] [--dot OUT] [--json OUT]\n"
      "                   [--phases] [--blocks] [--compare OTHER.iotb]\n"
      "                   [--threads N] [--key PASSPHRASE]\n"
      "  iotaxo fsck      DIR|FILE.iotb [--key PASSPHRASE] [--repair]\n"
      "  iotaxo stream    --dir DIR [--flushes N] [--events N]\n"
      "                   [--era-bytes BYTES] [--attach]\n"
      "  iotaxo metrics   [--out FILE.json]\n"
      "\n"
      "Every subcommand also accepts --metrics (print a self-metrics table\n"
      "after the run) and --metrics-out FILE.json (write the run's metric\n"
      "deltas as JSON); IOTAXO_METRICS=stderr|FILE.json arms an at-exit\n"
      "dump instead.\n",
      stderr);
  return 2;
}

[[nodiscard]] frameworks::FrameworkPtr make_framework(const std::string& name) {
  if (name == "lanl") {
    return std::make_shared<frameworks::LanlTrace>();
  }
  if (name == "tracefs") {
    return std::make_shared<frameworks::Tracefs>();
  }
  if (name == "partrace") {
    return std::make_shared<frameworks::Partrace>();
  }
  throw ConfigError("unknown framework: " + name + " (lanl|tracefs|partrace)");
}

[[nodiscard]] mpi::Job make_workload(const Args& args, int ranks) {
  const std::string kind = args.get("workload", "mpiio");
  if (kind == "mpiio") {
    workload::MpiIoTestParams params;
    params.nranks = ranks;
    const std::string pattern = args.get("pattern", "strided");
    params.pattern = pattern == "nn"           ? workload::Pattern::kNtoN
                     : pattern == "nonstrided" ? workload::Pattern::kNto1NonStrided
                                               : workload::Pattern::kNto1Strided;
    params.block = args.get_int("block", 256 * kKiB);
    params.total_bytes = args.get_int("total", 256 * kMiB);
    return workload::make_mpi_io_test(params);
  }
  if (kind == "meta") {
    workload::IoIntensiveParams params;
    params.nranks = std::min(ranks, 4);
    params.files_per_rank = static_cast<int>(args.get_int("files", 200));
    return workload::make_io_intensive(params);
  }
  throw ConfigError("unknown workload: " + kind + " (mpiio|meta)");
}

int cmd_trace(const Args& args) {
  const int ranks = static_cast<int>(args.get_int("ranks", 8));
  sim::ClusterParams cparams;
  cparams.node_count = ranks;
  const sim::Cluster cluster(cparams);

  const auto framework = make_framework(args.get("framework", "lanl"));
  const mpi::Job job = make_workload(args, ranks);

  // Tracefs cannot mount the parallel FS out of the box; route metadata
  // workloads (and tracefs) to the local FS, everything else to the PFS.
  fs::VfsPtr vfs;
  if (framework->supports_fs(fs::FsKind::kParallel) &&
      args.get("workload", "mpiio") == "mpiio") {
    vfs = std::make_shared<pfs::Pfs>();
  } else {
    vfs = std::make_shared<fs::MemFs>();
  }

  frameworks::TraceJobOptions options;
  options.store_raw_streams = true;
  const frameworks::TraceRunResult result =
      framework->trace(cluster, job, vfs, options);

  std::printf("framework        : %s\n", framework->name().c_str());
  std::printf("application      : %s\n", job.cmdline.c_str());
  std::printf("events captured  : %lld\n", result.bundle.total_events());
  std::printf("app elapsed      : %s\n",
              format_duration(result.run.elapsed).c_str());
  std::printf("apparent elapsed : %s\n",
              format_duration(result.apparent_elapsed).c_str());
  std::printf("bytes written    : %s\n",
              format_bytes(result.run.bytes_written).c_str());
  if (!result.bundle.dependencies.empty()) {
    std::printf("dependency edges : %zu\n", result.bundle.dependencies.size());
  }

  const std::string out = args.get("out");
  if (!out.empty()) {
    result.bundle.save(out);
    std::printf("bundle saved to  : %s\n", out.c_str());
  }
  const std::string binary_out = args.get("binary-out");
  if (!binary_out.empty()) {
    trace::EventBatch batch;
    for (const trace::RankStream& rs : result.bundle.ranks) {
      for (const trace::TraceEvent& ev : rs.events) {
        batch.append(ev);
      }
    }
    // The .iotb3 extension selects the block-structured container with
    // cold-storage defaults (per-block LZ + CRC); --key additionally
    // encrypts each block and --project splits records into hot + cold
    // column groups. Anything else writes the flat IOTB2 layout.
    const bool v3 = binary_out.size() >= 6 &&
                    binary_out.compare(binary_out.size() - 6, 6, ".iotb3") == 0;
    std::vector<std::uint8_t> bytes;
    if (v3) {
      trace::BinaryOptions options;
      options.compress = true;
      options.checksum = true;
      options.project = !args.get("project").empty();
      const std::string passphrase = args.get("key");
      if (!passphrase.empty()) {
        options.encrypt = true;
        options.key = derive_key(passphrase);
      }
      // --block-records caps records per block (default 4096): smaller
      // blocks mean finer mini-indexes (more skippable) at more per-block
      // overhead.
      bytes = trace::encode_binary_v3(
          batch, options,
          static_cast<std::size_t>(args.get_int("block-records", 4096)));
    } else {
      bytes = trace::encode_binary_v2(batch, trace::BinaryOptions{});
    }
    // Durable write (tmp + fsync + rename): a crash mid-write never
    // leaves a half-container at the target path.
    trace::write_binary_file(binary_out, bytes);
    std::printf("binary trace     : %s (%s, %s)\n", binary_out.c_str(),
                format_bytes(static_cast<Bytes>(bytes.size())).c_str(),
                v3 ? "IOTB3 block-structured, lazy zero-decode view"
                   : "viewable zero-copy");
  }
  return 0;
}

// Per-call tallies keyed by interned name id — one flat vector, no maps.
// Works through the store's public accessor seam, so the zero-copy view
// and the decoded-batch fallback print identical tables.
template <class Acc>
void print_call_table(const Acc& acc) {
  struct CallTally {
    long long count = 0;
    Bytes bytes = 0;
    SimTime time = 0;
  };
  std::vector<CallTally> tallies(acc.string_count());
  const std::size_t n = acc.size();
  for (std::size_t i = 0; i < n; ++i) {
    const auto& rec = acc.record(i);
    CallTally& tally = tallies[rec.name];
    ++tally.count;
    tally.time += rec.duration;
    if (rec.is_io_call()) {
      tally.bytes += rec.bytes;
    }
  }
  std::vector<trace::StrId> order;
  for (trace::StrId id = 0; id < tallies.size(); ++id) {
    if (tallies[id].count > 0) {
      order.push_back(id);
    }
  }
  std::sort(order.begin(), order.end(), [&](trace::StrId a, trace::StrId b) {
    return tallies[a].count > tallies[b].count;
  });

  TextTable table({"Call", "Events", "Bytes", "Total time"});
  for (std::size_t c = 1; c < 4; ++c) {
    table.set_align(c, Align::kRight);
  }
  for (const trace::StrId id : order) {
    const CallTally& tally = tallies[id];
    table.add_row({std::string(acc.string(id)),
                   strprintf("%lld", tally.count), format_bytes(tally.bytes),
                   format_duration(tally.time)});
  }
  std::fputs(table.render().c_str(), stdout);
}

// The IOTB3 footer's per-block mini-index, straight from the view — no
// record block is decoded to print this. For projected containers the Hot
// column shows each block's hot-group extent (what a narrow query pays);
// the trailing line reports the container's stored-vs-decoded footprint.
void print_block_summary(const trace::BlockView& view) {
  TextTable table({"Block", "Records", "Stored", "Hot", "Window (t+)",
                   "Index flags", "Names"});
  for (std::size_t c = 1; c < 4; ++c) {
    table.set_align(c, Align::kRight);
  }
  table.set_align(6, Align::kRight);
  const std::size_t nblocks = view.block_count();
  const SimTime base = nblocks == 0 ? 0 : view.block_min_time(0);
  for (std::size_t b = 0; b < nblocks; ++b) {
    std::string flags;
    if (view.block_has_io_call(b)) {
      flags += "io";
    }
    if (view.block_has_io_bytes(b)) {
      flags += flags.empty() ? "bytes" : ",bytes";
    }
    if (view.block_has_fd_path(b)) {
      flags += flags.empty() ? "fd+path" : ",fd+path";
    }
    std::size_t names = 0;
    for (trace::StrId id = 1; id < view.string_count(); ++id) {
      names += view.block_has_name(b, id) ? 1 : 0;
    }
    table.add_row(
        {strprintf("%zu", b), strprintf("%u", view.block_size(b)),
         format_bytes(static_cast<Bytes>(view.block_stored_len(b))),
         view.projected()
             ? format_bytes(static_cast<Bytes>(view.block_hot_stored_len(b)))
             : "-",
         strprintf("%s .. %s",
                   format_duration(view.block_min_time(b) - base).c_str(),
                   format_duration(view.block_max_time(b) - base).c_str()),
         flags.empty() ? "-" : flags, strprintf("%zu", names)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("block bytes      : %s stored, %s decoded so far%s%s\n",
              format_bytes(
                  static_cast<Bytes>(view.stored_bytes_total())).c_str(),
              format_bytes(
                  static_cast<Bytes>(view.decoded_stored_bytes())).c_str(),
              view.encrypted() ? ", encrypted" : "",
              view.projected() ? ", projected" : "");
}

// The store's per-pool shape, including streaming-ingest state: whether a
// pool is the growing open era or sealed, how many flushes it absorbed,
// and whether a view-backed pool adopted a persisted index footer instead
// of scanning its records.
void print_pool_table(const analysis::UnifiedTraceStore& store) {
  TextTable table(
      {"Pool", "Sources", "Records", "Kind", "State", "Flushes", "Index"});
  for (std::size_t c = 1; c < 3; ++c) {
    table.set_align(c, Align::kRight);
  }
  table.set_align(5, Align::kRight);
  const std::vector<analysis::StorePoolInfo> infos = store.pool_infos();
  for (std::size_t p = 0; p < infos.size(); ++p) {
    const analysis::StorePoolInfo& info = infos[p];
    table.add_row({strprintf("%zu", p), strprintf("%zu", info.source_count),
                   strprintf("%lld", info.records),
                   info.block_backed ? "block"
                   : info.view_backed ? "view"
                                      : "owned",
                   info.open_era ? "open era" : "sealed",
                   strprintf("%zu", info.flushes_absorbed),
                   info.persisted_index ? "adopted" : "scanned"});
  }
  std::fputs(table.render().c_str(), stdout);
}

[[nodiscard]] std::optional<CipherKey> key_from_args(const Args& args) {
  const std::string passphrase = args.get("key");
  if (passphrase.empty()) {
    return std::nullopt;
  }
  return derive_key(passphrase);
}

// Armed `stat` runs add a narrow bytes_in_window query over the middle
// third of the container's time span: one probe that lights up the
// index-skip and (for projected containers) hot-only-decode metrics, so a
// single `stat --metrics-out` report shows what the block mini-indexes
// and column projection actually save. Whole-file stats are unchanged —
// the probe only reads.
void stat_window_probe(const analysis::UnifiedTraceStore& store) {
  const std::vector<analysis::StorePoolInfo> infos = store.pool_infos();
  if (infos.empty() || !infos.front().any) {
    return;
  }
  SimTime begin = infos.front().min_time;
  SimTime end = infos.front().max_time + 1;
  const SimTime third = (end - begin) / 3;
  if (third > 0) {
    begin += third;
    end -= third;
  }
  const obs::MetricsSnapshot before = obs::snapshot();
  const Bytes bytes = store.bytes_in_window(begin, end);
  const obs::MetricsSnapshot probe = obs::delta(before, obs::snapshot());
  const auto metric = [&probe](const char* name) {
    const auto it = probe.values.find(name);
    return it == probe.values.end() ? std::uint64_t{0} : it->second.value;
  };
  std::printf("window probe     : %s transferred in the middle third "
              "(%llu block(s) scanned, %llu skipped by index)\n",
              format_bytes(bytes).c_str(),
              static_cast<unsigned long long>(
                  metric("store.query.segments_scanned")),
              static_cast<unsigned long long>(
                  metric("store.query.segments_skipped")));
}

// `stat` prints a container's shape through the zero-copy readers: the
// file is mmapped and the per-call table is computed straight off the
// fixed-stride records — no EventBatch is ever built. IOTB3 (including
// compressed) goes through the lazy BlockView. Containers the views
// refuse (v1 bodies, v2 compressed or encrypted payloads) are reported
// with the reader's reason and decoded into a batch instead of failing,
// so `stat` works — with one decode — on anything decode_binary_batch
// accepts (`--key` for encrypted files).
int cmd_stat(const Args& args) {
  if (args.positional.empty()) {
    return usage();
  }
  const std::string& path = args.positional.front();
  if (std::filesystem::is_directory(path)) {
    // A store directory: attach (with crash recovery) and print the pool
    // table — the streaming-ingest view of the store, including which
    // attached containers brought a persisted index footer along.
    analysis::UnifiedTraceStore store;
    analysis::AttachOptions options;
    options.key = key_from_args(args);
    const analysis::StoreHealth health = store.attach_dir(path, options);
    std::printf("directory        : %s\n", path.c_str());
    std::printf("attached         : %zu container(s), %zu quarantined\n",
                health.recovered_eras, health.quarantined.size());
    std::size_t adopted = 0;
    for (const analysis::StorePoolInfo& info : store.pool_infos()) {
      adopted += info.persisted_index ? 1 : 0;
    }
    std::printf("indexes adopted  : %zu of %zu pool(s)\n", adopted,
                store.pool_count());
    print_pool_table(store);
    return health.healthy() ? 0 : 1;
  }
  trace::MappedTraceFile file(path);

  std::printf("file             : %s (%s, %s)\n", path.c_str(),
              format_bytes(static_cast<Bytes>(file.size())).c_str(),
              file.is_mapped() ? "mmapped" : "read");
  try {
    if (trace::peek_binary_header(file.bytes()).version == 3) {
      // Block containers tally through the lazy view: even a compressed
      // IOTB3 is never decoded into a batch — blocks stream through the
      // per-block cache, and the summary lines above the table come from
      // the head and footer alone.
      trace::BlockView view(file.bytes(), key_from_args(args));
      std::printf("container        : IOTB3%s%s%s%s, block-structured\n",
                  view.header().compressed ? ", compressed" : "",
                  view.encrypted() ? ", encrypted (per block)" : "",
                  view.projected() ? ", projected (hot+cold columns)" : "",
                  view.header().checksummed
                      ? ", checksummed (per block, on touch)"
                      : "");
      std::printf("records          : %zu in %zu block(s) of up to %u\n",
                  view.size(), view.block_count(),
                  view.block_records_nominal());
      std::printf("string table     : %zu distinct strings, %s\n",
                  view.string_count(),
                  format_bytes(
                      static_cast<Bytes>(view.string_table_bytes())).c_str());
      std::printf("argument ids     : %zu\n", view.arg_id_count());
      if (!args.get("blocks").empty()) {
        print_block_summary(view);
      }
      // Tally through the unified store rather than the bare view so
      // `stat` exercises — and its metrics account for — the same
      // accessor seam every analysis query scans through. The filed view
      // shares the lazy decode cache with the probe above, so no block is
      // decoded twice and the decode metrics cross-check pool_infos()
      // exactly.
      analysis::UnifiedTraceStore store;
      store.ingest_view(std::move(file), std::move(view),
                        {{"framework", "iotb"}, {"application", path}});
      store.with_pool_access(
          0, [](const auto& acc) { print_call_table(acc); });
      if (obs::enabled()) {
        stat_window_probe(store);
      }
      return 0;
    }
    const trace::BatchView view(file.bytes());
    std::printf("container        : IOTB2%s, zero-copy\n",
                view.header().checksummed ? ", checksummed (CRC ok)" : "");
    if (view.header().indexed) {
      if (view.persisted_index().has_value()) {
        const trace::PoolIndexFooter& footer = *view.persisted_index();
        std::printf("index footer     : present (footer CRC ok, %llu "
                    "record(s), span %s)\n",
                    static_cast<unsigned long long>(footer.records),
                    footer.any
                        ? format_duration(footer.max_time - footer.min_time)
                              .c_str()
                        : "empty");
      } else {
        std::printf("index footer     : INVALID (%s) — readers fall back "
                    "to a record scan\n",
                    view.footer_error().c_str());
      }
    }
    std::printf("records          : %zu\n", view.size());
    std::printf("string table     : %zu distinct strings, %s\n",
                view.string_count(),
                format_bytes(
                    static_cast<Bytes>(view.string_table_bytes())).c_str());
    std::printf("argument ids     : %zu\n", view.arg_id_count());
    print_call_table(analysis::ViewAccess{&view});
    return 0;
  } catch (const FormatError& err) {
    // Not view-able — say why (the zero-copy reader's own diagnostic),
    // then tally through the decoder. Containers that are corrupt rather
    // than merely transformed will throw again below, which is the error
    // path (exit 1).
    std::printf("zero-copy        : refused (%s)\n", err.what());
    const trace::BinaryHeader h = trace::peek_binary_header(file.bytes());
    if (h.version == 3 && h.encrypted && !key_from_args(args).has_value()) {
      std::printf("                   (encrypted IOTB3: pass --key "
                  "PASSPHRASE to open it)\n");
    }
    std::printf("                   decoding instead\n");
  }
  const trace::BinaryHeader header = trace::peek_binary_header(file.bytes());
  const trace::EventBatch batch =
      trace::decode_binary_batch(file.bytes(), key_from_args(args));
  std::printf("container        : IOTB%d%s%s%s, decoded\n", header.version,
              header.compressed ? ", compressed" : "",
              header.encrypted ? ", encrypted" : "",
              header.checksummed ? ", checksummed (CRC ok)" : "");
  std::printf("records          : %zu\n", batch.size());
  std::printf("string table     : %zu distinct strings\n",
              batch.pool().size());
  std::printf("argument ids     : %zu\n", batch.arg_ids().size());
  print_call_table(analysis::BatchAccess{&batch});
  return 0;
}

/// File an IOTB container with the store: zero-copy when the view accepts
/// it, decode-then-ingest otherwise (with the reader's refusal reason
/// printed, mirroring `stat`).
void ingest_container(analysis::UnifiedTraceStore& store,
                      const std::string& path, const Args& args) {
  const std::map<std::string, std::string> metadata = {
      {"framework", "iotb"}, {"application", path}};
  // Map and validate exactly once: on success the probed view itself is
  // filed (the pair overload re-checks nothing), on refusal the decode
  // fallback reuses the same mapping. IOTB3 goes through the block view —
  // compressed v3 containers stay undecoded, their blocks stream lazily
  // into the miner.
  trace::MappedTraceFile file(path);
  std::optional<trace::BatchView> probe;
  std::optional<trace::BlockView> block_probe;
  try {
    if (trace::peek_binary_header(file.bytes()).version == 3) {
      block_probe.emplace(file.bytes(), key_from_args(args));
      if (!args.get("blocks").empty()) {
        std::printf("blocks, %s:\n", path.c_str());
        print_block_summary(*block_probe);
      }
    } else {
      probe.emplace(file.bytes());
    }
  } catch (const FormatError& err) {
    const trace::BinaryHeader h = trace::peek_binary_header(file.bytes());
    std::fprintf(stderr,
                 "iotaxo: %s: zero-copy refused (%s); decoding instead%s\n",
                 path.c_str(), err.what(),
                 h.version == 3 && h.encrypted &&
                         !key_from_args(args).has_value()
                     ? " (encrypted IOTB3: pass --key PASSPHRASE to open it)"
                     : "");
    store.ingest(trace::decode_binary_batch(file.bytes(), key_from_args(args)),
                 metadata);
    return;
  }
  if (block_probe.has_value()) {
    store.ingest_view(std::move(file), std::move(*block_probe), metadata);
    return;
  }
  store.ingest_view(std::move(file), std::move(*probe), metadata);
}

void write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr ||
      std::fwrite(text.data(), 1, text.size(), f) != text.size()) {
    if (f != nullptr) {
      std::fclose(f);
    }
    throw IoError("cannot write: " + path);
  }
  std::fclose(f);
}

// `dfg` mines a container into per-rank directly-follows graphs: summary
// and outlier report on stdout, optional DOT/JSON exports, optional phase
// segmentation (--phases) and run-vs-run comparison (--compare).
int cmd_dfg(const Args& args) {
  namespace dfg = analysis::dfg;
  if (args.positional.empty()) {
    return usage();
  }
  const std::string& path = args.positional.front();

  analysis::UnifiedTraceStore store;
  ingest_container(store, path, args);

  dfg::DfgOptions options;
  options.threads = static_cast<std::size_t>(args.get_int("threads", 0));
  const bool phases = !args.get("phases").empty();
  options.keep_sequences = phases;
  if (args.options.contains("rank")) {
    options.rank = static_cast<int>(args.get_int("rank", 0));
  }
  const dfg::Dfg graph = dfg::DfgBuilder(store).build(options);

  // Store shape through the introspection accessor: what fed the miner.
  Bytes pool_bytes = 0;
  long long view_pools = 0;
  for (const analysis::StorePoolInfo& info : store.pool_infos()) {
    pool_bytes += static_cast<Bytes>(info.approx_bytes);
    view_pools += info.view_backed ? 1 : 0;
  }
  std::printf("store            : %zu pool(s) (%lld zero-copy), %s, %lld "
              "events\n",
              store.pool_count(), view_pools,
              format_bytes(pool_bytes).c_str(), store.total_events());
  std::printf("mined            : %zu rank graph(s), %lld kept events, %zu "
              "distinct calls\n",
              graph.ranks.size(), graph.total_events(),
              graph.names.empty() ? 0 : graph.names.size() - 1);

  TextTable table({"Rank", "Events", "Nodes", "Edges", "Transitions",
                   "Hottest edge"});
  for (std::size_t c = 0; c < 5; ++c) {
    table.set_align(c, Align::kRight);
  }
  for (const dfg::RankDfg& r : graph.ranks) {
    long long events = 0;
    for (const auto& [id, stats] : r.nodes) {
      events += stats.count;
    }
    const dfg::EdgeKey* hot = nullptr;
    long long hot_count = 0;
    for (const auto& [key, stats] : r.edges) {
      if (stats.count > hot_count) {
        hot_count = stats.count;
        hot = &key;
      }
    }
    table.add_row(
        {strprintf("%d", r.rank), strprintf("%lld", events),
         strprintf("%zu", r.nodes.size()), strprintf("%zu", r.edges.size()),
         strprintf("%lld", r.transitions()),
         hot == nullptr
             ? "-"
             : strprintf("%s -> %s (%lldx)",
                         std::string(graph.name(hot->first)).c_str(),
                         std::string(graph.name(hot->second)).c_str(),
                         hot_count)});
  }
  std::fputs(table.render().c_str(), stdout);

  const std::vector<int> outliers = dfg::outlier_ranks(graph);
  if (!outliers.empty()) {
    std::string list;
    for (const int r : outliers) {
      list += strprintf("%s%d", list.empty() ? "" : ", ", r);
    }
    std::printf("outlier rank(s)  : %s (edge distribution > 2 sigma from "
                "the mean)\n",
                list.c_str());
  }

  if (phases) {
    const dfg::PhaseSegmenter segmenter(graph);
    for (const dfg::RankDfg& r : graph.ranks) {
      std::printf("phases, rank %d:\n", r.rank);
      TextTable ptable({"#", "Window (t+)", "Events", "Label", "Loop", "Read",
                        "Written"});
      ptable.set_align(2, Align::kRight);
      ptable.set_align(5, Align::kRight);
      ptable.set_align(6, Align::kRight);
      std::size_t n = 0;
      const std::vector<dfg::Phase> rank_phases = segmenter.segment(r.rank);
      // Windows relative to the rank's first event: local_start stamps are
      // wall-clock-derived, and epoch-scale absolutes are unreadable.
      const SimTime base = rank_phases.empty() ? 0 : rank_phases.front().start;
      for (const dfg::Phase& phase : rank_phases) {
        ptable.add_row(
            {strprintf("%zu", n++),
             strprintf("%s .. %s",
                       format_duration(phase.start - base).c_str(),
                       format_duration(phase.end - base).c_str()),
             strprintf("%zu", phase.count), to_string(phase.label),
             phase.loop_period == 0
                 ? "-"
                 : strprintf("%zu calls x %lld", phase.loop_period,
                             phase.loop_iterations),
             format_bytes(phase.read_bytes),
             format_bytes(phase.write_bytes)});
      }
      std::fputs(ptable.render().c_str(), stdout);
    }
  }

  dfg::ExportOptions export_options;
  export_options.rank = options.rank;
  const std::string dot_out = args.get("dot");
  if (!dot_out.empty()) {
    write_text_file(dot_out, dfg::to_dot(graph, export_options));
    std::printf("DOT written      : %s\n", dot_out.c_str());
  }
  const std::string json_out = args.get("json");
  if (!json_out.empty()) {
    write_text_file(json_out, dfg::to_json(graph, export_options));
    std::printf("JSON written     : %s\n", json_out.c_str());
  }

  const std::string other_path = args.get("compare");
  if (!other_path.empty()) {
    analysis::UnifiedTraceStore other_store;
    ingest_container(other_store, other_path, args);
    dfg::DfgOptions other_options = options;
    other_options.keep_sequences = false;
    const dfg::Dfg other = dfg::DfgBuilder(other_store).build(other_options);
    const dfg::DfgComparison cmp = dfg::compare_dfgs(graph, other);
    std::printf("compare          : %s vs %s, mean divergence %.3f over %zu "
                "paired rank(s)\n",
                path.c_str(), other_path.c_str(), cmp.divergence,
                cmp.ranks.size());
    TextTable ctable({"Rank", "Divergence", "Most diverging edge"});
    ctable.set_align(1, Align::kRight);
    for (const dfg::RankDelta& delta : cmp.ranks) {
      // "-" when nothing actually diverges: the top edge of a 0-divergence
      // rank is just the alphabetically-first tie and must not read as a
      // difference.
      const bool diverges =
          !delta.edges.empty() && delta.edges.front().divergence > 0;
      ctable.add_row(
          {strprintf("%d", delta.rank_a), strprintf("%.3f", delta.divergence),
           !diverges ? "-"
                     : strprintf("%s -> %s (%lldx vs %lldx)",
                                 delta.edges.front().from.c_str(),
                                 delta.edges.front().to.c_str(),
                                 delta.edges.front().count_a,
                                 delta.edges.front().count_b)});
    }
    std::fputs(ctable.render().c_str(), stdout);
    if (!cmp.only_in_a.empty() || !cmp.only_in_b.empty()) {
      std::printf("unpaired ranks   : %zu only in %s, %zu only in %s\n",
                  cmp.only_in_a.size(), path.c_str(), cmp.only_in_b.size(),
                  other_path.c_str());
    }
  }
  return 0;
}

int cmd_classify(const Args& args) {
  sim::ClusterParams cparams;
  cparams.node_count = static_cast<int>(args.get_int("ranks", 8));
  const sim::Cluster cluster(cparams);
  taxonomy::Classifier classifier(cluster, {});

  frameworks::LanlTrace lanl;
  frameworks::Tracefs tracefs;
  frameworks::Partrace partrace;
  const std::string table = taxonomy::render_comparison_table({
      classifier.classify(lanl),
      classifier.classify(tracefs),
      classifier.classify(partrace),
  });
  std::fputs(table.c_str(), stdout);
  return 0;
}

int cmd_replay(const Args& args) {
  const std::string in = args.get("in");
  if (in.empty()) {
    return usage();
  }
  const trace::TraceBundle bundle = trace::TraceBundle::load(in);
  int max_rank = 0;
  for (const trace::RankStream& rs : bundle.ranks) {
    max_rank = std::max(max_rank, rs.rank);
  }
  sim::ClusterParams cparams;
  cparams.node_count = max_rank + 1;
  const sim::Cluster cluster(cparams);

  replay::ReplayOptions options;
  const std::string sync = args.get("sync", "barriers");
  options.pseudo.sync = sync == "deps"  ? replay::SyncStrategy::kDependencies
                        : sync == "none" ? replay::SyncStrategy::kNone
                                         : replay::SyncStrategy::kBarriers;
  replay::Replayer replayer(cluster, std::make_shared<pfs::Pfs>());
  const replay::ReplayResult result = replayer.replay(bundle, options);
  std::printf("replayed %zu ranks, %s written, elapsed %s (sync: %s)\n",
              bundle.ranks.size(),
              format_bytes(result.run.bytes_written).c_str(),
              format_duration(result.run.elapsed).c_str(), sync.c_str());
  return 0;
}

int cmd_analyze(const Args& args) {
  analysis::UnifiedTraceStore store;
  for (const char* key : {"in", "in2", "in3"}) {
    const std::string dir = args.get(key);
    if (!dir.empty()) {
      store.ingest(trace::TraceBundle::load(dir));
    }
  }
  if (store.sources().empty()) {
    return usage();
  }
  std::fputs(analysis::render_report(store).c_str(), stdout);
  return 0;
}

int cmd_anonymize(const Args& args) {
  const std::string in = args.get("in");
  const std::string out = args.get("out");
  if (in.empty() || out.empty()) {
    return usage();
  }
  const trace::TraceBundle bundle = trace::TraceBundle::load(in);
  trace::TraceBundle scrubbed;
  if (args.get("mode", "random") == "encrypt") {
    anon::EncryptingAnonymizer anonymizer(
        anon::FieldPolicy{}, args.get("key", "iotaxo-default-key"));
    scrubbed = anonymizer.apply(bundle);
  } else {
    anon::RandomizingAnonymizer anonymizer(
        anon::FieldPolicy{},
        static_cast<std::uint64_t>(args.get_int("seed", 0x5EED)));
    scrubbed = anonymizer.apply(bundle);
  }
  scrubbed.save(out);
  std::printf("anonymized bundle written to %s (%lld events)\n", out.c_str(),
              scrubbed.total_events());
  return 0;
}

/// Era sequence number from a container name ("era-7.iotb3" -> 7), used to
/// keep fsck's report and repaired manifest in on-disk commit order.
[[nodiscard]] std::optional<std::uint64_t> parse_era_seq(
    const std::string& name) {
  const std::string stem = std::filesystem::path(name).stem().string();
  const std::size_t dash = stem.rfind('-');
  if (dash == std::string::npos || dash + 1 == stem.size()) {
    return std::nullopt;
  }
  std::uint64_t seq = 0;
  for (std::size_t i = dash + 1; i < stem.size(); ++i) {
    if (stem[i] < '0' || stem[i] > '9') {
      return std::nullopt;
    }
    seq = seq * 10 + static_cast<std::uint64_t>(stem[i] - '0');
  }
  return seq;
}

/// Deep-validate one container: envelope, footer, and every block's CRC
/// (decoding each block exactly once — for projected v3 both column
/// groups). Returns the list of problems; empty means healthy.
[[nodiscard]] std::vector<std::string> validate_container(
    const trace::MappedTraceFile& file, const std::optional<CipherKey>& key) {
  std::vector<std::string> problems;
  trace::BinaryHeader header;
  try {
    header = trace::peek_binary_header(file.bytes());
  } catch (const Error& err) {
    problems.emplace_back(err.what());
    return problems;
  }
  if (header.version == 3) {
    std::optional<trace::BlockView> view;
    try {
      view.emplace(file.bytes(), key);
    } catch (const Error& err) {
      // Envelope, head, footer, or key check — nothing block-level is
      // reachable past this.
      problems.emplace_back(err.what());
      return problems;
    }
    for (std::size_t b = 0; b < view->block_count(); ++b) {
      try {
        (void)view->block_bytes(b);
      } catch (const Error& err) {
        problems.push_back(strprintf("block %zu: %s", b, err.what()));
      }
    }
    return problems;
  }
  if (header.version == 2 && !header.compressed && !header.encrypted) {
    try {
      const trace::BatchView view(file.bytes());
      (void)view.record_bytes();  // forces the deferred whole-body CRC
      // An indexed container whose footer failed its own CRC/shape check
      // still opens (readers degrade to a record scan), but fsck's job is
      // to surface the damage.
      if (view.header().indexed && !view.persisted_index().has_value()) {
        problems.push_back("index footer: " + view.footer_error());
      }
    } catch (const Error& err) {
      problems.emplace_back(err.what());
    }
    return problems;
  }
  // v1 and transformed v2 have no zero-copy validator; a full decode
  // exercises every checksum and length field they carry.
  try {
    (void)trace::decode_binary_batch(file.bytes(), key);
  } catch (const Error& err) {
    problems.emplace_back(err.what());
  }
  return problems;
}

// `fsck` is the offline half of the store's crash-recovery story: where
// UnifiedTraceStore::attach_dir quarantines just enough to serve queries,
// fsck decodes *every block of every container* against its CRC and checks
// each committed file against the manifest's size/checksum/seq record.
// Plain runs are read-only and exit non-zero when anything is damaged;
// `--repair` removes orphaned .tmp files and rewrites MANIFEST.iotm to
// commit exactly the containers that validated (adopting healthy files a
// crash left uncommitted, dropping damaged ones into quarantine).
int cmd_fsck(const Args& args) {
  namespace fs = std::filesystem;
  if (args.positional.empty()) {
    return usage();
  }
  const std::string& target = args.positional.front();
  const std::optional<CipherKey> key = key_from_args(args);
  const bool repair = !args.get("repair").empty();

  if (!fs::is_directory(target)) {
    const trace::MappedTraceFile file(target);
    const std::vector<std::string> problems = validate_container(file, key);
    if (problems.empty()) {
      std::printf("%s: ok (%s, every block CRC verified)\n", target.c_str(),
                  format_bytes(static_cast<Bytes>(file.size())).c_str());
      return 0;
    }
    for (const std::string& p : problems) {
      std::printf("%s: DAMAGED: %s\n", target.c_str(), p.c_str());
    }
    return 1;
  }

  // Directory sweep, mirroring attach_dir's recovery walk.
  std::vector<std::string> tmps;
  std::vector<std::string> names;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(target, ec)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      tmps.push_back(name);
    } else if (name != analysis::kManifestFileName &&
               entry.path().extension().string().rfind(".iotb", 0) == 0) {
      names.push_back(name);
    }
  }
  if (ec) {
    throw IoError("cannot read directory '" + target + "': " + ec.message());
  }
  std::sort(tmps.begin(), tmps.end());
  std::sort(names.begin(), names.end(),
            [](const std::string& a, const std::string& b) {
              const auto sa = parse_era_seq(a);
              const auto sb = parse_era_seq(b);
              if (sa.has_value() != sb.has_value()) {
                return sa.has_value();  // unnumbered files sort last
              }
              if (sa.has_value() && *sa != *sb) {
                return *sa < *sb;
              }
              return a < b;
            });

  std::optional<analysis::StoreManifest> manifest;
  std::vector<analysis::QuarantinedFile> quarantined;
  try {
    manifest = analysis::StoreManifest::load(target);
  } catch (const Error& err) {
    quarantined.push_back({std::string(analysis::kManifestFileName),
                           std::string(err.what())});
  }

  // Deep-validate everything present, recording what a repaired manifest
  // should commit. Committed entries are additionally checked against the
  // manifest's recorded size and whole-file CRC.
  std::size_t healthy = 0;
  std::vector<analysis::ManifestEntry> committable;
  std::uint64_t next_seq = manifest.has_value() ? manifest->next_seq : 0;
  for (const std::string& name : names) {
    const std::string path = target + "/" + name;
    const analysis::ManifestEntry* listed =
        manifest.has_value() ? manifest->find(name) : nullptr;
    std::vector<std::string> problems;
    std::uint32_t file_crc = 0;
    std::uint64_t file_size = 0;
    try {
      const trace::MappedTraceFile file(path);
      file_size = file.size();
      file_crc = crc32(file.bytes());
      if (listed != nullptr && listed->size != file_size) {
        problems.push_back(strprintf(
            "size %llu does not match the manifest's %llu",
            static_cast<unsigned long long>(file_size),
            static_cast<unsigned long long>(listed->size)));
      } else if (listed != nullptr && listed->crc != file_crc) {
        problems.emplace_back("file CRC does not match the manifest");
      }
      const std::vector<std::string> deep = validate_container(file, key);
      problems.insert(problems.end(), deep.begin(), deep.end());
    } catch (const Error& err) {
      problems.emplace_back(err.what());
    }
    if (!problems.empty()) {
      std::string reason;
      for (const std::string& p : problems) {
        reason += (reason.empty() ? "" : "; ") + p;
      }
      quarantined.push_back({name, reason});
      continue;
    }
    ++healthy;
    const std::uint64_t seq =
        listed != nullptr ? listed->seq
                          : parse_era_seq(name).value_or(next_seq);
    committable.push_back({name, file_size, file_crc, seq});
    next_seq = std::max(next_seq, seq + 1);
    if (listed == nullptr && manifest.has_value() && !repair) {
      std::printf("note             : %s validates but is not committed in "
                  "the manifest (crash before the manifest update?); "
                  "--repair adopts it\n",
                  name.c_str());
    }
  }
  if (manifest.has_value()) {
    for (const analysis::ManifestEntry& e : manifest->entries) {
      if (!fs::exists(target + "/" + e.name)) {
        quarantined.push_back(
            {e.name, "listed in manifest but missing on disk"});
      }
    }
  }

  std::printf("directory        : %s\n", target.c_str());
  std::printf("manifest         : %s\n",
              manifest.has_value()
                  ? strprintf("%zu committed entr%s, next era seq %llu",
                              manifest->entries.size(),
                              manifest->entries.size() == 1 ? "y" : "ies",
                              static_cast<unsigned long long>(
                                  manifest->next_seq)).c_str()
                  : (quarantined.empty() || quarantined.front().file !=
                                                analysis::kManifestFileName
                         ? "absent"
                         : "CORRUPT"));
  std::printf("healthy          : %zu container(s), every block CRC "
              "verified\n",
              healthy);
  for (const std::string& tmp : tmps) {
    std::printf("torn tmp         : %s%s\n", tmp.c_str(),
                repair ? " (removed)" : "");
  }
  for (const analysis::QuarantinedFile& q : quarantined) {
    std::printf("quarantined      : %s — %s\n", q.file.c_str(),
                q.reason.c_str());
  }

  if (repair) {
    for (const std::string& tmp : tmps) {
      fs::remove(target + "/" + tmp);
    }
    analysis::StoreManifest repaired;
    repaired.next_seq = next_seq;
    repaired.entries = std::move(committable);
    repaired.store(target);
    std::printf("repaired         : manifest rewritten with %zu entr%s "
                "(next era seq %llu)\n",
                repaired.entries.size(),
                repaired.entries.size() == 1 ? "y" : "ies",
                static_cast<unsigned long long>(repaired.next_seq));
  }
  return quarantined.empty() && tmps.empty() ? 0 : 1;
}

// `stream` exercises the streaming-ingest path end to end, and is the
// driver behind check_build.sh --stream. The capture half synthesizes
// --flushes small flushes (--events each) and feeds them through a
// streaming store — the pool table printed at the end shows the open era
// and how few pools the flush storm produced — while mirroring the same
// records into era-sized IOTB2 containers written to --dir with checksums
// and persisted index footers. The --attach half is the restart: a fresh
// store attaches the directory, and the "indexes adopted" line proves the
// persisted footers were adopted instead of rescanned.
int cmd_stream(const Args& args) {
  const std::string dir = args.get("dir");
  if (dir.empty()) {
    return usage();
  }
  if (!args.get("attach").empty()) {
    obs::set_enabled(true);
    const obs::MetricsSnapshot before = obs::snapshot();
    analysis::UnifiedTraceStore store;
    analysis::AttachOptions options;
    options.key = key_from_args(args);
    const analysis::StoreHealth health = store.attach_dir(dir, options);
    const obs::MetricsSnapshot deltas = obs::delta(before, obs::snapshot());
    const auto metric = [&deltas](const char* name) {
      const auto it = deltas.values.find(name);
      return it == deltas.values.end() ? std::uint64_t{0} : it->second.value;
    };
    std::printf("attached         : %zu container(s), %zu quarantined\n",
                health.recovered_eras, health.quarantined.size());
    std::printf("pools            : %zu\n", store.pool_count());
    std::printf("indexes adopted  : %llu\n",
                static_cast<unsigned long long>(
                    metric("ingest.index_adopted")));
    std::printf("indexes rebuilt  : %llu\n",
                static_cast<unsigned long long>(
                    metric("ingest.index_rebuilt")));
    print_pool_table(store);
    return health.healthy() ? 0 : 1;
  }

  const auto flushes = static_cast<std::size_t>(args.get_int("flushes", 1000));
  const auto events = static_cast<std::size_t>(args.get_int("events", 64));
  const auto era_bytes =
      static_cast<std::size_t>(args.get_int("era-bytes", 4 * kMiB));
  std::filesystem::create_directories(dir);

  analysis::UnifiedTraceStore store;
  analysis::StreamIngestOptions sopts;
  sopts.era_bytes = era_bytes;
  store.set_stream_ingest(sopts);

  trace::BinaryOptions bopts;
  bopts.checksum = true;
  bopts.index_footer = true;
  trace::EventBatch era_batch;
  std::size_t eras_written = 0;
  const auto write_era = [&] {
    if (era_batch.empty()) {
      return;
    }
    trace::write_binary_file(
        strprintf("%s/era-%zu.iotb", dir.c_str(), eras_written),
        trace::encode_binary_v2(era_batch, bopts));
    era_batch.reset();
    ++eras_written;
  };

  SimTime now = 0;
  for (std::size_t f = 0; f < flushes; ++f) {
    trace::EventBatch flush;
    for (std::size_t e = 0; e < events; ++e) {
      trace::TraceEvent ev;
      ev.name = e % 2 == 0 ? "SYS_write" : "SYS_read";
      ev.rank = static_cast<int>(e % 4);
      ev.node = ev.rank;
      ev.local_start = now;
      ev.duration = 500;
      ev.path = "/scratch/stream.dat";
      ev.fd = 3;
      ev.bytes = 4 * kKiB;
      ev.ret = static_cast<long long>(ev.bytes);
      now += 1000;
      flush.append(ev);
    }
    store.ingest(flush, {{"framework", "stream"}, {"application", "smoke"}});
    era_batch.append(flush);
    // Seal the on-disk era at the same granularity the store seals its
    // open batch: 81 bytes of fixed record plus change per event.
    if (era_batch.size() * 96 >= era_bytes) {
      write_era();
    }
  }
  write_era();

  std::printf("flushes          : %zu of %zu event(s)\n", flushes, events);
  std::printf("pools            : %zu (open era included)\n",
              store.pool_count());
  std::printf("era files        : %zu written to %s (indexed, checksummed)\n",
              eras_written, dir.c_str());
  print_pool_table(store);
  return 0;
}

// `metrics` prints the full self-metrics catalog — every name the toolkit
// registers at startup, so scripts can discover the key set (and the
// naming convention, layer.component.metric) without running a workload.
// Values are whatever this fresh process has accumulated: mostly zero.
int cmd_metrics(const Args& args) {
  obs::set_enabled(true);
  const obs::MetricsSnapshot snap = obs::snapshot();
  const std::string out = args.get("out");
  if (!out.empty()) {
    write_text_file(out, obs::to_json(snap) + "\n");
    std::printf("metrics JSON     : %s\n", out.c_str());
    return 0;
  }
  std::fputs(obs::render_text(snap).c_str(), stdout);
  std::printf(
      "\narm a run with   : --metrics (table) or --metrics-out FILE.json on "
      "any subcommand,\n"
      "                   or IOTAXO_METRICS=stderr|FILE.json for an at-exit "
      "dump\n");
  return 0;
}

int run_command(const Args& args) {
  if (args.command == "trace") {
    return cmd_trace(args);
  }
  if (args.command == "classify") {
    return cmd_classify(args);
  }
  if (args.command == "replay") {
    return cmd_replay(args);
  }
  if (args.command == "analyze") {
    return cmd_analyze(args);
  }
  if (args.command == "anonymize") {
    return cmd_anonymize(args);
  }
  if (args.command == "stat") {
    return cmd_stat(args);
  }
  if (args.command == "dfg") {
    return cmd_dfg(args);
  }
  if (args.command == "fsck") {
    return cmd_fsck(args);
  }
  if (args.command == "stream") {
    return cmd_stream(args);
  }
  if (args.command == "metrics") {
    return cmd_metrics(args);
  }
  return usage();
}

/// The per-run metrics surface: what changed between arming (before the
/// command ran) and now, as a table (--metrics) and/or JSON file
/// (--metrics-out). Called on the error path too — a failed run's partial
/// metrics are exactly what one wants when diagnosing it.
void dump_run_metrics(const Args& args, const obs::MetricsSnapshot& before) {
  const obs::MetricsSnapshot deltas = obs::delta(before, obs::snapshot());
  const std::string out = args.get("metrics-out");
  if (!out.empty()) {
    write_text_file(out, obs::to_json(deltas) + "\n");
    std::printf("metrics JSON     : %s\n", out.c_str());
  }
  if (!args.get("metrics").empty()) {
    std::fputs(obs::render_text(deltas).c_str(), stdout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    // Only the container commands (`stat`, `dfg`, `fsck`) take a
    // positional argument — exactly one; any other stray token means the
    // user dropped an --option (e.g. `dfg a.iotb b.iotb` instead of
    // `--compare`) and must not be silently ignored.
    const bool takes_file = args.command == "stat" ||
                            args.command == "dfg" || args.command == "fsck";
    if (args.positional.size() > (takes_file ? 1u : 0u)) {
      throw ConfigError(
          strprintf("expected %s, got '%s'",
                    takes_file ? "one FILE.iotb" : "--option",
                    args.positional[takes_file ? 1 : 0].c_str()));
    }
    const bool want_metrics = !args.get("metrics").empty() ||
                              !args.get("metrics-out").empty();
    if (!want_metrics) {
      return run_command(args);
    }
    // Arm before the run so the whole command is covered, snapshot so the
    // report is this run's deltas (an IOTAXO_METRICS at-exit dump, if also
    // set, still reports process totals).
    obs::set_enabled(true);
    const obs::MetricsSnapshot before = obs::snapshot();
    try {
      const int rc = run_command(args);
      dump_run_metrics(args, before);
      return rc;
    } catch (...) {
      try {
        dump_run_metrics(args, before);
      } catch (...) {
        // Reporting must not mask the run's own error.
      }
      throw;
    }
  } catch (const Error& err) {
    std::fprintf(stderr, "iotaxo: %s\n", err.what());
    return 1;
  }
}
