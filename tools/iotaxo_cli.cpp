// iotaxo — command-line front end to the toolkit.
//
//   iotaxo trace    --framework lanl|tracefs|partrace --workload mpiio|meta
//                   [--pattern strided|nonstrided|nn] [--ranks N]
//                   [--block BYTES] [--total BYTES] [--out DIR]
//   iotaxo classify [--ranks N]
//   iotaxo replay   --in DIR [--sync barriers|deps|none]
//   iotaxo analyze  --in DIR [DIR...]
//   iotaxo anonymize --in DIR --out DIR [--mode random|encrypt]
//
// Bundles are the on-disk trace format (one text trace per rank plus TSV
// sidecars) produced by `trace --out` and consumed by replay/analyze/
// anonymize — the full LANL trace-distribution workflow from one binary.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "analysis/aggregate_timing.h"
#include "analysis/call_summary.h"
#include "analysis/report.h"
#include "analysis/unified_store.h"
#include "anon/anonymizer.h"
#include "frameworks/lanl_trace.h"
#include "frameworks/partrace.h"
#include "frameworks/tracefs.h"
#include "fs/memfs.h"
#include "pfs/pfs.h"
#include "replay/replayer.h"
#include "sim/cluster.h"
#include "taxonomy/classifier.h"
#include "util/error.h"
#include "util/strings.h"
#include "util/table.h"
#include "workload/io_intensive.h"
#include "workload/mpi_io_test.h"

using namespace iotaxo;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  [[nodiscard]] long long get_int(const std::string& key,
                                  long long fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback
                               : std::strtoll(it->second.c_str(), nullptr, 10);
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) {
    args.command = argv[1];
  }
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      throw ConfigError(strprintf("expected --option, got '%s'", argv[i]));
    }
    args.options[argv[i] + 2] = argv[i + 1];
  }
  return args;
}

int usage() {
  std::fputs(
      "usage:\n"
      "  iotaxo trace     --framework lanl|tracefs|partrace --workload "
      "mpiio|meta\n"
      "                   [--pattern strided|nonstrided|nn] [--ranks N]\n"
      "                   [--block BYTES] [--total BYTES] [--out DIR]\n"
      "  iotaxo classify  [--ranks N]\n"
      "  iotaxo replay    --in DIR [--sync barriers|deps|none]\n"
      "  iotaxo analyze   --in DIR [--in2 DIR] [--in3 DIR]\n"
      "  iotaxo anonymize --in DIR --out DIR [--mode random|encrypt]\n",
      stderr);
  return 2;
}

[[nodiscard]] frameworks::FrameworkPtr make_framework(const std::string& name) {
  if (name == "lanl") {
    return std::make_shared<frameworks::LanlTrace>();
  }
  if (name == "tracefs") {
    return std::make_shared<frameworks::Tracefs>();
  }
  if (name == "partrace") {
    return std::make_shared<frameworks::Partrace>();
  }
  throw ConfigError("unknown framework: " + name + " (lanl|tracefs|partrace)");
}

[[nodiscard]] mpi::Job make_workload(const Args& args, int ranks) {
  const std::string kind = args.get("workload", "mpiio");
  if (kind == "mpiio") {
    workload::MpiIoTestParams params;
    params.nranks = ranks;
    const std::string pattern = args.get("pattern", "strided");
    params.pattern = pattern == "nn"           ? workload::Pattern::kNtoN
                     : pattern == "nonstrided" ? workload::Pattern::kNto1NonStrided
                                               : workload::Pattern::kNto1Strided;
    params.block = args.get_int("block", 256 * kKiB);
    params.total_bytes = args.get_int("total", 256 * kMiB);
    return workload::make_mpi_io_test(params);
  }
  if (kind == "meta") {
    workload::IoIntensiveParams params;
    params.nranks = std::min(ranks, 4);
    params.files_per_rank = static_cast<int>(args.get_int("files", 200));
    return workload::make_io_intensive(params);
  }
  throw ConfigError("unknown workload: " + kind + " (mpiio|meta)");
}

int cmd_trace(const Args& args) {
  const int ranks = static_cast<int>(args.get_int("ranks", 8));
  sim::ClusterParams cparams;
  cparams.node_count = ranks;
  const sim::Cluster cluster(cparams);

  const auto framework = make_framework(args.get("framework", "lanl"));
  const mpi::Job job = make_workload(args, ranks);

  // Tracefs cannot mount the parallel FS out of the box; route metadata
  // workloads (and tracefs) to the local FS, everything else to the PFS.
  fs::VfsPtr vfs;
  if (framework->supports_fs(fs::FsKind::kParallel) &&
      args.get("workload", "mpiio") == "mpiio") {
    vfs = std::make_shared<pfs::Pfs>();
  } else {
    vfs = std::make_shared<fs::MemFs>();
  }

  frameworks::TraceJobOptions options;
  options.store_raw_streams = true;
  const frameworks::TraceRunResult result =
      framework->trace(cluster, job, vfs, options);

  std::printf("framework        : %s\n", framework->name().c_str());
  std::printf("application      : %s\n", job.cmdline.c_str());
  std::printf("events captured  : %lld\n", result.bundle.total_events());
  std::printf("app elapsed      : %s\n",
              format_duration(result.run.elapsed).c_str());
  std::printf("apparent elapsed : %s\n",
              format_duration(result.apparent_elapsed).c_str());
  std::printf("bytes written    : %s\n",
              format_bytes(result.run.bytes_written).c_str());
  if (!result.bundle.dependencies.empty()) {
    std::printf("dependency edges : %zu\n", result.bundle.dependencies.size());
  }

  const std::string out = args.get("out");
  if (!out.empty()) {
    result.bundle.save(out);
    std::printf("bundle saved to  : %s\n", out.c_str());
  }
  return 0;
}

int cmd_classify(const Args& args) {
  sim::ClusterParams cparams;
  cparams.node_count = static_cast<int>(args.get_int("ranks", 8));
  const sim::Cluster cluster(cparams);
  taxonomy::Classifier classifier(cluster, {});

  frameworks::LanlTrace lanl;
  frameworks::Tracefs tracefs;
  frameworks::Partrace partrace;
  const std::string table = taxonomy::render_comparison_table({
      classifier.classify(lanl),
      classifier.classify(tracefs),
      classifier.classify(partrace),
  });
  std::fputs(table.c_str(), stdout);
  return 0;
}

int cmd_replay(const Args& args) {
  const std::string in = args.get("in");
  if (in.empty()) {
    return usage();
  }
  const trace::TraceBundle bundle = trace::TraceBundle::load(in);
  int max_rank = 0;
  for (const trace::RankStream& rs : bundle.ranks) {
    max_rank = std::max(max_rank, rs.rank);
  }
  sim::ClusterParams cparams;
  cparams.node_count = max_rank + 1;
  const sim::Cluster cluster(cparams);

  replay::ReplayOptions options;
  const std::string sync = args.get("sync", "barriers");
  options.pseudo.sync = sync == "deps"  ? replay::SyncStrategy::kDependencies
                        : sync == "none" ? replay::SyncStrategy::kNone
                                         : replay::SyncStrategy::kBarriers;
  replay::Replayer replayer(cluster, std::make_shared<pfs::Pfs>());
  const replay::ReplayResult result = replayer.replay(bundle, options);
  std::printf("replayed %zu ranks, %s written, elapsed %s (sync: %s)\n",
              bundle.ranks.size(),
              format_bytes(result.run.bytes_written).c_str(),
              format_duration(result.run.elapsed).c_str(), sync.c_str());
  return 0;
}

int cmd_analyze(const Args& args) {
  analysis::UnifiedTraceStore store;
  for (const char* key : {"in", "in2", "in3"}) {
    const std::string dir = args.get(key);
    if (!dir.empty()) {
      store.ingest(trace::TraceBundle::load(dir));
    }
  }
  if (store.sources().empty()) {
    return usage();
  }
  std::fputs(analysis::render_report(store).c_str(), stdout);
  return 0;
}

int cmd_anonymize(const Args& args) {
  const std::string in = args.get("in");
  const std::string out = args.get("out");
  if (in.empty() || out.empty()) {
    return usage();
  }
  const trace::TraceBundle bundle = trace::TraceBundle::load(in);
  trace::TraceBundle scrubbed;
  if (args.get("mode", "random") == "encrypt") {
    anon::EncryptingAnonymizer anonymizer(
        anon::FieldPolicy{}, args.get("key", "iotaxo-default-key"));
    scrubbed = anonymizer.apply(bundle);
  } else {
    anon::RandomizingAnonymizer anonymizer(
        anon::FieldPolicy{},
        static_cast<std::uint64_t>(args.get_int("seed", 0x5EED)));
    scrubbed = anonymizer.apply(bundle);
  }
  scrubbed.save(out);
  std::printf("anonymized bundle written to %s (%lld events)\n", out.c_str(),
              scrubbed.total_events());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    if (args.command == "trace") {
      return cmd_trace(args);
    }
    if (args.command == "classify") {
      return cmd_classify(args);
    }
    if (args.command == "replay") {
      return cmd_replay(args);
    }
    if (args.command == "analyze") {
      return cmd_analyze(args);
    }
    if (args.command == "anonymize") {
      return cmd_anonymize(args);
    }
    return usage();
  } catch (const Error& err) {
    std::fprintf(stderr, "iotaxo: %s\n", err.what());
    return 1;
  }
}
