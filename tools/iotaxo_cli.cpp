// iotaxo — command-line front end to the toolkit.
//
//   iotaxo trace    --framework lanl|tracefs|partrace --workload mpiio|meta
//                   [--pattern strided|nonstrided|nn] [--ranks N]
//                   [--block BYTES] [--total BYTES] [--out DIR]
//                   [--binary-out FILE.iotb]
//   iotaxo classify [--ranks N]
//   iotaxo replay   --in DIR [--sync barriers|deps|none]
//   iotaxo analyze  --in DIR [DIR...]
//   iotaxo anonymize --in DIR --out DIR [--mode random|encrypt]
//   iotaxo stat     FILE.iotb
//
// Bundles are the on-disk trace format (one text trace per rank plus TSV
// sidecars) produced by `trace --out` and consumed by replay/analyze/
// anonymize — the full LANL trace-distribution workflow from one binary.
// `trace --binary-out` additionally writes the run as one IOTB2 container,
// which `stat` inspects through the zero-copy reader (mmap + BatchView —
// no decode).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "analysis/aggregate_timing.h"
#include "analysis/call_summary.h"
#include "analysis/report.h"
#include "analysis/unified_store.h"
#include "anon/anonymizer.h"
#include "frameworks/lanl_trace.h"
#include "frameworks/partrace.h"
#include "frameworks/tracefs.h"
#include "fs/memfs.h"
#include "pfs/pfs.h"
#include "replay/replayer.h"
#include "sim/cluster.h"
#include "taxonomy/classifier.h"
#include "trace/binary_format.h"
#include "trace/event_batch.h"
#include "trace/record_view.h"
#include "util/error.h"
#include "util/strings.h"
#include "util/table.h"
#include "workload/io_intensive.h"
#include "workload/mpi_io_test.h"

using namespace iotaxo;

namespace {

struct Args {
  std::string command;
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  [[nodiscard]] long long get_int(const std::string& key,
                                  long long fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback
                               : std::strtoll(it->second.c_str(), nullptr, 10);
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) {
    args.command = argv[1];
  }
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      if (i + 1 >= argc) {
        throw ConfigError(strprintf("missing value for '%s'", argv[i]));
      }
      args.options[argv[i] + 2] = argv[i + 1];
      ++i;
    } else {
      args.positional.emplace_back(argv[i]);
    }
  }
  return args;
}

int usage() {
  std::fputs(
      "usage:\n"
      "  iotaxo trace     --framework lanl|tracefs|partrace --workload "
      "mpiio|meta\n"
      "                   [--pattern strided|nonstrided|nn] [--ranks N]\n"
      "                   [--block BYTES] [--total BYTES] [--out DIR]\n"
      "                   [--binary-out FILE.iotb]\n"
      "  iotaxo classify  [--ranks N]\n"
      "  iotaxo replay    --in DIR [--sync barriers|deps|none]\n"
      "  iotaxo analyze   --in DIR [--in2 DIR] [--in3 DIR]\n"
      "  iotaxo anonymize --in DIR --out DIR [--mode random|encrypt]\n"
      "  iotaxo stat      FILE.iotb\n",
      stderr);
  return 2;
}

[[nodiscard]] frameworks::FrameworkPtr make_framework(const std::string& name) {
  if (name == "lanl") {
    return std::make_shared<frameworks::LanlTrace>();
  }
  if (name == "tracefs") {
    return std::make_shared<frameworks::Tracefs>();
  }
  if (name == "partrace") {
    return std::make_shared<frameworks::Partrace>();
  }
  throw ConfigError("unknown framework: " + name + " (lanl|tracefs|partrace)");
}

[[nodiscard]] mpi::Job make_workload(const Args& args, int ranks) {
  const std::string kind = args.get("workload", "mpiio");
  if (kind == "mpiio") {
    workload::MpiIoTestParams params;
    params.nranks = ranks;
    const std::string pattern = args.get("pattern", "strided");
    params.pattern = pattern == "nn"           ? workload::Pattern::kNtoN
                     : pattern == "nonstrided" ? workload::Pattern::kNto1NonStrided
                                               : workload::Pattern::kNto1Strided;
    params.block = args.get_int("block", 256 * kKiB);
    params.total_bytes = args.get_int("total", 256 * kMiB);
    return workload::make_mpi_io_test(params);
  }
  if (kind == "meta") {
    workload::IoIntensiveParams params;
    params.nranks = std::min(ranks, 4);
    params.files_per_rank = static_cast<int>(args.get_int("files", 200));
    return workload::make_io_intensive(params);
  }
  throw ConfigError("unknown workload: " + kind + " (mpiio|meta)");
}

int cmd_trace(const Args& args) {
  const int ranks = static_cast<int>(args.get_int("ranks", 8));
  sim::ClusterParams cparams;
  cparams.node_count = ranks;
  const sim::Cluster cluster(cparams);

  const auto framework = make_framework(args.get("framework", "lanl"));
  const mpi::Job job = make_workload(args, ranks);

  // Tracefs cannot mount the parallel FS out of the box; route metadata
  // workloads (and tracefs) to the local FS, everything else to the PFS.
  fs::VfsPtr vfs;
  if (framework->supports_fs(fs::FsKind::kParallel) &&
      args.get("workload", "mpiio") == "mpiio") {
    vfs = std::make_shared<pfs::Pfs>();
  } else {
    vfs = std::make_shared<fs::MemFs>();
  }

  frameworks::TraceJobOptions options;
  options.store_raw_streams = true;
  const frameworks::TraceRunResult result =
      framework->trace(cluster, job, vfs, options);

  std::printf("framework        : %s\n", framework->name().c_str());
  std::printf("application      : %s\n", job.cmdline.c_str());
  std::printf("events captured  : %lld\n", result.bundle.total_events());
  std::printf("app elapsed      : %s\n",
              format_duration(result.run.elapsed).c_str());
  std::printf("apparent elapsed : %s\n",
              format_duration(result.apparent_elapsed).c_str());
  std::printf("bytes written    : %s\n",
              format_bytes(result.run.bytes_written).c_str());
  if (!result.bundle.dependencies.empty()) {
    std::printf("dependency edges : %zu\n", result.bundle.dependencies.size());
  }

  const std::string out = args.get("out");
  if (!out.empty()) {
    result.bundle.save(out);
    std::printf("bundle saved to  : %s\n", out.c_str());
  }
  const std::string binary_out = args.get("binary-out");
  if (!binary_out.empty()) {
    trace::EventBatch batch;
    for (const trace::RankStream& rs : result.bundle.ranks) {
      for (const trace::TraceEvent& ev : rs.events) {
        batch.append(ev);
      }
    }
    const std::vector<std::uint8_t> bytes =
        trace::encode_binary_v2(batch, trace::BinaryOptions{});
    std::FILE* f = std::fopen(binary_out.c_str(), "wb");
    if (f == nullptr ||
        std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
      if (f != nullptr) {
        std::fclose(f);
      }
      throw IoError("cannot write binary trace: " + binary_out);
    }
    std::fclose(f);
    std::printf("binary trace     : %s (%s, viewable zero-copy)\n",
                binary_out.c_str(), format_bytes(
                    static_cast<Bytes>(bytes.size())).c_str());
  }
  return 0;
}

// `stat` prints a container's shape through the zero-copy reader: the file
// is mmapped and the per-call table is computed straight off the
// fixed-stride records — no EventBatch is ever built.
int cmd_stat(const Args& args) {
  if (args.positional.empty()) {
    return usage();
  }
  const std::string& path = args.positional.front();
  const trace::MappedTraceFile file(path);
  const trace::BatchView view(file.bytes());

  std::printf("file             : %s (%s, %s)\n", path.c_str(),
              format_bytes(static_cast<Bytes>(file.size())).c_str(),
              file.is_mapped() ? "mmapped" : "read");
  std::printf("container        : IOTB2%s\n",
              view.header().checksummed ? ", checksummed (CRC ok)" : "");
  std::printf("records          : %zu\n", view.size());
  std::printf("string table     : %zu distinct strings, %s\n",
              view.string_count(),
              format_bytes(
                  static_cast<Bytes>(view.string_table_bytes())).c_str());
  std::printf("argument ids     : %zu\n", view.arg_id_count());

  // Per-call tallies keyed by interned name id — one flat vector, no maps.
  struct CallTally {
    long long count = 0;
    Bytes bytes = 0;
    SimTime time = 0;
  };
  std::vector<CallTally> tallies(view.string_count());
  const std::size_t n = view.size();
  for (std::size_t i = 0; i < n; ++i) {
    const trace::RecordView rec = view.record(i);
    CallTally& tally = tallies[rec.name()];
    ++tally.count;
    tally.time += rec.duration();
    if (rec.is_io_call()) {
      tally.bytes += rec.bytes();
    }
  }
  std::vector<trace::StrId> order;
  for (trace::StrId id = 0; id < tallies.size(); ++id) {
    if (tallies[id].count > 0) {
      order.push_back(id);
    }
  }
  std::sort(order.begin(), order.end(), [&](trace::StrId a, trace::StrId b) {
    return tallies[a].count > tallies[b].count;
  });

  TextTable table({"Call", "Events", "Bytes", "Total time"});
  for (std::size_t c = 1; c < 4; ++c) {
    table.set_align(c, Align::kRight);
  }
  for (const trace::StrId id : order) {
    const CallTally& tally = tallies[id];
    table.add_row({std::string(view.string(id)),
                   strprintf("%lld", tally.count), format_bytes(tally.bytes),
                   format_duration(tally.time)});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

int cmd_classify(const Args& args) {
  sim::ClusterParams cparams;
  cparams.node_count = static_cast<int>(args.get_int("ranks", 8));
  const sim::Cluster cluster(cparams);
  taxonomy::Classifier classifier(cluster, {});

  frameworks::LanlTrace lanl;
  frameworks::Tracefs tracefs;
  frameworks::Partrace partrace;
  const std::string table = taxonomy::render_comparison_table({
      classifier.classify(lanl),
      classifier.classify(tracefs),
      classifier.classify(partrace),
  });
  std::fputs(table.c_str(), stdout);
  return 0;
}

int cmd_replay(const Args& args) {
  const std::string in = args.get("in");
  if (in.empty()) {
    return usage();
  }
  const trace::TraceBundle bundle = trace::TraceBundle::load(in);
  int max_rank = 0;
  for (const trace::RankStream& rs : bundle.ranks) {
    max_rank = std::max(max_rank, rs.rank);
  }
  sim::ClusterParams cparams;
  cparams.node_count = max_rank + 1;
  const sim::Cluster cluster(cparams);

  replay::ReplayOptions options;
  const std::string sync = args.get("sync", "barriers");
  options.pseudo.sync = sync == "deps"  ? replay::SyncStrategy::kDependencies
                        : sync == "none" ? replay::SyncStrategy::kNone
                                         : replay::SyncStrategy::kBarriers;
  replay::Replayer replayer(cluster, std::make_shared<pfs::Pfs>());
  const replay::ReplayResult result = replayer.replay(bundle, options);
  std::printf("replayed %zu ranks, %s written, elapsed %s (sync: %s)\n",
              bundle.ranks.size(),
              format_bytes(result.run.bytes_written).c_str(),
              format_duration(result.run.elapsed).c_str(), sync.c_str());
  return 0;
}

int cmd_analyze(const Args& args) {
  analysis::UnifiedTraceStore store;
  for (const char* key : {"in", "in2", "in3"}) {
    const std::string dir = args.get(key);
    if (!dir.empty()) {
      store.ingest(trace::TraceBundle::load(dir));
    }
  }
  if (store.sources().empty()) {
    return usage();
  }
  std::fputs(analysis::render_report(store).c_str(), stdout);
  return 0;
}

int cmd_anonymize(const Args& args) {
  const std::string in = args.get("in");
  const std::string out = args.get("out");
  if (in.empty() || out.empty()) {
    return usage();
  }
  const trace::TraceBundle bundle = trace::TraceBundle::load(in);
  trace::TraceBundle scrubbed;
  if (args.get("mode", "random") == "encrypt") {
    anon::EncryptingAnonymizer anonymizer(
        anon::FieldPolicy{}, args.get("key", "iotaxo-default-key"));
    scrubbed = anonymizer.apply(bundle);
  } else {
    anon::RandomizingAnonymizer anonymizer(
        anon::FieldPolicy{},
        static_cast<std::uint64_t>(args.get_int("seed", 0x5EED)));
    scrubbed = anonymizer.apply(bundle);
  }
  scrubbed.save(out);
  std::printf("anonymized bundle written to %s (%lld events)\n", out.c_str(),
              scrubbed.total_events());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    // Only `stat` takes positional arguments; anywhere else a stray token
    // means the user dropped an --option and must not be silently ignored.
    if (args.command != "stat" && !args.positional.empty()) {
      throw ConfigError(
          strprintf("expected --option, got '%s'", args.positional[0].c_str()));
    }
    if (args.command == "trace") {
      return cmd_trace(args);
    }
    if (args.command == "classify") {
      return cmd_classify(args);
    }
    if (args.command == "replay") {
      return cmd_replay(args);
    }
    if (args.command == "analyze") {
      return cmd_analyze(args);
    }
    if (args.command == "anonymize") {
      return cmd_anonymize(args);
    }
    if (args.command == "stat") {
      return cmd_stat(args);
    }
    return usage();
  } catch (const Error& err) {
    std::fprintf(stderr, "iotaxo: %s\n", err.what());
    return 1;
  }
}
