#!/usr/bin/env bash
# Tier-1 verify gate: configure, build everything, run the full test suite.
# Exits nonzero on the first failure so CI and pre-PR checks can use it as a
# one-command gate:  ./tools/check_build.sh [build-dir]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build}"

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}"
cmake --build "${BUILD_DIR}" -j
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"
