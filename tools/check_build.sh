#!/usr/bin/env bash
# Tier-1 verify gate: configure, build everything, run the full test suite.
# Exits nonzero on the first failure so CI and pre-PR checks can use it as a
# one-command gate:
#   ./tools/check_build.sh [build-dir]          # full build + full ctest
#   ./tools/check_build.sh --tsan [build-dir]   # ThreadSanitizer build, then
#                                               # the concurrency suites only
#   ./tools/check_build.sh --asan [build-dir]   # AddressSanitizer build +
#                                               # the full test suite
#   ./tools/check_build.sh --ubsan [build-dir]  # UBSan build + the full
#                                               # test suite
#   ./tools/check_build.sh --bench [build-dir]  # build, run the gated
#                                               # benches, and fail if any
#                                               # BENCH_*.json gate field
#                                               # regresses below its floor
#   ./tools/check_build.sh --faults [build-dir] # ASan build + the fault/
#                                               # recovery suites, then
#                                               # assert failpoints are inert
#                                               # without IOTAXO_FAILPOINTS
#                                               # and armable through it
#   ./tools/check_build.sh --metrics [build-dir]# build + the self-metrics
#                                               # suite, then assert metrics
#                                               # are inert when disarmed and
#                                               # that an armed CLI run emits
#                                               # the expected JSON key set
#   ./tools/check_build.sh --stream [build-dir] # build + the streaming-
#                                               # ingest suite, then drive
#                                               # 1000 small CLI flushes and
#                                               # assert the era batcher kept
#                                               # the pool count bounded and
#                                               # the restart adopted the
#                                               # persisted indexes
#
# Bench gating convention: a bench that wants a regression gate emits a pair
# of JSON keys, "<metric>" and "<metric>_floor". The floors live in the JSON
# artifact itself (written by the bench), so thresholds are declared exactly
# once — this script only compares measured >= floor. Benches also exit
# nonzero on their own hard gates (result-identity checks etc.).
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

MODE=build
if [[ "${1:-}" == "--tsan" ]]; then
  MODE=tsan
  shift
elif [[ "${1:-}" == "--asan" ]]; then
  MODE=asan
  shift
elif [[ "${1:-}" == "--ubsan" ]]; then
  MODE=ubsan
  shift
elif [[ "${1:-}" == "--bench" ]]; then
  MODE=bench
  shift
elif [[ "${1:-}" == "--faults" ]]; then
  MODE=faults
  shift
elif [[ "${1:-}" == "--metrics" ]]; then
  MODE=metrics
  shift
elif [[ "${1:-}" == "--stream" ]]; then
  MODE=stream
  shift
fi

# Verify every "<metric>_floor" key in a BENCH_*.json has a matching
# "<metric>" measured at or above it.
check_json_gates() {
  local json="$1"
  local status=0
  local -A vals floors
  while read -r key val; do
    [[ -z "${key}" ]] && continue
    if [[ "${key}" == *_floor ]]; then
      floors["${key%_floor}"]="${val}"
    else
      vals["${key}"]="${val}"
    fi
  done < <(sed -nE 's/.*"([A-Za-z0-9_]+)"[[:space:]]*:[[:space:]]*(-?[0-9]+\.?[0-9]*).*/\1 \2/p' "${json}")
  for metric in "${!floors[@]}"; do
    local floor="${floors[${metric}]}" measured="${vals[${metric}]:-}"
    if [[ -z "${measured}" ]]; then
      echo "GATE FAIL: ${json}: '${metric}_floor' has no measured '${metric}'"
      status=1
    elif ! awk -v m="${measured}" -v f="${floor}" 'BEGIN { exit !(m >= f) }'; then
      echo "GATE FAIL: ${json}: ${metric} = ${measured} < floor ${floor}"
      status=1
    else
      echo "gate ok: ${json}: ${metric} = ${measured} >= ${floor}"
    fi
  done
  return "${status}"
}

case "${MODE}" in
  tsan)
    BUILD_DIR="${1:-${REPO_ROOT}/build-tsan}"
    cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DIOTAXO_TSAN=ON
    cmake --build "${BUILD_DIR}" -j
    # The suites that exercise the concurrent pipeline (async flush, sharded
    # sinks, parallel store scans, batched capture, zero-copy view sources)
    # under TSan.
    ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)" \
      -R 'concurrency_test|batch_test|zero_copy_test|util_test'
    # Block-parallel cold-scan smoke: the striped decode-slot handoff
    # (claim/publish/wait) and the shared sticky-failure state, re-run
    # standalone so a TSan report here points straight at the IOTB3 decode
    # path.
    "${BUILD_DIR}/zero_copy_test" \
      --gtest_filter='*ParallelColdScan*:*StickyFailureAcrossCopies*:*DecodeBlocksPrefetch*'
    ;;
  asan)
    BUILD_DIR="${1:-${REPO_ROOT}/build-asan}"
    cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DIOTAXO_ASAN=ON
    cmake --build "${BUILD_DIR}" -j
    # The whole suite: ASan's sweet spot here is the pointer-heavy zero-copy
    # read path (views into mapped buffers, the accessor seam, the DFG
    # miner's in-place scans), but leaks and overruns hide anywhere.
    ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"
    ;;
  ubsan)
    BUILD_DIR="${1:-${REPO_ROOT}/build-ubsan}"
    cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DIOTAXO_UBSAN=ON
    cmake --build "${BUILD_DIR}" -j
    # The whole suite: UBSan's sweet spot is the byte-level read paths (LE
    # loads in the scan kernels, CRC table folds, block/footer offset
    # arithmetic in the IOTB3 view).
    ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"
    ;;
  faults)
    BUILD_DIR="${1:-${REPO_ROOT}/build-asan}"
    cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DIOTAXO_ASAN=ON
    cmake --build "${BUILD_DIR}" -j
    # The fault/recovery suites under ASan: the crash matrix (simulated
    # death at every failpoint, recovery via attach_dir), torn-tmp cleanup,
    # corrupt-pool quarantine, skip_damaged accounting — plus the
    # hostile-input zero-copy suite, since both walk damaged containers.
    ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)" \
      -R 'recovery_test|zero_copy_test'
    # Failpoints must be inert when IOTAXO_FAILPOINTS is unset (the
    # fast-path flag stays down; this is the zero-cost contract always-on
    # capture daemons rely on)...
    env -u IOTAXO_FAILPOINTS "${BUILD_DIR}/recovery_test" \
      --gtest_filter='Failpoint.InactiveByDefaultAndAfterClear'
    # ...and armable from the environment alone: an armed write failpoint
    # must fail the CLI's durable container write cleanly, leaving no
    # half-written target behind.
    FAULT_TMP="$(mktemp -d)"
    trap 'rm -rf "${FAULT_TMP}"' EXIT
    if IOTAXO_FAILPOINTS="binary.file.write=error" \
        "${BUILD_DIR}/iotaxo_cli" trace --framework lanl --workload mpiio \
        --ranks 2 --binary-out "${FAULT_TMP}/x.iotb3" > /dev/null 2>&1; then
      echo "FAULTS FAIL: env-armed failpoint did not fail the durable write"
      exit 1
    fi
    if [[ -e "${FAULT_TMP}/x.iotb3" ]]; then
      echo "FAULTS FAIL: failed durable write left a target file behind"
      exit 1
    fi
    env -u IOTAXO_FAILPOINTS "${BUILD_DIR}/iotaxo_cli" trace \
      --framework lanl --workload mpiio --ranks 2 \
      --binary-out "${FAULT_TMP}/x.iotb3" > /dev/null
    "${BUILD_DIR}/iotaxo_cli" fsck "${FAULT_TMP}/x.iotb3"
    ;;
  metrics)
    BUILD_DIR="${1:-${REPO_ROOT}/build}"
    cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}"
    cmake --build "${BUILD_DIR}" -j
    # The self-metrics suite: registry exactness under concurrency,
    # snapshot-delta arithmetic, the decode/pool_infos cross-check, the
    # async sink's pipeline metrics.
    ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)" \
      -R 'metrics_test'
    # Metrics must be inert when IOTAXO_METRICS is unset — the disarmed
    # mirror of the --faults inertness check.
    env -u IOTAXO_METRICS "${BUILD_DIR}/metrics_test" \
      --gtest_filter='Metrics.InactiveByDefault'
    # An armed CLI run must produce the per-run JSON report with the
    # instrumented layers lit up: a cold encrypted+projected multi-block
    # container statted with --metrics-out has to show decode work, stage
    # timings, index skips, and the durable write that produced the file.
    METRICS_TMP="$(mktemp -d)"
    trap 'rm -rf "${METRICS_TMP}"' EXIT
    "${BUILD_DIR}/iotaxo_cli" trace --framework lanl --workload mpiio \
      --ranks 4 --binary-out "${METRICS_TMP}/m.iotb3" --key smoke \
      --project --block-records 256 \
      --metrics-out "${METRICS_TMP}/trace_metrics.json" > /dev/null
    "${BUILD_DIR}/iotaxo_cli" stat "${METRICS_TMP}/m.iotb3" --key smoke \
      --metrics-out "${METRICS_TMP}/stat_metrics.json" > "${METRICS_TMP}/stat.out"
    for key in metrics_schema block.decode.stored_bytes block.decode.crc_ns \
               block.decode.decrypt_ns block.decode.decompress_ns \
               store.query.count store.query.segments_scanned \
               store.query.segments_skipped store.query.bytes_in_window_ns \
               sink.async.queue_depth durable.write.fsync_ns; do
      if ! grep -q "\"${key}\"" "${METRICS_TMP}/stat_metrics.json"; then
        echo "METRICS FAIL: stat_metrics.json is missing '${key}'"
        exit 1
      fi
    done
    # The trace run's report must carry the durable write of the container.
    if ! grep -q '"durable.write.files": 1' "${METRICS_TMP}/trace_metrics.json"; then
      echo "METRICS FAIL: trace_metrics.json did not count the durable write"
      exit 1
    fi
    # The armed stat run decoded blocks and skipped others by index.
    if grep -q '"block.decode.stored_bytes": 0' "${METRICS_TMP}/stat_metrics.json"; then
      echo "METRICS FAIL: armed stat reported zero decoded bytes"
      exit 1
    fi
    if grep -q '"store.query.segments_skipped": 0' "${METRICS_TMP}/stat_metrics.json"; then
      echo "METRICS FAIL: armed stat's window probe skipped no blocks"
      exit 1
    fi
    # A plain (disarmed) run prints no metrics surface at all.
    "${BUILD_DIR}/iotaxo_cli" stat "${METRICS_TMP}/m.iotb3" --key smoke \
      > "${METRICS_TMP}/plain.out"
    if grep -qE 'metrics|window probe' "${METRICS_TMP}/plain.out"; then
      echo "METRICS FAIL: disarmed stat printed a metrics surface"
      exit 1
    fi
    # IOTAXO_METRICS=FILE arms from the environment alone and dumps at exit.
    IOTAXO_METRICS="${METRICS_TMP}/env_dump.json" \
      "${BUILD_DIR}/iotaxo_cli" stat "${METRICS_TMP}/m.iotb3" --key smoke \
      > /dev/null
    if ! grep -q '"block.decode.stored_bytes"' "${METRICS_TMP}/env_dump.json"; then
      echo "METRICS FAIL: IOTAXO_METRICS=FILE produced no at-exit dump"
      exit 1
    fi
    echo "metrics ok: disarmed inert, armed CLI report complete"
    ;;
  stream)
    BUILD_DIR="${1:-${REPO_ROOT}/build}"
    cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}"
    cmake --build "${BUILD_DIR}" -j
    # The streaming-ingest suite: footer round-trips and corruption
    # fallbacks, era-ingest vs one-pool-per-flush identity, live-DFG vs
    # cold-rebuild identity.
    ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)" \
      -R 'stream_ingest_test'
    # End-to-end smoke: a 1000-flush storm of small flushes must land in a
    # bounded number of era pools (the whole point of the open batch), and
    # a restart on the written era containers must adopt their persisted
    # indexes instead of rescanning records.
    STREAM_TMP="$(mktemp -d)"
    trap 'rm -rf "${STREAM_TMP}"' EXIT
    "${BUILD_DIR}/iotaxo_cli" stream --dir "${STREAM_TMP}" \
      --flushes 1000 --events 50 > "${STREAM_TMP}/capture.out"
    POOLS="$(sed -nE 's/^pools +: ([0-9]+).*/\1/p' "${STREAM_TMP}/capture.out")"
    if [[ -z "${POOLS}" || "${POOLS}" -gt 32 ]]; then
      echo "STREAM FAIL: 1000 flushes produced ${POOLS:-?} pools (want <= 32)"
      cat "${STREAM_TMP}/capture.out"
      exit 1
    fi
    "${BUILD_DIR}/iotaxo_cli" stream --dir "${STREAM_TMP}" --attach \
      > "${STREAM_TMP}/attach.out"
    ADOPTED="$(sed -nE 's/^indexes adopted +: ([0-9]+).*/\1/p' "${STREAM_TMP}/attach.out")"
    if [[ -z "${ADOPTED}" || "${ADOPTED}" -eq 0 ]]; then
      echo "STREAM FAIL: restart adopted ${ADOPTED:-?} persisted indexes (want > 0)"
      cat "${STREAM_TMP}/attach.out"
      exit 1
    fi
    echo "stream ok: 1000 flushes -> ${POOLS} pool(s); restart adopted ${ADOPTED} index(es)"
    ;;
  bench)
    BUILD_DIR="${1:-${REPO_ROOT}/build}"
    cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}"
    cmake --build "${BUILD_DIR}" -j
    STATUS=0
    # Gate only this run's artifacts, not JSONs left by renamed or removed
    # benches.
    rm -f "${BUILD_DIR}"/BENCH_*.json
    # The gated benches: each writes BENCH_<name>.json next to itself and
    # exits nonzero when its hard gates fail.
    for bench in bench_batch_pipeline bench_async_flush bench_zero_copy \
                 bench_dfg bench_iotb3 bench_ingest; do
      echo "--- ${bench}"
      (cd "${BUILD_DIR}" && "./${bench}") || STATUS=1
    done
    for json in "${BUILD_DIR}"/BENCH_*.json; do
      [[ -e "${json}" ]] || continue
      check_json_gates "${json}" || STATUS=1
    done
    exit "${STATUS}"
    ;;
  build)
    BUILD_DIR="${1:-${REPO_ROOT}/build}"
    cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}"
    cmake --build "${BUILD_DIR}" -j
    ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"
    ;;
esac
