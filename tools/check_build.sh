#!/usr/bin/env bash
# Tier-1 verify gate: configure, build everything, run the full test suite.
# Exits nonzero on the first failure so CI and pre-PR checks can use it as a
# one-command gate:
#   ./tools/check_build.sh [build-dir]          # full build + full ctest
#   ./tools/check_build.sh --tsan [build-dir]   # ThreadSanitizer build, then
#                                               # the concurrency suites only
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

TSAN=0
if [[ "${1:-}" == "--tsan" ]]; then
  TSAN=1
  shift
fi

if [[ ${TSAN} -eq 1 ]]; then
  BUILD_DIR="${1:-${REPO_ROOT}/build-tsan}"
  cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DIOTAXO_TSAN=ON
  cmake --build "${BUILD_DIR}" -j
  # The suites that exercise the concurrent pipeline (async flush, sharded
  # sinks, parallel store scans, batched capture) under TSan.
  ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)" \
    -R 'concurrency_test|batch_test|util_test'
else
  BUILD_DIR="${1:-${REPO_ROOT}/build}"
  cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}"
  cmake --build "${BUILD_DIR}" -j
  ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"
fi
