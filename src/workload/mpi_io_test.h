// mpi_io_test — the LANL bandwidth benchmark ([4] in the paper) "used to
// perform parameter studies on the various LANL supercomputers", and the
// synthetic application behind the paper's overhead experiments.
//
// Three parallel I/O access patterns (§4.1.2, citing [12] for terminology):
//   N-to-N            N processes each write their own file
//   N-to-1 non-strided  N processes write disjoint contiguous regions of
//                       one shared file
//   N-to-1 strided      N processes interleave blocks round-robin within
//                       one shared file ("often used to keep similar data
//                       grouped by proximity within the file")
//
// The generated job brackets its write phase with labelled barriers
// ("io_begin"/"io_end") so bandwidth is measured exactly the way the real
// tool reports it, and splits the work into `nobj` objects with a barrier
// between objects, as the real benchmark does.
#pragma once

#include <string>

#include "mpi/program.h"
#include "util/types.h"

namespace iotaxo::workload {

enum class Pattern { kNtoN, kNto1NonStrided, kNto1Strided };

[[nodiscard]] const char* to_string(Pattern p) noexcept;

struct MpiIoTestParams {
  Pattern pattern = Pattern::kNto1Strided;
  int nranks = 32;
  /// I/O block size per call.
  Bytes block = 64 * kKiB;
  /// Total bytes written by the whole job (paper: one 100 GiB file for
  /// N-to-1, N x 10 GiB files for N-to-N; benches default to a scaled-down
  /// total and note the scaling in EXPERIMENTS.md).
  Bytes total_bytes = 4 * kGiB;
  /// Number of objects; a barrier separates consecutive objects.
  int nobj = 1;
  /// Output path (N-to-1) or path prefix (N-to-N).
  std::string path = "/pfs/mpi_io_test.out";
  /// Compute time between consecutive writes (usually zero: pure I/O).
  SimTime think_time = 0;
};

/// Build the job. Block counts are rounded so every rank writes the same
/// whole number of blocks per object (the real tool requires this too).
[[nodiscard]] mpi::Job make_mpi_io_test(const MpiIoTestParams& params);

/// The command line the real tool would have been launched with (quoted in
/// trace annotations, Figure 1 style).
[[nodiscard]] std::string mpi_io_test_cmdline(const MpiIoTestParams& params);

}  // namespace iotaxo::workload
