#include "workload/probe_app.h"

#include "util/error.h"
#include "util/strings.h"

namespace iotaxo::workload {

mpi::Job make_probe_app(const ProbeAppParams& params) {
  if (params.nranks <= 0 || params.phases <= 0) {
    throw ConfigError("probe_app: nranks and phases must be > 0");
  }
  mpi::Job job;
  job.cmdline = strprintf("/probe_app.exe -phases %d", params.phases);
  job.programs.reserve(static_cast<std::size_t>(params.nranks));

  for (int r = 0; r < params.nranks; ++r) {
    mpi::ScriptBuilder b;
    b.barrier("pre_open");

    // Shared MPI-IO file, strided (exercises the parallel path).
    b.open(0, params.shared_path, fs::OpenMode::write_create(),
           fs::AccessHint::kStrided, mpi::Api::kMpiIo);

    // POSIX per-rank scratch file.
    const std::string scratch =
        strprintf("%s/rank%d.dat", params.scratch_root.c_str(), r);
    b.open(1, scratch, fs::OpenMode::write_create(),
           fs::AccessHint::kSequential, mpi::Api::kPosix);

    b.barrier("io_begin");
    for (int phase = 0; phase < params.phases; ++phase) {
      const Bytes phase_base = static_cast<Bytes>(phase) *
                               params.blocks_per_phase * params.nranks *
                               params.block;
      const Bytes start = phase_base + static_cast<Bytes>(r) * params.block;
      b.write_blocks(0, params.block, params.blocks_per_phase, start,
                     static_cast<Bytes>(params.nranks) * params.block,
                     mpi::Api::kMpiIo);
      b.write_blocks(1, params.block / 4, 2, -1, 0, mpi::Api::kPosix);
      b.barrier(strprintf("phase_%02d", phase));
    }
    b.barrier("io_end");

    // Metadata + mmap segment (event-type discovery).
    b.stat(scratch);
    b.mmap(1);
    b.mmap_write(1, params.block / 4, 2, 0);
    b.close(1, mpi::Api::kPosix);
    b.close(0, mpi::Api::kMpiIo);
    b.barrier("post_close");
    job.programs.push_back(std::move(b).build());
  }
  return job;
}

}  // namespace iotaxo::workload
