// An I/O-intensive metadata workload, in the spirit of the benchmarks the
// Tracefs developers used for their elapsed-time overhead experiments
// (many small files, heavy metadata traffic, plus memory-mapped I/O that
// only a VFS-level tracer can observe).
#pragma once

#include <string>

#include "mpi/program.h"
#include "util/types.h"

namespace iotaxo::workload {

struct IoIntensiveParams {
  int nranks = 1;
  /// Files created/written/read/deleted per rank.
  int files_per_rank = 200;
  Bytes write_block = 4 * kKiB;
  int writes_per_file = 4;
  /// Fraction of files that are re-read and stat'ed.
  double read_fraction = 0.5;
  /// Files written through mmap instead of write() (integer count).
  int mmap_files_per_rank = 10;
  std::string root = "/scratch";
  SimTime think_time = from_micros(30.0);
};

[[nodiscard]] mpi::Job make_io_intensive(const IoIntensiveParams& params);

}  // namespace iotaxo::workload
