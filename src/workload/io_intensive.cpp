#include "workload/io_intensive.h"

#include "util/error.h"
#include "util/strings.h"

namespace iotaxo::workload {

mpi::Job make_io_intensive(const IoIntensiveParams& params) {
  if (params.nranks <= 0 || params.files_per_rank <= 0) {
    throw ConfigError("io_intensive: nranks and files_per_rank must be > 0");
  }
  mpi::Job job;
  job.cmdline = strprintf("/io_intensive.exe -files %d -block %lld",
                          params.files_per_rank,
                          static_cast<long long>(params.write_block));
  job.programs.reserve(static_cast<std::size_t>(params.nranks));

  for (int r = 0; r < params.nranks; ++r) {
    mpi::ScriptBuilder b;
    const std::string dir = strprintf("%s/rank%d", params.root.c_str(), r);
    b.barrier("pre_open");
    b.mkdir(dir);
    b.barrier("io_begin");

    const int read_every =
        params.read_fraction > 0
            ? std::max(1, static_cast<int>(1.0 / params.read_fraction))
            : 0;

    for (int f = 0; f < params.files_per_rank; ++f) {
      const std::string path = strprintf("%s/file_%04d.dat", dir.c_str(), f);
      b.open(0, path, fs::OpenMode::write_create(),
             fs::AccessHint::kSequential, mpi::Api::kPosix);
      b.write_blocks(0, params.write_block, params.writes_per_file, 0, 0,
                     mpi::Api::kPosix);
      b.close(0, mpi::Api::kPosix);
      if (params.think_time > 0) {
        b.compute(params.think_time);
      }
      if (read_every > 0 && f % read_every == 0) {
        b.stat(path);
        b.open(1, path, fs::OpenMode::read_only(),
               fs::AccessHint::kSequential, mpi::Api::kPosix);
        b.read_blocks(1, params.write_block, params.writes_per_file, 0, 0,
                      mpi::Api::kPosix);
        b.close(1, mpi::Api::kPosix);
      }
      // Every third file is deleted again: create/delete churn is what
      // makes metadata tracing expensive.
      if (f % 3 == 2) {
        b.unlink(path);
      }
    }

    // Memory-mapped I/O segment: invisible to syscall/library tracers,
    // visible to a VFS-level tracer.
    for (int m = 0; m < params.mmap_files_per_rank; ++m) {
      const std::string path = strprintf("%s/mapped_%02d.dat", dir.c_str(), m);
      b.open(2, path, fs::OpenMode::read_write(),
             fs::AccessHint::kSequential, mpi::Api::kPosix);
      b.mmap(2);
      b.mmap_write(2, params.write_block, params.writes_per_file, 0);
      b.close(2, mpi::Api::kPosix);
    }

    b.readdir(dir);
    b.barrier("io_end");
    b.barrier("post_close");
    job.programs.push_back(std::move(b).build());
  }
  return job;
}

}  // namespace iotaxo::workload
