#include "workload/mpi_io_test.h"

#include "util/error.h"
#include "util/strings.h"

namespace iotaxo::workload {

const char* to_string(Pattern p) noexcept {
  switch (p) {
    case Pattern::kNtoN:
      return "N-to-N";
    case Pattern::kNto1NonStrided:
      return "N-to-1 non-strided";
    case Pattern::kNto1Strided:
      return "N-to-1 strided";
  }
  return "?";
}

std::string mpi_io_test_cmdline(const MpiIoTestParams& params) {
  const int type = params.pattern == Pattern::kNtoN ? 2 : 1;
  const int strided = params.pattern == Pattern::kNto1Strided ? 1 : 0;
  return strprintf("/mpi_io_test.exe -type %d -strided %d -size %lld -nobj %d",
                   type, strided, static_cast<long long>(params.block),
                   params.nobj);
}

mpi::Job make_mpi_io_test(const MpiIoTestParams& params) {
  if (params.nranks <= 0 || params.block <= 0 || params.total_bytes <= 0 ||
      params.nobj <= 0) {
    throw ConfigError("mpi_io_test: all parameters must be positive");
  }
  const long long blocks_per_rank_per_obj =
      std::max<long long>(1, params.total_bytes / params.nranks /
                                 params.nobj / params.block);

  mpi::Job job;
  job.cmdline = mpi_io_test_cmdline(params);
  job.programs.reserve(static_cast<std::size_t>(params.nranks));

  for (int r = 0; r < params.nranks; ++r) {
    mpi::ScriptBuilder b;
    b.barrier("pre_open");

    const bool shared = params.pattern != Pattern::kNtoN;
    const std::string path =
        shared ? params.path : strprintf("%s.%d", params.path.c_str(), r);
    const fs::AccessHint hint = params.pattern == Pattern::kNto1Strided
                                    ? fs::AccessHint::kStrided
                                    : fs::AccessHint::kSequential;
    b.open(0, path, fs::OpenMode::write_create(), hint, mpi::Api::kMpiIo);
    b.barrier("io_begin");

    const Bytes obj_bytes_per_rank = blocks_per_rank_per_obj * params.block;
    for (int obj = 0; obj < params.nobj; ++obj) {
      Bytes start = 0;
      Bytes stride = 0;
      switch (params.pattern) {
        case Pattern::kNtoN:
          // Own file, sequential: object regions stack up contiguously.
          start = static_cast<Bytes>(obj) * obj_bytes_per_rank;
          stride = 0;
          break;
        case Pattern::kNto1NonStrided: {
          // Disjoint contiguous region per rank within the object's span.
          const Bytes obj_base = static_cast<Bytes>(obj) *
                                 obj_bytes_per_rank * params.nranks;
          start = obj_base + static_cast<Bytes>(r) * obj_bytes_per_rank;
          stride = 0;
          break;
        }
        case Pattern::kNto1Strided: {
          // Round-robin interleave: rank r writes blocks r, r+N, r+2N, ...
          const Bytes obj_base = static_cast<Bytes>(obj) *
                                 obj_bytes_per_rank * params.nranks;
          start = obj_base + static_cast<Bytes>(r) * params.block;
          stride = static_cast<Bytes>(params.nranks) * params.block;
          break;
        }
      }
      if (params.think_time > 0) {
        b.compute(params.think_time);
      }
      b.write_blocks(0, params.block, blocks_per_rank_per_obj, start, stride,
                     mpi::Api::kMpiIo);
      if (obj + 1 < params.nobj) {
        b.barrier(strprintf("obj_%d", obj));
      }
    }

    b.barrier("io_end");
    b.close(0, mpi::Api::kMpiIo);
    b.barrier("post_close");
    job.programs.push_back(std::move(b).build());
  }
  return job;
}

}  // namespace iotaxo::workload
