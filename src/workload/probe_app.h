// The canonical probe application the taxonomy classifier traces to
// discover, by experiment, which event types a framework captures: it mixes
// POSIX I/O, MPI-IO, metadata calls and memory-mapped I/O, and has a known
// causal structure (every rank meets every barrier) for dependency-
// discovery verification.
#pragma once

#include "mpi/program.h"
#include "util/types.h"

namespace iotaxo::workload {

struct ProbeAppParams {
  int nranks = 8;
  /// Phases (barriers) — dependency discovery needs at least nranks of
  /// them for a full rotation of throttling windows.
  int phases = 16;
  Bytes block = 256 * kKiB;
  long long blocks_per_phase = 4;
  std::string shared_path = "/pfs/probe_shared.out";
  std::string scratch_root = "/scratch/probe";
};

[[nodiscard]] mpi::Job make_probe_app(const ProbeAppParams& params);

}  // namespace iotaxo::workload
