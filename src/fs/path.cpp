#include "fs/path.h"

namespace iotaxo::fs {

std::vector<std::string> path_components(std::string_view path) {
  std::vector<std::string> parts;
  std::size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') {
      ++i;
    }
    const std::size_t start = i;
    while (i < path.size() && path[i] != '/') {
      ++i;
    }
    if (i > start) {
      const std::string_view part = path.substr(start, i - start);
      if (part == ".") {
        continue;
      }
      if (part == "..") {
        if (!parts.empty()) {
          parts.pop_back();
        }
        continue;
      }
      parts.emplace_back(part);
    }
  }
  return parts;
}

std::string normalize_path(std::string_view path) {
  const auto parts = path_components(path);
  std::string out = "/";
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += '/';
    }
    out += parts[i];
  }
  return out;
}

std::string parent_path(std::string_view path) {
  auto parts = path_components(path);
  if (parts.size() <= 1) {
    return "/";
  }
  parts.pop_back();
  std::string out = "/";
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += '/';
    }
    out += parts[i];
  }
  return out;
}

std::string base_name(std::string_view path) {
  const auto parts = path_components(path);
  return parts.empty() ? std::string{} : parts.back();
}

}  // namespace iotaxo::fs
