// The simulated Virtual File System interface.
//
// Every file system in the toolkit — the local ext3-like MemFs, the
// NFS-like remote wrapper, the striped parallel file system, and the
// Tracefs stacking shim — implements this interface. Operations return both
// a value and the *virtual time cost* the operation consumed; the MPI
// runtime charges that cost to the calling rank's clock.
//
// The interface is offset-explicit (pwrite-style). File cursors, seek
// syscall events and fd bookkeeping live in the runtime layer so that file
// systems stay stateless with respect to position.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/types.h"

namespace iotaxo::fs {

/// What family of file system this is. Frameworks declare (and the taxonomy
/// classifier probes) which kinds they can trace.
enum class FsKind { kLocal, kNfs, kParallel };

/// Whether a file system retains written bytes (correctness tests) or only
/// tracks metadata (benchmark-scale virtual files).
enum class ContentPolicy { kMetadataOnly, kRetain };

[[nodiscard]] const char* to_string(FsKind kind) noexcept;

/// File-system level operations (the event vocabulary of a stackable
/// tracer such as Tracefs).
enum class VfsOp {
  kOpen,
  kClose,
  kRead,
  kWrite,
  kFsync,
  kStat,
  kStatfs,
  kMkdir,
  kUnlink,
  kReaddir,
  kMmap,
  kMmapRead,
  kMmapWrite,
};

[[nodiscard]] const char* to_string(VfsOp op) noexcept;

struct OpenMode {
  bool read = true;
  bool write = false;
  bool create = false;
  bool truncate = false;
  bool append = false;

  [[nodiscard]] static OpenMode read_only() noexcept { return {}; }
  [[nodiscard]] static OpenMode write_create() noexcept {
    return {.read = false, .write = true, .create = true, .truncate = true};
  }
  [[nodiscard]] static OpenMode read_write() noexcept {
    return {.read = true, .write = true, .create = true};
  }
};

/// Access-pattern hint passed down from MPI-IO so the parallel file system
/// can model contention; ignored by local file systems.
enum class AccessHint { kSequential, kStrided, kRandom };

/// Per-call context: which node/rank issued the operation, plus identity
/// fields that anonymizers may need to scrub. `now` carries the caller's
/// current global virtual time so stacking shims (Tracefs) can timestamp
/// the events they capture.
struct OpCtx {
  int node_id = 0;
  int rank = 0;
  std::uint32_t uid = 4001;
  std::uint32_t gid = 400;
  AccessHint hint = AccessHint::kSequential;
  SimTime now = 0;
};

/// Result of every VFS call: the operation's return value (fd for open,
/// byte count for read/write, size for stat, 0 otherwise) and the virtual
/// time it consumed.
struct VfsResult {
  Bytes value = 0;
  SimTime cost = 0;
};

struct StatInfo {
  Bytes size = 0;
  std::uint32_t uid = 0;
  std::uint32_t gid = 0;
  bool is_dir = false;
};

class Vfs {
 public:
  virtual ~Vfs() = default;

  [[nodiscard]] virtual FsKind kind() const noexcept = 0;
  /// e.g. "ext3", "nfs", "lanlfs". Matches what a mount table would show.
  [[nodiscard]] virtual std::string fstype() const = 0;

  /// Open `path`; returns fd in .value. Throws IoError for missing files
  /// opened without create.
  virtual VfsResult open(const std::string& path, OpenMode mode,
                         const OpCtx& ctx) = 0;
  virtual VfsResult close(int fd, const OpCtx& ctx) = 0;

  /// Read up to n bytes at offset. If `out` is non-null and the file stores
  /// content, bytes are copied there (used by correctness tests).
  virtual VfsResult read(int fd, Bytes offset, Bytes n, const OpCtx& ctx,
                         std::uint8_t* out = nullptr) = 0;

  /// Write n bytes at offset. If `data` is non-null and the file system
  /// stores content, bytes are retained; otherwise only metadata moves.
  virtual VfsResult write(int fd, Bytes offset, Bytes n, const OpCtx& ctx,
                          const std::uint8_t* data = nullptr) = 0;

  virtual VfsResult fsync(int fd, const OpCtx& ctx) = 0;
  virtual VfsResult stat(const std::string& path, const OpCtx& ctx) = 0;
  virtual VfsResult statfs(const OpCtx& ctx) = 0;
  virtual VfsResult mkdir(const std::string& path, const OpCtx& ctx) = 0;
  virtual VfsResult unlink(const std::string& path, const OpCtx& ctx) = 0;
  virtual VfsResult readdir(const std::string& path, const OpCtx& ctx) = 0;

  /// Map a file; subsequent mmap_read/mmap_write model paged I/O that
  /// bypasses the read/write syscall path (invisible to syscall tracers,
  /// visible at the VFS layer).
  virtual VfsResult mmap(int fd, const OpCtx& ctx) = 0;
  virtual VfsResult mmap_read(int fd, Bytes offset, Bytes n,
                              const OpCtx& ctx) = 0;
  virtual VfsResult mmap_write(int fd, Bytes offset, Bytes n,
                               const OpCtx& ctx) = 0;

  /// How much a tracer-induced stop of the process owning `fd` stalls
  /// *other* processes (stripe-lock coupling on shared parallel files).
  /// 1.0 everywhere except the parallel file system. Decorating file
  /// systems must forward this to their inner layer.
  [[nodiscard]] virtual double stall_amplification(int fd) const noexcept {
    (void)fd;
    return 1.0;
  }

  // ---- introspection (zero-cost; used by tests and analysis) ----
  [[nodiscard]] virtual bool exists(const std::string& path) const = 0;
  [[nodiscard]] virtual StatInfo stat_info(const std::string& path) const = 0;
  [[nodiscard]] virtual std::vector<std::string> list(
      const std::string& dir) const = 0;
  /// Retrieve stored content (empty if the fs was told not to retain data).
  [[nodiscard]] virtual std::vector<std::uint8_t> content(
      const std::string& path) const = 0;
};

using VfsPtr = std::shared_ptr<Vfs>;

}  // namespace iotaxo::fs
