// Path normalization helpers for the simulated file systems.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace iotaxo::fs {

/// Collapse "//", ".", ".." components; result always starts with '/'.
[[nodiscard]] std::string normalize_path(std::string_view path);

/// Parent directory of a normalized path ("/" for top-level entries).
[[nodiscard]] std::string parent_path(std::string_view path);

/// Final component ("" for "/").
[[nodiscard]] std::string base_name(std::string_view path);

/// Split a normalized path into components (no empty entries).
[[nodiscard]] std::vector<std::string> path_components(std::string_view path);

}  // namespace iotaxo::fs
