// In-memory local file system with an ext3-like timing model.
//
// Metadata (sizes, ownership, directory tree) is always tracked; file
// *content* is retained only when ContentPolicy::kRetain is selected, so
// that benchmark runs can "write" hundreds of virtual gigabytes without
// allocating them, while correctness tests can verify byte-exact
// read-after-write behaviour on small files.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fs/vfs.h"
#include "util/types.h"

namespace iotaxo::fs {

struct LocalFsParams {
  /// Per-operation latencies, loosely modelled on a 2006-era ext3 volume.
  SimTime open_cost = from_micros(120.0);
  SimTime create_cost = from_micros(260.0);
  SimTime close_cost = from_micros(15.0);
  SimTime stat_cost = from_micros(70.0);
  SimTime statfs_cost = from_micros(60.0);
  SimTime mkdir_cost = from_micros(300.0);
  SimTime unlink_cost = from_micros(240.0);
  SimTime readdir_cost_per_entry = from_micros(4.0);
  SimTime readdir_cost_base = from_micros(90.0);
  SimTime fsync_cost = from_millis(4.0);
  SimTime mmap_cost = from_micros(35.0);

  /// Per-I/O fixed cost plus streaming rate.
  SimTime io_base_cost = from_micros(22.0);
  double write_bandwidth_mbps = 58.0;
  double read_bandwidth_mbps = 64.0;

  ContentPolicy content = ContentPolicy::kMetadataOnly;
  /// Refuse to retain more than this much content (guards tests against
  /// accidentally materializing benchmark-scale files).
  Bytes max_retained_bytes = 64 * kMiB;
};

class MemFs : public Vfs {
 public:
  explicit MemFs(LocalFsParams params = {});

  [[nodiscard]] FsKind kind() const noexcept override { return FsKind::kLocal; }
  [[nodiscard]] std::string fstype() const override { return "ext3"; }

  VfsResult open(const std::string& path, OpenMode mode,
                 const OpCtx& ctx) override;
  VfsResult close(int fd, const OpCtx& ctx) override;
  VfsResult read(int fd, Bytes offset, Bytes n, const OpCtx& ctx,
                 std::uint8_t* out) override;
  VfsResult write(int fd, Bytes offset, Bytes n, const OpCtx& ctx,
                  const std::uint8_t* data) override;
  VfsResult fsync(int fd, const OpCtx& ctx) override;
  VfsResult stat(const std::string& path, const OpCtx& ctx) override;
  VfsResult statfs(const OpCtx& ctx) override;
  VfsResult mkdir(const std::string& path, const OpCtx& ctx) override;
  VfsResult unlink(const std::string& path, const OpCtx& ctx) override;
  VfsResult readdir(const std::string& path, const OpCtx& ctx) override;
  VfsResult mmap(int fd, const OpCtx& ctx) override;
  VfsResult mmap_read(int fd, Bytes offset, Bytes n, const OpCtx& ctx) override;
  VfsResult mmap_write(int fd, Bytes offset, Bytes n,
                       const OpCtx& ctx) override;

  [[nodiscard]] bool exists(const std::string& path) const override;
  [[nodiscard]] StatInfo stat_info(const std::string& path) const override;
  [[nodiscard]] std::vector<std::string> list(
      const std::string& dir) const override;
  [[nodiscard]] std::vector<std::uint8_t> content(
      const std::string& path) const override;

  [[nodiscard]] const LocalFsParams& params() const noexcept { return params_; }
  [[nodiscard]] int open_handle_count() const noexcept;

 private:
  struct File {
    Bytes size = 0;
    std::uint32_t uid = 0;
    std::uint32_t gid = 0;
    bool is_dir = false;
    std::vector<std::uint8_t> data;  // only with ContentPolicy::kRetain
  };

  struct Handle {
    std::string path;
    OpenMode mode;
    bool mapped = false;
  };

  [[nodiscard]] File& file_for_fd(int fd);
  [[nodiscard]] Handle& handle_for_fd(int fd);
  [[nodiscard]] SimTime transfer_cost(Bytes n, bool is_write) const noexcept;

  LocalFsParams params_;
  std::map<std::string, File> files_;
  std::map<int, Handle> handles_;
  int next_fd_ = 3;
};

}  // namespace iotaxo::fs
