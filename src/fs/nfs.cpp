#include "fs/nfs.h"

#include <utility>

#include "util/error.h"

namespace iotaxo::fs {

NfsFs::NfsFs(VfsPtr inner, NfsParams params)
    : inner_(std::move(inner)), params_(params), network_(params_.network) {
  if (!inner_) {
    throw ConfigError("NfsFs requires an inner file system");
  }
}

SimTime NfsFs::rpc_cost(Bytes payload) const noexcept {
  // request + response; payload rides on one direction.
  return network_.transfer_time(payload, /*same_node=*/false) +
         network_.transfer_time(128, /*same_node=*/false) +
         params_.server_overhead;
}

VfsResult NfsFs::open(const std::string& path, OpenMode mode,
                      const OpCtx& ctx) {
  auto r = inner_->open(path, mode, ctx);
  r.cost += rpc_cost(256);
  return r;
}

VfsResult NfsFs::close(int fd, const OpCtx& ctx) {
  auto r = inner_->close(fd, ctx);
  r.cost += rpc_cost(64);
  return r;
}

VfsResult NfsFs::read(int fd, Bytes offset, Bytes n, const OpCtx& ctx,
                      std::uint8_t* out) {
  auto r = inner_->read(fd, offset, n, ctx, out);
  r.cost += rpc_cost(r.value);
  return r;
}

VfsResult NfsFs::write(int fd, Bytes offset, Bytes n, const OpCtx& ctx,
                       const std::uint8_t* data) {
  auto r = inner_->write(fd, offset, n, ctx, data);
  r.cost += rpc_cost(n);
  return r;
}

VfsResult NfsFs::fsync(int fd, const OpCtx& ctx) {
  auto r = inner_->fsync(fd, ctx);
  r.cost += rpc_cost(64);
  return r;
}

VfsResult NfsFs::stat(const std::string& path, const OpCtx& ctx) {
  auto r = inner_->stat(path, ctx);
  r.cost += static_cast<SimTime>(
      static_cast<double>(rpc_cost(128)) * params_.attr_cache_discount);
  return r;
}

VfsResult NfsFs::statfs(const OpCtx& ctx) {
  auto r = inner_->statfs(ctx);
  r.cost += rpc_cost(128);
  return r;
}

VfsResult NfsFs::mkdir(const std::string& path, const OpCtx& ctx) {
  auto r = inner_->mkdir(path, ctx);
  r.cost += rpc_cost(256);
  return r;
}

VfsResult NfsFs::unlink(const std::string& path, const OpCtx& ctx) {
  auto r = inner_->unlink(path, ctx);
  r.cost += rpc_cost(128);
  return r;
}

VfsResult NfsFs::readdir(const std::string& path, const OpCtx& ctx) {
  auto r = inner_->readdir(path, ctx);
  r.cost += rpc_cost(r.value * 64);
  return r;
}

VfsResult NfsFs::mmap(int fd, const OpCtx& ctx) {
  auto r = inner_->mmap(fd, ctx);
  r.cost += rpc_cost(64);
  return r;
}

VfsResult NfsFs::mmap_read(int fd, Bytes offset, Bytes n, const OpCtx& ctx) {
  auto r = inner_->mmap_read(fd, offset, n, ctx);
  r.cost += rpc_cost(n);
  return r;
}

VfsResult NfsFs::mmap_write(int fd, Bytes offset, Bytes n, const OpCtx& ctx) {
  auto r = inner_->mmap_write(fd, offset, n, ctx);
  r.cost += rpc_cost(n);
  return r;
}

bool NfsFs::exists(const std::string& path) const {
  return inner_->exists(path);
}

StatInfo NfsFs::stat_info(const std::string& path) const {
  return inner_->stat_info(path);
}

std::vector<std::string> NfsFs::list(const std::string& dir) const {
  return inner_->list(dir);
}

std::vector<std::uint8_t> NfsFs::content(const std::string& path) const {
  return inner_->content(path);
}

}  // namespace iotaxo::fs
