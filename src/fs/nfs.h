// NFS-like remote file system: decorates an inner file system with
// per-operation network round trips. Tracefs's developers validated their
// tracer on NFS; our taxonomy experiments do the same.
#pragma once

#include <memory>

#include "fs/vfs.h"
#include "sim/network.h"

namespace iotaxo::fs {

struct NfsParams {
  sim::NetworkParams network{};
  /// Server-side request handling overhead per RPC.
  SimTime server_overhead = from_micros(90.0);
  /// Attribute-cache hit probability is modelled as a fixed discount on
  /// stat-class calls instead of probabilistically, keeping runs exact.
  double attr_cache_discount = 0.5;
};

class NfsFs : public Vfs {
 public:
  NfsFs(VfsPtr inner, NfsParams params = {});

  [[nodiscard]] FsKind kind() const noexcept override { return FsKind::kNfs; }
  [[nodiscard]] std::string fstype() const override { return "nfs"; }

  VfsResult open(const std::string& path, OpenMode mode,
                 const OpCtx& ctx) override;
  VfsResult close(int fd, const OpCtx& ctx) override;
  VfsResult read(int fd, Bytes offset, Bytes n, const OpCtx& ctx,
                 std::uint8_t* out) override;
  VfsResult write(int fd, Bytes offset, Bytes n, const OpCtx& ctx,
                  const std::uint8_t* data) override;
  VfsResult fsync(int fd, const OpCtx& ctx) override;
  VfsResult stat(const std::string& path, const OpCtx& ctx) override;
  VfsResult statfs(const OpCtx& ctx) override;
  VfsResult mkdir(const std::string& path, const OpCtx& ctx) override;
  VfsResult unlink(const std::string& path, const OpCtx& ctx) override;
  VfsResult readdir(const std::string& path, const OpCtx& ctx) override;
  VfsResult mmap(int fd, const OpCtx& ctx) override;
  VfsResult mmap_read(int fd, Bytes offset, Bytes n, const OpCtx& ctx) override;
  VfsResult mmap_write(int fd, Bytes offset, Bytes n,
                       const OpCtx& ctx) override;

  [[nodiscard]] bool exists(const std::string& path) const override;
  [[nodiscard]] StatInfo stat_info(const std::string& path) const override;
  [[nodiscard]] std::vector<std::string> list(
      const std::string& dir) const override;
  [[nodiscard]] std::vector<std::uint8_t> content(
      const std::string& path) const override;

 private:
  /// Round-trip cost for an RPC carrying `payload` bytes.
  [[nodiscard]] SimTime rpc_cost(Bytes payload) const noexcept;

  VfsPtr inner_;
  NfsParams params_;
  sim::Network network_;
};

}  // namespace iotaxo::fs
