#include "fs/memfs.h"

#include <algorithm>
#include <cstring>

#include "fs/path.h"
#include "util/error.h"
#include "util/strings.h"

namespace iotaxo::fs {

const char* to_string(FsKind kind) noexcept {
  switch (kind) {
    case FsKind::kLocal:
      return "local";
    case FsKind::kNfs:
      return "nfs";
    case FsKind::kParallel:
      return "parallel";
  }
  return "?";
}

const char* to_string(VfsOp op) noexcept {
  switch (op) {
    case VfsOp::kOpen:
      return "open";
    case VfsOp::kClose:
      return "close";
    case VfsOp::kRead:
      return "read";
    case VfsOp::kWrite:
      return "write";
    case VfsOp::kFsync:
      return "fsync";
    case VfsOp::kStat:
      return "stat";
    case VfsOp::kStatfs:
      return "statfs";
    case VfsOp::kMkdir:
      return "mkdir";
    case VfsOp::kUnlink:
      return "unlink";
    case VfsOp::kReaddir:
      return "readdir";
    case VfsOp::kMmap:
      return "mmap";
    case VfsOp::kMmapRead:
      return "mmap_read";
    case VfsOp::kMmapWrite:
      return "mmap_write";
  }
  return "?";
}

MemFs::MemFs(LocalFsParams params) : params_(params) {
  files_["/"] = File{.size = 0, .uid = 0, .gid = 0, .is_dir = true, .data = {}};
}

MemFs::File& MemFs::file_for_fd(int fd) {
  const auto it = handles_.find(fd);
  if (it == handles_.end()) {
    throw IoError(strprintf("bad fd %d", fd));
  }
  const auto fit = files_.find(it->second.path);
  if (fit == files_.end()) {
    throw IoError("file vanished under open handle: " + it->second.path);
  }
  return fit->second;
}

MemFs::Handle& MemFs::handle_for_fd(int fd) {
  const auto it = handles_.find(fd);
  if (it == handles_.end()) {
    throw IoError(strprintf("bad fd %d", fd));
  }
  return it->second;
}

SimTime MemFs::transfer_cost(Bytes n, bool is_write) const noexcept {
  const double mbps =
      is_write ? params_.write_bandwidth_mbps : params_.read_bandwidth_mbps;
  const double seconds =
      static_cast<double>(n) / (mbps * 1024.0 * 1024.0);
  return params_.io_base_cost + from_seconds(seconds);
}

VfsResult MemFs::open(const std::string& raw_path, OpenMode mode,
                      const OpCtx& ctx) {
  const std::string path = normalize_path(raw_path);
  SimTime cost = params_.open_cost;
  auto it = files_.find(path);
  if (it == files_.end()) {
    if (!mode.create) {
      throw IoError("open: no such file: " + path);
    }
    File f;
    f.uid = ctx.uid;
    f.gid = ctx.gid;
    files_.emplace(path, std::move(f));
    cost = params_.create_cost;
  } else if (it->second.is_dir) {
    throw IoError("open: is a directory: " + path);
  } else if (mode.truncate) {
    it->second.size = 0;
    it->second.data.clear();
  }
  const int fd = next_fd_++;
  handles_[fd] = Handle{path, mode, false};
  return {fd, cost};
}

VfsResult MemFs::close(int fd, const OpCtx& /*ctx*/) {
  if (handles_.erase(fd) == 0) {
    throw IoError(strprintf("close: bad fd %d", fd));
  }
  return {0, params_.close_cost};
}

VfsResult MemFs::read(int fd, Bytes offset, Bytes n, const OpCtx& /*ctx*/,
                      std::uint8_t* out) {
  File& f = file_for_fd(fd);
  if (offset < 0 || n < 0) {
    throw IoError("read: negative offset or count");
  }
  const Bytes avail = std::max<Bytes>(0, f.size - offset);
  const Bytes got = std::min(n, avail);
  if (out != nullptr && !f.data.empty() && got > 0) {
    const Bytes stored =
        std::min<Bytes>(got, static_cast<Bytes>(f.data.size()) - offset);
    if (stored > 0) {
      std::memcpy(out, f.data.data() + offset,
                  static_cast<std::size_t>(stored));
    }
  }
  return {got, transfer_cost(got, /*is_write=*/false)};
}

VfsResult MemFs::write(int fd, Bytes offset, Bytes n, const OpCtx& /*ctx*/,
                       const std::uint8_t* data) {
  Handle& h = handle_for_fd(fd);
  if (!h.mode.write) {
    throw IoError("write: fd not opened for writing");
  }
  File& f = file_for_fd(fd);
  if (offset < 0 || n < 0) {
    throw IoError("write: negative offset or count");
  }
  const Bytes end = offset + n;
  f.size = std::max(f.size, end);
  if (params_.content == ContentPolicy::kRetain && data != nullptr) {
    if (end > params_.max_retained_bytes) {
      throw ConfigError("MemFs content retention limit exceeded");
    }
    if (static_cast<Bytes>(f.data.size()) < end) {
      f.data.resize(static_cast<std::size_t>(end), 0);
    }
    std::memcpy(f.data.data() + offset, data, static_cast<std::size_t>(n));
  }
  return {n, transfer_cost(n, /*is_write=*/true)};
}

VfsResult MemFs::fsync(int fd, const OpCtx& /*ctx*/) {
  (void)file_for_fd(fd);
  return {0, params_.fsync_cost};
}

VfsResult MemFs::stat(const std::string& raw_path, const OpCtx& /*ctx*/) {
  const std::string path = normalize_path(raw_path);
  const auto it = files_.find(path);
  if (it == files_.end()) {
    throw IoError("stat: no such file: " + path);
  }
  return {it->second.size, params_.stat_cost};
}

VfsResult MemFs::statfs(const OpCtx& /*ctx*/) {
  return {0, params_.statfs_cost};
}

VfsResult MemFs::mkdir(const std::string& raw_path, const OpCtx& ctx) {
  const std::string path = normalize_path(raw_path);
  if (files_.contains(path)) {
    throw IoError("mkdir: exists: " + path);
  }
  File d;
  d.is_dir = true;
  d.uid = ctx.uid;
  d.gid = ctx.gid;
  files_.emplace(path, std::move(d));
  return {0, params_.mkdir_cost};
}

VfsResult MemFs::unlink(const std::string& raw_path, const OpCtx& /*ctx*/) {
  const std::string path = normalize_path(raw_path);
  const auto it = files_.find(path);
  if (it == files_.end()) {
    throw IoError("unlink: no such file: " + path);
  }
  if (it->second.is_dir) {
    throw IoError("unlink: is a directory: " + path);
  }
  files_.erase(it);
  return {0, params_.unlink_cost};
}

VfsResult MemFs::readdir(const std::string& raw_path, const OpCtx& /*ctx*/) {
  const auto entries = list(raw_path);
  const SimTime cost =
      params_.readdir_cost_base +
      params_.readdir_cost_per_entry * static_cast<SimTime>(entries.size());
  return {static_cast<Bytes>(entries.size()), cost};
}

VfsResult MemFs::mmap(int fd, const OpCtx& /*ctx*/) {
  Handle& h = handle_for_fd(fd);
  h.mapped = true;
  return {0, params_.mmap_cost};
}

VfsResult MemFs::mmap_read(int fd, Bytes offset, Bytes n, const OpCtx& ctx) {
  const Handle& h = handle_for_fd(fd);
  if (!h.mapped) {
    throw IoError("mmap_read: fd not mapped");
  }
  return read(fd, offset, n, ctx, nullptr);
}

VfsResult MemFs::mmap_write(int fd, Bytes offset, Bytes n, const OpCtx& ctx) {
  const Handle& h = handle_for_fd(fd);
  if (!h.mapped) {
    throw IoError("mmap_write: fd not mapped");
  }
  return write(fd, offset, n, ctx, nullptr);
}

bool MemFs::exists(const std::string& path) const {
  return files_.contains(normalize_path(path));
}

StatInfo MemFs::stat_info(const std::string& path) const {
  const auto it = files_.find(normalize_path(path));
  if (it == files_.end()) {
    throw IoError("stat_info: no such file: " + path);
  }
  return {it->second.size, it->second.uid, it->second.gid, it->second.is_dir};
}

std::vector<std::string> MemFs::list(const std::string& raw_dir) const {
  const std::string dir = normalize_path(raw_dir);
  const std::string prefix = dir == "/" ? "/" : dir + "/";
  std::vector<std::string> out;
  for (const auto& [path, file] : files_) {
    if (path == dir || !starts_with(path, prefix)) {
      continue;
    }
    const std::string rest = path.substr(prefix.size());
    if (rest.find('/') == std::string::npos) {
      out.push_back(path);
    }
  }
  return out;
}

std::vector<std::uint8_t> MemFs::content(const std::string& path) const {
  const auto it = files_.find(normalize_path(path));
  if (it == files_.end()) {
    throw IoError("content: no such file: " + path);
  }
  return it->second.data;
}

int MemFs::open_handle_count() const noexcept {
  return static_cast<int>(handles_.size());
}

}  // namespace iotaxo::fs
