#include "sim/cluster.h"

#include "util/error.h"
#include "util/strings.h"

namespace iotaxo::sim {

Cluster::Cluster(ClusterParams params)
    : params_(std::move(params)), network_(params_.network) {
  if (params_.node_count <= 0) {
    throw ConfigError("cluster needs at least one node");
  }
  Rng rng(params_.seed);
  nodes_.reserve(static_cast<std::size_t>(params_.node_count));
  for (int id = 0; id < params_.node_count; ++id) {
    Node n;
    n.id = id;
    n.hostname = strprintf("%s%d.lanl.gov", params_.hostname_stem.c_str(), id);
    const SimTime offset =
        rng.uniform(-params_.max_skew, params_.max_skew);
    const double drift =
        rng.normal(0.0, params_.max_drift_ppm / 2.0);
    n.clock = ClockModel(params_.epoch, offset, drift);
    n.first_pid = 10000u + static_cast<std::uint32_t>(id) * 37u;
    double speed = rng.normal(1.0, params_.io_speed_sigma);
    if (speed < 0.85) {
      speed = 0.85;  // clip pathological draws
    }
    n.io_speed_factor = speed;
    nodes_.push_back(std::move(n));
  }
}

const Node& Cluster::node(int id) const {
  if (id < 0 || id >= node_count()) {
    throw ConfigError(strprintf("node id %d out of range", id));
  }
  return nodes_[static_cast<std::size_t>(id)];
}

SimTime Cluster::local_time(int node_id, SimTime global) const {
  return node(node_id).clock.local(global);
}

}  // namespace iotaxo::sim
