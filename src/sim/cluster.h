// The simulated cluster: a set of compute nodes, each with its own clock
// model, connected by an interconnect. This is the substrate every traced
// application and every tracing framework runs on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/clock_model.h"
#include "sim/network.h"
#include "util/rng.h"
#include "util/types.h"

namespace iotaxo::sim {

struct Node {
  int id = 0;
  std::string hostname;
  ClockModel clock;
  /// Base pid assigned to the first simulated process on this node.
  std::uint32_t first_pid = 10000;
  /// Per-node I/O speed multiplier (~N(1, sigma)); real clusters are never
  /// perfectly homogeneous, and replay-fidelity experiments depend on it.
  double io_speed_factor = 1.0;
};

struct ClusterParams {
  int node_count = 32;
  /// Hostname stem; nodes are named "<stem><id>.lanl.gov" like the paper's
  /// sample output (host13.lanl.gov, ...).
  std::string hostname_stem = "host";
  NetworkParams network{};

  /// Clock imperfection ranges. Skew offsets are drawn uniformly in
  /// [-max_skew, +max_skew]; drift in [-max_drift_ppm, +max_drift_ppm].
  SimTime max_skew = from_millis(250.0);
  double max_drift_ppm = 40.0;

  /// Local wall-clock epoch: 2006-10-02 ~10:59 UTC, matching the paper's
  /// Figure 1 timestamps (1159808385.xx).
  SimTime epoch = 1159808385LL * kSecond;

  /// Relative sigma of per-node I/O speed (0 = perfectly homogeneous).
  double io_speed_sigma = 0.02;

  /// Seed controlling the skew/drift/speed draws (and nothing else).
  std::uint64_t seed = 0x10C4;
};

class Cluster {
 public:
  explicit Cluster(ClusterParams params = {});

  [[nodiscard]] int node_count() const noexcept {
    return static_cast<int>(nodes_.size());
  }
  [[nodiscard]] const Node& node(int id) const;
  [[nodiscard]] const std::vector<Node>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] const Network& network() const noexcept { return network_; }
  [[nodiscard]] const ClusterParams& params() const noexcept { return params_; }

  /// Local clock reading of `node_id` at global instant `global`.
  [[nodiscard]] SimTime local_time(int node_id, SimTime global) const;

 private:
  ClusterParams params_;
  std::vector<Node> nodes_;
  Network network_;
};

}  // namespace iotaxo::sim
