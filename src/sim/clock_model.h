// Per-node clock model with skew (constant offset) and drift (rate error).
//
// The paper's taxonomy feature "Accounts for time skew and drift" (§3.1)
// requires trace timestamps to come from *node-local* clocks that disagree.
// We model node n's local clock as
//
//     local(t) = epoch + t * (1 + drift_ppm * 1e-6) + offset
//
// where t is true (global simulation) time. LANL-Trace's pre/post barrier
// job samples local clocks at known global instants, letting the analysis
// layer (analysis/skew_drift) recover offset and drift.
#pragma once

#include "util/types.h"

namespace iotaxo::sim {

class ClockModel {
 public:
  ClockModel() noexcept = default;

  /// epoch: local wall-clock value at global time 0 (lets traces print
  /// realistic absolute timestamps). offset: skew vs true time. drift_ppm:
  /// parts-per-million rate error.
  ClockModel(SimTime epoch, SimTime offset, double drift_ppm) noexcept
      : epoch_(epoch), offset_(offset), drift_ppm_(drift_ppm) {}

  /// Convert a global simulation instant to this node's local clock reading.
  [[nodiscard]] SimTime local(SimTime global) const noexcept {
    const double skewed =
        static_cast<double>(global) * (1.0 + drift_ppm_ * 1e-6);
    return epoch_ + offset_ + static_cast<SimTime>(skewed);
  }

  /// Invert local() — recover the global instant for a local reading.
  [[nodiscard]] SimTime global(SimTime local_time) const noexcept {
    const double t = static_cast<double>(local_time - epoch_ - offset_) /
                     (1.0 + drift_ppm_ * 1e-6);
    return static_cast<SimTime>(t);
  }

  [[nodiscard]] SimTime epoch() const noexcept { return epoch_; }
  [[nodiscard]] SimTime offset() const noexcept { return offset_; }
  [[nodiscard]] double drift_ppm() const noexcept { return drift_ppm_; }

 private:
  SimTime epoch_ = 0;
  SimTime offset_ = 0;
  double drift_ppm_ = 0.0;
};

}  // namespace iotaxo::sim
