// Interconnect model: gigabit-Ethernet-class latency/bandwidth, matching the
// paper's testbed ("gigabit ethernet-over-copper interconnect").
#pragma once

#include "util/types.h"

namespace iotaxo::sim {

struct NetworkParams {
  /// One-way small-message latency (switch + stack).
  SimTime latency = from_micros(55.0);
  /// Link bandwidth in bytes per second (1 Gbit/s ~ 117 MiB/s effective).
  double bandwidth_bps = 117.0 * 1024 * 1024;
  /// Fixed per-message software overhead at each endpoint.
  SimTime per_message_overhead = from_micros(8.0);
};

class Network {
 public:
  Network() noexcept = default;
  explicit Network(NetworkParams params) noexcept : params_(params) {}

  /// Time for `bytes` to travel between two distinct nodes. Messages a node
  /// sends to itself cost only the software overhead.
  [[nodiscard]] SimTime transfer_time(Bytes bytes, bool same_node) const noexcept {
    if (same_node) {
      return params_.per_message_overhead;
    }
    const double wire =
        static_cast<double>(bytes) / params_.bandwidth_bps * 1e9;
    return params_.latency + params_.per_message_overhead +
           static_cast<SimTime>(wire);
  }

  /// Latency component only (used for barrier fan-in/fan-out estimates).
  [[nodiscard]] SimTime latency() const noexcept { return params_.latency; }

  [[nodiscard]] const NetworkParams& params() const noexcept { return params_; }

 private:
  NetworkParams params_{};
};

}  // namespace iotaxo::sim
