#include "replay/replayer.h"

#include <utility>

#include "interpose/tracers.h"
#include "trace/sink.h"
#include "util/error.h"

namespace iotaxo::replay {

Replayer::Replayer(const sim::Cluster& cluster, fs::VfsPtr vfs)
    : cluster_(cluster), vfs_(std::move(vfs)) {
  if (!vfs_) {
    throw ConfigError("Replayer needs a file system");
  }
}

ReplayResult Replayer::replay(const trace::TraceBundle& original,
                              const ReplayOptions& options) {
  return run_programs(generate_pseudo_app(original, options.pseudo), options);
}

ReplayResult Replayer::replay(
    const trace::EventBatch& original,
    const std::vector<trace::DependencyEdge>& dependencies,
    const ReplayOptions& options) {
  return run_programs(generate_pseudo_app(original, dependencies,
                                          options.pseudo),
                      options);
}

ReplayResult Replayer::replay(
    const trace::BatchView& original,
    const std::vector<trace::DependencyEdge>& dependencies,
    const ReplayOptions& options) {
  return run_programs(generate_pseudo_app(original, dependencies,
                                          options.pseudo),
                      options);
}

ReplayResult Replayer::run_programs(const std::vector<mpi::Program>& programs,
                                    const ReplayOptions& options) {
  mpi::RunOptions run_options;
  run_options.vfs = vfs_;
  run_options.startup = options.startup;
  run_options.cmdline = "/pseudo_app.exe";

  auto vec_sink = std::make_shared<trace::VectorSink>();
  auto sum_sink = std::make_shared<trace::SummarySink>();
  std::shared_ptr<interpose::DynLibInterposer> capture;
  if (options.capture_trace) {
    auto multi = std::make_shared<trace::MultiSink>(
        std::vector<trace::SinkPtr>{vec_sink, sum_sink});
    capture = std::make_shared<interpose::DynLibInterposer>(
        multi, interpose::InterposeCosts{}, options.batch_capacity);
    run_options.observers.push_back(capture);
  }

  mpi::Runtime runtime(cluster_, run_options);
  ReplayResult result;
  result.run = runtime.run(programs);

  if (options.capture_trace) {
    trace::TraceBundle& b = result.bundle;
    b.metadata["application"] = "pseudo_app (replay)";
    b.metadata["sync"] =
        options.pseudo.sync == SyncStrategy::kBarriers      ? "barriers"
        : options.pseudo.sync == SyncStrategy::kDependencies ? "dependencies"
                                                              : "none";
    // Split the flat capture into per-rank streams.
    std::map<int, trace::RankStream> by_rank;
    for (const trace::TraceEvent& ev : vec_sink->events()) {
      trace::RankStream& rs = by_rank[ev.rank];
      rs.rank = ev.rank;
      rs.host = ev.host;
      rs.pid = ev.pid;
      if (ev.name == "MPI_Barrier") {
        b.barrier_events.push_back(ev);
      }
      rs.events.push_back(ev);
    }
    for (auto& [rank, rs] : by_rank) {
      b.ranks.push_back(std::move(rs));
    }
    b.merge_summary(*sum_sink);
  }
  return result;
}

analysis::FidelityReport Replayer::verify(const trace::TraceBundle& original,
                                          SimTime original_elapsed,
                                          const ReplayOptions& options) {
  ReplayResult r = replay(original, options);
  return analysis::compare_traces(original, r.bundle, original_elapsed,
                                  r.run.elapsed);
}

}  // namespace iotaxo::replay
