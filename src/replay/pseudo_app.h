// Pseudo-application generation: turn a captured trace back into rank
// programs that reproduce the original I/O signature (§3.1 "Replayable
// trace generation": "generate a pseudo-application from collected trace
// data with the aim of reproducing the I/O signature of the original
// application").
//
// Synchronization strategy is the key fidelity lever:
//  * kBarriers      — replay every MPI_Barrier found in the trace (needs a
//                     trace that recorded them; LANL-Trace ltrace mode and
//                     //TRACE both do).
//  * kDependencies  — the //TRACE model: the replayer only knows the
//                     *discovered* inter-rank dependency edges and inserts
//                     point-to-point sync for exactly those. Undiscovered
//                     dependencies are silently dropped, which is how an
//                     incomplete throttling sample degrades replay fidelity.
//  * kNone          — free-running replay (think times only).
#pragma once

#include <vector>

#include "mpi/program.h"
#include "trace/bundle.h"
#include "trace/event_batch.h"
#include "trace/record_view.h"

namespace iotaxo::replay {

enum class SyncStrategy { kBarriers, kDependencies, kNone };

struct PseudoAppOptions {
  SyncStrategy sync = SyncStrategy::kBarriers;
  /// Replayer bookkeeping per replayed I/O op (reading the trace record,
  /// computing the offset): a mechanical source of baseline replay error.
  SimTime per_op_overhead = from_micros(40.0);
  /// Think-time gaps are quantized to this grain, as a real replayer's
  /// sleep/poll loop would.
  SimTime gap_quantum = from_micros(100.0);
  /// Gaps below this threshold are dropped entirely.
  SimTime min_gap = from_micros(50.0);
  /// Merge runs of same-size equally-strided I/O ops into one batched op
  /// (smaller pseudo-apps; identical I/O signature).
  bool coalesce = true;
};

/// Generate one program per rank present in the bundle. Requires raw rank
/// streams (throws FormatError otherwise).
[[nodiscard]] std::vector<mpi::Program> generate_pseudo_app(
    const trace::TraceBundle& bundle, const PseudoAppOptions& options = {});

/// Generate straight from a capture batch (records grouped by rank,
/// within-rank order preserved): the batched pipeline's events are read
/// through string views and never exploded back into per-event heap
/// objects. Throws FormatError on an empty batch.
[[nodiscard]] std::vector<mpi::Program> generate_pseudo_app(
    const trace::EventBatch& batch,
    const std::vector<trace::DependencyEdge>& dependencies,
    const PseudoAppOptions& options = {});

/// Generate straight from a zero-copy container view: records and strings
/// are read in place from the mapped IOTB2 buffer, so multi-GB containers
/// replay without ever materializing an EventBatch. Same grouping and
/// rank-filtering semantics as the batch overload; the view (and its
/// backing bytes) only needs to outlive this call. Throws FormatError on
/// an empty view.
[[nodiscard]] std::vector<mpi::Program> generate_pseudo_app(
    const trace::BatchView& view,
    const std::vector<trace::DependencyEdge>& dependencies,
    const PseudoAppOptions& options = {});

/// Coalescing post-pass (exposed for tests): merges adjacent kWriteBlocks /
/// kReadBlocks ops with identical slot/block/api whose offsets advance by a
/// constant stride. I/O bytes and ordering are preserved exactly.
[[nodiscard]] mpi::Program coalesce_program(const mpi::Program& program);

}  // namespace iotaxo::replay
