#include "replay/pseudo_app.h"

#include <algorithm>
#include <map>
#include <set>
#include <span>
#include <string_view>

#include "util/error.h"
#include "util/rng.h"
#include "util/strings.h"

namespace iotaxo::replay {

using mpi::Api;
using mpi::Op;
using mpi::OpType;
using mpi::Program;
using trace::EventClass;
using trace::TraceEvent;

namespace {

/// A borrowed, allocation-free view of one trace event: the generator core
/// reads through this so per-event TraceEvents (bundle path), interned
/// EventBatch records (batched path) and zero-copy container records
/// (BatchView path) drive identical code.
struct EventView {
  EventClass cls = EventClass::kSyscall;
  std::string_view name;
  std::string_view path;
  long long ret = 0;
  SimTime local_start = 0;
  SimTime duration = 0;
  int fd = -1;
  Bytes bytes = 0;
  Bytes offset = -1;
  // Args live in a TraceEvent's string vector, in a batch pool, or in a
  // container's in-place argument-id table.
  const std::vector<std::string>* arg_strs = nullptr;
  std::span<const trace::StrId> arg_ids{};
  const trace::StringPool* pool = nullptr;
  const trace::BatchView* view = nullptr;
  std::uint32_t view_args_begin = 0;
  std::uint32_t view_args_count = 0;

  [[nodiscard]] std::size_t arg_count() const noexcept {
    if (view != nullptr) {
      return view_args_count;
    }
    return arg_strs != nullptr ? arg_strs->size() : arg_ids.size();
  }
  [[nodiscard]] std::string_view arg(std::size_t j) const {
    if (view != nullptr) {
      return view->string(view->arg_id(view_args_begin + j));
    }
    return arg_strs != nullptr ? std::string_view((*arg_strs)[j])
                               : pool->view(arg_ids[j]);
  }
};

[[nodiscard]] EventView view_of(const TraceEvent& ev) {
  EventView v;
  v.cls = ev.cls;
  v.name = ev.name;
  v.path = ev.path;
  v.ret = ev.ret;
  v.local_start = ev.local_start;
  v.duration = ev.duration;
  v.fd = ev.fd;
  v.bytes = ev.bytes;
  v.offset = ev.offset;
  v.arg_strs = &ev.args;
  return v;
}

[[nodiscard]] EventView view_of(const trace::EventBatch& batch,
                                std::size_t i) {
  const trace::EventRecord& rec = batch.record(i);
  EventView v;
  v.cls = rec.cls;
  v.name = batch.name(i);
  v.path = batch.path(i);
  v.ret = rec.ret;
  v.local_start = rec.local_start;
  v.duration = rec.duration;
  v.fd = rec.fd;
  v.bytes = rec.bytes;
  v.offset = rec.offset;
  v.arg_ids = batch.args(i);
  v.pool = &batch.pool();
  return v;
}

[[nodiscard]] EventView view_of(const trace::BatchView& view, std::size_t i,
                                std::uint32_t args_begin) {
  const trace::RecordView rec = view.record(i);
  EventView v;
  v.cls = rec.cls();
  v.name = view.string(rec.name());
  v.path = view.string(rec.path());
  v.ret = rec.ret();
  v.local_start = rec.local_start();
  v.duration = rec.duration();
  v.fd = rec.fd();
  v.bytes = rec.bytes();
  v.offset = rec.offset();
  v.view = &view;
  v.view_args_begin = args_begin;
  v.view_args_count = rec.args_count();
  return v;
}

[[nodiscard]] bool is_library_driven(const std::vector<EventView>& events) {
  for (const EventView& ev : events) {
    if (ev.cls == EventClass::kLibraryCall) {
      return true;
    }
  }
  return false;
}

[[nodiscard]] fs::OpenMode mode_from_view(const EventView& ev) {
  // MPI open modes are symbolic; POSIX open flags were rendered numerically
  // with 577 == O_WRONLY|O_CREAT|O_TRUNC.
  for (std::size_t j = 0; j < ev.arg_count(); ++j) {
    const std::string_view a = ev.arg(j);
    if (a.find("MPI_MODE_CREATE") != std::string_view::npos || a == "577") {
      return fs::OpenMode::write_create();
    }
  }
  return fs::OpenMode::read_only();
}

[[nodiscard]] int tag_for_label(const std::string& label) {
  return static_cast<int>(fnv1a(label) & 0x7FFFFFFFu);
}

/// Pre-scan: decide the access hint per file descriptor from the gap
/// structure of its write/read offsets.
[[nodiscard]] std::map<int, fs::AccessHint> infer_hints(
    const std::vector<EventView>& events, bool lib_driven) {
  std::map<int, Bytes> last_end;
  std::map<int, fs::AccessHint> hints;
  for (const EventView& ev : events) {
    const bool relevant =
        lib_driven ? ev.cls == EventClass::kLibraryCall
                   : ev.cls == EventClass::kSyscall;
    if (!relevant || ev.offset < 0 || ev.bytes <= 0) {
      continue;
    }
    if (ev.name != "SYS_write" && ev.name != "SYS_read" &&
        ev.name != "MPI_File_write_at" && ev.name != "MPI_File_read_at" &&
        ev.name != "write" && ev.name != "read") {
      continue;
    }
    const auto it = last_end.find(ev.fd);
    if (it != last_end.end() && ev.offset != it->second) {
      hints[ev.fd] = fs::AccessHint::kStrided;
    } else if (!hints.contains(ev.fd)) {
      hints[ev.fd] = fs::AccessHint::kSequential;
    }
    last_end[ev.fd] = ev.offset + ev.bytes;
  }
  return hints;
}

/// Generate one rank's program from its event views (shared core of the
/// bundle and batch entry points).
[[nodiscard]] Program generate_rank_program(
    int rank, const std::vector<EventView>& events,
    const std::map<std::string, std::vector<trace::DependencyEdge>>&
        deps_by_label,
    const PseudoAppOptions& options) {
  const bool lib_driven = is_library_driven(events);
  const auto hints = infer_hints(events, lib_driven);
  Program prog;

  std::map<int, int> fd_to_slot;
  int next_slot = 0;
  SimTime prev_end = -1;

  auto add_gap = [&](SimTime start) {
    if (prev_end >= 0 && start > prev_end) {
      const SimTime gap = start - prev_end;
      if (gap >= options.min_gap && options.gap_quantum > 0) {
        Op op;
        op.type = OpType::kCompute;
        op.duration = (gap / options.gap_quantum) * options.gap_quantum;
        if (op.duration > 0) {
          prog.push_back(std::move(op));
        }
      }
    }
  };

  for (const EventView& ev : events) {
    const bool relevant = lib_driven
                              ? ev.cls == EventClass::kLibraryCall
                              : ev.cls == EventClass::kSyscall;
    if (!relevant) {
      continue;
    }
    const std::string_view n = ev.name;

    if (n == "MPI_Barrier") {
      add_gap(ev.local_start);
      const std::string label(ev.path);
      if (options.sync == SyncStrategy::kBarriers) {
        Op op;
        op.type = OpType::kBarrier;
        op.label = label;
        prog.push_back(std::move(op));
      } else if (options.sync == SyncStrategy::kDependencies) {
        const auto it = deps_by_label.find(label);
        if (it != deps_by_label.end()) {
          // Sends first (non-blocking), then receives.
          for (const trace::DependencyEdge& e : it->second) {
            if (e.from_rank == rank) {
              Op op;
              op.type = OpType::kSend;
              op.peer = e.to_rank;
              op.msg_bytes = 8;
              op.tag = tag_for_label(label);
              prog.push_back(std::move(op));
            }
          }
          for (const trace::DependencyEdge& e : it->second) {
            if (e.to_rank == rank) {
              Op op;
              op.type = OpType::kRecv;
              op.peer = e.from_rank;
              op.tag = tag_for_label(label);
              prog.push_back(std::move(op));
            }
          }
        }
      }
      prev_end = ev.local_start + ev.duration;
      continue;
    }

    if (n == "MPI_File_open" || n == "open" || n == "SYS_open") {
      add_gap(ev.local_start);
      const int slot = next_slot++;
      fd_to_slot[static_cast<int>(ev.ret)] = slot;
      Op op;
      op.type = OpType::kOpen;
      op.slot = slot;
      op.path = std::string(ev.path);
      op.mode = mode_from_view(ev);
      const auto hint_it = hints.find(static_cast<int>(ev.ret));
      op.hint = hint_it == hints.end() ? fs::AccessHint::kSequential
                                       : hint_it->second;
      op.api = n == "MPI_File_open" ? Api::kMpiIo : Api::kPosix;
      prog.push_back(std::move(op));
      prev_end = ev.local_start + ev.duration;
      continue;
    }

    if (n == "MPI_File_close" || n == "close" || n == "SYS_close") {
      const auto it = fd_to_slot.find(ev.fd);
      if (it == fd_to_slot.end()) {
        continue;  // close of an fd we never saw opened (e.g. /etc files)
      }
      add_gap(ev.local_start);
      Op op;
      op.type = OpType::kClose;
      op.slot = it->second;
      op.api = n == "MPI_File_close" ? Api::kMpiIo : Api::kPosix;
      prog.push_back(std::move(op));
      fd_to_slot.erase(it);
      prev_end = ev.local_start + ev.duration;
      continue;
    }

    const bool is_write =
        n == "MPI_File_write_at" || n == "write" || n == "SYS_write";
    const bool is_read =
        n == "MPI_File_read_at" || n == "read" || n == "SYS_read";
    if (is_write || is_read) {
      const auto it = fd_to_slot.find(ev.fd);
      if (it == fd_to_slot.end() || ev.bytes <= 0) {
        continue;
      }
      add_gap(ev.local_start);
      Op op;
      op.type = is_write ? OpType::kWriteBlocks : OpType::kReadBlocks;
      op.slot = it->second;
      op.block = ev.bytes;
      op.count = 1;
      op.start_offset = ev.offset >= 0 ? ev.offset : -1;
      op.api = n.starts_with("MPI_") ? Api::kMpiIo : Api::kPosix;
      const auto hint_it = hints.find(ev.fd);
      op.hint = hint_it == hints.end() ? fs::AccessHint::kSequential
                                       : hint_it->second;
      prog.push_back(std::move(op));
      prev_end = ev.local_start + ev.duration;
      continue;
    }

    if (n == "SYS_stat" || n == "stat") {
      add_gap(ev.local_start);
      Op op;
      op.type = OpType::kStat;
      op.path = std::string(ev.path);
      op.api = Api::kPosix;
      prog.push_back(std::move(op));
      prev_end = ev.local_start + ev.duration;
      continue;
    }
    if (n == "SYS_unlink" || n == "unlink") {
      add_gap(ev.local_start);
      Op op;
      op.type = OpType::kUnlink;
      op.path = std::string(ev.path);
      op.api = Api::kPosix;
      prog.push_back(std::move(op));
      prev_end = ev.local_start + ev.duration;
      continue;
    }
    if (n == "SYS_mkdir" || n == "mkdir") {
      add_gap(ev.local_start);
      Op op;
      op.type = OpType::kMkdir;
      op.path = std::string(ev.path);
      op.api = Api::kPosix;
      prog.push_back(std::move(op));
      prev_end = ev.local_start + ev.duration;
      continue;
    }
    // lseek/fcntl/statfs ride along implicitly with their parent ops.
  }

  // Close any slots the trace left dangling so replays are well formed.
  for (const auto& [fd, slot] : fd_to_slot) {
    Op op;
    op.type = OpType::kClose;
    op.slot = slot;
    op.api = Api::kPosix;
    prog.push_back(std::move(op));
  }
  if (options.coalesce) {
    prog = coalesce_program(prog);
  }
  if (options.per_op_overhead > 0) {
    // One bookkeeping charge per replayed op (a coalesced batch counts
    // once: the replayer walks a compact run-length record for it).
    mpi::Program with_overhead;
    with_overhead.reserve(prog.size() * 2);
    for (Op& op : prog) {
      if (op.type == OpType::kWriteBlocks ||
          op.type == OpType::kReadBlocks || op.type == OpType::kOpen) {
        Op pause;
        pause.type = OpType::kCompute;
        pause.duration = options.per_op_overhead;
        with_overhead.push_back(std::move(pause));
      }
      with_overhead.push_back(std::move(op));
    }
    prog = std::move(with_overhead);
  }
  return prog;
}

[[nodiscard]] std::map<std::string, std::vector<trace::DependencyEdge>>
index_dependencies(const std::vector<trace::DependencyEdge>& dependencies) {
  std::map<std::string, std::vector<trace::DependencyEdge>> deps_by_label;
  for (const trace::DependencyEdge& e : dependencies) {
    deps_by_label[e.via].push_back(e);
  }
  return deps_by_label;
}

}  // namespace

std::vector<Program> generate_pseudo_app(const trace::TraceBundle& bundle,
                                         const PseudoAppOptions& options) {
  if (!bundle.has_raw_streams()) {
    throw FormatError(
        "pseudo-app generation requires raw rank streams in the bundle");
  }
  const auto deps_by_label = index_dependencies(bundle.dependencies);

  std::vector<Program> programs;
  programs.reserve(bundle.ranks.size());
  std::vector<EventView> views;
  for (const trace::RankStream& rs : bundle.ranks) {
    views.clear();
    views.reserve(rs.events.size());
    for (const TraceEvent& ev : rs.events) {
      views.push_back(view_of(ev));
    }
    programs.push_back(
        generate_rank_program(rs.rank, views, deps_by_label, options));
  }
  return programs;
}

std::vector<Program> generate_pseudo_app(
    const trace::EventBatch& batch,
    const std::vector<trace::DependencyEdge>& dependencies,
    const PseudoAppOptions& options) {
  if (batch.empty()) {
    throw FormatError("pseudo-app generation requires a non-empty batch");
  }
  const auto deps_by_label = index_dependencies(dependencies);

  // Group record indices by rank (ranks ascend, within-rank order kept).
  // Records without a rank identity (rank < 0: probes, annotations that
  // reached the sink) cannot form a program — the bundle path never sees
  // them as a rank stream either — so they are dropped, not replayed as a
  // phantom rank.
  std::map<int, std::vector<std::size_t>> by_rank;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch.record(i).rank >= 0) {
      by_rank[batch.record(i).rank].push_back(i);
    }
  }
  if (by_rank.empty()) {
    throw FormatError("pseudo-app generation: batch has no ranked events");
  }

  std::vector<Program> programs;
  programs.reserve(by_rank.size());
  std::vector<EventView> views;
  for (const auto& [rank, indices] : by_rank) {
    views.clear();
    views.reserve(indices.size());
    for (const std::size_t i : indices) {
      views.push_back(view_of(batch, i));
    }
    programs.push_back(
        generate_rank_program(rank, views, deps_by_label, options));
  }
  return programs;
}

std::vector<Program> generate_pseudo_app(
    const trace::BatchView& view,
    const std::vector<trace::DependencyEdge>& dependencies,
    const PseudoAppOptions& options) {
  if (view.empty()) {
    throw FormatError("pseudo-app generation requires a non-empty container");
  }
  const auto deps_by_label = index_dependencies(dependencies);

  // Group record indices by rank exactly as the batch overload does,
  // carrying each record's args_begin (the view's args slices are only
  // addressable through the running sum).
  std::map<int, std::vector<std::pair<std::size_t, std::uint32_t>>> by_rank;
  view.for_each([&](std::size_t i, const trace::RecordView& rec,
                    std::uint32_t args_begin) {
    if (rec.rank() >= 0) {
      by_rank[rec.rank()].emplace_back(i, args_begin);
    }
  });
  if (by_rank.empty()) {
    throw FormatError("pseudo-app generation: container has no ranked events");
  }

  std::vector<Program> programs;
  programs.reserve(by_rank.size());
  std::vector<EventView> views;
  for (const auto& [rank, indices] : by_rank) {
    views.clear();
    views.reserve(indices.size());
    for (const auto& [i, args_begin] : indices) {
      views.push_back(view_of(view, i, args_begin));
    }
    programs.push_back(
        generate_rank_program(rank, views, deps_by_label, options));
  }
  return programs;
}

mpi::Program coalesce_program(const mpi::Program& program) {
  mpi::Program out;
  out.reserve(program.size());
  for (const Op& op : program) {
    const bool is_io = op.type == OpType::kWriteBlocks ||
                       op.type == OpType::kReadBlocks;
    if (is_io && !out.empty()) {
      Op& prev = out.back();
      if (op.count == 1 && prev.type == op.type && prev.slot == op.slot &&
          prev.block == op.block && prev.api == op.api &&
          prev.hint == op.hint && prev.start_offset >= 0 &&
          op.start_offset >= 0) {
        if (prev.count == 1) {
          // A pair starts a run; the gap defines the stride, which must be
          // a whole number of blocks forward (contiguous or regular
          // interleave — anything else is not a pattern worth encoding).
          const Bytes gap = op.start_offset - prev.start_offset;
          if (gap >= prev.block && gap % prev.block == 0) {
            prev.stride = gap == prev.block ? 0 : gap;
            prev.count = 2;
            continue;
          }
        } else {
          const Bytes stride_now =
              prev.stride == 0 ? prev.block : prev.stride;
          if (op.start_offset ==
              prev.start_offset + stride_now * prev.count) {
            ++prev.count;
            continue;
          }
        }
      }
    }
    out.push_back(op);
  }
  return out;
}

}  // namespace iotaxo::replay
