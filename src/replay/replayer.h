// The replayer: run a pseudo-application on a (fresh) simulated cluster and
// file system, optionally re-tracing it so its trace can be compared with
// the original (the paper's two fidelity checks: trace-vs-trace comparison
// and end-to-end runtime comparison).
#pragma once

#include <memory>

#include "analysis/trace_diff.h"
#include "fs/vfs.h"
#include "mpi/runtime.h"
#include "replay/pseudo_app.h"
#include "sim/cluster.h"
#include "trace/bundle.h"

namespace iotaxo::replay {

struct ReplayResult {
  mpi::RunResult run;
  /// Trace of the replay itself (captured with library interposition),
  /// populated when ReplayOptions::capture_trace is set.
  trace::TraceBundle bundle;
};

struct ReplayOptions {
  PseudoAppOptions pseudo{};
  bool capture_trace = true;
  /// Startup charged to the replay job (the replayer binary is lighter
  /// than an mpirun of the full application stack).
  SimTime startup = from_millis(220.0);
  /// Per-rank sink-delivery batch size for the replay's own capture
  /// (1 = per-event delivery).
  std::size_t batch_capacity = 256;
};

class Replayer {
 public:
  Replayer(const sim::Cluster& cluster, fs::VfsPtr vfs);

  [[nodiscard]] ReplayResult replay(const trace::TraceBundle& original,
                                    const ReplayOptions& options = {});

  /// Replay straight from a capture batch (plus any discovered dependency
  /// edges): the batched pipeline end-to-end, no per-event rehydration of
  /// the original trace.
  [[nodiscard]] ReplayResult replay(
      const trace::EventBatch& original,
      const std::vector<trace::DependencyEdge>& dependencies,
      const ReplayOptions& options = {});

  /// Replay straight from a zero-copy IOTB2 view: the pseudo-app is
  /// generated off the mapped container bytes, so multi-GB traces replay
  /// without materializing an EventBatch. The view's backing buffer only
  /// needs to outlive the call.
  [[nodiscard]] ReplayResult replay(
      const trace::BatchView& original,
      const std::vector<trace::DependencyEdge>& dependencies,
      const ReplayOptions& options = {});

  /// Convenience: replay and score fidelity against the original capture.
  [[nodiscard]] analysis::FidelityReport verify(
      const trace::TraceBundle& original, SimTime original_elapsed,
      const ReplayOptions& options = {});

 private:
  /// Run generated rank programs and capture the replay's own trace.
  [[nodiscard]] ReplayResult run_programs(
      const std::vector<mpi::Program>& programs, const ReplayOptions& options);

  const sim::Cluster& cluster_;
  fs::VfsPtr vfs_;
};

}  // namespace iotaxo::replay
