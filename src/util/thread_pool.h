// Fixed-size worker pool behind every concurrent layer of the pipeline:
// whole-simulation fan-out (benchmark parameter sweeps, classification
// experiments), capture-side async batch flush (trace::AsyncBatchSink moves
// EventBatches onto pool workers so delivery leaves the traced path), and
// parallel aggregation scans in analysis::UnifiedTraceStore (per-source
// partials merged deterministically). The simulator core itself remains
// single-threaded and deterministic; concurrency enters only where state is
// sharded or handed off whole.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace iotaxo {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the future reports its result or exception.
  template <typename F>
  [[nodiscard]] auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Enqueue fire-and-forget work: no future, so the task must not throw
  /// (callers that need errors propagated own that, e.g. AsyncBatchSink
  /// captures the first exception and rethrows it from flush()).
  void post(std::function<void()> fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Run fn(i) for i in [0, n) across a temporary pool and wait for all.
/// Exceptions from tasks are rethrown (first one wins).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace iotaxo
