#include "util/ascii_chart.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/strings.h"

namespace iotaxo {

std::string render_chart(const std::vector<ChartSeries>& series,
                         const ChartOptions& options) {
  if (series.empty() || series.front().values.empty()) {
    throw ConfigError("render_chart: need at least one non-empty series");
  }
  const std::size_t n = series.front().values.size();
  for (const ChartSeries& s : series) {
    if (s.values.size() != n) {
      throw ConfigError("render_chart: series lengths differ");
    }
  }
  const int width = std::max(options.width, 8);
  const int height = std::max(options.height, 4);

  double y_max = options.y_max;
  if (y_max < 0) {
    y_max = 0;
    for (const ChartSeries& s : series) {
      for (const double v : s.values) {
        y_max = std::max(y_max, v);
      }
    }
    y_max *= 1.05;
    if (y_max <= 0) {
      y_max = 1.0;
    }
  }
  const double y_min = options.y_min;

  // Canvas with a left gutter for y tick values.
  std::vector<std::string> canvas(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width), ' '));

  auto plot = [&](double xf, double value, char marker) {
    const int col = static_cast<int>(std::lround(
        xf * (width - 1)));
    double t = (value - y_min) / (y_max - y_min);
    t = std::clamp(t, 0.0, 1.0);
    const int row = (height - 1) -
                    static_cast<int>(std::lround(t * (height - 1)));
    canvas[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
        marker;
  };

  for (const ChartSeries& s : series) {
    if (n == 1) {
      plot(0.0, s.values[0], s.marker);
      continue;
    }
    // Interpolate along columns so curves look continuous.
    for (int col = 0; col < width; ++col) {
      const double xf = static_cast<double>(col) / (width - 1);
      const double pos = xf * static_cast<double>(n - 1);
      const auto i = static_cast<std::size_t>(pos);
      const double frac = pos - static_cast<double>(i);
      const double v = i + 1 < n
                           ? s.values[i] * (1.0 - frac) + s.values[i + 1] * frac
                           : s.values[i];
      plot(xf, v, s.marker);
    }
  }

  // Assemble with axis.
  std::string out;
  for (int row = 0; row < height; ++row) {
    const double frac =
        static_cast<double>(height - 1 - row) / (height - 1);
    const double y = y_min + frac * (y_max - y_min);
    std::string tick;
    if (row == 0 || row == height - 1 || row == height / 2) {
      tick = strprintf("%8.1f", y);
    } else {
      tick = std::string(8, ' ');
    }
    out += tick + " |" + canvas[static_cast<std::size_t>(row)] + "\n";
  }
  out += std::string(9, ' ') + '+' + std::string(static_cast<std::size_t>(width), '-') + "\n";

  if (!options.x_labels.empty()) {
    std::string labels(static_cast<std::size_t>(width) + 10, ' ');
    const std::size_t k = options.x_labels.size();
    for (std::size_t i = 0; i < k; ++i) {
      const std::string& label = options.x_labels[i];
      auto col = static_cast<std::size_t>(
          10 + (k == 1 ? 0
                       : static_cast<double>(i) * (width - 1) /
                             static_cast<double>(k - 1)));
      // Right-edge labels shift left so they stay fully visible.
      if (col + label.size() > labels.size()) {
        col = labels.size() - std::min(labels.size(), label.size());
      }
      for (std::size_t j = 0; j < label.size() && col + j < labels.size();
           ++j) {
        labels[col + j] = label[j];
      }
    }
    out += labels + "\n";
  }
  if (!options.y_label.empty()) {
    out += "  y: " + options.y_label + "\n";
  }
  std::string legend = "  ";
  for (const ChartSeries& s : series) {
    legend += strprintf("[%c] %s  ", s.marker, s.name.c_str());
  }
  out += legend + "\n";
  return out;
}

}  // namespace iotaxo
