#include "util/table.h"

#include <algorithm>

#include "util/error.h"

namespace iotaxo {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kLeft) {
  if (headers_.empty()) {
    throw ConfigError("TextTable needs at least one column");
  }
}

void TextTable::set_align(std::size_t column, Align align) {
  if (column >= aligns_.size()) {
    throw ConfigError("TextTable::set_align: column out of range");
  }
  aligns_[column] = align;
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw ConfigError("TextTable::add_row: wrong cell count");
  }
  rows_.push_back(Row{std::move(cells), pending_separator_});
  pending_separator_ = false;
}

void TextTable::add_separator() { pending_separator_ = true; }

namespace {

std::string pad(const std::string& s, std::size_t width, Align align) {
  if (s.size() >= width) {
    return s;
  }
  const std::string fill(width - s.size(), ' ');
  return align == Align::kLeft ? s + fill : fill + s;
}

}  // namespace

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto rule = [&]() {
    std::string line = "+";
    for (const std::size_t w : widths) {
      line += std::string(w + 2, '-');
      line += "+";
    }
    line += "\n";
    return line;
  };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += " " + pad(cells[c], widths[c], aligns_[c]) + " |";
    }
    line += "\n";
    return line;
  };

  std::string out;
  if (!title_.empty()) {
    out += title_ + "\n";
  }
  out += rule();
  out += emit_row(headers_);
  out += rule();
  for (const Row& row : rows_) {
    if (row.separator_before) {
      out += rule();
    }
    out += emit_row(row.cells);
  }
  out += rule();
  return out;
}

std::string TextTable::render_markdown() const {
  std::string out;
  if (!title_.empty()) {
    out += "**" + title_ + "**\n\n";
  }
  out += "|";
  for (const std::string& h : headers_) {
    out += " " + h + " |";
  }
  out += "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += aligns_[c] == Align::kRight ? " ---: |" : " --- |";
  }
  out += "\n";
  for (const Row& row : rows_) {
    out += "|";
    for (const std::string& cell : row.cells) {
      out += " " + cell + " |";
    }
    out += "\n";
  }
  return out;
}

}  // namespace iotaxo
