// XTEA block cipher with CBC mode, implemented from scratch (the toolkit
// assumes no external crypto library). Used for Tracefs-style trace-data
// anonymization ("secret key encryption using Cipher Block Chaining") and
// for encrypted binary trace files.
//
// This is a simulation-grade cipher: XTEA is a real, published algorithm
// (Needham & Wheeler, 1997) and our implementation is correct, but key
// handling here is deliberately simple (passphrase -> KDF) and should not
// be treated as production cryptography.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace iotaxo {

/// 128-bit key for XTEA.
using CipherKey = std::array<std::uint32_t, 4>;

/// Derive a key from a passphrase (iterated FNV/SplitMix mixing).
[[nodiscard]] CipherKey derive_key(std::string_view passphrase) noexcept;

/// Encrypt one 64-bit block (32 rounds).
[[nodiscard]] std::uint64_t xtea_encrypt_block(std::uint64_t block,
                                               const CipherKey& key) noexcept;
[[nodiscard]] std::uint64_t xtea_decrypt_block(std::uint64_t block,
                                               const CipherKey& key) noexcept;

/// CBC encrypt with PKCS#7-style padding; a fresh IV is derived from
/// `iv_seed` and prepended to the ciphertext.
[[nodiscard]] std::vector<std::uint8_t> cbc_encrypt(
    std::span<const std::uint8_t> plaintext, const CipherKey& key,
    std::uint64_t iv_seed);

/// CBC decrypt; throws FormatError on bad padding or truncated input.
[[nodiscard]] std::vector<std::uint8_t> cbc_decrypt(
    std::span<const std::uint8_t> ciphertext, const CipherKey& key);

/// CBC encrypt with a caller-supplied IV that is NOT stored in the
/// ciphertext: both sides derive the IV from context (the IOTB3 block
/// container uses a pure function of the block ordinal and column group).
/// Output is PKCS#7-padded plaintext length only (+1..8 bytes).
[[nodiscard]] std::vector<std::uint8_t> cbc_encrypt_with_iv(
    std::span<const std::uint8_t> plaintext, const CipherKey& key,
    std::uint64_t iv);

/// Inverse of cbc_encrypt_with_iv; throws FormatError on bad length or
/// padding (which is also what a wrong IV or key degrades into).
[[nodiscard]] std::vector<std::uint8_t> cbc_decrypt_with_iv(
    std::span<const std::uint8_t> ciphertext, const CipherKey& key,
    std::uint64_t iv);

/// Convenience: string in/out, hex-armored ciphertext (used when encrypting
/// individual trace fields in otherwise human-readable output).
[[nodiscard]] std::string cbc_encrypt_field(std::string_view plaintext,
                                            const CipherKey& key,
                                            std::uint64_t iv_seed);
[[nodiscard]] std::string cbc_decrypt_field(std::string_view hex_ciphertext,
                                            const CipherKey& key);

}  // namespace iotaxo
