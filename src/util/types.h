// Core scalar types shared by every iotaxo module.
//
// All simulation time is carried as integer nanoseconds (`SimTime`) so that
// discrete-event execution is exactly reproducible across platforms; doubles
// appear only at presentation boundaries (seconds for humans, MB/s for
// bandwidth tables).
#pragma once

#include <cstdint>
#include <type_traits>

namespace iotaxo {

/// Virtual simulation time in nanoseconds since simulation start.
using SimTime = std::int64_t;

/// Byte counts and file offsets.
using Bytes = std::int64_t;

// TraceEvent uses `offset = -1` (and tools compare `offset < 0`) as the
// "unknown offset" sentinel; SimTime arithmetic relies on negative
// intermediate values too. Neither convention survives an unsigned
// redefinition silently, so pin it down here.
static_assert(std::is_signed_v<Bytes>,
              "Bytes must stay signed: -1 is the 'unknown offset' sentinel");
static_assert(std::is_signed_v<SimTime>,
              "SimTime must stay signed: durations/gaps go through negative "
              "intermediates");

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1'000;
inline constexpr SimTime kMillisecond = 1'000'000;
inline constexpr SimTime kSecond = 1'000'000'000;

/// Convert a floating-point quantity of seconds to SimTime, rounding to the
/// nearest nanosecond.
[[nodiscard]] constexpr SimTime from_seconds(double s) noexcept {
  return static_cast<SimTime>(s * 1e9 + (s >= 0 ? 0.5 : -0.5));
}

[[nodiscard]] constexpr double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) / 1e9;
}

[[nodiscard]] constexpr SimTime from_micros(double us) noexcept {
  return from_seconds(us * 1e-6);
}

[[nodiscard]] constexpr SimTime from_millis(double ms) noexcept {
  return from_seconds(ms * 1e-3);
}

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

}  // namespace iotaxo
