// Minimal leveled logger. Quiet by default (warnings and errors only) so
// test and benchmark output stays clean; callers opt in to diagnostics
// via set_log_level or the IOTAXO_LOG environment variable, read once at
// program start:
//
//   IOTAXO_LOG=debug|info|warn|error|off
//
// Each line carries a wall-clock timestamp, the emitting thread's id and
// the level tag:
//
//   [2026-08-07 12:34:56.789 WARN tid=21437] attach_dir: quarantined ...
#pragma once

#include <sstream>
#include <string>

namespace iotaxo {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

/// Stream-style log statement: LOG(kInfo) << "mounted " << path;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { detail::log_emit(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace iotaxo

#define IOTAXO_LOG(level)                                    \
  if (static_cast<int>(level) < static_cast<int>(::iotaxo::log_level())) { \
  } else                                                     \
    ::iotaxo::LogLine(level)
