#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

#include "util/error.h"

namespace iotaxo {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    const std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) {
      out.emplace_back(s.substr(start, i - start));
    }
  }
  return out;
}

std::string join(std::span<const std::string> parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
    --e;
  }
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool glob_match(std::string_view pattern, std::string_view text) noexcept {
  // Iterative two-pointer algorithm with backtracking for '*'.
  std::size_t p = 0;
  std::size_t t = 0;
  std::size_t star = std::string_view::npos;
  std::size_t match = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      match = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++match;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') {
    ++p;
  }
  return p == pattern.size();
}

std::string hex_encode(std::span<const std::uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (const std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

std::vector<std::uint8_t> hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw FormatError("hex string has odd length");
  }
  auto nibble = [](char c) -> std::uint8_t {
    if (c >= '0' && c <= '9') return static_cast<std::uint8_t>(c - '0');
    if (c >= 'a' && c <= 'f') return static_cast<std::uint8_t>(c - 'a' + 10);
    if (c >= 'A' && c <= 'F') return static_cast<std::uint8_t>(c - 'A' + 10);
    throw FormatError("invalid hex digit");
  };
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((nibble(hex[i]) << 4) |
                                            nibble(hex[i + 1])));
  }
  return out;
}

std::string format_bytes(Bytes n) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(n);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  if (u == 0) {
    return strprintf("%lld B", static_cast<long long>(n));
  }
  return strprintf("%.1f %s", v, units[u]);
}

std::string format_duration(SimTime t) {
  const double s = to_seconds(t);
  if (s < 1e-6) {
    return strprintf("%.0f ns", s * 1e9);
  }
  if (s < 1e-3) {
    return strprintf("%.1f us", s * 1e6);
  }
  if (s < 1.0) {
    return strprintf("%.1f ms", s * 1e3);
  }
  if (s < 120.0) {
    return strprintf("%.2f s", s);
  }
  const auto total_minutes = static_cast<long long>(s / 60.0);
  const double rem = s - static_cast<double>(total_minutes) * 60.0;
  return strprintf("%lld m %04.1f s", total_minutes, rem);
}

std::string format_pct(double fraction, int decimals) {
  return strprintf("%.*f%%", decimals, fraction * 100.0);
}

std::string strprintf(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

}  // namespace iotaxo
