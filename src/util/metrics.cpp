#include "util/metrics.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "util/error.h"
#include "util/strings.h"
#include "util/table.h"

namespace iotaxo::obs {

namespace detail {

std::atomic<bool> armed{false};

std::size_t stripe_of_this_thread() noexcept {
  // One hash per thread lifetime; the stripe a thread lands on is
  // arbitrary but stable, which is all value()'s fold needs.
  static thread_local const std::size_t stripe =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      Counter::kStripes;
  return stripe;
}

}  // namespace detail

namespace {

/// One registry slot. All three shapes are allocated per entry (about a
/// kilobyte) so a slot never changes type; `kind` says which one is live.
struct Metric {
  MetricKind kind;
  Counter counter;
  Gauge gauge;
  Histogram histogram;
};

struct Registry {
  std::mutex mu;
  // Node-based map: references into entries stay valid as the registry
  // grows, which is what lets sites cache them in function-local statics.
  std::map<std::string, std::unique_ptr<Metric>, std::less<>> entries;
};

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

/// Every metric the instrumented layers emit, pre-registered so a
/// snapshot always carries the complete key set (zero = did not happen).
/// Keep in sync with the catalog table in src/analysis/dfg/README.md.
struct CatalogEntry {
  const char* name;
  MetricKind kind;
};

constexpr CatalogEntry kCatalog[] = {
    // AsyncBatchSink (trace/async_sink.cpp)
    {"sink.async.backpressure_stalls", MetricKind::kCounter},
    {"sink.async.backpressure_wait_ns", MetricKind::kHistogram},
    {"sink.async.batches_delivered", MetricKind::kCounter},
    {"sink.async.delivery_errors", MetricKind::kCounter},
    {"sink.async.errors_dropped", MetricKind::kCounter},
    {"sink.async.events_delivered", MetricKind::kCounter},
    {"sink.async.queue_depth", MetricKind::kGauge},
    // BlockView lazy decode (trace/block_view.cpp)
    {"block.decode.contention_waits", MetricKind::kCounter},
    {"block.decode.crc_ns", MetricKind::kHistogram},
    {"block.decode.decompress_ns", MetricKind::kHistogram},
    {"block.decode.decrypt_ns", MetricKind::kHistogram},
    {"block.decode.failures", MetricKind::kCounter},
    {"block.decode.full_blocks", MetricKind::kCounter},
    {"block.decode.hot_blocks", MetricKind::kCounter},
    {"block.decode.stored_bytes", MetricKind::kCounter},
    // Store queries (analysis/unified_store.cpp)
    {"store.query.bytes_in_window_ns", MetricKind::kHistogram},
    {"store.query.call_stats_ns", MetricKind::kHistogram},
    {"store.query.count", MetricKind::kCounter},
    {"store.query.damage_skipped_blocks", MetricKind::kCounter},
    {"store.query.damage_skipped_records", MetricKind::kCounter},
    {"store.query.hottest_files_ns", MetricKind::kHistogram},
    {"store.query.io_rate_series_ns", MetricKind::kHistogram},
    {"store.query.pools_skipped", MetricKind::kCounter},
    {"store.query.rank_timeline_ns", MetricKind::kHistogram},
    {"store.query.segments_scanned", MetricKind::kCounter},
    {"store.query.segments_skipped", MetricKind::kCounter},
    // Cold compaction (analysis/unified_store.cpp)
    {"store.compact.bytes_written", MetricKind::kCounter},
    {"store.compact.calls", MetricKind::kCounter},
    {"store.compact.eras_spilled", MetricKind::kCounter},
    {"store.compact.manifest_commits", MetricKind::kCounter},
    {"store.compact.spill_ns", MetricKind::kHistogram},
    // attach_dir recovery (analysis/unified_store.cpp)
    {"store.attach.duration_ns", MetricKind::kHistogram},
    {"store.attach.quarantined", MetricKind::kCounter},
    {"store.attach.recovered_eras", MetricKind::kCounter},
    {"store.attach.torn_tmps_removed", MetricKind::kCounter},
    // Streaming ingest (analysis/unified_store.cpp)
    {"ingest.era_seals", MetricKind::kCounter},
    {"ingest.events", MetricKind::kCounter},
    {"ingest.flushes", MetricKind::kCounter},
    {"ingest.index_adopted", MetricKind::kCounter},
    {"ingest.index_rebuilt", MetricKind::kCounter},
    {"attach.index_adopted", MetricKind::kCounter},
    // Live DFG maintenance (analysis/dfg/live_dfg.cpp)
    {"dfg.incremental_merges", MetricKind::kCounter},
    // Durable writes (trace/binary_format.cpp write_binary_file)
    {"durable.write.bytes", MetricKind::kCounter},
    {"durable.write.files", MetricKind::kCounter},
    {"durable.write.fsync_ns", MetricKind::kHistogram},
    {"durable.write.rename_ns", MetricKind::kHistogram},
};

Registry& registry() {
  static Registry* r = [] {
    auto* reg = new Registry();
    for (const CatalogEntry& e : kCatalog) {
      auto metric = std::make_unique<Metric>();
      metric->kind = e.kind;
      reg->entries.emplace(e.name, std::move(metric));
    }
    return reg;
  }();
  return *r;
}

Metric& resolve(std::string_view name, MetricKind kind) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  const auto it = reg.entries.find(name);
  if (it != reg.entries.end()) {
    if (it->second->kind != kind) {
      throw ConfigError(strprintf("metric '%s' is a %s, not a %s",
                                  std::string(name).c_str(),
                                  kind_name(it->second->kind),
                                  kind_name(kind)));
    }
    return *it->second;
  }
  auto metric = std::make_unique<Metric>();
  metric->kind = kind;
  Metric& ref = *metric;
  reg.entries.emplace(std::string(name), std::move(metric));
  return ref;
}

/// Where the at-exit dump goes; empty = no dump configured.
std::string& dump_target() {
  static std::string target;
  return target;
}

void dump_at_exit() {
  const std::string& target = dump_target();
  if (target.empty()) {
    return;
  }
  const std::string json = to_json(snapshot());
  if (target == "stderr") {
    std::fputs(json.c_str(), stderr);
    std::fputc('\n', stderr);
    return;
  }
  std::FILE* f = std::fopen(target.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "iotaxo: cannot write IOTAXO_METRICS dump to '%s'\n",
                 target.c_str());
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

// IOTAXO_METRICS, read once at program start (same discipline as
// IOTAXO_FAILPOINTS): any non-empty value arms recording; "stderr" or a
// file path selects the at-exit dump destination. The registry is touched
// before std::atexit so the dump handler runs while it is still alive.
const bool env_configured = [] {
  const char* spec = std::getenv("IOTAXO_METRICS");
  if (spec != nullptr && *spec != '\0') {
    (void)registry();
    detail::armed.store(true, std::memory_order_relaxed);
    dump_target() = spec;
    std::atexit(dump_at_exit);
  }
  return true;
}();

}  // namespace

void set_enabled(bool on) noexcept {
  detail::armed.store(on, std::memory_order_relaxed);
}

Counter& counter(std::string_view name) {
  return resolve(name, MetricKind::kCounter).counter;
}

Gauge& gauge(std::string_view name) {
  return resolve(name, MetricKind::kGauge).gauge;
}

Histogram& histogram(std::string_view name) {
  return resolve(name, MetricKind::kHistogram).histogram;
}

MetricsSnapshot snapshot() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  MetricsSnapshot snap;
  for (const auto& [name, metric] : reg.entries) {
    MetricValue v;
    v.kind = metric->kind;
    switch (metric->kind) {
      case MetricKind::kCounter:
        v.value = metric->counter.value();
        break;
      case MetricKind::kGauge:
        v.value = metric->gauge.value();
        v.high_water = metric->gauge.high_water();
        break;
      case MetricKind::kHistogram:
        v.count = metric->histogram.count();
        v.sum = metric->histogram.sum();
        v.buckets.resize(Histogram::kBuckets);
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
          v.buckets[i] = metric->histogram.bucket(i);
        }
        break;
    }
    snap.values.emplace(name, std::move(v));
  }
  return snap;
}

MetricsSnapshot delta(const MetricsSnapshot& before,
                      const MetricsSnapshot& after) {
  MetricsSnapshot out;
  for (const auto& [name, a] : after.values) {
    MetricValue d = a;
    const auto it = before.values.find(name);
    if (it != before.values.end()) {
      const MetricValue& b = it->second;
      switch (a.kind) {
        case MetricKind::kCounter:
          d.value = a.value - b.value;
          break;
        case MetricKind::kGauge:
          break;  // levels do not differentiate; keep `after`'s reading
        case MetricKind::kHistogram:
          d.count = a.count - b.count;
          d.sum = a.sum - b.sum;
          for (std::size_t i = 0;
               i < d.buckets.size() && i < b.buckets.size(); ++i) {
            d.buckets[i] = a.buckets[i] - b.buckets[i];
          }
          break;
      }
    }
    out.values.emplace(name, std::move(d));
  }
  return out;
}

std::string to_json(const MetricsSnapshot& snap) {
  const auto emit_section = [&snap](std::string& out, MetricKind kind,
                                    const char* section) {
    out += strprintf("  \"%s\": {", section);
    bool first = true;
    for (const auto& [name, v] : snap.values) {
      if (v.kind != kind) {
        continue;
      }
      out += first ? "\n" : ",\n";
      first = false;
      switch (kind) {
        case MetricKind::kCounter:
          out += strprintf("    \"%s\": %llu", name.c_str(),
                           static_cast<unsigned long long>(v.value));
          break;
        case MetricKind::kGauge:
          out += strprintf(
              "    \"%s\": {\"value\": %llu, \"high_water\": %llu}",
              name.c_str(), static_cast<unsigned long long>(v.value),
              static_cast<unsigned long long>(v.high_water));
          break;
        case MetricKind::kHistogram: {
          out += strprintf(
              "    \"%s\": {\"count\": %llu, \"sum\": %llu, \"buckets\": {",
              name.c_str(), static_cast<unsigned long long>(v.count),
              static_cast<unsigned long long>(v.sum));
          bool first_bucket = true;
          for (std::size_t i = 0; i < v.buckets.size(); ++i) {
            if (v.buckets[i] == 0) {
              continue;
            }
            out += strprintf("%s\"%zu\": %llu", first_bucket ? "" : ", ", i,
                             static_cast<unsigned long long>(v.buckets[i]));
            first_bucket = false;
          }
          out += "}}";
          break;
        }
      }
    }
    out += first ? "}" : "\n  }";
  };

  std::string out = "{\n  \"metrics_schema\": 1,\n";
  emit_section(out, MetricKind::kCounter, "counters");
  out += ",\n";
  emit_section(out, MetricKind::kGauge, "gauges");
  out += ",\n";
  emit_section(out, MetricKind::kHistogram, "histograms");
  out += "\n}";
  return out;
}

std::string render_text(const MetricsSnapshot& snap) {
  TextTable table({"Metric", "Kind", "Value", "Detail"});
  table.set_align(2, Align::kRight);
  for (const auto& [name, v] : snap.values) {
    switch (v.kind) {
      case MetricKind::kCounter:
        table.add_row({name, "counter",
                       strprintf("%llu",
                                 static_cast<unsigned long long>(v.value)),
                       ""});
        break;
      case MetricKind::kGauge:
        table.add_row(
            {name, "gauge",
             strprintf("%llu", static_cast<unsigned long long>(v.value)),
             strprintf("high water %llu",
                       static_cast<unsigned long long>(v.high_water))});
        break;
      case MetricKind::kHistogram:
        table.add_row(
            {name, "histogram",
             strprintf("%llu", static_cast<unsigned long long>(v.count)),
             v.count == 0
                 ? ""
                 : strprintf("sum %llu, mean %llu",
                             static_cast<unsigned long long>(v.sum),
                             static_cast<unsigned long long>(v.sum /
                                                             v.count))});
        break;
    }
  }
  return table.render();
}

void reset() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& [name, metric] : reg.entries) {
    switch (metric->kind) {
      case MetricKind::kCounter:
        metric->counter.reset();
        break;
      case MetricKind::kGauge:
        metric->gauge.reset();
        break;
      case MetricKind::kHistogram:
        metric->histogram.reset();
        break;
    }
  }
}

}  // namespace iotaxo::obs
