#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <functional>
#include <mutex>
#include <thread>

namespace iotaxo {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

/// A short stable id for the calling thread (std::thread::id prints as an
/// opaque implementation-defined token; a hashed decimal stays readable).
unsigned long thread_tag() {
  static thread_local const unsigned long tag = static_cast<unsigned long>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % 100000);
  return tag;
}

// IOTAXO_LOG, read once at program start (the same static-init discipline
// as IOTAXO_FAILPOINTS / IOTAXO_METRICS).
const bool env_configured = [] {
  const char* spec = std::getenv("IOTAXO_LOG");
  if (spec == nullptr || *spec == '\0') {
    return true;
  }
  if (std::strcmp(spec, "debug") == 0) {
    g_level.store(LogLevel::kDebug);
  } else if (std::strcmp(spec, "info") == 0) {
    g_level.store(LogLevel::kInfo);
  } else if (std::strcmp(spec, "warn") == 0) {
    g_level.store(LogLevel::kWarn);
  } else if (std::strcmp(spec, "error") == 0) {
    g_level.store(LogLevel::kError);
  } else if (std::strcmp(spec, "off") == 0) {
    g_level.store(LogLevel::kOff);
  } else {
    std::fprintf(stderr,
                 "iotaxo: IOTAXO_LOG='%s' is not debug|info|warn|error|off; "
                 "keeping the default\n",
                 spec);
  }
  return true;
}();

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) {
    return;
  }
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm_buf{};
#if defined(_WIN32)
  localtime_s(&tm_buf, &secs);
#else
  localtime_r(&secs, &tm_buf);
#endif
  char stamp[32];
  if (std::strftime(stamp, sizeof(stamp), "%Y-%m-%d %H:%M:%S", &tm_buf) == 0) {
    stamp[0] = '\0';
  }
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s.%03d %s tid=%lu] %s\n", stamp,
               static_cast<int>(millis), level_name(level), thread_tag(),
               message.c_str());
}
}  // namespace detail

}  // namespace iotaxo
