// Exception hierarchy for iotaxo.
//
// Errors that a caller can meaningfully react to are typed; programming
// errors use assertions. Per C++ Core Guidelines E.14, we derive from
// std::runtime_error and throw by value / catch by reference.
#pragma once

#include <stdexcept>
#include <string>

namespace iotaxo {

/// Base class for all iotaxo errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Simulated I/O failure (bad fd, missing path, read past EOF, ...).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("io error: " + what) {}
};

/// Malformed trace data, filter expressions, or on-disk formats.
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what)
      : Error("format error: " + what) {}
};

/// Requested operation is not supported by this component (e.g. mounting
/// Tracefs over the parallel file system without the adaptation shim).
class UnsupportedError : public Error {
 public:
  explicit UnsupportedError(const std::string& what)
      : Error("unsupported: " + what) {}
};

/// Invalid configuration supplied by the caller.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what)
      : Error("config error: " + what) {}
};

}  // namespace iotaxo
