// Plain-text table renderer used for taxonomy summary tables (Tables 1 & 2
// of the paper), call summaries, and benchmark output.
#pragma once

#include <string>
#include <vector>

namespace iotaxo {

enum class Align { kLeft, kRight };

/// A simple monospace table with a header row, per-column alignment and an
/// optional title. Cells are strings; callers format values themselves.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void set_title(std::string title) { title_ = std::move(title); }
  void set_align(std::size_t column, Align align);

  /// Add a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Add a horizontal separator line before the next row.
  void add_separator();

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const noexcept {
    return headers_.size();
  }

  /// Render with unicode-free ASCII borders.
  [[nodiscard]] std::string render() const;

  /// Render as Markdown (for EXPERIMENTS.md extraction).
  [[nodiscard]] std::string render_markdown() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };

  std::string title_;
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

}  // namespace iotaxo
