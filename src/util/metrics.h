// Process-wide self-metrics: the tracer traces itself.
//
// A registry of named counters, gauges (with high-water marks) and fixed
// log2-bucket histograms instruments every pipeline the repo has built —
// store queries, BlockView decode stages, the async sink, cold compaction,
// durable writes and attach_dir recovery — under the same zero-cost
// discipline as util/failpoint.h:
//
//   disarmed  every record call is one relaxed atomic load and a
//             predictable not-taken branch; ScopedTimer never reads the
//             clock. Query results and error text are bit-identical with
//             metrics on or off — instrumentation never changes control
//             flow.
//   armed     counters are striped across cache lines (relaxed fetch_add
//             on a per-thread stripe, a handful of nanoseconds under
//             contention); histograms are one bucket increment plus
//             count/sum updates.
//
// Arming: obs::set_enabled(true), the CLI's --metrics/--metrics-out
// flags, or the IOTAXO_METRICS environment variable — parsed once at
// static init like IOTAXO_FAILPOINTS:
//
//   IOTAXO_METRICS=stderr       arm, dump the JSON snapshot to stderr at
//                               process exit
//   IOTAXO_METRICS=/path.json   arm, write the snapshot there at exit
//
// Naming convention: every metric is "layer.component.metric", lowercase,
// with the unit as a suffix where one applies (_ns, _bytes):
//
//   layer      the subsystem: sink, block, store, durable
//   component  the mechanism inside it: async, decode, query, compact,
//              attach, write
//   metric     what is counted/measured: stored_bytes, crc_ns, ...
//
// The full catalog is pre-registered (metrics.cpp kCatalog), so a
// snapshot always carries every known name — JSON consumers can validate
// against a fixed key set, and zero means "did not happen", not
// "missing". `src/analysis/dfg/README.md` documents each metric and the
// JSON schema. Instrumentation sites bind their handles once:
//
//   static obs::Counter& c = obs::counter("block.decode.stored_bytes");
//   c.add(len);
//
//   static obs::Histogram& h = obs::histogram("durable.write.fsync_ns");
//   { const obs::ScopedTimer t(h); fsync(...); }
//
// Registry references are stable for the process lifetime. All entry
// points are thread-safe.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace iotaxo::obs {

namespace detail {
extern std::atomic<bool> armed;
[[nodiscard]] std::size_t stripe_of_this_thread() noexcept;
}  // namespace detail

/// The fast-path guard every record call reads first.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::armed.load(std::memory_order_relaxed);
}

/// Arm or disarm recording globally. Values already recorded are kept;
/// reset() zeroes them.
void set_enabled(bool on) noexcept;

/// Monotonic event count. Striped across cache lines so concurrent armed
/// writers (query workers, decode threads, sink workers) do not ping-pong
/// one line; value() folds the stripes.
class Counter {
 public:
  static constexpr std::size_t kStripes = 8;

  void add(std::uint64_t n) noexcept {
    if (!enabled()) {
      return;
    }
    cells_[detail::stripe_of_this_thread()].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  void reset() noexcept {
    for (Cell& cell : cells_) {
      cell.v.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kStripes> cells_{};
};

/// Last-written level plus the high-water mark since the last reset
/// (e.g. async queue depth). set() is a store plus a CAS-max loop that
/// almost always exits on the first load.
class Gauge {
 public:
  void set(std::uint64_t v) noexcept {
    if (!enabled()) {
      return;
    }
    value_.store(v, std::memory_order_relaxed);
    std::uint64_t seen = high_water_.load(std::memory_order_relaxed);
    while (v > seen && !high_water_.compare_exchange_weak(
                           seen, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t high_water() const noexcept {
    return high_water_.load(std::memory_order_relaxed);
  }

  void reset() noexcept {
    value_.store(0, std::memory_order_relaxed);
    high_water_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
  std::atomic<std::uint64_t> high_water_{0};
};

/// Fixed log2-bucket histogram for latencies (ns) and sizes (bytes).
/// Bucket 0 holds the value 0; bucket i (1 <= i < 63) holds
/// [2^(i-1), 2^i); bucket 63 holds everything from 2^62 up. count/sum
/// make exact totals and means recoverable without the buckets.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  [[nodiscard]] static constexpr std::size_t bucket_of(
      std::uint64_t v) noexcept {
    const std::size_t b = static_cast<std::size_t>(std::bit_width(v));
    return b < kBuckets ? b : kBuckets - 1;
  }

  void record(std::uint64_t v) noexcept {
    if (!enabled()) {
      return;
    }
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  void reset() noexcept {
    for (std::atomic<std::uint64_t>& b : buckets_) {
      b.store(0, std::memory_order_relaxed);
    }
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// RAII span: records elapsed ns into a histogram. Disarmed at
/// construction, it never reads the clock (the armed check happens once,
/// so arming mid-span records nothing for that span).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist) noexcept
      : hist_(hist), armed_(enabled()) {
    if (armed_) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer() {
    if (armed_) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_);
      hist_.record(static_cast<std::uint64_t>(ns.count()));
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& hist_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

/// Registry lookups: resolve (and on first use register) the named
/// metric. References are stable for the process lifetime — bind them
/// once in a function-local static at the instrumentation site. Throws
/// ConfigError when `name` is already registered as a different kind.
[[nodiscard]] Counter& counter(std::string_view name);
[[nodiscard]] Gauge& gauge(std::string_view name);
[[nodiscard]] Histogram& histogram(std::string_view name);

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One metric's values at snapshot time. Which fields are meaningful
/// depends on kind: counters use `value`; gauges use `value` +
/// `high_water`; histograms use `count`, `sum` and `buckets` (always
/// Histogram::kBuckets entries).
struct MetricValue {
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;
  std::uint64_t high_water = 0;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::vector<std::uint64_t> buckets;
};

/// A consistent-by-name snapshot of every registered metric (relaxed
/// loads; each metric internally coherent). Map order = sorted names, so
/// rendering is deterministic.
struct MetricsSnapshot {
  std::map<std::string, MetricValue> values;
};

[[nodiscard]] MetricsSnapshot snapshot();

/// after - before, per metric: counters and histograms subtract
/// (count/sum/buckets); gauges keep `after`'s value and high-water (the
/// high-water mark is since arming/reset, not differentiable). Metrics
/// present only in `after` (registered in between) pass through.
[[nodiscard]] MetricsSnapshot delta(const MetricsSnapshot& before,
                                    const MetricsSnapshot& after);

/// Deterministic JSON: {"metrics_schema":1, "counters":{...},
/// "gauges":{name:{value,high_water}}, "histograms":{name:{count,sum,
/// buckets:{"<index>":n, ...nonzero only}}}} — names sorted, buckets in
/// ascending index order.
[[nodiscard]] std::string to_json(const MetricsSnapshot& snap);

/// util/table text report, one row per metric in name order.
[[nodiscard]] std::string render_text(const MetricsSnapshot& snap);

/// Zero every registered metric (tests and benches; recording stays in
/// whatever armed state it had).
void reset();

}  // namespace iotaxo::obs
