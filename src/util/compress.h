// Byte-oriented compression for binary trace output (Tracefs offers optional
// compression of its binary traces; we implement an LZ77-family codec from
// scratch since no external compression library is assumed).
//
// Format: a stream of ops. Each op starts with a control byte:
//   0x00..0x7F  -> literal run of (ctrl + 1) bytes following verbatim
//   0x80..0xFF  -> match: length = (ctrl & 0x7F) + kMinMatch,
//                  followed by a 2-byte little-endian backward distance.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace iotaxo {

/// Compress `input`. Worst case output is input.size() + input.size()/128 + 16.
[[nodiscard]] std::vector<std::uint8_t> lz_compress(
    std::span<const std::uint8_t> input);

/// Decompress a buffer produced by lz_compress. Throws FormatError on
/// corrupt input.
[[nodiscard]] std::vector<std::uint8_t> lz_decompress(
    std::span<const std::uint8_t> input);

}  // namespace iotaxo
