#include "util/cipher.h"

#include <cstring>

#include "util/error.h"
#include "util/rng.h"
#include "util/strings.h"

namespace iotaxo {

CipherKey derive_key(std::string_view passphrase) noexcept {
  std::uint64_t state = fnv1a(passphrase);
  CipherKey key{};
  for (auto& word : key) {
    word = static_cast<std::uint32_t>(splitmix64(state) >> 16);
  }
  return key;
}

namespace {
constexpr std::uint32_t kDelta = 0x9E3779B9u;
constexpr int kRounds = 32;
}  // namespace

std::uint64_t xtea_encrypt_block(std::uint64_t block,
                                 const CipherKey& key) noexcept {
  auto v0 = static_cast<std::uint32_t>(block);
  auto v1 = static_cast<std::uint32_t>(block >> 32);
  std::uint32_t sum = 0;
  for (int i = 0; i < kRounds; ++i) {
    v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key[sum & 3]);
    sum += kDelta;
    v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key[(sum >> 11) & 3]);
  }
  return static_cast<std::uint64_t>(v0) |
         (static_cast<std::uint64_t>(v1) << 32);
}

std::uint64_t xtea_decrypt_block(std::uint64_t block,
                                 const CipherKey& key) noexcept {
  auto v0 = static_cast<std::uint32_t>(block);
  auto v1 = static_cast<std::uint32_t>(block >> 32);
  std::uint32_t sum = kDelta * static_cast<std::uint32_t>(kRounds);
  for (int i = 0; i < kRounds; ++i) {
    v1 -= (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key[(sum >> 11) & 3]);
    sum -= kDelta;
    v0 -= (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key[sum & 3]);
  }
  return static_cast<std::uint64_t>(v0) |
         (static_cast<std::uint64_t>(v1) << 32);
}

namespace {

[[nodiscard]] std::uint64_t load_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

void store_u64(std::uint8_t* p, std::uint64_t v) noexcept {
  std::memcpy(p, &v, 8);
}

}  // namespace

std::vector<std::uint8_t> cbc_encrypt(std::span<const std::uint8_t> plaintext,
                                      const CipherKey& key,
                                      std::uint64_t iv_seed) {
  // PKCS#7 padding to an 8-byte boundary (always at least one pad byte).
  const std::size_t pad = 8 - (plaintext.size() % 8);
  std::vector<std::uint8_t> buf(plaintext.begin(), plaintext.end());
  buf.insert(buf.end(), pad, static_cast<std::uint8_t>(pad));

  const std::uint64_t iv = mix64(iv_seed ^ 0xC0FFEE1234ULL);
  std::vector<std::uint8_t> out(8 + buf.size());
  store_u64(out.data(), iv);

  std::uint64_t prev = iv;
  for (std::size_t i = 0; i < buf.size(); i += 8) {
    const std::uint64_t block = load_u64(&buf[i]) ^ prev;
    prev = xtea_encrypt_block(block, key);
    store_u64(&out[8 + i], prev);
  }
  return out;
}

std::vector<std::uint8_t> cbc_decrypt(std::span<const std::uint8_t> ciphertext,
                                      const CipherKey& key) {
  if (ciphertext.size() < 16 || ciphertext.size() % 8 != 0) {
    throw FormatError("cbc: ciphertext length invalid");
  }
  std::uint64_t prev = load_u64(ciphertext.data());
  std::vector<std::uint8_t> out(ciphertext.size() - 8);
  for (std::size_t i = 8; i < ciphertext.size(); i += 8) {
    const std::uint64_t c = load_u64(&ciphertext[i]);
    store_u64(&out[i - 8], xtea_decrypt_block(c, key) ^ prev);
    prev = c;
  }
  if (out.empty()) {
    throw FormatError("cbc: empty payload");
  }
  const std::uint8_t pad = out.back();
  if (pad == 0 || pad > 8 || pad > out.size()) {
    throw FormatError("cbc: bad padding");
  }
  for (std::size_t i = out.size() - pad; i < out.size(); ++i) {
    if (out[i] != pad) {
      throw FormatError("cbc: bad padding bytes");
    }
  }
  out.resize(out.size() - pad);
  return out;
}

std::vector<std::uint8_t> cbc_encrypt_with_iv(
    std::span<const std::uint8_t> plaintext, const CipherKey& key,
    std::uint64_t iv) {
  const std::size_t pad = 8 - (plaintext.size() % 8);
  std::vector<std::uint8_t> buf(plaintext.begin(), plaintext.end());
  buf.insert(buf.end(), pad, static_cast<std::uint8_t>(pad));

  std::vector<std::uint8_t> out(buf.size());
  std::uint64_t prev = iv;
  for (std::size_t i = 0; i < buf.size(); i += 8) {
    const std::uint64_t block = load_u64(&buf[i]) ^ prev;
    prev = xtea_encrypt_block(block, key);
    store_u64(&out[i], prev);
  }
  return out;
}

std::vector<std::uint8_t> cbc_decrypt_with_iv(
    std::span<const std::uint8_t> ciphertext, const CipherKey& key,
    std::uint64_t iv) {
  if (ciphertext.size() < 8 || ciphertext.size() % 8 != 0) {
    throw FormatError("cbc: ciphertext length invalid");
  }
  std::uint64_t prev = iv;
  std::vector<std::uint8_t> out(ciphertext.size());
  for (std::size_t i = 0; i < ciphertext.size(); i += 8) {
    const std::uint64_t c = load_u64(&ciphertext[i]);
    store_u64(&out[i], xtea_decrypt_block(c, key) ^ prev);
    prev = c;
  }
  const std::uint8_t pad = out.back();
  if (pad == 0 || pad > 8 || pad > out.size()) {
    throw FormatError("cbc: bad padding");
  }
  for (std::size_t i = out.size() - pad; i < out.size(); ++i) {
    if (out[i] != pad) {
      throw FormatError("cbc: bad padding bytes");
    }
  }
  out.resize(out.size() - pad);
  return out;
}

std::string cbc_encrypt_field(std::string_view plaintext, const CipherKey& key,
                              std::uint64_t iv_seed) {
  const auto ct = cbc_encrypt(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(plaintext.data()),
          plaintext.size()),
      key, iv_seed);
  return hex_encode(ct);
}

std::string cbc_decrypt_field(std::string_view hex_ciphertext,
                              const CipherKey& key) {
  const auto ct = hex_decode(hex_ciphertext);
  const auto pt = cbc_decrypt(ct, key);
  return std::string(reinterpret_cast<const char*>(pt.data()), pt.size());
}

}  // namespace iotaxo
