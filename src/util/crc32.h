// CRC-32 (IEEE 802.3 polynomial) for trace-file integrity checking.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace iotaxo {

/// Incremental CRC-32 accumulator.
class Crc32 {
 public:
  void update(std::span<const std::uint8_t> data) noexcept;
  void update(std::string_view data) noexcept;

  /// Finalized checksum of everything fed so far (does not reset state).
  [[nodiscard]] std::uint32_t value() const noexcept { return ~state_; }

  void reset() noexcept { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot convenience.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept;
[[nodiscard]] std::uint32_t crc32(std::string_view data) noexcept;

}  // namespace iotaxo
