// Deterministic pseudo-random number generation.
//
// The whole simulator must be bit-reproducible from a seed, so we implement
// SplitMix64 (for seeding / hashing) and xoshiro256** (for streams) rather
// than relying on implementation-defined std::default_random_engine
// behaviour. Distribution helpers avoid std::uniform_*_distribution for the
// same reason: libstdc++/libc++ may produce different sequences.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace iotaxo {

/// SplitMix64 step: used to expand seeds and as a cheap integer hash.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless mixing of a single value (finalizer of SplitMix64).
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept;

/// FNV-1a hash of a byte string; used for stable name->seed derivation.
[[nodiscard]] std::uint64_t fnv1a(std::string_view s) noexcept;

/// xoshiro256** generator with distribution helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Derive an independent stream for a named subsystem. Deterministic:
  /// fork("pfs") on equal-seeded Rngs yields equal streams.
  [[nodiscard]] Rng fork(std::string_view name) const noexcept;

  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform in [0, 1).
  [[nodiscard]] double next_double() noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform(std::int64_t lo, std::int64_t hi) noexcept;

  /// Gaussian via Box-Muller (deterministic pairing).
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Bernoulli draw.
  [[nodiscard]] bool chance(double p) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Random lower-case alphanumeric token of the given length (for
  /// anonymization placeholders and temp names).
  [[nodiscard]] std::string token(std::size_t length) noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace iotaxo
