#include "util/crc32.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define IOTAXO_CRC32_X86_64 1
#include <immintrin.h>
#endif

namespace iotaxo {

namespace {

// Slicing-by-8: eight derived tables let the inner loop fold 8 input bytes
// per iteration instead of 1 (Intel's technique; same polynomial, same
// values as the bytewise loop — only the walk order changes). Table k maps
// "byte b, then k zero bytes" through the CRC, so one 8-byte chunk is the
// XOR of eight independent single-table lookups with no loop-carried
// dependency between them.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() noexcept {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (std::size_t t = 1; t < 8; ++t) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = tables[t - 1][i];
      tables[t][i] = tables[0][prev & 0xFFu] ^ (prev >> 8);
    }
  }
  return tables;
}

const std::array<std::array<std::uint32_t, 256>, 8> kTables = make_tables();

#if IOTAXO_CRC32_X86_64
// Carry-less-multiply folding (Gopal et al., "Fast CRC Computation for
// Generic Polynomials Using PCLMULQDQ Instruction"): fold 64-byte chunks
// of the message as polynomials over GF(2) down to 128 bits, then Barrett-
// reduce to the 32-bit remainder. The k1..k5/mu constants below are the
// bit-reflected x^N mod P precomputations for the IEEE polynomial — the
// same remainders the lookup tables encode, so both paths return identical
// values for identical input. ~5x the slice-by-8 throughput, which is what
// keeps the per-block checksummed IOTB3 scan inside its 1.5x bench gate.
//
// `crc` is the RUNNING state (already initialized to ~0), not the
// finalized value; `len` must be >= 64 and a multiple of 16 — the caller
// feeds the tail to the table loop.
//
// (A named helper, not a lambda: lambdas do not inherit the enclosing
// function's target attribute, so intrinsics inside one fail to inline.)
__attribute__((target("sse4.1,pclmul"))) [[nodiscard]] inline __m128i
fold16(__m128i acc, __m128i k, __m128i next) noexcept {
  return _mm_xor_si128(_mm_xor_si128(_mm_clmulepi64_si128(acc, k, 0x11),
                                     _mm_clmulepi64_si128(acc, k, 0x00)),
                       next);
}

__attribute__((target("sse4.1,pclmul"))) [[nodiscard]] std::uint32_t
crc32_clmul(const std::uint8_t* buf, std::size_t len,
            std::uint32_t crc) noexcept {
  alignas(16) static constexpr std::uint64_t k1k2[2] = {0x0154442bd4,
                                                        0x01c6e41596};
  alignas(16) static constexpr std::uint64_t k3k4[2] = {0x01751997d0,
                                                        0x00ccaa009e};
  alignas(16) static constexpr std::uint64_t k5k0[2] = {0x0163cd6124, 0};
  alignas(16) static constexpr std::uint64_t poly[2] = {0x01db710641,
                                                        0x01f7011641};

  const auto* p = reinterpret_cast<const __m128i*>(buf);
  __m128i x1 = _mm_loadu_si128(p + 0);
  __m128i x2 = _mm_loadu_si128(p + 1);
  __m128i x3 = _mm_loadu_si128(p + 2);
  __m128i x4 = _mm_loadu_si128(p + 3);
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(crc)));
  __m128i k = _mm_load_si128(reinterpret_cast<const __m128i*>(k1k2));
  p += 4;
  len -= 64;

  // Four independent 128-bit lanes fold 64 bytes per iteration.
  while (len >= 64) {
    const __m128i f1 = _mm_clmulepi64_si128(x1, k, 0x00);
    const __m128i f2 = _mm_clmulepi64_si128(x2, k, 0x00);
    const __m128i f3 = _mm_clmulepi64_si128(x3, k, 0x00);
    const __m128i f4 = _mm_clmulepi64_si128(x4, k, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k, 0x11);
    x2 = _mm_clmulepi64_si128(x2, k, 0x11);
    x3 = _mm_clmulepi64_si128(x3, k, 0x11);
    x4 = _mm_clmulepi64_si128(x4, k, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, f1), _mm_loadu_si128(p + 0));
    x2 = _mm_xor_si128(_mm_xor_si128(x2, f2), _mm_loadu_si128(p + 1));
    x3 = _mm_xor_si128(_mm_xor_si128(x3, f3), _mm_loadu_si128(p + 2));
    x4 = _mm_xor_si128(_mm_xor_si128(x4, f4), _mm_loadu_si128(p + 3));
    p += 4;
    len -= 64;
  }

  // Fold the four lanes into one, then any remaining 16-byte blocks.
  k = _mm_load_si128(reinterpret_cast<const __m128i*>(k3k4));
  x1 = fold16(x1, k, x2);
  x1 = fold16(x1, k, x3);
  x1 = fold16(x1, k, x4);
  while (len >= 16) {
    x1 = fold16(x1, k, _mm_loadu_si128(p));
    ++p;
    len -= 16;
  }

  // 128 -> 64 bits.
  const __m128i mask32 = _mm_setr_epi32(~0, 0, ~0, 0);
  __m128i t = _mm_clmulepi64_si128(x1, k, 0x10);
  x1 = _mm_xor_si128(_mm_srli_si128(x1, 8), t);
  k = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(k5k0));
  t = _mm_srli_si128(x1, 4);
  x1 = _mm_and_si128(x1, mask32);
  x1 = _mm_clmulepi64_si128(x1, k, 0x00);
  x1 = _mm_xor_si128(x1, t);

  // Barrett reduction, 64 -> 32 bits.
  k = _mm_load_si128(reinterpret_cast<const __m128i*>(poly));
  t = _mm_and_si128(x1, mask32);
  t = _mm_clmulepi64_si128(t, k, 0x10);
  t = _mm_and_si128(t, mask32);
  t = _mm_clmulepi64_si128(t, k, 0x00);
  x1 = _mm_xor_si128(x1, t);
  return static_cast<std::uint32_t>(_mm_extract_epi32(x1, 1));
}

[[nodiscard]] bool have_clmul() noexcept {
  static const bool ok = __builtin_cpu_supports("pclmul") != 0 &&
                         __builtin_cpu_supports("sse4.1") != 0;
  return ok;
}
#endif  // IOTAXO_CRC32_X86_64

}  // namespace

void Crc32::update(std::span<const std::uint8_t> data) noexcept {
  std::uint32_t c = state_;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
#if IOTAXO_CRC32_X86_64
  if (n >= 64 && have_clmul()) {
    const std::size_t chunk = n & ~std::size_t{15};  // kernel folds 16s
    c = crc32_clmul(p, chunk, c);
    p += chunk;
    n -= chunk;
  }
#endif
  while (n >= 8) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
#else
    const std::uint32_t lo = c ^ (static_cast<std::uint32_t>(p[0]) |
                                  (static_cast<std::uint32_t>(p[1]) << 8) |
                                  (static_cast<std::uint32_t>(p[2]) << 16) |
                                  (static_cast<std::uint32_t>(p[3]) << 24));
    const std::uint32_t hi = static_cast<std::uint32_t>(p[4]) |
                             (static_cast<std::uint32_t>(p[5]) << 8) |
                             (static_cast<std::uint32_t>(p[6]) << 16) |
                             (static_cast<std::uint32_t>(p[7]) << 24);
#endif
    c = kTables[7][lo & 0xFFu] ^ kTables[6][(lo >> 8) & 0xFFu] ^
        kTables[5][(lo >> 16) & 0xFFu] ^ kTables[4][lo >> 24] ^
        kTables[3][hi & 0xFFu] ^ kTables[2][(hi >> 8) & 0xFFu] ^
        kTables[1][(hi >> 16) & 0xFFu] ^ kTables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = kTables[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  }
  state_ = c;
}

void Crc32::update(std::string_view data) noexcept {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept {
  Crc32 c;
  c.update(data);
  return c.value();
}

std::uint32_t crc32(std::string_view data) noexcept {
  Crc32 c;
  c.update(data);
  return c.value();
}

}  // namespace iotaxo
