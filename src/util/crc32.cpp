#include "util/crc32.h"

#include <array>

namespace iotaxo {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

void Crc32::update(std::span<const std::uint8_t> data) noexcept {
  std::uint32_t c = state_;
  for (const std::uint8_t b : data) {
    c = kTable[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  state_ = c;
}

void Crc32::update(std::string_view data) noexcept {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept {
  Crc32 c;
  c.update(data);
  return c.value();
}

std::uint32_t crc32(std::string_view data) noexcept {
  Crc32 c;
  c.update(data);
  return c.value();
}

}  // namespace iotaxo
