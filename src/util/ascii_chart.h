// Minimal ASCII line chart for terminal output — used by the figure benches
// to draw the bandwidth-vs-blocksize curves of Figures 2-4 next to their
// tables.
#pragma once

#include <string>
#include <vector>

namespace iotaxo {

struct ChartSeries {
  std::string name;
  char marker = '*';
  std::vector<double> values;  // one per x position
};

struct ChartOptions {
  int width = 64;   // plot columns (excluding the axis gutter)
  int height = 16;  // plot rows
  std::string y_label;
  /// Labels under the x axis (sparse; evenly spread).
  std::vector<std::string> x_labels;
  /// Force the y range; by default it spans [0, max(values)*1.05].
  double y_min = 0.0;
  double y_max = -1.0;  // negative = auto
};

/// Render one or more series sharing x positions 0..n-1. Values are linearly
/// interpolated between points so sparse sweeps still draw as curves.
[[nodiscard]] std::string render_chart(const std::vector<ChartSeries>& series,
                                       const ChartOptions& options = {});

}  // namespace iotaxo
