// Small string utilities used across the toolkit: splitting, trimming,
// hex encoding, human-friendly byte/duration formatting.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.h"

namespace iotaxo {

/// Split `s` on `sep`; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Split on any run of whitespace; empty fields are dropped.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view s);

[[nodiscard]] std::string join(std::span<const std::string> parts,
                               std::string_view sep);

[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

[[nodiscard]] bool starts_with(std::string_view s,
                               std::string_view prefix) noexcept;
[[nodiscard]] bool ends_with(std::string_view s,
                             std::string_view suffix) noexcept;

[[nodiscard]] std::string to_lower(std::string_view s);

/// Shell-style glob match supporting '*' and '?'.
[[nodiscard]] bool glob_match(std::string_view pattern,
                              std::string_view text) noexcept;

[[nodiscard]] std::string hex_encode(std::span<const std::uint8_t> data);
[[nodiscard]] std::vector<std::uint8_t> hex_decode(std::string_view hex);

/// "64 KiB", "8.0 MiB", "100 GiB".
[[nodiscard]] std::string format_bytes(Bytes n);

/// "12.4 ms", "3.2 s", "1 h 02 m".
[[nodiscard]] std::string format_duration(SimTime t);

/// Fixed-precision percentage: format_pct(0.124) == "12.4%".
[[nodiscard]] std::string format_pct(double fraction, int decimals = 1);

/// printf-style into std::string (type-safe enough for internal use).
[[nodiscard]] std::string strprintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace iotaxo
