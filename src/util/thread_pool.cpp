#include "util/thread_pool.h"

#include <algorithm>

namespace iotaxo {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void ThreadPool::post(std::function<void()> fn) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  ThreadPool pool(threads);
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) {
    f.get();
  }
}

}  // namespace iotaxo
