#include "util/failpoint.h"

#include <cstdlib>
#include <map>
#include <mutex>

#include "util/error.h"

namespace iotaxo::fail {

namespace {

enum class Action { kError, kTorn, kCrash };

struct Spec {
  Action action = Action::kError;
  std::uint64_t torn_bytes = 0;
};

struct Registry {
  std::mutex m;
  std::map<std::string, Spec, std::less<>> specs;
  bool tracing = false;
  std::vector<std::string> traced;  // first-hit order
};

/// Function-local so env-driven configuration from a static initializer in
/// any TU cannot race an unconstructed registry.
Registry& registry() {
  static Registry r;
  return r;
}

void publish_active(const Registry& r) {
  detail::active.store(!r.specs.empty() || r.tracing,
                       std::memory_order_relaxed);
}

[[nodiscard]] Spec parse_spec(std::string_view name, std::string_view spec) {
  if (spec == "error") {
    return {Action::kError, 0};
  }
  if (spec == "crash") {
    return {Action::kCrash, 0};
  }
  if (spec.substr(0, 5) == "torn:") {
    const std::string_view digits = spec.substr(5);
    if (digits.empty()) {
      throw ConfigError("failpoint '" + std::string(name) +
                        "': torn spec needs a byte count (torn:N)");
    }
    std::uint64_t n = 0;
    for (const char c : digits) {
      if (c < '0' || c > '9') {
        throw ConfigError("failpoint '" + std::string(name) +
                          "': bad torn byte count '" + std::string(digits) +
                          "'");
      }
      n = n * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return {Action::kTorn, n};
  }
  throw ConfigError("failpoint '" + std::string(name) + "': unknown spec '" +
                    std::string(spec) + "' (error|torn:N|crash)");
}

/// Parse IOTAXO_FAILPOINTS exactly once, before main() — the fast path
/// never has to check the environment.
const bool env_configured = [] {
  const char* spec = std::getenv("IOTAXO_FAILPOINTS");
  if (spec != nullptr && *spec != '\0') {
    configure_from_spec(spec);
  }
  return true;
}();

}  // namespace

namespace detail {

std::atomic<bool> active{false};

void point_slow(std::string_view name) {
  Registry& r = registry();
  Action action;
  {
    const std::lock_guard<std::mutex> lock(r.m);
    if (r.tracing) {
      bool seen = false;
      for (const std::string& t : r.traced) {
        if (t == name) {
          seen = true;
          break;
        }
      }
      if (!seen) {
        r.traced.emplace_back(name);
      }
    }
    const auto it = r.specs.find(name);
    if (it == r.specs.end() || it->second.action == Action::kTorn) {
      return;  // torn specs act at the write site, via torn_limit()
    }
    action = it->second.action;
  }
  if (action == Action::kCrash) {
    throw CrashError("failpoint '" + std::string(name) + "'");
  }
  throw IoError("failpoint '" + std::string(name) + "'");
}

std::optional<std::uint64_t> torn_limit_slow(std::string_view name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.m);
  const auto it = r.specs.find(name);
  if (it == r.specs.end() || it->second.action != Action::kTorn) {
    return std::nullopt;
  }
  return it->second.torn_bytes;
}

}  // namespace detail

void configure(std::string_view name, std::string_view spec) {
  if (name.empty()) {
    throw ConfigError("failpoint: empty name");
  }
  const Spec parsed = parse_spec(name, spec);
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.m);
  r.specs.insert_or_assign(std::string(name), parsed);
  publish_active(r);
}

void configure_from_spec(std::string_view spec) {
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) {
      comma = spec.size();
    }
    const std::string_view entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) {
      continue;
    }
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw ConfigError("failpoint spec '" + std::string(entry) +
                        "': expected name=error|torn:N|crash");
    }
    configure(entry.substr(0, eq), entry.substr(eq + 1));
  }
}

void clear() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.m);
  r.specs.clear();
  r.tracing = false;
  r.traced.clear();
  publish_active(r);
}

void set_tracing(bool on) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.m);
  r.tracing = on;
  if (on) {
    r.traced.clear();
  }
  publish_active(r);
}

std::vector<std::string> traced_points() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.m);
  return r.traced;
}

}  // namespace iotaxo::fail
