#include "util/compress.h"

#include <array>
#include <cstring>

#include "util/error.h"

namespace iotaxo {

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 0x7F + kMinMatch;
constexpr std::size_t kWindow = 0xFFFF;
constexpr std::size_t kHashBits = 15;

[[nodiscard]] std::uint32_t hash4(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

std::vector<std::uint8_t> lz_compress(std::span<const std::uint8_t> input) {
  std::vector<std::uint8_t> out;
  out.reserve(input.size() / 2 + 16);

  std::array<std::size_t, 1u << kHashBits> head{};
  head.fill(SIZE_MAX);

  std::size_t literal_start = 0;
  auto flush_literals = [&](std::size_t end) {
    std::size_t n = end - literal_start;
    while (n > 0) {
      const std::size_t chunk = n > 128 ? 128 : n;
      out.push_back(static_cast<std::uint8_t>(chunk - 1));
      out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(end - n),
                 input.begin() + static_cast<std::ptrdiff_t>(end - n + chunk));
      n -= chunk;
    }
  };

  std::size_t i = 0;
  while (i + kMinMatch <= input.size()) {
    const std::uint32_t h = hash4(&input[i]);
    const std::size_t candidate = head[h];
    head[h] = i;

    std::size_t match_len = 0;
    if (candidate != SIZE_MAX && i - candidate <= kWindow &&
        std::memcmp(&input[candidate], &input[i], kMinMatch) == 0) {
      match_len = kMinMatch;
      const std::size_t limit =
          std::min(kMaxMatch, input.size() - i);
      while (match_len < limit &&
             input[candidate + match_len] == input[i + match_len]) {
        ++match_len;
      }
    }

    if (match_len >= kMinMatch) {
      flush_literals(i);
      const auto dist = static_cast<std::uint16_t>(i - candidate);
      out.push_back(static_cast<std::uint8_t>(
          0x80u | static_cast<std::uint8_t>(match_len - kMinMatch)));
      out.push_back(static_cast<std::uint8_t>(dist & 0xFF));
      out.push_back(static_cast<std::uint8_t>(dist >> 8));
      // Insert hash entries inside the match for better future matches.
      const std::size_t stop = std::min(i + match_len, input.size() - kMinMatch);
      for (std::size_t j = i + 1; j < stop; ++j) {
        head[hash4(&input[j])] = j;
      }
      i += match_len;
      literal_start = i;
    } else {
      ++i;
    }
  }
  flush_literals(input.size());
  return out;
}

std::vector<std::uint8_t> lz_decompress(std::span<const std::uint8_t> input) {
  std::vector<std::uint8_t> out;
  out.reserve(input.size() * 3);
  std::size_t i = 0;
  while (i < input.size()) {
    const std::uint8_t ctrl = input[i++];
    if (ctrl < 0x80) {
      const std::size_t n = static_cast<std::size_t>(ctrl) + 1;
      if (i + n > input.size()) {
        throw FormatError("lz: literal run past end of input");
      }
      out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(i),
                 input.begin() + static_cast<std::ptrdiff_t>(i + n));
      i += n;
    } else {
      if (i + 2 > input.size()) {
        throw FormatError("lz: truncated match");
      }
      const std::size_t len = static_cast<std::size_t>(ctrl & 0x7F) + kMinMatch;
      const std::size_t dist = static_cast<std::size_t>(input[i]) |
                               (static_cast<std::size_t>(input[i + 1]) << 8);
      i += 2;
      if (dist == 0 || dist > out.size()) {
        throw FormatError("lz: invalid match distance");
      }
      // Overlapping copies are valid (run-length style), so copy bytewise.
      std::size_t src = out.size() - dist;
      for (std::size_t k = 0; k < len; ++k) {
        out.push_back(out[src + k]);
      }
    }
  }
  return out;
}

}  // namespace iotaxo
