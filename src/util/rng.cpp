#include "util/rng.h"

#include <cmath>
#include <string>

namespace iotaxo {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

namespace {
[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
}

Rng Rng::fork(std::string_view name) const noexcept {
  // Combine current state with the stream name; does not disturb *this.
  std::uint64_t h = fnv1a(name);
  h ^= mix64(s_[0] ^ rotl(s_[2], 17));
  return Rng{h};
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  // 53 high bits -> [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t draw = next_u64();
  while (draw >= limit) {
    draw = next_u64();
  }
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal(double mean, double stddev) noexcept {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u = 0.0;
  do {
    u = next_double();
  } while (u <= 1e-300);
  const double v = next_double();
  const double r = std::sqrt(-2.0 * std::log(u));
  const double theta = 2.0 * 3.14159265358979323846 * v;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

bool Rng::chance(double p) noexcept { return next_double() < p; }

std::string Rng::token(std::size_t length) noexcept {
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(kAlphabet[uniform(0, 35)]);
  }
  return out;
}

}  // namespace iotaxo
