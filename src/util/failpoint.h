// Deterministic fault injection for the durable-write paths.
//
// A *failpoint* is a named site in production code where a test (or the
// IOTAXO_FAILPOINTS environment variable) can inject a failure:
//
//   fail::point("store.manifest.rename");   // in the write path
//
// Unconfigured, the call compiles down to one relaxed atomic load and a
// predictable not-taken branch — the registry is consulted only when at
// least one failpoint is armed or tracing is on, so always-on capture
// daemons pay nothing for carrying the instrumentation.
//
// Three actions, selected per point:
//   error    throw IoError("failpoint '<name>'") — models a transient or
//            permanent syscall failure the caller must surface cleanly.
//   torn:N   at a *write* failpoint (sites that also consult
//            fail::torn_limit), emit only the first N payload bytes and
//            then raise CrashError — models a crash mid-write that left a
//            torn file behind.
//   crash    throw CrashError — models the process dying at exactly this
//            point. CrashError deliberately does NOT derive from
//            iotaxo::Error, so recovery-oblivious `catch (const Error&)`
//            handlers cannot swallow a simulated death; the crash-matrix
//            tests catch it at their simulated process boundary.
//
// Configuration:
//   fail::configure("name", "torn:8");              programmatic
//   fail::configure_from_spec("a=error,b=crash");   same, comma-separated
//   IOTAXO_FAILPOINTS="a=error,b=torn:8,c=crash"    read once at program
//                                                   start (static init)
//
// Tracing (fail::set_tracing) records every failpoint name evaluated, in
// first-hit order, without acting on any of them: the crash-matrix test
// runs the real write path once under tracing to *discover* every
// registered point, then crashes at each in turn — so adding a new
// failpoint to the protocol automatically widens the matrix.
//
// All entry points are thread-safe; the armed/tracing fast-path flag is a
// single atomic.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace iotaxo::fail {

/// Simulated process death at a failpoint (`crash` and `torn:N` actions).
/// Not an iotaxo::Error on purpose: it must unwind past every recovery
/// handler to the simulated crash boundary (the test that armed it).
class CrashError : public std::runtime_error {
 public:
  explicit CrashError(const std::string& what)
      : std::runtime_error("simulated crash: " + what) {}
};

namespace detail {
extern std::atomic<bool> active;
void point_slow(std::string_view name);
[[nodiscard]] std::optional<std::uint64_t> torn_limit_slow(
    std::string_view name);
}  // namespace detail

/// True when any failpoint is configured or tracing is on — the fast-path
/// guard every site reads first.
[[nodiscard]] inline bool active() noexcept {
  return detail::active.load(std::memory_order_relaxed);
}

/// Evaluate failpoint `name`: record it when tracing, throw IoError for an
/// `error` spec, CrashError for a `crash` spec. A `torn:N` spec does not
/// act here — the write site consults torn_limit() for it.
inline void point(std::string_view name) {
  if (active()) {
    detail::point_slow(name);
  }
}

/// For write sites: the number of payload bytes to emit before simulating
/// a crash, when `name` carries a `torn:N` spec; nullopt otherwise. The
/// site writes min(N, size) bytes and throws CrashError itself.
[[nodiscard]] inline std::optional<std::uint64_t> torn_limit(
    std::string_view name) {
  if (!active()) {
    return std::nullopt;
  }
  return detail::torn_limit_slow(name);
}

/// Arm one failpoint: spec is "error", "crash" or "torn:N" (N >= 0 decimal
/// bytes). Throws ConfigError on a malformed spec.
void configure(std::string_view name, std::string_view spec);

/// Arm a comma-separated list of "name=spec" entries (the IOTAXO_FAILPOINTS
/// syntax). Empty entries are ignored.
void configure_from_spec(std::string_view spec);

/// Disarm every failpoint and turn tracing off.
void clear();

/// Record (without acting on) every failpoint evaluated from now on.
void set_tracing(bool on);

/// Names evaluated since tracing was last enabled, in first-hit order.
[[nodiscard]] std::vector<std::string> traced_points();

}  // namespace iotaxo::fail
