// The simulated parallel file system ("lanlfs"): files striped RAID-5
// across many storage targets, with a shared-file locking model that
// reproduces the contention structure behind the paper's Figures 2-4.
//
// Cost model for a write of n bytes by one of W concurrent writers:
//
//   t = raid_setup                                  (per-op server work)
//     + [shared] lock_rpc + lock_contention*(W-1)   (stripe-lock traffic)
//     + [shared & strided] placement*(W-1)          (fragmented placement)
//     + n / stream_bw(pattern)                      (striped transfer)
//
// Shared-file writes additionally expose a *stall amplification* factor to
// the interposition layer: a rank stopped by a tracer while holding stripe
// locks stalls, on average, half the other writers — this is why traced
// bandwidth overhead on N-to-1 workloads is an order of magnitude higher
// than on N-to-N at equal block size (§4.1.2: 51.3%/64.7% vs 68.6% at
// 64 KiB but 5.5%/6.1% vs 0.6% at 8 MiB).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "fs/vfs.h"
#include "pfs/raid.h"
#include "pfs/storage_target.h"

namespace iotaxo::pfs {

struct PfsParams {
  int targets = 252;
  Bytes stripe_unit = 64 * kKiB;
  DiskParams disk{};

  // Per-operation latencies (metadata server).
  SimTime open_cost = from_millis(1.2);
  SimTime create_cost = from_millis(2.5);
  SimTime close_cost = from_micros(300.0);
  SimTime stat_cost = from_micros(500.0);
  SimTime statfs_cost = from_micros(400.0);
  SimTime mkdir_cost = from_millis(2.0);
  SimTime unlink_cost = from_millis(2.0);
  SimTime readdir_cost_base = from_micros(600.0);
  SimTime readdir_cost_per_entry = from_micros(8.0);
  SimTime fsync_cost = from_millis(8.0);
  SimTime mmap_cost = from_micros(80.0);

  // Write-path cost model (see header comment).
  SimTime raid_setup = from_micros(159.0);
  SimTime lock_rpc = from_micros(200.0);
  SimTime lock_contention_per_writer = from_micros(750.0);
  SimTime strided_placement_per_writer = from_micros(200.0);

  // Per-process streaming bandwidth by sharing pattern (MB/s).
  double stream_mbps_exclusive = 50.0;
  double stream_mbps_shared = 38.0;
  double stream_mbps_shared_strided = 30.0;

  // Read path: cheaper locks, slightly higher bandwidth.
  SimTime read_setup = from_micros(120.0);
  SimTime read_lock_rpc = from_micros(100.0);
  SimTime read_contention_per_reader = from_micros(150.0);
  double read_mbps_exclusive = 60.0;
  double read_mbps_shared = 45.0;

  /// Fraction of other shared-file writers stalled while a tracer holds
  /// this rank stopped mid-syscall (lock-coupling).
  double tracer_lock_coupling = 0.5;

  fs::ContentPolicy content = fs::ContentPolicy::kMetadataOnly;
  Bytes max_retained_bytes = 64 * kMiB;
};

class Pfs : public fs::Vfs {
 public:
  explicit Pfs(PfsParams params = {});

  [[nodiscard]] fs::FsKind kind() const noexcept override {
    return fs::FsKind::kParallel;
  }
  [[nodiscard]] std::string fstype() const override { return "lanlfs"; }

  fs::VfsResult open(const std::string& path, fs::OpenMode mode,
                     const fs::OpCtx& ctx) override;
  fs::VfsResult close(int fd, const fs::OpCtx& ctx) override;
  fs::VfsResult read(int fd, Bytes offset, Bytes n, const fs::OpCtx& ctx,
                     std::uint8_t* out = nullptr) override;
  fs::VfsResult write(int fd, Bytes offset, Bytes n, const fs::OpCtx& ctx,
                      const std::uint8_t* data = nullptr) override;
  fs::VfsResult fsync(int fd, const fs::OpCtx& ctx) override;
  fs::VfsResult stat(const std::string& path, const fs::OpCtx& ctx) override;
  fs::VfsResult statfs(const fs::OpCtx& ctx) override;
  fs::VfsResult mkdir(const std::string& path, const fs::OpCtx& ctx) override;
  fs::VfsResult unlink(const std::string& path, const fs::OpCtx& ctx) override;
  fs::VfsResult readdir(const std::string& path, const fs::OpCtx& ctx) override;
  fs::VfsResult mmap(int fd, const fs::OpCtx& ctx) override;
  fs::VfsResult mmap_read(int fd, Bytes offset, Bytes n,
                          const fs::OpCtx& ctx) override;
  fs::VfsResult mmap_write(int fd, Bytes offset, Bytes n,
                           const fs::OpCtx& ctx) override;

  [[nodiscard]] bool exists(const std::string& path) const override;
  [[nodiscard]] fs::StatInfo stat_info(const std::string& path) const override;
  [[nodiscard]] std::vector<std::string> list(
      const std::string& dir) const override;
  [[nodiscard]] std::vector<std::uint8_t> content(
      const std::string& path) const override;

  /// How much a tracer-induced stop of the process owning `fd` is amplified
  /// by stripe-lock coupling: 1.0 for exclusive files, 1 + coupling*(W-1)
  /// for a file with W concurrent writers.
  [[nodiscard]] double stall_amplification(int fd) const noexcept override;

  [[nodiscard]] const PfsParams& params() const noexcept { return params_; }
  [[nodiscard]] const Raid5Layout& layout() const noexcept { return layout_; }

  /// Number of distinct ranks holding a write handle on `path`.
  [[nodiscard]] int writer_count(const std::string& path) const;

 private:
  struct File {
    Bytes size = 0;
    std::uint32_t uid = 0;
    std::uint32_t gid = 0;
    bool is_dir = false;
    std::set<int> writer_ranks;  // ranks with open write handles
    std::vector<std::uint8_t> data;
  };

  struct Handle {
    std::string path;
    fs::OpenMode mode;
    fs::AccessHint hint = fs::AccessHint::kSequential;
    int rank = -1;
    bool mapped = false;
  };

  [[nodiscard]] File& file_for_fd(int fd);
  [[nodiscard]] const Handle& handle_for_fd(int fd) const;
  [[nodiscard]] SimTime write_cost(const Handle& h, const File& f,
                                   Bytes n) const noexcept;
  [[nodiscard]] SimTime read_cost(const Handle& h, const File& f,
                                  Bytes n) const noexcept;

  PfsParams params_;
  Raid5Layout layout_;
  std::vector<StorageTarget> targets_;
  std::map<std::string, File> files_;
  std::map<int, Handle> handles_;
  int next_fd_ = 3;
};

}  // namespace iotaxo::pfs
