// A single storage target (disk) behind the parallel file system.
// Used by the RAID layout for placement bookkeeping; aggregate timing is
// governed by PfsParams (see pfs.h) which models the measured end-to-end
// behaviour of the paper's 252-drive RAID-5 volume.
#pragma once

#include "util/types.h"

namespace iotaxo::pfs {

struct DiskParams {
  SimTime avg_seek = from_millis(8.0);
  SimTime half_rotation = from_millis(4.1);  // 7200 RPM class
  double stream_mbps = 72.0;
};

class StorageTarget {
 public:
  StorageTarget() noexcept = default;
  explicit StorageTarget(int id, DiskParams params = {}) noexcept
      : id_(id), params_(params) {}

  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] const DiskParams& params() const noexcept { return params_; }

  /// Positioned access: seek + rotate + transfer.
  [[nodiscard]] SimTime random_io_time(Bytes n) const noexcept {
    return params_.avg_seek + params_.half_rotation + stream_time(n);
  }

  /// Streaming transfer only.
  [[nodiscard]] SimTime stream_time(Bytes n) const noexcept {
    const double seconds =
        static_cast<double>(n) / (params_.stream_mbps * 1024.0 * 1024.0);
    return from_seconds(seconds);
  }

  [[nodiscard]] Bytes bytes_written() const noexcept { return bytes_written_; }
  void account_write(Bytes n) noexcept { bytes_written_ += n; }

 private:
  int id_ = 0;
  DiskParams params_{};
  Bytes bytes_written_ = 0;
};

}  // namespace iotaxo::pfs
