// RAID-5 layout geometry: left-symmetric parity rotation over N targets
// with a fixed stripe unit (64 KiB in the paper's testbed: "RAID 5 with a
// stripe width of 64 kilobytes across 252 hard drives").
#pragma once

#include "util/types.h"

namespace iotaxo::pfs {

struct StripeLocation {
  long long row = 0;      // stripe row index
  int data_column = 0;    // logical data column within the row
  int target = 0;         // physical target holding the data unit
  int parity_target = 0;  // physical target holding the row's parity
};

class Raid5Layout {
 public:
  Raid5Layout(int targets, Bytes stripe_unit);

  [[nodiscard]] int targets() const noexcept { return targets_; }
  [[nodiscard]] Bytes stripe_unit() const noexcept { return stripe_unit_; }

  /// Data bytes per full stripe row ((targets-1) data units).
  [[nodiscard]] Bytes full_stripe_bytes() const noexcept {
    return stripe_unit_ * (targets_ - 1);
  }

  /// Map a logical byte offset to its physical placement.
  [[nodiscard]] StripeLocation locate(Bytes offset) const noexcept;

  /// True if a write of [offset, offset+n) covers only part of a stripe
  /// row, forcing a read-modify-write of the parity unit.
  [[nodiscard]] bool is_partial_stripe_write(Bytes offset,
                                             Bytes n) const noexcept;

  /// Number of distinct stripe rows the byte range touches (each row has an
  /// independent lock domain in the PFS contention model).
  [[nodiscard]] long long rows_touched(Bytes offset, Bytes n) const noexcept;

 private:
  int targets_;
  Bytes stripe_unit_;
};

}  // namespace iotaxo::pfs
