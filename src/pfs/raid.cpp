#include "pfs/raid.h"

#include "util/error.h"

namespace iotaxo::pfs {

Raid5Layout::Raid5Layout(int targets, Bytes stripe_unit)
    : targets_(targets), stripe_unit_(stripe_unit) {
  if (targets_ < 3) {
    throw ConfigError("RAID-5 needs at least 3 targets");
  }
  if (stripe_unit_ <= 0) {
    throw ConfigError("stripe unit must be positive");
  }
}

StripeLocation Raid5Layout::locate(Bytes offset) const noexcept {
  const Bytes data_per_row = full_stripe_bytes();
  StripeLocation loc;
  loc.row = offset / data_per_row;
  loc.data_column = static_cast<int>((offset % data_per_row) / stripe_unit_);
  // Left-symmetric: parity rotates right-to-left; data columns shift so
  // that sequential rows use all targets evenly.
  loc.parity_target = static_cast<int>(
      (targets_ - 1) - (loc.row % targets_));
  const int physical =
      (loc.parity_target + 1 + loc.data_column) % targets_;
  loc.target = physical;
  return loc;
}

bool Raid5Layout::is_partial_stripe_write(Bytes offset,
                                          Bytes n) const noexcept {
  const Bytes data_per_row = full_stripe_bytes();
  return (offset % data_per_row) != 0 || (n % data_per_row) != 0;
}

long long Raid5Layout::rows_touched(Bytes offset, Bytes n) const noexcept {
  if (n <= 0) {
    return 0;
  }
  const Bytes data_per_row = full_stripe_bytes();
  const long long first = offset / data_per_row;
  const long long last = (offset + n - 1) / data_per_row;
  return last - first + 1;
}

}  // namespace iotaxo::pfs
