#include "pfs/pfs.h"

#include <algorithm>
#include <cstring>

#include "fs/path.h"
#include "util/error.h"
#include "util/strings.h"

namespace iotaxo::pfs {

using fs::AccessHint;
using fs::OpCtx;
using fs::OpenMode;
using fs::VfsResult;

Pfs::Pfs(PfsParams params)
    : params_(params),
      layout_(params_.targets, params_.stripe_unit) {
  targets_.reserve(static_cast<std::size_t>(params_.targets));
  for (int i = 0; i < params_.targets; ++i) {
    targets_.emplace_back(i, params_.disk);
  }
  files_["/"] =
      File{.size = 0, .uid = 0, .gid = 0, .is_dir = true,
           .writer_ranks = {}, .data = {}};
}

Pfs::File& Pfs::file_for_fd(int fd) {
  const auto it = handles_.find(fd);
  if (it == handles_.end()) {
    throw IoError(strprintf("pfs: bad fd %d", fd));
  }
  const auto fit = files_.find(it->second.path);
  if (fit == files_.end()) {
    throw IoError("pfs: file vanished under open handle: " + it->second.path);
  }
  return fit->second;
}

const Pfs::Handle& Pfs::handle_for_fd(int fd) const {
  const auto it = handles_.find(fd);
  if (it == handles_.end()) {
    throw IoError(strprintf("pfs: bad fd %d", fd));
  }
  return it->second;
}

SimTime Pfs::write_cost(const Handle& h, const File& f, Bytes n) const noexcept {
  const int writers = static_cast<int>(f.writer_ranks.size());
  const bool shared = writers > 1;
  SimTime per_op = params_.raid_setup;
  double mbps = params_.stream_mbps_exclusive;
  if (shared) {
    per_op += params_.lock_rpc +
              params_.lock_contention_per_writer * (writers - 1);
    mbps = params_.stream_mbps_shared;
    if (h.hint == AccessHint::kStrided) {
      per_op += params_.strided_placement_per_writer * (writers - 1);
      mbps = params_.stream_mbps_shared_strided;
    }
  }
  const double transfer_s =
      static_cast<double>(n) / (mbps * 1024.0 * 1024.0);
  return per_op + from_seconds(transfer_s);
}

SimTime Pfs::read_cost(const Handle& h, const File& f, Bytes n) const noexcept {
  (void)h;
  const int writers = static_cast<int>(f.writer_ranks.size());
  const bool shared = writers > 1;
  SimTime per_op = params_.read_setup;
  double mbps = params_.read_mbps_exclusive;
  if (shared) {
    per_op += params_.read_lock_rpc +
              params_.read_contention_per_reader * (writers - 1);
    mbps = params_.read_mbps_shared;
  }
  const double transfer_s =
      static_cast<double>(n) / (mbps * 1024.0 * 1024.0);
  return per_op + from_seconds(transfer_s);
}

VfsResult Pfs::open(const std::string& raw_path, OpenMode mode,
                    const OpCtx& ctx) {
  const std::string path = fs::normalize_path(raw_path);
  SimTime cost = params_.open_cost;
  auto it = files_.find(path);
  if (it == files_.end()) {
    if (!mode.create) {
      throw IoError("pfs open: no such file: " + path);
    }
    File f;
    f.uid = ctx.uid;
    f.gid = ctx.gid;
    it = files_.emplace(path, std::move(f)).first;
    cost = params_.create_cost;
  } else if (it->second.is_dir) {
    throw IoError("pfs open: is a directory: " + path);
  } else if (mode.truncate) {
    it->second.size = 0;
    it->second.data.clear();
  }
  if (mode.write || mode.append) {
    it->second.writer_ranks.insert(ctx.rank);
  }
  const int fd = next_fd_++;
  handles_[fd] = Handle{path, mode, ctx.hint, ctx.rank, false};
  return {fd, cost};
}

VfsResult Pfs::close(int fd, const OpCtx& /*ctx*/) {
  const auto it = handles_.find(fd);
  if (it == handles_.end()) {
    throw IoError(strprintf("pfs close: bad fd %d", fd));
  }
  const Handle& h = it->second;
  const auto fit = files_.find(h.path);
  if (fit != files_.end() && (h.mode.write || h.mode.append)) {
    // Only drop the writer registration if no other handle from the same
    // rank still writes this file.
    bool other_writer_handle = false;
    for (const auto& [ofd, oh] : handles_) {
      if (ofd != fd && oh.path == h.path && oh.rank == h.rank &&
          (oh.mode.write || oh.mode.append)) {
        other_writer_handle = true;
        break;
      }
    }
    if (!other_writer_handle) {
      fit->second.writer_ranks.erase(h.rank);
    }
  }
  handles_.erase(it);
  return {0, params_.close_cost};
}

VfsResult Pfs::read(int fd, Bytes offset, Bytes n, const OpCtx& /*ctx*/,
                    std::uint8_t* out) {
  const Handle& h = handle_for_fd(fd);
  File& f = file_for_fd(fd);
  if (offset < 0 || n < 0) {
    throw IoError("pfs read: negative offset or count");
  }
  const Bytes avail = std::max<Bytes>(0, f.size - offset);
  const Bytes got = std::min(n, avail);
  if (out != nullptr && !f.data.empty() && got > 0) {
    const Bytes stored =
        std::min<Bytes>(got, static_cast<Bytes>(f.data.size()) - offset);
    if (stored > 0) {
      std::memcpy(out, f.data.data() + offset,
                  static_cast<std::size_t>(stored));
    }
  }
  return {got, read_cost(h, f, got)};
}

VfsResult Pfs::write(int fd, Bytes offset, Bytes n, const OpCtx& /*ctx*/,
                     const std::uint8_t* data) {
  const Handle& h = handle_for_fd(fd);
  if (!h.mode.write && !h.mode.append) {
    throw IoError("pfs write: fd not opened for writing");
  }
  File& f = file_for_fd(fd);
  if (offset < 0 || n < 0) {
    throw IoError("pfs write: negative offset or count");
  }
  const Bytes end = offset + n;
  f.size = std::max(f.size, end);
  if (params_.content == fs::ContentPolicy::kRetain && data != nullptr) {
    if (end > params_.max_retained_bytes) {
      throw ConfigError("pfs content retention limit exceeded");
    }
    if (static_cast<Bytes>(f.data.size()) < end) {
      f.data.resize(static_cast<std::size_t>(end), 0);
    }
    std::memcpy(f.data.data() + offset, data, static_cast<std::size_t>(n));
  }
  // Account placement to physical targets (bookkeeping for tests/analysis).
  const StripeLocation loc = layout_.locate(offset);
  targets_[static_cast<std::size_t>(loc.target)].account_write(n);
  return {n, write_cost(h, f, n)};
}

VfsResult Pfs::fsync(int fd, const OpCtx& /*ctx*/) {
  (void)file_for_fd(fd);
  return {0, params_.fsync_cost};
}

VfsResult Pfs::stat(const std::string& raw_path, const OpCtx& /*ctx*/) {
  const std::string path = fs::normalize_path(raw_path);
  const auto it = files_.find(path);
  if (it == files_.end()) {
    throw IoError("pfs stat: no such file: " + path);
  }
  return {it->second.size, params_.stat_cost};
}

VfsResult Pfs::statfs(const OpCtx& /*ctx*/) {
  return {0, params_.statfs_cost};
}

VfsResult Pfs::mkdir(const std::string& raw_path, const OpCtx& ctx) {
  const std::string path = fs::normalize_path(raw_path);
  if (files_.contains(path)) {
    throw IoError("pfs mkdir: exists: " + path);
  }
  File d;
  d.is_dir = true;
  d.uid = ctx.uid;
  d.gid = ctx.gid;
  files_.emplace(path, std::move(d));
  return {0, params_.mkdir_cost};
}

VfsResult Pfs::unlink(const std::string& raw_path, const OpCtx& /*ctx*/) {
  const std::string path = fs::normalize_path(raw_path);
  const auto it = files_.find(path);
  if (it == files_.end()) {
    throw IoError("pfs unlink: no such file: " + path);
  }
  if (it->second.is_dir) {
    throw IoError("pfs unlink: is a directory: " + path);
  }
  files_.erase(it);
  return {0, params_.unlink_cost};
}

VfsResult Pfs::readdir(const std::string& raw_path, const OpCtx& /*ctx*/) {
  const auto entries = list(raw_path);
  const SimTime cost =
      params_.readdir_cost_base +
      params_.readdir_cost_per_entry * static_cast<SimTime>(entries.size());
  return {static_cast<Bytes>(entries.size()), cost};
}

VfsResult Pfs::mmap(int fd, const OpCtx& /*ctx*/) {
  auto it = handles_.find(fd);
  if (it == handles_.end()) {
    throw IoError(strprintf("pfs mmap: bad fd %d", fd));
  }
  it->second.mapped = true;
  return {0, params_.mmap_cost};
}

VfsResult Pfs::mmap_read(int fd, Bytes offset, Bytes n, const OpCtx& ctx) {
  const Handle& h = handle_for_fd(fd);
  if (!h.mapped) {
    throw IoError("pfs mmap_read: fd not mapped");
  }
  return read(fd, offset, n, ctx, nullptr);
}

VfsResult Pfs::mmap_write(int fd, Bytes offset, Bytes n, const OpCtx& ctx) {
  const Handle& h = handle_for_fd(fd);
  if (!h.mapped) {
    throw IoError("pfs mmap_write: fd not mapped");
  }
  return write(fd, offset, n, ctx, nullptr);
}

bool Pfs::exists(const std::string& path) const {
  return files_.contains(fs::normalize_path(path));
}

fs::StatInfo Pfs::stat_info(const std::string& path) const {
  const auto it = files_.find(fs::normalize_path(path));
  if (it == files_.end()) {
    throw IoError("pfs stat_info: no such file: " + path);
  }
  return {it->second.size, it->second.uid, it->second.gid, it->second.is_dir};
}

std::vector<std::string> Pfs::list(const std::string& raw_dir) const {
  const std::string dir = fs::normalize_path(raw_dir);
  const std::string prefix = dir == "/" ? "/" : dir + "/";
  std::vector<std::string> out;
  for (const auto& [path, file] : files_) {
    if (path == dir || !starts_with(path, prefix)) {
      continue;
    }
    const std::string rest = path.substr(prefix.size());
    if (rest.find('/') == std::string::npos) {
      out.push_back(path);
    }
  }
  return out;
}

std::vector<std::uint8_t> Pfs::content(const std::string& path) const {
  const auto it = files_.find(fs::normalize_path(path));
  if (it == files_.end()) {
    throw IoError("pfs content: no such file: " + path);
  }
  return it->second.data;
}

double Pfs::stall_amplification(int fd) const noexcept {
  const auto it = handles_.find(fd);
  if (it == handles_.end()) {
    return 1.0;
  }
  const auto fit = files_.find(it->second.path);
  if (fit == files_.end()) {
    return 1.0;
  }
  const int writers = static_cast<int>(fit->second.writer_ranks.size());
  if (writers <= 1 ||
      !(it->second.mode.write || it->second.mode.append)) {
    return 1.0;
  }
  return 1.0 + params_.tracer_lock_coupling * (writers - 1);
}

int Pfs::writer_count(const std::string& path) const {
  const auto it = files_.find(fs::normalize_path(path));
  return it == files_.end()
             ? 0
             : static_cast<int>(it->second.writer_ranks.size());
}

}  // namespace iotaxo::pfs
