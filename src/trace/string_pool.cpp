#include "trace/string_pool.h"

#include "util/error.h"
#include "util/strings.h"

namespace iotaxo::trace {

StringPool::StringPool() { (void)intern(std::string_view{}); }

StringPool::StringPool(const StringPool& other)
    : index_(other.index_), bytes_(other.bytes_) {
  by_id_.assign(other.by_id_.size(), nullptr);
  for (const auto& [s, id] : index_) {
    by_id_[id] = &s;
  }
}

StringPool& StringPool::operator=(const StringPool& other) {
  if (this != &other) {
    index_ = other.index_;
    bytes_ = other.bytes_;
    by_id_.assign(other.by_id_.size(), nullptr);
    for (const auto& [s, id] : index_) {
      by_id_[id] = &s;
    }
  }
  return *this;
}

StrId StringPool::intern(std::string_view s) {
  const auto it = index_.find(s);
  if (it != index_.end()) {
    return it->second;
  }
  const StrId id = static_cast<StrId>(by_id_.size());
  const auto [inserted, ok] = index_.emplace(std::string(s), id);
  (void)ok;
  by_id_.push_back(&inserted->first);
  bytes_ += s.size() + sizeof(std::string);
  return id;
}

std::optional<StrId> StringPool::find(std::string_view s) const {
  const auto it = index_.find(s);
  if (it == index_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::string_view StringPool::view(StrId id) const { return str(id); }

const std::string& StringPool::str(StrId id) const {
  if (id >= by_id_.size()) {
    throw FormatError(strprintf("string pool: id %u out of range (size %zu)",
                                id, by_id_.size()));
  }
  return *by_id_[id];
}

void StringPool::clear() {
  index_.clear();
  by_id_.clear();
  bytes_ = 0;
  (void)intern(std::string_view{});
}

}  // namespace iotaxo::trace
