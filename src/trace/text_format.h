// Human-readable trace format, modelled on ltrace/strace output as shown in
// Figure 1 of the paper:
//
//   10:59:47.105818 SYS_open("/etc/hosts", 0, 0666) = 3 <0.000034>
//
// A short comment header carries per-stream metadata (host, rank, pid, and
// the wall-clock day base) so that streams parse back losslessly apart from
// timestamp truncation to microseconds — exactly the precision ltrace
// prints. The parser also reconstructs semantic fields (path/fd/bytes/
// offset) from argument lists using per-call-name rules, which is precisely
// what a replayer consuming raw ltrace output has to do.
#pragma once

#include <string>
#include <vector>

#include "trace/event.h"

namespace iotaxo::trace {

class TextTraceWriter {
 public:
  struct StreamMeta {
    std::string host;
    int rank = -1;
    std::uint32_t pid = 0;
  };

  /// Render a full stream (header + one line per event).
  [[nodiscard]] static std::string render(const StreamMeta& meta,
                                          const std::vector<TraceEvent>& events);

  /// Render a single event line (no header).
  [[nodiscard]] static std::string line(const TraceEvent& ev);
};

class TextTraceParser {
 public:
  struct Parsed {
    TextTraceWriter::StreamMeta meta;
    std::vector<TraceEvent> events;
  };

  /// Parse a stream produced by TextTraceWriter::render. Throws FormatError
  /// on malformed lines.
  [[nodiscard]] static Parsed parse(const std::string& text);

  /// Parse one event line given stream metadata.
  [[nodiscard]] static TraceEvent parse_line(
      const std::string& line, const TextTraceWriter::StreamMeta& meta,
      SimTime day_base);
};

}  // namespace iotaxo::trace
