#include "trace/scan_kernels.h"

#include <algorithm>
#include <cstring>

#include "trace/record_view.h"

#if defined(__x86_64__) || defined(_M_X64)
#define IOTAXO_ARCH_X86_64 1
#include <immintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define IOTAXO_ARCH_NEON 1
#include <arm_neon.h>
#endif

#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
#define IOTAXO_LITTLE_ENDIAN 1
#endif

namespace iotaxo::trace::scan {

namespace {

// Unaligned little-endian loads. On LE hosts memcpy compiles to a single
// mov; the byte-assembled form keeps big-endian hosts correct (the wire
// format is LE regardless of host order).
[[nodiscard]] inline std::uint32_t load_u32(const std::uint8_t* p) noexcept {
#if IOTAXO_LITTLE_ENDIAN
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
#else
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
#endif
}

[[nodiscard]] inline std::uint64_t load_u64(const std::uint8_t* p) noexcept {
#if IOTAXO_LITTLE_ENDIAN
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
#else
  return static_cast<std::uint64_t>(load_u32(p)) |
         (static_cast<std::uint64_t>(load_u32(p + 4)) << 32);
#endif
}

[[nodiscard]] inline std::int64_t load_i64(const std::uint8_t* p) noexcept {
  return static_cast<std::int64_t>(load_u64(p));
}

#if IOTAXO_ARCH_X86_64
// _mm_max_epu32 is SSE4.1; the caller dispatches on a runtime CPU check so
// the baseline build still runs on SSE2-only hardware.
__attribute__((target("sse4.1"))) [[nodiscard]] std::uint32_t max_u32_sse41(
    const std::uint8_t* p, std::size_t n) noexcept {
  __m128i best = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const auto* q = reinterpret_cast<const __m128i*>(p + i * 4);
    __m128i a = _mm_max_epu32(_mm_loadu_si128(q), _mm_loadu_si128(q + 1));
    __m128i b = _mm_max_epu32(_mm_loadu_si128(q + 2), _mm_loadu_si128(q + 3));
    best = _mm_max_epu32(best, _mm_max_epu32(a, b));
  }
  for (; i + 4 <= n; i += 4) {
    best = _mm_max_epu32(
        best, _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i * 4)));
  }
  alignas(16) std::uint32_t lanes[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), best);
  std::uint32_t m = std::max(std::max(lanes[0], lanes[1]),
                             std::max(lanes[2], lanes[3]));
  for (; i < n; ++i) {
    m = std::max(m, load_u32(p + i * 4));
  }
  return m;
}

[[nodiscard]] bool have_sse41() noexcept {
  static const bool ok = __builtin_cpu_supports("sse4.1") != 0;
  return ok;
}
#endif

#if IOTAXO_ARCH_NEON
[[nodiscard]] std::uint32_t max_u32_neon(const std::uint8_t* p,
                                         std::size_t n) noexcept {
  uint32x4_t best = vdupq_n_u32(0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    best = vmaxq_u32(best, vld1q_u32(reinterpret_cast<const std::uint32_t*>(
                               p + i * 4)));
  }
  std::uint32_t m = vmaxvq_u32(best);
  for (; i < n; ++i) {
    m = std::max(m, load_u32(p + i * 4));
  }
  return m;
}
#endif

}  // namespace

std::uint32_t max_u32_le(const std::uint8_t* p, std::size_t n) noexcept {
#if IOTAXO_ARCH_X86_64 && IOTAXO_LITTLE_ENDIAN
  if (have_sse41()) {
    return max_u32_sse41(p, n);
  }
#elif IOTAXO_ARCH_NEON && IOTAXO_LITTLE_ENDIAN
  return max_u32_neon(p, n);
#endif
  // Portable fallback: 4 independent accumulators so the fold has no
  // loop-carried dependency chain (and vectorizes under -fopenmp-simd).
  std::uint32_t m0 = 0;
  std::uint32_t m1 = 0;
  std::uint32_t m2 = 0;
  std::uint32_t m3 = 0;
  std::size_t i = 0;
#if defined(_OPENMP) || defined(IOTAXO_OPENMP_SIMD)
#pragma omp simd reduction(max : m0, m1, m2, m3)
#endif
  for (std::size_t j = 0; j < n / 4 * 4; j += 4) {
    m0 = std::max(m0, load_u32(p + j * 4));
    m1 = std::max(m1, load_u32(p + (j + 1) * 4));
    m2 = std::max(m2, load_u32(p + (j + 2) * 4));
    m3 = std::max(m3, load_u32(p + (j + 3) * 4));
  }
  i = n / 4 * 4;
  std::uint32_t m = std::max(std::max(m0, m1), std::max(m2, m3));
  for (; i < n; ++i) {
    m = std::max(m, load_u32(p + i * 4));
  }
  return m;
}

namespace {

// The strided kernels, templated on the record layout (v2's 81-byte full
// stride, or the projected hot group's 33-byte stride). One instantiation
// per layout keeps the unroll/predication structure — and the fold order,
// hence bit-identical results — shared between the two.
template <std::size_t kStride, std::size_t kClsOff, std::size_t kNameOff,
          std::size_t kStartOff, std::size_t kDurOff, std::size_t kBytesOff>
struct StridedKernels {
  static void minmax(const std::uint8_t* recs, std::size_t n, SimTime* lo,
                     SimTime* hi) noexcept {
    const std::uint8_t* p = recs + kStartOff;
    SimTime lo0 = load_i64(p);
    SimTime hi0 = lo0;
    SimTime lo1 = lo0;
    SimTime hi1 = hi0;
    std::size_t i = 1;
    // 2x unrolled with independent accumulators: the min and max folds run
    // in parallel ALU ports instead of serializing on one chain.
    for (; i + 2 <= n; i += 2) {
      const SimTime a = load_i64(p + i * kStride);
      const SimTime b = load_i64(p + (i + 1) * kStride);
      lo0 = std::min(lo0, a);
      hi0 = std::max(hi0, a);
      lo1 = std::min(lo1, b);
      hi1 = std::max(hi1, b);
    }
    for (; i < n; ++i) {
      const SimTime a = load_i64(p + i * kStride);
      lo0 = std::min(lo0, a);
      hi0 = std::max(hi0, a);
    }
    *lo = std::min(lo0, lo1);
    *hi = std::max(hi0, hi1);
  }

  static Bytes sum_transfer(const std::uint8_t* recs, std::size_t n,
                            StrId sys_write, StrId sys_read, SimTime begin,
                            SimTime end) noexcept {
    // Branchless predication: every record contributes rec.bytes & mask
    // where mask is all-ones iff (class == syscall) & (name is a transfer
    // id) & (begin <= start < end). Id 0 never matches (no event has an
    // empty name), mirroring is_transfer() in the store.
    const auto contribution = [&](const std::uint8_t* rec) noexcept -> Bytes {
      const bool is_sys = rec[kClsOff] == 0;  // EventClass::kSyscall
      const StrId name = load_u32(rec + kNameOff);
      const bool transfer = (sys_write != 0 && name == sys_write) ||
                            (sys_read != 0 && name == sys_read);
      const SimTime start = load_i64(rec + kStartOff);
      const bool in_window = start >= begin && start < end;
      const auto mask =
          -static_cast<std::int64_t>(is_sys & transfer & in_window);
      return load_i64(rec + kBytesOff) & mask;
    };
    Bytes t0 = 0;
    Bytes t1 = 0;
    Bytes t2 = 0;
    Bytes t3 = 0;
    std::size_t i = 0;
#if defined(_OPENMP) || defined(IOTAXO_OPENMP_SIMD)
#pragma omp simd reduction(+ : t0, t1, t2, t3)
#endif
    for (std::size_t j = 0; j < n / 4 * 4; j += 4) {
      t0 += contribution(recs + j * kStride);
      t1 += contribution(recs + (j + 1) * kStride);
      t2 += contribution(recs + (j + 2) * kStride);
      t3 += contribution(recs + (j + 3) * kStride);
    }
    i = n / 4 * 4;
    for (; i < n; ++i) {
      t0 += contribution(recs + i * kStride);
    }
    return t0 + t1 + t2 + t3;
  }

  static void call_stats(const std::uint8_t* recs, std::size_t n,
                         CallAccum* rows) noexcept {
    // The scatter (rows[name] += ...) cannot vectorize, but the field
    // gathers can be hoisted and the I/O-byte contribution made
    // branchless: classes 0..2 (syscall, library call, fs op) are the I/O
    // classes.
    const auto fold = [&](const std::uint8_t* rec) noexcept {
      const StrId name = load_u32(rec + kNameOff);
      const auto io_mask = -static_cast<std::int64_t>(rec[kClsOff] <= 2);
      CallAccum& row = rows[name];
      ++row.count;
      row.time += load_i64(rec + kDurOff);
      row.bytes += load_i64(rec + kBytesOff) & io_mask;
    };
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      fold(recs + i * kStride);
      fold(recs + (i + 1) * kStride);
      fold(recs + (i + 2) * kStride);
      fold(recs + (i + 3) * kStride);
    }
    for (; i < n; ++i) {
      fold(recs + i * kStride);
    }
  }
};

using V2Kernels =
    StridedKernels<v2layout::kStride, v2layout::kCls, v2layout::kName,
                   v2layout::kLocalStart, v2layout::kDuration,
                   v2layout::kBytes>;
using HotKernels =
    StridedKernels<hotlayout::kStride, hotlayout::kCls, hotlayout::kName,
                   hotlayout::kLocalStart, hotlayout::kDuration,
                   hotlayout::kBytes>;

}  // namespace

void minmax_stamps(const std::uint8_t* recs, std::size_t n, SimTime* lo,
                   SimTime* hi) noexcept {
  V2Kernels::minmax(recs, n, lo, hi);
}

Bytes sum_transfer_bytes_in_window(const std::uint8_t* recs, std::size_t n,
                                   StrId sys_write, StrId sys_read,
                                   SimTime begin, SimTime end) noexcept {
  return V2Kernels::sum_transfer(recs, n, sys_write, sys_read, begin, end);
}

void accumulate_call_stats(const std::uint8_t* recs, std::size_t n,
                           CallAccum* rows) noexcept {
  V2Kernels::call_stats(recs, n, rows);
}

void minmax_stamps_hot(const std::uint8_t* recs, std::size_t n, SimTime* lo,
                       SimTime* hi) noexcept {
  HotKernels::minmax(recs, n, lo, hi);
}

Bytes sum_transfer_bytes_in_window_hot(const std::uint8_t* recs,
                                       std::size_t n, StrId sys_write,
                                       StrId sys_read, SimTime begin,
                                       SimTime end) noexcept {
  return HotKernels::sum_transfer(recs, n, sys_write, sys_read, begin, end);
}

void accumulate_call_stats_hot(const std::uint8_t* recs, std::size_t n,
                               CallAccum* rows) noexcept {
  HotKernels::call_stats(recs, n, rows);
}

}  // namespace iotaxo::trace::scan
