#include "trace/async_sink.h"

#include <utility>

#include "util/error.h"
#include "util/metrics.h"

namespace iotaxo::trace {

namespace {

/// Handles bound once; every record call is one relaxed load when metrics
/// are disarmed (util/metrics.h).
struct SinkMetrics {
  obs::Counter& stalls = obs::counter("sink.async.backpressure_stalls");
  obs::Histogram& stall_ns = obs::histogram("sink.async.backpressure_wait_ns");
  obs::Counter& batches = obs::counter("sink.async.batches_delivered");
  obs::Counter& events = obs::counter("sink.async.events_delivered");
  obs::Counter& errors = obs::counter("sink.async.delivery_errors");
  obs::Counter& dropped = obs::counter("sink.async.errors_dropped");
  obs::Gauge& depth = obs::gauge("sink.async.queue_depth");
};

SinkMetrics& metrics() {
  static SinkMetrics m;
  return m;
}

}  // namespace

AsyncBatchSink::AsyncBatchSink(SinkPtr downstream, AsyncOptions options)
    : downstream_(std::move(downstream)),
      options_(options),
      pool_(options.workers == 0 ? 1 : options.workers) {
  if (!downstream_) {
    throw ConfigError("AsyncBatchSink needs a downstream sink");
  }
  if (options_.queue_capacity == 0) {
    options_.queue_capacity = 1;
  }
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    pool_.post([this] { drain_loop(); });
  }
}

AsyncBatchSink::~AsyncBatchSink() {
  try {
    flush();
  } catch (...) {
    // Destruction is not allowed to throw; flush() callers get the error.
    // The drop is not invisible though: it was counted as a delivery
    // error at capture time, and lands here as an explicit dropped count.
    metrics().dropped.add(1);
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  // pool_ (last member) joins the drained workers on destruction.
}

void AsyncBatchSink::on_event(const TraceEvent& ev) {
  // Unbatched producers still get async delivery, one-event batches; the
  // batch path is the one built for throughput.
  EventBatch batch;
  batch.append(ev);
  enqueue(std::move(batch));
}

void AsyncBatchSink::on_batch(const EventBatch& batch) {
  EventBatch owned;
  owned.append(batch);
  enqueue(std::move(owned));
}

void AsyncBatchSink::on_batch_owned(EventBatch&& batch) {
  enqueue(std::move(batch));
}

void AsyncBatchSink::enqueue(EventBatch&& batch) {
  if (batch.empty()) {
    return;
  }
  bool was_empty = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (in_flight_ >= options_.queue_capacity) {
      // Backpressure: the producer stalls until a worker frees a slot.
      // Count the stall and how long the capture thread was held up.
      metrics().stalls.add(1);
      const obs::ScopedTimer stall_timer(metrics().stall_ns);
      space_cv_.wait(lock, [this] {
        return in_flight_ < options_.queue_capacity;
      });
    }
    was_empty = queue_.empty();
    queue_.push_back(std::move(batch));
    ++in_flight_;
    metrics().depth.set(in_flight_);
  }
  // Only the empty -> non-empty transition needs a wakeup: busy workers
  // re-check the queue after every chunk, so skipping the notify (a futex
  // syscall under contention) keeps the producer's handoff near-free.
  if (was_empty) {
    queue_cv_.notify_one();
  }
}

void AsyncBatchSink::drain_loop() {
  // Pop in bounded chunks: workers touch the producer's mutex a couple of
  // times per kDrainChunk batches instead of per batch, and wake a sibling
  // when work remains so the producer's single notify fans out.
  constexpr std::size_t kDrainChunk = 16;
  for (;;) {
    std::vector<EventBatch> chunk;
    bool more = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      const std::size_t take = std::min(queue_.size(), kDrainChunk);
      chunk.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        chunk.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      more = !queue_.empty();
    }
    if (more) {
      queue_cv_.notify_one();
    }
    for (EventBatch& batch : chunk) {
      const std::size_t batch_events = batch.size();
      try {
        if (options_.concurrent_downstream) {
          downstream_->on_batch(batch);
        } else {
          const std::lock_guard<std::mutex> lock(delivery_mu_);
          downstream_->on_batch(batch);
        }
        metrics().batches.add(1);
        metrics().events.add(batch_events);
      } catch (...) {
        // Recorded at capture time, not just at flush(): even if the only
        // flush happens in the destructor (which must swallow), the error
        // still shows up in the metrics surface.
        metrics().errors.add(1);
        const std::lock_guard<std::mutex> lock(mu_);
        if (!first_error_) {
          first_error_ = std::current_exception();
        }
      }
    }
    bool drained = false;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      in_flight_ -= chunk.size();
      drained = in_flight_ == 0;
      metrics().depth.set(in_flight_);
    }
    space_cv_.notify_all();
    if (drained) {
      drained_cv_.notify_all();
    }
  }
}

void AsyncBatchSink::flush() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    drained_cv_.wait(lock, [this] { return in_flight_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) {
    std::rethrow_exception(error);
  }
  const std::lock_guard<std::mutex> lock(delivery_mu_);
  downstream_->flush();
}

std::size_t AsyncBatchSink::pending() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

ShardedSummarySink::ShardedSummarySink(std::size_t shards) {
  if (shards == 0) {
    shards = 1;
  }
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ShardedSummarySink::Shard& ShardedSummarySink::shard_for(int rank) noexcept {
  // Cheap integer mix so consecutive ranks spread even when N shares
  // factors with the rank stride; negative ranks land somewhere stable too.
  std::uint32_t h = static_cast<std::uint32_t>(rank);
  h ^= h >> 16;
  h *= 0x45d9f3bu;
  h ^= h >> 16;
  return *shards_[h % shards_.size()];
}

void ShardedSummarySink::on_event(const TraceEvent& ev) {
  Shard& shard = shard_for(ev.rank);
  const std::lock_guard<std::mutex> lock(shard.mu);
  shard.sink.on_event(ev);
}

void ShardedSummarySink::on_batch(const EventBatch& batch) {
  if (batch.empty()) {
    return;
  }
  Shard& shard = shard_for(batch.record(0).rank);
  const std::lock_guard<std::mutex> lock(shard.mu);
  shard.sink.on_batch(batch);
}

void ShardedSummarySink::flush() {
  merged_.clear();
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [name, entry] : shard->sink.entries()) {
      SummarySink::Entry& merged = merged_[name];
      merged.count += entry.count;
      merged.total_duration += entry.total_duration;
    }
  }
}

long long ShardedSummarySink::total_events() const {
  long long total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->sink.total_events();
  }
  return total;
}

SinkPtr maybe_async(SinkPtr sink, const AsyncFlushMode& mode) {
  if (!mode.enabled || !sink) {
    return sink;
  }
  return std::make_shared<AsyncBatchSink>(std::move(sink), mode.options);
}

}  // namespace iotaxo::trace
