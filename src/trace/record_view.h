// Zero-copy read path over the IOTB2 container (the "mmap-able v2"
// follow-on of the batched pipeline): a BatchView validates an
// uncompressed, unencrypted container exactly once — envelope bounds,
// string-table walk, and a pass over the fixed-stride record section that
// checks every class byte, string id and args slice — and then exposes the
// records and string table *in place*. No EventBatch is allocated and no
// string is copied; scanning a view is a sequence of little-endian loads
// out of the original buffer, which is what makes multi-million-event
// analysis over on-disk stores run at hardware speed (Recorder-style
// compact storage read back without materialization).
//
// Compressed or encrypted containers, and v1 (IOTB1) bodies, cannot be
// viewed — they must go through decode_binary_batch. The checksummed flag
// is fine: the whole-payload CRC is verified *lazily*, on the first record
// or string touch after open, not at open itself — so probing a
// checksummed container (peek its header, count its strings, file it in a
// store) costs no CRC pass, and only the first actual scan pays it once.
// A mismatch throws FormatError at that first touch and is sticky.
//
// MappedTraceFile owns the backing bytes for file-based views: it mmaps
// the file read-only where the platform allows and falls back to reading
// the bytes into an owned buffer otherwise. Moving a MappedTraceFile never
// relocates the bytes, so views into it stay valid across moves (the
// unified store relies on this when it files view-backed sources).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "trace/binary_format.h"
#include "trace/event_batch.h"

namespace iotaxo::trace {

/// Byte layout of one fixed-stride v2 record (little-endian, matching
/// encode_binary_v2's writer; see the container comment in
/// binary_format.h). Offsets are within the record, not the payload.
namespace v2layout {
inline constexpr std::size_t kCls = 0;          // u8
inline constexpr std::size_t kName = 1;         // u32
inline constexpr std::size_t kArgsCount = 5;    // u32
inline constexpr std::size_t kRet = 9;          // i64
inline constexpr std::size_t kLocalStart = 17;  // i64
inline constexpr std::size_t kDuration = 25;    // i64
inline constexpr std::size_t kRank = 33;        // i32
inline constexpr std::size_t kNode = 37;        // i32
inline constexpr std::size_t kPid = 41;         // u32
inline constexpr std::size_t kHost = 45;        // u32
inline constexpr std::size_t kPath = 49;        // u32
inline constexpr std::size_t kFd = 53;          // i32
inline constexpr std::size_t kBytes = 57;       // i64
inline constexpr std::size_t kOffset = 65;      // i64
inline constexpr std::size_t kUid = 73;         // u32
inline constexpr std::size_t kGid = 77;         // u32
inline constexpr std::size_t kStride = 81;      // total record size
}  // namespace v2layout

/// Byte layout of one record's HOT column group in a projected IOTB3 block
/// (see binary_format.h): the fields every windowed / rate / call-stats /
/// DFG scan reads, packed at a 33-byte stride so narrow queries decode a
/// fraction of the stored bytes. hot + cold strides sum to v2's 81.
namespace hotlayout {
inline constexpr std::size_t kCls = 0;          // u8
inline constexpr std::size_t kName = 1;         // u32
inline constexpr std::size_t kRank = 5;         // i32
inline constexpr std::size_t kLocalStart = 9;   // i64
inline constexpr std::size_t kDuration = 17;    // i64
inline constexpr std::size_t kBytes = 25;       // i64
inline constexpr std::size_t kStride = 33;
}  // namespace hotlayout

/// The COLD remainder of a projected record: everything v2 carries that
/// the hot group does not (args, ret, ids, fd, offset, uid/gid).
namespace coldlayout {
inline constexpr std::size_t kArgsCount = 0;    // u32
inline constexpr std::size_t kRet = 4;          // i64
inline constexpr std::size_t kNode = 12;        // i32
inline constexpr std::size_t kPid = 16;         // u32
inline constexpr std::size_t kHost = 20;        // u32
inline constexpr std::size_t kPath = 24;        // u32
inline constexpr std::size_t kFd = 28;          // i32
inline constexpr std::size_t kOffset = 32;      // i64
inline constexpr std::size_t kUid = 40;         // u32
inline constexpr std::size_t kGid = 44;         // u32
inline constexpr std::size_t kStride = 48;
}  // namespace coldlayout

/// One record read in place from a v2 record section. Field accessors are
/// unchecked single loads; the owning BatchView validated class bytes and
/// string ids at open, so accessors cannot observe malformed values.
class RecordView {
 public:
  explicit RecordView(const std::uint8_t* p) noexcept : p_(p) {}

  [[nodiscard]] EventClass cls() const noexcept {
    return static_cast<EventClass>(p_[v2layout::kCls]);
  }
  [[nodiscard]] StrId name() const noexcept { return u32(v2layout::kName); }
  [[nodiscard]] std::uint32_t args_count() const noexcept {
    return u32(v2layout::kArgsCount);
  }
  [[nodiscard]] long long ret() const noexcept { return i64(v2layout::kRet); }
  [[nodiscard]] SimTime local_start() const noexcept {
    return i64(v2layout::kLocalStart);
  }
  [[nodiscard]] SimTime duration() const noexcept {
    return i64(v2layout::kDuration);
  }
  [[nodiscard]] std::int32_t rank() const noexcept {
    return i32(v2layout::kRank);
  }
  [[nodiscard]] std::int32_t node() const noexcept {
    return i32(v2layout::kNode);
  }
  [[nodiscard]] std::uint32_t pid() const noexcept {
    return u32(v2layout::kPid);
  }
  [[nodiscard]] StrId host() const noexcept { return u32(v2layout::kHost); }
  [[nodiscard]] StrId path() const noexcept { return u32(v2layout::kPath); }
  [[nodiscard]] std::int32_t fd() const noexcept { return i32(v2layout::kFd); }
  [[nodiscard]] Bytes bytes() const noexcept { return i64(v2layout::kBytes); }
  [[nodiscard]] Bytes offset() const noexcept {
    return i64(v2layout::kOffset);
  }
  [[nodiscard]] std::uint32_t uid() const noexcept {
    return u32(v2layout::kUid);
  }
  [[nodiscard]] std::uint32_t gid() const noexcept {
    return u32(v2layout::kGid);
  }

  [[nodiscard]] bool is_io_call() const noexcept {
    const EventClass c = cls();
    return c == EventClass::kSyscall || c == EventClass::kLibraryCall ||
           c == EventClass::kFsOperation;
  }

  /// Flat copy into the owned-record form. `args_begin` is the running sum
  /// of preceding records' args_count (the serialized form omits it; see
  /// the layout comment in binary_format.h). Inline like the accessors —
  /// store scans call this per record.
  [[nodiscard]] EventRecord to_record(std::uint32_t args_begin = 0)
      const noexcept {
    EventRecord rec;
    rec.cls = cls();
    rec.name = name();
    rec.args_begin = args_begin;
    rec.args_count = args_count();
    rec.ret = ret();
    rec.local_start = local_start();
    rec.duration = duration();
    rec.rank = rank();
    rec.node = node();
    rec.pid = pid();
    rec.host = host();
    rec.path = path();
    rec.fd = fd();
    rec.bytes = bytes();
    rec.offset = offset();
    rec.uid = uid();
    rec.gid = gid();
    return rec;
  }

 private:
  // The payload is not alignment-guaranteed within the container, so the
  // loads assemble bytes explicitly. The fully unrolled little-endian
  // OR-of-shifts is the idiom compilers fold into one unaligned mov; these
  // must stay inline — field accessors run millions of times per scan.
  [[nodiscard]] std::uint32_t u32(std::size_t off) const noexcept {
    const std::uint8_t* p = p_ + off;
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
  }
  [[nodiscard]] std::uint64_t u64(std::size_t off) const noexcept {
    return static_cast<std::uint64_t>(u32(off)) |
           (static_cast<std::uint64_t>(u32(off + 4)) << 32);
  }
  [[nodiscard]] std::int32_t i32(std::size_t off) const noexcept {
    return static_cast<std::int32_t>(u32(off));
  }
  [[nodiscard]] std::int64_t i64(std::size_t off) const noexcept {
    return static_cast<std::int64_t>(u64(off));
  }

  const std::uint8_t* p_;
};

/// One record's hot column group read in place from a projected IOTB3
/// block's decoded hot bytes (hotlayout stride). Same unchecked-load
/// contract as RecordView: the owning BlockView validated the group.
class HotRecordView {
 public:
  explicit HotRecordView(const std::uint8_t* p) noexcept : p_(p) {}

  [[nodiscard]] EventClass cls() const noexcept {
    return static_cast<EventClass>(p_[hotlayout::kCls]);
  }
  [[nodiscard]] StrId name() const noexcept { return u32(hotlayout::kName); }
  [[nodiscard]] std::int32_t rank() const noexcept {
    return static_cast<std::int32_t>(u32(hotlayout::kRank));
  }
  [[nodiscard]] SimTime local_start() const noexcept {
    return i64(hotlayout::kLocalStart);
  }
  [[nodiscard]] SimTime duration() const noexcept {
    return i64(hotlayout::kDuration);
  }
  [[nodiscard]] Bytes bytes() const noexcept { return i64(hotlayout::kBytes); }

  [[nodiscard]] bool is_io_call() const noexcept {
    const EventClass c = cls();
    return c == EventClass::kSyscall || c == EventClass::kLibraryCall ||
           c == EventClass::kFsOperation;
  }

 private:
  [[nodiscard]] std::uint32_t u32(std::size_t off) const noexcept {
    const std::uint8_t* p = p_ + off;
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
  }
  [[nodiscard]] std::int64_t i64(std::size_t off) const noexcept {
    return static_cast<std::int64_t>(
        static_cast<std::uint64_t>(u32(off)) |
        (static_cast<std::uint64_t>(u32(off + 4)) << 32));
  }

  const std::uint8_t* p_;
};

/// A validated window onto one IOTB2 container. The constructor does all
/// the structural checking (throws FormatError on anything
/// decode_binary_batch would reject, plus on compressed/encrypted/v1
/// containers, which cannot be viewed); the payload CRC alone is deferred
/// to the first record/string touch (ensure_checksum). The view borrows
/// `data` — the caller keeps the buffer alive (MappedTraceFile, or the
/// store's view-backed source) for the view's lifetime. Copies share the
/// CRC gate.
class BatchView {
 public:
  explicit BatchView(std::span<const std::uint8_t> data);

  [[nodiscard]] const BinaryHeader& header() const noexcept {
    return header_;
  }

  /// The container bytes this view borrows (the constructor argument).
  /// Lets owners that hold both the buffer and the view (the unified
  /// store's validated-pair ingest) verify the borrow without re-opening.
  [[nodiscard]] std::span<const std::uint8_t> buffer() const noexcept {
    return buffer_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] RecordView record(std::size_t i) const {
    ensure_checksum();
    return RecordView(records_.data() + i * v2layout::kStride);
  }

  /// Verify the deferred payload checks: the whole-payload CRC and, on
  /// index-adopting opens that skipped it, the structural record pass. A
  /// no-op once verified (or when nothing was deferred); throws
  /// FormatError on a mismatch (sticky — every later touch rethrows).
  /// Every record/string accessor calls this, so callers only need it to
  /// force verification eagerly (or before handing raw record_bytes() to
  /// a scan kernel).
  void ensure_checksum() const {
    if (crc_gate_ != nullptr &&
        crc_gate_->state.load(std::memory_order_acquire) != 1) {
      verify_checksum_slow();
    }
  }

  /// The raw fixed-stride record section (count() * kStride bytes) for
  /// scan kernels that fold serialized records directly. Verifies the
  /// deferred CRC first — handing out the bytes is a record touch.
  [[nodiscard]] std::span<const std::uint8_t> record_bytes() const {
    ensure_checksum();
    return records_;
  }

  /// Number of interned strings (id 0 = "").
  [[nodiscard]] std::size_t string_count() const noexcept {
    return strings_.size();
  }
  /// Total payload bytes of the string table (excluding length prefixes).
  [[nodiscard]] std::size_t string_table_bytes() const noexcept {
    return string_bytes_;
  }
  /// The string for an id, pointing into the container buffer. Throws
  /// FormatError on an out-of-range id.
  [[nodiscard]] std::string_view string(StrId id) const;
  /// Id for `s` if the table holds it (linear scan — the table is small
  /// relative to the record section).
  [[nodiscard]] std::optional<StrId> find_string(std::string_view s) const;
  /// find_string without forcing the deferred payload CRC. The string table
  /// was structurally validated at open; index adoption uses this so
  /// resolving the transfer-call ids does not pay the whole-payload hash
  /// the persisted index exists to avoid.
  [[nodiscard]] std::optional<StrId> find_string_unchecked(
      std::string_view s) const noexcept;

  /// The parsed v2 index footer when the container carries one (flags bit4)
  /// and it validated (own CRC + count cross-checks). nullopt on footer-less
  /// containers AND on a corrupt footer — callers fall back to scanning;
  /// footer_error() says why when an indexed container yields nullopt.
  [[nodiscard]] const std::optional<PoolIndexFooter>& persisted_index()
      const noexcept {
    return persisted_;
  }
  [[nodiscard]] const std::string& footer_error() const noexcept {
    return footer_error_;
  }

  [[nodiscard]] std::size_t arg_id_count() const noexcept {
    return args_.size() / 4;
  }
  /// The j-th entry of the argument-id table. Throws FormatError on an
  /// out-of-range index.
  [[nodiscard]] StrId arg_id(std::size_t j) const;

  /// Visit records in order: fn(index, RecordView, args_begin). The only
  /// way to address a record's args slice without materializing a prefix
  /// sum — the visitor carries the running args_begin for free.
  template <class Fn>
  void for_each(Fn&& fn) const {
    std::uint32_t args_begin = 0;
    for (std::size_t i = 0; i < count_; ++i) {
      const RecordView rec = record(i);
      fn(i, rec, args_begin);
      args_begin += rec.args_count();
    }
  }

  /// Rebuild record `i` as a heap-owning TraceEvent (`args_begin` as for
  /// for_each / RecordView::to_record).
  [[nodiscard]] TraceEvent materialize(std::size_t i,
                                       std::uint32_t args_begin) const;

 private:
  /// Shared deferred-verification gate (CRC + deferred record pass):
  /// 0 unverified, 1 verified, 2 failed (sticky). Shared across view
  /// copies so the payload is hashed at most once; the mutex serializes
  /// the slow path, the atomic keeps the per-access fast path to one
  /// acquire load.
  struct CrcGate {
    std::mutex m;
    std::atomic<int> state{0};
  };

  void verify_checksum_slow() const;
  void validate_records() const;

  BinaryHeader header_;
  std::span<const std::uint8_t> buffer_;   // the whole borrowed container
  std::span<const std::uint8_t> body_;     // the payload the CRC covers
  std::span<const std::uint8_t> records_;  // count_ * kStride bytes
  std::span<const std::uint8_t> args_;     // nargids * 4 bytes
  std::optional<PoolIndexFooter> persisted_;
  std::string footer_error_;
  std::vector<std::string_view> strings_;  // id -> bytes in the buffer
  std::size_t string_bytes_ = 0;
  std::size_t count_ = 0;
  std::uint32_t stored_crc_ = 0;
  // True once the structural record pass ran (eagerly in the constructor,
  // or behind the gate for index-adopting opens). Only mutated under the
  // gate mutex after construction.
  mutable bool records_validated_ = false;
  // Null when nothing was deferred (not checksummed and records validated
  // eagerly).
  std::shared_ptr<CrcGate> crc_gate_;
};

/// Read-only bytes of a trace file, mmapped when possible. Move-only; the
/// mapped (or owned) bytes never move, so spans into bytes() survive moves
/// of the MappedTraceFile itself.
class MappedTraceFile {
 public:
  MappedTraceFile() = default;
  /// Opens and maps `path`; falls back to reading the file into an owned
  /// buffer when mmap is unavailable. Throws IoError when the file cannot
  /// be opened or read. `prefault` faults the whole mapping in up front —
  /// right for opens that will scan every record, wrong for index-adopting
  /// opens that only touch the header, string table, and footer pages
  /// (record pages then fault in lazily if a query ever needs them).
  explicit MappedTraceFile(const std::string& path, bool prefault = true);
  ~MappedTraceFile();

  MappedTraceFile(MappedTraceFile&& other) noexcept;
  MappedTraceFile& operator=(MappedTraceFile&& other) noexcept;
  MappedTraceFile(const MappedTraceFile&) = delete;
  MappedTraceFile& operator=(const MappedTraceFile&) = delete;

  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return bytes().size(); }
  /// True when the bytes come from an mmap (false: read fallback).
  [[nodiscard]] bool is_mapped() const noexcept { return map_ != nullptr; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  void release() noexcept;

  std::string path_;
  void* map_ = nullptr;
  std::size_t map_len_ = 0;
  std::vector<std::uint8_t> owned_;
};

}  // namespace iotaxo::trace
