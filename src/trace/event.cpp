#include "trace/event.h"

#include "util/error.h"

namespace iotaxo::trace {

const char* to_string(EventClass cls) noexcept {
  switch (cls) {
    case EventClass::kSyscall:
      return "syscall";
    case EventClass::kLibraryCall:
      return "libcall";
    case EventClass::kFsOperation:
      return "fsop";
    case EventClass::kClockProbe:
      return "clockprobe";
    case EventClass::kAnnotation:
      return "annotation";
  }
  return "?";
}

EventClass event_class_from_string(const std::string& s) {
  if (s == "syscall") return EventClass::kSyscall;
  if (s == "libcall") return EventClass::kLibraryCall;
  if (s == "fsop") return EventClass::kFsOperation;
  if (s == "clockprobe") return EventClass::kClockProbe;
  if (s == "annotation") return EventClass::kAnnotation;
  throw FormatError("unknown event class: " + s);
}

TraceEvent make_syscall(std::string name, std::vector<std::string> args,
                        long long ret) {
  TraceEvent ev;
  ev.cls = EventClass::kSyscall;
  ev.name = std::move(name);
  ev.args = std::move(args);
  ev.ret = ret;
  return ev;
}

TraceEvent make_libcall(std::string name, std::vector<std::string> args,
                        long long ret) {
  TraceEvent ev;
  ev.cls = EventClass::kLibraryCall;
  ev.name = std::move(name);
  ev.args = std::move(args);
  ev.ret = ret;
  return ev;
}

}  // namespace iotaxo::trace
