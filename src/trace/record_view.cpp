#include "trace/record_view.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "trace/scan_kernels.h"
#include "util/crc32.h"
#include "util/error.h"
#include "util/strings.h"

#if defined(__unix__) || defined(__APPLE__)
#define IOTAXO_HAVE_MMAP 1
#include <cerrno>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#include <cstdio>
#endif

namespace iotaxo::trace {

namespace {

[[nodiscard]] std::uint32_t load_u32(const std::uint8_t* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

[[nodiscard]] std::uint64_t load_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

BatchView::BatchView(std::span<const std::uint8_t> data) : buffer_(data) {
  header_ = peek_binary_header(data);  // validates magic + header bounds
  if (header_.version != 2) {
    throw FormatError("zero-copy view: requires an IOTB2 container");
  }
  if (header_.compressed || header_.encrypted) {
    throw FormatError(
        "zero-copy view: compressed or encrypted containers cannot be "
        "viewed in place (decode_binary_batch them instead)");
  }
  // Subtract-and-compare instead of add-and-compare: a hostile
  // payload_length near 2^64 must not wrap the right-hand side into a
  // passing equality.
  const std::size_t crc_size = header_.checksummed ? 4 : 0;
  const std::size_t avail = data.size() - kContainerHeaderSize;  // header ok
  if (avail < crc_size || header_.payload_length != avail - crc_size) {
    throw FormatError("binary trace: length mismatch");
  }
  const std::span<const std::uint8_t> body =
      data.subspan(kContainerHeaderSize,
                   static_cast<std::size_t>(header_.payload_length));
  body_ = body;
  if (header_.checksummed) {
    // Deferred: record the expected CRC now, hash the payload on the first
    // record/string touch (ensure_checksum). The structural pass below is
    // fully bounds-checked, so walking unverified bytes is safe — a
    // corruption it happens to miss is caught by the CRC before any record
    // content is served.
    stored_crc_ = load_u32(data.data() + kContainerHeaderSize + body.size());
  }

  // --- string table: one bounds-checked walk, string_views in place ------
  std::size_t pos = 0;
  const auto need = [&](std::size_t n) {
    if (pos + n > body.size()) {
      throw FormatError("binary trace: truncated record");
    }
  };
  need(4);
  const std::uint32_t nstrings = load_u32(body.data() + pos);
  pos += 4;
  if (nstrings == 0) {
    throw FormatError("binary trace v2: empty string table");
  }
  // Each table entry occupies at least its 4-byte length prefix; a count
  // the body cannot hold is corruption, and must not reach reserve() as a
  // giant allocation.
  if (nstrings > body.size() / 4) {
    throw FormatError("binary trace v2: string table exceeds payload");
  }
  strings_.reserve(nstrings);
  for (std::uint32_t i = 0; i < nstrings; ++i) {
    need(4);
    const std::uint32_t len = load_u32(body.data() + pos);
    pos += 4;
    need(len);
    strings_.emplace_back(reinterpret_cast<const char*>(body.data() + pos),
                          len);
    string_bytes_ += len;
    pos += len;
  }
  if (!strings_.front().empty()) {
    throw FormatError("binary trace v2: string id 0 must be empty");
  }
  // Reject duplicate table entries exactly as decode_binary_batch does —
  // duplicates would make interned-id equality scans (find_string + id
  // compare) silently miss records referencing the later copy.
  std::unordered_set<std::string_view> seen(strings_.begin(), strings_.end());
  if (seen.size() != strings_.size()) {
    throw FormatError("binary trace v2: string table is not interned");
  }

  // --- argument-id table --------------------------------------------------
  need(8);
  const std::uint64_t nargids = load_u64(body.data() + pos);
  pos += 8;
  if (nargids > (body.size() - pos) / 4) {
    throw FormatError("binary trace v2: arg-id table exceeds payload");
  }
  args_ = body.subspan(pos, static_cast<std::size_t>(nargids) * 4);
  pos += args_.size();

  // --- fixed-stride record section ---------------------------------------
  count_ = static_cast<std::size_t>(header_.count);
  const std::size_t avail_records = body.size() - pos;
  if (avail_records / v2layout::kStride < count_) {
    throw FormatError("binary trace: truncated record");
  }
  const std::size_t records_bytes = count_ * v2layout::kStride;
  if (header_.indexed) {
    // The record section is located by the envelope count, never the
    // footer trailer — so a corrupt or truncated footer degrades to a
    // scan fallback (persisted_index() nullopt), not an open failure.
    persisted_ = parse_v2_index_footer(body.subspan(pos + records_bytes),
                                       header_.count, nstrings,
                                       &footer_error_);
  } else if (avail_records != records_bytes) {
    throw FormatError("binary trace: trailing bytes after records");
  }
  records_ = body.subspan(pos, records_bytes);

  // --- one validation pass over the records so every accessor after this
  // point is an unchecked load. When a validated index footer is present
  // the pass is deferred to the first record touch instead (same gate as
  // the deferred CRC): an index-adopting open must stay O(strings), and a
  // query the footer lets skip this pool must never page the record
  // section in at all. ----------------------------------------------------
  if (persisted_.has_value()) {
    crc_gate_ = std::make_shared<CrcGate>();
  } else {
    validate_records();
    records_validated_ = true;
    // Arm the deferred-CRC gate last: the accessors the pass above used
    // run gate-free during construction (the structural pass must not pay
    // the hash the laziness exists to avoid).
    if (header_.checksummed) {
      crc_gate_ = std::make_shared<CrcGate>();
    }
  }
}

void BatchView::validate_records() const {
  const std::size_t nstrings = strings_.size();
  // Validate the arg table's values, not just its slice bounds: consumers
  // (materialize, the replay adapter) dereference arg ids long after open.
  // Branch-free max fold (SSE/NEON fast path in scan_kernels) — a throw
  // inside the loop would cost real time on big argument tables.
  const std::size_t nargids = arg_id_count();
  if (nargids > 0) {
    const std::uint32_t max_arg_id = scan::max_u32_le(args_.data(), nargids);
    if (max_arg_id >= nstrings) {
      throw FormatError(strprintf(
          "binary trace v2: arg string id %u out of range", max_arg_id));
    }
  }
  std::uint64_t args_sum = 0;
  for (std::size_t i = 0; i < count_; ++i) {
    const RecordView rec(records_.data() + i * v2layout::kStride);
    if (static_cast<std::uint8_t>(rec.cls()) >
        static_cast<std::uint8_t>(EventClass::kAnnotation)) {
      throw FormatError("binary trace: bad event class");
    }
    if (rec.name() >= nstrings || rec.host() >= nstrings ||
        rec.path() >= nstrings) {
      throw FormatError(
          strprintf("event batch: string id %u out of range",
                    std::max({rec.name(), rec.host(), rec.path()})));
    }
    args_sum += rec.args_count();
  }
  if (args_sum > arg_id_count()) {
    throw FormatError("binary trace v2: record args out of range");
  }
}

void BatchView::verify_checksum_slow() const {
  std::lock_guard<std::mutex> lock(crc_gate_->m);
  const int state = crc_gate_->state.load(std::memory_order_acquire);
  if (state == 1) {
    return;
  }
  if (state == 2 ||
      (header_.checksummed && crc32(body_) != stored_crc_)) {
    crc_gate_->state.store(2, std::memory_order_release);
    throw FormatError("binary trace: checksum mismatch");
  }
  if (!records_validated_) {
    // Index-adopting opens deferred the structural record pass; it runs
    // here, after the CRC vouched for the bytes, so every accessor behind
    // the gate is still an unchecked load.
    try {
      validate_records();
    } catch (const FormatError&) {
      crc_gate_->state.store(2, std::memory_order_release);
      throw;
    }
    records_validated_ = true;
  }
  crc_gate_->state.store(1, std::memory_order_release);
}

std::string_view BatchView::string(StrId id) const {
  ensure_checksum();  // string bytes are payload the CRC covers
  if (id >= strings_.size()) {
    throw FormatError(strprintf("string pool: id %u out of range (size %zu)",
                                id, strings_.size()));
  }
  return strings_[id];
}

std::optional<StrId> BatchView::find_string(std::string_view s) const {
  ensure_checksum();
  return find_string_unchecked(s);
}

std::optional<StrId> BatchView::find_string_unchecked(
    std::string_view s) const noexcept {
  for (std::size_t id = 0; id < strings_.size(); ++id) {
    if (strings_[id] == s) {
      return static_cast<StrId>(id);
    }
  }
  return std::nullopt;
}

StrId BatchView::arg_id(std::size_t j) const {
  ensure_checksum();
  if (j >= arg_id_count()) {
    throw FormatError(
        strprintf("binary trace v2: arg index %zu out of range", j));
  }
  return load_u32(args_.data() + j * 4);
}

TraceEvent BatchView::materialize(std::size_t i,
                                  std::uint32_t args_begin) const {
  const RecordView rec = record(i);
  TraceEvent ev;
  ev.cls = rec.cls();
  ev.name = std::string(string(rec.name()));
  const std::uint32_t argc = rec.args_count();
  ev.args.reserve(argc);
  for (std::uint32_t j = 0; j < argc; ++j) {
    ev.args.emplace_back(string(arg_id(args_begin + j)));
  }
  ev.ret = rec.ret();
  ev.local_start = rec.local_start();
  ev.duration = rec.duration();
  ev.rank = rec.rank();
  ev.node = rec.node();
  ev.pid = rec.pid();
  ev.host = std::string(string(rec.host()));
  ev.path = std::string(string(rec.path()));
  ev.fd = rec.fd();
  ev.bytes = rec.bytes();
  ev.offset = rec.offset();
  ev.uid = rec.uid();
  ev.gid = rec.gid();
  return ev;
}

// ---------------------------------------------------------------- mapping

MappedTraceFile::MappedTraceFile(const std::string& path, bool prefault)
    : path_(path) {
#if IOTAXO_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw IoError("cannot open trace file: " + path);
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw IoError("cannot stat trace file: " + path);
  }
  const std::size_t len = static_cast<std::size_t>(st.st_size);
  if (len > 0) {
    // Views are opened to be scanned; prefaulting the whole mapping up
    // front (where the platform offers it) is much cheaper than taking
    // thousands of minor faults mid-scan.
    int flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
    if (prefault) {
      flags |= MAP_POPULATE;
    }
#endif
    void* p = ::mmap(nullptr, len, PROT_READ, flags, fd, 0);
    if (p != MAP_FAILED) {
      map_ = p;
      map_len_ = len;
    } else {
      // mmap can fail on special or network files; fall back to reading.
      // Short reads are normal here (pipes, NFS, signal-adjacent reads):
      // keep asking for the remainder, and retry outright on EINTR — only
      // a real error or EOF-before-len is fatal.
      owned_.resize(len);
      std::size_t got = 0;
      while (got < len) {
        const ssize_t n = ::read(fd, owned_.data() + got, len - got);
        if (n < 0) {
          if (errno == EINTR) {
            continue;
          }
          ::close(fd);
          throw IoError("cannot read trace file: " + path);
        }
        if (n == 0) {
          ::close(fd);
          throw IoError("trace file truncated while reading: " + path);
        }
        got += static_cast<std::size_t>(n);
      }
    }
  }
  ::close(fd);
#else
  (void)prefault;  // the read fallback always loads everything
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw IoError("cannot open trace file: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  const long len = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (len < 0) {
    std::fclose(f);
    throw IoError("cannot stat trace file: " + path);
  }
  owned_.resize(static_cast<std::size_t>(len));
  if (len > 0 &&
      std::fread(owned_.data(), 1, owned_.size(), f) != owned_.size()) {
    std::fclose(f);
    throw IoError("cannot read trace file: " + path);
  }
  std::fclose(f);
#endif
}

MappedTraceFile::~MappedTraceFile() { release(); }

MappedTraceFile::MappedTraceFile(MappedTraceFile&& other) noexcept
    : path_(std::move(other.path_)),
      map_(other.map_),
      map_len_(other.map_len_),
      owned_(std::move(other.owned_)) {
  other.map_ = nullptr;
  other.map_len_ = 0;
}

MappedTraceFile& MappedTraceFile::operator=(MappedTraceFile&& other) noexcept {
  if (this != &other) {
    release();
    path_ = std::move(other.path_);
    map_ = other.map_;
    map_len_ = other.map_len_;
    owned_ = std::move(other.owned_);
    other.map_ = nullptr;
    other.map_len_ = 0;
  }
  return *this;
}

void MappedTraceFile::release() noexcept {
#if IOTAXO_HAVE_MMAP
  if (map_ != nullptr) {
    ::munmap(map_, map_len_);
    map_ = nullptr;
    map_len_ = 0;
  }
#endif
}

std::span<const std::uint8_t> MappedTraceFile::bytes() const noexcept {
  if (map_ != nullptr) {
    return {static_cast<const std::uint8_t*>(map_), map_len_};
  }
  return {owned_.data(), owned_.size()};
}

}  // namespace iotaxo::trace
