// Lazy read path over the IOTB3 block container (block_view.cpp): the
// counterpart of BatchView for compressed/checksummed/encrypted cold
// storage. The constructor validates only the cheap, always-needed parts —
// envelope bounds, the uncompressed head (string + argument-id tables,
// walked and range-checked exactly as BatchView does, plus the key check
// for encrypted containers: a wrong key is rejected at open, not at first
// block touch) and the footer mini-index (whose own CRC is always
// verified: the index must be trustworthy before any skip decision is made
// on it). Record blocks are NOT touched at open.
//
// The first access to a block — record(), for_each(), block_bytes() —
// pays for exactly that block: CRC over the stored bytes (when the
// container is checksummed), XTEA-CBC decryption (when encrypted; the CRC
// covers the stored ciphertext, so integrity is checked before the cipher
// runs), LZ decompression (when compressed; stored bytes are served
// zero-copy when neither transform applies), and a structural pass that
// validates every class byte, string id and args slice AND cross-checks
// the footer's min/max stamps, name bitmap and flag bits against the
// records (an index that lies about a block is corruption and rejects
// that block). Projected containers (header().projected) store each block
// as a hot + cold column group: hot_bytes(b) decodes and validates the
// hot group alone (the fields windowed/rate/call-stats/DFG scans read, at
// hotlayout::kStride), while block_bytes(b) stitches both groups back
// into the full 81-byte stride — so narrow queries decode a fraction of
// the stored bytes, and cold-group corruption fails only full-record
// touches while hot queries keep working.
//
// Decoded groups are cached for the life of the view; failures are sticky
// (copies of a view share the cache AND the failure state — concurrent
// first touches of one block elect a single decoder via a per-slot atomic
// state machine, losers wait on a striped condvar, and every toucher of a
// failed block sees the identical error text). decode_blocks() prefetches
// a set of blocks across a thread pool, so multi-block scans decode in
// parallel; per-block errors stay sticky and are rethrown deterministically
// by the caller's serial pass.
//
// Queries consult the per-block mini-index (block_min_time / block_has_name
// / block flag accessors) to skip blocks entirely — the unified store's
// segment seam routes its windowed and name-filtered scans through it, so
// a narrow query on a compressed 10M-event era decompresses only the
// blocks its window overlaps.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "trace/binary_format.h"
#include "trace/record_view.h"

namespace iotaxo::trace {

/// A validated-on-demand window onto one IOTB3 container. The view borrows
/// `data`; the caller keeps the buffer alive (MappedTraceFile, or the
/// store's block-backed pool) for the view's lifetime. Copies share the
/// decoded-block cache and its sticky failure state.
class BlockView {
 public:
  explicit BlockView(std::span<const std::uint8_t> data,
                     std::optional<CipherKey> key = std::nullopt);

  [[nodiscard]] const BinaryHeader& header() const noexcept {
    return header_;
  }
  /// The container bytes this view borrows (the constructor argument).
  [[nodiscard]] std::span<const std::uint8_t> buffer() const noexcept {
    return buffer_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] bool projected() const noexcept { return header_.projected; }
  [[nodiscard]] bool encrypted() const noexcept { return header_.encrypted; }

  // --- per-block mini-index (footer; CRC-verified at open) ---------------

  [[nodiscard]] std::size_t block_count() const noexcept {
    return meta_.size();
  }
  /// Records per full block; record i lives in block i / this.
  [[nodiscard]] std::uint32_t block_records_nominal() const noexcept {
    return nominal_;
  }
  [[nodiscard]] std::size_t block_of(std::size_t i) const noexcept {
    return i / nominal_;
  }
  /// Index of block b's first record.
  [[nodiscard]] std::size_t block_first(std::size_t b) const noexcept {
    return b * nominal_;
  }
  /// Record count of block b (== nominal except for the last block).
  [[nodiscard]] std::uint32_t block_size(std::size_t b) const noexcept {
    return meta_[b].records;
  }
  /// Running args_begin at block b's first record.
  [[nodiscard]] std::uint64_t block_args_begin(std::size_t b) const noexcept {
    return meta_[b].args_begin;
  }
  [[nodiscard]] SimTime block_min_time(std::size_t b) const noexcept {
    return meta_[b].min_time;
  }
  [[nodiscard]] SimTime block_max_time(std::size_t b) const noexcept {
    return meta_[b].max_time;
  }
  /// Total stored byte length of block b (hot + cold groups when
  /// projected; possibly compressed and encrypted).
  [[nodiscard]] std::uint64_t block_stored_len(std::size_t b) const noexcept {
    return meta_[b].stored_len + meta_[b].cold_len;
  }
  /// Stored byte length of block b's hot (or only) group.
  [[nodiscard]] std::uint64_t block_hot_stored_len(
      std::size_t b) const noexcept {
    return meta_[b].stored_len;
  }
  /// True when some record in block b has name id `id` (id 0 means "not
  /// interned": always false, mirroring the store's PoolIndex::has_name).
  [[nodiscard]] bool block_has_name(std::size_t b, StrId id) const noexcept {
    if (id == 0 || id >= strings_.size()) {
      return false;
    }
    return (bitmap_of(b)[id >> 3] & (1u << (id & 7u))) != 0;
  }
  [[nodiscard]] bool block_has_fd_path(std::size_t b) const noexcept {
    return (meta_[b].flags & v3layout::kBlockHasFdPath) != 0;
  }
  [[nodiscard]] bool block_has_io_bytes(std::size_t b) const noexcept {
    return (meta_[b].flags & v3layout::kBlockHasIoBytes) != 0;
  }
  [[nodiscard]] bool block_has_io_call(std::size_t b) const noexcept {
    return (meta_[b].flags & v3layout::kBlockHasIoCall) != 0;
  }

  /// Stored bytes successfully decoded so far (hot and cold groups count
  /// separately as they are touched) — shared across copies. A narrow
  /// query's footprint is this vs the stored total.
  [[nodiscard]] std::uint64_t decoded_stored_bytes() const noexcept {
    return lazy_->decoded_stored.load(std::memory_order_relaxed);
  }
  /// Total stored bytes of all blocks (both groups).
  [[nodiscard]] std::uint64_t stored_bytes_total() const noexcept {
    return blocks_.size();
  }

  /// Blocks whose decode has failed sticky so far (either group) — shared
  /// across copies, grows as touches hit damaged blocks. The store's
  /// pool_infos() surfaces this as damaged_blocks.
  [[nodiscard]] std::size_t failed_blocks() const noexcept {
    std::size_t n = 0;
    for (std::size_t b = 0; b < lazy_->full.size(); ++b) {
      const bool failed =
          lazy_->full[b].state.load(std::memory_order_acquire) == kFailed ||
          (!lazy_->hot.empty() &&
           lazy_->hot[b].state.load(std::memory_order_acquire) == kFailed);
      if (failed) {
        ++n;
      }
    }
    return n;
  }

  // --- string / argument tables (uncompressed head, validated at open) ---

  [[nodiscard]] std::size_t string_count() const noexcept {
    return strings_.size();
  }
  [[nodiscard]] std::size_t string_table_bytes() const noexcept {
    return string_bytes_;
  }
  /// The string for an id, pointing into the container buffer. Throws
  /// FormatError on an out-of-range id.
  [[nodiscard]] std::string_view string(StrId id) const;
  [[nodiscard]] std::optional<StrId> find_string(
      std::string_view s) const noexcept;
  [[nodiscard]] std::size_t arg_id_count() const noexcept {
    return args_.size() / 4;
  }
  [[nodiscard]] StrId arg_id(std::size_t j) const;

  // --- record access (lazy per-block decode + verify) --------------------

  /// Block b's records as raw fixed-stride bytes (block_size(b) records of
  /// v2layout::kStride each) — decoded, CRC-verified, decrypted and
  /// validated on first touch, cached after; projected containers stitch
  /// the hot + cold groups here. Zero-copy into the container buffer for
  /// plain containers. Throws FormatError when the block is corrupt
  /// (sticky: every later touch rethrows the identical error).
  [[nodiscard]] std::span<const std::uint8_t> block_bytes(
      std::size_t b) const {
    BlockSlot& slot = lazy_->full[b];
    if (slot.state.load(std::memory_order_acquire) == kReady) {
      return slot.bytes;
    }
    return decode_block_slow(b);
  }

  /// Block b's HOT column group (block_size(b) records of
  /// hotlayout::kStride each) — projected containers only (throws
  /// ConfigError otherwise). Decodes, verifies and caches the hot group
  /// alone; cold-group corruption is invisible here.
  [[nodiscard]] std::span<const std::uint8_t> hot_bytes(std::size_t b) const;

  /// Prefetch-decode `blocks` across up to `threads` workers (no-op for
  /// 0/1 blocks or threads). hot_only decodes just the hot group of
  /// projected containers (full blocks otherwise). Per-block failures are
  /// swallowed here — they are recorded sticky, and the caller's serial
  /// scan rethrows them deterministically on first touch.
  void decode_blocks(const std::vector<std::size_t>& blocks,
                     std::size_t threads, bool hot_only) const;

  /// Record i, touching (and possibly decoding + stitching) its block.
  [[nodiscard]] RecordView record(std::size_t i) const {
    const std::size_t b = block_of(i);
    return RecordView(block_bytes(b).data() +
                      (i - block_first(b)) * v2layout::kStride);
  }

  /// Visit records in order: fn(index, RecordView, args_begin). Streams
  /// block by block; every block is touched.
  template <class Fn>
  void for_each(Fn&& fn) const {
    std::size_t i = 0;
    for (std::size_t b = 0; b < meta_.size(); ++b) {
      const std::span<const std::uint8_t> bytes = block_bytes(b);
      // Cannot wrap: open rejects containers with > 2^32 argument ids.
      auto args_begin = static_cast<std::uint32_t>(meta_[b].args_begin);
      const std::size_t n = meta_[b].records;
      for (std::size_t r = 0; r < n; ++r, ++i) {
        const RecordView rec(bytes.data() + r * v2layout::kStride);
        fn(i, rec, args_begin);
        args_begin += rec.args_count();
      }
    }
  }

  /// Rebuild record `i` as a heap-owning TraceEvent (`args_begin` as for
  /// for_each).
  [[nodiscard]] TraceEvent materialize(std::size_t i,
                                       std::uint32_t args_begin) const;

  /// Decode the whole container into an owned EventBatch (touches every
  /// block) — the v3 arm of decode_binary_batch.
  [[nodiscard]] EventBatch to_batch() const;

 private:
  struct BlockMeta {
    std::uint64_t offset = 0;
    std::uint64_t stored_len = 0;  // hot (or only) group
    std::uint64_t cold_len = 0;    // projected containers only
    std::uint64_t args_begin = 0;
    std::uint32_t records = 0;
    std::uint32_t crc = 0;
    std::uint32_t cold_crc = 0;
    SimTime min_time = 0;
    SimTime max_time = 0;
    std::uint8_t flags = 0;
  };

  // Per-slot decode state machine: a first toucher CASes kUntouched ->
  // kDecoding and decodes outside any lock; concurrent touchers of the
  // same block park on the slot's stripe condvar until the winner
  // publishes kReady or kFailed (both terminal).
  static constexpr int kUntouched = 0;
  static constexpr int kDecoding = 1;
  static constexpr int kReady = 2;
  static constexpr int kFailed = 3;

  struct BlockSlot {
    std::atomic<int> state{kUntouched};
    std::vector<std::uint8_t> owned;      // decoded bytes, if not zero-copy
    std::span<const std::uint8_t> bytes;  // the group's record bytes
    std::string error;                    // sticky failure message
  };

  /// Shared decode cache: slot vectors are sized once and never
  /// reallocated, so the per-slot atomic fast paths read stable storage.
  /// The stripe mutexes guard only the publish/wait handshake — decode
  /// itself runs lock-free in the CAS winner, so distinct blocks decode
  /// concurrently.
  struct LazyState {
    static constexpr std::size_t kStripes = 16;
    std::vector<BlockSlot> full;
    std::vector<BlockSlot> hot;  // projected containers only
    std::atomic<std::uint64_t> decoded_stored{0};
    std::mutex stripe_m[kStripes];
    std::condition_variable stripe_cv[kStripes];
    LazyState(std::size_t n, bool projected)
        : full(n), hot(projected ? n : 0) {}
  };

  /// Footer bitmap of block b (bitmap_bytes_ bytes, after the fixed entry
  /// fields — which include the cold extent when projected).
  [[nodiscard]] const std::uint8_t* bitmap_of(std::size_t b) const noexcept {
    return footer_.data() + b * (entry_fixed_ + bitmap_bytes_) + entry_fixed_;
  }

  std::span<const std::uint8_t> decode_block_slow(std::size_t b) const;
  std::span<const std::uint8_t> acquire_slot(std::vector<BlockSlot>& slots,
                                             std::size_t b, bool hot) const;
  std::span<const std::uint8_t> decode_group_plain(
      std::size_t b, std::uint32_t group, std::vector<std::uint8_t>& owned)
      const;
  std::span<const std::uint8_t> decode_full_plain(
      std::size_t b, std::vector<std::uint8_t>& owned) const;
  void validate_full(std::size_t b, std::span<const std::uint8_t> plain) const;
  void validate_hot(std::size_t b, std::span<const std::uint8_t> hot) const;

  BinaryHeader header_;
  std::optional<CipherKey> key_;
  std::span<const std::uint8_t> buffer_;  // the whole borrowed container
  std::span<const std::uint8_t> blocks_;  // stored-block region
  std::span<const std::uint8_t> args_;    // nargids * 4 bytes
  std::span<const std::uint8_t> footer_;  // footer region (entries)
  std::vector<std::string_view> strings_;
  std::size_t string_bytes_ = 0;
  std::size_t count_ = 0;
  std::uint32_t nominal_ = 1;  // records per full block
  std::size_t bitmap_bytes_ = 0;
  std::size_t entry_fixed_ = v3layout::kEntryFixedSize;
  std::vector<BlockMeta> meta_;
  std::shared_ptr<LazyState> lazy_;
};

}  // namespace iotaxo::trace
