// StringPool: interned ids for the strings trace events repeat millions of
// times (call names, paths, hosts). Interning turns the per-event cost of
// carrying those strings into a one-time cost per *distinct* string, which
// is what makes batch-scale capture and the IOTB2 container format viable
// (Recorder-style compact trace representations).
//
// Id 0 is always the empty string, so zero-initialized records are valid.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace iotaxo::trace {

/// Interned string id. Ids are dense: 0 .. size()-1.
using StrId = std::uint32_t;

class StringPool {
 public:
  StringPool();

  // by_id_ points into index_'s nodes, so copies must rebuild it against
  // their own map (a defaulted copy would alias the source's storage).
  StringPool(const StringPool& other);
  StringPool& operator=(const StringPool& other);
  StringPool(StringPool&&) noexcept = default;
  StringPool& operator=(StringPool&&) noexcept = default;

  /// Return the id for `s`, interning it on first sight.
  StrId intern(std::string_view s);

  /// Id for `s` if already interned.
  [[nodiscard]] std::optional<StrId> find(std::string_view s) const;

  /// The string for an id. Throws FormatError on an out-of-range id.
  [[nodiscard]] std::string_view view(StrId id) const;
  [[nodiscard]] const std::string& str(StrId id) const;

  /// Number of distinct strings (including the implicit empty string).
  [[nodiscard]] std::size_t size() const noexcept { return by_id_.size(); }

  /// Total bytes of interned string payload plus per-entry overhead, kept
  /// incrementally so size estimates (era seal checks run once per flush)
  /// never have to walk the pool.
  [[nodiscard]] std::size_t byte_size() const noexcept { return bytes_; }

  /// Pre-size for ~n distinct strings. The re-intern paths (batch append,
  /// container decode) know the incoming pool size up front; reserving
  /// avoids the rehash cascade that otherwise shows up in ingest profiles.
  /// Growth is geometric: a stream of small appends each asking for "size
  /// + a little more" must not re-reserve (and rehash/copy) every call.
  void reserve(std::size_t n) {
    if (n <= by_id_.capacity()) {
      return;
    }
    const std::size_t want = std::max(n, by_id_.capacity() * 2);
    index_.reserve(want);
    by_id_.reserve(want);
  }

  /// Visit every interned string in id order (serialization).
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (StrId id = 0; id < by_id_.size(); ++id) {
      fn(id, std::string_view(*by_id_[id]));
    }
  }

  /// Drop everything except the implicit empty string.
  void clear();

 private:
  // Transparent hashing so intern/find of an already-interned string never
  // allocates — that is the capture hot path.
  struct Hash {
    using is_transparent = void;
    [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  // Keys own the storage; node pointers stay stable across rehashing, so
  // by_id_ can point straight into the map.
  std::unordered_map<std::string, StrId, Hash, std::equal_to<>> index_;
  std::vector<const std::string*> by_id_;
  std::size_t bytes_ = 0;
};

}  // namespace iotaxo::trace
