#include "trace/text_format.h"

#include <cstdlib>

#include "util/error.h"
#include "util/strings.h"

namespace iotaxo::trace {

namespace {

/// The testbed's wall clocks ran in US Mountain Daylight Time (UTC-6): the
/// paper's Figure 1 shows 10:59:47 local for epoch second 1159808385.
constexpr SimTime kUtcOffset = -6LL * 3600 * kSecond;

/// Render local_start (ns, including wall-clock epoch) as HH:MM:SS.uuuuuu.
std::string format_timestamp(SimTime local_ns) {
  const long long total_us = (local_ns + kUtcOffset) / 1000;
  const long long us = total_us % 1000000;
  const long long total_s = total_us / 1000000;
  const long long s = total_s % 60;
  const long long m = (total_s / 60) % 60;
  const long long h = (total_s / 3600) % 24;
  return strprintf("%02lld:%02lld:%02lld.%06lld", h, m, s, us);
}

/// The day base is the midnight (in timezone-shifted clock ns) of the first
/// event so time-of-day stamps can be mapped back to absolute local time.
SimTime day_base_of(SimTime local_ns) {
  const SimTime day = 86400LL * kSecond;
  return ((local_ns + kUtcOffset) / day) * day;
}

bool needs_quoting(EventClass cls, const std::string& name, std::size_t i) {
  // Which argument positions are strings (paths, labels) per call name.
  if (cls == EventClass::kClockProbe) {
    return i == 0;
  }
  if (name == "SYS_open" || name == "open" || name == "SYS_stat" ||
      name == "SYS_unlink" || name == "SYS_mkdir" || name == "SYS_statfs64" ||
      name == "SYS_readdir" || name == "fopen" || name == "creat") {
    return i == 0;
  }
  if (name == "MPI_File_open") {
    return i == 1;
  }
  if (starts_with(name, "vfs_")) {
    return i == 0;  // vfs events lead with the path when known
  }
  return false;
}

}  // namespace

std::string TextTraceWriter::line(const TraceEvent& ev) {
  if (ev.cls == EventClass::kAnnotation) {
    return "# " + ev.name;
  }
  std::string out = format_timestamp(ev.local_start);
  out += ' ';
  if (ev.cls == EventClass::kClockProbe) {
    out += "CLOCK_PROBE(";
  } else {
    out += ev.name;
    out += '(';
  }
  for (std::size_t i = 0; i < ev.args.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    if (needs_quoting(ev.cls, ev.name, i)) {
      out += '"';
      out += ev.args[i];
      out += '"';
    } else {
      out += ev.args[i];
    }
  }
  // Barrier labels live in .path; serialize them so replayers working from
  // raw text traces keep the synchronization structure.
  if (ev.name == "MPI_Barrier" && !ev.path.empty()) {
    if (!ev.args.empty()) {
      out += ", ";
    }
    out += '"';
    out += ev.path;
    out += '"';
  }
  out += strprintf(") = %lld <%.6f>", ev.ret, to_seconds(ev.duration));
  return out;
}

std::string TextTraceWriter::render(const StreamMeta& meta,
                                    const std::vector<TraceEvent>& events) {
  std::string out;
  out += "# iotaxo raw trace v1\n";
  out += strprintf("# host %s rank %d pid %u\n", meta.host.c_str(), meta.rank,
                   meta.pid);
  SimTime day_base = 0;
  for (const TraceEvent& ev : events) {
    if (ev.cls != EventClass::kAnnotation) {
      day_base = day_base_of(ev.local_start);
      break;
    }
  }
  out += strprintf("# daybase %lld\n", static_cast<long long>(day_base));
  for (const TraceEvent& ev : events) {
    out += line(ev);
    out += '\n';
  }
  return out;
}

namespace {

/// Split an argument list on top-level commas, respecting quotes.
std::vector<std::string> split_args(std::string_view s) {
  std::vector<std::string> out;
  std::string cur;
  bool in_quotes = false;
  for (const char c : s) {
    if (c == '"') {
      in_quotes = !in_quotes;
      continue;  // strip the quotes; positions are known per call name
    }
    if (c == ',' && !in_quotes) {
      out.push_back(std::string(trim(cur)));
      cur.clear();
      continue;
    }
    cur.push_back(c);
  }
  const auto last = trim(cur);
  if (!last.empty() || !out.empty()) {
    if (!(out.empty() && last.empty())) {
      out.push_back(std::string(last));
    }
  }
  return out;
}

long long to_ll(const std::string& s) {
  return std::strtoll(s.c_str(), nullptr, 10);
}

/// Reconstruct semantic fields from call name + args (replayer rules).
void attach_semantics(TraceEvent& ev) {
  const auto& a = ev.args;
  const std::string& n = ev.name;
  auto arg = [&](std::size_t i) -> const std::string& { return a[i]; };
  if ((n == "SYS_open" || n == "open") && !a.empty()) {
    ev.path = arg(0);
    ev.fd = static_cast<int>(ev.ret);
  } else if (n == "MPI_File_open" && a.size() >= 2) {
    ev.path = arg(1);
    ev.fd = static_cast<int>(ev.ret);
  } else if ((n == "SYS_close" || n == "MPI_File_close") && !a.empty()) {
    ev.fd = static_cast<int>(to_ll(arg(0)));
  } else if ((n == "SYS_write" || n == "SYS_read") && a.size() >= 2) {
    ev.fd = static_cast<int>(to_ll(arg(0)));
    ev.bytes = to_ll(arg(1));
    if (a.size() >= 3) {
      ev.offset = to_ll(arg(2));
    }
  } else if ((n == "MPI_File_write_at" || n == "MPI_File_read_at" ||
              n == "write" || n == "read") &&
             a.size() >= 3) {
    // Library-level I/O calls render as (fd, offset, bytes).
    ev.fd = static_cast<int>(to_ll(arg(0)));
    ev.offset = to_ll(arg(1));
    ev.bytes = to_ll(arg(2));
  } else if (n == "close" && !a.empty()) {
    ev.fd = static_cast<int>(to_ll(arg(0)));
  } else if (n == "MPI_Barrier" && a.size() >= 2) {
    ev.path = arg(1);  // the barrier label
    ev.args.resize(1);
  } else if (n == "SYS_lseek" && a.size() >= 2) {
    ev.fd = static_cast<int>(to_ll(arg(0)));
    ev.offset = to_ll(arg(1));
  } else if ((n == "SYS_stat" || n == "SYS_unlink" || n == "SYS_mkdir" ||
              n == "SYS_statfs64" || n == "SYS_readdir") &&
             !a.empty()) {
    ev.path = arg(0);
  } else if (n == "SYS_fsync" && !a.empty()) {
    ev.fd = static_cast<int>(to_ll(arg(0)));
  } else if (n == "SYS_mmap" && !a.empty()) {
    ev.fd = static_cast<int>(to_ll(arg(0)));
  } else if (starts_with(n, "vfs_") && !a.empty()) {
    ev.path = arg(0);
    if (a.size() >= 3) {
      ev.offset = to_ll(arg(1));
      ev.bytes = to_ll(arg(2));
    }
  }
}

}  // namespace

TraceEvent TextTraceParser::parse_line(const std::string& raw,
                                       const TextTraceWriter::StreamMeta& meta,
                                       SimTime day_base) {
  TraceEvent ev;
  ev.host = meta.host;
  ev.rank = meta.rank;
  ev.pid = meta.pid;

  const std::string_view line = trim(raw);
  if (starts_with(line, "#")) {
    ev.cls = EventClass::kAnnotation;
    ev.name = std::string(trim(line.substr(1)));
    return ev;
  }

  // timestamp
  const std::size_t sp = line.find(' ');
  if (sp == std::string_view::npos) {
    throw FormatError("trace line missing timestamp: " + raw);
  }
  const std::string ts(line.substr(0, sp));
  int h = 0, m = 0, s = 0;
  long us = 0;
  if (std::sscanf(ts.c_str(), "%d:%d:%d.%ld", &h, &m, &s, &us) != 4) {
    throw FormatError("bad timestamp: " + ts);
  }
  ev.local_start = day_base - kUtcOffset +
                   (static_cast<SimTime>(h) * 3600 + m * 60 + s) * kSecond +
                   static_cast<SimTime>(us) * kMicrosecond;

  // name(args) = ret <dur>
  const std::string_view rest = trim(line.substr(sp + 1));
  const std::size_t lp = rest.find('(');
  const std::size_t rp = rest.rfind(')');
  if (lp == std::string_view::npos || rp == std::string_view::npos || rp < lp) {
    throw FormatError("trace line missing call syntax: " + raw);
  }
  ev.name = std::string(rest.substr(0, lp));
  ev.args = split_args(rest.substr(lp + 1, rp - lp - 1));

  const std::string_view tail = trim(rest.substr(rp + 1));
  long long ret = 0;
  double dur = 0.0;
  if (std::sscanf(std::string(tail).c_str(), "= %lld <%lf>", &ret, &dur) != 2) {
    throw FormatError("trace line missing result: " + raw);
  }
  ev.ret = ret;
  ev.duration = from_seconds(dur);

  if (ev.name == "CLOCK_PROBE") {
    ev.cls = EventClass::kClockProbe;
    ev.name = "clock_probe";
  } else if (starts_with(ev.name, "SYS_")) {
    ev.cls = EventClass::kSyscall;
  } else if (starts_with(ev.name, "vfs_")) {
    ev.cls = EventClass::kFsOperation;
  } else {
    ev.cls = EventClass::kLibraryCall;
  }
  attach_semantics(ev);
  return ev;
}

TextTraceParser::Parsed TextTraceParser::parse(const std::string& text) {
  Parsed out;
  SimTime day_base = 0;
  bool seen_version = false;
  for (const std::string& raw : split(text, '\n')) {
    const std::string_view line = trim(raw);
    if (line.empty()) {
      continue;
    }
    if (starts_with(line, "# iotaxo raw trace")) {
      seen_version = true;
      continue;
    }
    if (starts_with(line, "# host ")) {
      const auto parts = split_ws(line);
      // "# host <host> rank <rank> pid <pid>"
      if (parts.size() >= 7) {
        out.meta.host = parts[2];
        out.meta.rank = static_cast<int>(to_ll(parts[4]));
        out.meta.pid = static_cast<std::uint32_t>(to_ll(parts[6]));
      }
      continue;
    }
    if (starts_with(line, "# daybase ")) {
      const auto parts = split_ws(line);
      if (parts.size() >= 3) {
        day_base = to_ll(parts[2]);
      }
      continue;
    }
    out.events.push_back(parse_line(raw, out.meta, day_base));
  }
  if (!seen_version && out.events.empty()) {
    throw FormatError("not an iotaxo raw trace");
  }
  return out;
}

}  // namespace iotaxo::trace
