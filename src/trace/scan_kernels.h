// SIMD-treated scan kernels over serialized v2-layout record bytes (the
// fixed 81-byte stride shared by IOTB2 record sections and IOTB3 block
// bodies; offsets in record_view.h). These are the three hottest loops of
// the read path — stamp-window transfer filtering, per-name call-stat
// accumulation, and the contiguous u32 max fold the view validators run
// over argument-id tables — pulled into one translation unit so they can
// get explicit vector treatment:
//
//  * The contiguous folds (max_u32_le) take an SSE4.1 (x86) / NEON
//    (aarch64) fast path selected by a runtime CPU check, with a portable
//    unrolled fallback.
//  * The strided record kernels cannot use packed loads (81 is not a
//    vector-friendly stride), so they get the treatment that actually
//    helps there: branchless predication, 4x unrolling onto independent
//    accumulators, and `#pragma omp simd` reduction hints (enabled by
//    -fopenmp-simd where the compiler supports it; a plain serial loop
//    otherwise — results are identical either way).
//
// All loads are little-endian and unaligned-safe (memcpy on LE hosts,
// byte assembly elsewhere); every kernel returns exactly what the naive
// per-record loop it replaces returned, so query results are bit-identical
// with or without the fast paths.
#pragma once

#include <cstdint>

#include "trace/string_pool.h"
#include "util/types.h"

namespace iotaxo::trace::scan {

/// Max over `n` little-endian u32 values starting at `p` (unaligned).
/// Returns 0 for n == 0. Used by the view validators' arg-id max fold.
[[nodiscard]] std::uint32_t max_u32_le(const std::uint8_t* p,
                                       std::size_t n) noexcept;

/// Min/max of local_start over `n` serialized records at `recs`. Requires
/// n > 0; *lo/*hi are overwritten (not folded into).
void minmax_stamps(const std::uint8_t* recs, std::size_t n, SimTime* lo,
                   SimTime* hi) noexcept;

/// Bytes moved by transfer syscalls (name == sys_write or sys_read, class
/// kSyscall, id 0 = "not interned, never matches") whose local_start lies
/// in [begin, end), over `n` serialized records. The bytes_in_window inner
/// loop.
[[nodiscard]] Bytes sum_transfer_bytes_in_window(
    const std::uint8_t* recs, std::size_t n, StrId sys_write, StrId sys_read,
    SimTime begin, SimTime end) noexcept;

/// One call_stats row, indexed by interned name id.
struct CallAccum {
  long long count = 0;
  SimTime time = 0;
  Bytes bytes = 0;
};

/// Fold `n` serialized records into `rows` (indexed by name id; the caller
/// sizes it to the string-table size and guarantees every record's name id
/// is in range — the view validated them). I/O-class records contribute
/// their payload bytes; others only count and duration.
void accumulate_call_stats(const std::uint8_t* recs, std::size_t n,
                           CallAccum* rows) noexcept;

// --- hot-column-group variants ------------------------------------------
// The same kernels over a projected IOTB3 block's decoded HOT group
// (hotlayout in record_view.h: 33-byte stride, cls/name/rank/local_start/
// duration/bytes). Shared internal templates guarantee the fold order —
// and therefore the results — match the v2-stride kernels bit for bit.

void minmax_stamps_hot(const std::uint8_t* recs, std::size_t n, SimTime* lo,
                       SimTime* hi) noexcept;

[[nodiscard]] Bytes sum_transfer_bytes_in_window_hot(
    const std::uint8_t* recs, std::size_t n, StrId sys_write, StrId sys_read,
    SimTime begin, SimTime end) noexcept;

void accumulate_call_stats_hot(const std::uint8_t* recs, std::size_t n,
                               CallAccum* rows) noexcept;

}  // namespace iotaxo::trace::scan
