// Concurrent sink layer: asynchronous batch flush and sharded aggregation.
//
// AsyncBatchSink takes full EventBatches off the capture hot path: the
// producer moves a batch into a bounded queue (backpressure when full) and
// util::ThreadPool workers deliver it to the wrapped sink off-thread. This
// is the Recorder-style "per-process buffering + deferred aggregation"
// split — the traced application pays only the handoff, not the
// aggregation — and flush() is the drain barrier that makes end-of-run
// observation deterministic again (mpi::Runtime flushes every observer
// before on_run_end()).
//
// ShardedSummarySink removes the remaining contention point: batches route
// to hash(rank) % N independent SummarySink shards (each behind its own
// mutex), so concurrent flush workers never serialize on one map. flush()
// merges the shard tables into a single summary identical to what one
// SummarySink fed the same stream would hold.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "trace/event_batch.h"
#include "trace/sink.h"
#include "util/thread_pool.h"

namespace iotaxo::trace {

struct AsyncOptions {
  /// Batches buffered between producer and workers; producers block
  /// (backpressure) once this many are queued or in delivery.
  std::size_t queue_capacity = 64;
  /// Flush worker threads. 1 preserves downstream delivery order (FIFO);
  /// with more workers delivery order is indeterminate, which only
  /// order-insensitive (aggregating) sinks tolerate.
  std::size_t workers = 1;
  /// The wrapped sink is internally synchronized (e.g. ShardedSummarySink),
  /// so workers may deliver concurrently instead of serializing on the
  /// delivery lock.
  bool concurrent_downstream = false;
};

/// Moves batches onto pool workers; see file comment. Producer-side calls
/// (on_event / on_batch / on_batch_owned / flush) may come from one thread
/// at a time — the *downstream* work is what goes concurrent.
class AsyncBatchSink : public EventSink {
 public:
  explicit AsyncBatchSink(SinkPtr downstream, AsyncOptions options = {});
  /// Drains outstanding batches. A destructor cannot rethrow, so call
  /// flush() first if you need the error — but a drain failure is never
  /// invisible: it was counted in `sink.async.delivery_errors` when the
  /// worker caught it, and the destructor's swallow additionally bumps
  /// `sink.async.errors_dropped`.
  ~AsyncBatchSink() override;

  void on_event(const TraceEvent& ev) override;
  /// Copying entry point for producers that keep their batch.
  void on_batch(const EventBatch& batch) override;
  /// Ownership-transfer entry point: the batch moves into the queue and the
  /// caller is left with a consumed (empty) batch.
  void on_batch_owned(EventBatch&& batch) override;

  /// Drain barrier: blocks until every queued batch has been delivered,
  /// rethrows the first delivery error (also recorded in
  /// `sink.async.delivery_errors`), then flushes the wrapped sink.
  void flush() override;

  /// Batches queued or in delivery right now (0 after flush()).
  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] const SinkPtr& downstream() const noexcept {
    return downstream_;
  }

 private:
  void enqueue(EventBatch&& batch);
  /// Long-lived per-worker drain loop (one pool task each, started at
  /// construction): pop, deliver, repeat until stopped and drained. Keeping
  /// workers resident makes the producer-side handoff a queue push plus one
  /// notify — no per-batch task allocation on the capture path.
  void drain_loop();

  SinkPtr downstream_;
  AsyncOptions options_;
  mutable std::mutex mu_;  // queue_, in_flight_, stop_, first_error_
  std::condition_variable queue_cv_;    // workers wait for batches / stop
  std::condition_variable space_cv_;    // producers wait for queue room
  std::condition_variable drained_cv_;  // flush waits for in_flight_ == 0
  std::deque<EventBatch> queue_;
  std::size_t in_flight_ = 0;  // queued + currently delivering
  bool stop_ = false;
  std::exception_ptr first_error_;
  std::mutex delivery_mu_;  // serializes downstream unless concurrent
  // Last member: destroyed (joined) first, while the state above is alive.
  ThreadPool pool_;
};

/// hash(rank) % N routing over independent SummarySink shards; see file
/// comment. on_event / on_batch / on_batch_owned are safe to call from any
/// number of threads concurrently. Batches are routed whole by their first
/// record's rank — per-rank batches (what RankBatcher emits) land on a
/// stable shard, and any routing is correct because flush() sums all
/// shards. Call flush() (or query through an AsyncBatchSink, whose flush
/// cascades) before reading entries().
class ShardedSummarySink : public EventSink {
 public:
  explicit ShardedSummarySink(std::size_t shards = 8);

  void on_event(const TraceEvent& ev) override;
  void on_batch(const EventBatch& batch) override;

  /// Merge shard tables into the entries() view.
  void flush() override;

  /// Merged per-call summary as of the last flush().
  [[nodiscard]] const std::map<std::string, SummarySink::Entry>& entries()
      const noexcept {
    return merged_;
  }
  /// Live total across shards (locks each shard briefly).
  [[nodiscard]] long long total_events() const;
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

 private:
  struct Shard {
    std::mutex mu;
    SummarySink sink;
  };

  [[nodiscard]] Shard& shard_for(int rank) noexcept;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::map<std::string, SummarySink::Entry> merged_;
};

/// Capture-layer knob: interposers wrap their sink in an AsyncBatchSink
/// when enabled (off by default; benchmark-scale runs turn it on to hide
/// delivery cost behind flush workers).
struct AsyncFlushMode {
  bool enabled = false;
  AsyncOptions options;
};

/// The wrapping helper the capture layers share.
[[nodiscard]] SinkPtr maybe_async(SinkPtr sink, const AsyncFlushMode& mode);

}  // namespace iotaxo::trace
