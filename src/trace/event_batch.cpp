#include "trace/event_batch.h"

#include "util/error.h"
#include "util/strings.h"

namespace iotaxo::trace {

void EventBatch::append(const TraceEvent& ev) {
  EventRecord rec;
  rec.cls = ev.cls;
  rec.name = pool_.intern(ev.name);
  rec.args_begin = static_cast<std::uint32_t>(arg_ids_.size());
  rec.args_count = static_cast<std::uint32_t>(ev.args.size());
  for (const std::string& a : ev.args) {
    arg_ids_.push_back(pool_.intern(a));
  }
  rec.ret = ev.ret;
  rec.local_start = ev.local_start;
  rec.duration = ev.duration;
  rec.rank = ev.rank;
  rec.node = ev.node;
  rec.pid = ev.pid;
  rec.host = pool_.intern(ev.host);
  rec.path = pool_.intern(ev.path);
  rec.fd = ev.fd;
  rec.bytes = ev.bytes;
  rec.offset = ev.offset;
  rec.uid = ev.uid;
  rec.gid = ev.gid;
  records_.push_back(rec);
}

void EventBatch::append(const EventBatch& other) {
  if (&other == this) {
    // Appending a batch to itself would grow the containers it iterates;
    // duplicate through a copy instead.
    const EventBatch copy = other;
    append(copy);
    return;
  }
  // Translate ids lazily: other's pool is dense, so a flat vector works as
  // the remap cache (StrId(-1) = not yet translated).
  constexpr StrId kUnmapped = static_cast<StrId>(-1);
  std::vector<StrId> remap(other.pool_.size(), kUnmapped);
  const auto xlat = [&](StrId id) {
    StrId& slot = remap[id];
    if (slot == kUnmapped) {
      slot = pool_.intern(other.pool_.view(id));
    }
    return slot;
  };

  // Grow geometrically: vector::reserve allocates exactly what is asked
  // for, so a streaming store appending many small flushes would otherwise
  // reallocate (and copy) the whole open era on every flush.
  const auto grow = [](auto& v, std::size_t extra) {
    const std::size_t want = v.size() + extra;
    if (want > v.capacity()) {
      v.reserve(std::max(want, v.capacity() * 2));
    }
  };
  pool_.reserve(pool_.size() + other.pool_.size());
  grow(records_, other.records_.size());
  grow(arg_ids_, other.arg_ids_.size());
  for (std::size_t i = 0; i < other.records_.size(); ++i) {
    EventRecord rec = other.records_[i];
    rec.name = xlat(rec.name);
    rec.host = xlat(rec.host);
    rec.path = xlat(rec.path);
    const std::uint32_t begin = static_cast<std::uint32_t>(arg_ids_.size());
    for (const StrId a : other.args(i)) {
      arg_ids_.push_back(xlat(a));
    }
    rec.args_begin = begin;
    records_.push_back(rec);
  }
}

void EventBatch::append_raw(EventRecord rec, std::span<const StrId> args) {
  const auto check = [this](StrId id) {
    if (id >= pool_.size()) {
      throw FormatError(strprintf("event batch: string id %u out of range", id));
    }
  };
  check(rec.name);
  check(rec.host);
  check(rec.path);
  rec.args_begin = static_cast<std::uint32_t>(arg_ids_.size());
  rec.args_count = static_cast<std::uint32_t>(args.size());
  for (const StrId a : args) {
    check(a);
    arg_ids_.push_back(a);
  }
  records_.push_back(rec);
}

void EventBatch::append_interning(EventRecord rec, std::string_view name,
                                  std::string_view host, std::string_view path,
                                  std::span<const std::string_view> args) {
  rec.name = pool_.intern(name);
  rec.args_begin = static_cast<std::uint32_t>(arg_ids_.size());
  rec.args_count = static_cast<std::uint32_t>(args.size());
  for (const std::string_view a : args) {
    arg_ids_.push_back(pool_.intern(a));
  }
  rec.host = pool_.intern(host);
  rec.path = pool_.intern(path);
  records_.push_back(rec);
}

TraceEvent EventBatch::materialize(std::size_t i) const {
  const EventRecord& rec = records_[i];
  TraceEvent ev;
  ev.cls = rec.cls;
  ev.name = pool_.str(rec.name);
  ev.args.reserve(rec.args_count);
  for (const StrId a : args(i)) {
    ev.args.push_back(pool_.str(a));
  }
  ev.ret = rec.ret;
  ev.local_start = rec.local_start;
  ev.duration = rec.duration;
  ev.rank = rec.rank;
  ev.node = rec.node;
  ev.pid = rec.pid;
  ev.host = pool_.str(rec.host);
  ev.path = pool_.str(rec.path);
  ev.fd = rec.fd;
  ev.bytes = rec.bytes;
  ev.offset = rec.offset;
  ev.uid = rec.uid;
  ev.gid = rec.gid;
  return ev;
}

std::vector<TraceEvent> EventBatch::to_events() const {
  std::vector<TraceEvent> events;
  events.reserve(records_.size());
  for (std::size_t i = 0; i < records_.size(); ++i) {
    events.push_back(materialize(i));
  }
  return events;
}

EventBatch EventBatch::from_events(const std::vector<TraceEvent>& events) {
  EventBatch batch;
  batch.records_.reserve(events.size());
  for (const TraceEvent& ev : events) {
    batch.append(ev);
  }
  return batch;
}

}  // namespace iotaxo::trace
