// EventBatch: a contiguous buffer of fixed-size event records plus the
// string pool their name/path/host/arg fields are interned into. This is
// the batched counterpart of std::vector<TraceEvent>: appending an event
// copies each distinct string once into the pool and each record is a flat
// POD, so capture layers can buffer millions of events without per-event
// heap traffic and sinks/stores can iterate them columnar-style.
//
// Batches are the unit of delivery through EventSink::on_batch, the payload
// of the IOTB2 binary container, and the internal representation of
// analysis::UnifiedTraceStore.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/event.h"
#include "trace/string_pool.h"

namespace iotaxo::trace {

/// One event in flat form. String-typed TraceEvent fields become StrIds
/// into the owning batch's pool; args become a [args_begin, args_begin +
/// args_count) slice of the batch's arg-id table.
struct EventRecord {
  EventClass cls = EventClass::kSyscall;
  StrId name = 0;
  std::uint32_t args_begin = 0;
  std::uint32_t args_count = 0;
  long long ret = 0;
  SimTime local_start = 0;
  SimTime duration = 0;
  std::int32_t rank = -1;
  std::int32_t node = -1;
  std::uint32_t pid = 0;
  StrId host = 0;
  StrId path = 0;
  std::int32_t fd = -1;
  Bytes bytes = 0;
  Bytes offset = -1;
  std::uint32_t uid = 0;
  std::uint32_t gid = 0;

  [[nodiscard]] bool is_io_call() const noexcept {
    return cls == EventClass::kSyscall || cls == EventClass::kLibraryCall ||
           cls == EventClass::kFsOperation;
  }

  bool operator==(const EventRecord&) const = default;
};

class EventBatch {
 public:
  /// Append one event, interning its strings.
  void append(const TraceEvent& ev);

  /// Append every record of `other`, remapping its string ids into this
  /// batch's pool.
  void append(const EventBatch& other);

  /// Append a record whose string ids already refer to *this* batch's pool
  /// (decoder / builder path). Throws FormatError on out-of-range ids.
  void append_raw(EventRecord rec, std::span<const StrId> args);

  /// Append a record by interning the given string fields into this batch's
  /// pool (decoder fast path: no TraceEvent materialization). String-id
  /// fields of `rec` are overwritten; args_begin/args_count are set from
  /// `args`.
  void append_interning(EventRecord rec, std::string_view name,
                        std::string_view host, std::string_view path,
                        std::span<const std::string_view> args);

  /// Pre-size the record and arg-id containers (decode / merge paths that
  /// know the incoming sizes).
  void reserve(std::size_t records, std::size_t args) {
    records_.reserve(records_.size() + records);
    arg_ids_.reserve(arg_ids_.size() + args);
  }

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }

  /// Drop the records but keep the pool: a capture buffer that is flushed
  /// and refilled re-interns nothing.
  void clear() noexcept {
    records_.clear();
    arg_ids_.clear();
  }
  /// Drop records and pool both.
  void reset() {
    clear();
    pool_.clear();
  }

  [[nodiscard]] const std::vector<EventRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] const EventRecord& record(std::size_t i) const {
    return records_[i];
  }
  [[nodiscard]] const StringPool& pool() const noexcept { return pool_; }
  [[nodiscard]] StringPool& pool() noexcept { return pool_; }
  [[nodiscard]] const std::vector<StrId>& arg_ids() const noexcept {
    return arg_ids_;
  }

  [[nodiscard]] std::string_view name(std::size_t i) const {
    return pool_.view(records_[i].name);
  }
  [[nodiscard]] std::string_view host(std::size_t i) const {
    return pool_.view(records_[i].host);
  }
  [[nodiscard]] std::string_view path(std::size_t i) const {
    return pool_.view(records_[i].path);
  }
  [[nodiscard]] std::span<const StrId> args(std::size_t i) const {
    const EventRecord& r = records_[i];
    return std::span<const StrId>(arg_ids_).subspan(r.args_begin,
                                                    r.args_count);
  }
  [[nodiscard]] std::string_view arg(std::size_t i, std::size_t j) const {
    return pool_.view(args(i)[j]);
  }

  /// Timeline normalization hook (the unified store rewrites local_start
  /// onto the common timeline in place).
  void set_local_start(std::size_t i, SimTime t) noexcept {
    records_[i].local_start = t;
  }

  /// Rebuild the i-th event as a heap-owning TraceEvent.
  [[nodiscard]] TraceEvent materialize(std::size_t i) const;

  /// Explode into per-event form (tests, compatibility edges).
  [[nodiscard]] std::vector<TraceEvent> to_events() const;

  [[nodiscard]] static EventBatch from_events(
      const std::vector<TraceEvent>& events);

 private:
  std::vector<EventRecord> records_;
  std::vector<StrId> arg_ids_;
  StringPool pool_;
};

}  // namespace iotaxo::trace
