#include "trace/binary_format.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <string_view>

#include "trace/block_view.h"
#include "trace/record_view.h"
#include "util/compress.h"
#include "util/crc32.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#define IOTAXO_HAVE_POSIX_WRITE 1
#include <cerrno>
#include <fcntl.h>
#include <unistd.h>
#else
#include <cstdio>
#endif

namespace iotaxo::trace {

namespace {

constexpr char kMagicV1[6] = {'I', 'O', 'T', 'B', '1', '\n'};
constexpr char kMagicV2[6] = {'I', 'O', 'T', 'B', '2', '\n'};
constexpr char kMagicV3[6] = {'I', 'O', 'T', 'B', '3', '\n'};
constexpr std::uint8_t kFlagCompressed = 0x01;
constexpr std::uint8_t kFlagEncrypted = 0x02;
constexpr std::uint8_t kFlagChecksummed = 0x04;
constexpr std::uint8_t kFlagProjected = 0x08;  // v3 columnar projection
constexpr std::uint8_t kFlagIndexed = 0x10;    // v2 pool-index footer
constexpr std::size_t kHeaderSize = kContainerHeaderSize;
// Fixed fields plus the four (possibly zero-length) string length prefixes
// of a v1 record — the minimum body bytes one record can occupy. Corrupt
// counts are bounded by this before any reserve() sees them.
constexpr std::size_t kV1MinRecordSize = 81;

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void bytes(std::span<const std::uint8_t> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::string str() { return std::string(str_view()); }
  /// Like str(), but borrowing the body bytes — the decoder fast paths
  /// intern straight from the view without a temporary std::string.
  std::string_view str_view() {
    const std::uint32_t n = u32();
    need(n);
    const auto* p = reinterpret_cast<const char*>(&data_[pos_]);
    pos_ += n;
    return {p, n};
  }
  [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) {
    if (pos_ + n > data_.size()) {
      throw FormatError("binary trace: truncated record");
    }
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

void encode_event(Writer& w, const TraceEvent& ev) {
  w.u8(static_cast<std::uint8_t>(ev.cls));
  w.str(ev.name);
  w.u32(static_cast<std::uint32_t>(ev.args.size()));
  for (const std::string& a : ev.args) {
    w.str(a);
  }
  w.i64(ev.ret);
  w.i64(ev.local_start);
  w.i64(ev.duration);
  w.i32(ev.rank);
  w.i32(ev.node);
  w.u32(ev.pid);
  w.str(ev.host);
  w.str(ev.path);
  w.i32(ev.fd);
  w.i64(ev.bytes);
  w.i64(ev.offset);
  w.u32(ev.uid);
  w.u32(ev.gid);
}

[[nodiscard]] EventClass decode_class(std::uint8_t cls) {
  if (cls > static_cast<std::uint8_t>(EventClass::kAnnotation)) {
    throw FormatError("binary trace: bad event class");
  }
  return static_cast<EventClass>(cls);
}

TraceEvent decode_event(Reader& r) {
  TraceEvent ev;
  ev.cls = decode_class(r.u8());
  ev.name = r.str();
  const std::uint32_t argc = r.u32();
  ev.args.reserve(argc);
  for (std::uint32_t i = 0; i < argc; ++i) {
    ev.args.push_back(r.str());
  }
  ev.ret = r.i64();
  ev.local_start = r.i64();
  ev.duration = r.i64();
  ev.rank = r.i32();
  ev.node = r.i32();
  ev.pid = r.u32();
  ev.host = r.str();
  ev.path = r.str();
  ev.fd = r.i32();
  ev.bytes = r.i64();
  ev.offset = r.i64();
  ev.uid = r.u32();
  ev.gid = r.u32();
  return ev;
}

void encode_record(Writer& w, const EventRecord& rec) {
  w.u8(static_cast<std::uint8_t>(rec.cls));
  w.u32(rec.name);
  // args_begin is not written: batch arg slices are contiguous in record
  // order, so the decoder reconstructs it as a running sum.
  w.u32(rec.args_count);
  w.i64(rec.ret);
  w.i64(rec.local_start);
  w.i64(rec.duration);
  w.i32(rec.rank);
  w.i32(rec.node);
  w.u32(rec.pid);
  w.u32(rec.host);
  w.u32(rec.path);
  w.i32(rec.fd);
  w.i64(rec.bytes);
  w.i64(rec.offset);
  w.u32(rec.uid);
  w.u32(rec.gid);
}

/// The two column groups of one projected record (hotlayout / coldlayout
/// in record_view.h). Their field unions exactly cover encode_record's v2
/// fields; args_begin stays implicit (running sum) in both layouts.
void encode_hot_record(Writer& w, const EventRecord& rec) {
  w.u8(static_cast<std::uint8_t>(rec.cls));
  w.u32(rec.name);
  w.i32(rec.rank);
  w.i64(rec.local_start);
  w.i64(rec.duration);
  w.i64(rec.bytes);
}

void encode_cold_record(Writer& w, const EventRecord& rec) {
  w.u32(rec.args_count);
  w.i64(rec.ret);
  w.i32(rec.node);
  w.u32(rec.pid);
  w.u32(rec.host);
  w.u32(rec.path);
  w.i32(rec.fd);
  w.i64(rec.offset);
  w.u32(rec.uid);
  w.u32(rec.gid);
}

/// Wrap a finished body in the shared container envelope (compress /
/// encrypt / checksum, then magic + flags + counts). `extra_flags` carries
/// body-shape bits the caller already baked into the payload (today only
/// kFlagIndexed from the v2 encoder).
[[nodiscard]] std::vector<std::uint8_t> seal_container(
    const char (&magic)[6], std::vector<std::uint8_t> payload,
    std::uint64_t count, const BinaryOptions& options,
    std::uint8_t extra_flags = 0) {
  if (options.encrypt && !options.key.has_value()) {
    throw ConfigError("binary trace: encryption requested without a key");
  }
  if (options.project) {
    throw ConfigError(
        "binary trace: columnar projection requires the v3 block container");
  }
  std::uint8_t flags = extra_flags;
  if (options.compress) {
    payload = lz_compress(payload);
    flags |= kFlagCompressed;
  }
  if (options.encrypt) {
    payload = cbc_encrypt(payload, *options.key, options.iv_seed);
    flags |= kFlagEncrypted;
  }
  if (options.checksum) {
    flags |= kFlagChecksummed;
  }

  Writer out;
  for (const char c : magic) {
    out.u8(static_cast<std::uint8_t>(c));
  }
  out.u8(flags);
  out.u64(count);
  out.u64(payload.size());
  std::vector<std::uint8_t> head = out.take();
  head.insert(head.end(), payload.begin(), payload.end());
  if (options.checksum) {
    const std::uint32_t crc = crc32(payload);
    for (int i = 0; i < 4; ++i) {
      head.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
    }
  }
  return head;
}

/// Validate the envelope, verify the CRC, decrypt and decompress; returns
/// the raw body bytes.
[[nodiscard]] std::vector<std::uint8_t> open_container(
    std::span<const std::uint8_t> data, const BinaryHeader& h,
    const std::optional<CipherKey>& key) {
  // Subtract-and-compare instead of add-and-compare: a hostile
  // payload_length near 2^64 must not wrap the right-hand side into a
  // passing equality.
  const std::size_t crc_size = h.checksummed ? 4 : 0;
  const std::size_t avail = data.size() - kHeaderSize;  // header was peeked
  if (avail < crc_size || h.payload_length != avail - crc_size) {
    throw FormatError("binary trace: length mismatch");
  }
  std::span<const std::uint8_t> payload =
      data.subspan(kHeaderSize, h.payload_length);

  if (h.checksummed) {
    std::uint32_t stored = 0;
    for (int i = 0; i < 4; ++i) {
      stored |= static_cast<std::uint32_t>(data[kHeaderSize + h.payload_length +
                                                static_cast<std::size_t>(i)])
                << (8 * i);
    }
    if (crc32(payload) != stored) {
      throw FormatError("binary trace: checksum mismatch");
    }
  }

  std::vector<std::uint8_t> buf(payload.begin(), payload.end());
  if (h.encrypted) {
    if (!key.has_value()) {
      throw FormatError("binary trace: encrypted file requires a key");
    }
    buf = cbc_decrypt(buf, *key);
  }
  if (h.compressed) {
    buf = lz_decompress(buf);
  }
  return buf;
}

[[nodiscard]] EventBatch decode_batch_body(std::span<const std::uint8_t> body,
                                           std::uint64_t count,
                                           bool indexed = false) {
  Reader r(body);
  EventBatch batch;

  const std::uint32_t nstrings = r.u32();
  if (nstrings == 0) {
    throw FormatError("binary trace v2: empty string table");
  }
  // Each table entry occupies at least its 4-byte length prefix; a count
  // the body cannot hold is corruption, and must not reach reserve() as a
  // giant allocation.
  if (nstrings > body.size() / 4) {
    throw FormatError("binary trace v2: string table exceeds payload");
  }
  StringPool& pool = batch.pool();
  pool.reserve(nstrings);
  for (std::uint32_t i = 0; i < nstrings; ++i) {
    const std::string_view s = r.str_view();
    const StrId id = pool.intern(s);
    if (id != i) {
      // Duplicate or misordered table entries can only come from a writer
      // bug or corruption the CRC did not cover.
      throw FormatError("binary trace v2: string table is not interned");
    }
  }

  const std::uint64_t nargids = r.u64();
  // Each arg id occupies 4 payload bytes; a count the body cannot hold is
  // corruption, and must not reach reserve() as a giant allocation.
  if (nargids > body.size() / 4) {
    throw FormatError("binary trace v2: arg-id table exceeds payload");
  }
  std::vector<StrId> arg_ids;
  arg_ids.reserve(static_cast<std::size_t>(nargids));
  for (std::uint64_t i = 0; i < nargids; ++i) {
    arg_ids.push_back(r.u32());
  }

  // A v2 record occupies a fixed stride of body bytes; a count the body
  // cannot hold is corruption, and must not reach reserve() as a giant
  // allocation.
  if (count > body.size() / v2layout::kStride) {
    throw FormatError("binary trace: record count exceeds payload");
  }
  batch.reserve(static_cast<std::size_t>(count),
                static_cast<std::size_t>(nargids));
  std::uint64_t next_args_begin = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    EventRecord rec;
    rec.cls = decode_class(r.u8());
    rec.name = r.u32();
    const std::uint64_t args_begin = next_args_begin;
    const std::uint32_t args_count = r.u32();
    next_args_begin += args_count;
    rec.ret = r.i64();
    rec.local_start = r.i64();
    rec.duration = r.i64();
    rec.rank = r.i32();
    rec.node = r.i32();
    rec.pid = r.u32();
    rec.host = r.u32();
    rec.path = r.u32();
    rec.fd = r.i32();
    rec.bytes = r.i64();
    rec.offset = r.i64();
    rec.uid = r.u32();
    rec.gid = r.u32();
    if (args_begin + args_count > nargids) {
      throw FormatError("binary trace v2: record args out of range");
    }
    batch.append_raw(rec, std::span<const StrId>(arg_ids).subspan(
                              static_cast<std::size_t>(args_begin),
                              args_count));
  }
  // Indexed bodies carry the pool-index footer after the records; the
  // decoder materializes the batch, so the footer is simply skipped.
  if (!indexed && !r.at_end()) {
    throw FormatError("binary trace: trailing bytes after records");
  }
  return batch;
}

}  // namespace

std::optional<PoolIndexFooter> parse_v2_index_footer(
    std::span<const std::uint8_t> tail, std::uint64_t expect_records,
    std::uint32_t expect_nstrings, std::string* error) {
  const auto fail = [error](const char* why) -> std::optional<PoolIndexFooter> {
    if (error != nullptr) {
      *error = why;
    }
    return std::nullopt;
  };
  if (tail.size() < v2footer::kFixedSize + v2footer::kTrailerSize) {
    return fail("index footer truncated");
  }
  Reader trailer(tail.subspan(tail.size() - v2footer::kTrailerSize));
  const std::uint64_t footer_len = trailer.u64();
  const std::uint32_t footer_crc = trailer.u32();
  if (trailer.u32() != v2footer::kFooterMagic) {
    return fail("bad index footer magic");
  }
  if (footer_len != tail.size() - v2footer::kTrailerSize) {
    return fail("index footer length mismatch");
  }
  const std::span<const std::uint8_t> footer =
      tail.first(static_cast<std::size_t>(footer_len));
  if (crc32(footer) != footer_crc) {
    return fail("index footer CRC mismatch");
  }
  Reader r(footer);
  const std::uint8_t flags = r.u8();
  PoolIndexFooter out;
  out.any = (flags & v2footer::kAny) != 0;
  out.has_fd_path = (flags & v2footer::kHasFdPath) != 0;
  out.has_io_bytes = (flags & v2footer::kHasIoBytes) != 0;
  out.min_time = r.i64();
  out.max_time = r.i64();
  out.records = r.u64();
  const std::uint32_t nstrings = r.u32();
  // The footer must describe THIS body: a stale or transplanted footer
  // whose counts disagree with the envelope is rejected, not adopted.
  if (out.records != expect_records) {
    return fail("index footer record count mismatch");
  }
  if (nstrings != expect_nstrings) {
    return fail("index footer string count mismatch");
  }
  const std::size_t bitmap_bytes = (nstrings + 7u) / 8u;
  if (footer_len != v2footer::kFixedSize + bitmap_bytes) {
    return fail("index footer bitmap length mismatch");
  }
  out.name_bitmap.assign(footer.begin() + v2footer::kFixedSize, footer.end());
  if (error != nullptr) {
    error->clear();
  }
  return out;
}

std::vector<std::uint8_t> encode_binary(const std::vector<TraceEvent>& events,
                                        const BinaryOptions& options) {
  Writer body;
  for (const TraceEvent& ev : events) {
    encode_event(body, ev);
  }
  return seal_container(kMagicV1, body.take(), events.size(), options);
}

std::vector<std::uint8_t> encode_binary_v2(const EventBatch& batch,
                                           const BinaryOptions& options) {
  Writer body;
  body.u32(static_cast<std::uint32_t>(batch.pool().size()));
  batch.pool().for_each(
      [&body](StrId /*id*/, std::string_view s) { body.str(s); });
  body.u64(batch.arg_ids().size());
  for (const StrId a : batch.arg_ids()) {
    body.u32(a);
  }
  for (const EventRecord& rec : batch.records()) {
    encode_record(body, rec);
  }
  if (!options.index_footer) {
    return seal_container(kMagicV2, body.take(), batch.size(), options);
  }

  // Pool-index footer: the same stats UnifiedTraceStore::index_pool folds
  // from a record scan, persisted so readers can skip that scan.
  std::uint8_t flags = 0;
  SimTime min_time = 0;
  SimTime max_time = 0;
  std::vector<std::uint8_t> bitmap((batch.pool().size() + 7) / 8);
  for (const EventRecord& rec : batch.records()) {
    if ((flags & v2footer::kAny) == 0) {
      min_time = max_time = rec.local_start;
      flags |= v2footer::kAny;
    } else {
      min_time = std::min(min_time, rec.local_start);
      max_time = std::max(max_time, rec.local_start);
    }
    bitmap[rec.name >> 3] |= static_cast<std::uint8_t>(1u << (rec.name & 7u));
    if (rec.path != 0 && rec.fd >= 0) {
      flags |= v2footer::kHasFdPath;
    }
    if (rec.is_io_call() && rec.bytes > 0) {
      flags |= v2footer::kHasIoBytes;
    }
  }
  Writer footer;
  footer.u8(flags);
  footer.i64(min_time);
  footer.i64(max_time);
  footer.u64(batch.size());
  footer.u32(static_cast<std::uint32_t>(batch.pool().size()));
  for (const std::uint8_t byte : bitmap) {
    footer.u8(byte);
  }
  const std::vector<std::uint8_t> footer_bytes = footer.take();
  body.bytes(footer_bytes);
  body.u64(footer_bytes.size());
  body.u32(crc32(footer_bytes));
  body.u32(v2footer::kFooterMagic);
  return seal_container(kMagicV2, body.take(), batch.size(), options,
                        kFlagIndexed);
}

std::vector<std::uint8_t> encode_binary_v2(
    const std::vector<TraceEvent>& events, const BinaryOptions& options) {
  return encode_binary_v2(EventBatch::from_events(events), options);
}

std::vector<std::uint8_t> encode_binary_v3(const EventBatch& batch,
                                           const BinaryOptions& options,
                                           std::uint32_t block_records) {
  if (options.encrypt && !options.key.has_value()) {
    throw ConfigError("binary trace: encryption requested without a key");
  }
  if (block_records == 0) {
    throw ConfigError("binary trace v3: block_records must be positive");
  }
  const std::size_t count = batch.size();
  const std::size_t nblocks =
      count == 0 ? 0 : (count + block_records - 1) / block_records;
  const std::size_t nstrings = batch.pool().size();
  const std::size_t bitmap_bytes = (nstrings + 7) / 8;

  Writer payload;  // head, then stored blocks appended in place
  payload.u32(static_cast<std::uint32_t>(nstrings));
  batch.pool().for_each(
      [&payload](StrId /*id*/, std::string_view s) { payload.str(s); });
  payload.u64(batch.arg_ids().size());
  for (const StrId a : batch.arg_ids()) {
    payload.u32(a);
  }
  payload.u32(block_records);
  if (options.encrypt) {
    payload.u64(xtea_encrypt_block(v3layout::kKeyCheckPlain, *options.key));
  }

  // One column group's plain -> stored transform: compress, THEN encrypt
  // (per-block IV derived from the ordinal + group; nothing stored).
  const auto store_group = [&](std::vector<std::uint8_t> plain, std::size_t b,
                               std::uint32_t group) {
    if (options.compress) {
      plain = lz_compress(plain);
    }
    if (options.encrypt) {
      plain = cbc_encrypt_with_iv(plain, *options.key,
                                  v3layout::block_iv(b, group));
    }
    return plain;
  };

  Writer footer;
  std::vector<std::uint8_t> bitmap(bitmap_bytes);
  std::uint64_t block_offset = 0;
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t first = b * block_records;
    const std::size_t n = std::min<std::size_t>(block_records, count - first);
    Writer plain_w;  // full 81-byte stride, or the hot group when projected
    Writer cold_w;
    SimTime min_time = batch.record(first).local_start;
    SimTime max_time = min_time;
    std::uint8_t flags = 0;
    std::fill(bitmap.begin(), bitmap.end(), 0);
    for (std::size_t i = first; i < first + n; ++i) {
      const EventRecord& rec = batch.record(i);
      if (options.project) {
        encode_hot_record(plain_w, rec);
        encode_cold_record(cold_w, rec);
      } else {
        encode_record(plain_w, rec);
      }
      min_time = std::min(min_time, rec.local_start);
      max_time = std::max(max_time, rec.local_start);
      bitmap[rec.name >> 3] |=
          static_cast<std::uint8_t>(1u << (rec.name & 7u));
      if (rec.path != 0 && rec.fd >= 0) {
        flags |= v3layout::kBlockHasFdPath;
      }
      if (rec.is_io_call()) {
        flags |= v3layout::kBlockHasIoCall;
        if (rec.bytes > 0) {
          flags |= v3layout::kBlockHasIoBytes;
        }
      }
    }
    const std::vector<std::uint8_t> stored = store_group(plain_w.take(), b, 0);
    std::vector<std::uint8_t> cold_stored;
    if (options.project) {
      cold_stored = store_group(cold_w.take(), b, 1);
    }
    footer.u64(block_offset);
    footer.u64(stored.size());
    // Owned-batch arg slices are contiguous in record order, so the block's
    // running args_begin is the first record's (the same invariant the v2
    // encoder relies on to omit args_begin entirely).
    footer.u64(batch.record(first).args_begin);
    footer.u32(static_cast<std::uint32_t>(n));
    footer.u32(options.checksum ? crc32(stored) : 0u);
    footer.i64(min_time);
    footer.i64(max_time);
    footer.u8(flags);
    if (options.project) {
      footer.u64(cold_stored.size());
      footer.u32(options.checksum ? crc32(cold_stored) : 0u);
    }
    for (const std::uint8_t byte : bitmap) {
      footer.u8(byte);
    }
    block_offset += stored.size() + cold_stored.size();
    payload.bytes(stored);
    if (options.project) {
      payload.bytes(cold_stored);
    }
  }

  const std::vector<std::uint8_t> footer_bytes = footer.take();
  payload.bytes(footer_bytes);
  payload.u64(footer_bytes.size());
  payload.u64(nblocks);
  payload.u32(crc32(footer_bytes));
  payload.u32(v3layout::kFooterMagic);

  std::uint8_t container_flags = 0;
  if (options.compress) {
    container_flags |= kFlagCompressed;
  }
  if (options.encrypt) {
    container_flags |= kFlagEncrypted;
  }
  if (options.checksum) {
    container_flags |= kFlagChecksummed;
  }
  if (options.project) {
    container_flags |= kFlagProjected;
  }
  Writer out;
  for (const char c : kMagicV3) {
    out.u8(static_cast<std::uint8_t>(c));
  }
  out.u8(container_flags);
  out.u64(count);
  const std::vector<std::uint8_t> body = payload.take();
  out.u64(body.size());
  std::vector<std::uint8_t> head = out.take();
  head.insert(head.end(), body.begin(), body.end());
  return head;
}

std::vector<std::uint8_t> encode_binary_v3(
    const std::vector<TraceEvent>& events, const BinaryOptions& options,
    std::uint32_t block_records) {
  return encode_binary_v3(EventBatch::from_events(events), options,
                          block_records);
}

BinaryHeader peek_binary_header(std::span<const std::uint8_t> data) {
  if (data.size() < kHeaderSize) {
    throw FormatError("binary trace: bad magic");
  }
  BinaryHeader h;
  if (std::memcmp(data.data(), kMagicV1, 6) == 0) {
    h.version = 1;
  } else if (std::memcmp(data.data(), kMagicV2, 6) == 0) {
    h.version = 2;
  } else if (std::memcmp(data.data(), kMagicV3, 6) == 0) {
    h.version = 3;
  } else {
    throw FormatError("binary trace: bad magic");
  }
  Reader r(data.subspan(6));
  const std::uint8_t flags = r.u8();
  h.compressed = (flags & kFlagCompressed) != 0;
  h.encrypted = (flags & kFlagEncrypted) != 0;
  h.checksummed = (flags & kFlagChecksummed) != 0;
  h.projected = (flags & kFlagProjected) != 0;
  h.indexed = (flags & kFlagIndexed) != 0;
  if (h.projected && h.version != 3) {
    throw FormatError("binary trace: projected flag is v3-only");
  }
  if (h.indexed && h.version != 2) {
    throw FormatError("binary trace: indexed flag is v2-only");
  }
  h.count = r.u64();
  h.payload_length = r.u64();
  return h;
}

std::vector<TraceEvent> decode_binary(std::span<const std::uint8_t> data,
                                      const std::optional<CipherKey>& key) {
  const BinaryHeader h = peek_binary_header(data);
  if (h.version == 3) {
    return BlockView(data, key).to_batch().to_events();
  }
  const std::vector<std::uint8_t> body = open_container(data, h, key);
  if (h.version == 2) {
    return decode_batch_body(body, h.count, h.indexed).to_events();
  }
  // A count the body cannot hold is corruption and must not reach
  // reserve() as a giant allocation.
  if (h.count > body.size() / kV1MinRecordSize) {
    throw FormatError("binary trace: record count exceeds payload");
  }
  Reader r(body);
  std::vector<TraceEvent> events;
  events.reserve(h.count);
  for (std::uint64_t i = 0; i < h.count; ++i) {
    events.push_back(decode_event(r));
  }
  if (!r.at_end()) {
    throw FormatError("binary trace: trailing bytes after records");
  }
  return events;
}

EventBatch decode_binary_batch(std::span<const std::uint8_t> data,
                               const std::optional<CipherKey>& key) {
  const BinaryHeader h = peek_binary_header(data);
  if (h.version == 3) {
    // The block view *is* the v3 decoder: it validates the footer and every
    // block it converts, so corrupt containers throw exactly as v1/v2 do.
    return BlockView(data, key).to_batch();
  }
  const std::vector<std::uint8_t> body = open_container(data, h, key);
  if (h.version == 2) {
    return decode_batch_body(body, h.count, h.indexed);
  }
  // v1 interop fast path: intern each record's strings straight from the
  // body into the output batch — no per-event TraceEvent round-trip, no
  // temporary std::strings (mirrors decode_event's field order exactly).
  if (h.count > body.size() / kV1MinRecordSize) {
    throw FormatError("binary trace: record count exceeds payload");
  }
  Reader r(body);
  EventBatch batch;
  batch.reserve(static_cast<std::size_t>(h.count), 0);
  std::vector<std::string_view> args;
  for (std::uint64_t i = 0; i < h.count; ++i) {
    EventRecord rec;
    rec.cls = decode_class(r.u8());
    const std::string_view name = r.str_view();
    const std::uint32_t argc = r.u32();
    args.clear();
    // Cap the hint: a corrupt argc must not become a giant allocation (the
    // reader throws on the first truncated arg regardless).
    args.reserve(std::min<std::uint32_t>(argc, 64));
    for (std::uint32_t j = 0; j < argc; ++j) {
      args.push_back(r.str_view());
    }
    rec.ret = r.i64();
    rec.local_start = r.i64();
    rec.duration = r.i64();
    rec.rank = r.i32();
    rec.node = r.i32();
    rec.pid = r.u32();
    const std::string_view host = r.str_view();
    const std::string_view path = r.str_view();
    rec.fd = r.i32();
    rec.bytes = r.i64();
    rec.offset = r.i64();
    rec.uid = r.u32();
    rec.gid = r.u32();
    batch.append_interning(rec, name, host, path, args);
  }
  if (!r.at_end()) {
    throw FormatError("binary trace: trailing bytes after records");
  }
  return batch;
}

bool looks_binary(std::span<const std::uint8_t> data) noexcept {
  return data.size() >= 6 && (std::memcmp(data.data(), kMagicV1, 6) == 0 ||
                              std::memcmp(data.data(), kMagicV2, 6) == 0 ||
                              std::memcmp(data.data(), kMagicV3, 6) == 0);
}

// ------------------------------------------------------- durable file write

#if IOTAXO_HAVE_POSIX_WRITE
namespace {

void write_all(int fd, const std::uint8_t* data, std::size_t len,
               const std::string& path) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw IoError("cannot write '" + path + "'");
    }
    done += static_cast<std::size_t>(n);
  }
}

void fsync_or_throw(int fd, const std::string& path) {
  if (::fsync(fd) != 0) {
    throw IoError("cannot fsync '" + path + "'");
  }
}

}  // namespace
#endif

namespace {

/// Handles bound once; every record call is one relaxed load when metrics
/// are disarmed (util/metrics.h).
struct DurableMetrics {
  obs::Counter& files = obs::counter("durable.write.files");
  obs::Counter& bytes = obs::counter("durable.write.bytes");
  obs::Histogram& fsync_ns = obs::histogram("durable.write.fsync_ns");
  obs::Histogram& rename_ns = obs::histogram("durable.write.rename_ns");
};

DurableMetrics& durable_metrics() {
  static DurableMetrics m;
  return m;
}

}  // namespace

void write_binary_file(const std::string& path,
                       std::span<const std::uint8_t> bytes,
                       std::string_view point_prefix) {
  const std::string prefix(point_prefix);
  const std::string tmp = path + ".tmp";
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? std::string(".") : parent.string();
#if IOTAXO_HAVE_POSIX_WRITE
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw IoError("cannot create '" + tmp + "'");
  }
  try {
    fail::point(prefix + ".write");
    // A torn:N spec at the write point models a crash mid-write: the tmp
    // file keeps its first N bytes and the "process" dies — recovery must
    // delete it, never promote it.
    std::size_t len = bytes.size();
    bool torn = false;
    if (const auto limit = fail::torn_limit(prefix + ".write")) {
      len = std::min<std::size_t>(len, *limit);
      torn = true;
    }
    write_all(fd, bytes.data(), len, tmp);
    if (torn) {
      throw fail::CrashError("torn write of '" + tmp + "'");
    }
    fail::point(prefix + ".fsync");
    {
      const obs::ScopedTimer fsync_timer(durable_metrics().fsync_ns);
      fsync_or_throw(fd, tmp);
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  fail::point(prefix + ".rename");
  {
    const obs::ScopedTimer rename_timer(durable_metrics().rename_ns);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
      throw IoError("cannot rename '" + tmp + "' to '" + path + "'");
    }
  }
  fail::point(prefix + ".dirsync");
  const int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd < 0) {
    throw IoError("cannot open directory '" + dir + "' to fsync it");
  }
  try {
    fsync_or_throw(dfd, dir);
  } catch (...) {
    ::close(dfd);
    throw;
  }
  ::close(dfd);
#else
  // No POSIX fd durability on this platform: keep the tmp + atomic-rename
  // shape (and the failpoints) so behavior stays testable, with flush as
  // the best available stand-in for fsync.
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw IoError("cannot create '" + tmp + "'");
  }
  try {
    fail::point(prefix + ".write");
    std::size_t len = bytes.size();
    bool torn = false;
    if (const auto limit = fail::torn_limit(prefix + ".write")) {
      len = std::min<std::size_t>(len, *limit);
      torn = true;
    }
    if (len > 0 && std::fwrite(bytes.data(), 1, len, f) != len) {
      throw IoError("cannot write '" + tmp + "'");
    }
    if (torn) {
      throw fail::CrashError("torn write of '" + tmp + "'");
    }
    fail::point(prefix + ".fsync");
    {
      const obs::ScopedTimer fsync_timer(durable_metrics().fsync_ns);
      if (std::fflush(f) != 0) {
        throw IoError("cannot flush '" + tmp + "'");
      }
    }
  } catch (...) {
    std::fclose(f);
    throw;
  }
  std::fclose(f);
  fail::point(prefix + ".rename");
  {
    const obs::ScopedTimer rename_timer(durable_metrics().rename_ns);
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
      throw IoError("cannot rename '" + tmp + "' to '" + path + "'");
    }
  }
  fail::point(prefix + ".dirsync");
#endif
  // Counted only once the file is fully durable (rename + dirsync done):
  // the counters answer "how many era/manifest files landed", not "how
  // many attempts started".
  durable_metrics().files.add(1);
  durable_metrics().bytes.add(bytes.size());
}

}  // namespace iotaxo::trace
