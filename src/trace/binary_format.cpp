#include "trace/binary_format.h"

#include <cstring>

#include "util/compress.h"
#include "util/crc32.h"
#include "util/error.h"

namespace iotaxo::trace {

namespace {

constexpr char kMagic[6] = {'I', 'O', 'T', 'B', '1', '\n'};
constexpr std::uint8_t kFlagCompressed = 0x01;
constexpr std::uint8_t kFlagEncrypted = 0x02;
constexpr std::uint8_t kFlagChecksummed = 0x04;

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(&data_[pos_]), n);
    pos_ += n;
    return s;
  }
  [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) {
    if (pos_ + n > data_.size()) {
      throw FormatError("binary trace: truncated record");
    }
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

void encode_event(Writer& w, const TraceEvent& ev) {
  w.u8(static_cast<std::uint8_t>(ev.cls));
  w.str(ev.name);
  w.u32(static_cast<std::uint32_t>(ev.args.size()));
  for (const std::string& a : ev.args) {
    w.str(a);
  }
  w.i64(ev.ret);
  w.i64(ev.local_start);
  w.i64(ev.duration);
  w.i32(ev.rank);
  w.i32(ev.node);
  w.u32(ev.pid);
  w.str(ev.host);
  w.str(ev.path);
  w.i32(ev.fd);
  w.i64(ev.bytes);
  w.i64(ev.offset);
  w.u32(ev.uid);
  w.u32(ev.gid);
}

TraceEvent decode_event(Reader& r) {
  TraceEvent ev;
  const std::uint8_t cls = r.u8();
  if (cls > static_cast<std::uint8_t>(EventClass::kAnnotation)) {
    throw FormatError("binary trace: bad event class");
  }
  ev.cls = static_cast<EventClass>(cls);
  ev.name = r.str();
  const std::uint32_t argc = r.u32();
  ev.args.reserve(argc);
  for (std::uint32_t i = 0; i < argc; ++i) {
    ev.args.push_back(r.str());
  }
  ev.ret = r.i64();
  ev.local_start = r.i64();
  ev.duration = r.i64();
  ev.rank = r.i32();
  ev.node = r.i32();
  ev.pid = r.u32();
  ev.host = r.str();
  ev.path = r.str();
  ev.fd = r.i32();
  ev.bytes = r.i64();
  ev.offset = r.i64();
  ev.uid = r.u32();
  ev.gid = r.u32();
  return ev;
}

}  // namespace

std::vector<std::uint8_t> encode_binary(const std::vector<TraceEvent>& events,
                                        const BinaryOptions& options) {
  if (options.encrypt && !options.key.has_value()) {
    throw ConfigError("binary trace: encryption requested without a key");
  }
  Writer body;
  for (const TraceEvent& ev : events) {
    encode_event(body, ev);
  }
  std::vector<std::uint8_t> payload = body.take();
  std::uint8_t flags = 0;
  if (options.compress) {
    payload = lz_compress(payload);
    flags |= kFlagCompressed;
  }
  if (options.encrypt) {
    payload = cbc_encrypt(payload, *options.key, options.iv_seed);
    flags |= kFlagEncrypted;
  }
  if (options.checksum) {
    flags |= kFlagChecksummed;
  }

  Writer out;
  for (const char c : kMagic) {
    out.u8(static_cast<std::uint8_t>(c));
  }
  out.u8(flags);
  out.u64(events.size());
  out.u64(payload.size());
  std::vector<std::uint8_t> head = out.take();
  head.insert(head.end(), payload.begin(), payload.end());
  if (options.checksum) {
    const std::uint32_t crc = crc32(payload);
    for (int i = 0; i < 4; ++i) {
      head.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
    }
  }
  return head;
}

BinaryHeader peek_binary_header(std::span<const std::uint8_t> data) {
  if (data.size() < 6 + 1 + 8 + 8 ||
      std::memcmp(data.data(), kMagic, 6) != 0) {
    throw FormatError("binary trace: bad magic");
  }
  Reader r(data.subspan(6));
  BinaryHeader h;
  const std::uint8_t flags = r.u8();
  h.compressed = (flags & kFlagCompressed) != 0;
  h.encrypted = (flags & kFlagEncrypted) != 0;
  h.checksummed = (flags & kFlagChecksummed) != 0;
  h.count = r.u64();
  h.payload_length = r.u64();
  return h;
}

std::vector<TraceEvent> decode_binary(std::span<const std::uint8_t> data,
                                      const std::optional<CipherKey>& key) {
  const BinaryHeader h = peek_binary_header(data);
  const std::size_t header_size = 6 + 1 + 8 + 8;
  const std::size_t crc_size = h.checksummed ? 4 : 0;
  if (data.size() != header_size + h.payload_length + crc_size) {
    throw FormatError("binary trace: length mismatch");
  }
  std::span<const std::uint8_t> payload =
      data.subspan(header_size, h.payload_length);

  if (h.checksummed) {
    std::uint32_t stored = 0;
    for (int i = 0; i < 4; ++i) {
      stored |= static_cast<std::uint32_t>(data[header_size + h.payload_length +
                                                static_cast<std::size_t>(i)])
                << (8 * i);
    }
    if (crc32(payload) != stored) {
      throw FormatError("binary trace: checksum mismatch");
    }
  }

  std::vector<std::uint8_t> buf(payload.begin(), payload.end());
  if (h.encrypted) {
    if (!key.has_value()) {
      throw FormatError("binary trace: encrypted file requires a key");
    }
    buf = cbc_decrypt(buf, *key);
  }
  if (h.compressed) {
    buf = lz_decompress(buf);
  }

  Reader r(buf);
  std::vector<TraceEvent> events;
  events.reserve(h.count);
  for (std::uint64_t i = 0; i < h.count; ++i) {
    events.push_back(decode_event(r));
  }
  if (!r.at_end()) {
    throw FormatError("binary trace: trailing bytes after records");
  }
  return events;
}

bool looks_binary(std::span<const std::uint8_t> data) noexcept {
  return data.size() >= 6 && std::memcmp(data.data(), kMagic, 6) == 0;
}

}  // namespace iotaxo::trace
