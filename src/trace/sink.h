// Event sinks: where interposers deliver trace events.
//
// Sinks decouple capture from retention so that benchmark-scale runs can
// count millions of events without materializing them, while tests and
// examples keep full streams.
//
// Delivery comes in two granularities: per-event (on_event) and batched
// (on_batch, an EventBatch of interned records). on_batch's default
// implementation falls back to per-event delivery, so existing sinks keep
// working; the built-in sinks override it natively so the batched pipeline
// never rebuilds per-event heap objects it does not need. on_batch_owned is
// the ownership-transfer variant: async consumers (trace::AsyncBatchSink)
// move the batch into their flush queue instead of copying it.
//
// Thread-safety contract: sinks are single-threaded by default — nothing
// in this header takes a lock, and the capture layers deliver from the
// (single-threaded) simulation loop. Concurrency is layered on top:
//   - Any sink is data-race-safe behind an AsyncBatchSink, which serializes
//     downstream delivery. Order-sensitive sinks (VectorSink, BatchSink)
//     additionally need AsyncOptions::workers == 1 — with more workers the
//     arrival order at the sink is indeterminate.
//   - Aggregating sinks (SummarySink, CountingSink) tolerate any worker
//     count but still must not be shared by two AsyncBatchSinks (each
//     serializes only its own deliveries).
//   - Sinks that must absorb *concurrent* deliveries (AsyncOptions::
//     concurrent_downstream) have to synchronize internally; ShardedSummary-
//     Sink in trace/async_sink.h is the built-in one — it shards the
//     summary map by hash(rank) so concurrent flush workers do not contend.
#pragma once

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "trace/event.h"
#include "trace/event_batch.h"

namespace iotaxo::trace {

class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(const TraceEvent& ev) = 0;
  /// Batched delivery. Default: explode into per-event delivery so sinks
  /// that only implement on_event observe an identical stream.
  virtual void on_batch(const EventBatch& batch) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      on_event(batch.materialize(i));
    }
  }
  /// Ownership-transfer delivery. The default observes the batch by const
  /// reference and leaves it intact, so inline sinks cost nothing extra and
  /// producers (RankBatcher) can keep reusing the buffer's string pool.
  /// Consuming overrides (AsyncBatchSink) move the batch out, leaving the
  /// caller an empty one.
  virtual void on_batch_owned(EventBatch&& batch) { on_batch(batch); }
  virtual void flush() {}
};

using SinkPtr = std::shared_ptr<EventSink>;

/// Retains every event (tests, replay, anonymization pipelines).
class VectorSink : public EventSink {
 public:
  void on_event(const TraceEvent& ev) override { events_.push_back(ev); }
  void on_batch(const EventBatch& batch) override {
    // No reserve: an exact-size reserve per delivery would defeat
    // push_back's geometric growth across repeated batch flushes.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      events_.push_back(batch.materialize(i));
    }
  }
  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::vector<TraceEvent> take() noexcept {
    return std::move(events_);
  }

 private:
  std::vector<TraceEvent> events_;
};

/// Retains batches in interned form — the columnar twin of VectorSink for
/// consumers (unified store, binary v2 writers) that stay batched.
class BatchSink : public EventSink {
 public:
  void on_event(const TraceEvent& ev) override { batch_.append(ev); }
  void on_batch(const EventBatch& batch) override { batch_.append(batch); }
  [[nodiscard]] const EventBatch& batch() const noexcept { return batch_; }
  /// Hand the accumulated batch over and start a fresh one (a moved-from
  /// batch's pool would lack the id-0-is-empty invariant).
  [[nodiscard]] EventBatch take() {
    return std::exchange(batch_, EventBatch{});
  }

 private:
  EventBatch batch_;
};

/// Aggregates per-call-name counts and total durations — exactly the data
/// LANL-Trace's "Call Summary" output reports (Figure 1, third block).
class SummarySink : public EventSink {
 public:
  struct Entry {
    long long count = 0;
    SimTime total_duration = 0;
    bool operator==(const Entry&) const = default;
  };

  void on_event(const TraceEvent& ev) override {
    Entry& e = entries_[ev.name];
    ++e.count;
    e.total_duration += ev.duration;
    ++total_events_;
  }

  void on_batch(const EventBatch& batch) override {
    // One map lookup per *distinct* name per batch; every other record is
    // a flat-array hit. The scratch is grow-only and epoch-stamped so a
    // delivery costs O(batch), never O(largest name id) — string ids are
    // pool-local, so the epoch bump also invalidates slots left by batches
    // from other pools.
    ++scratch_epoch_;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const EventRecord& rec = batch.record(i);
      if (rec.name >= scratch_.size()) {
        scratch_.resize(static_cast<std::size_t>(rec.name) + 1);
      }
      Slot& slot = scratch_[rec.name];
      if (slot.epoch != scratch_epoch_) {
        slot.entry = &entries_[std::string(batch.name(i))];
        slot.epoch = scratch_epoch_;
      }
      ++slot.entry->count;
      slot.entry->total_duration += rec.duration;
    }
    total_events_ += static_cast<long long>(batch.size());
  }

  [[nodiscard]] const std::map<std::string, Entry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] long long total_events() const noexcept {
    return total_events_;
  }

 private:
  struct Slot {
    Entry* entry = nullptr;
    std::uint64_t epoch = 0;  // valid iff == scratch_epoch_
  };

  std::map<std::string, Entry> entries_;
  std::vector<Slot> scratch_;  // indexed by StrId, grow-only
  std::uint64_t scratch_epoch_ = 0;
  long long total_events_ = 0;
};

/// Counts only; the cheapest possible sink for overhead benchmarking.
class CountingSink : public EventSink {
 public:
  void on_event(const TraceEvent& ev) override {
    ++count_;
    total_bytes_ += ev.bytes;
  }
  void on_batch(const EventBatch& batch) override {
    count_ += static_cast<long long>(batch.size());
    for (const EventRecord& rec : batch.records()) {
      total_bytes_ += rec.bytes;
    }
  }
  [[nodiscard]] long long count() const noexcept { return count_; }
  [[nodiscard]] Bytes total_bytes() const noexcept { return total_bytes_; }

 private:
  long long count_ = 0;
  Bytes total_bytes_ = 0;
};

/// Fans an event out to several sinks.
class MultiSink : public EventSink {
 public:
  explicit MultiSink(std::vector<SinkPtr> sinks) : sinks_(std::move(sinks)) {}
  void on_event(const TraceEvent& ev) override {
    for (const auto& s : sinks_) {
      s->on_event(ev);
    }
  }
  void on_batch(const EventBatch& batch) override {
    for (const auto& s : sinks_) {
      s->on_batch(batch);
    }
  }
  void flush() override {
    for (const auto& s : sinks_) {
      s->flush();
    }
  }

 private:
  std::vector<SinkPtr> sinks_;
};

/// Per-rank batch buffering in front of a sink — the building block every
/// capture layer (ptrace tracers, dynamic interposition, the VFS shim)
/// threads its events through. Events accumulate into one EventBatch per
/// rank; a rank's batch is delivered via on_batch when it reaches
/// `capacity` and any remainder on flush(). With capacity <= 1 events skip
/// the buffer entirely and go straight to on_event, preserving the
/// interleaved per-event observation order for direct/manual use.
class RankBatcher {
 public:
  /// ~64k distinct strings per rank buffer before the pool is rebuilt;
  /// bounds memory at a few MiB per rank while keeping the common
  /// (low-cardinality) vocabulary interned across flushes.
  static constexpr std::size_t kPoolResetThreshold = 1 << 16;

  /// Ranks below this index their buffer straight out of a dense vector —
  /// one bounds-check on the hot path instead of a map walk. Negative or
  /// larger ranks (sentinel ranks, pathological inputs) fall back to a map.
  static constexpr int kDenseRankLimit = 1 << 16;

  RankBatcher(SinkPtr sink, std::size_t capacity)
      : sink_(std::move(sink)), capacity_(capacity == 0 ? 1 : capacity) {}

  void add(const TraceEvent& ev) {
    if (capacity_ <= 1) {
      sink_->on_event(ev);  // unbuffered: no intern/materialize detour
      return;
    }
    EventBatch& batch = bucket(ev.rank);
    batch.append(ev);
    if (batch.size() >= capacity_) {
      deliver(batch);
    }
  }

  /// Deliver every non-empty rank buffer (ascending rank order: sparse
  /// negatives, dense, sparse overflow) and the sink's own flush.
  void flush() {
    const auto non_negative = sparse_.lower_bound(0);
    for (auto it = sparse_.begin(); it != non_negative; ++it) {
      deliver_non_empty(it->second);
    }
    for (const auto& slot : dense_) {
      if (slot) {
        deliver_non_empty(*slot);
      }
    }
    for (auto it = non_negative; it != sparse_.end(); ++it) {
      deliver_non_empty(it->second);
    }
    sink_->flush();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const SinkPtr& sink() const noexcept { return sink_; }

 private:
  [[nodiscard]] EventBatch& bucket(int rank) {
    if (rank >= 0 && rank < kDenseRankLimit) {
      const auto i = static_cast<std::size_t>(rank);
      if (i >= dense_.size()) {
        dense_.resize(i + 1);
      }
      if (!dense_[i]) {
        // unique_ptr slots keep never-seen ranks at pointer cost instead of
        // a default EventBatch (whose pool owns an index) per gap.
        dense_[i] = std::make_unique<EventBatch>();
      }
      return *dense_[i];
    }
    return sparse_[rank];
  }

  void deliver_non_empty(EventBatch& batch) {
    if (!batch.empty()) {
      deliver(batch);
    }
  }

  void deliver(EventBatch& batch) {
    sink_->on_batch_owned(std::move(batch));
    // A consuming sink (async flush queue) leaves the batch moved-from and
    // empty: reset() restores the pool's id-0 invariant. An observing sink
    // leaves it intact: keep the pool so repeated names intern once per
    // rank — unless high-cardinality strings (per-I/O offset args) have
    // grown it past the bound, then start over.
    if (batch.empty() || batch.pool().size() > kPoolResetThreshold) {
      batch.reset();
    } else {
      batch.clear();
    }
  }

  SinkPtr sink_;
  std::size_t capacity_;
  std::vector<std::unique_ptr<EventBatch>> dense_;  // index == rank
  std::map<int, EventBatch> sparse_;
};

}  // namespace iotaxo::trace
