// Event sinks: where interposers deliver trace events.
//
// Sinks decouple capture from retention so that benchmark-scale runs can
// count millions of events without materializing them, while tests and
// examples keep full streams.
//
// Delivery comes in two granularities: per-event (on_event) and batched
// (on_batch, an EventBatch of interned records). on_batch's default
// implementation falls back to per-event delivery, so existing sinks keep
// working; the built-in sinks override it natively so the batched pipeline
// never rebuilds per-event heap objects it does not need.
#pragma once

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "trace/event.h"
#include "trace/event_batch.h"

namespace iotaxo::trace {

class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(const TraceEvent& ev) = 0;
  /// Batched delivery. Default: explode into per-event delivery so sinks
  /// that only implement on_event observe an identical stream.
  virtual void on_batch(const EventBatch& batch) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      on_event(batch.materialize(i));
    }
  }
  virtual void flush() {}
};

using SinkPtr = std::shared_ptr<EventSink>;

/// Retains every event (tests, replay, anonymization pipelines).
class VectorSink : public EventSink {
 public:
  void on_event(const TraceEvent& ev) override { events_.push_back(ev); }
  void on_batch(const EventBatch& batch) override {
    // No reserve: an exact-size reserve per delivery would defeat
    // push_back's geometric growth across repeated batch flushes.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      events_.push_back(batch.materialize(i));
    }
  }
  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::vector<TraceEvent> take() noexcept {
    return std::move(events_);
  }

 private:
  std::vector<TraceEvent> events_;
};

/// Retains batches in interned form — the columnar twin of VectorSink for
/// consumers (unified store, binary v2 writers) that stay batched.
class BatchSink : public EventSink {
 public:
  void on_event(const TraceEvent& ev) override { batch_.append(ev); }
  void on_batch(const EventBatch& batch) override { batch_.append(batch); }
  [[nodiscard]] const EventBatch& batch() const noexcept { return batch_; }
  /// Hand the accumulated batch over and start a fresh one (a moved-from
  /// batch's pool would lack the id-0-is-empty invariant).
  [[nodiscard]] EventBatch take() {
    return std::exchange(batch_, EventBatch{});
  }

 private:
  EventBatch batch_;
};

/// Aggregates per-call-name counts and total durations — exactly the data
/// LANL-Trace's "Call Summary" output reports (Figure 1, third block).
class SummarySink : public EventSink {
 public:
  struct Entry {
    long long count = 0;
    SimTime total_duration = 0;
  };

  void on_event(const TraceEvent& ev) override {
    Entry& e = entries_[ev.name];
    ++e.count;
    e.total_duration += ev.duration;
    ++total_events_;
  }

  void on_batch(const EventBatch& batch) override {
    // One map lookup per *distinct* name per batch; every other record is
    // a flat-array hit. The scratch is grow-only and epoch-stamped so a
    // delivery costs O(batch), never O(largest name id) — string ids are
    // pool-local, so the epoch bump also invalidates slots left by batches
    // from other pools.
    ++scratch_epoch_;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const EventRecord& rec = batch.record(i);
      if (rec.name >= scratch_.size()) {
        scratch_.resize(static_cast<std::size_t>(rec.name) + 1);
      }
      Slot& slot = scratch_[rec.name];
      if (slot.epoch != scratch_epoch_) {
        slot.entry = &entries_[std::string(batch.name(i))];
        slot.epoch = scratch_epoch_;
      }
      ++slot.entry->count;
      slot.entry->total_duration += rec.duration;
    }
    total_events_ += static_cast<long long>(batch.size());
  }

  [[nodiscard]] const std::map<std::string, Entry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] long long total_events() const noexcept {
    return total_events_;
  }

 private:
  struct Slot {
    Entry* entry = nullptr;
    std::uint64_t epoch = 0;  // valid iff == scratch_epoch_
  };

  std::map<std::string, Entry> entries_;
  std::vector<Slot> scratch_;  // indexed by StrId, grow-only
  std::uint64_t scratch_epoch_ = 0;
  long long total_events_ = 0;
};

/// Counts only; the cheapest possible sink for overhead benchmarking.
class CountingSink : public EventSink {
 public:
  void on_event(const TraceEvent& ev) override {
    ++count_;
    total_bytes_ += ev.bytes;
  }
  void on_batch(const EventBatch& batch) override {
    count_ += static_cast<long long>(batch.size());
    for (const EventRecord& rec : batch.records()) {
      total_bytes_ += rec.bytes;
    }
  }
  [[nodiscard]] long long count() const noexcept { return count_; }
  [[nodiscard]] Bytes total_bytes() const noexcept { return total_bytes_; }

 private:
  long long count_ = 0;
  Bytes total_bytes_ = 0;
};

/// Fans an event out to several sinks.
class MultiSink : public EventSink {
 public:
  explicit MultiSink(std::vector<SinkPtr> sinks) : sinks_(std::move(sinks)) {}
  void on_event(const TraceEvent& ev) override {
    for (const auto& s : sinks_) {
      s->on_event(ev);
    }
  }
  void on_batch(const EventBatch& batch) override {
    for (const auto& s : sinks_) {
      s->on_batch(batch);
    }
  }
  void flush() override {
    for (const auto& s : sinks_) {
      s->flush();
    }
  }

 private:
  std::vector<SinkPtr> sinks_;
};

/// Per-rank batch buffering in front of a sink — the building block every
/// capture layer (ptrace tracers, dynamic interposition, the VFS shim)
/// threads its events through. Events accumulate into one EventBatch per
/// rank; a rank's batch is delivered via on_batch when it reaches
/// `capacity` and any remainder on flush(). With capacity <= 1 events skip
/// the buffer entirely and go straight to on_event, preserving the
/// interleaved per-event observation order for direct/manual use.
class RankBatcher {
 public:
  RankBatcher(SinkPtr sink, std::size_t capacity)
      : sink_(std::move(sink)), capacity_(capacity == 0 ? 1 : capacity) {}

  void add(const TraceEvent& ev) {
    if (capacity_ <= 1) {
      sink_->on_event(ev);  // unbuffered: no intern/materialize detour
      return;
    }
    EventBatch& batch = per_rank_[ev.rank];
    batch.append(ev);
    if (batch.size() >= capacity_) {
      deliver(batch);
    }
  }

  /// Deliver every non-empty rank buffer (ascending rank order) and the
  /// sink's own flush.
  void flush() {
    for (auto& [rank, batch] : per_rank_) {
      if (!batch.empty()) {
        deliver(batch);
      }
    }
    sink_->flush();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const SinkPtr& sink() const noexcept { return sink_; }

 private:
  void deliver(EventBatch& batch) {
    sink_->on_batch(batch);
    // Keeping the pool lets repeated names intern once per rank — but
    // high-cardinality strings (per-I/O offset args) would grow it without
    // bound, so start over once it gets big.
    if (batch.pool().size() > kPoolResetThreshold) {
      batch.reset();
    } else {
      batch.clear();
    }
  }

  /// ~64k distinct strings per rank buffer before the pool is rebuilt;
  /// bounds memory at a few MiB per rank while keeping the common
  /// (low-cardinality) vocabulary interned across flushes.
  static constexpr std::size_t kPoolResetThreshold = 1 << 16;

  SinkPtr sink_;
  std::size_t capacity_;
  std::map<int, EventBatch> per_rank_;
};

}  // namespace iotaxo::trace
