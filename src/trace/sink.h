// Event sinks: where interposers deliver trace events.
//
// Sinks decouple capture from retention so that benchmark-scale runs can
// count millions of events without materializing them, while tests and
// examples keep full streams.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "trace/event.h"

namespace iotaxo::trace {

class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(const TraceEvent& ev) = 0;
  virtual void flush() {}
};

using SinkPtr = std::shared_ptr<EventSink>;

/// Retains every event (tests, replay, anonymization pipelines).
class VectorSink : public EventSink {
 public:
  void on_event(const TraceEvent& ev) override { events_.push_back(ev); }
  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::vector<TraceEvent> take() noexcept {
    return std::move(events_);
  }

 private:
  std::vector<TraceEvent> events_;
};

/// Aggregates per-call-name counts and total durations — exactly the data
/// LANL-Trace's "Call Summary" output reports (Figure 1, third block).
class SummarySink : public EventSink {
 public:
  struct Entry {
    long long count = 0;
    SimTime total_duration = 0;
  };

  void on_event(const TraceEvent& ev) override {
    Entry& e = entries_[ev.name];
    ++e.count;
    e.total_duration += ev.duration;
    ++total_events_;
  }

  [[nodiscard]] const std::map<std::string, Entry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] long long total_events() const noexcept {
    return total_events_;
  }

 private:
  std::map<std::string, Entry> entries_;
  long long total_events_ = 0;
};

/// Counts only; the cheapest possible sink for overhead benchmarking.
class CountingSink : public EventSink {
 public:
  void on_event(const TraceEvent& ev) override {
    ++count_;
    total_bytes_ += ev.bytes;
  }
  [[nodiscard]] long long count() const noexcept { return count_; }
  [[nodiscard]] Bytes total_bytes() const noexcept { return total_bytes_; }

 private:
  long long count_ = 0;
  Bytes total_bytes_ = 0;
};

/// Fans an event out to several sinks.
class MultiSink : public EventSink {
 public:
  explicit MultiSink(std::vector<SinkPtr> sinks) : sinks_(std::move(sinks)) {}
  void on_event(const TraceEvent& ev) override {
    for (const auto& s : sinks_) {
      s->on_event(ev);
    }
  }
  void flush() override {
    for (const auto& s : sinks_) {
      s->flush();
    }
  }

 private:
  std::vector<SinkPtr> sinks_;
};

}  // namespace iotaxo::trace
