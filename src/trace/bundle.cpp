#include "trace/bundle.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "trace/text_format.h"
#include "util/error.h"
#include "util/strings.h"

namespace iotaxo::trace {

namespace fsys = std::filesystem;

long long TraceBundle::total_events() const noexcept {
  long long n = 0;
  for (const auto& [name, entry] : call_summary) {
    n += entry.count;
  }
  return n;
}

void TraceBundle::merge_summary(const SummarySink& sink) {
  for (const auto& [name, entry] : sink.entries()) {
    auto& dst = call_summary[name];
    dst.count += entry.count;
    dst.total_duration += entry.total_duration;
  }
}

namespace {

void write_file(const fsys::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw IoError("cannot write " + path.string());
  }
  out << content;
}

std::string read_file(const fsys::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw IoError("cannot read " + path.string());
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

void TraceBundle::save(const std::string& directory) const {
  const fsys::path dir(directory);
  fsys::create_directories(dir);

  {
    std::string meta;
    for (const auto& [k, v] : metadata) {
      meta += k + "\t" + v + "\n";
    }
    write_file(dir / "metadata.tsv", meta);
  }
  for (const RankStream& rs : ranks) {
    TextTraceWriter::StreamMeta m{rs.host, rs.rank, rs.pid};
    write_file(dir / strprintf("rank_%04d.trace", rs.rank),
               TextTraceWriter::render(m, rs.events));
  }
  if (!clock_probes.empty()) {
    TextTraceWriter::StreamMeta m{"(probes)", -1, 0};
    write_file(dir / "clock_probes.trace",
               TextTraceWriter::render(m, clock_probes));
  }
  if (!barrier_events.empty()) {
    TextTraceWriter::StreamMeta m{"(barriers)", -1, 0};
    write_file(dir / "barriers.trace",
               TextTraceWriter::render(m, barrier_events));
  }
  {
    std::string sum = "name\tcount\ttotal_ns\n";
    for (const auto& [name, entry] : call_summary) {
      sum += strprintf("%s\t%lld\t%lld\n", name.c_str(), entry.count,
                       static_cast<long long>(entry.total_duration));
    }
    write_file(dir / "call_summary.tsv", sum);
  }
  if (!dependencies.empty()) {
    std::string deps = "from\tto\tvia\n";
    for (const DependencyEdge& e : dependencies) {
      deps += strprintf("%d\t%d\t%s\n", e.from_rank, e.to_rank, e.via.c_str());
    }
    write_file(dir / "dependencies.tsv", deps);
  }
}

TraceBundle TraceBundle::load(const std::string& directory) {
  const fsys::path dir(directory);
  if (!fsys::is_directory(dir)) {
    throw IoError("trace bundle directory missing: " + directory);
  }
  TraceBundle b;

  const fsys::path meta = dir / "metadata.tsv";
  if (fsys::exists(meta)) {
    for (const std::string& line : split(read_file(meta), '\n')) {
      if (line.empty()) {
        continue;
      }
      const auto kv = split(line, '\t');
      if (kv.size() >= 2) {
        b.metadata[kv[0]] = kv[1];
      }
    }
  }

  std::vector<fsys::path> rank_files;
  for (const auto& entry : fsys::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (starts_with(name, "rank_") && ends_with(name, ".trace")) {
      rank_files.push_back(entry.path());
    }
  }
  std::sort(rank_files.begin(), rank_files.end());
  for (const fsys::path& p : rank_files) {
    const auto parsed = TextTraceParser::parse(read_file(p));
    RankStream rs;
    rs.rank = parsed.meta.rank;
    rs.host = parsed.meta.host;
    rs.pid = parsed.meta.pid;
    rs.events = parsed.events;
    b.ranks.push_back(std::move(rs));
  }

  const fsys::path probes = dir / "clock_probes.trace";
  if (fsys::exists(probes)) {
    b.clock_probes = TextTraceParser::parse(read_file(probes)).events;
  }
  const fsys::path barriers = dir / "barriers.trace";
  if (fsys::exists(barriers)) {
    b.barrier_events = TextTraceParser::parse(read_file(barriers)).events;
  }

  const fsys::path summary = dir / "call_summary.tsv";
  if (fsys::exists(summary)) {
    bool first = true;
    for (const std::string& line : split(read_file(summary), '\n')) {
      if (line.empty() || first) {
        first = false;
        continue;
      }
      const auto cols = split(line, '\t');
      if (cols.size() >= 3) {
        auto& e = b.call_summary[cols[0]];
        e.count = std::strtoll(cols[1].c_str(), nullptr, 10);
        e.total_duration = std::strtoll(cols[2].c_str(), nullptr, 10);
      }
    }
  }

  const fsys::path deps = dir / "dependencies.tsv";
  if (fsys::exists(deps)) {
    bool first = true;
    for (const std::string& line : split(read_file(deps), '\n')) {
      if (line.empty() || first) {
        first = false;
        continue;
      }
      const auto cols = split(line, '\t');
      if (cols.size() >= 3) {
        b.dependencies.push_back(
            DependencyEdge{static_cast<int>(std::strtol(cols[0].c_str(), nullptr, 10)),
                           static_cast<int>(std::strtol(cols[1].c_str(), nullptr, 10)),
                           cols[2]});
      }
    }
  }
  return b;
}

}  // namespace iotaxo::trace
