// TraceBundle: the uniform artifact a tracing run produces, regardless of
// which framework captured it. This realizes the paper's future-work goal
// of "a single trace-data API ... for use while building trace analysis
// tools" (§6): analysis, anonymization and replay all operate on bundles.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "trace/event.h"
#include "trace/sink.h"

namespace iotaxo::trace {

/// A discovered causal dependency between ranks (produced by //TRACE's
/// throttling analysis): `to` cannot pass `via_barrier` until `from` has
/// finished its I/O.
struct DependencyEdge {
  int from_rank = -1;
  int to_rank = -1;
  std::string via;  // label of the synchronization point
  bool operator==(const DependencyEdge&) const = default;
};

struct RankStream {
  int rank = -1;
  std::string host;
  std::uint32_t pid = 0;
  std::vector<TraceEvent> events;
};

class TraceBundle {
 public:
  /// Free-form run metadata (application command line, framework name,
  /// trace format, workload parameters...).
  std::map<std::string, std::string> metadata;

  /// Raw per-rank event streams. May be empty when the capture used a
  /// counting/summary sink (benchmark mode).
  std::vector<RankStream> ranks;

  /// Clock-probe events from skew/drift accounting jobs (LANL-Trace's
  /// pre/post barrier job). Empty for frameworks that don't support it.
  std::vector<TraceEvent> clock_probes;

  /// MPI_Barrier events retained even in summary mode (needed for the
  /// aggregate-timing output and bandwidth windows).
  std::vector<TraceEvent> barrier_events;

  /// Aggregated call summary (always available).
  std::map<std::string, SummarySink::Entry> call_summary;

  /// Inter-rank dependencies (only from frameworks that reveal them).
  std::vector<DependencyEdge> dependencies;

  [[nodiscard]] long long total_events() const noexcept;
  [[nodiscard]] bool has_raw_streams() const noexcept { return !ranks.empty(); }

  /// Merge a per-rank summary into the bundle's call summary.
  void merge_summary(const SummarySink& sink);

  /// Serialize to / from a directory on the host file system (one text
  /// trace per rank plus TSV sidecars). Used by examples and distribution
  /// workflows; throws on I/O failure.
  void save(const std::string& directory) const;
  [[nodiscard]] static TraceBundle load(const std::string& directory);
};

}  // namespace iotaxo::trace
