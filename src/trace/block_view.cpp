#include "trace/block_view.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "trace/scan_kernels.h"
#include "util/compress.h"
#include "util/crc32.h"
#include "util/error.h"
#include "util/metrics.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace iotaxo::trace {

namespace {

/// Handles bound once; every record call is one relaxed load when metrics
/// are disarmed (util/metrics.h). `stored_bytes` is bumped exactly where
/// LazyState::decoded_stored is, so the metric total cross-checks
/// pool_infos() decoded accounting bit-for-bit.
struct DecodeMetrics {
  obs::Histogram& crc_ns = obs::histogram("block.decode.crc_ns");
  obs::Histogram& decrypt_ns = obs::histogram("block.decode.decrypt_ns");
  obs::Histogram& decompress_ns = obs::histogram("block.decode.decompress_ns");
  obs::Counter& stored_bytes = obs::counter("block.decode.stored_bytes");
  obs::Counter& full_blocks = obs::counter("block.decode.full_blocks");
  obs::Counter& hot_blocks = obs::counter("block.decode.hot_blocks");
  obs::Counter& failures = obs::counter("block.decode.failures");
  obs::Counter& waits = obs::counter("block.decode.contention_waits");
};

DecodeMetrics& metrics() {
  static DecodeMetrics m;
  return m;
}

[[nodiscard]] std::uint32_t load_u32(const std::uint8_t* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

[[nodiscard]] std::uint64_t load_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

/// PKCS#7-padded length of an x-byte plaintext (always 1..8 pad bytes).
[[nodiscard]] constexpr std::uint64_t padded_len(std::uint64_t x) noexcept {
  return x + (8 - x % 8);
}

}  // namespace

BlockView::BlockView(std::span<const std::uint8_t> data,
                     std::optional<CipherKey> key)
    : key_(std::move(key)), buffer_(data) {
  header_ = peek_binary_header(data);  // validates magic + header bounds
  if (header_.version != 3) {
    throw FormatError("block view: requires an IOTB3 container");
  }
  if (header_.encrypted && !key_.has_value()) {
    throw FormatError("binary trace v3: encrypted container requires a key");
  }
  // v3 carries no trailing file CRC — the payload is everything after the
  // envelope header. Subtract-and-compare so a hostile payload_length near
  // 2^64 cannot wrap into a passing equality.
  const std::size_t avail = data.size() - kContainerHeaderSize;  // header ok
  if (header_.payload_length != avail) {
    throw FormatError("binary trace: length mismatch");
  }
  const std::span<const std::uint8_t> body = data.subspan(
      kContainerHeaderSize, static_cast<std::size_t>(header_.payload_length));

  // --- head: string table + argument-id table + block_records ------------
  std::size_t pos = 0;
  const auto need = [&](std::size_t n) {
    if (n > body.size() || pos > body.size() - n) {
      throw FormatError("binary trace: truncated record");
    }
  };
  need(4);
  const std::uint32_t nstrings = load_u32(body.data() + pos);
  pos += 4;
  if (nstrings == 0) {
    throw FormatError("binary trace v2: empty string table");
  }
  if (nstrings > body.size() / 4) {
    throw FormatError("binary trace v2: string table exceeds payload");
  }
  strings_.reserve(nstrings);
  for (std::uint32_t i = 0; i < nstrings; ++i) {
    need(4);
    const std::uint32_t len = load_u32(body.data() + pos);
    pos += 4;
    need(len);
    strings_.emplace_back(reinterpret_cast<const char*>(body.data() + pos),
                          len);
    string_bytes_ += len;
    pos += len;
  }
  if (!strings_.front().empty()) {
    throw FormatError("binary trace v2: string id 0 must be empty");
  }
  std::unordered_set<std::string_view> seen(strings_.begin(), strings_.end());
  if (seen.size() != strings_.size()) {
    throw FormatError("binary trace v2: string table is not interned");
  }

  need(8);
  const std::uint64_t nargids = load_u64(body.data() + pos);
  pos += 8;
  if (nargids > (body.size() - pos) / 4) {
    throw FormatError("binary trace v2: arg-id table exceeds payload");
  }
  // args_begin travels through the accessor seam (and materialize) as
  // u32; cap the table so those casts can never wrap.
  if (nargids > UINT32_MAX) {
    throw FormatError("binary trace v3: arg-id table exceeds 2^32 entries");
  }
  args_ = body.subspan(pos, static_cast<std::size_t>(nargids) * 4);
  pos += args_.size();
  if (nargids > 0) {
    const std::uint32_t max_arg_id = scan::max_u32_le(
        args_.data(), static_cast<std::size_t>(nargids));
    if (max_arg_id >= nstrings) {
      throw FormatError(strprintf(
          "binary trace v2: arg string id %u out of range", max_arg_id));
    }
  }

  need(4);
  nominal_ = load_u32(body.data() + pos);
  pos += 4;
  count_ = static_cast<std::size_t>(header_.count);
  if (count_ > 0 && nominal_ == 0) {
    throw FormatError("binary trace v3: block_records must be positive");
  }
  if (nominal_ == 0) {
    nominal_ = 1;  // keep block_of well-defined on empty containers
  }
  if (header_.encrypted) {
    // The head's key check is the known constant encrypted under the
    // container key: reject a wrong key here, at open, instead of letting
    // it surface later as per-block "padding corrupt" decode failures.
    need(8);
    const std::uint64_t key_check = load_u64(body.data() + pos);
    pos += 8;
    if (key_check != xtea_encrypt_block(v3layout::kKeyCheckPlain, *key_)) {
      throw FormatError("binary trace v3: wrong key");
    }
  }

  // --- trailer + footer ---------------------------------------------------
  if (body.size() - pos < v3layout::kTrailerSize) {
    throw FormatError("binary trace v3: truncated footer");
  }
  const std::uint8_t* trailer =
      body.data() + body.size() - v3layout::kTrailerSize;
  const std::uint64_t footer_len = load_u64(trailer);
  const std::uint64_t nblocks = load_u64(trailer + 8);
  const std::uint32_t footer_crc = load_u32(trailer + 16);
  const std::uint32_t footer_magic = load_u32(trailer + 20);
  if (footer_magic != v3layout::kFooterMagic) {
    throw FormatError("binary trace v3: bad footer magic");
  }
  const std::size_t tail_room = body.size() - pos - v3layout::kTrailerSize;
  if (footer_len > tail_room) {
    throw FormatError("binary trace v3: truncated footer");
  }
  footer_ = body.subspan(body.size() - v3layout::kTrailerSize -
                             static_cast<std::size_t>(footer_len),
                         static_cast<std::size_t>(footer_len));
  // The footer CRC is always verified — skip decisions are made on the
  // index before any block is decoded, so it must be trustworthy first.
  if (crc32(footer_) != footer_crc) {
    throw FormatError("binary trace v3: footer checksum mismatch");
  }
  bitmap_bytes_ = (static_cast<std::size_t>(nstrings) + 7) / 8;
  entry_fixed_ = v3layout::kEntryFixedSize +
                 (header_.projected ? v3layout::kEntryProjectedExtra : 0);
  const std::size_t entry_size = entry_fixed_ + bitmap_bytes_;
  // An overstated (or understated) block count cannot pass: the footer
  // must hold exactly nblocks entries, and nblocks must match the record
  // count the envelope declared.
  if (nblocks > footer_.size() / entry_size ||
      footer_.size() != nblocks * entry_size) {
    throw FormatError("binary trace v3: footer size does not match block "
                      "count");
  }
  const std::uint64_t expected_blocks =
      count_ == 0 ? 0 : (count_ + nominal_ - 1) / nominal_;
  if (nblocks != expected_blocks) {
    throw FormatError("binary trace v3: block count does not match record "
                      "count");
  }
  blocks_ = body.subspan(pos, tail_room - static_cast<std::size_t>(footer_len));

  meta_.reserve(static_cast<std::size_t>(nblocks));
  std::uint64_t running_offset = 0;
  std::uint64_t prev_args_begin = 0;
  for (std::uint64_t b = 0; b < nblocks; ++b) {
    const std::uint8_t* e = footer_.data() + b * entry_size;
    BlockMeta m;
    m.offset = load_u64(e + v3layout::kEntryOffset);
    m.stored_len = load_u64(e + v3layout::kEntryStoredLen);
    m.args_begin = load_u64(e + v3layout::kEntryArgsBegin);
    m.records = load_u32(e + v3layout::kEntryRecords);
    m.crc = load_u32(e + v3layout::kEntryCrc);
    m.min_time = static_cast<SimTime>(load_u64(e + v3layout::kEntryMinTime));
    m.max_time = static_cast<SimTime>(load_u64(e + v3layout::kEntryMaxTime));
    m.flags = e[v3layout::kEntryFlags];
    if (header_.projected) {
      m.cold_len = load_u64(e + v3layout::kEntryColdLen);
      m.cold_crc = load_u32(e + v3layout::kEntryColdCrc);
    }
    // Stored groups are contiguous and exactly fill the block region.
    if (m.offset != running_offset ||
        m.stored_len > blocks_.size() - running_offset) {
      throw FormatError("binary trace v3: block table exceeds payload");
    }
    running_offset += m.stored_len;
    if (m.cold_len > blocks_.size() - running_offset) {
      throw FormatError("binary trace v3: block table exceeds payload");
    }
    running_offset += m.cold_len;
    const bool last = b + 1 == nblocks;
    const std::uint64_t expect_records =
        last ? count_ - (nblocks - 1) * nominal_ : nominal_;
    if (m.records != expect_records) {
      throw FormatError("binary trace v3: block record count mismatch");
    }
    // Exact stored-size cross-checks where the transform chain admits
    // them: plain groups are records * stride; encrypted-uncompressed
    // groups are that plus PKCS#7 padding. (Compressed lengths are only
    // bounded, not predicted.)
    const std::uint64_t hot_plain =
        static_cast<std::uint64_t>(m.records) *
        (header_.projected ? hotlayout::kStride : v2layout::kStride);
    const std::uint64_t cold_plain =
        header_.projected
            ? static_cast<std::uint64_t>(m.records) * coldlayout::kStride
            : 0;
    if (!header_.compressed) {
      const std::uint64_t expect_hot =
          header_.encrypted ? padded_len(hot_plain) : hot_plain;
      const std::uint64_t expect_cold =
          header_.projected
              ? (header_.encrypted ? padded_len(cold_plain) : cold_plain)
              : 0;
      if (m.stored_len != expect_hot || m.cold_len != expect_cold) {
        throw FormatError("binary trace v3: block size mismatch");
      }
    } else if (header_.encrypted &&
               (m.stored_len % 8 != 0 || m.stored_len == 0 ||
                (header_.projected &&
                 (m.cold_len % 8 != 0 || m.cold_len == 0)))) {
      throw FormatError("binary trace v3: block size mismatch");
    }
    if (m.args_begin > nargids ||
        (b > 0 && m.args_begin < prev_args_begin) ||
        (b == 0 && m.args_begin != 0)) {
      throw FormatError("binary trace v3: record args out of range");
    }
    prev_args_begin = m.args_begin;
    meta_.push_back(m);
  }
  if (running_offset != blocks_.size()) {
    throw FormatError("binary trace: trailing bytes after records");
  }

  lazy_ = std::make_shared<LazyState>(meta_.size(), header_.projected);
}

std::span<const std::uint8_t> BlockView::decode_group_plain(
    std::size_t b, std::uint32_t group,
    std::vector<std::uint8_t>& owned) const {
  const BlockMeta& m = meta_[b];
  const std::uint64_t off = group == 0 ? m.offset : m.offset + m.stored_len;
  const std::uint64_t len = group == 0 ? m.stored_len : m.cold_len;
  const std::uint32_t crc_expect = group == 0 ? m.crc : m.cold_crc;
  const std::span<const std::uint8_t> stored =
      blocks_.subspan(static_cast<std::size_t>(off),
                      static_cast<std::size_t>(len));
  // CRC over the STORED bytes — the ciphertext when encrypted — before
  // any decryption or decompression touches them.
  if (header_.checksummed) {
    const obs::ScopedTimer timer(metrics().crc_ns);
    if (crc32(stored) != crc_expect) {
      throw FormatError(
          strprintf("binary trace v3: block %zu checksum mismatch", b));
    }
  }
  std::span<const std::uint8_t> plain = stored;
  if (header_.encrypted) {
    const obs::ScopedTimer timer(metrics().decrypt_ns);
    try {
      owned = cbc_decrypt_with_iv(stored, *key_, v3layout::block_iv(b, group));
    } catch (const Error&) {
      throw FormatError(
          strprintf("binary trace v3: block %zu ciphertext is corrupt", b));
    }
    plain = owned;
  }
  if (header_.compressed) {
    const obs::ScopedTimer timer(metrics().decompress_ns);
    try {
      owned = lz_decompress(plain);
    } catch (const Error&) {
      throw FormatError(strprintf("binary trace v3: block %zu is corrupt", b));
    }
    plain = owned;
  }
  const std::size_t stride =
      !header_.projected ? v2layout::kStride
                         : (group == 0 ? hotlayout::kStride
                                       : coldlayout::kStride);
  if (plain.size() != static_cast<std::size_t>(m.records) * stride) {
    throw FormatError(
        strprintf("binary trace v3: block %zu size mismatch", b));
  }
  lazy_->decoded_stored.fetch_add(len, std::memory_order_relaxed);
  metrics().stored_bytes.add(len);
  return plain;
}

void BlockView::validate_full(std::size_t b,
                              std::span<const std::uint8_t> plain) const {
  // Structural validation + index cross-check: the records must agree with
  // everything the footer claimed about this block, or the mini-index was
  // lying and skip decisions made on it were unsound.
  const BlockMeta& m = meta_[b];
  const std::size_t n = m.records;
  const std::uint32_t nstrings = static_cast<std::uint32_t>(strings_.size());
  std::uint64_t args_sum = 0;
  std::vector<std::uint8_t> bitmap(bitmap_bytes_, 0);
  std::uint8_t flags = 0;
  for (std::size_t r = 0; r < n; ++r) {
    const RecordView rec(plain.data() + r * v2layout::kStride);
    if (static_cast<std::uint8_t>(rec.cls()) >
        static_cast<std::uint8_t>(EventClass::kAnnotation)) {
      throw FormatError(strprintf("binary trace v3: block %zu is corrupt", b));
    }
    const StrId name = rec.name();
    if (name >= nstrings || rec.host() >= nstrings || rec.path() >= nstrings) {
      throw FormatError(strprintf("binary trace v3: block %zu is corrupt", b));
    }
    args_sum += rec.args_count();
    bitmap[name >> 3] |= static_cast<std::uint8_t>(1u << (name & 7u));
    if (rec.path() != 0 && rec.fd() >= 0) {
      flags |= v3layout::kBlockHasFdPath;
    }
    if (rec.is_io_call()) {
      flags |= v3layout::kBlockHasIoCall;
      if (rec.bytes() > 0) {
        flags |= v3layout::kBlockHasIoBytes;
      }
    }
  }
  SimTime lo = 0;
  SimTime hi = 0;
  if (n > 0) {
    scan::minmax_stamps(plain.data(), n, &lo, &hi);
  }
  const std::uint64_t args_end = b + 1 < meta_.size()
                                     ? meta_[b + 1].args_begin
                                     : static_cast<std::uint64_t>(
                                           arg_id_count());
  const bool index_ok =
      m.args_begin + args_sum == args_end && lo == m.min_time &&
      hi == m.max_time && flags == m.flags &&
      std::equal(bitmap.begin(), bitmap.end(), bitmap_of(b));
  if (!index_ok) {
    throw FormatError(
        strprintf("binary trace v3: block %zu disagrees with its index", b));
  }
}

void BlockView::validate_hot(std::size_t b,
                             std::span<const std::uint8_t> hot) const {
  // The hot-group subset of validate_full: everything checkable without
  // the cold fields. args_sum and has_fd_path live in the cold group, so
  // those footer claims are cross-checked only by a full-record decode.
  const BlockMeta& m = meta_[b];
  const std::size_t n = m.records;
  const std::uint32_t nstrings = static_cast<std::uint32_t>(strings_.size());
  std::vector<std::uint8_t> bitmap(bitmap_bytes_, 0);
  std::uint8_t flags = 0;
  for (std::size_t r = 0; r < n; ++r) {
    const HotRecordView rec(hot.data() + r * hotlayout::kStride);
    if (static_cast<std::uint8_t>(rec.cls()) >
        static_cast<std::uint8_t>(EventClass::kAnnotation)) {
      throw FormatError(strprintf("binary trace v3: block %zu is corrupt", b));
    }
    const StrId name = rec.name();
    if (name >= nstrings) {
      throw FormatError(strprintf("binary trace v3: block %zu is corrupt", b));
    }
    bitmap[name >> 3] |= static_cast<std::uint8_t>(1u << (name & 7u));
    if (rec.is_io_call()) {
      flags |= v3layout::kBlockHasIoCall;
      if (rec.bytes() > 0) {
        flags |= v3layout::kBlockHasIoBytes;
      }
    }
  }
  SimTime lo = 0;
  SimTime hi = 0;
  if (n > 0) {
    scan::minmax_stamps_hot(hot.data(), n, &lo, &hi);
  }
  constexpr std::uint8_t kHotFlags =
      v3layout::kBlockHasIoCall | v3layout::kBlockHasIoBytes;
  const bool index_ok =
      lo == m.min_time && hi == m.max_time &&
      (flags & kHotFlags) == (m.flags & kHotFlags) &&
      std::equal(bitmap.begin(), bitmap.end(), bitmap_of(b));
  if (!index_ok) {
    throw FormatError(
        strprintf("binary trace v3: block %zu disagrees with its index", b));
  }
}

std::span<const std::uint8_t> BlockView::decode_full_plain(
    std::size_t b, std::vector<std::uint8_t>& owned) const {
  if (!header_.projected) {
    const std::span<const std::uint8_t> plain =
        decode_group_plain(b, 0, owned);
    validate_full(b, plain);
    return plain;
  }
  // Projected: stitch the hot group (cached + validated via its own slot,
  // so a hot failure is sticky in both caches with identical text) and
  // the cold group back into the full 81-byte stride, then run the full
  // cross-check on the stitched records.
  const std::span<const std::uint8_t> hot = hot_bytes(b);
  std::vector<std::uint8_t> cold_owned;
  const std::span<const std::uint8_t> cold =
      decode_group_plain(b, 1, cold_owned);
  const std::size_t n = meta_[b].records;
  owned.resize(n * v2layout::kStride);
  for (std::size_t r = 0; r < n; ++r) {
    const std::uint8_t* h = hot.data() + r * hotlayout::kStride;
    const std::uint8_t* c = cold.data() + r * coldlayout::kStride;
    std::uint8_t* f = owned.data() + r * v2layout::kStride;
    f[v2layout::kCls] = h[hotlayout::kCls];
    std::memcpy(f + v2layout::kName, h + hotlayout::kName, 4);
    std::memcpy(f + v2layout::kArgsCount, c + coldlayout::kArgsCount, 4);
    std::memcpy(f + v2layout::kRet, c + coldlayout::kRet, 8);
    std::memcpy(f + v2layout::kLocalStart, h + hotlayout::kLocalStart, 8);
    std::memcpy(f + v2layout::kDuration, h + hotlayout::kDuration, 8);
    std::memcpy(f + v2layout::kRank, h + hotlayout::kRank, 4);
    std::memcpy(f + v2layout::kNode, c + coldlayout::kNode, 4);
    std::memcpy(f + v2layout::kPid, c + coldlayout::kPid, 4);
    std::memcpy(f + v2layout::kHost, c + coldlayout::kHost, 4);
    std::memcpy(f + v2layout::kPath, c + coldlayout::kPath, 4);
    std::memcpy(f + v2layout::kFd, c + coldlayout::kFd, 4);
    std::memcpy(f + v2layout::kBytes, h + hotlayout::kBytes, 8);
    std::memcpy(f + v2layout::kOffset, c + coldlayout::kOffset, 8);
    std::memcpy(f + v2layout::kUid, c + coldlayout::kUid, 4);
    std::memcpy(f + v2layout::kGid, c + coldlayout::kGid, 4);
  }
  validate_full(b, owned);
  return owned;
}

std::span<const std::uint8_t> BlockView::acquire_slot(
    std::vector<BlockSlot>& slots, std::size_t b, bool hot) const {
  BlockSlot& slot = slots[b];
  LazyState& lz = *lazy_;
  const std::size_t stripe = b % LazyState::kStripes;
  const auto publish = [&](int state) {
    {
      // Flip the state under the stripe mutex so a waiter checking its
      // predicate cannot miss the transition between check and sleep.
      const std::lock_guard<std::mutex> lk(lz.stripe_m[stripe]);
      slot.state.store(state, std::memory_order_release);
    }
    lz.stripe_cv[stripe].notify_all();
  };
  for (;;) {
    const int s = slot.state.load(std::memory_order_acquire);
    if (s == kReady) {
      return slot.bytes;
    }
    if (s == kFailed) {
      throw FormatError(slot.error);
    }
    if (s == kUntouched) {
      int expected = kUntouched;
      if (slot.state.compare_exchange_strong(expected, kDecoding,
                                             std::memory_order_acq_rel)) {
        // This thread won the decode; it runs outside any lock so other
        // blocks decode concurrently on other threads.
        try {
          std::vector<std::uint8_t> owned;
          const std::span<const std::uint8_t> plain =
              hot ? [&] {
                const std::span<const std::uint8_t> p =
                    decode_group_plain(b, 0, owned);
                validate_hot(b, p);
                return p;
              }()
                  : decode_full_plain(b, owned);
          // Moving the vector never relocates its heap buffer, so spans
          // into `owned` stay valid across the move.
          slot.owned = std::move(owned);
          slot.bytes = plain;
          // First-touch decode win: a hot-slot claim is a hot-group-only
          // decode; a full-slot claim decoded (or stitched) whole records.
          (hot ? metrics().hot_blocks : metrics().full_blocks).add(1);
          publish(kReady);
          return slot.bytes;
        } catch (const Error& err) {
          metrics().failures.add(1);
          slot.error = err.what();
          publish(kFailed);
          throw FormatError(slot.error);
        }
      }
      continue;  // lost the claim race; re-read the winner's state
    }
    // kDecoding: park until the winner publishes ready or failed.
    metrics().waits.add(1);
    std::unique_lock<std::mutex> lk(lz.stripe_m[stripe]);
    lz.stripe_cv[stripe].wait(lk, [&] {
      return slot.state.load(std::memory_order_acquire) != kDecoding;
    });
  }
}

std::span<const std::uint8_t> BlockView::decode_block_slow(
    std::size_t b) const {
  return acquire_slot(lazy_->full, b, /*hot=*/false);
}

std::span<const std::uint8_t> BlockView::hot_bytes(std::size_t b) const {
  if (!header_.projected) {
    throw ConfigError("block view: hot_bytes requires a projected container");
  }
  BlockSlot& slot = lazy_->hot[b];
  if (slot.state.load(std::memory_order_acquire) == kReady) {
    return slot.bytes;
  }
  return acquire_slot(lazy_->hot, b, /*hot=*/true);
}

void BlockView::decode_blocks(const std::vector<std::size_t>& blocks,
                              std::size_t threads, bool hot_only) const {
  if (blocks.size() <= 1 || threads <= 1) {
    return;  // the caller's serial pass decodes (and throws) in order
  }
  const bool hot = hot_only && header_.projected;
  parallel_for(
      blocks.size(),
      [&](std::size_t i) {
        try {
          if (hot) {
            (void)hot_bytes(blocks[i]);
          } else {
            (void)block_bytes(blocks[i]);
          }
        } catch (const Error&) {
          // Recorded sticky in the slot; the serial scan that follows
          // rethrows it deterministically on first touch.
        }
      },
      std::min(threads, blocks.size()));
}

std::string_view BlockView::string(StrId id) const {
  if (id >= strings_.size()) {
    throw FormatError(strprintf("string pool: id %u out of range (size %zu)",
                                id, strings_.size()));
  }
  return strings_[id];
}

std::optional<StrId> BlockView::find_string(std::string_view s) const
    noexcept {
  for (std::size_t id = 0; id < strings_.size(); ++id) {
    if (strings_[id] == s) {
      return static_cast<StrId>(id);
    }
  }
  return std::nullopt;
}

StrId BlockView::arg_id(std::size_t j) const {
  if (j >= arg_id_count()) {
    throw FormatError(
        strprintf("binary trace v2: arg index %zu out of range", j));
  }
  return load_u32(args_.data() + j * 4);
}

TraceEvent BlockView::materialize(std::size_t i,
                                  std::uint32_t args_begin) const {
  const RecordView rec = record(i);
  TraceEvent ev;
  ev.cls = rec.cls();
  ev.name = std::string(string(rec.name()));
  const std::uint32_t argc = rec.args_count();
  ev.args.reserve(argc);
  for (std::uint32_t j = 0; j < argc; ++j) {
    ev.args.emplace_back(string(arg_id(args_begin + j)));
  }
  ev.ret = rec.ret();
  ev.local_start = rec.local_start();
  ev.duration = rec.duration();
  ev.rank = rec.rank();
  ev.node = rec.node();
  ev.pid = rec.pid();
  ev.host = std::string(string(rec.host()));
  ev.path = std::string(string(rec.path()));
  ev.fd = rec.fd();
  ev.bytes = rec.bytes();
  ev.offset = rec.offset();
  ev.uid = rec.uid();
  ev.gid = rec.gid();
  return ev;
}

EventBatch BlockView::to_batch() const {
  EventBatch batch;
  StringPool& pool = batch.pool();
  pool.reserve(strings_.size());
  for (const std::string_view s : strings_) {
    pool.intern(s);
  }
  const std::size_t nargids = arg_id_count();
  std::vector<StrId> arg_ids;
  arg_ids.reserve(nargids);
  for (std::size_t j = 0; j < nargids; ++j) {
    arg_ids.push_back(load_u32(args_.data() + j * 4));
  }
  batch.reserve(count_, nargids);
  for_each([&](std::size_t /*i*/, const RecordView& rec,
               std::uint32_t args_begin) {
    batch.append_raw(rec.to_record(),
                     std::span<const StrId>(arg_ids).subspan(
                         args_begin, rec.args_count()));
  });
  return batch;
}

}  // namespace iotaxo::trace
