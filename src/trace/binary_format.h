// Binary trace formats (the Tracefs output path): length-prefixed records
// with optional buffering, CRC-32 integrity, LZ compression and XTEA-CBC
// encryption — the feature set §4.2 of the paper attributes to Tracefs
// ("Binary, with optional checksumming, compression, encryption, or
// buffering").
//
// Three container versions share one outer envelope:
//   magic   "IOTB1\n", "IOTB2\n" or "IOTB3\n"   6 bytes
//   flags   u8  (bit0 compressed, bit1 encrypted, bit2 checksummed,
//                bit4 indexed — v2-only pool-index footer; see below)
//   count   u64 LE   number of event records
//   paylen  u64 LE   payload length (everything after this header)
//   payload
//   crc     u32 LE   CRC-32 of payload (v1/v2 only, present iff bit2 —
//                    v3 checksums per block instead; see below)
//
// v1 body (IOTB1): `count` self-delimiting records, each repeating every
// string it carries (name, args, host, path) inline. The v1/v2 payload is
// the body after compression then encryption (in that order).
//
// v2 body (IOTB2): the batch container. Strings are serialized exactly once
// in an interned table, records are fixed-size and reference the table by
// id — for repetitive traces this shrinks the body and makes decoding an
// EventBatch allocation-light:
//   nstrings  u32 LE                     string-table size (id 0 = "")
//   strings   nstrings x (u32 len + bytes), in id order
//   nargids   u64 LE                     length of the argument-id table
//   argids    nargids x u32 LE           interned ids, all records' args
//   records   count x fixed record (81 bytes, offsets in record_view.h):
//             u8  cls
//             u32 name-id
//             u32 args-count   (args slices are contiguous in record
//                              order; begin = running sum of counts)
//             i64 ret          i64 local_start  i64 duration
//             i32 rank         i32 node         u32 pid
//             u32 host-id      u32 path-id      i32 fd
//             i64 bytes        i64 offset
//             u32 uid          u32 gid
//
// v2 index footer (flags bit4, BinaryOptions::index_footer): the store's
// pool index serialized after the record section, so readers that file the
// container (ingest_view, attach_dir) adopt it instead of scanning every
// record — the v2 counterpart of v3's per-block mini-indexes. Layout
// (offsets in v2footer below):
//   footer  fixed fields + name bitmap:
//             u8  flags        bit0 any, bit1 has_fd_path, bit2 has_io_bytes
//             i64 min_time     min/max local_start over all records
//             i64 max_time     (meaningful iff bit0 any)
//             u64 records      record count (must equal the envelope count)
//             u32 nstrings     string-table size (must match the body's)
//             name bitmap      (nstrings + 7) / 8 bytes; bit id set iff
//                              some record's *name* is string id `id`
//   trailer (16 bytes, last in the body)
//             footer_len  u64  byte length of the footer region
//             footer_crc  u32  CRC-32 of the footer region (always present,
//                              independent of the deferred payload CRC, so
//                              adoption can trust the index without hashing
//                              the whole payload)
//             magic       u32  v2footer::kFooterMagic
// The footer rides inside the payload, so the envelope CRC and the
// durable-write protocol cover it like any other body bytes. Readers
// without bit4 knowledge never see it (the bit is rejected as unknown);
// footer-less files keep decoding exactly as before. A corrupt or
// truncated footer never fails an open — readers fall back to scanning
// records (parse_v2_index_footer returns nullopt with the reason).
//
// v3 body (IOTB3): the *block-structured* container — the v2 record section
// split into fixed-record-count blocks that are independently compressed,
// checksummed and (flags bit1) encrypted, plus a per-block mini-index, so
// compressed cold storage stays queryable without decoding whole files
// (trace::BlockView touches only the blocks a query's window/name filter
// reaches). Layout:
//   head    (never compressed or encrypted)
//     nstrings       u32 LE   + strings, exactly as v2
//     nargids        u64 LE   + argids,  exactly as v2
//     block_records  u32 LE   records per block (> 0; every block except
//                             the last holds exactly this many, so record
//                             i lives in block i / block_records)
//     key_check      u64 LE   ONLY when flags bit1 (encrypted):
//                             xtea_encrypt_block(kKeyCheckPlain, key), so
//                             a wrong key is rejected at open rather than
//                             surfacing as per-block padding corruption
//   blocks  concatenated stored blocks. Plain form: the block's records —
//           either one group at the 81-byte v2 stride, or (flags bit3,
//           "projected") two column groups stored back to back: a hot
//           group at the 33-byte hotlayout stride (cls, name, rank,
//           local_start, duration, bytes — everything the windowed /
//           rate / call-stats / DFG scans read) followed by a cold group
//           at the 48-byte coldlayout stride (the remaining v2 fields).
//           Each group's stored form is lz_compress(plain) when bit0 is
//           set, then cbc_encrypt_with_iv(..., block_iv(b, group)) when
//           bit1 is set (IV derived from the block ordinal + group; not
//           stored). Narrow queries decode only the hot group.
//   footer  nblocks fixed entries (offsets in v3layout below):
//             u64 offset       byte offset of the stored block in `blocks`
//             u64 stored_len   stored byte length (projected: of the HOT
//                              group; the cold group follows contiguously)
//             u64 args_begin   running sum of args_count at block start
//             u32 records      record count (== block_records except last)
//             u32 crc          CRC-32 of the STORED bytes (0 when bit2 off;
//                              projected: of the hot group's stored bytes)
//             i64 min_time     min/max local_start over the block
//             i64 max_time
//             u8  flags        bit0 has_fd_path, bit1 has_io_bytes,
//                              bit2 has_io_call (mirrors the store's
//                              PoolIndex, per block)
//             cold_len  u64    ONLY when flags bit3 (projected): the cold
//             cold_crc  u32    group's stored length + CRC
//             name bitmap      (nstrings + 7) / 8 bytes; bit id is set iff
//                              some record's *name* is string id `id`
//   trailer (24 bytes, last in the payload)
//     footer_len  u64 LE   byte length of the footer region
//     nblocks     u64 LE
//     footer_crc  u32 LE   CRC-32 of the footer region (always present —
//                          the index must be trustworthy before any block
//                          is trusted)
//     magic       u32 LE   v3layout::kFooterMagic
// flags bit2 (checksummed) governs the per-block CRCs; bit1 (encrypted)
// encrypts each stored group AFTER compression, leaving head, footer and
// trailer plaintext so index skips still work without the key; bit3
// (projected, v3-only) selects the two-column-group record layout.
//
// Version / read-path compatibility matrix:
//   container                 decode_binary_batch  BatchView   BlockView
//   v1 (any flags)            yes                  no          no
//   v2 plain / checksummed    yes                  yes (CRC    no
//                                                  lazy, on
//                                                  first touch)
//   v2 compressed/encrypted   yes                  no          no
//   v2 indexed (footer)       yes (footer          yes (footer no
//                             skipped)             parsed, bad
//                                                  footer =
//                                                  scan fallback)
//   v3 plain / checksummed /  yes                  no          yes (blocks
//      compressed                                              decoded +
//                                                              verified
//                                                              lazily)
//   v3 encrypted              yes (with key)       no          yes (key at
//                                                              open; groups
//                                                              decrypted
//                                                              lazily)
//   v3 projected              yes                  no          yes (hot
//                                                              group alone
//                                                              serves
//                                                              narrow
//                                                              queries)
//
// encode_binary writes v1 (kept for compatibility), encode_binary_v2 the
// batch container, encode_binary_v3 the block container; decode_binary and
// decode_binary_batch accept all three.
//
// Durability / recovery protocol
// ------------------------------
// Containers that must survive a crash (cold-tier eras, the store
// manifest, `--binary-out` files) go through write_binary_file:
//
//   1. the full container is written to `<name>.tmp`
//   2. the tmp file is fsync'd and closed
//   3. `<name>.tmp` is atomically renamed onto `<name>`
//   4. the parent directory is fsync'd so the rename itself is durable
//
// A crash at any step leaves either the old state or the new file —
// never a half-written `<name>` (a torn write can only strand a `.tmp`,
// which recovery deletes). Each step carries a fail::point
// ("<prefix>.write/.fsync/.rename/.dirsync") so the crash-matrix tests
// can kill the protocol at every stage.
//
// Store directories additionally carry a `MANIFEST.iotm`
// (analysis::StoreManifest, written with the same protocol): magic
// "IOTM1\n", the next unused era sequence number, and one entry per
// committed container (file name, byte size, CRC-32 of the full file
// bytes, era seq), sealed by a trailing CRC-32 of everything before it.
// The manifest rename is the commit point for a cold-compaction era:
// recovery (UnifiedTraceStore::attach_dir, `iotaxo fsck`) deletes
// orphaned `.tmp` files, serves exactly the manifest's entries that
// still match their recorded size + CRC and open cleanly, and
// quarantines (reports without serving) everything else — a container
// present on disk but absent from the manifest is an uncommitted
// leftover from a crash between the era rename and the manifest rename.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "trace/event_batch.h"
#include "util/cipher.h"

namespace iotaxo::trace {

/// Size of the shared container envelope header: magic + flags + count +
/// paylen. The payload starts at this offset (the CRC, when present, sits
/// after the payload). Shared by the codec and the zero-copy view layer.
inline constexpr std::size_t kContainerHeaderSize = 6 + 1 + 8 + 8;

/// Byte layout of the IOTB3 footer (see the container comment above).
/// Shared by the encoder, trace::BlockView and the corruption tests.
namespace v3layout {
/// Per-block footer entry: fixed fields, then the name-presence bitmap of
/// (nstrings + 7) / 8 bytes. Offsets are within the entry.
inline constexpr std::size_t kEntryOffset = 0;      // u64
inline constexpr std::size_t kEntryStoredLen = 8;   // u64
inline constexpr std::size_t kEntryArgsBegin = 16;  // u64
inline constexpr std::size_t kEntryRecords = 24;    // u32
inline constexpr std::size_t kEntryCrc = 28;        // u32
inline constexpr std::size_t kEntryMinTime = 32;    // i64
inline constexpr std::size_t kEntryMaxTime = 40;    // i64
inline constexpr std::size_t kEntryFlags = 48;      // u8
inline constexpr std::size_t kEntryFixedSize = 49;  // bitmap follows
/// Projected containers append two cold-group fields after kEntryFlags;
/// the bitmap then follows at kEntryFixedSize + kEntryProjectedExtra.
inline constexpr std::size_t kEntryColdLen = 49;        // u64
inline constexpr std::size_t kEntryColdCrc = 57;        // u32
inline constexpr std::size_t kEntryProjectedExtra = 12;

inline constexpr std::uint8_t kBlockHasFdPath = 0x01;
inline constexpr std::uint8_t kBlockHasIoBytes = 0x02;
inline constexpr std::uint8_t kBlockHasIoCall = 0x04;

/// Trailer: footer_len u64 + nblocks u64 + footer_crc u32 + magic u32.
inline constexpr std::size_t kTrailerSize = 24;
inline constexpr std::uint32_t kFooterMagic = 0x33425846u;  // "FXB3" LE

inline constexpr std::uint32_t kDefaultBlockRecords = 4096;

/// Known plaintext whose XTEA encryption under the container key is stored
/// in the encrypted head (key_check): lets BlockView reject a wrong key at
/// open instead of at first block touch.
inline constexpr std::uint64_t kKeyCheckPlain = 0x33425846'1077B3AAULL;

/// Per-(block, column-group) CBC IV, a pure function of the ordinals
/// (splitmix64 finalizer) — the decoder re-derives it, nothing is stored
/// with the ciphertext. Group 0 is the hot (or only) group, group 1 cold.
[[nodiscard]] constexpr std::uint64_t block_iv(std::uint64_t block,
                                               std::uint32_t group) noexcept {
  std::uint64_t x = 0x1077B3C0DEC0FFEEULL ^ (block << 1) ^ group;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}
}  // namespace v3layout

/// Byte layout of the optional IOTB2 index footer (see the container
/// comment above). Shared by the encoder, trace::BatchView and the
/// corruption tests. Offsets are within the footer region.
namespace v2footer {
inline constexpr std::size_t kFlags = 0;      // u8
inline constexpr std::size_t kMinTime = 1;    // i64
inline constexpr std::size_t kMaxTime = 9;    // i64
inline constexpr std::size_t kRecords = 17;   // u64
inline constexpr std::size_t kNStrings = 25;  // u32
inline constexpr std::size_t kFixedSize = 29; // name bitmap follows

inline constexpr std::uint8_t kAny = 0x01;
inline constexpr std::uint8_t kHasFdPath = 0x02;
inline constexpr std::uint8_t kHasIoBytes = 0x04;

/// Trailer: footer_len u64 + footer_crc u32 + magic u32.
inline constexpr std::size_t kTrailerSize = 16;
inline constexpr std::uint32_t kFooterMagic = 0x32495846u;  // "FXI2" LE
}  // namespace v2footer

/// A v2 index footer in parsed form: everything UnifiedTraceStore's pool
/// index needs except the interned transfer-call ids (those are looked up
/// in the string table at adoption time).
struct PoolIndexFooter {
  bool any = false;
  SimTime min_time = 0;
  SimTime max_time = 0;
  bool has_fd_path = false;
  bool has_io_bytes = false;
  std::uint64_t records = 0;
  /// Name-presence filter, one bit per string id, (nstrings + 7) / 8 bytes.
  std::vector<std::uint8_t> name_bitmap;

  [[nodiscard]] bool has_name(StrId id) const noexcept {
    return (id >> 3) < name_bitmap.size() &&
           ((name_bitmap[id >> 3] >> (id & 7u)) & 1u) != 0;
  }
};

/// Parse the index-footer region of an indexed v2 body — `tail` is
/// everything after the `count x 81`-byte record section. Validates the
/// footer's own CRC and cross-checks the record/string counts against the
/// envelope, so a corrupt, truncated or mismatched footer degrades to
/// nullopt (with the reason in `*error` when given) rather than an open
/// failure; callers fall back to scanning records.
[[nodiscard]] std::optional<PoolIndexFooter> parse_v2_index_footer(
    std::span<const std::uint8_t> tail, std::uint64_t expect_records,
    std::uint32_t expect_nstrings, std::string* error = nullptr);

struct BinaryOptions {
  bool compress = false;
  bool encrypt = false;
  bool checksum = true;
  /// Columnar projection (v3 only): store each block as a hot + cold
  /// column group so narrow queries decode a fraction of the bytes.
  /// Rejected (ConfigError) by the v1/v2 encoders.
  bool project = false;
  /// Append the pool-index footer (v2 only; flags bit4) so readers adopt
  /// the index instead of scanning records. Ignored by the v1/v3 encoders
  /// (v3 always carries per-block mini-indexes).
  bool index_footer = false;
  /// Required when encrypt is true.
  std::optional<CipherKey> key;
  /// IV derivation seed for v1/v2 whole-body encryption (vary per file).
  /// v3 derives per-block IVs from the block ordinal instead.
  std::uint64_t iv_seed = 0x1010;
};

/// Serialize events to the v1 (IOTB1) container.
[[nodiscard]] std::vector<std::uint8_t> encode_binary(
    const std::vector<TraceEvent>& events, const BinaryOptions& options);

/// Serialize a batch to the v2 (IOTB2) container: string table once,
/// fixed-size records referencing it.
[[nodiscard]] std::vector<std::uint8_t> encode_binary_v2(
    const EventBatch& batch, const BinaryOptions& options);

/// Convenience: intern `events` into a batch, then encode as v2.
[[nodiscard]] std::vector<std::uint8_t> encode_binary_v2(
    const std::vector<TraceEvent>& events, const BinaryOptions& options);

/// Serialize a batch to the v3 (IOTB3) block container: per-block
/// compression, CRC and encryption plus the footer mini-index, with
/// optional columnar projection (options.project). Throws ConfigError when
/// options.encrypt is set without a key or block_records is 0.
[[nodiscard]] std::vector<std::uint8_t> encode_binary_v3(
    const EventBatch& batch, const BinaryOptions& options,
    std::uint32_t block_records = v3layout::kDefaultBlockRecords);

/// Convenience: intern `events` into a batch, then encode as v3.
[[nodiscard]] std::vector<std::uint8_t> encode_binary_v3(
    const std::vector<TraceEvent>& events, const BinaryOptions& options,
    std::uint32_t block_records = v3layout::kDefaultBlockRecords);

/// Parse a v1, v2 or v3 container; verifies CRCs, decrypts, decompresses.
/// `key` must be supplied for encrypted files. Throws FormatError on any
/// corruption or a wrong key.
[[nodiscard]] std::vector<TraceEvent> decode_binary(
    std::span<const std::uint8_t> data,
    const std::optional<CipherKey>& key = std::nullopt);

/// Parse a container straight into batch form. v2/v3 payloads decode
/// without rebuilding per-event heap objects; v1 payloads are decoded
/// per-event and re-interned.
[[nodiscard]] EventBatch decode_binary_batch(
    std::span<const std::uint8_t> data,
    const std::optional<CipherKey>& key = std::nullopt);

/// Durably write `bytes` to `path` via the tmp + fsync + atomic-rename +
/// directory-fsync protocol documented above. `point_prefix` names the
/// fail::point sites ("<prefix>.write", ".fsync", ".rename", ".dirsync")
/// so distinct write phases (era spill vs manifest) get distinct
/// failpoints. Throws IoError on any failure; a torn `<path>.tmp` may be
/// left behind for recovery to delete, but `path` itself is never
/// half-written.
void write_binary_file(const std::string& path,
                       std::span<const std::uint8_t> bytes,
                       std::string_view point_prefix = "binary.file");

/// Inspect a container's flags without decoding the payload.
struct BinaryHeader {
  int version = 1;  // 1 = IOTB1, 2 = IOTB2, 3 = IOTB3
  bool compressed = false;
  bool encrypted = false;
  bool checksummed = false;
  bool projected = false;  // v3 columnar projection (flags bit3)
  bool indexed = false;    // v2 pool-index footer (flags bit4)
  std::uint64_t count = 0;
  std::uint64_t payload_length = 0;
};
[[nodiscard]] BinaryHeader peek_binary_header(
    std::span<const std::uint8_t> data);

/// Heuristic used by the taxonomy classifier to label a framework's output
/// format: true if the buffer starts with any of the binary magics.
[[nodiscard]] bool looks_binary(std::span<const std::uint8_t> data) noexcept;

}  // namespace iotaxo::trace
