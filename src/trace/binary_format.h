// Binary trace format (the Tracefs output path): length-prefixed records
// with optional buffering, CRC-32 integrity, LZ compression and XTEA-CBC
// encryption — the feature set §4.2 of the paper attributes to Tracefs
// ("Binary, with optional checksumming, compression, encryption, or
// buffering").
//
// Layout:
//   magic   "IOTB1\n"                       6 bytes
//   flags   u8  (bit0 compressed, bit1 encrypted, bit2 checksummed)
//   count   u64 LE   number of records
//   paylen  u64 LE   transformed payload length
//   payload bytes (records, then compressed, then encrypted — in that order)
//   crc     u32 LE   CRC-32 of transformed payload (present iff bit2)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "trace/event.h"
#include "util/cipher.h"

namespace iotaxo::trace {

struct BinaryOptions {
  bool compress = false;
  bool encrypt = false;
  bool checksum = true;
  /// Required when encrypt is true.
  std::optional<CipherKey> key;
  /// IV derivation seed for encryption (vary per file).
  std::uint64_t iv_seed = 0x1010;
};

/// Serialize events to the binary container.
[[nodiscard]] std::vector<std::uint8_t> encode_binary(
    const std::vector<TraceEvent>& events, const BinaryOptions& options);

/// Parse a binary container; verifies CRC, decrypts, decompresses.
/// `key` must be supplied for encrypted files. Throws FormatError on any
/// corruption or a wrong key.
[[nodiscard]] std::vector<TraceEvent> decode_binary(
    std::span<const std::uint8_t> data,
    const std::optional<CipherKey>& key = std::nullopt);

/// Inspect a container's flags without decoding the payload.
struct BinaryHeader {
  bool compressed = false;
  bool encrypted = false;
  bool checksummed = false;
  std::uint64_t count = 0;
  std::uint64_t payload_length = 0;
};
[[nodiscard]] BinaryHeader peek_binary_header(
    std::span<const std::uint8_t> data);

/// Heuristic used by the taxonomy classifier to label a framework's output
/// format: true if the buffer starts with the binary magic.
[[nodiscard]] bool looks_binary(std::span<const std::uint8_t> data) noexcept;

}  // namespace iotaxo::trace
