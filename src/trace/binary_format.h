// Binary trace formats (the Tracefs output path): length-prefixed records
// with optional buffering, CRC-32 integrity, LZ compression and XTEA-CBC
// encryption — the feature set §4.2 of the paper attributes to Tracefs
// ("Binary, with optional checksumming, compression, encryption, or
// buffering").
//
// Two container versions share one outer layout:
//   magic   "IOTB1\n" or "IOTB2\n"             6 bytes
//   flags   u8  (bit0 compressed, bit1 encrypted, bit2 checksummed)
//   count   u64 LE   number of event records
//   paylen  u64 LE   transformed payload length
//   payload bytes (body, then compressed, then encrypted — in that order)
//   crc     u32 LE   CRC-32 of transformed payload (present iff bit2)
//
// v1 body (IOTB1): `count` self-delimiting records, each repeating every
// string it carries (name, args, host, path) inline.
//
// v2 body (IOTB2): the batch container. Strings are serialized exactly once
// in an interned table, records are fixed-size and reference the table by
// id — for repetitive traces this shrinks the body and makes decoding an
// EventBatch allocation-light:
//   nstrings  u32 LE                     string-table size (id 0 = "")
//   strings   nstrings x (u32 len + bytes), in id order
//   nargids   u64 LE                     length of the argument-id table
//   argids    nargids x u32 LE           interned ids, all records' args
//   records   count x fixed record (81 bytes, offsets in record_view.h):
//             u8  cls
//             u32 name-id
//             u32 args-count   (args slices are contiguous in record
//                              order; begin = running sum of counts)
//             i64 ret          i64 local_start  i64 duration
//             i32 rank         i32 node         u32 pid
//             u32 host-id      u32 path-id      i32 fd
//             i64 bytes        i64 offset
//             u32 uid          u32 gid
//
// encode_binary writes v1 (kept for compatibility), encode_binary_v2 writes
// the batch container; decode_binary and decode_binary_batch accept both.
//
// Zero-copy view compatibility (PR 3): because the v2 record section is
// fixed-stride and the string table is length-prefixed in id order, an
// IOTB2 container whose compressed (bit0) and encrypted (bit1) flags are
// BOTH clear can be read in place through trace::BatchView (record_view.h)
// without decoding into an EventBatch. The checksummed flag (bit2) is
// view-compatible — the CRC is verified once when the view opens. Any
// other combination (compressed, encrypted, or a v1 body, whose records
// are self-delimiting and variable-length) is not view-able and must go
// through decode_binary_batch.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "trace/event_batch.h"
#include "util/cipher.h"

namespace iotaxo::trace {

/// Size of the shared container envelope header: magic + flags + count +
/// paylen. The payload starts at this offset (the CRC, when present, sits
/// after the payload). Shared by the codec and the zero-copy view layer.
inline constexpr std::size_t kContainerHeaderSize = 6 + 1 + 8 + 8;

struct BinaryOptions {
  bool compress = false;
  bool encrypt = false;
  bool checksum = true;
  /// Required when encrypt is true.
  std::optional<CipherKey> key;
  /// IV derivation seed for encryption (vary per file).
  std::uint64_t iv_seed = 0x1010;
};

/// Serialize events to the v1 (IOTB1) container.
[[nodiscard]] std::vector<std::uint8_t> encode_binary(
    const std::vector<TraceEvent>& events, const BinaryOptions& options);

/// Serialize a batch to the v2 (IOTB2) container: string table once,
/// fixed-size records referencing it.
[[nodiscard]] std::vector<std::uint8_t> encode_binary_v2(
    const EventBatch& batch, const BinaryOptions& options);

/// Convenience: intern `events` into a batch, then encode as v2.
[[nodiscard]] std::vector<std::uint8_t> encode_binary_v2(
    const std::vector<TraceEvent>& events, const BinaryOptions& options);

/// Parse a v1 or v2 container; verifies CRC, decrypts, decompresses.
/// `key` must be supplied for encrypted files. Throws FormatError on any
/// corruption or a wrong key.
[[nodiscard]] std::vector<TraceEvent> decode_binary(
    std::span<const std::uint8_t> data,
    const std::optional<CipherKey>& key = std::nullopt);

/// Parse a container straight into batch form. v2 payloads decode without
/// rebuilding per-event heap objects; v1 payloads are decoded per-event and
/// re-interned.
[[nodiscard]] EventBatch decode_binary_batch(
    std::span<const std::uint8_t> data,
    const std::optional<CipherKey>& key = std::nullopt);

/// Inspect a container's flags without decoding the payload.
struct BinaryHeader {
  int version = 1;  // 1 = IOTB1, 2 = IOTB2
  bool compressed = false;
  bool encrypted = false;
  bool checksummed = false;
  std::uint64_t count = 0;
  std::uint64_t payload_length = 0;
};
[[nodiscard]] BinaryHeader peek_binary_header(
    std::span<const std::uint8_t> data);

/// Heuristic used by the taxonomy classifier to label a framework's output
/// format: true if the buffer starts with either binary magic.
[[nodiscard]] bool looks_binary(std::span<const std::uint8_t> data) noexcept;

}  // namespace iotaxo::trace
