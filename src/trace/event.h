// The trace event model — the common vocabulary shared by every tracing
// framework in the toolkit (the paper's §6 "single trace-data API" future
// work, implemented here).
//
// An event is one observed call: a syscall (strace view), a library call
// (ltrace / dynamic-interposition view), a VFS operation (Tracefs view), or
// bookkeeping records (clock probes for skew/drift accounting,
// annotations). Timestamps are *node-local* nanoseconds — frameworks that
// account for skew and drift must correct them via analysis::SkewDriftModel.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.h"

namespace iotaxo::trace {

enum class EventClass : std::uint8_t {
  kSyscall = 0,
  kLibraryCall = 1,
  kFsOperation = 2,
  kClockProbe = 3,
  kAnnotation = 4,
};

[[nodiscard]] const char* to_string(EventClass cls) noexcept;
[[nodiscard]] EventClass event_class_from_string(const std::string& s);

struct TraceEvent {
  EventClass cls = EventClass::kSyscall;
  /// Call name as a tracer prints it: "SYS_write", "MPI_File_open",
  /// "vfs_write", "clock_probe", ...
  std::string name;
  /// Pre-rendered argument strings, in call order.
  std::vector<std::string> args;
  long long ret = 0;

  /// Node-local clock at call entry (nanoseconds; includes the node's
  /// wall-clock epoch, skew and drift).
  SimTime local_start = 0;
  SimTime duration = 0;

  int rank = -1;
  int node = -1;
  std::uint32_t pid = 0;
  std::string host;

  // Semantic I/O fields (populated where applicable so that replay and
  // anonymization do not need to re-parse args).
  std::string path;
  int fd = -1;
  Bytes bytes = 0;
  Bytes offset = -1;
  std::uint32_t uid = 0;
  std::uint32_t gid = 0;

  [[nodiscard]] bool is_io_call() const noexcept {
    return cls == EventClass::kSyscall || cls == EventClass::kLibraryCall ||
           cls == EventClass::kFsOperation;
  }

  bool operator==(const TraceEvent&) const = default;
};

/// Factory helpers used by the runtime and interposers.
[[nodiscard]] TraceEvent make_syscall(std::string name,
                                      std::vector<std::string> args,
                                      long long ret);
[[nodiscard]] TraceEvent make_libcall(std::string name,
                                      std::vector<std::string> args,
                                      long long ret);

}  // namespace iotaxo::trace
