// Tracefs's declarative trace-granularity language (§4.2: "A flexible
// declarative syntax is provided for user-level specification of file
// system operations to be traced").
//
// Grammar (case-insensitive keywords):
//
//   expr      := or_expr
//   or_expr   := and_expr ( 'or' and_expr )*
//   and_expr  := unary ( 'and' unary )*
//   unary     := 'not' unary | '(' expr ')' | predicate
//   predicate := 'op' 'in' '{' ident ( ',' ident )* '}'
//              | 'op' '==' ident
//              | 'path' 'glob' string
//              | ('uid'|'gid'|'rank') ('=='|'!=') number
//              | 'bytes' ('<'|'<='|'>'|'>='|'==') number
//              | 'all' | 'none' | 'metadata' | 'data'
//
// 'metadata' matches open/close/stat/statfs/mkdir/unlink/readdir/fsync/mmap;
// 'data' matches read/write/mmap_read/mmap_write.
//
// Example:  op in {write, mmap_write} and path glob "/data/*" and uid != 0
#pragma once

#include <string>

#include "interpose/vfs_shim.h"

namespace iotaxo::frameworks {

/// Compile a filter expression into a predicate over candidate VFS events.
/// Throws FormatError with a position-annotated message on syntax errors.
[[nodiscard]] interpose::VfsEventFilter compile_tracefs_filter(
    const std::string& source);

}  // namespace iotaxo::frameworks
