#include "frameworks/lanl_trace.h"

#include <map>
#include <utility>

#include "trace/sink.h"
#include "util/error.h"

namespace iotaxo::frameworks {

using interpose::PtraceTracer;

LanlTrace::LanlTrace(LanlTraceParams params) : params_(params) {}

InstallProfile LanlTrace::install_profile() const {
  InstallProfile p;
  p.requires_root = false;
  p.kernel_module = false;
  p.interpreter_deps = {"perl"};
  p.binary_deps = params_.mode == PtraceTracer::Mode::kLtrace
                      ? std::vector<std::string>{"ltrace", "strace"}
                      : std::vector<std::string>{"strace"};
  p.config_steps = 1;
  return p;
}

Capabilities LanlTrace::capabilities() const {
  Capabilities c;
  c.anonymization_level = 0;
  c.granularity_level = 1;  // simple: pick strace vs ltrace
  c.replayable_traces = false;  // beta pseudo-app generator not shipped
  c.reveals_dependencies = false;
  c.analysis_tools = false;  // only the simple timing aggregation
  c.human_readable_output = true;
  c.accounts_skew_drift = true;
  c.event_types = params_.mode == PtraceTracer::Mode::kLtrace
                      ? "System calls, library calls"
                      : "System calls";
  c.sees_mmap_io = false;
  return c;
}

bool LanlTrace::supports_fs(fs::FsKind /*kind*/) const {
  // ptrace sits above the VFS entirely; any file system works out of the
  // box ("we experienced no difficulty using our parallel file system").
  return true;
}

mpi::Job LanlTrace::wrap_job(const mpi::Job& app) {
  mpi::Job wrapped;
  wrapped.cmdline = app.cmdline;
  wrapped.programs.reserve(app.programs.size());
  for (std::size_t r = 0; r < app.programs.size(); ++r) {
    mpi::ScriptBuilder b;
    // Pre-application skew/drift job: "reports the observed time for each
    // node, does a barrier, and then reports the time again" (§4.1.1).
    b.clock_probe("pre_free");
    b.barrier("probe_pre");
    b.clock_probe("pre_sync");
    if (r == 0) {
      b.annotate("Barrier before " + app.cmdline);
    }
    b.barrier("before_app");
    mpi::Program prog = std::move(b).build();
    prog.insert(prog.end(), app.programs[r].begin(), app.programs[r].end());

    mpi::ScriptBuilder e;
    if (r == 0) {
      e.annotate("Barrier after " + app.cmdline);
    }
    e.barrier("after_app");
    e.clock_probe("post_free");
    e.barrier("probe_post");
    e.clock_probe("post_sync");
    const mpi::Program epilog = std::move(e).build();
    prog.insert(prog.end(), epilog.begin(), epilog.end());
    wrapped.programs.push_back(std::move(prog));
  }
  return wrapped;
}

TraceRunResult LanlTrace::trace(const sim::Cluster& cluster,
                                const mpi::Job& job, fs::VfsPtr vfs,
                                const TraceJobOptions& options) {
  if (!vfs) {
    throw ConfigError("LanlTrace::trace needs a file system");
  }
  const mpi::Job wrapped = wrap_job(job);

  auto summary = std::make_shared<trace::SummarySink>();
  std::shared_ptr<trace::VectorSink> raw;
  std::vector<trace::SinkPtr> sinks{summary};
  if (options.store_raw_streams) {
    raw = std::make_shared<trace::VectorSink>();
    sinks.push_back(raw);
  }
  auto tracer = std::make_shared<PtraceTracer>(
      params_.mode, std::make_shared<trace::MultiSink>(sinks), params_.costs,
      params_.batch_capacity);
  auto collector = std::make_shared<interpose::ProbeCollector>();

  mpi::RunOptions run_options;
  run_options.vfs = std::move(vfs);
  run_options.startup = options.app_startup + params_.wrapper_startup;
  run_options.cmdline = job.cmdline;
  run_options.observers = {tracer, collector};

  mpi::Runtime runtime(cluster, run_options);
  TraceRunResult result;
  result.run = runtime.run(wrapped.programs);

  // Post-processing: rank 0 gathers and merges every node's raw trace.
  result.apparent_elapsed =
      result.run.elapsed +
      params_.postprocess_per_event * tracer->events_captured();

  trace::TraceBundle& b = result.bundle;
  b.metadata["framework"] = name();
  b.metadata["mode"] = params_.mode == PtraceTracer::Mode::kLtrace
                           ? "ltrace"
                           : "strace";
  b.metadata["application"] = job.cmdline;
  b.metadata["format"] = "text";
  b.merge_summary(*summary);
  b.clock_probes = collector->probes();
  b.barrier_events = collector->barriers();

  if (raw) {
    std::map<int, trace::RankStream> by_rank;
    for (const trace::TraceEvent& ev : raw->events()) {
      trace::RankStream& rs = by_rank[ev.rank];
      rs.rank = ev.rank;
      rs.host = ev.host;
      rs.pid = ev.pid;
      rs.events.push_back(ev);
    }
    // Barrier events belong in the raw streams too (ltrace records them as
    // ordinary library calls); they are already there via the tracer when
    // in ltrace mode.
    for (auto& [rank, rs] : by_rank) {
      b.ranks.push_back(std::move(rs));
    }
  }
  return result;
}

}  // namespace iotaxo::frameworks
