// The common I/O Tracing Framework interface.
//
// Every framework the survey covers (LANL-Trace, Tracefs, //TRACE) — and
// any framework a downstream user wants to classify with the taxonomy —
// implements this interface. The taxonomy classifier drives it
// experimentally: it mounts/attaches the framework on different file
// systems, traces canonical workloads, inspects the resulting bundles and
// measures overheads.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fs/vfs.h"
#include "mpi/program.h"
#include "mpi/runtime.h"
#include "sim/cluster.h"
#include "trace/bundle.h"

namespace iotaxo::frameworks {

/// What installing the framework on a cluster involves; the taxonomy's
/// "Ease of installation and use" score (1 very easy .. 5 very difficult)
/// is computed from this.
struct InstallProfile {
  bool requires_root = false;
  bool kernel_module = false;
  std::vector<std::string> interpreter_deps;  // e.g. {"perl"}
  std::vector<std::string> binary_deps;       // e.g. {"strace", "ltrace"}
  int config_steps = 1;                       // mounts, module params, ...
  bool requires_source_instrumentation = false;
  bool requires_relink = false;
};

/// 1 (very easy) .. 5 (very difficult).
[[nodiscard]] int ease_of_install_score(const InstallProfile& profile) noexcept;

/// 1 (very passive) .. 5 (very intrusive).
[[nodiscard]] int intrusiveness_score(const InstallProfile& profile) noexcept;

/// Declarative capability sheet. The classifier cross-checks the claims it
/// can verify by experiment (replayability, dependency discovery,
/// skew/drift accounting, output format, anonymization).
struct Capabilities {
  int anonymization_level = 0;        // 0 = none, else 1..5
  int granularity_level = 0;          // 0 = none, 1 simple .. 5 v. advanced
  bool replayable_traces = false;
  bool reveals_dependencies = false;
  bool analysis_tools = false;
  bool human_readable_output = true;  // false => binary
  bool accounts_skew_drift = false;
  /// Human description of captured event types for the summary table.
  std::string event_types;
  /// Whether the capture layer can observe memory-mapped I/O.
  bool sees_mmap_io = false;
};

/// Result of tracing a job.
struct TraceRunResult {
  trace::TraceBundle bundle;
  /// Raw runtime result (makespan includes in-band tracing slowdown).
  mpi::RunResult run;
  /// End-to-end elapsed time a user would measure with `time`: run.elapsed
  /// plus framework startup and post-processing.
  SimTime apparent_elapsed = 0;
};

struct TraceJobOptions {
  /// Retain full per-rank event streams in the bundle. Disable for
  /// benchmark-scale runs where only summaries matter.
  bool store_raw_streams = true;
  /// mpirun-level startup for the underlying job.
  SimTime app_startup = from_millis(300.0);
};

class TracingFramework {
 public:
  virtual ~TracingFramework() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::string version() const { return "1.0"; }
  [[nodiscard]] virtual InstallProfile install_profile() const = 0;
  [[nodiscard]] virtual Capabilities capabilities() const = 0;

  /// Can this framework trace applications running on this kind of file
  /// system "out of the box"?
  [[nodiscard]] virtual bool supports_fs(fs::FsKind kind) const = 0;

  /// Trace `job` running on `cluster` against `vfs`. Throws
  /// UnsupportedError when the file system kind is not supported.
  [[nodiscard]] virtual TraceRunResult trace(const sim::Cluster& cluster,
                                             const mpi::Job& job,
                                             fs::VfsPtr vfs,
                                             const TraceJobOptions& options = {}) = 0;

  /// Frameworks with an anonymization feature return the scrubbed bundle;
  /// the default reports "not supported".
  [[nodiscard]] virtual std::optional<trace::TraceBundle> anonymize_bundle(
      const trace::TraceBundle& bundle) const {
    (void)bundle;
    return std::nullopt;
  }

  /// Serialize a bundle the way this framework writes trace data to disk
  /// (the classifier sniffs this to label the trace data format). The
  /// default renders the first rank stream as text.
  [[nodiscard]] virtual std::vector<std::uint8_t> export_native(
      const trace::TraceBundle& bundle) const;
};

using FrameworkPtr = std::shared_ptr<TracingFramework>;

/// Run `job` untraced (the baseline for every overhead measurement).
[[nodiscard]] mpi::RunResult run_untraced(const sim::Cluster& cluster,
                                          const mpi::Job& job, fs::VfsPtr vfs,
                                          SimTime app_startup = from_millis(300.0));

}  // namespace iotaxo::frameworks
