#include "frameworks/tracefs.h"

#include <map>
#include <utility>

#include "trace/binary_format.h"
#include "trace/sink.h"
#include "util/error.h"

namespace iotaxo::frameworks {

Tracefs::Tracefs(TracefsParams params) : params_(std::move(params)) {}

InstallProfile Tracefs::install_profile() const {
  InstallProfile p;
  p.requires_root = true;   // mounting on compute nodes
  p.kernel_module = true;   // "implemented as a kernel module"
  p.config_steps = 4;       // build module, load, mount per fs, configure
  return p;
}

Capabilities Tracefs::capabilities() const {
  Capabilities c;
  c.anonymization_level = 4;  // advanced but reversible (CBC, not random)
  c.granularity_level = 5;    // declarative filter language
  c.replayable_traces = false;  // their future work
  c.reveals_dependencies = false;
  c.analysis_tools = false;
  c.human_readable_output = false;  // binary
  c.accounts_skew_drift = false;    // no parallel awareness
  c.event_types = "File system operations";
  c.sees_mmap_io = true;  // VFS layer sees memory-mapped I/O
  return c;
}

bool Tracefs::supports_fs(fs::FsKind kind) const {
  switch (kind) {
    case fs::FsKind::kLocal:
    case fs::FsKind::kNfs:
      return true;
    case fs::FsKind::kParallel:
      return params_.enable_pfs_adaptation;
  }
  return false;
}

std::shared_ptr<interpose::VfsShim> Tracefs::mount(
    fs::VfsPtr inner, trace::SinkPtr sink, const sim::Cluster* cluster) const {
  if (!inner) {
    throw ConfigError("Tracefs::mount needs an inner file system");
  }
  if (!supports_fs(inner->kind())) {
    throw UnsupportedError(
        "tracefs is not compatible out of the box with the parallel file "
        "system (fstype " +
        inner->fstype() + ")");
  }
  return std::make_shared<interpose::VfsShim>(
      std::move(inner), std::move(sink), params_.shim, cluster,
      compile_tracefs_filter(params_.filter));
}

TraceRunResult Tracefs::trace(const sim::Cluster& cluster, const mpi::Job& job,
                              fs::VfsPtr vfs, const TraceJobOptions& options) {
  auto summary = std::make_shared<trace::SummarySink>();
  std::shared_ptr<trace::VectorSink> raw;
  std::vector<trace::SinkPtr> sinks{summary};
  if (options.store_raw_streams) {
    raw = std::make_shared<trace::VectorSink>();
    sinks.push_back(raw);
  }
  const auto shim =
      mount(std::move(vfs), std::make_shared<trace::MultiSink>(sinks), &cluster);

  mpi::RunOptions run_options;
  run_options.vfs = shim;
  run_options.startup = options.app_startup;
  run_options.cmdline = job.cmdline;

  mpi::Runtime runtime(cluster, run_options);
  TraceRunResult result;
  result.run = runtime.run(job.programs);
  // Unmount: drain the shim's per-rank batch buffers before reading sinks.
  shim->flush();
  result.apparent_elapsed = result.run.elapsed + params_.mount_setup;

  trace::TraceBundle& b = result.bundle;
  b.metadata["framework"] = name();
  b.metadata["application"] = job.cmdline;
  b.metadata["format"] = "binary";
  b.metadata["filter"] = params_.filter.empty() ? "all" : params_.filter;
  b.merge_summary(*summary);

  if (raw) {
    std::map<int, trace::RankStream> by_rank;
    for (const trace::TraceEvent& ev : raw->events()) {
      trace::RankStream& rs = by_rank[ev.rank];
      rs.rank = ev.rank;
      rs.host = ev.host;
      rs.pid = ev.pid;
      rs.events.push_back(ev);
    }
    for (auto& [rank, rs] : by_rank) {
      b.ranks.push_back(std::move(rs));
    }
  }
  return result;
}

trace::TraceBundle Tracefs::anonymize(const trace::TraceBundle& bundle) const {
  anon::EncryptingAnonymizer anonymizer(params_.anonymize_fields,
                                        params_.passphrase);
  return anonymizer.apply(bundle);
}

std::vector<std::uint8_t> Tracefs::encode_output(
    const trace::TraceBundle& bundle) const {
  trace::EventBatch batch;
  for (const trace::RankStream& rs : bundle.ranks) {
    for (const trace::TraceEvent& ev : rs.events) {
      batch.append(ev);
    }
  }
  trace::BinaryOptions opts;
  opts.compress = params_.shim.compress;
  opts.checksum = true;
  opts.encrypt = params_.shim.encrypt;
  if (opts.encrypt) {
    opts.key = derive_key(params_.passphrase);
  }
  // IOTB2: the batch's string table is serialized once instead of repeating
  // every name/path/host per record.
  return trace::encode_binary_v2(batch, opts);
}

}  // namespace iotaxo::frameworks
