// //TRACE (§2.3, §4.3): replayable trace capture for MPI applications via
// dynamic library interposition, with inter-node data dependencies
// discovered by I/O throttling — "manually slowing the response time of a
// single node to I/O requests ... and observing the behavior of other
// nodes looking for causal dependencies".
//
// The sampling knob is the paper's headline trade-off: it controls how many
// nodes ever get a throttling window, which simultaneously bounds the
// dependency-map completeness (and hence replay fidelity) and the
// end-to-end time overhead ("~0% to 205%").
#pragma once

#include <map>
#include <vector>

#include "frameworks/framework.h"
#include "interpose/mechanism.h"
#include "interpose/tracers.h"
#include "replay/replayer.h"

namespace iotaxo::frameworks {

struct PartraceParams {
  /// Fraction of nodes that receive throttling windows (0 disables
  /// dependency discovery entirely; 1 rotates through every node).
  double sampling = 1.0;
  /// Completion delay injected into each throttled I/O syscall.
  SimTime throttle_delay = from_millis(7.6);
  interpose::InterposeCosts costs{};
  /// LD_PRELOAD setup at launch.
  SimTime preload_setup = from_millis(250.0);
  /// Per-event dependency analysis after the run.
  SimTime analysis_per_event = from_micros(5.0);
  /// Per-rank sink-delivery batch size (1 = per-event delivery).
  std::size_t batch_capacity = 256;
};

/// The throttling engine: acts as the runtime Throttler (injecting delays)
/// and as an observer (watching barriers to advance throttling windows and
/// to correlate waits into dependency edges).
class ThrottleEngine : public mpi::Throttler, public mpi::IoObserver {
 public:
  ThrottleEngine(int nranks, double sampling, SimTime delay);

  // mpi::Throttler
  [[nodiscard]] SimTime delay(const trace::TraceEvent& ev) override;

  // mpi::IoObserver
  [[nodiscard]] SimTime on_event(const trace::TraceEvent& ev) override;
  void on_run_end() override;

  [[nodiscard]] const std::vector<trace::DependencyEdge>& edges()
      const noexcept {
    return edges_;
  }
  /// Which rank is throttled during phase `phase` (-1 = none).
  [[nodiscard]] int throttled_rank_for_phase(int phase) const noexcept;
  [[nodiscard]] int phases_observed() const noexcept { return phase_; }

 private:
  struct BarrierRecord {
    int rank = -1;
    SimTime wait = 0;
  };
  void finalize_phase(const std::string& label);

  int nranks_;
  int sampled_count_;
  SimTime delay_;
  int phase_ = 0;
  long long barrier_events_in_phase_ = 0;
  std::string current_label_;
  std::vector<BarrierRecord> current_records_;
  std::vector<trace::DependencyEdge> edges_;

  /// Waits longer than the throttled rank's by this much indicate a
  /// genuine causal stall rather than scheduler noise.
  static constexpr SimTime kWaitMargin = kMillisecond;
};

class Partrace : public TracingFramework {
 public:
  explicit Partrace(PartraceParams params = {});

  [[nodiscard]] std::string name() const override { return "//TRACE"; }
  [[nodiscard]] std::string version() const override {
    return "pre-release";  // footnote 1 of the paper
  }
  [[nodiscard]] InstallProfile install_profile() const override;
  [[nodiscard]] Capabilities capabilities() const override;
  [[nodiscard]] bool supports_fs(fs::FsKind kind) const override;

  [[nodiscard]] TraceRunResult trace(const sim::Cluster& cluster,
                                     const mpi::Job& job, fs::VfsPtr vfs,
                                     const TraceJobOptions& options) override;

  /// Replay options matching //TRACE's model: synchronization comes only
  /// from the discovered dependency map.
  [[nodiscard]] replay::ReplayOptions replay_options() const;

  [[nodiscard]] const PartraceParams& params() const noexcept {
    return params_;
  }

 private:
  PartraceParams params_;
};

}  // namespace iotaxo::frameworks
