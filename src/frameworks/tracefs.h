// Tracefs (§2.2, §4.2): a stackable file system tracer. Mounted over a
// local or NFS file system it records every VFS operation that passes its
// granularity filter into buffered binary output with optional
// checksumming, compression and field-selective CBC encryption
// (anonymization). It is implemented as a kernel module — root access and
// real installation effort — and was "not designed to trace parallel
// workloads": mounting it over the parallel file system throws
// UnsupportedError unless the (non-default) adaptation shim is enabled.
#pragma once

#include <optional>

#include "anon/anonymizer.h"
#include "frameworks/framework.h"
#include "frameworks/tracefs_filter.h"
#include "interpose/vfs_shim.h"

namespace iotaxo::frameworks {

struct TracefsParams {
  /// Granularity filter source; empty traces everything.
  std::string filter = "";
  /// Shim cost/feature model. The framework default delivers to its sinks
  /// in per-rank batches of 256 (direct VfsShim construction stays
  /// per-event unless asked otherwise).
  interpose::VfsShimOptions shim{.batch_capacity = 256};
  /// Per-run mount/unmount and module bookkeeping.
  SimTime mount_setup = from_millis(100.0);
  /// Fields to encrypt when anonymizing, and the secret.
  anon::FieldPolicy anonymize_fields{};
  std::string passphrase = "tracefs-secret";
  /// Out-of-the-box Tracefs does not run over the parallel file system;
  /// flipping this models the "adaptation for use on a parallel file
  /// system" the paper anticipates.
  bool enable_pfs_adaptation = false;
};

class Tracefs : public TracingFramework {
 public:
  explicit Tracefs(TracefsParams params = {});

  [[nodiscard]] std::string name() const override { return "Tracefs"; }
  [[nodiscard]] InstallProfile install_profile() const override;
  [[nodiscard]] Capabilities capabilities() const override;
  [[nodiscard]] bool supports_fs(fs::FsKind kind) const override;

  [[nodiscard]] TraceRunResult trace(const sim::Cluster& cluster,
                                     const mpi::Job& job, fs::VfsPtr vfs,
                                     const TraceJobOptions& options) override;

  /// Mount the tracing shim over an inner file system (exposed so tests
  /// and examples can stack manually). Throws UnsupportedError for
  /// unsupported file-system kinds.
  [[nodiscard]] std::shared_ptr<interpose::VfsShim> mount(
      fs::VfsPtr inner, trace::SinkPtr sink,
      const sim::Cluster* cluster) const;

  /// Tracefs's anonymization feature: field-selective CBC encryption of a
  /// captured bundle.
  [[nodiscard]] trace::TraceBundle anonymize(
      const trace::TraceBundle& bundle) const;

  [[nodiscard]] std::optional<trace::TraceBundle> anonymize_bundle(
      const trace::TraceBundle& bundle) const override {
    return anonymize(bundle);
  }

  /// Binary-encode a bundle's events the way Tracefs writes them to disk
  /// (with the configured checksum/compress/encrypt options).
  [[nodiscard]] std::vector<std::uint8_t> encode_output(
      const trace::TraceBundle& bundle) const;

  [[nodiscard]] std::vector<std::uint8_t> export_native(
      const trace::TraceBundle& bundle) const override {
    return encode_output(bundle);
  }

  [[nodiscard]] const TracefsParams& params() const noexcept {
    return params_;
  }

 private:
  TracefsParams params_;
};

}  // namespace iotaxo::frameworks
