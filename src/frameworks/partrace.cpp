#include "frameworks/partrace.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "trace/sink.h"
#include "util/error.h"
#include "util/strings.h"

namespace iotaxo::frameworks {

using trace::EventClass;
using trace::TraceEvent;

ThrottleEngine::ThrottleEngine(int nranks, double sampling, SimTime delay)
    : nranks_(nranks),
      sampled_count_(static_cast<int>(
          std::ceil(std::clamp(sampling, 0.0, 1.0) * nranks))),
      delay_(delay) {
  if (nranks_ <= 0) {
    throw ConfigError("ThrottleEngine needs at least one rank");
  }
}

int ThrottleEngine::throttled_rank_for_phase(int phase) const noexcept {
  if (sampled_count_ <= 0) {
    return -1;
  }
  const int idx = phase % nranks_;
  return idx < sampled_count_ ? idx : -1;
}

SimTime ThrottleEngine::delay(const TraceEvent& ev) {
  if (ev.cls != EventClass::kSyscall ||
      (ev.name != "SYS_write" && ev.name != "SYS_read")) {
    return 0;
  }
  return ev.rank == throttled_rank_for_phase(phase_) ? delay_ : 0;
}

SimTime ThrottleEngine::on_event(const TraceEvent& ev) {
  if (ev.cls != EventClass::kLibraryCall || ev.name != "MPI_Barrier") {
    return 0;
  }
  current_label_ = ev.path;
  current_records_.push_back(BarrierRecord{ev.rank, ev.duration});
  if (++barrier_events_in_phase_ == nranks_) {
    finalize_phase(current_label_);
    barrier_events_in_phase_ = 0;
    current_records_.clear();
    ++phase_;
  }
  return 0;  // pure observation; throttling enters via delay()
}

void ThrottleEngine::finalize_phase(const std::string& label) {
  const int throttled = throttled_rank_for_phase(phase_);
  if (throttled < 0 || current_records_.empty()) {
    return;
  }
  // The rank every other rank waited on arrives last, i.e. waits least.
  const auto last =
      std::min_element(current_records_.begin(), current_records_.end(),
                       [](const BarrierRecord& a, const BarrierRecord& b) {
                         return a.wait < b.wait;
                       });
  if (last->rank != throttled) {
    return;  // the injected delay did not dominate this phase; no signal
  }
  for (const BarrierRecord& rec : current_records_) {
    if (rec.rank != throttled && rec.wait > last->wait + kWaitMargin) {
      edges_.push_back(
          trace::DependencyEdge{throttled, rec.rank, label});
    }
  }
}

void ThrottleEngine::on_run_end() {
  // Flush a trailing partial phase (jobs whose rank count changed mid-run
  // don't exist in this simulator, but stay defensive).
  if (!current_records_.empty() &&
      barrier_events_in_phase_ == nranks_) {
    finalize_phase(current_label_);
  }
}

Partrace::Partrace(PartraceParams params) : params_(params) {
  if (params_.sampling < 0.0 || params_.sampling > 1.0) {
    throw ConfigError("partrace sampling must be in [0, 1]");
  }
}

InstallProfile Partrace::install_profile() const {
  InstallProfile p;
  p.requires_root = false;
  p.kernel_module = false;
  p.binary_deps = {"libpartrace.so"};  // LD_PRELOAD shim
  p.config_steps = 1;
  return p;
}

Capabilities Partrace::capabilities() const {
  Capabilities c;
  c.anonymization_level = 0;
  c.granularity_level = 0;  // "All I/O system calls are captured"
  c.replayable_traces = true;
  c.reveals_dependencies = params_.sampling > 0.0;
  c.analysis_tools = false;
  c.human_readable_output = true;
  c.accounts_skew_drift = false;
  c.event_types = "I/O system calls";
  c.sees_mmap_io = false;
  return c;
}

bool Partrace::supports_fs(fs::FsKind /*kind*/) const {
  // Developed for MPI/MPI-IO applications; interposition is fs-agnostic.
  return true;
}

TraceRunResult Partrace::trace(const sim::Cluster& cluster,
                               const mpi::Job& job, fs::VfsPtr vfs,
                               const TraceJobOptions& options) {
  if (!vfs) {
    throw ConfigError("Partrace::trace needs a file system");
  }
  auto summary = std::make_shared<trace::SummarySink>();
  std::shared_ptr<trace::VectorSink> raw;
  std::vector<trace::SinkPtr> sinks{summary};
  if (options.store_raw_streams) {
    raw = std::make_shared<trace::VectorSink>();
    sinks.push_back(raw);
  }
  auto interposer = std::make_shared<interpose::DynLibInterposer>(
      std::make_shared<trace::MultiSink>(sinks), params_.costs,
      params_.batch_capacity);
  auto engine = std::make_shared<ThrottleEngine>(
      job.nranks(), params_.sampling, params_.throttle_delay);

  mpi::RunOptions run_options;
  run_options.vfs = std::move(vfs);
  run_options.startup = options.app_startup + params_.preload_setup;
  run_options.cmdline = job.cmdline;
  run_options.observers = {interposer, engine};
  run_options.throttler = engine;

  mpi::Runtime runtime(cluster, run_options);
  TraceRunResult result;
  result.run = runtime.run(job.programs);
  result.apparent_elapsed =
      result.run.elapsed +
      params_.analysis_per_event * interposer->events_captured();

  trace::TraceBundle& b = result.bundle;
  b.metadata["framework"] = name();
  b.metadata["application"] = job.cmdline;
  b.metadata["format"] = "text";
  b.metadata["sampling"] = strprintf("%.3f", params_.sampling);
  b.merge_summary(*summary);
  b.dependencies = engine->edges();

  if (raw) {
    std::map<int, trace::RankStream> by_rank;
    for (const TraceEvent& ev : raw->events()) {
      trace::RankStream& rs = by_rank[ev.rank];
      rs.rank = ev.rank;
      rs.host = ev.host;
      rs.pid = ev.pid;
      if (ev.name == "MPI_Barrier") {
        b.barrier_events.push_back(ev);
      }
      rs.events.push_back(ev);
    }
    for (auto& [rank, rs] : by_rank) {
      b.ranks.push_back(std::move(rs));
    }
  }
  return result;
}

replay::ReplayOptions Partrace::replay_options() const {
  replay::ReplayOptions options;
  options.pseudo.sync = replay::SyncStrategy::kDependencies;
  return options;
}

}  // namespace iotaxo::frameworks
