#include "frameworks/tracefs_filter.h"

#include <cctype>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "util/error.h"
#include "util/strings.h"

namespace iotaxo::frameworks {

using interpose::VfsEventFilter;
using trace::TraceEvent;

namespace {

enum class TokKind { kIdent, kString, kNumber, kSymbol, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  long long number = 0;
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) { advance(); }

  [[nodiscard]] const Token& peek() const noexcept { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

 private:
  void advance() {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_]))) {
      ++pos_;
    }
    current_ = Token{};
    current_.pos = pos_;
    if (pos_ >= src_.size()) {
      current_.kind = TokKind::kEnd;
      return;
    }
    const char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '_')) {
        ++pos_;
      }
      current_.kind = TokKind::kIdent;
      current_.text = to_lower(src_.substr(start, pos_ - start));
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = pos_;
      while (pos_ < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        ++pos_;
      }
      current_.kind = TokKind::kNumber;
      current_.text = src_.substr(start, pos_ - start);
      current_.number = std::strtoll(current_.text.c_str(), nullptr, 10);
      return;
    }
    if (c == '"') {
      ++pos_;
      std::size_t start = pos_;
      while (pos_ < src_.size() && src_[pos_] != '"') {
        ++pos_;
      }
      if (pos_ >= src_.size()) {
        throw FormatError(strprintf("tracefs filter: unterminated string at %zu",
                                    start));
      }
      current_.kind = TokKind::kString;
      current_.text = src_.substr(start, pos_ - start);
      ++pos_;
      return;
    }
    // Multi-char comparison operators first.
    static const char* kTwo[] = {"==", "!=", ">=", "<="};
    for (const char* op : kTwo) {
      if (src_.compare(pos_, 2, op) == 0) {
        current_.kind = TokKind::kSymbol;
        current_.text = op;
        pos_ += 2;
        return;
      }
    }
    current_.kind = TokKind::kSymbol;
    current_.text = std::string(1, c);
    ++pos_;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  Token current_;
};

const std::set<std::string>& metadata_ops() {
  static const std::set<std::string> kOps = {
      "vfs_open",  "vfs_close",  "vfs_stat",    "vfs_statfs", "vfs_mkdir",
      "vfs_unlink", "vfs_readdir", "vfs_fsync", "vfs_mmap"};
  return kOps;
}

const std::set<std::string>& data_ops() {
  static const std::set<std::string> kOps = {
      "vfs_read", "vfs_write", "vfs_mmap_read", "vfs_mmap_write"};
  return kOps;
}

class Parser {
 public:
  explicit Parser(const std::string& src) : lexer_(src) {}

  [[nodiscard]] VfsEventFilter parse() {
    VfsEventFilter f = parse_or();
    if (lexer_.peek().kind != TokKind::kEnd) {
      throw FormatError(
          strprintf("tracefs filter: trailing input at position %zu",
                    lexer_.peek().pos));
    }
    return f;
  }

 private:
  [[nodiscard]] VfsEventFilter parse_or() {
    VfsEventFilter lhs = parse_and();
    while (is_ident("or")) {
      lexer_.take();
      VfsEventFilter rhs = parse_and();
      lhs = [lhs, rhs](const TraceEvent& ev) { return lhs(ev) || rhs(ev); };
    }
    return lhs;
  }

  [[nodiscard]] VfsEventFilter parse_and() {
    VfsEventFilter lhs = parse_unary();
    while (is_ident("and")) {
      lexer_.take();
      VfsEventFilter rhs = parse_unary();
      lhs = [lhs, rhs](const TraceEvent& ev) { return lhs(ev) && rhs(ev); };
    }
    return lhs;
  }

  [[nodiscard]] VfsEventFilter parse_unary() {
    if (is_ident("not")) {
      lexer_.take();
      VfsEventFilter inner = parse_unary();
      return [inner](const TraceEvent& ev) { return !inner(ev); };
    }
    if (is_symbol("(")) {
      lexer_.take();
      VfsEventFilter inner = parse_or();
      expect_symbol(")");
      return inner;
    }
    return parse_predicate();
  }

  [[nodiscard]] VfsEventFilter parse_predicate() {
    const Token head = expect(TokKind::kIdent, "predicate");
    if (head.text == "all") {
      return [](const TraceEvent&) { return true; };
    }
    if (head.text == "none") {
      return [](const TraceEvent&) { return false; };
    }
    if (head.text == "metadata") {
      return [](const TraceEvent& ev) {
        return metadata_ops().contains(ev.name);
      };
    }
    if (head.text == "data") {
      return [](const TraceEvent& ev) { return data_ops().contains(ev.name); };
    }
    if (head.text == "op") {
      if (is_ident("in")) {
        lexer_.take();
        expect_symbol("{");
        auto ops = std::make_shared<std::set<std::string>>();
        for (;;) {
          const Token id = expect(TokKind::kIdent, "op name");
          ops->insert("vfs_" + id.text);
          if (is_symbol(",")) {
            lexer_.take();
            continue;
          }
          break;
        }
        expect_symbol("}");
        return [ops](const TraceEvent& ev) { return ops->contains(ev.name); };
      }
      expect_symbol("==");
      const Token id = expect(TokKind::kIdent, "op name");
      const std::string want = "vfs_" + id.text;
      return [want](const TraceEvent& ev) { return ev.name == want; };
    }
    if (head.text == "path") {
      const Token kw = expect(TokKind::kIdent, "glob");
      if (kw.text != "glob") {
        throw FormatError(strprintf(
            "tracefs filter: expected 'glob' after 'path' at %zu", kw.pos));
      }
      const Token pattern = expect(TokKind::kString, "glob pattern");
      const std::string pat = pattern.text;
      return [pat](const TraceEvent& ev) { return glob_match(pat, ev.path); };
    }
    if (head.text == "uid" || head.text == "gid" || head.text == "rank") {
      const Token op = expect(TokKind::kSymbol, "comparison");
      const Token num = expect(TokKind::kNumber, "number");
      const std::string field = head.text;
      const long long want = num.number;
      const bool negate = op.text == "!=";
      if (op.text != "==" && op.text != "!=") {
        throw FormatError(strprintf(
            "tracefs filter: %s supports == or != only (at %zu)",
            field.c_str(), op.pos));
      }
      return [field, want, negate](const TraceEvent& ev) {
        long long have = 0;
        if (field == "uid") {
          have = ev.uid;
        } else if (field == "gid") {
          have = ev.gid;
        } else {
          have = ev.rank;
        }
        return negate ? have != want : have == want;
      };
    }
    if (head.text == "bytes") {
      const Token op = expect(TokKind::kSymbol, "comparison");
      const Token num = expect(TokKind::kNumber, "number");
      const std::string cmp = op.text;
      const long long want = num.number;
      return [cmp, want](const TraceEvent& ev) {
        if (cmp == "<") return ev.bytes < want;
        if (cmp == "<=") return ev.bytes <= want;
        if (cmp == ">") return ev.bytes > want;
        if (cmp == ">=") return ev.bytes >= want;
        return ev.bytes == want;
      };
    }
    throw FormatError(strprintf("tracefs filter: unknown predicate '%s' at %zu",
                                head.text.c_str(), head.pos));
  }

  [[nodiscard]] bool is_ident(const char* word) const {
    return lexer_.peek().kind == TokKind::kIdent && lexer_.peek().text == word;
  }
  [[nodiscard]] bool is_symbol(const char* sym) const {
    return lexer_.peek().kind == TokKind::kSymbol && lexer_.peek().text == sym;
  }
  Token expect(TokKind kind, const char* what) {
    if (lexer_.peek().kind != kind) {
      throw FormatError(strprintf("tracefs filter: expected %s at position %zu",
                                  what, lexer_.peek().pos));
    }
    return lexer_.take();
  }
  void expect_symbol(const char* sym) {
    if (!is_symbol(sym)) {
      throw FormatError(strprintf("tracefs filter: expected '%s' at position %zu",
                                  sym, lexer_.peek().pos));
    }
    lexer_.take();
  }

  Lexer lexer_;
};

}  // namespace

VfsEventFilter compile_tracefs_filter(const std::string& source) {
  const auto trimmed = trim(source);
  if (trimmed.empty()) {
    return [](const TraceEvent&) { return true; };
  }
  Parser parser(source);
  return parser.parse();
}

}  // namespace iotaxo::frameworks
