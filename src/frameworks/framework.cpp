#include "frameworks/framework.h"

#include <algorithm>

#include "trace/text_format.h"

namespace iotaxo::frameworks {

int ease_of_install_score(const InstallProfile& profile) noexcept {
  int score = 1;
  if (profile.kernel_module) {
    score += 2;  // building/loading kernel code dominates everything else
                 // (and already implies root access)
  } else if (profile.requires_root) {
    score += 1;
  }
  if (!profile.interpreter_deps.empty() || !profile.binary_deps.empty()) {
    score += 1;  // software that must exist on every compute node
  }
  if (profile.config_steps > 2) {
    score += 1;
  }
  return std::min(score, 5);
}

int intrusiveness_score(const InstallProfile& profile) noexcept {
  int score = 1;
  if (profile.requires_relink) {
    score += 2;
  }
  if (profile.requires_source_instrumentation) {
    score += 3;
  }
  return std::min(score, 5);
}

std::vector<std::uint8_t> TracingFramework::export_native(
    const trace::TraceBundle& bundle) const {
  std::string text;
  for (const trace::RankStream& rs : bundle.ranks) {
    trace::TextTraceWriter::StreamMeta meta{rs.host, rs.rank, rs.pid};
    text += trace::TextTraceWriter::render(meta, rs.events);
  }
  return {text.begin(), text.end()};
}

mpi::RunResult run_untraced(const sim::Cluster& cluster, const mpi::Job& job,
                            fs::VfsPtr vfs, SimTime app_startup) {
  mpi::RunOptions options;
  options.vfs = std::move(vfs);
  options.startup = app_startup;
  options.cmdline = job.cmdline;
  mpi::Runtime runtime(cluster, options);
  return runtime.run(job.programs);
}

}  // namespace iotaxo::frameworks
