// LANL-Trace (§2.1, §4.1): a wrapper around ltrace (or strace) driven by a
// Perl harness. Produces three human-readable outputs per run:
//
//   1. raw per-node trace data (ltrace-style lines),
//   2. aggregate timing information (barrier enter/exit per rank, from a
//      clock-probe MPI job run before and after the application), and
//   3. a call summary (per-function counts and total times).
//
// Its simplicity shows up in the taxonomy as easy installation and parallel
// file system compatibility; its ptrace capture mechanism shows up as high
// per-event overhead, especially for small block sizes.
#pragma once

#include "frameworks/framework.h"
#include "interpose/mechanism.h"
#include "interpose/tracers.h"

namespace iotaxo::frameworks {

struct LanlTraceParams {
  interpose::PtraceTracer::Mode mode =
      interpose::PtraceTracer::Mode::kLtrace;
  interpose::InterposeCosts costs{};
  /// Spawning the Perl wrapper + attaching the tracer on every node.
  SimTime wrapper_startup = from_millis(800.0);
  /// Post-run gather/merge/summarize pass over raw trace lines at rank 0
  /// (single-threaded Perl — the dominant elapsed-time cost for small
  /// block sizes).
  SimTime postprocess_per_event = from_micros(24.0);
  /// Per-rank sink-delivery batch size (1 = per-event delivery).
  std::size_t batch_capacity = 256;
};

class LanlTrace : public TracingFramework {
 public:
  explicit LanlTrace(LanlTraceParams params = {});

  [[nodiscard]] std::string name() const override { return "LANL-Trace"; }
  [[nodiscard]] InstallProfile install_profile() const override;
  [[nodiscard]] Capabilities capabilities() const override;
  [[nodiscard]] bool supports_fs(fs::FsKind kind) const override;

  [[nodiscard]] TraceRunResult trace(const sim::Cluster& cluster,
                                     const mpi::Job& job, fs::VfsPtr vfs,
                                     const TraceJobOptions& options) override;

  [[nodiscard]] const LanlTraceParams& params() const noexcept {
    return params_;
  }

  /// The wrapper job LANL-Trace actually launches: probe / barrier / probe
  /// before and after the application (exposed for tests).
  [[nodiscard]] static mpi::Job wrap_job(const mpi::Job& app);

 private:
  LanlTraceParams params_;
};

}  // namespace iotaxo::frameworks
