#include "anon/anonymizer.h"

#include <set>
#include <utility>

#include "util/strings.h"

namespace iotaxo::anon {

using trace::TraceBundle;
using trace::TraceEvent;

const char* to_string(Field f) noexcept {
  switch (f) {
    case Field::kPath:
      return "path";
    case Field::kHost:
      return "host";
    case Field::kUid:
      return "uid";
    case Field::kGid:
      return "gid";
    case Field::kLabel:
      return "label";
  }
  return "?";
}

namespace {

/// Replace every occurrence of `from` inside `s`.
void replace_all_in(std::string& s, const std::string& from,
                    const std::string& to) {
  if (from.empty() || from == to) {
    return;
  }
  std::size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
}

/// Apply a string substitution consistently across an event's textual
/// surfaces (semantic field + rendered args).
void substitute(TraceEvent& ev, const std::string& from,
                const std::string& to) {
  if (from.empty()) {
    return;
  }
  replace_all_in(ev.path, from, to);
  replace_all_in(ev.host, from, to);
  for (std::string& a : ev.args) {
    replace_all_in(a, from, to);
  }
}

}  // namespace

TraceBundle Anonymizer::apply(const TraceBundle& bundle) {
  TraceBundle out;
  out.metadata = bundle.metadata;
  out.call_summary = bundle.call_summary;
  out.dependencies = bundle.dependencies;
  // Command lines may embed paths; scrub metadata values through the same
  // event machinery by routing them as annotation events. Structural keys
  // that cannot carry user data stay readable.
  static const std::set<std::string> kSafeKeys = {
      "framework", "format", "mode", "sampling", "filter", "sync"};
  for (auto& [key, value] : out.metadata) {
    if (kSafeKeys.contains(key)) {
      continue;
    }
    TraceEvent carrier;
    carrier.cls = trace::EventClass::kAnnotation;
    carrier.name = value;
    carrier.path = value;
    value = apply(carrier).name;
  }
  out.ranks.reserve(bundle.ranks.size());
  for (const trace::RankStream& rs : bundle.ranks) {
    trace::RankStream o;
    o.rank = rs.rank;
    o.pid = rs.pid;
    o.events.reserve(rs.events.size());
    for (const TraceEvent& ev : rs.events) {
      o.events.push_back(apply(ev));
    }
    o.host = o.events.empty() ? rs.host : o.events.front().host;
    out.ranks.push_back(std::move(o));
  }
  out.clock_probes.reserve(bundle.clock_probes.size());
  for (const TraceEvent& ev : bundle.clock_probes) {
    out.clock_probes.push_back(apply(ev));
  }
  out.barrier_events.reserve(bundle.barrier_events.size());
  for (const TraceEvent& ev : bundle.barrier_events) {
    out.barrier_events.push_back(apply(ev));
  }
  return out;
}

RandomizingAnonymizer::RandomizingAnonymizer(FieldPolicy policy,
                                             std::uint64_t seed)
    : policy_(policy), seed_(seed) {}

std::string RandomizingAnonymizer::token_for(const std::string& original) {
  const auto it = string_map_.find(original);
  if (it != string_map_.end()) {
    return it->second;
  }
  // Keyed PRF: hash(seed || original) seeds a token generator, so equal
  // inputs map to equal tokens without retaining a dictionary on disk.
  Rng rng(mix64(seed_ ^ fnv1a(original)));
  std::string token = "anon_" + rng.token(12);
  string_map_.emplace(original, token);
  return token;
}

std::uint32_t RandomizingAnonymizer::scrub_id(std::uint32_t id) {
  const auto it = id_map_.find(id);
  if (it != id_map_.end()) {
    return it->second;
  }
  const auto scrubbed =
      static_cast<std::uint32_t>(mix64(seed_ ^ (0xD1DULL << 32) ^ id) % 60000u +
                                 1000u);
  id_map_.emplace(id, scrubbed);
  return scrubbed;
}

TraceEvent RandomizingAnonymizer::apply(const TraceEvent& ev) {
  TraceEvent out = ev;
  if (policy_.wants(Field::kPath) && !ev.path.empty()) {
    substitute(out, ev.path, token_for(ev.path));
    out.path = token_for(ev.path);
  }
  if (policy_.wants(Field::kHost) && !ev.host.empty()) {
    const std::string token = token_for(ev.host);
    substitute(out, ev.host, token);
    out.host = token;
  }
  if (policy_.wants(Field::kUid)) {
    out.uid = scrub_id(ev.uid);
  }
  if (policy_.wants(Field::kGid)) {
    out.gid = scrub_id(ev.gid);
  }
  if (policy_.wants(Field::kLabel) &&
      (ev.cls == trace::EventClass::kAnnotation ||
       ev.cls == trace::EventClass::kClockProbe)) {
    // Annotations may quote the full application command line.
    out.name = token_for(ev.name);
    for (std::string& a : out.args) {
      a = token_for(a);
    }
  }
  return out;
}

EncryptingAnonymizer::EncryptingAnonymizer(FieldPolicy policy,
                                           std::string passphrase)
    : policy_(policy), key_(derive_key(passphrase)) {}

std::string EncryptingAnonymizer::encrypt_string(const std::string& s) {
  return "enc:" + cbc_encrypt_field(s, key_, iv_counter_++);
}

std::string EncryptingAnonymizer::decrypt_string(const std::string& s) const {
  if (!starts_with(s, "enc:")) {
    return s;
  }
  return cbc_decrypt_field(std::string_view(s).substr(4), key_);
}

TraceEvent EncryptingAnonymizer::apply(const TraceEvent& ev) {
  TraceEvent out = ev;
  if (policy_.wants(Field::kPath) && !ev.path.empty()) {
    const std::string ct = encrypt_string(ev.path);
    substitute(out, ev.path, ct);
    out.path = ct;
  }
  if (policy_.wants(Field::kHost) && !ev.host.empty()) {
    const std::string ct = encrypt_string(ev.host);
    substitute(out, ev.host, ct);
    out.host = ct;
  }
  if (policy_.wants(Field::kUid)) {
    // Numeric ids ride through the block cipher directly.
    out.uid = static_cast<std::uint32_t>(
        xtea_encrypt_block(ev.uid, key_) & 0x7FFFFFFFu);
  }
  if (policy_.wants(Field::kGid)) {
    out.gid = static_cast<std::uint32_t>(
        xtea_encrypt_block(0x8000000000000000ULL | ev.gid, key_) & 0x7FFFFFFFu);
  }
  if (policy_.wants(Field::kLabel) &&
      (ev.cls == trace::EventClass::kAnnotation ||
       ev.cls == trace::EventClass::kClockProbe)) {
    out.name = encrypt_string(ev.name);
  }
  return out;
}

TraceEvent EncryptingAnonymizer::reverse(const TraceEvent& ev) const {
  TraceEvent out = ev;
  if (!ev.path.empty() && starts_with(ev.path, "enc:")) {
    const std::string pt = decrypt_string(ev.path);
    for (std::string& a : out.args) {
      replace_all_in(a, ev.path, pt);
    }
    out.path = pt;
  }
  if (!ev.host.empty() && starts_with(ev.host, "enc:")) {
    out.host = decrypt_string(ev.host);
  }
  if (starts_with(ev.name, "enc:")) {
    out.name = decrypt_string(ev.name);
  }
  // uid/gid are not reversed: the forward map truncated to 31 bits, which
  // models the one-way nature of identifier scrubbing in practice.
  return out;
}

bool leaks_any(const TraceBundle& bundle,
               const std::vector<std::string>& secrets) {
  auto text_leaks = [&](const std::string& text) {
    for (const std::string& secret : secrets) {
      if (!secret.empty() && text.find(secret) != std::string::npos) {
        return true;
      }
    }
    return false;
  };
  auto event_leaks = [&](const TraceEvent& ev) {
    if (text_leaks(ev.path) || text_leaks(ev.host) || text_leaks(ev.name)) {
      return true;
    }
    for (const std::string& a : ev.args) {
      if (text_leaks(a)) {
        return true;
      }
    }
    return false;
  };
  for (const auto& [key, value] : bundle.metadata) {
    if (text_leaks(value)) {
      return true;
    }
  }
  for (const trace::RankStream& rs : bundle.ranks) {
    if (text_leaks(rs.host)) {
      return true;
    }
    for (const TraceEvent& ev : rs.events) {
      if (event_leaks(ev)) {
        return true;
      }
    }
  }
  for (const TraceEvent& ev : bundle.clock_probes) {
    if (event_leaks(ev)) {
      return true;
    }
  }
  for (const TraceEvent& ev : bundle.barrier_events) {
    if (event_leaks(ev)) {
      return true;
    }
  }
  return false;
}

}  // namespace iotaxo::anon
