#include "interpose/vfs_shim.h"

#include <utility>

#include "util/error.h"
#include "util/strings.h"

namespace iotaxo::interpose {

using fs::OpCtx;
using fs::VfsOp;
using fs::VfsResult;
using trace::EventClass;
using trace::TraceEvent;

VfsShim::VfsShim(fs::VfsPtr inner, trace::SinkPtr sink, VfsShimOptions options,
                 const sim::Cluster* cluster, VfsEventFilter filter)
    : inner_(std::move(inner)),
      options_(options),
      cluster_(cluster),
      filter_(std::move(filter)) {
  if (!inner_) {
    throw ConfigError("VfsShim needs an inner file system");
  }
  if (sink) {
    batcher_.emplace(trace::maybe_async(std::move(sink), options_.async_flush),
                     options_.batch_capacity);
  }
}

void VfsShim::flush() {
  if (batcher_.has_value()) {
    batcher_->flush();
  }
}

SimTime VfsShim::per_record_cost() const noexcept {
  SimTime cost = options_.record_cost;
  const Bytes per_buffer =
      options_.buffer_bytes > 0 && options_.record_bytes > 0
          ? options_.buffer_bytes / options_.record_bytes
          : 1;
  cost += options_.flush_cost / (per_buffer > 0 ? per_buffer : 1);
  if (options_.checksum) {
    cost += options_.checksum_cost;
  }
  if (options_.compress) {
    cost += options_.compress_cost;
  }
  if (options_.encrypt) {
    cost += options_.encrypt_cost;
  }
  return cost;
}

SimTime VfsShim::capture(VfsOp op, const std::string& path, int fd,
                         Bytes offset, Bytes n, long long ret, SimTime op_cost,
                         const OpCtx& ctx) {
  TraceEvent ev;
  ev.cls = EventClass::kFsOperation;
  ev.name = std::string("vfs_") + fs::to_string(op);
  ev.path = path;
  ev.fd = fd;
  ev.offset = offset;
  ev.bytes = n;
  ev.ret = ret;
  ev.duration = op_cost;
  ev.rank = ctx.rank;
  ev.node = ctx.node_id;
  ev.uid = ctx.uid;
  ev.gid = ctx.gid;
  if (cluster_ != nullptr && ctx.node_id >= 0 &&
      ctx.node_id < cluster_->node_count()) {
    ev.local_start = cluster_->local_time(ctx.node_id, ctx.now);
    ev.host = cluster_->node(ctx.node_id).hostname;
  } else {
    ev.local_start = ctx.now;
  }
  ev.args = {path.empty() ? strprintf("%d", fd) : path,
             strprintf("%lld", static_cast<long long>(offset)),
             strprintf("%lld", static_cast<long long>(n))};

  if (filter_ && !filter_(ev)) {
    return 0;
  }
  ++counters_[ev.name];
  ++events_captured_;
  if (options_.aggregate_only) {
    return options_.counter_cost;
  }
  if (batcher_.has_value()) {
    batcher_->add(ev);
  }
  return per_record_cost();
}

VfsResult VfsShim::open(const std::string& path, fs::OpenMode mode,
                        const OpCtx& ctx) {
  VfsResult r = inner_->open(path, mode, ctx);
  fd_paths_[static_cast<int>(r.value)] = path;
  r.cost += capture(VfsOp::kOpen, path, static_cast<int>(r.value), -1, 0,
                    r.value, r.cost, ctx);
  return r;
}

VfsResult VfsShim::close(int fd, const OpCtx& ctx) {
  const std::string path = fd_paths_.count(fd) ? fd_paths_[fd] : std::string{};
  VfsResult r = inner_->close(fd, ctx);
  fd_paths_.erase(fd);
  r.cost += capture(VfsOp::kClose, path, fd, -1, 0, 0, r.cost, ctx);
  return r;
}

VfsResult VfsShim::read(int fd, Bytes offset, Bytes n, const OpCtx& ctx,
                        std::uint8_t* out) {
  VfsResult r = inner_->read(fd, offset, n, ctx, out);
  r.cost += capture(VfsOp::kRead, fd_paths_[fd], fd, offset, n, r.value,
                    r.cost, ctx);
  return r;
}

VfsResult VfsShim::write(int fd, Bytes offset, Bytes n, const OpCtx& ctx,
                         const std::uint8_t* data) {
  VfsResult r = inner_->write(fd, offset, n, ctx, data);
  r.cost += capture(VfsOp::kWrite, fd_paths_[fd], fd, offset, n, r.value,
                    r.cost, ctx);
  return r;
}

VfsResult VfsShim::fsync(int fd, const OpCtx& ctx) {
  VfsResult r = inner_->fsync(fd, ctx);
  r.cost += capture(VfsOp::kFsync, fd_paths_[fd], fd, -1, 0, 0, r.cost, ctx);
  return r;
}

VfsResult VfsShim::stat(const std::string& path, const OpCtx& ctx) {
  VfsResult r = inner_->stat(path, ctx);
  r.cost += capture(VfsOp::kStat, path, -1, -1, 0, r.value, r.cost, ctx);
  return r;
}

VfsResult VfsShim::statfs(const OpCtx& ctx) {
  VfsResult r = inner_->statfs(ctx);
  r.cost += capture(VfsOp::kStatfs, "/", -1, -1, 0, 0, r.cost, ctx);
  return r;
}

VfsResult VfsShim::mkdir(const std::string& path, const OpCtx& ctx) {
  VfsResult r = inner_->mkdir(path, ctx);
  r.cost += capture(VfsOp::kMkdir, path, -1, -1, 0, 0, r.cost, ctx);
  return r;
}

VfsResult VfsShim::unlink(const std::string& path, const OpCtx& ctx) {
  VfsResult r = inner_->unlink(path, ctx);
  r.cost += capture(VfsOp::kUnlink, path, -1, -1, 0, 0, r.cost, ctx);
  return r;
}

VfsResult VfsShim::readdir(const std::string& path, const OpCtx& ctx) {
  VfsResult r = inner_->readdir(path, ctx);
  r.cost += capture(VfsOp::kReaddir, path, -1, -1, 0, r.value, r.cost, ctx);
  return r;
}

VfsResult VfsShim::mmap(int fd, const OpCtx& ctx) {
  VfsResult r = inner_->mmap(fd, ctx);
  r.cost += capture(VfsOp::kMmap, fd_paths_[fd], fd, -1, 0, 0, r.cost, ctx);
  return r;
}

VfsResult VfsShim::mmap_read(int fd, Bytes offset, Bytes n, const OpCtx& ctx) {
  VfsResult r = inner_->mmap_read(fd, offset, n, ctx);
  r.cost += capture(VfsOp::kMmapRead, fd_paths_[fd], fd, offset, n, r.value,
                    r.cost, ctx);
  return r;
}

VfsResult VfsShim::mmap_write(int fd, Bytes offset, Bytes n, const OpCtx& ctx) {
  VfsResult r = inner_->mmap_write(fd, offset, n, ctx);
  r.cost += capture(VfsOp::kMmapWrite, fd_paths_[fd], fd, offset, n, n, r.cost,
                    ctx);
  return r;
}

}  // namespace iotaxo::interpose
