// Observer-based interposers: strace/ltrace (ptrace) and //TRACE-style
// dynamic library interposition. These attach to the MPI runtime's event
// stream, forward matching events to a sink, and charge the mechanism's
// per-event cost to the traced rank.
//
// Delivery to the sink goes through per-rank batch buffers (trace::
// RankBatcher): with batch_capacity > 1 a rank's events are interned into
// an EventBatch and handed to the sink in bulk via on_batch — the capture
// hot path stops paying per-event heap and virtual-call costs. The runtime
// calls flush() at end of run; manual drivers (tests) call it explicitly.
// batch_capacity == 1 (the default for direct construction) delivers each
// event immediately, preserving interleaved observation order.
//
// Async-flush mode (off by default): when AsyncFlushMode.enabled, the sink
// is wrapped in a trace::AsyncBatchSink, so full batches move onto flush
// workers instead of being delivered inline — benchmark-scale runs hide
// delivery cost entirely behind the traced job. flush() then doubles as the
// drain barrier: it blocks until the async queue is empty, so results stay
// deterministic by the time the runtime calls on_run_end().
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "interpose/mechanism.h"
#include "mpi/runtime.h"
#include "trace/async_sink.h"
#include "trace/event.h"
#include "trace/sink.h"

namespace iotaxo::interpose {

/// strace / ltrace. Mode selects the captured event classes:
/// kStrace -> syscalls only; kLtrace -> syscalls + library calls.
/// This is LANL-Trace's "control of trace granularity" (§4.1.1).
class PtraceTracer : public mpi::IoObserver {
 public:
  enum class Mode { kStrace, kLtrace };

  PtraceTracer(Mode mode, trace::SinkPtr sink, InterposeCosts costs = {},
               std::size_t batch_capacity = 1,
               trace::AsyncFlushMode async = {});

  [[nodiscard]] SimTime on_event(const trace::TraceEvent& ev) override;
  void flush() override;

  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] long long events_captured() const noexcept {
    return events_captured_;
  }

 private:
  Mode mode_;
  trace::RankBatcher batcher_;
  InterposeCosts costs_;
  long long events_captured_ = 0;
};

/// LD_PRELOAD-style interposition of I/O library calls (//TRACE's capture
/// mechanism, [11] in the paper). Sees library-level I/O calls only; like
/// ptrace tracers it cannot observe memory-mapped I/O.
class DynLibInterposer : public mpi::IoObserver {
 public:
  explicit DynLibInterposer(trace::SinkPtr sink, InterposeCosts costs = {},
                            std::size_t batch_capacity = 1,
                            trace::AsyncFlushMode async = {});

  [[nodiscard]] SimTime on_event(const trace::TraceEvent& ev) override;
  void flush() override;

  [[nodiscard]] long long events_captured() const noexcept {
    return events_captured_;
  }

  /// The I/O call names this interposer wraps.
  [[nodiscard]] static const std::set<std::string>& wrapped_calls();

 private:
  trace::RankBatcher batcher_;
  InterposeCosts costs_;
  long long events_captured_ = 0;
};

/// Zero-cost collector for clock probes and annotations (the LANL-Trace
/// wrapper script consumes these itself; they are not ptrace events).
class ProbeCollector : public mpi::IoObserver {
 public:
  [[nodiscard]] SimTime on_event(const trace::TraceEvent& ev) override;

  [[nodiscard]] const std::vector<trace::TraceEvent>& probes() const noexcept {
    return probes_;
  }
  [[nodiscard]] const std::vector<trace::TraceEvent>& annotations()
      const noexcept {
    return annotations_;
  }
  [[nodiscard]] const std::vector<trace::TraceEvent>& barriers()
      const noexcept {
    return barriers_;
  }

 private:
  std::vector<trace::TraceEvent> probes_;
  std::vector<trace::TraceEvent> annotations_;
  std::vector<trace::TraceEvent> barriers_;
};

}  // namespace iotaxo::interpose
