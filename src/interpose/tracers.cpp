#include "interpose/tracers.h"

#include <utility>

#include "util/error.h"

namespace iotaxo::interpose {

using trace::EventClass;
using trace::TraceEvent;

const char* to_string(Mechanism m) noexcept {
  switch (m) {
    case Mechanism::kPtraceSyscall:
      return "ptrace-syscall";
    case Mechanism::kPtraceLibrary:
      return "ptrace-library";
    case Mechanism::kDynLibInterpose:
      return "dynlib-interpose";
    case Mechanism::kVfsStack:
      return "vfs-stack";
  }
  return "?";
}

SimTime event_cost(const InterposeCosts& costs, Mechanism m) noexcept {
  switch (m) {
    case Mechanism::kPtraceSyscall:
      return costs.ptrace_syscall_event;
    case Mechanism::kPtraceLibrary:
      return costs.ptrace_library_event;
    case Mechanism::kDynLibInterpose:
      return costs.dynlib_event;
    case Mechanism::kVfsStack:
      return costs.vfs_record_event;
  }
  return 0;
}

namespace {

[[nodiscard]] trace::SinkPtr require_sink(trace::SinkPtr sink,
                                          const char* who) {
  if (!sink) {
    throw ConfigError(std::string(who) + " needs a sink");
  }
  return sink;
}

}  // namespace

PtraceTracer::PtraceTracer(Mode mode, trace::SinkPtr sink,
                           InterposeCosts costs, std::size_t batch_capacity,
                           trace::AsyncFlushMode async)
    : mode_(mode),
      batcher_(trace::maybe_async(
                   require_sink(std::move(sink), "PtraceTracer"), async),
               batch_capacity),
      costs_(costs) {}

void PtraceTracer::flush() { batcher_.flush(); }

SimTime PtraceTracer::on_event(const TraceEvent& ev) {
  switch (ev.cls) {
    case EventClass::kSyscall: {
      batcher_.add(ev);
      ++events_captured_;
      return mode_ == Mode::kStrace ? costs_.ptrace_syscall_event
                                    : costs_.ptrace_library_event;
    }
    case EventClass::kLibraryCall: {
      if (mode_ == Mode::kStrace) {
        return 0;  // strace does not see library calls
      }
      batcher_.add(ev);
      ++events_captured_;
      return costs_.ptrace_library_event;
    }
    case EventClass::kFsOperation:
    case EventClass::kClockProbe:
    case EventClass::kAnnotation:
      return 0;
  }
  return 0;
}

DynLibInterposer::DynLibInterposer(trace::SinkPtr sink, InterposeCosts costs,
                                   std::size_t batch_capacity,
                                   trace::AsyncFlushMode async)
    : batcher_(trace::maybe_async(
                   require_sink(std::move(sink), "DynLibInterposer"), async),
               batch_capacity),
      costs_(costs) {}

void DynLibInterposer::flush() { batcher_.flush(); }

const std::set<std::string>& DynLibInterposer::wrapped_calls() {
  static const std::set<std::string> kCalls = {
      "open",           "close",          "read",
      "write",          "fsync",          "stat",
      "statfs",         "mkdir",          "unlink",
      "readdir",        "mmap",           "MPI_File_open",
      "MPI_File_close", "MPI_File_write_at", "MPI_File_read_at",
      "MPI_Barrier",    "MPI_Send",       "MPI_Recv",
  };
  return kCalls;
}

SimTime DynLibInterposer::on_event(const TraceEvent& ev) {
  if (ev.cls != EventClass::kLibraryCall) {
    return 0;  // wrappers live at the library boundary only
  }
  if (!wrapped_calls().contains(ev.name)) {
    return 0;
  }
  batcher_.add(ev);
  ++events_captured_;
  return costs_.dynlib_event;
}

SimTime ProbeCollector::on_event(const TraceEvent& ev) {
  switch (ev.cls) {
    case EventClass::kClockProbe:
      probes_.push_back(ev);
      return 0;
    case EventClass::kAnnotation:
      annotations_.push_back(ev);
      return 0;
    case EventClass::kLibraryCall:
      if (ev.name == "MPI_Barrier") {
        barriers_.push_back(ev);
      }
      return 0;
    default:
      return 0;
  }
}

}  // namespace iotaxo::interpose
