// Stackable VFS tracing shim — the capture layer of our Tracefs
// reimplementation. Mounted over any Vfs, it observes every file-system
// operation (including memory-mapped I/O and NFS traffic that syscall-level
// tracers miss), evaluates a granularity filter, and either appends a
// binary record (buffered, optionally checksummed/compressed/encrypted) or
// bumps an aggregation counter.
//
// Capture cost is charged inline on the operation's VfsResult.cost, exactly
// as an in-kernel implementation would slow the calling process.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "fs/vfs.h"
#include "sim/cluster.h"
#include "trace/async_sink.h"
#include "trace/event.h"
#include "trace/sink.h"

namespace iotaxo::interpose {

/// Predicate deciding whether a candidate VFS event is traced. Tracefs
/// builds these from its declarative filter language.
using VfsEventFilter = std::function<bool(const trace::TraceEvent&)>;

struct VfsShimOptions {
  /// Build + append one binary record into the in-kernel buffer.
  SimTime record_cost = from_micros(9.3);
  Bytes record_bytes = 64;
  /// Buffered output: a full buffer flush costs flush_cost and is amortized
  /// over buffer_bytes / record_bytes records.
  Bytes buffer_bytes = 256 * kKiB;
  SimTime flush_cost = from_millis(1.2);

  bool checksum = false;
  SimTime checksum_cost = from_micros(6.0);
  bool compress = false;
  SimTime compress_cost = from_micros(9.0);
  bool encrypt = false;
  SimTime encrypt_cost = from_micros(18.0);

  /// Aggregation mode: count events per op type instead of recording them.
  bool aggregate_only = false;
  SimTime counter_cost = from_micros(0.5);

  /// Sink delivery granularity: events buffer into per-rank EventBatches
  /// and reach the sink via on_batch once a rank accumulates this many
  /// (remainders on flush()). 1 delivers each event immediately.
  std::size_t batch_capacity = 1;

  /// Async flush (off by default): wrap the sink in a trace::AsyncBatchSink
  /// so full batches move onto flush workers; flush() becomes the drain
  /// barrier. Benchmark-scale knob — simulated capture *cost* is unchanged
  /// (record_cost et al. model the in-kernel path), only real sink delivery
  /// leaves the caller's thread.
  trace::AsyncFlushMode async_flush;
};

class VfsShim : public fs::Vfs {
 public:
  /// `cluster` provides node-local clocks for event timestamps; may be
  /// nullptr, in which case events carry global time.
  VfsShim(fs::VfsPtr inner, trace::SinkPtr sink, VfsShimOptions options,
          const sim::Cluster* cluster = nullptr,
          VfsEventFilter filter = nullptr);

  [[nodiscard]] fs::FsKind kind() const noexcept override {
    return inner_->kind();
  }
  [[nodiscard]] std::string fstype() const override { return "tracefs"; }

  fs::VfsResult open(const std::string& path, fs::OpenMode mode,
                     const fs::OpCtx& ctx) override;
  fs::VfsResult close(int fd, const fs::OpCtx& ctx) override;
  fs::VfsResult read(int fd, Bytes offset, Bytes n, const fs::OpCtx& ctx,
                     std::uint8_t* out) override;
  fs::VfsResult write(int fd, Bytes offset, Bytes n, const fs::OpCtx& ctx,
                      const std::uint8_t* data) override;
  fs::VfsResult fsync(int fd, const fs::OpCtx& ctx) override;
  fs::VfsResult stat(const std::string& path, const fs::OpCtx& ctx) override;
  fs::VfsResult statfs(const fs::OpCtx& ctx) override;
  fs::VfsResult mkdir(const std::string& path, const fs::OpCtx& ctx) override;
  fs::VfsResult unlink(const std::string& path, const fs::OpCtx& ctx) override;
  fs::VfsResult readdir(const std::string& path, const fs::OpCtx& ctx) override;
  fs::VfsResult mmap(int fd, const fs::OpCtx& ctx) override;
  fs::VfsResult mmap_read(int fd, Bytes offset, Bytes n,
                          const fs::OpCtx& ctx) override;
  fs::VfsResult mmap_write(int fd, Bytes offset, Bytes n,
                           const fs::OpCtx& ctx) override;

  [[nodiscard]] double stall_amplification(int fd) const noexcept override {
    return inner_->stall_amplification(fd);
  }

  [[nodiscard]] bool exists(const std::string& path) const override {
    return inner_->exists(path);
  }
  [[nodiscard]] fs::StatInfo stat_info(const std::string& path) const override {
    return inner_->stat_info(path);
  }
  [[nodiscard]] std::vector<std::string> list(
      const std::string& dir) const override {
    return inner_->list(dir);
  }
  [[nodiscard]] std::vector<std::uint8_t> content(
      const std::string& path) const override {
    return inner_->content(path);
  }

  [[nodiscard]] long long events_captured() const noexcept {
    return events_captured_;
  }
  /// Aggregation counters (op name -> count); populated in both modes.
  [[nodiscard]] const std::map<std::string, long long>& counters()
      const noexcept {
    return counters_;
  }

  /// Drain buffered per-rank batches to the sink (an unmount barrier; the
  /// Tracefs framework calls this after the traced job completes).
  void flush();

 private:
  /// Build the candidate event, filter it, charge capture cost.
  [[nodiscard]] SimTime capture(fs::VfsOp op, const std::string& path, int fd,
                                Bytes offset, Bytes n, long long ret,
                                SimTime op_cost, const fs::OpCtx& ctx);

  [[nodiscard]] SimTime per_record_cost() const noexcept;

  fs::VfsPtr inner_;
  std::optional<trace::RankBatcher> batcher_;  // absent when sink is null
  VfsShimOptions options_;
  const sim::Cluster* cluster_;
  VfsEventFilter filter_;
  std::map<std::string, long long> counters_;
  std::map<int, std::string> fd_paths_;
  long long events_captured_ = 0;
};

}  // namespace iotaxo::interpose
