// Interposition mechanisms and their cost models.
//
// Each I/O tracing framework captures events through a different layer, and
// each layer has a characteristic per-event cost — this is the axis the
// paper's overhead measurements quantify:
//
//   kPtraceSyscall  strace-style: the kernel stops the tracee at syscall
//                   entry/exit; the tracer (a separate process) reads
//                   registers, formats a line and writes it out. Hundreds
//                   of microseconds per event.
//   kPtraceLibrary  ltrace-style: breakpoint-based library call tracing on
//                   top of ptrace; slightly costlier per event.
//   kDynLibInterpose //TRACE-style LD_PRELOAD wrappers executing inside the
//                   application process: tens of microseconds.
//   kVfsStack       Tracefs-style in-kernel stackable file system: an
//                   in-kernel record append with buffered flushing; the
//                   cheapest mechanism per event.
#pragma once

#include "util/types.h"

namespace iotaxo::interpose {

enum class Mechanism {
  kPtraceSyscall,
  kPtraceLibrary,
  kDynLibInterpose,
  kVfsStack,
};

[[nodiscard]] const char* to_string(Mechanism m) noexcept;

/// Per-event capture costs. Defaults are calibrated so the LANL-Trace
/// overhead experiments land on the paper's anchor points (§4.1.2); see
/// EXPERIMENTS.md for the calibration table.
struct InterposeCosts {
  SimTime ptrace_syscall_event = from_micros(300.0);
  SimTime ptrace_library_event = from_micros(329.0);
  SimTime dynlib_event = from_micros(14.0);
  /// VFS record build cost; flush amortization is configured separately on
  /// the shim (buffer size, checksum, compression, encryption).
  SimTime vfs_record_event = from_micros(24.0);
};

[[nodiscard]] SimTime event_cost(const InterposeCosts& costs,
                                 Mechanism m) noexcept;

}  // namespace iotaxo::interpose
