// The experiment-driven classifier: applies the taxonomy to a framework by
// actually exercising it — mounting it over different file systems, tracing
// canonical workloads, anonymizing, replaying, and measuring overheads —
// mirroring §3.1's method ("we install and use the framework, investigate
// documentation and published results").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "frameworks/framework.h"
#include "taxonomy/classification.h"
#include "taxonomy/overhead.h"

namespace iotaxo::taxonomy {

struct ClassifierConfig {
  /// Ranks used in classification experiments.
  int nranks = 8;
  /// Phases in the dependency-discovery probe (>= nranks for a full
  /// throttling rotation).
  int probe_phases = 16;
  /// Total bytes for the overhead mini-sweep (kept small; the dedicated
  /// benches run the full-scale sweeps).
  Bytes sweep_total_bytes = 256 * kMiB;
  /// Block sizes for the elapsed-overhead range estimate.
  std::vector<Bytes> sweep_blocks = {64 * kKiB, 8 * kMiB};
  /// Sensitive strings planted in workloads; anonymization must scrub them.
  std::vector<std::string> sensitive = {"secret_project", "lanl.gov"};
};

class Classifier {
 public:
  explicit Classifier(const sim::Cluster& cluster,
                      ClassifierConfig config = {});

  /// Run the full classification battery against one framework.
  [[nodiscard]] FrameworkClassification classify(
      frameworks::TracingFramework& framework);

 private:
  void classify_pfs_compatibility(frameworks::TracingFramework& framework,
                                  FrameworkClassification& c);
  void classify_install(frameworks::TracingFramework& framework,
                        FrameworkClassification& c);
  void classify_event_types_and_format(
      frameworks::TracingFramework& framework,
      const frameworks::TraceRunResult& canonical,
      FrameworkClassification& c);
  void classify_anonymization(frameworks::TracingFramework& framework,
                              const frameworks::TraceRunResult& canonical,
                              FrameworkClassification& c);
  void classify_replay_and_dependencies(
      frameworks::TracingFramework& framework, FrameworkClassification& c);
  void classify_skew_drift(frameworks::TracingFramework& framework,
                           const frameworks::TraceRunResult& canonical,
                           FrameworkClassification& c);
  void classify_overhead(frameworks::TracingFramework& framework,
                         FrameworkClassification& c);

  /// Trace a small local-fs job with raw streams retained (input to the
  /// event-type, anonymization and skew/drift experiments).
  [[nodiscard]] frameworks::TraceRunResult trace_canonical_local(
      frameworks::TracingFramework& framework);

  [[nodiscard]] fs::VfsPtr make_local() const;
  [[nodiscard]] fs::VfsPtr make_pfs() const;

  const sim::Cluster& cluster_;
  ClassifierConfig config_;
};

}  // namespace iotaxo::taxonomy
