// The taxonomy's quantitative element: the overhead-measurement harness
// (§3.1 "Elapsed time overhead" and the bandwidth-overhead methodology of
// §4.1.2). It runs the same job untraced and traced against fresh file
// systems and reports both overheads plus the bandwidths of the I/O window.
#pragma once

#include <functional>
#include <vector>

#include "frameworks/framework.h"
#include "workload/mpi_io_test.h"

namespace iotaxo::taxonomy {

/// Produces a fresh file system per run (traced and untraced runs must not
/// share state).
using VfsFactory = std::function<fs::VfsPtr()>;

struct OverheadPoint {
  Bytes block = 0;
  double bw_untraced_mibps = 0.0;
  double bw_traced_mibps = 0.0;
  /// Bandwidth overhead of the I/O phase (fraction).
  double bandwidth_overhead = 0.0;
  SimTime elapsed_untraced = 0;
  SimTime elapsed_traced = 0;  // framework-apparent (startup + postproc)
  /// The paper's elapsed-time overhead formula (fraction).
  double elapsed_overhead = 0.0;
  long long events = 0;
};

class OverheadHarness {
 public:
  OverheadHarness(const sim::Cluster& cluster, VfsFactory vfs_factory);

  /// Measure one job under one framework.
  [[nodiscard]] OverheadPoint measure(frameworks::TracingFramework& framework,
                                      const mpi::Job& job);

  /// Block-size sweep of mpi_io_test under `base` parameters (the Figures
  /// 2-4 experiment). Runs are independent; `parallel` uses a thread pool.
  [[nodiscard]] std::vector<OverheadPoint> sweep_block_sizes(
      frameworks::TracingFramework& framework,
      workload::MpiIoTestParams base, const std::vector<Bytes>& blocks,
      bool parallel = true);

 private:
  const sim::Cluster& cluster_;
  VfsFactory vfs_factory_;
};

/// Standard block-size ladder used by the paper's figures (64 KiB .. 8 MiB).
[[nodiscard]] std::vector<Bytes> figure_block_sizes();

}  // namespace iotaxo::taxonomy
