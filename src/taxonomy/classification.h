// Classification records and summary-table rendering (Tables 1 and 2).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "taxonomy/features.h"

namespace iotaxo::taxonomy {

struct FrameworkClassification {
  std::string framework_name;
  std::map<FeatureId, FeatureValue> values;
  /// Footnote-style remarks keyed by feature (rendered below the table).
  std::map<FeatureId, std::string> notes;

  [[nodiscard]] const FeatureValue& value(FeatureId id) const;
  void set(FeatureId id, FeatureValue value);
  void note(FeatureId id, std::string text);
};

/// Table 1: the empty summary-table template with placeholder text.
[[nodiscard]] std::string render_table1_template();

/// A filled single-framework summary table (Table 2 of the case study for
/// one column).
[[nodiscard]] std::string render_summary_table(
    const FrameworkClassification& c);

/// Table 2: side-by-side classification of several frameworks, with
/// numbered footnotes collected from the classifications' notes.
[[nodiscard]] std::string render_comparison_table(
    const std::vector<FrameworkClassification>& classifications);

}  // namespace iotaxo::taxonomy
