#include "taxonomy/overhead.h"

#include <mutex>

#include "analysis/bandwidth.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace iotaxo::taxonomy {

OverheadHarness::OverheadHarness(const sim::Cluster& cluster,
                                 VfsFactory vfs_factory)
    : cluster_(cluster), vfs_factory_(std::move(vfs_factory)) {
  if (!vfs_factory_) {
    throw ConfigError("OverheadHarness needs a vfs factory");
  }
}

OverheadPoint OverheadHarness::measure(
    frameworks::TracingFramework& framework, const mpi::Job& job) {
  OverheadPoint point;

  const mpi::RunResult untraced =
      frameworks::run_untraced(cluster_, job, vfs_factory_());
  point.elapsed_untraced = untraced.elapsed;
  point.bw_untraced_mibps = analysis::io_phase_bandwidth_mibps(untraced);

  frameworks::TraceJobOptions options;
  options.store_raw_streams = false;  // benchmark mode: summaries only
  const frameworks::TraceRunResult traced =
      framework.trace(cluster_, job, vfs_factory_(), options);
  point.elapsed_traced = traced.apparent_elapsed;
  point.bw_traced_mibps = analysis::io_phase_bandwidth_mibps(traced.run);
  point.events = traced.bundle.total_events();

  point.bandwidth_overhead =
      analysis::bandwidth_overhead(point.bw_untraced_mibps,
                                   point.bw_traced_mibps);
  point.elapsed_overhead = analysis::elapsed_time_overhead(
      point.elapsed_traced, point.elapsed_untraced);
  return point;
}

std::vector<OverheadPoint> OverheadHarness::sweep_block_sizes(
    frameworks::TracingFramework& framework, workload::MpiIoTestParams base,
    const std::vector<Bytes>& blocks, bool parallel) {
  std::vector<OverheadPoint> points(blocks.size());
  auto run_one = [&](std::size_t i) {
    workload::MpiIoTestParams params = base;
    params.block = blocks[i];
    const mpi::Job job = workload::make_mpi_io_test(params);
    points[i] = measure(framework, job);
    points[i].block = blocks[i];
  };
  if (parallel && blocks.size() > 1) {
    parallel_for(blocks.size(), run_one);
  } else {
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      run_one(i);
    }
  }
  return points;
}

std::vector<Bytes> figure_block_sizes() {
  return {64 * kKiB, 128 * kKiB, 256 * kKiB, 512 * kKiB,
          1 * kMiB,  2 * kMiB,   4 * kMiB,   8 * kMiB};
}

}  // namespace iotaxo::taxonomy
