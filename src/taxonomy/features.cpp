#include "taxonomy/features.h"

#include "util/strings.h"

namespace iotaxo::taxonomy {

const char* feature_name(FeatureId id) noexcept {
  switch (id) {
    case FeatureId::kParallelFsCompatibility:
      return "Parallel file system compatibility";
    case FeatureId::kEaseOfInstall:
      return "Ease of installation and use";
    case FeatureId::kAnonymization:
      return "Anonymization";
    case FeatureId::kEventTypes:
      return "Events types";
    case FeatureId::kGranularityControl:
      return "Control of trace granularity";
    case FeatureId::kReplayableTraces:
      return "Replayable trace generation";
    case FeatureId::kReplayFidelity:
      return "Trace replay fidelity";
    case FeatureId::kRevealsDependencies:
      return "Reveals dependencies";
    case FeatureId::kIntrusiveness:
      return "Intrusive vs. Passive";
    case FeatureId::kAnalysisTools:
      return "Analysis tools";
    case FeatureId::kTraceDataFormat:
      return "Trace data format";
    case FeatureId::kSkewDriftAccounting:
      return "Accounts for time skew and drift";
    case FeatureId::kElapsedTimeOverhead:
      return "Elapsed time overhead";
  }
  return "?";
}

const char* feature_placeholder(FeatureId id) noexcept {
  switch (id) {
    case FeatureId::kParallelFsCompatibility:
      return "[Yes or No]";
    case FeatureId::kEaseOfInstall:
      return "[1 (V. Easy) thru 5 (V. Difficult)]";
    case FeatureId::kAnonymization:
      return "[None or 1 (Simple) thru 5 (V. Advanced)]";
    case FeatureId::kEventTypes:
      return "[System calls, library calls, FS events]";
    case FeatureId::kGranularityControl:
      return "[Yes or No]";
    case FeatureId::kReplayableTraces:
      return "[Yes or No]";
    case FeatureId::kReplayFidelity:
      return "Describe experiment results";
    case FeatureId::kRevealsDependencies:
      return "[Yes or No]";
    case FeatureId::kIntrusiveness:
      return "[1 (V. Passive) thru 5 (V. Intrusive)]";
    case FeatureId::kAnalysisTools:
      return "[Yes or No]";
    case FeatureId::kTraceDataFormat:
      return "[Binary or Human readable]";
    case FeatureId::kSkewDriftAccounting:
      return "[Yes or No]";
    case FeatureId::kElapsedTimeOverhead:
      return "Describe experiment results";
  }
  return "?";
}

const std::vector<FeatureId>& all_features() noexcept {
  static const std::vector<FeatureId> kAll = {
      FeatureId::kParallelFsCompatibility,
      FeatureId::kEaseOfInstall,
      FeatureId::kAnonymization,
      FeatureId::kEventTypes,
      FeatureId::kGranularityControl,
      FeatureId::kReplayableTraces,
      FeatureId::kReplayFidelity,
      FeatureId::kRevealsDependencies,
      FeatureId::kIntrusiveness,
      FeatureId::kAnalysisTools,
      FeatureId::kTraceDataFormat,
      FeatureId::kSkewDriftAccounting,
      FeatureId::kElapsedTimeOverhead,
  };
  return kAll;
}

FeatureValue FeatureValue::scale(int level, const char* low_label,
                                 const char* high_label) {
  if (level <= 0) {
    return {"No", 0.0};
  }
  const char* label = level <= 1   ? low_label
                      : level >= 5 ? high_label
                      : level == 2 ? "Easy"
                      : level == 3 ? "Moderate"
                                   : "Advanced";
  return {strprintf("%d (%s)", level, label), static_cast<double>(level)};
}

}  // namespace iotaxo::taxonomy
