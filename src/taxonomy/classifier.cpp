#include "taxonomy/classifier.h"

#include <algorithm>
#include <set>

#include "analysis/skew_drift.h"
#include "anon/anonymizer.h"
#include "fs/memfs.h"
#include "pfs/pfs.h"
#include "replay/replayer.h"
#include "trace/binary_format.h"
#include "util/error.h"
#include "util/strings.h"
#include "workload/io_intensive.h"
#include "workload/probe_app.h"

namespace iotaxo::taxonomy {

using frameworks::TraceJobOptions;
using frameworks::TraceRunResult;
using frameworks::TracingFramework;

Classifier::Classifier(const sim::Cluster& cluster, ClassifierConfig config)
    : cluster_(cluster), config_(std::move(config)) {}

fs::VfsPtr Classifier::make_local() const {
  return std::make_shared<fs::MemFs>();
}

fs::VfsPtr Classifier::make_pfs() const {
  return std::make_shared<pfs::Pfs>();
}

TraceRunResult Classifier::trace_canonical_local(TracingFramework& framework) {
  workload::IoIntensiveParams params;
  params.nranks = 2;
  params.files_per_rank = 12;
  params.mmap_files_per_rank = 3;
  params.root = "/secret_project/scratch";
  const mpi::Job job = workload::make_io_intensive(params);
  TraceJobOptions options;
  options.store_raw_streams = true;
  return framework.trace(cluster_, job, make_local(), options);
}

void Classifier::classify_pfs_compatibility(TracingFramework& framework,
                                            FrameworkClassification& c) {
  // The experiment the paper describes: actually try to trace a parallel
  // job on the parallel file system "out of the box".
  workload::ProbeAppParams params;
  params.nranks = std::min(config_.nranks, 4);
  params.phases = 4;
  params.blocks_per_phase = 2;
  const mpi::Job job = workload::make_probe_app(params);
  TraceJobOptions options;
  options.store_raw_streams = false;
  try {
    (void)framework.trace(cluster_, job, make_pfs(), options);
    c.set(FeatureId::kParallelFsCompatibility, FeatureValue::yes_no(true));
  } catch (const UnsupportedError& err) {
    c.set(FeatureId::kParallelFsCompatibility, FeatureValue::yes_no(false));
    c.note(FeatureId::kParallelFsCompatibility, err.what());
  }
}

void Classifier::classify_install(TracingFramework& framework,
                                  FrameworkClassification& c) {
  const frameworks::InstallProfile profile = framework.install_profile();
  const int ease = frameworks::ease_of_install_score(profile);
  c.set(FeatureId::kEaseOfInstall,
        FeatureValue::scale(ease, "V. Easy", "V. Difficult"));
  const int intrusive = frameworks::intrusiveness_score(profile);
  c.set(FeatureId::kIntrusiveness,
        intrusive <= 1 ? FeatureValue{"1 (Passive)", 1.0}
                       : FeatureValue::scale(intrusive, "V. Passive",
                                             "V. Intrusive"));
}

void Classifier::classify_event_types_and_format(
    TracingFramework& framework, const TraceRunResult& canonical,
    FrameworkClassification& c) {
  const frameworks::Capabilities caps = framework.capabilities();

  // Verify the claimed event classes against what the trace really holds.
  std::set<trace::EventClass> seen;
  bool saw_mmap_io = false;
  for (const trace::RankStream& rs : canonical.bundle.ranks) {
    for (const trace::TraceEvent& ev : rs.events) {
      seen.insert(ev.cls);
      if (ev.name.find("mmap_write") != std::string::npos ||
          ev.name.find("mmap_read") != std::string::npos) {
        saw_mmap_io = true;
      }
    }
  }
  FeatureValue types = FeatureValue::text(caps.event_types);
  c.set(FeatureId::kEventTypes, types);
  if (!caps.sees_mmap_io || !saw_mmap_io) {
    c.note(FeatureId::kEventTypes,
           "cannot track memory-mapped I/O (verified: workload's mmap "
           "writes are absent from the trace)");
  }

  c.set(FeatureId::kGranularityControl,
        caps.granularity_level <= 0
            ? FeatureValue{"No", 0.0}
            : FeatureValue::scale(caps.granularity_level, "Simple",
                                  "V. Advanced"));

  const std::vector<std::uint8_t> native =
      framework.export_native(canonical.bundle);
  const bool binary = trace::looks_binary(native);
  c.set(FeatureId::kTraceDataFormat,
        FeatureValue::text(binary ? "Binary" : "Human readable"));
  if (binary != !caps.human_readable_output) {
    c.note(FeatureId::kTraceDataFormat,
           "claimed format disagrees with the sniffed output");
  }

  c.set(FeatureId::kAnalysisTools, FeatureValue::yes_no(caps.analysis_tools));
}

void Classifier::classify_anonymization(TracingFramework& framework,
                                        const TraceRunResult& canonical,
                                        FrameworkClassification& c) {
  const frameworks::Capabilities caps = framework.capabilities();
  const auto scrubbed = framework.anonymize_bundle(canonical.bundle);
  if (!scrubbed.has_value() || caps.anonymization_level <= 0) {
    c.set(FeatureId::kAnonymization, FeatureValue{"No", 0.0});
    return;
  }
  c.set(FeatureId::kAnonymization,
        FeatureValue::scale(caps.anonymization_level, "Simple", "V. Advanced"));
  if (anon::leaks_any(*scrubbed, config_.sensitive)) {
    c.note(FeatureId::kAnonymization,
           "VERIFICATION FAILED: sensitive strings survive anonymization");
  } else if (caps.anonymization_level < 5) {
    c.note(FeatureId::kAnonymization,
           "encryption-based: not classified 'Very advanced' because the "
           "mapping is reversible if the key is ever compromised");
  }
}

void Classifier::classify_replay_and_dependencies(
    TracingFramework& framework, FrameworkClassification& c) {
  const frameworks::Capabilities caps = framework.capabilities();

  // Trace the probe app (PFS when supported — the realistic setting).
  workload::ProbeAppParams params;
  params.nranks = config_.nranks;
  params.phases = config_.probe_phases;
  const bool on_pfs = framework.supports_fs(fs::FsKind::kParallel);
  const mpi::Job job = workload::make_probe_app(params);
  TraceJobOptions options;
  options.store_raw_streams = true;
  const TraceRunResult traced = framework.trace(
      cluster_, job, on_pfs ? make_pfs() : make_local(), options);

  // Dependency discovery: edges must exist and reference valid ranks.
  bool deps_ok = !traced.bundle.dependencies.empty();
  for (const trace::DependencyEdge& e : traced.bundle.dependencies) {
    deps_ok = deps_ok && e.from_rank >= 0 && e.from_rank < params.nranks &&
              e.to_rank >= 0 && e.to_rank < params.nranks &&
              e.from_rank != e.to_rank;
  }
  c.set(FeatureId::kRevealsDependencies,
        FeatureValue::yes_no(caps.reveals_dependencies && deps_ok));

  if (!caps.replayable_traces) {
    c.set(FeatureId::kReplayableTraces, FeatureValue::yes_no(false));
    c.set(FeatureId::kReplayFidelity, FeatureValue::not_applicable());
    return;
  }

  // Verify replayability by generating and running the pseudo-application,
  // then measure fidelity the paper's way (end-to-end runtime comparison
  // plus trace-vs-trace comparison).
  replay::ReplayOptions replay_options;
  replay_options.pseudo.sync = caps.reveals_dependencies
                                   ? replay::SyncStrategy::kDependencies
                                   : replay::SyncStrategy::kBarriers;
  try {
    replay::Replayer replayer(cluster_, on_pfs ? make_pfs() : make_local());
    const analysis::FidelityReport report = replayer.verify(
        traced.bundle, traced.run.elapsed, replay_options);
    c.set(FeatureId::kReplayableTraces, FeatureValue::yes_no(true));
    c.set(FeatureId::kReplayFidelity,
          FeatureValue{strprintf("runtime error %s",
                                 format_pct(report.runtime_error).c_str()),
                       report.runtime_error});
    c.note(FeatureId::kReplayFidelity, report.summary());
  } catch (const Error& err) {
    c.set(FeatureId::kReplayableTraces, FeatureValue::yes_no(false));
    c.set(FeatureId::kReplayFidelity, FeatureValue::not_applicable());
    c.note(FeatureId::kReplayableTraces,
           std::string("replay verification failed: ") + err.what());
  }
}

void Classifier::classify_skew_drift(TracingFramework& framework,
                                     const TraceRunResult& canonical,
                                     FrameworkClassification& c) {
  if (canonical.bundle.clock_probes.empty()) {
    // A framework that can trace parallel jobs but collects no clock probes
    // simply does not account for skew/drift ("No", //TRACE's column); a
    // framework with no parallel awareness at all has nothing to account
    // for ("N/A", Tracefs's column).
    c.set(FeatureId::kSkewDriftAccounting,
          framework.supports_fs(fs::FsKind::kParallel)
              ? FeatureValue{"No", 0.0}
              : FeatureValue::not_applicable());
    return;
  }
  try {
    const analysis::SkewDriftModel model =
        analysis::SkewDriftModel::fit(canonical.bundle.clock_probes);
    c.set(FeatureId::kSkewDriftAccounting, FeatureValue::yes_no(true));
    c.note(FeatureId::kSkewDriftAccounting,
           strprintf("max observed skew %s across %d ranks",
                     format_duration(model.max_skew()).c_str(),
                     model.rank_count()));
  } catch (const Error&) {
    c.set(FeatureId::kSkewDriftAccounting, FeatureValue::yes_no(false));
  }
}

void Classifier::classify_overhead(TracingFramework& framework,
                                   FrameworkClassification& c) {
  if (framework.supports_fs(fs::FsKind::kParallel)) {
    OverheadHarness harness(cluster_, [this] { return make_pfs(); });
    workload::MpiIoTestParams base;
    base.pattern = workload::Pattern::kNto1Strided;
    base.nranks = config_.nranks;
    base.total_bytes = config_.sweep_total_bytes;
    const auto points =
        harness.sweep_block_sizes(framework, base, config_.sweep_blocks);
    double lo = points.front().elapsed_overhead;
    double hi = lo;
    for (const OverheadPoint& p : points) {
      lo = std::min(lo, p.elapsed_overhead);
      hi = std::max(hi, p.elapsed_overhead);
    }
    c.set(FeatureId::kElapsedTimeOverhead,
          FeatureValue{strprintf("%s - %s", format_pct(lo).c_str(),
                                 format_pct(hi).c_str()),
                       hi});
    c.note(FeatureId::kElapsedTimeOverhead,
           strprintf("mpi_io_test N-1 strided, %d ranks, blocks %s..%s",
                     config_.nranks,
                     format_bytes(config_.sweep_blocks.front()).c_str(),
                     format_bytes(config_.sweep_blocks.back()).c_str()));
  } else {
    // Framework cannot run the parallel benchmark; use the I/O-intensive
    // local workload (the Tracefs methodology).
    OverheadHarness harness(cluster_, [this] { return make_local(); });
    workload::IoIntensiveParams params;
    params.nranks = 1;
    params.files_per_rank = 1000;
    const OverheadPoint p =
        harness.measure(framework, workload::make_io_intensive(params));
    c.set(FeatureId::kElapsedTimeOverhead,
          FeatureValue{strprintf("<= %s", format_pct(p.elapsed_overhead).c_str()),
                       p.elapsed_overhead});
    c.note(FeatureId::kElapsedTimeOverhead,
           "I/O-intensive metadata workload on the local file system");
  }
}

FrameworkClassification Classifier::classify(TracingFramework& framework) {
  FrameworkClassification c;
  c.framework_name = framework.name();

  const TraceRunResult canonical = trace_canonical_local(framework);

  classify_pfs_compatibility(framework, c);
  classify_install(framework, c);
  classify_event_types_and_format(framework, canonical, c);
  classify_anonymization(framework, canonical, c);
  classify_replay_and_dependencies(framework, c);
  classify_skew_drift(framework, canonical, c);
  classify_overhead(framework, c);
  return c;
}

}  // namespace iotaxo::taxonomy
