// The taxonomy's feature schema — the thirteen rows of Table 1.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace iotaxo::taxonomy {

enum class FeatureId {
  kParallelFsCompatibility,
  kEaseOfInstall,
  kAnonymization,
  kEventTypes,
  kGranularityControl,
  kReplayableTraces,
  kReplayFidelity,
  kRevealsDependencies,
  kIntrusiveness,
  kAnalysisTools,
  kTraceDataFormat,
  kSkewDriftAccounting,
  kElapsedTimeOverhead,
};

/// Row label, e.g. "Parallel file system compatibility".
[[nodiscard]] const char* feature_name(FeatureId id) noexcept;

/// Table 1's placeholder text, e.g. "[Yes or No]" or
/// "[1 (V. Easy) thru 5 (V. Difficult)]".
[[nodiscard]] const char* feature_placeholder(FeatureId id) noexcept;

/// All features, in Table 1 row order.
[[nodiscard]] const std::vector<FeatureId>& all_features() noexcept;

/// A classified value: the display string that goes into the summary table
/// plus an optional numeric form for programmatic comparison.
struct FeatureValue {
  std::string display = "N/A";
  std::optional<double> numeric;

  [[nodiscard]] static FeatureValue yes_no(bool v) {
    return {v ? "Yes" : "No", v ? 1.0 : 0.0};
  }
  [[nodiscard]] static FeatureValue scale(int level, const char* low_label,
                                          const char* high_label);
  [[nodiscard]] static FeatureValue text(std::string s) {
    return {std::move(s), std::nullopt};
  }
  [[nodiscard]] static FeatureValue not_applicable() {
    return {"N/A", std::nullopt};
  }
};

}  // namespace iotaxo::taxonomy
